package mobiledist_test

import (
	"testing"

	"mobiledist"
	"mobiledist/internal/experiments"
)

// One benchmark per experiment table (see the DESIGN.md index): each
// iteration regenerates the full table from live protocol runs, so the
// reported time is the cost of reproducing that evaluation artefact.

func benchTable(b *testing.B, fn func(uint64) experiments.Table) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := fn(uint64(i + 1))
		if len(t.Rows) == 0 {
			b.Fatalf("%s produced no rows", t.ID)
		}
	}
}

func BenchmarkE1LamportCostVsN(b *testing.B)    { benchTable(b, experiments.E1LamportCostVsN) }
func BenchmarkE2LamportEnergy(b *testing.B)     { benchTable(b, experiments.E2LamportEnergy) }
func BenchmarkE3LamportDisconnect(b *testing.B) { benchTable(b, experiments.E3LamportDisconnect) }
func BenchmarkE4RingCostVsK(b *testing.B)       { benchTable(b, experiments.E4RingCostVsK) }
func BenchmarkE5RingFairness(b *testing.B)      { benchTable(b, experiments.E5RingFairness) }
func BenchmarkE6TokenList(b *testing.B)         { benchTable(b, experiments.E6TokenList) }
func BenchmarkE7RingDisconnect(b *testing.B)    { benchTable(b, experiments.E7RingDisconnect) }
func BenchmarkE8GroupCostVsMobility(b *testing.B) {
	benchTable(b, experiments.E8GroupCostVsMobility)
}
func BenchmarkE9GroupLocality(b *testing.B)  { benchTable(b, experiments.E9GroupLocality) }
func BenchmarkE10GroupWireless(b *testing.B) { benchTable(b, experiments.E10GroupWireless) }
func BenchmarkE11ProxyTraffic(b *testing.B)  { benchTable(b, experiments.E11ProxyTraffic) }
func BenchmarkA1SearchModes(b *testing.B)    { benchTable(b, experiments.A1SearchModes) }
func BenchmarkA2Crossover(b *testing.B)      { benchTable(b, experiments.A2Crossover) }
func BenchmarkA3LazyInform(b *testing.B)     { benchTable(b, experiments.A3LazyInform) }
func BenchmarkA4MulticastHandoff(b *testing.B) {
	benchTable(b, experiments.A4MulticastHandoff)
}

// Micro-benchmarks of the substrate under the experiment suite.

// BenchmarkL2Execution measures one complete L2 mutual-exclusion execution
// (init → MSS arbitration → grant with search → release) on a mid-sized
// network.
func BenchmarkL2Execution(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := mobiledist.DefaultConfig(8, 64)
		cfg.Seed = uint64(i + 1)
		sys := mobiledist.MustNewSystem(cfg)
		l2 := mobiledist.NewL2(sys, mobiledist.MutexOptions{Hold: 5})
		if err := l2.Request(mobiledist.MHID(0)); err != nil {
			b.Fatal(err)
		}
		if err := sys.Run(); err != nil {
			b.Fatal(err)
		}
		if l2.Grants() != 1 {
			b.Fatalf("grants = %d", l2.Grants())
		}
	}
}

// BenchmarkR2Traversal measures one full R2′ traversal granting 10
// requests.
func BenchmarkR2Traversal(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := mobiledist.DefaultConfig(8, 64)
		cfg.Seed = uint64(i + 1)
		sys := mobiledist.MustNewSystem(cfg)
		r2, err := mobiledist.NewR2(sys, mobiledist.R2Counter, mobiledist.RingOptions{Hold: 2}, 1, nil)
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 10; j++ {
			if err := r2.Request(mobiledist.MHID(j)); err != nil {
				b.Fatal(err)
			}
		}
		sys.Schedule(100, func() {
			if err := r2.Start(); err != nil {
				b.Error(err)
			}
		})
		if err := sys.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGroupSendLocationView measures one location-view group message
// over a 16-member group spread across 4 of 16 cells.
func BenchmarkGroupSendLocationView(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := mobiledist.DefaultConfig(16, 32)
		cfg.Seed = uint64(i + 1)
		cfg.Placement = func(mh mobiledist.MHID) mobiledist.MSSID {
			return mobiledist.MSSID(int(mh) % 4)
		}
		sys := mobiledist.MustNewSystem(cfg)
		lv, err := mobiledist.NewLocationView(sys, mobiledist.AllMHs(16), mobiledist.LocationViewOptions{
			Coordinator: mobiledist.MSSID(15),
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := lv.Send(mobiledist.MHID(0), i); err != nil {
			b.Fatal(err)
		}
		if err := sys.Run(); err != nil {
			b.Fatal(err)
		}
		if lv.Delivered() != 15 {
			b.Fatalf("delivered = %d", lv.Delivered())
		}
	}
}

// BenchmarkMobilityChurn measures raw mobility-protocol throughput: 32 MHs
// each completing 8 leave/join cycles over 8 cells.
func BenchmarkMobilityChurn(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := mobiledist.DefaultConfig(8, 32)
		cfg.Seed = uint64(i + 1)
		sys := mobiledist.MustNewSystem(cfg)
		if _, err := mobiledist.NewMobility(sys, mobiledist.MobilityConfig{
			Interval:   mobiledist.Span{Min: 10, Max: 100},
			MovesPerMH: 8,
		}); err != nil {
			b.Fatal(err)
		}
		if err := sys.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
