package mobiledist_test

import (
	"fmt"
	"testing"
	"time"

	"mobiledist"
	"mobiledist/internal/experiments"
	"mobiledist/internal/workload"
)

// One benchmark per experiment table (see the DESIGN.md index): each
// iteration regenerates the full table from live protocol runs, so the
// reported time is the cost of reproducing that evaluation artefact.

func benchTable(b *testing.B, fn func(uint64) experiments.Table) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := fn(uint64(i + 1))
		if len(t.Rows) == 0 {
			b.Fatalf("%s produced no rows", t.ID)
		}
	}
}

func BenchmarkE1LamportCostVsN(b *testing.B)    { benchTable(b, experiments.E1LamportCostVsN) }
func BenchmarkE2LamportEnergy(b *testing.B)     { benchTable(b, experiments.E2LamportEnergy) }
func BenchmarkE3LamportDisconnect(b *testing.B) { benchTable(b, experiments.E3LamportDisconnect) }
func BenchmarkE4RingCostVsK(b *testing.B)       { benchTable(b, experiments.E4RingCostVsK) }
func BenchmarkE5RingFairness(b *testing.B)      { benchTable(b, experiments.E5RingFairness) }
func BenchmarkE6TokenList(b *testing.B)         { benchTable(b, experiments.E6TokenList) }
func BenchmarkE7RingDisconnect(b *testing.B)    { benchTable(b, experiments.E7RingDisconnect) }
func BenchmarkE8GroupCostVsMobility(b *testing.B) {
	benchTable(b, experiments.E8GroupCostVsMobility)
}
func BenchmarkE9GroupLocality(b *testing.B)  { benchTable(b, experiments.E9GroupLocality) }
func BenchmarkE10GroupWireless(b *testing.B) { benchTable(b, experiments.E10GroupWireless) }
func BenchmarkE11ProxyTraffic(b *testing.B)  { benchTable(b, experiments.E11ProxyTraffic) }
func BenchmarkA1SearchModes(b *testing.B)    { benchTable(b, experiments.A1SearchModes) }
func BenchmarkA2Crossover(b *testing.B)      { benchTable(b, experiments.A2Crossover) }
func BenchmarkA3LazyInform(b *testing.B)     { benchTable(b, experiments.A3LazyInform) }
func BenchmarkA4MulticastHandoff(b *testing.B) {
	benchTable(b, experiments.A4MulticastHandoff)
}
func BenchmarkD1StoreCarryForward(b *testing.B) {
	benchTable(b, experiments.D1StoreCarryForward)
}

// Micro-benchmarks of the substrate under the experiment suite.

// BenchmarkL2Execution measures one complete L2 mutual-exclusion execution
// (init → MSS arbitration → grant with search → release) on a mid-sized
// network.
func BenchmarkL2Execution(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := mobiledist.DefaultConfig(8, 64)
		cfg.Seed = uint64(i + 1)
		sys := mobiledist.MustNewSystem(cfg)
		l2 := mobiledist.NewL2(sys, mobiledist.MutexOptions{Hold: 5})
		if err := l2.Request(mobiledist.MHID(0)); err != nil {
			b.Fatal(err)
		}
		if err := sys.Run(); err != nil {
			b.Fatal(err)
		}
		if l2.Grants() != 1 {
			b.Fatalf("grants = %d", l2.Grants())
		}
	}
}

// BenchmarkR2Traversal measures one full R2′ traversal granting 10
// requests.
func BenchmarkR2Traversal(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := mobiledist.DefaultConfig(8, 64)
		cfg.Seed = uint64(i + 1)
		sys := mobiledist.MustNewSystem(cfg)
		r2, err := mobiledist.NewR2(sys, mobiledist.R2Counter, mobiledist.RingOptions{Hold: 2}, 1, nil)
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 10; j++ {
			if err := r2.Request(mobiledist.MHID(j)); err != nil {
				b.Fatal(err)
			}
		}
		sys.Schedule(100, func() {
			if err := r2.Start(); err != nil {
				b.Error(err)
			}
		})
		if err := sys.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGroupSendLocationView measures one location-view group message
// over a 16-member group spread across 4 of 16 cells.
func BenchmarkGroupSendLocationView(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := mobiledist.DefaultConfig(16, 32)
		cfg.Seed = uint64(i + 1)
		cfg.Placement = func(mh mobiledist.MHID) mobiledist.MSSID {
			return mobiledist.MSSID(int(mh) % 4)
		}
		sys := mobiledist.MustNewSystem(cfg)
		lv, err := mobiledist.NewLocationView(sys, mobiledist.AllMHs(16), mobiledist.LocationViewOptions{
			Coordinator: mobiledist.MSSID(15),
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := lv.Send(mobiledist.MHID(0), i); err != nil {
			b.Fatal(err)
		}
		if err := sys.Run(); err != nil {
			b.Fatal(err)
		}
		if lv.Delivered() != 15 {
			b.Fatalf("delivered = %d", lv.Delivered())
		}
	}
}

// The scale suite: full engine runs at 10^4..10^6 hosts on pre-generated
// scenarios (internal/workload GenScale/RunScale), each size on both the
// single-heap kernel (shards=1) and the sharded kernel. Reported metrics:
// simulated msgs/sec (cost-meter messages per wall second) and the default
// allocs/op. The N=10^5 and 10^6 sizes are skipped under -short so the CI
// smoke stays fast; cmd/mobilexp -scale records the full trajectory.

type scaleSize struct {
	label  string
	n, m   int
	ops    int
	chains int
}

// Each size keeps the standing in-flight population proportional to the
// host count (chains == ops: every op is independently in flight), which
// is the regime a million-host system actually runs in — and the one that
// separates the kernels: the single heap's per-op sift walks a multi-MB
// array while the sharded queue drains same-tick runs in O(1).
var scaleSizes = []scaleSize{
	{label: "N=1e4", n: 10_000, m: 100, ops: 40_000, chains: 40_000},
	{label: "N=1e5", n: 100_000, m: 1000, ops: 2_000_000, chains: 2_000_000},
	{label: "N=1e6", n: 1_000_000, m: 10_000, ops: 5_000_000, chains: 5_000_000},
}

func benchScale(b *testing.B, kind workload.ScaleKind) {
	for _, sz := range scaleSizes {
		for _, shards := range []int{1, 512} {
			b.Run(fmt.Sprintf("%s/shards=%d", sz.label, shards), func(b *testing.B) {
				if sz.n > 10_000 && testing.Short() {
					b.Skip("large scale sizes skipped in -short mode")
				}
				sc, err := workload.GenScale(workload.ScaleConfig{
					N: sz.n, M: sz.m, Seed: 1, Kind: kind, Ops: sz.ops, Chains: sz.chains,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				var msgs, steps int64
				var wall time.Duration
				for i := 0; i < b.N; i++ {
					b.StopTimer() // system construction is not the measured path
					sys, err := workload.NewScaleSystem(sc, shards)
					if err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
					start := time.Now()
					res, err := workload.RunScale(sys, sc)
					wall += time.Since(start)
					if err != nil {
						b.Fatal(err)
					}
					if res.Injected != int64(len(sc.Ops)) {
						b.Fatalf("injected %d of %d ops", res.Injected, len(sc.Ops))
					}
					msgs += res.Messages
					steps += int64(res.Steps)
				}
				if sec := wall.Seconds(); sec > 0 {
					b.ReportMetric(float64(msgs)/sec, "msgs/sec")
					b.ReportMetric(float64(steps)/sec, "events/sec")
				}
			})
		}
	}
}

func BenchmarkScaleRoute(b *testing.B)       { benchScale(b, workload.ScaleRoute) }
func BenchmarkScaleChurn(b *testing.B)       { benchScale(b, workload.ScaleChurn) }
func BenchmarkScaleSearchChase(b *testing.B) { benchScale(b, workload.ScaleSearchChase) }

// BenchmarkMobilityChurn measures raw mobility-protocol throughput: 32 MHs
// each completing 8 leave/join cycles over 8 cells.
func BenchmarkMobilityChurn(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := mobiledist.DefaultConfig(8, 32)
		cfg.Seed = uint64(i + 1)
		sys := mobiledist.MustNewSystem(cfg)
		if _, err := mobiledist.NewMobility(sys, mobiledist.MobilityConfig{
			Interval:   mobiledist.Span{Min: 10, Max: 100},
			MovesPerMH: 8,
		}); err != nil {
			b.Fatal(err)
		}
		if err := sys.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
