package mobiledist

import (
	"mobiledist/internal/group"
	"mobiledist/internal/mutex/lamport"
	"mobiledist/internal/mutex/ring"
	"mobiledist/internal/proxy"
)

// Mutual exclusion (Section 3).
type (
	// MutexOptions configure the Lamport-family algorithms' critical
	// section behaviour.
	MutexOptions = lamport.Options
	// L1 is Lamport's mutual exclusion run directly on the mobile hosts.
	L1 = lamport.L1
	// L2 is the paper's restructured Lamport algorithm run by the MSSs.
	L2 = lamport.L2
	// RingOptions configure the ring-family algorithms' critical section
	// behaviour.
	RingOptions = ring.Options
	// R1 is the token ring formed by the mobile hosts.
	R1 = ring.R1
	// R2 is the token ring formed by the support stations (all variants).
	R2 = ring.R2
	// RingVariant selects among R2, R2′ and R2″.
	RingVariant = ring.Variant
)

// R2 variants.
const (
	// R2Plain grants every pending request on token arrival.
	R2Plain = ring.VariantPlain
	// R2Counter (R2′) bounds each MH to one access per traversal via the
	// token-val counter.
	R2Counter = ring.VariantCounter
	// R2List (R2″) uses the token-carried (MSS, MH) list, robust against a
	// malicious MH.
	R2List = ring.VariantList
)

// NewL1 registers Lamport's algorithm over the given mobile participants.
func NewL1(reg Registrar, participants []MHID, opts MutexOptions) (*L1, error) {
	return lamport.NewL1(reg, participants, opts)
}

// NewL2 registers the MSS-hosted Lamport algorithm.
func NewL2(reg Registrar, opts MutexOptions) *L2 {
	return lamport.NewL2(reg, opts)
}

// NewR1 registers the MH token ring. maxTraversals parks the token after
// that many rounds (0 = circulate forever); repairSkip reroutes the token
// around disconnected members instead of stalling.
func NewR1(reg Registrar, ringOrder []MHID, opts RingOptions, repairSkip bool, maxTraversals int64) (*R1, error) {
	return ring.NewR1(reg, ringOrder, opts, repairSkip, maxTraversals)
}

// NewR2 registers an MSS token ring of the given variant. lie selects
// malicious MHs that under-report their access count (nil for none).
func NewR2(reg Registrar, variant RingVariant, opts RingOptions, maxTraversals int64, lie func(MHID) bool) (*R2, error) {
	return ring.NewR2(reg, variant, opts, maxTraversals, lie)
}

// Group location management (Section 4).
type (
	// GroupComm is the common surface of the three strategies.
	GroupComm = group.Comm
	// GroupOptions configure delivery callbacks.
	GroupOptions = group.Options
	// PureSearch is the search-on-demand strategy (§4.1).
	PureSearch = group.PureSearch
	// AlwaysInform is the location-directory strategy (§4.2).
	AlwaysInform = group.AlwaysInform
	// LocationView is the paper's proposed LV(G) strategy (§4.3).
	LocationView = group.LocationView
	// LocationViewOptions extend GroupOptions for LocationView.
	LocationViewOptions = group.LocationViewOptions
)

// NewPureSearch registers a pure-search group.
func NewPureSearch(reg Registrar, members []MHID, opts GroupOptions) (*PureSearch, error) {
	return group.NewPureSearch(reg, members, opts)
}

// NewAlwaysInform registers an always-inform group.
func NewAlwaysInform(reg Registrar, members []MHID, opts GroupOptions) (*AlwaysInform, error) {
	return group.NewAlwaysInform(reg, members, opts)
}

// NewLocationView registers a location-view group.
func NewLocationView(reg Registrar, members []MHID, opts LocationViewOptions) (*LocationView, error) {
	return group.NewLocationView(reg, members, opts)
}

// Proxy framework (Section 5).
type (
	// ProxyScope selects how MHs map to proxies.
	ProxyScope = proxy.ScopeKind
	// ProxyOptions configure a proxy runtime.
	ProxyOptions = proxy.Options
	// ProxyRuntime hosts a StaticAlgorithm at the participants' proxies.
	ProxyRuntime = proxy.Runtime
	// ProxyEnv is the environment static processes communicate through.
	ProxyEnv = proxy.Env
	// StaticAlgorithm is a mobility-oblivious message-passing algorithm.
	StaticAlgorithm = proxy.StaticAlgorithm
	// StaticMutex is Lamport's mutex written as a StaticAlgorithm.
	StaticMutex = proxy.StaticMutex
	// StaticMutexOptions configure a StaticMutex.
	StaticMutexOptions = proxy.MutexOptions
	// StaticEcho is an echo (gather/broadcast) round written as a
	// StaticAlgorithm — a second demonstration that the adapter is
	// algorithm-agnostic.
	StaticEcho = proxy.StaticEcho
	// StartEchoInput asks a StaticEcho process to initiate a round.
	StartEchoInput = proxy.StartEchoInput
	// EchoRoundComplete is StaticEcho's output to every mobile host.
	EchoRoundComplete = proxy.RoundComplete
)

// Proxy scopes.
const (
	// ScopeLocal makes the current MSS the proxy (handoffs on moves).
	ScopeLocal = proxy.ScopeLocal
	// ScopeHome fixes the proxy for the MH's lifetime (informed of moves).
	ScopeHome = proxy.ScopeHome
)

// NewProxyRuntime registers a proxy runtime hosting alg for participants.
func NewProxyRuntime(reg Registrar, alg StaticAlgorithm, participants []MHID, opts ProxyOptions) (*ProxyRuntime, error) {
	return proxy.New(reg, alg, participants, opts)
}

// NewStaticMutex builds a Lamport mutex over procs static processes.
func NewStaticMutex(procs int, opts StaticMutexOptions) (*StaticMutex, error) {
	return proxy.NewStaticMutex(procs, opts)
}

// ProxyRequestInput returns the input a mobile host submits to request the
// critical section from a proxied StaticMutex.
func ProxyRequestInput() any { return proxy.RequestInput{} }

// NewStaticEcho builds an echo-round algorithm for the proxy runtime.
func NewStaticEcho() *StaticEcho { return proxy.NewStaticEcho() }

// AllMHs enumerates every mobile host id of a system with n MHs, a
// convenience for participant lists.
func AllMHs(n int) []MHID {
	out := make([]MHID, n)
	for i := range out {
		out[i] = MHID(i)
	}
	return out
}
