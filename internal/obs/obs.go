// Package obs is the observability subsystem of the two-tier model: a
// typed, zero-allocation event tracer and a metrics registry shared by both
// execution substrates (the deterministic simulator and the live runtime).
//
// The paper's argument is quantitative — Cfixed/Cwireless/Csearch tables,
// wireless-hop counts, significant-move rates — but end-of-run aggregates
// cannot show *when* a handoff stalled or *which* channel ate the
// retransmits. This package records the run itself:
//
//   - an Event is a fixed-size record (virtual time, kind, three int32
//     operands) covering transmissions, deliveries, the mobility protocol
//     (leave/join/disconnect/reconnect/handoff), searches, delivery
//     failures, ARQ activity, fault-injector decisions, and algorithm-level
//     critical-section and token activity;
//   - a Tracer stores events in a fixed-capacity ring buffer (or an
//     unbounded recorder for export), optionally feeding a Metrics registry
//     of counters and HDR-style latency histograms, snapshot-diffable
//     mid-run;
//   - a Trace (topology + events) round-trips through a compact binary
//     codec and line-oriented JSONL, so a captured run is an artifact that
//     can be diffed, replayed, and rendered (cmd/mobiletrace).
//
// Hot-path contract: every Record call on a nil *Tracer is a nil-check
// no-op, and Record on a live tracer allocates nothing. The engine guards
// each emission site with a nil check, so a system built without a tracer
// pays one predictable branch per would-be event and nothing else.
//
// The package depends only on internal/sim; it hooks the engine at the
// Substrate/Transmit seam (engine.ObserveSubstrate) and at the engine's
// own model-level emission points, the same layering internal/faults uses.
package obs

import (
	"sync"
	"sync/atomic"

	"mobiledist/internal/sim"
)

// EventKind classifies one recorded event. The operand meaning per kind is
// documented on the constants; unused operands are zero.
type EventKind uint8

// Event kinds. The numbering is part of the binary trace format: append
// new kinds, never renumber.
const (
	evInvalid EventKind = iota
	// EvTransmit: one message handed to the substrate's FIFO transport.
	// A = flat channel id, B = drawn latency (ticks).
	EvTransmit
	// EvDeliver: a routed message reached its destination MH.
	// A = mh, B = serving mss, C = wireless delivery attempts (1 = direct,
	// each extra is one search-and-chase hop after a move in flight).
	EvDeliver
	// EvLeave: a MSS processed leave(mh). A = mh, B = mss.
	EvLeave
	// EvJoin: mh completed a join. A = mh, B = new mss, C = previous mss
	// (-1 for none).
	EvJoin
	// EvDisconnect: a MSS processed disconnect(mh). A = mh, B = mss.
	EvDisconnect
	// EvReconnect: mh initiated reconnect(). A = mh, B = new mss, C = mss
	// holding the disconnected flag.
	EvReconnect
	// EvHandoff: the reconnect handoff exchange completed. A = mh, B = new
	// mss, C = previous mss.
	EvHandoff
	// EvTokenPass: an algorithm passed its token. A = from mh (-1 for
	// injection), B = to mh.
	EvTokenPass
	// EvCSRequest: mh asked for the critical section. A = mh.
	EvCSRequest
	// EvCSEnter: mh entered the critical section. A = mh.
	EvCSEnter
	// EvCSExit: mh left the critical section. A = mh.
	EvCSExit
	// EvRetransmit: the ARQ sublayer retransmitted after an ack timeout.
	// A = flat channel id, B = retry number for the in-flight frame (1 = first
	// retransmission).
	EvRetransmit
	// EvAck: the ARQ sublayer resolved an in-flight frame. A = flat channel
	// id, B = retransmissions the frame needed (0 = first try).
	EvAck
	// EvSearch: the network searched for a MH. A = origin mss, B = 1 when
	// the search was a stale re-route (footnote-2 case), else 0.
	EvSearch
	// EvFailure: a routed send ended in a disconnected notification.
	// A = mh, B = origin mss.
	EvFailure
	// EvDrop: the fault injector destroyed a wireless frame. A = channel.
	EvDrop
	// EvDuplicate: the fault injector duplicated a wireless frame. A = channel.
	EvDuplicate
	// EvReorder: the fault injector released a frame out of order. A = channel.
	EvReorder
	// EvCrashDiscard: a wired transmission died at a crashed station.
	// A = channel, B = 1 when discarded at the receiver, 0 at the sender.
	EvCrashDiscard
	// EvGroupInform: a group strategy propagated a location update — the
	// always-inform broadcast that follows a member's join (Section 4.2).
	// A = mh that moved, B = mss whose broadcast carries the news.
	EvGroupInform
	// EvGroupViewUpdate: the group-view coordinator committed a view
	// change. A = mss added (-1 for none), B = mss removed (-1 for none),
	// C = view size after the change.
	EvGroupViewUpdate
	// EvGroupStaleLookup: a group send found its sender's local view not
	// usable and fell back to coordinator routing. A = sender mh, B = the
	// mss whose view was stale.
	EvGroupStaleLookup
	// EvPeerSuspect: the hub's liveness tracker marked a cluster peer
	// suspect after K consecutive missed heartbeats. A = peer id, B = role
	// (wire.RoleMSS/RoleMH as int32), C = consecutive missed beats.
	EvPeerSuspect
	// EvPeerDead: a suspect peer crossed the dead deadline; its outbox is
	// cleared and deliveries to it park until resync. A = peer id, B = role,
	// C = consecutive missed beats at declaration.
	EvPeerDead
	// EvPeerRecovered: a suspect or dead peer answered a heartbeat (or a new
	// incarnation attached) and was resynced. A = peer id, B = role, C = the
	// peer's incarnation generation.
	EvPeerRecovered
	// EvSessionEstablished: a datagram session completed its connect
	// handshake. A = session id (low 31 bits), B = 0 on the dialing side,
	// 1 on the accepting side.
	EvSessionEstablished
	// EvPacketSent: one datagram left a session socket. A = session id
	// (low 31 bits), B = packet type, C = datagram bytes on the wire.
	EvPacketSent
	// EvPacketRecv: one datagram passed authentication and the replay
	// window. A = session id, B = packet type, C = datagram bytes.
	EvPacketRecv
	// EvPacketRetransmit: a stream segment was re-sent after its
	// retransmit timeout. A = session id, B = retry number, C = segment
	// bytes.
	EvPacketRetransmit
	// EvPacketReplayDropped: an authenticated datagram was rejected by the
	// sliding replay window (duplicate or out-of-window sequence).
	// A = session id, B = packet sequence (low 31 bits).
	EvPacketReplayDropped
	// EvPacketRTT: an ack resolved a never-retransmitted segment (Karn's
	// rule), yielding one clean RTT sample. A = session id, B = RTT in
	// microseconds.
	EvPacketRTT

	// EvBundleCustody: a DTN bundle was accepted into an MSS's custody
	// store for a disconnected MH (internal/dtn). A = bundle id, B =
	// holder MSS, C = destination MH.
	EvBundleCustody
	// EvBundleTransfer: a bundle replica was shipped between stations
	// (epidemic anti-entropy, spray hand-off, or delivery hand-over).
	// A = bundle id, B = sending MSS, C = receiving MSS.
	EvBundleTransfer
	// EvBundleDelivered: a bundle's primary delivery was handed back to
	// the routing layer after its MH reappeared. A = bundle id, B = the
	// delivering MSS, C = replicas created over the bundle's lifetime
	// (the replication-cost sample).
	EvBundleDelivered
	// EvBundleExpired: a bundle's TTL lapsed before delivery. A = bundle
	// id, B = holder MSS, C = destination MH.
	EvBundleExpired
	// EvBundleDropped: a bundle replica was discarded without delivering
	// — per-MH quota, LRU eviction, duplicate suppression, or a crash
	// wiping a volatile store. A = bundle id, B = holder MSS, C =
	// destination MH.
	EvBundleDropped

	evKindCount // internal: number of kinds, for metrics arrays
)

// The per-kind enable mask packs one bit per kind into a uint64.
const _ uint64 = 1 << evKindCount

var kindNames = [evKindCount]string{
	EvTransmit:         "transmit",
	EvDeliver:          "deliver",
	EvLeave:            "leave",
	EvJoin:             "join",
	EvDisconnect:       "disconnect",
	EvReconnect:        "reconnect",
	EvHandoff:          "handoff",
	EvTokenPass:        "token-pass",
	EvCSRequest:        "cs-request",
	EvCSEnter:          "cs-enter",
	EvCSExit:           "cs-exit",
	EvRetransmit:       "retransmit",
	EvAck:              "ack",
	EvSearch:           "search",
	EvFailure:          "failure",
	EvDrop:             "drop",
	EvDuplicate:        "duplicate",
	EvReorder:          "reorder",
	EvCrashDiscard:     "crash-discard",
	EvGroupInform:      "group-inform",
	EvGroupViewUpdate:  "group-view-update",
	EvGroupStaleLookup: "group-stale-lookup",
	EvPeerSuspect:      "peer-suspect",
	EvPeerDead:         "peer-dead",
	EvPeerRecovered:    "peer-recovered",

	EvSessionEstablished:  "session-established",
	EvPacketSent:          "packet-sent",
	EvPacketRecv:          "packet-recv",
	EvPacketRetransmit:    "packet-retransmit",
	EvPacketReplayDropped: "packet-replay-dropped",
	EvPacketRTT:           "packet-rtt",

	EvBundleCustody:   "bundle-custody",
	EvBundleTransfer:  "bundle-transfer",
	EvBundleDelivered: "bundle-delivered",
	EvBundleExpired:   "bundle-expired",
	EvBundleDropped:   "bundle-dropped",
}

// String returns the kind's wire name (the "k" field of the JSONL format).
func (k EventKind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return "unknown"
}

// KindFromString inverts String; ok is false for unknown names.
func KindFromString(s string) (EventKind, bool) {
	for k, name := range kindNames {
		if name == s {
			return EventKind(k), true
		}
	}
	return evInvalid, false
}

// Kinds returns every defined event kind in numbering order.
func Kinds() []EventKind {
	out := make([]EventKind, 0, int(evKindCount)-1)
	for k := EventKind(1); k < evKindCount; k++ {
		out = append(out, k)
	}
	return out
}

// Event is one recorded observation: a fixed-size value, so a ring of them
// is a single allocation for the tracer's lifetime.
type Event struct {
	// T is the virtual time the event was recorded at.
	T sim.Time
	// Kind classifies the event; A, B, C are kind-specific operands (see
	// the EventKind constants).
	Kind    EventKind
	A, B, C int32
}

// Tracer records events into a fixed-capacity ring buffer (capacity > 0)
// or an unbounded in-memory recorder (capacity <= 0), optionally feeding a
// Metrics registry. All methods are safe for concurrent use; recording
// normally happens on one execution context (the kernel goroutine or the
// rt executor) while scrapers snapshot from other goroutines.
//
// A nil *Tracer is valid everywhere: Record and the query methods are
// no-ops on it, which is how tracing-disabled systems stay allocation- and
// overhead-free.
type Tracer struct {
	// disabled and sampleN form the recording seam's admission filter,
	// consulted before the lock: a masked-out or sampled-out event takes
	// one atomic load and returns, touching neither the ring nor the
	// metrics. Bit k of disabled set = kind k masked out (zero value: all
	// kinds enabled). sampleN[k] > 1 = keep 1 in every sampleN[k] events
	// of kind k; seen[k] counts arrivals to decide which.
	disabled atomic.Uint64
	sampleN  [evKindCount]atomic.Uint32
	seen     [evKindCount]atomic.Uint64

	mu      sync.Mutex
	ring    []Event // ring mode: fixed backing store
	events  []Event // recorder mode: append-only
	bounded bool
	total   uint64 // events ever recorded
	m, n    int    // topology, 0 when unset or mixed
	mixed   bool
	metrics *Metrics
}

// NewTracer returns a tracer keeping the most recent capacity events; a
// capacity <= 0 keeps every event (the recorder mode tests and trace
// export use).
func NewTracer(capacity int) *Tracer {
	t := &Tracer{}
	if capacity > 0 {
		t.ring = make([]Event, capacity)
		t.bounded = true
	}
	return t
}

// WithMetrics attaches a metrics registry fed by every recorded event and
// returns the tracer. Attach before traffic flows.
func (t *Tracer) WithMetrics(m *Metrics) *Tracer {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.metrics = m
	t.mu.Unlock()
	return t
}

// Metrics returns the attached metrics registry, or nil.
func (t *Tracer) Metrics() *Metrics {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.metrics
}

// SetTopology records the (M, N) network shape for trace export. Tracers
// shared across systems of different shapes export a zero topology, which
// disables shape-dependent rendering (the space-time diagram) but not
// diffing.
func (t *Tracer) SetTopology(m, n int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.mixed {
		return
	}
	if (t.m != 0 || t.n != 0) && (t.m != m || t.n != n) {
		t.m, t.n = 0, 0
		t.mixed = true
		return
	}
	t.m, t.n = m, n
}

// Topology returns the recorded network shape (0, 0 when unset or mixed).
func (t *Tracer) Topology() (m, n int) {
	if t == nil {
		return 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.m, t.n
}

// SetKindEnabled includes (enabled) or masks out (disabled) one kind at
// the recording seam. A masked-out kind is rejected before the tracer's
// lock: it reaches neither the ring buffer nor the attached metrics, and
// the Record call allocates nothing. All kinds start enabled.
func (t *Tracer) SetKindEnabled(kind EventKind, enabled bool) {
	if t == nil || kind >= evKindCount {
		return
	}
	bit := uint64(1) << kind
	for {
		old := t.disabled.Load()
		next := old | bit
		if enabled {
			next = old &^ bit
		}
		if t.disabled.CompareAndSwap(old, next) {
			return
		}
	}
}

// EnableOnly masks out every kind except those listed — the whitelist form
// of SetKindEnabled for tracers that should record, say, only the mobility
// protocol.
func (t *Tracer) EnableOnly(kinds ...EventKind) {
	if t == nil {
		return
	}
	mask := ^uint64(0) >> (64 - evKindCount) // all kinds disabled
	for _, k := range kinds {
		if k < evKindCount {
			mask &^= uint64(1) << k
		}
	}
	t.disabled.Store(mask)
}

// SetSampleEvery keeps one in every n recorded events of kind, starting
// with the first, rejecting the rest before the ring buffer (and before
// the metrics — sampled counters count sampled events). n <= 1 restores
// every-event recording for the kind.
func (t *Tracer) SetSampleEvery(kind EventKind, n int) {
	if t == nil || kind >= evKindCount {
		return
	}
	if n < 1 {
		n = 1
	}
	t.sampleN[kind].Store(uint32(n))
}

// Record appends one event. On a nil tracer it is a no-op; on a live one
// it allocates nothing in ring mode (recorder mode amortises appends).
// Events masked out by SetKindEnabled or thinned by SetSampleEvery are
// rejected here, before the lock and the ring, with zero allocation.
func (t *Tracer) Record(now sim.Time, kind EventKind, a, b, c int32) {
	if t == nil || kind >= evKindCount {
		return
	}
	if t.disabled.Load()&(uint64(1)<<kind) != 0 {
		return
	}
	if n := t.sampleN[kind].Load(); n > 1 {
		if (t.seen[kind].Add(1)-1)%uint64(n) != 0 {
			return
		}
	}
	ev := Event{T: now, Kind: kind, A: a, B: b, C: c}
	t.mu.Lock()
	if t.bounded {
		t.ring[t.total%uint64(len(t.ring))] = ev
	} else {
		t.events = append(t.events, ev)
	}
	t.total++
	if t.metrics != nil {
		t.metrics.observe(ev)
	}
	t.mu.Unlock()
}

// Total reports how many events were ever recorded (including any the ring
// has since overwritten).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Dropped reports how many events the ring overwrote (always 0 in recorder
// mode).
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.bounded || t.total <= uint64(len(t.ring)) {
		return 0
	}
	return t.total - uint64(len(t.ring))
}

// Events returns a copy of the retained events in recording order (oldest
// first). In ring mode that is the most recent window.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.bounded {
		return append([]Event(nil), t.events...)
	}
	n := t.total
	capacity := uint64(len(t.ring))
	if n > capacity {
		n = capacity
	}
	out := make([]Event, 0, n)
	start := t.total - n
	for i := uint64(0); i < n; i++ {
		out = append(out, t.ring[(start+i)%capacity])
	}
	return out
}

// Snapshot returns the retained events as an exportable Trace carrying the
// recorded topology.
func (t *Tracer) Snapshot() Trace {
	m, n := t.Topology()
	return Trace{M: m, N: n, Events: t.Events()}
}

// Filter returns the events for which keep is true, preserving order.
func Filter(events []Event, keep func(Event) bool) []Event {
	var out []Event
	for _, ev := range events {
		if keep(ev) {
			out = append(out, ev)
		}
	}
	return out
}

// KindFilter returns a Filter predicate keeping only the listed kinds.
func KindFilter(kinds ...EventKind) func(Event) bool {
	var set [evKindCount]bool
	for _, k := range kinds {
		if k < evKindCount {
			set[k] = true
		}
	}
	return func(ev Event) bool { return ev.Kind < evKindCount && set[ev.Kind] }
}

// MobilityKinds are the mobility-protocol event kinds, the subsequence the
// cross-substrate conformance suite compares.
func MobilityKinds() []EventKind {
	return []EventKind{EvLeave, EvJoin, EvDisconnect, EvReconnect, EvHandoff}
}
