package obs

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"mobiledist/internal/sim"
)

// Trace is an exported run: the network topology it was captured on and
// the event stream in recording order. M and N are 0 when the tracer was
// shared across systems of different shapes.
type Trace struct {
	M, N   int
	Events []Event
}

// jsonlHeader is the first line of the JSONL format.
type jsonlHeader struct {
	Trace  string `json:"trace"`
	V      int    `json:"v"`
	M      int    `json:"m"`
	N      int    `json:"n"`
	Events int    `json:"events"`
}

// jsonlEvent is one event line of the JSONL format.
type jsonlEvent struct {
	T sim.Time `json:"t"`
	K string   `json:"k"`
	A int32    `json:"a"`
	B int32    `json:"b"`
	C int32    `json:"c"`
}

const (
	jsonlName    = "mobiledist"
	jsonlVersion = 1
)

// binaryMagic opens the binary trace format; the trailing byte versions it.
var binaryMagic = []byte("MOBTRC\x01")

// WriteJSONL renders the trace as line-oriented JSON: a header line
// followed by one event per line. The output is canonical — field order is
// fixed — so equal traces are byte-identical.
func (t Trace) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(jsonlHeader{Trace: jsonlName, V: jsonlVersion, M: t.M, N: t.N, Events: len(t.Events)}); err != nil {
		return err
	}
	for _, ev := range t.Events {
		if err := enc.Encode(jsonlEvent{T: ev.T, K: ev.Kind.String(), A: ev.A, B: ev.B, C: ev.C}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a trace written by WriteJSONL.
func ReadJSONL(r io.Reader) (Trace, error) {
	dec := json.NewDecoder(r)
	var hdr jsonlHeader
	if err := dec.Decode(&hdr); err != nil {
		return Trace{}, fmt.Errorf("obs: trace header: %w", err)
	}
	if hdr.Trace != jsonlName || hdr.V != jsonlVersion {
		return Trace{}, fmt.Errorf("obs: not a v%d %s trace (header %q v%d)", jsonlVersion, jsonlName, hdr.Trace, hdr.V)
	}
	out := Trace{M: hdr.M, N: hdr.N, Events: make([]Event, 0, hdr.Events)}
	for {
		var line jsonlEvent
		if err := dec.Decode(&line); err == io.EOF {
			break
		} else if err != nil {
			return Trace{}, fmt.Errorf("obs: trace event %d: %w", len(out.Events), err)
		}
		kind, ok := KindFromString(line.K)
		if !ok {
			return Trace{}, fmt.Errorf("obs: trace event %d: unknown kind %q", len(out.Events), line.K)
		}
		out.Events = append(out.Events, Event{T: line.T, Kind: kind, A: line.A, B: line.B, C: line.C})
	}
	return out, nil
}

// MarshalBinary renders the trace in the compact binary format: magic,
// topology and count as uvarints, then per event a delta-encoded time,
// the kind byte, and zigzag-encoded operands.
func (t Trace) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	buf.Write(binaryMagic)
	var tmp [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) { buf.Write(tmp[:binary.PutUvarint(tmp[:], v)]) }
	putVarint := func(v int64) { buf.Write(tmp[:binary.PutVarint(tmp[:], v)]) }
	putUvarint(uint64(t.M))
	putUvarint(uint64(t.N))
	putUvarint(uint64(len(t.Events)))
	var prev sim.Time
	for _, ev := range t.Events {
		putVarint(int64(ev.T - prev))
		prev = ev.T
		buf.WriteByte(byte(ev.Kind))
		putVarint(int64(ev.A))
		putVarint(int64(ev.B))
		putVarint(int64(ev.C))
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary parses the output of MarshalBinary.
func UnmarshalBinary(data []byte) (Trace, error) {
	if !bytes.HasPrefix(data, binaryMagic) {
		return Trace{}, fmt.Errorf("obs: not a binary trace (bad magic)")
	}
	r := bytes.NewReader(data[len(binaryMagic):])
	readUvarint := func() (uint64, error) { return binary.ReadUvarint(r) }
	readVarint := func() (int64, error) { return binary.ReadVarint(r) }
	m, err := readUvarint()
	if err != nil {
		return Trace{}, fmt.Errorf("obs: binary trace topology: %w", err)
	}
	n, err := readUvarint()
	if err != nil {
		return Trace{}, fmt.Errorf("obs: binary trace topology: %w", err)
	}
	count, err := readUvarint()
	if err != nil {
		return Trace{}, fmt.Errorf("obs: binary trace count: %w", err)
	}
	out := Trace{M: int(m), N: int(n)}
	var prev sim.Time
	for i := uint64(0); i < count; i++ {
		dt, err := readVarint()
		if err != nil {
			return Trace{}, fmt.Errorf("obs: binary trace event %d: %w", i, err)
		}
		kb, err := r.ReadByte()
		if err != nil {
			return Trace{}, fmt.Errorf("obs: binary trace event %d: %w", i, err)
		}
		if kb == 0 || EventKind(kb) >= evKindCount {
			return Trace{}, fmt.Errorf("obs: binary trace event %d: unknown kind %d", i, kb)
		}
		var ops [3]int64
		for j := range ops {
			v, err := readVarint()
			if err != nil {
				return Trace{}, fmt.Errorf("obs: binary trace event %d: %w", i, err)
			}
			ops[j] = v
		}
		prev += sim.Time(dt)
		out.Events = append(out.Events, Event{
			T: prev, Kind: EventKind(kb),
			A: int32(ops[0]), B: int32(ops[1]), C: int32(ops[2]),
		})
	}
	return out, nil
}

// Line renders one event as a canonical space-separated string,
// optionally prefixed with its timestamp. The timeless form is the
// cross-substrate comparison key: the same protocol step yields the same
// line on the simulator and the live runtime even though their clocks
// differ.
func (e Event) Line(withTime bool) string {
	if withTime {
		return fmt.Sprintf("%d %s %d %d %d", int64(e.T), e.Kind, e.A, e.B, e.C)
	}
	return fmt.Sprintf("%s %d %d %d", e.Kind, e.A, e.B, e.C)
}

// Lines renders events with Line, in order.
func Lines(events []Event, withTime bool) []string {
	out := make([]string, len(events))
	for i, ev := range events {
		out[i] = ev.Line(withTime)
	}
	return out
}
