package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
)

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): one counter family for event counts, and
// count/sum/quantile series per histogram. Counter names are sorted so the
// output is stable.
func (s MetricsSnapshot) WritePrometheus(w io.Writer) {
	fmt.Fprintf(w, "# HELP mobiledist_events_total Observability events recorded, by kind.\n")
	fmt.Fprintf(w, "# TYPE mobiledist_events_total counter\n")
	for _, name := range s.CounterNames() {
		fmt.Fprintf(w, "mobiledist_events_total{kind=%q} %d\n", name, s.Counts[name])
	}
	writeHist := func(name, help string, h Histogram) {
		fmt.Fprintf(w, "# HELP mobiledist_%s %s\n", name, help)
		fmt.Fprintf(w, "# TYPE mobiledist_%s summary\n", name)
		for _, q := range []float64{0.5, 0.9, 0.99} {
			fmt.Fprintf(w, "mobiledist_%s{quantile=\"%g\"} %d\n", name, q, h.Quantile(q))
		}
		fmt.Fprintf(w, "mobiledist_%s_sum %d\n", name, h.Sum())
		fmt.Fprintf(w, "mobiledist_%s_count %d\n", name, h.Count())
	}
	writeHist("cs_latency_ticks", "Critical-section request-to-grant latency in ticks.", s.CSLatency)
	writeHist("handoff_ticks", "Mobility handoff duration (leave/reconnect to join) in ticks.", s.HandoffTicks)
	writeHist("chase_hops", "Wireless delivery attempts per routed message.", s.ChaseHops)
	writeHist("arq_retries", "ARQ retransmissions per eventually-acked frame.", s.ARQRetries)
	writeHist("dgram_rtt_us", "Per-datagram round-trip time in microseconds (Karn-sampled).", s.DgramRTTUS)
}

// expvarValue is the JSON shape PublishExpvar and the /vars endpoint
// expose: the counter map plus summary statistics per histogram.
type expvarValue struct {
	Events     map[string]int64       `json:"events"`
	Histograms map[string]histSummary `json:"histograms"`
	Total      uint64                 `json:"total_recorded"`
	Dropped    uint64                 `json:"dropped"`
}

type histSummary struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P99   int64   `json:"p99"`
	Max   int64   `json:"max"`
}

func summarize(h Histogram) histSummary {
	return histSummary{
		Count: h.Count(), Sum: h.Sum(), Mean: h.Mean(),
		P50: h.Quantile(0.5), P99: h.Quantile(0.99), Max: h.Max(),
	}
}

func (t *Tracer) expvarValue() expvarValue {
	s := t.MetricsSnapshot()
	return expvarValue{
		Events: s.Counts,
		Histograms: map[string]histSummary{
			"cs_latency_ticks": summarize(s.CSLatency),
			"handoff_ticks":    summarize(s.HandoffTicks),
			"chase_hops":       summarize(s.ChaseHops),
			"arq_retries":      summarize(s.ARQRetries),
			"dgram_rtt_us":     summarize(s.DgramRTTUS),
		},
		Total:   t.Total(),
		Dropped: t.Dropped(),
	}
}

// PublishExpvar registers the tracer's metrics under name in the process's
// expvar registry (served at /debug/vars by the default mux). Like
// expvar.Publish it panics on duplicate names, so call it once per name
// per process.
func (t *Tracer) PublishExpvar(name string) {
	expvar.Publish(name, expvar.Func(func() any { return t.expvarValue() }))
}

// Handler returns an HTTP handler exposing the tracer:
//
//	/metrics  Prometheus text exposition of the metrics registry
//	/vars     the expvar-style JSON snapshot
//
// Snapshots are taken under the tracer lock, so scraping a live run is
// safe and each scrape is internally consistent.
func (t *Tracer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		t.MetricsSnapshot().WritePrometheus(w)
	})
	mux.HandleFunc("/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(t.expvarValue())
	})
	return mux
}
