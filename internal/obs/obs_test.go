package obs

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mobiledist/internal/sim"
)

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	tr.Record(1, EvTransmit, 1, 2, 3) // must not panic
	tr.SetTopology(2, 3)
	if tr.Total() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Error("nil tracer reported state")
	}
	if m, n := tr.Topology(); m != 0 || n != 0 {
		t.Error("nil tracer reported topology")
	}
	if tr.WithMetrics(NewMetrics()) != nil {
		t.Error("WithMetrics on nil tracer returned non-nil")
	}
	snap := tr.MetricsSnapshot()
	if len(snap.Counts) != 0 {
		t.Error("nil tracer snapshot has counts")
	}
}

func TestRecordAllocatesNothing(t *testing.T) {
	tr := NewTracer(64).WithMetrics(NewMetrics())
	tr.Record(0, EvCSRequest, 1, 0, 0) // warm the pairing map
	var now sim.Time
	allocs := testing.AllocsPerRun(1000, func() {
		now++
		tr.Record(now, EvTransmit, 3, 7, 0)
		tr.Record(now, EvDeliver, 1, 0, 1)
	})
	if allocs != 0 {
		t.Errorf("Record allocates %.1f per run, want 0", allocs)
	}
}

func TestMaskedKindRecordsNothingAndAllocatesNothing(t *testing.T) {
	tr := NewTracer(0).WithMetrics(NewMetrics()) // recorder mode: appends would allocate
	tr.SetKindEnabled(EvTransmit, false)
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Record(1, EvTransmit, 3, 7, 0)
	})
	if allocs != 0 {
		t.Errorf("masked-out Record allocates %.1f per run, want 0", allocs)
	}
	if tr.Total() != 0 || len(tr.Events()) != 0 {
		t.Errorf("masked-out kind recorded: total=%d events=%d", tr.Total(), len(tr.Events()))
	}
	if got := tr.MetricsSnapshot().Counts[EvTransmit.String()]; got != 0 {
		t.Errorf("masked-out kind reached metrics: count=%d", got)
	}

	tr.Record(2, EvDeliver, 1, 0, 1) // other kinds unaffected
	tr.SetKindEnabled(EvTransmit, true)
	tr.Record(3, EvTransmit, 3, 7, 0)
	if tr.Total() != 2 {
		t.Errorf("after re-enable Total = %d, want 2", tr.Total())
	}
}

// TestMaskedDgramKindsAllocateNothing pins the masked fast path for the
// datagram-substrate kinds: a netrt hub tracing only model events must pay
// zero allocations for the per-packet events a busy UDP transport emits.
func TestMaskedDgramKindsAllocateNothing(t *testing.T) {
	dgramKinds := []EventKind{
		EvSessionEstablished, EvPacketSent, EvPacketRecv,
		EvPacketRetransmit, EvPacketReplayDropped, EvPacketRTT,
	}
	tr := NewTracer(0).WithMetrics(NewMetrics())
	for _, k := range dgramKinds {
		tr.SetKindEnabled(k, false)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		for _, k := range dgramKinds {
			tr.Record(1, k, 3, 250, 0)
		}
	})
	if allocs != 0 {
		t.Errorf("masked-out datagram kinds allocate %.1f per run, want 0", allocs)
	}
	if tr.Total() != 0 {
		t.Errorf("masked-out datagram kinds recorded: total=%d", tr.Total())
	}
	if s := tr.MetricsSnapshot(); s.DgramRTTUS.Count() != 0 {
		t.Errorf("masked packet-rtt reached the RTT histogram: count=%d", s.DgramRTTUS.Count())
	}
}

// TestPacketRTTFeedsHistogram: an enabled packet-rtt event lands its
// microsecond operand in the DgramRTTUS histogram.
func TestPacketRTTFeedsHistogram(t *testing.T) {
	tr := NewTracer(0).WithMetrics(NewMetrics())
	tr.Record(5, EvPacketRTT, 1, 740, 0)
	tr.Record(6, EvPacketRTT, 1, 260, 0)
	s := tr.MetricsSnapshot()
	if s.DgramRTTUS.Count() != 2 || s.DgramRTTUS.Sum() != 1000 {
		t.Errorf("DgramRTTUS count=%d sum=%d, want 2, 1000", s.DgramRTTUS.Count(), s.DgramRTTUS.Sum())
	}
	if s.Counts["packet-rtt"] != 2 {
		t.Errorf("packet-rtt count = %d, want 2", s.Counts["packet-rtt"])
	}
}

func TestEnableOnlyWhitelistsKinds(t *testing.T) {
	tr := NewTracer(0)
	tr.EnableOnly(MobilityKinds()...)
	for _, k := range Kinds() {
		tr.Record(1, k, 0, 0, 0)
	}
	evs := tr.Events()
	if len(evs) != len(MobilityKinds()) {
		t.Fatalf("recorded %d events, want %d", len(evs), len(MobilityKinds()))
	}
	for i, want := range MobilityKinds() {
		if evs[i].Kind != want {
			t.Errorf("event %d: kind %v, want %v", i, evs[i].Kind, want)
		}
	}
}

func TestSampleEveryKeepsOneInN(t *testing.T) {
	tr := NewTracer(0)
	tr.SetSampleEvery(EvTransmit, 10)
	for i := int32(0); i < 95; i++ {
		tr.Record(sim.Time(i), EvTransmit, i, 0, 0)
		tr.Record(sim.Time(i), EvDeliver, i, 0, 0) // unsampled control
	}
	var transmits, delivers int
	for _, ev := range tr.Events() {
		switch ev.Kind {
		case EvTransmit:
			if ev.A%10 != 0 {
				t.Errorf("sampled event A = %d, want a multiple of 10 (first of each stride)", ev.A)
			}
			transmits++
		case EvDeliver:
			delivers++
		}
	}
	if transmits != 10 || delivers != 95 {
		t.Errorf("kept %d transmits (want 10) and %d delivers (want 95)", transmits, delivers)
	}
	tr.SetSampleEvery(EvTransmit, 0) // restore every-event recording
	tr.Record(100, EvTransmit, -1, 0, 0)
	tr.Record(101, EvTransmit, -2, 0, 0)
	evs := tr.Events()
	if evs[len(evs)-1].A != -2 || evs[len(evs)-2].A != -1 {
		t.Error("SetSampleEvery(kind, 0) did not restore every-event recording")
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	tr := NewTracer(4)
	for i := int32(0); i < 10; i++ {
		tr.Record(sim.Time(i), EvTransmit, i, 0, 0)
	}
	if tr.Total() != 10 {
		t.Errorf("Total = %d, want 10", tr.Total())
	}
	if tr.Dropped() != 6 {
		t.Errorf("Dropped = %d, want 6", tr.Dropped())
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := int32(6 + i); ev.A != want {
			t.Errorf("event %d: A = %d, want %d (oldest-first window)", i, ev.A, want)
		}
	}
}

func TestRecorderKeepsEverything(t *testing.T) {
	tr := NewTracer(0)
	for i := int32(0); i < 100; i++ {
		tr.Record(sim.Time(i), EvTransmit, i, 0, 0)
	}
	if tr.Dropped() != 0 || len(tr.Events()) != 100 {
		t.Errorf("recorder dropped events: dropped=%d len=%d", tr.Dropped(), len(tr.Events()))
	}
}

func TestTopologyMixedDetection(t *testing.T) {
	tr := NewTracer(0)
	tr.SetTopology(4, 16)
	if m, n := tr.Topology(); m != 4 || n != 16 {
		t.Errorf("Topology = (%d, %d), want (4, 16)", m, n)
	}
	tr.SetTopology(4, 16) // same shape is fine
	tr.SetTopology(8, 32) // mixing zeroes it
	if m, n := tr.Topology(); m != 0 || n != 0 {
		t.Errorf("mixed Topology = (%d, %d), want (0, 0)", m, n)
	}
	tr.SetTopology(4, 16) // stays mixed
	if m, n := tr.Topology(); m != 0 || n != 0 {
		t.Error("mixed topology reverted")
	}
}

func TestKindStringRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		name := k.String()
		if name == "unknown" || name == "" {
			t.Errorf("kind %d has no name", k)
		}
		got, ok := KindFromString(name)
		if !ok || got != k {
			t.Errorf("KindFromString(%q) = %d, %v; want %d", name, got, ok, k)
		}
	}
	if _, ok := KindFromString("nope"); ok {
		t.Error("unknown name accepted")
	}
}

func sampleTrace() Trace {
	return Trace{M: 2, N: 3, Events: []Event{
		{T: 0, Kind: EvTransmit, A: 5, B: 2, C: 0},
		{T: 3, Kind: EvLeave, A: 1, B: 0, C: 0},
		{T: 40, Kind: EvJoin, A: 1, B: 1, C: 0},
		{T: 40, Kind: EvDeliver, A: 2, B: 1, C: -1},
		{T: 1 << 40, Kind: EvCrashDiscard, A: 3, B: 1, C: 0},
	}}
}

func TestJSONLRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	got, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	assertTraceEqual(t, tr, got)

	// Canonical: re-encoding is byte-identical.
	var buf2 bytes.Buffer
	if err := got.WriteJSONL(&buf2); err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("JSONL encoding is not canonical")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	tr := sampleTrace()
	data, err := tr.MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	got, err := UnmarshalBinary(data)
	if err != nil {
		t.Fatalf("UnmarshalBinary: %v", err)
	}
	assertTraceEqual(t, tr, got)
	if _, err := UnmarshalBinary([]byte("not a trace")); err == nil {
		t.Error("bad magic accepted")
	}
}

func assertTraceEqual(t *testing.T, want, got Trace) {
	t.Helper()
	if got.M != want.M || got.N != want.N {
		t.Errorf("topology (%d, %d), want (%d, %d)", got.M, got.N, want.M, want.N)
	}
	if len(got.Events) != len(want.Events) {
		t.Fatalf("%d events, want %d", len(got.Events), len(want.Events))
	}
	for i := range want.Events {
		if got.Events[i] != want.Events[i] {
			t.Errorf("event %d: %+v, want %+v", i, got.Events[i], want.Events[i])
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	if h.Count() != 1000 || h.Min() != 1 || h.Max() != 1000 {
		t.Fatalf("count=%d min=%d max=%d", h.Count(), h.Min(), h.Max())
	}
	// Log-linear with 2 significant bits: quantile estimates must be within
	// 25% below the true value (bucket lower bounds).
	for _, tc := range []struct {
		q    float64
		true int64
	}{{0.5, 500}, {0.9, 900}, {0.99, 990}, {1.0, 1000}} {
		got := h.Quantile(tc.q)
		if got > tc.true || float64(got) < float64(tc.true)*0.75 {
			t.Errorf("Quantile(%g) = %d, want in [%g, %d]", tc.q, got, float64(tc.true)*0.75, tc.true)
		}
	}
	if h.Mean() < 500 || h.Mean() > 501 {
		t.Errorf("Mean = %g, want 500.5", h.Mean())
	}
}

func TestHistogramObserveIsAllocFree(t *testing.T) {
	var h Histogram
	allocs := testing.AllocsPerRun(1000, func() { h.Observe(12345) })
	if allocs != 0 {
		t.Errorf("Observe allocates %.1f per run", allocs)
	}
}

func TestMetricsPairing(t *testing.T) {
	tr := NewTracer(0).WithMetrics(NewMetrics())
	// CS latency: request at 10, enter at 25 → 15 ticks.
	tr.Record(10, EvCSRequest, 1, 0, 0)
	tr.Record(25, EvCSEnter, 1, 0, 0)
	// Handoff: leave at 30, join at 70 → 40 ticks.
	tr.Record(30, EvLeave, 2, 0, 0)
	tr.Record(70, EvJoin, 2, 1, 0)
	// Chase hops and ARQ retries come straight off the operands.
	tr.Record(80, EvDeliver, 1, 1, 3)
	tr.Record(90, EvAck, 4, 2, 0)

	s := tr.MetricsSnapshot()
	if s.CSLatency.Count() != 1 || s.CSLatency.Sum() != 15 {
		t.Errorf("CSLatency count=%d sum=%d, want 1, 15", s.CSLatency.Count(), s.CSLatency.Sum())
	}
	if s.HandoffTicks.Count() != 1 || s.HandoffTicks.Sum() != 40 {
		t.Errorf("HandoffTicks count=%d sum=%d, want 1, 40", s.HandoffTicks.Count(), s.HandoffTicks.Sum())
	}
	if s.ChaseHops.Sum() != 3 || s.ARQRetries.Sum() != 2 {
		t.Errorf("ChaseHops sum=%d ARQRetries sum=%d, want 3, 2", s.ChaseHops.Sum(), s.ARQRetries.Sum())
	}
	if s.Counts["cs-request"] != 1 || s.Counts["join"] != 1 {
		t.Errorf("counters wrong: %v", s.Counts)
	}
}

func TestSnapshotDiff(t *testing.T) {
	tr := NewTracer(0).WithMetrics(NewMetrics())
	tr.Record(0, EvTransmit, 0, 1, 0)
	tr.Record(1, EvDeliver, 0, 0, 1)
	before := tr.MetricsSnapshot()
	tr.Record(2, EvTransmit, 0, 1, 0)
	tr.Record(3, EvDeliver, 0, 0, 2)
	d := tr.MetricsSnapshot().Diff(before)
	if d.Counts["transmit"] != 1 || d.Counts["deliver"] != 1 {
		t.Errorf("diff counts: %v", d.Counts)
	}
	if d.ChaseHops.Count() != 1 || d.ChaseHops.Sum() != 2 {
		t.Errorf("diff ChaseHops count=%d sum=%d, want 1, 2", d.ChaseHops.Count(), d.ChaseHops.Sum())
	}
}

func TestFilterAndMobilityKinds(t *testing.T) {
	events := sampleTrace().Events
	kept := Filter(events, KindFilter(MobilityKinds()...))
	if len(kept) != 2 || kept[0].Kind != EvLeave || kept[1].Kind != EvJoin {
		t.Errorf("mobility filter kept %v", Lines(kept, false))
	}
	if got := events[1].Line(true); got != "3 leave 1 0 0" {
		t.Errorf("Line(true) = %q", got)
	}
	if got := events[3].Line(false); got != "deliver 2 1 -1" {
		t.Errorf("Line(false) = %q", got)
	}
}

func TestHandlerServesMetricsAndVars(t *testing.T) {
	tr := NewTracer(0).WithMetrics(NewMetrics())
	tr.Record(10, EvCSRequest, 1, 0, 0)
	tr.Record(30, EvCSEnter, 1, 0, 0)
	srv := httptest.NewServer(tr.Handler())
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return buf.String()
	}

	metrics := get("/metrics")
	for _, want := range []string{
		`mobiledist_events_total{kind="cs-request"} 1`,
		"mobiledist_cs_latency_ticks_count 1",
		"mobiledist_cs_latency_ticks_sum 20",
		"# TYPE mobiledist_events_total counter",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}
	vars := get("/vars")
	for _, want := range []string{`"cs-request": 1`, `"total_recorded": 2`, `"cs_latency_ticks"`} {
		if !strings.Contains(vars, want) {
			t.Errorf("/vars missing %q:\n%s", want, vars)
		}
	}
}
