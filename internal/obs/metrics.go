package obs

import (
	"fmt"
	"math/bits"
	"sort"

	"mobiledist/internal/sim"
)

// Histogram buckets and layout: HDR-style base-2 buckets with 4 linear
// sub-buckets each (2 significant bits), covering non-negative int64
// values. Index arithmetic is branch-light and allocation-free; relative
// quantile error is bounded by 25%.
const (
	histSubBits = 2
	histSubs    = 1 << histSubBits       // sub-buckets per power of two
	histBuckets = (64 - histSubBits) * 4 // enough for any int64 exponent
)

// Histogram is a fixed-size log-linear latency/size histogram. The zero
// value is ready to use. Not safe for concurrent use on its own; the
// owning Metrics registry serialises access.
type Histogram struct {
	counts   [histBuckets]int64
	total    int64
	sum      int64
	min, max int64
}

func histIndex(v int64) int {
	if v < histSubs {
		return int(v) // exact for the smallest values
	}
	// exp is the index of the highest set bit; the top histSubBits bits
	// below it select the linear sub-bucket.
	exp := 63 - bits.LeadingZeros64(uint64(v))
	sub := (v >> (uint(exp) - histSubBits)) & (histSubs - 1)
	idx := (exp-histSubBits+1)*histSubs + int(sub)
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	return idx
}

// histLower returns the smallest value mapping to bucket idx.
func histLower(idx int) int64 {
	if idx < histSubs {
		return int64(idx)
	}
	exp := idx/histSubs + histSubBits - 1
	sub := int64(idx % histSubs)
	return (int64(1) << uint(exp)) | (sub << (uint(exp) - histSubBits))
}

// Observe records one value (negative values clamp to zero).
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	if h.total == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.counts[histIndex(v)]++
	h.total++
	h.sum += v
}

// Count reports how many values were observed.
func (h *Histogram) Count() int64 { return h.total }

// Sum reports the sum of observed values.
func (h *Histogram) Sum() int64 { return h.sum }

// Min and Max report the observed extrema (0 when empty).
func (h *Histogram) Min() int64 { return h.min }

// Max reports the largest observed value (0 when empty).
func (h *Histogram) Max() int64 { return h.max }

// Mean reports the arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Quantile returns an estimate of the q-quantile (q in [0, 1]): the lower
// bound of the bucket holding the q-th observation, clamped to the
// observed extrema.
func (h *Histogram) Quantile(q float64) int64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(h.total-1))
	var seen int64
	for idx, c := range h.counts {
		seen += c
		if seen > rank {
			v := histLower(idx)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Diff returns h - prev bucket-wise: the histogram of observations made
// after prev was snapshotted. Min/max are taken from h (extrema are not
// reversible).
func (h Histogram) Diff(prev Histogram) Histogram {
	out := h
	for i := range out.counts {
		out.counts[i] -= prev.counts[i]
	}
	out.total -= prev.total
	out.sum -= prev.sum
	return out
}

// Metrics is the registry fed by a Tracer: per-kind event counters and the
// model's latency/shape histograms. It is always accessed under the owning
// tracer's lock (or single-threaded before traffic flows), so the fields
// need no locking of their own; Snapshot copies everything by value.
type Metrics struct {
	counts [evKindCount]int64

	// CSLatency is the CS-request→grant latency distribution in ticks.
	CSLatency Histogram
	// HandoffTicks is the duration of mobility handoffs in ticks:
	// leave→join for cell switches, reconnect→join for reconnections.
	HandoffTicks Histogram
	// ChaseHops is the wireless delivery attempts per routed message
	// (1 = delivered where first addressed; each extra is one
	// search-and-chase hop after the destination moved in flight).
	ChaseHops Histogram
	// ARQRetries is the retransmissions per eventually-acked frame
	// (0 = first try succeeded).
	ARQRetries Histogram
	// DgramRTTUS is the per-datagram round-trip time distribution in
	// microseconds, sampled by the UDP session layer on acks of segments
	// that were never retransmitted (Karn's rule).
	DgramRTTUS Histogram
	// BundleCopies is the replication cost per delivered DTN bundle: the
	// number of replicas created over its lifetime, sampled at the
	// primary delivery (EvBundleDelivered operand C).
	BundleCopies Histogram
	// BundleCustodyTicks is the custody-accept→delivery duration per
	// delivered bundle in ticks — how long store-carry-forward held a
	// message before its MH reappeared.
	BundleCustodyTicks Histogram

	csReqAt         map[int32]sim.Time
	moveStart       map[int32]sim.Time
	bundleCustodyAt map[int32]sim.Time
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		csReqAt:         make(map[int32]sim.Time),
		moveStart:       make(map[int32]sim.Time),
		bundleCustodyAt: make(map[int32]sim.Time),
	}
}

// observe folds one event into the registry. Called under the tracer lock.
func (m *Metrics) observe(ev Event) {
	if ev.Kind < evKindCount {
		m.counts[ev.Kind]++
	}
	switch ev.Kind {
	case EvCSRequest:
		m.csReqAt[ev.A] = ev.T
	case EvCSEnter:
		if t0, ok := m.csReqAt[ev.A]; ok {
			m.CSLatency.Observe(int64(ev.T - t0))
			delete(m.csReqAt, ev.A)
		}
	case EvLeave, EvReconnect:
		m.moveStart[ev.A] = ev.T
	case EvJoin:
		if t0, ok := m.moveStart[ev.A]; ok {
			m.HandoffTicks.Observe(int64(ev.T - t0))
			delete(m.moveStart, ev.A)
		}
	case EvDeliver:
		m.ChaseHops.Observe(int64(ev.C))
	case EvAck:
		m.ARQRetries.Observe(int64(ev.B))
	case EvPacketRTT:
		m.DgramRTTUS.Observe(int64(ev.B))
	case EvBundleCustody:
		// First acceptance starts the custody clock; replicas of the same
		// bundle arriving later must not reset it.
		if _, ok := m.bundleCustodyAt[ev.A]; !ok {
			m.bundleCustodyAt[ev.A] = ev.T
		}
	case EvBundleDelivered:
		m.BundleCopies.Observe(int64(ev.C))
		if t0, ok := m.bundleCustodyAt[ev.A]; ok {
			m.BundleCustodyTicks.Observe(int64(ev.T - t0))
			delete(m.bundleCustodyAt, ev.A)
		}
	case EvBundleExpired, EvBundleDropped:
		delete(m.bundleCustodyAt, ev.A)
	}
}

// MetricsSnapshot is a point-in-time copy of the registry, comparable and
// diffable. Counts maps kind names to event counts (zero-count kinds are
// omitted).
type MetricsSnapshot struct {
	Counts             map[string]int64
	CSLatency          Histogram
	HandoffTicks       Histogram
	ChaseHops          Histogram
	ARQRetries         Histogram
	DgramRTTUS         Histogram
	BundleCopies       Histogram
	BundleCustodyTicks Histogram
}

// Snapshot copies the registry. Callers normally reach it through
// Tracer-owning APIs that serialise against recording.
func (m *Metrics) Snapshot() MetricsSnapshot {
	s := MetricsSnapshot{
		Counts:             make(map[string]int64),
		CSLatency:          m.CSLatency,
		HandoffTicks:       m.HandoffTicks,
		ChaseHops:          m.ChaseHops,
		ARQRetries:         m.ARQRetries,
		DgramRTTUS:         m.DgramRTTUS,
		BundleCopies:       m.BundleCopies,
		BundleCustodyTicks: m.BundleCustodyTicks,
	}
	for k, c := range m.counts {
		if c != 0 {
			s.Counts[EventKind(k).String()] = c
		}
	}
	return s
}

// MetricsSnapshot returns a snapshot of the attached registry taken under
// the tracer lock, so it is consistent with concurrent recording; the zero
// snapshot if no registry (or tracer) is attached.
func (t *Tracer) MetricsSnapshot() MetricsSnapshot {
	if t == nil {
		return MetricsSnapshot{Counts: map[string]int64{}}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.metrics == nil {
		return MetricsSnapshot{Counts: map[string]int64{}}
	}
	return t.metrics.Snapshot()
}

// Diff returns the activity between prev and s: per-counter and per-bucket
// subtraction. Use it to meter one phase of a run.
func (s MetricsSnapshot) Diff(prev MetricsSnapshot) MetricsSnapshot {
	out := MetricsSnapshot{
		Counts:             make(map[string]int64),
		CSLatency:          s.CSLatency.Diff(prev.CSLatency),
		HandoffTicks:       s.HandoffTicks.Diff(prev.HandoffTicks),
		ChaseHops:          s.ChaseHops.Diff(prev.ChaseHops),
		ARQRetries:         s.ARQRetries.Diff(prev.ARQRetries),
		DgramRTTUS:         s.DgramRTTUS.Diff(prev.DgramRTTUS),
		BundleCopies:       s.BundleCopies.Diff(prev.BundleCopies),
		BundleCustodyTicks: s.BundleCustodyTicks.Diff(prev.BundleCustodyTicks),
	}
	for k, c := range s.Counts {
		if d := c - prev.Counts[k]; d != 0 {
			out.Counts[k] = d
		}
	}
	for k, c := range prev.Counts {
		if _, ok := s.Counts[k]; !ok && c != 0 {
			out.Counts[k] = -c
		}
	}
	return out
}

// CounterNames returns the snapshot's counter names sorted, for stable
// rendering.
func (s MetricsSnapshot) CounterNames() []string {
	names := make([]string, 0, len(s.Counts))
	for k := range s.Counts {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Format renders the snapshot as an aligned human-readable block.
func (s MetricsSnapshot) Format() string {
	out := ""
	for _, name := range s.CounterNames() {
		out += fmt.Sprintf("%-16s %d\n", name, s.Counts[name])
	}
	for _, h := range []struct {
		name string
		h    Histogram
	}{
		{"cs-latency", s.CSLatency},
		{"handoff-ticks", s.HandoffTicks},
		{"chase-hops", s.ChaseHops},
		{"arq-retries", s.ARQRetries},
		{"dgram-rtt-us", s.DgramRTTUS},
		{"bundle-copies", s.BundleCopies},
		{"bundle-custody-ticks", s.BundleCustodyTicks},
	} {
		if h.h.Count() == 0 {
			continue
		}
		out += fmt.Sprintf("%-16s n=%d mean=%.2f p50=%d p99=%d max=%d\n",
			h.name, h.h.Count(), h.h.Mean(), h.h.Quantile(0.5), h.h.Quantile(0.99), h.h.Max())
	}
	return out
}
