package dgram

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"os"
	"sort"
	"sync"
	"time"

	"mobiledist/internal/obs"
)

// maxWindowBytes bounds unacked stream bytes in flight per direction;
// Write blocks (backpressure) when the window is full, exactly like a TCP
// send buffer.
const maxWindowBytes = 256 << 10

const (
	sideDial   = 0
	sideAccept = 1
)

// packetSink is where a session's sealed datagrams go: the connected
// socket on the dialing side, WriteToUDP through the shared listener
// socket on the accepting side.
type packetSink func(pkt []byte) error

// segment is one in-flight run of stream bytes awaiting acknowledgement.
type segment struct {
	off     uint64
	data    []byte
	sentAt  time.Time
	retries int
	sacked  bool // selectively acked: held for window accounting, never re-sent
}

// oooSeg is received stream data parked ahead of the contiguous prefix.
type oooSeg struct {
	off  uint64
	data []byte
}

// Conn is one datagram session: a reliable, ordered, authenticated byte
// stream implementing net.Conn, so wire.Reader/Writer run over it
// unchanged. Write deadlines are not supported (writes only block on the
// in-flight window); read deadlines are.
type Conn struct {
	cfg Config
	// sealKey authenticates outbound packets, openKey inbound; they are
	// the two direction keys of dirKeys, swapped between the sides, so a
	// reflected datagram never authenticates (see packet.go).
	sealKey []byte
	openKey []byte
	send    packetSink
	local   net.Addr
	remote  net.Addr

	// onClose detaches the session from its listener; nil on the dialing
	// side. Called without mu held.
	onClose func()
	// sock is the owned socket on the dialing side; nil on the accepting
	// side (the listener owns the shared socket).
	sock *net.UDPConn

	mu   sync.Mutex
	cond *sync.Cond

	sid         uint64
	side        int32
	established bool
	dialNonce   uint64 // distinguishes connect retransmits from fresh re-dials
	acceptBody  []byte // accept side: resent verbatim on connect retransmits
	accepted    chan struct{}

	err       error // terminal; Read/Write fail once set
	remoteEOF bool  // peer closed: drain readBuf, then io.EOF
	closed    bool

	nextSeq  uint64 // next packet sequence to stamp on a send
	replay   replayWindow
	lastRecv time.Time

	// send side: segments ordered by offset, all with off+len > cumAcked.
	nextOff  uint64
	cumAcked uint64
	segs     []*segment

	// receive side.
	recvBase uint64
	ooo      []oooSeg
	readBuf  []byte

	readDeadline time.Time

	stats Stats

	done      chan struct{}
	closeOnce sync.Once
}

func newConn(cfg Config, key []byte, side int32, send packetSink, local, remote net.Addr) *Conn {
	dialKey, acceptKey := dirKeys(key)
	c := &Conn{
		cfg:      cfg,
		sealKey:  dialKey,
		openKey:  acceptKey,
		side:     side,
		send:     send,
		local:    local,
		remote:   remote,
		accepted: make(chan struct{}),
		lastRecv: time.Now(),
		done:     make(chan struct{}),
	}
	if side == sideAccept {
		c.sealKey, c.openKey = acceptKey, dialKey
	}
	c.cond = sync.NewCond(&c.mu)
	return c
}

func (c *Conn) start() { go c.retransmitLoop() }

func (c *Conn) trace(kind obs.EventKind, b, cc int32) {
	if c.cfg.Trace != nil {
		c.cfg.Trace.Record(c.cfg.TraceNow(), kind, int32(c.sid&0x7fffffff), b, cc)
	}
}

// sealNextLocked seals one datagram under the next packet sequence and
// counts it as sent; the caller ships it — bulk senders drop mu first, so
// socket writes never stall the listener's shared readLoop on this
// session's lock.
func (c *Conn) sealNextLocked(ptype byte, body []byte) []byte {
	pkt := sealPacket(c.sealKey, header{Type: ptype, Session: c.sid, Seq: c.nextSeq}, body)
	c.nextSeq++
	c.stats.PacketsSent++
	c.trace(obs.EvPacketSent, int32(ptype), int32(len(pkt)))
	return pkt
}

// sendPacketLocked seals and ships one datagram. Send errors are
// deliberately dropped: UDP gives no delivery signal anyway, and loss
// recovery is the retransmit loop's job.
func (c *Conn) sendPacketLocked(ptype byte, body []byte) {
	_ = c.send(c.sealNextLocked(ptype, body))
}

func (c *Conn) maxSegment() int { return c.cfg.MTU - headerSize - tagSize - dataOverhead }

func (c *Conn) sealSegmentLocked(s *segment) []byte {
	body := make([]byte, dataOverhead+len(s.data))
	binary.BigEndian.PutUint64(body, s.off)
	copy(body[dataOverhead:], s.data)
	return c.sealNextLocked(ptData, body)
}

// Write packetizes p into MTU-sized segments (fragmenting frames larger
// than one datagram) and transmits them, blocking while the in-flight
// window is full. Segments are sealed under mu but shipped with it
// released: on the accept side every session shares the listener's socket
// and readLoop, so holding mu across a window's worth of socket writes
// would head-of-line-block demultiplexing for all sessions.
func (c *Conn) Write(p []byte) (int, error) {
	total := 0
	c.mu.Lock()
	for len(p) > 0 {
		for c.err == nil && c.nextOff-c.cumAcked >= maxWindowBytes {
			c.cond.Wait()
		}
		if c.err != nil {
			c.mu.Unlock()
			return total, c.err
		}
		room := int(maxWindowBytes - (c.nextOff - c.cumAcked))
		chunk := p
		if len(chunk) > room {
			chunk = chunk[:room]
		}
		var pkts [][]byte
		for len(chunk) > 0 {
			m := len(chunk)
			if ms := c.maxSegment(); m > ms {
				m = ms
			}
			s := &segment{
				off:    c.nextOff,
				data:   append([]byte(nil), chunk[:m]...),
				sentAt: time.Now(),
			}
			c.segs = append(c.segs, s)
			c.nextOff += uint64(m)
			pkts = append(pkts, c.sealSegmentLocked(s))
			chunk = chunk[m:]
			p = p[m:]
			total += m
		}
		c.mu.Unlock()
		for _, pkt := range pkts {
			_ = c.send(pkt)
		}
		c.mu.Lock()
	}
	c.mu.Unlock()
	return total, nil
}

// Read returns in-order stream bytes, blocking until some arrive, the
// peer closes, the session dies, or the read deadline passes.
func (c *Conn) Read(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if len(c.readBuf) > 0 {
			n := copy(p, c.readBuf)
			c.readBuf = c.readBuf[n:]
			return n, nil
		}
		if c.remoteEOF {
			return 0, io.EOF
		}
		if c.err != nil {
			return 0, c.err
		}
		if !c.readDeadline.IsZero() && !time.Now().Before(c.readDeadline) {
			return 0, os.ErrDeadlineExceeded
		}
		c.cond.Wait()
	}
}

// handlePacket authenticates, replay-checks and dispatches one inbound
// datagram. pkt is only valid for the duration of the call.
func (c *Conn) handlePacket(pkt []byte) {
	h, body, err := openPacket(c.openKey, pkt)
	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil {
		c.stats.BadPackets++
		return
	}
	if c.established && h.Session != c.sid {
		c.stats.BadPackets++
		return
	}
	if !c.established && h.Type != ptAccept && c.side == sideDial {
		// Nothing but the accept is meaningful before the handshake
		// lands; data racing ahead of a lost accept is recovered by the
		// sender's retransmits once we are established.
		c.stats.BadPackets++
		return
	}
	if !c.replay.admit(h.Seq) {
		c.stats.ReplayDrops++
		c.trace(obs.EvPacketReplayDropped, int32(h.Seq&0x7fffffff), 0)
		return
	}
	c.lastRecv = time.Now()
	c.stats.PacketsReceived++
	c.trace(obs.EvPacketRecv, int32(h.Type), int32(len(pkt)))
	switch h.Type {
	case ptAccept:
		c.handleAcceptLocked(body)
	case ptData:
		c.handleDataLocked(body)
	case ptAck:
		c.handleAckLocked(body)
	case ptClose:
		c.remoteEOF = true
		c.cond.Broadcast()
	}
}

func (c *Conn) handleAcceptLocked(body []byte) {
	if c.side != sideDial || c.established || len(body) < 16 {
		return // duplicate or stray accept
	}
	if binary.BigEndian.Uint64(body[8:16]) != c.dialNonce {
		c.stats.BadPackets++
		return // accept for some other dial attempt
	}
	c.sid = binary.BigEndian.Uint64(body[:8])
	c.established = true
	close(c.accepted)
}

func (c *Conn) handleDataLocked(body []byte) {
	if len(body) < dataOverhead {
		c.stats.BadPackets++
		return
	}
	off := binary.BigEndian.Uint64(body[:dataOverhead])
	data := body[dataOverhead:]
	if len(data) > 0 {
		c.insertDataLocked(off, data)
	}
	c.sendAckLocked()
}

// insertDataLocked folds one segment into the receive state: extend the
// contiguous prefix, or park it out of order. data must be copied (it
// aliases the socket buffer).
func (c *Conn) insertDataLocked(off uint64, data []byte) {
	end := off + uint64(len(data))
	if end <= c.recvBase {
		return // stale retransmit: ack (caller does) and move on
	}
	if off < c.recvBase {
		data = data[c.recvBase-off:]
		off = c.recvBase
	}
	if off > c.recvBase {
		for _, s := range c.ooo {
			if s.off == off && uint64(len(s.data)) >= uint64(len(data)) {
				return // duplicate of a parked segment
			}
		}
		c.ooo = append(c.ooo, oooSeg{off: off, data: append([]byte(nil), data...)})
		return
	}
	c.readBuf = append(c.readBuf, data...)
	c.recvBase = end
	c.drainOOOLocked()
	c.cond.Broadcast()
}

func (c *Conn) drainOOOLocked() {
	for progressed := true; progressed; {
		progressed = false
		kept := c.ooo[:0]
		for _, s := range c.ooo {
			send := s.off + uint64(len(s.data))
			switch {
			case send <= c.recvBase:
				// wholly behind: drop
			case s.off <= c.recvBase:
				c.readBuf = append(c.readBuf, s.data[c.recvBase-s.off:]...)
				c.recvBase = send
				progressed = true
			default:
				kept = append(kept, s)
			}
		}
		c.ooo = kept
	}
}

// mergeRanges collapses [start,end) ranges into a minimal sorted,
// non-overlapping set, truncated to at most max entries.
func mergeRanges(ranges [][2]uint64, max int) [][2]uint64 {
	sort.Slice(ranges, func(i, j int) bool { return ranges[i][0] < ranges[j][0] })
	merged := ranges[:0]
	for _, r := range ranges {
		if n := len(merged); n > 0 && r[0] <= merged[n-1][1] {
			if r[1] > merged[n-1][1] {
				merged[n-1][1] = r[1]
			}
			continue
		}
		merged = append(merged, r)
	}
	if len(merged) > max {
		merged = merged[:max]
	}
	return merged
}

// sendAckLocked ships a cumulative ack plus up to maxAckRanges selective
// ranges covering the parked out-of-order data.
func (c *Conn) sendAckLocked() {
	ranges := make([][2]uint64, 0, len(c.ooo))
	for _, s := range c.ooo {
		ranges = append(ranges, [2]uint64{s.off, s.off + uint64(len(s.data))})
	}
	ranges = mergeRanges(ranges, maxAckRanges)
	body := make([]byte, 9+16*len(ranges))
	binary.BigEndian.PutUint64(body, c.recvBase)
	body[8] = byte(len(ranges))
	for i, r := range ranges {
		binary.BigEndian.PutUint64(body[9+16*i:], r[0])
		binary.BigEndian.PutUint64(body[9+16*i+8:], r[1])
	}
	c.sendPacketLocked(ptAck, body)
}

func (c *Conn) handleAckLocked(body []byte) {
	if len(body) < 9 {
		c.stats.BadPackets++
		return
	}
	cum := binary.BigEndian.Uint64(body[:8])
	n := int(body[8])
	if len(body) < 9+16*n {
		c.stats.BadPackets++
		return
	}
	ranges := make([][2]uint64, n)
	for i := 0; i < n; i++ {
		ranges[i][0] = binary.BigEndian.Uint64(body[9+16*i:])
		ranges[i][1] = binary.BigEndian.Uint64(body[9+16*i+8:])
	}
	if cum > c.nextOff {
		c.stats.BadPackets++
		return
	}
	if cum > c.cumAcked {
		c.cumAcked = cum
	}
	now := time.Now()
	kept := c.segs[:0]
	for _, s := range c.segs {
		end := s.off + uint64(len(s.data))
		resolved := end <= cum
		wasSacked := s.sacked
		if !resolved && !s.sacked {
			for _, r := range ranges {
				if s.off >= r[0] && end <= r[1] {
					s.sacked = true
					break
				}
			}
		}
		if resolved || s.sacked {
			if s.retries == 0 && !wasSacked {
				// Karn's rule: only never-retransmitted segments yield a
				// clean RTT sample — and each at most once (a sacked
				// segment stays listed until the cumulative ack passes).
				c.trace(obs.EvPacketRTT, int32(now.Sub(s.sentAt)/time.Microsecond), 0)
			}
			if !resolved {
				kept = append(kept, s) // sacked: hold for window accounting
			}
			continue
		}
		kept = append(kept, s)
	}
	c.segs = kept
	c.cond.Broadcast()
}

// handleConnectRetry answers a retransmitted connect for this session by
// re-sending the accept; it reports false when the packet is not a
// retransmission of this session's handshake (e.g. a fresh re-dial from
// the same source address under a new token).
func (c *Conn) handleConnectRetry(pkt []byte) bool {
	h, body, err := openPacket(c.openKey, pkt)
	if err != nil || h.Type != ptConnect || len(body) < 8 {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if binary.BigEndian.Uint64(body[:8]) != c.dialNonce {
		return false
	}
	if c.replay.admit(h.Seq) {
		c.stats.PacketsReceived++
		c.lastRecv = time.Now()
	}
	c.sendPacketLocked(ptAccept, c.acceptBody)
	return true
}

func (c *Conn) rto(retries int) time.Duration {
	d := c.cfg.RTO << uint(retries)
	if max := c.cfg.RTO * backoffCap; d > max || d <= 0 {
		d = max
	}
	return d
}

// retransmitLoop re-sends timed-out segments with doubling backoff capped
// at 8x, gives up after MaxRetries, and reaps idle sessions.
func (c *Conn) retransmitLoop() {
	tick := c.cfg.RTO / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-t.C:
		}
		c.mu.Lock()
		if c.err != nil {
			c.mu.Unlock()
			return
		}
		now := time.Now()
		var failed error
		if c.cfg.IdleTimeout > 0 && now.Sub(c.lastRecv) > c.cfg.IdleTimeout {
			failed = fmt.Errorf("%w: idle for %v", ErrSessionDead, c.cfg.IdleTimeout)
		}
		var pkts [][]byte
		for _, s := range c.segs {
			if failed != nil {
				break
			}
			if s.sacked || now.Sub(s.sentAt) < c.rto(s.retries) {
				continue
			}
			if s.retries >= c.cfg.MaxRetries {
				failed = fmt.Errorf("%w: segment at %d unacked after %d retransmits",
					ErrSessionDead, s.off, s.retries)
				break
			}
			s.retries++
			s.sentAt = now
			c.stats.Retransmits++
			c.trace(obs.EvPacketRetransmit, int32(s.retries), int32(len(s.data)))
			pkts = append(pkts, c.sealSegmentLocked(s))
		}
		if failed != nil {
			c.failLocked(failed)
			c.mu.Unlock()
			c.teardown()
			return
		}
		c.mu.Unlock()
		// Ship retransmits with mu released (same reasoning as Write).
		for _, pkt := range pkts {
			_ = c.send(pkt)
		}
	}
}

// failLocked marks the session terminally broken and wakes every waiter.
func (c *Conn) failLocked(err error) {
	if c.err == nil {
		c.err = err
	}
	c.cond.Broadcast()
}

// teardown releases resources exactly once. Never called with mu held
// (onClose takes the listener lock).
func (c *Conn) teardown() {
	c.closeOnce.Do(func() {
		close(c.done)
		if c.onClose != nil {
			c.onClose()
		}
		if c.sock != nil {
			c.sock.Close()
		}
	})
}

// Close sends a best-effort close notification and tears the session
// down; pending Read/Write calls fail.
func (c *Conn) Close() error {
	c.mu.Lock()
	if !c.closed {
		c.closed = true
		// Twice: best effort against loss; the peer's replay window
		// absorbs the duplicate.
		c.sendPacketLocked(ptClose, nil)
		c.sendPacketLocked(ptClose, nil)
		c.failLocked(ErrClosed)
	}
	c.mu.Unlock()
	c.teardown()
	return nil
}

// Stats returns a copy of the session's datagram counters.
func (c *Conn) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.SessionID = c.sid
	return s
}

// SessionID returns the session identifier assigned at accept time.
func (c *Conn) SessionID() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sid
}

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return c.local }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return c.remote }

// SetDeadline implements net.Conn (read side only; writes block solely on
// the in-flight window).
func (c *Conn) SetDeadline(t time.Time) error { return c.SetReadDeadline(t) }

// SetReadDeadline implements net.Conn.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDeadline = t
	c.mu.Unlock()
	if !t.IsZero() {
		d := time.Until(t)
		if d < 0 {
			d = 0
		}
		time.AfterFunc(d, c.cond.Broadcast)
	}
	return nil
}

// SetWriteDeadline implements net.Conn; write deadlines are not
// supported and are silently ignored.
func (c *Conn) SetWriteDeadline(time.Time) error { return nil }

// readLoop pumps the dialing side's owned socket into handlePacket.
func (c *Conn) readLoop() {
	buf := make([]byte, maxPacket)
	for {
		n, err := c.sock.Read(buf)
		if err != nil {
			select {
			case <-c.done:
			default:
				c.mu.Lock()
				c.failLocked(fmt.Errorf("dgram: socket read: %w", err))
				c.mu.Unlock()
				c.teardown()
			}
			return
		}
		c.handlePacket(buf[:n])
	}
}
