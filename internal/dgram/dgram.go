// Package dgram is a UDP session layer carrying the wire protocol's frames
// over datagrams. It is the transport the paper actually assumes: a lossy
// packet medium where loss recovery, ordering and duplicate suppression are
// the protocol's problem, not the kernel's.
//
// A session is established with an HMAC-authenticated connect token (minted
// out of band or by any holder of the cluster secret; expiry plus
// server-address binding) and then carries a reliable, ordered,
// authenticated byte stream — so wire.Reader/Writer and everything above
// them run unchanged over either TCP or this layer:
//
//   - every datagram carries a per-direction monotonic packet sequence
//     number and a truncated HMAC-SHA256 tag under a direction-specific
//     key derived from the session key (each side seals under its own
//     direction key, so reflected datagrams fail authentication); the
//     receiver keeps a 256-entry sliding replay window and rejects (and
//     counts) duplicates and out-of-window sequences. Retransmitted data is
//     sent under a fresh packet sequence, so the replay window only ever
//     fires on genuine network duplication or replay. The listener also
//     remembers which (session key, dial nonce) pairs already established
//     a session, so a replayed connect datagram cannot displace a live
//     session or mint zombie ones.
//   - the byte stream is packetized into MTU-sized segments addressed by
//     stream offset; frames larger than one datagram are fragmented across
//     segments and reassembled by contiguity on the receive side.
//   - acks carry a cumulative offset plus selective ranges; unacked
//     segments are retransmitted on a timeout with per-segment doubling
//     backoff capped at 8x — the PR 3 stop-and-wait ARQ discipline promoted
//     from sim model to the wire (with a window instead of stop-and-wait).
//   - liveness above the session is the network runtime's heartbeat /
//     generation-fencing machinery; the session itself only gives up after
//     MaxRetries on a segment (or IdleTimeout without authenticated
//     traffic) and then surfaces an error so the dialer can re-dial.
package dgram

import (
	"errors"
	"time"

	"mobiledist/internal/obs"
	"mobiledist/internal/sim"
)

// Defaults. The RTO is deliberately snappy: loopback clusters and the
// conformance suite live at sub-millisecond RTTs, and the doubling backoff
// keeps the retransmit load bounded on real links.
const (
	// DefaultMTU is the datagram byte budget (header + body + tag).
	DefaultMTU = 1200
	// DefaultRTO is the initial per-segment retransmit timeout.
	DefaultRTO = 20 * time.Millisecond
	// DefaultMaxRetries is how many retransmits of one segment (or connect
	// attempts of one dial) are tolerated before the session is declared
	// dead. With the capped backoff this is roughly 1.5s of silence.
	DefaultMaxRetries = 12
	// DefaultIdleTimeout reaps sessions that carry no authenticated
	// traffic at all; the runtime's heartbeats keep live sessions warm.
	DefaultIdleTimeout = 60 * time.Second
	// backoffCap bounds the per-segment doubling backoff, mirroring the
	// engine ARQ's 8x cap.
	backoffCap = 8
)

var (
	// ErrSessionDead is returned by Read/Write after the session gave up
	// (retransmit budget exhausted or idle timeout).
	ErrSessionDead = errors.New("dgram: session dead")
	// ErrClosed is returned after a local Close.
	ErrClosed = errors.New("dgram: use of closed session")
)

// Config tunes one endpoint (a Listener or a dialed Conn). The zero value
// selects every default.
type Config struct {
	// MTU is the maximum datagram size in bytes. 0 means DefaultMTU.
	MTU int
	// RTO is the initial retransmit timeout. 0 means DefaultRTO.
	RTO time.Duration
	// MaxRetries bounds per-segment retransmits and connect attempts.
	// 0 means DefaultMaxRetries.
	MaxRetries int
	// IdleTimeout reaps sessions without authenticated inbound traffic.
	// 0 means DefaultIdleTimeout; negative disables the reaper.
	IdleTimeout time.Duration
	// AcceptBacklog bounds the listener's pending-accept queue. 0 means 16.
	AcceptBacklog int
	// Trace, when non-nil, receives session/packet events
	// (EvSessionEstablished, EvPacketSent/Recv/Retransmit,
	// EvPacketReplayDropped, EvPacketRTT).
	Trace *obs.Tracer
	// TraceNow supplies the timestamp for trace events. Nil means
	// microseconds of wall clock since the process observed the package.
	TraceNow func() sim.Time
}

var pkgStart = time.Now()

func (c Config) withDefaults() Config {
	if c.MTU == 0 {
		c.MTU = DefaultMTU
	}
	if c.MTU < headerSize+tagSize+dataOverhead+1 {
		c.MTU = headerSize + tagSize + dataOverhead + 1 // room for 1 stream byte
	}
	if c.RTO == 0 {
		c.RTO = DefaultRTO
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = DefaultMaxRetries
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = DefaultIdleTimeout
	}
	if c.AcceptBacklog == 0 {
		c.AcceptBacklog = 16
	}
	if c.TraceNow == nil {
		c.TraceNow = func() sim.Time { return sim.Time(time.Since(pkgStart) / time.Microsecond) }
	}
	return c
}

// Stats is a point-in-time copy of one session's datagram counters.
type Stats struct {
	SessionID       uint64
	PacketsSent     uint64 // datagrams written, including retransmits
	PacketsReceived uint64 // datagrams accepted (authenticated, in-window)
	Retransmits     uint64 // data segments re-sent after an RTO
	ReplayDrops     uint64 // authenticated datagrams rejected by the replay window
	BadPackets      uint64 // datagrams rejected before the replay window (MAC, header)
}
