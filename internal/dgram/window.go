package dgram

// replayWindowSize is how far behind the highest seen sequence a packet
// may arrive and still be judged; anything older is dropped unseen.
const replayWindowSize = 256

// replayWindow is a sliding bitmask over the peer's packet sequences: bit
// age i (0 = newest) records whether sequence maxSeq-i was accepted.
// admit is the only mutator; a rejected sequence leaves the window
// untouched (asserted by tests — replay handling must be side-effect
// free on the session state).
type replayWindow struct {
	maxSeq uint64
	seen   [replayWindowSize / 64]uint64
	primed bool
}

// admit reports whether seq is fresh, recording it when so.
func (w *replayWindow) admit(seq uint64) bool {
	if !w.primed {
		w.primed = true
		w.maxSeq = seq
		w.seen = [replayWindowSize / 64]uint64{1}
		return true
	}
	if seq > w.maxSeq {
		w.shift(seq - w.maxSeq)
		w.maxSeq = seq
		w.seen[0] |= 1
		return true
	}
	age := w.maxSeq - seq
	if age >= replayWindowSize {
		return false // too old to judge: reject
	}
	word, bit := age/64, age%64
	if w.seen[word]&(1<<bit) != 0 {
		return false // duplicate
	}
	w.seen[word] |= 1 << bit
	return true
}

// shift ages every recorded bit by d (the window advanced to a new max).
func (w *replayWindow) shift(d uint64) {
	if d >= replayWindowSize {
		w.seen = [replayWindowSize / 64]uint64{}
		return
	}
	words, bits := d/64, d%64
	n := uint64(len(w.seen))
	for i := n; i > 0; i-- {
		idx := i - 1
		var v uint64
		if idx >= words {
			v = w.seen[idx-words] << bits
			if bits > 0 && idx > words {
				v |= w.seen[idx-words-1] >> (64 - bits)
			}
		}
		w.seen[idx] = v
	}
}
