package dgram

import (
	"crypto/rand"
	"encoding/binary"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mobiledist/internal/obs"
)

// Listener accepts datagram sessions on one shared UDP socket,
// demultiplexing inbound packets to sessions by source address. It
// implements net.Listener.
type Listener struct {
	cfg    Config
	secret []byte
	pc     *net.UDPConn

	// advertise is the address connect tokens must be bound to (the
	// address dialers were told to dial, e.g. a nemesis proxy in front of
	// this socket). Empty means the socket's own address.
	advertise atomic.Value // string

	mu       sync.Mutex
	sessions map[string]*Conn
	closed   bool

	tokensRejected uint64 // under mu
	badPackets     uint64 // under mu

	acceptCh  chan *Conn
	done      chan struct{}
	closeOnce sync.Once
}

// Listen binds a datagram listener on addr that admits sessions whose
// connect tokens validate under secret.
func Listen(addr string, secret []byte, cfg Config) (*Listener, error) {
	cfg = cfg.withDefaults()
	laddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	pc, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, err
	}
	l := &Listener{
		cfg:      cfg,
		secret:   append([]byte(nil), secret...),
		pc:       pc,
		sessions: make(map[string]*Conn),
		acceptCh: make(chan *Conn, cfg.AcceptBacklog),
		done:     make(chan struct{}),
	}
	l.advertise.Store("")
	go l.readLoop()
	return l, nil
}

// SetAdvertise records the public address dialers use to reach this
// listener; connect tokens bound to it are accepted in addition to the
// socket's own address. Needed when a proxy (or NAT) fronts the socket.
func (l *Listener) SetAdvertise(addr string) { l.advertise.Store(addr) }

// Addr implements net.Listener.
func (l *Listener) Addr() net.Addr { return l.pc.LocalAddr() }

// Accept implements net.Listener, yielding established sessions.
func (l *Listener) Accept() (net.Conn, error) {
	select {
	case c := <-l.acceptCh:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

// Close implements net.Listener: sessions are closed (best-effort close
// notifications go out first), then the socket.
func (l *Listener) Close() error {
	l.closeOnce.Do(func() {
		close(l.done)
		l.mu.Lock()
		l.closed = true
		conns := make([]*Conn, 0, len(l.sessions))
		for _, c := range l.sessions {
			conns = append(conns, c)
		}
		l.mu.Unlock()
		for _, c := range conns {
			c.Close()
		}
		l.pc.Close()
	})
	return nil
}

// Stats reports listener-level rejection counters: datagrams dropped
// before any session saw them, and refused connect tokens.
func (l *Listener) Stats() (badPackets, tokensRejected uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.badPackets, l.tokensRejected
}

// Sessions snapshots the live sessions' datagram counters.
func (l *Listener) Sessions() []Stats {
	l.mu.Lock()
	conns := make([]*Conn, 0, len(l.sessions))
	for _, c := range l.sessions {
		conns = append(conns, c)
	}
	l.mu.Unlock()
	out := make([]Stats, 0, len(conns))
	for _, c := range conns {
		out = append(out, c.Stats())
	}
	return out
}

func (l *Listener) noteBadPacket() {
	l.mu.Lock()
	l.badPackets++
	l.mu.Unlock()
}

func (l *Listener) readLoop() {
	buf := make([]byte, maxPacket)
	for {
		n, raddr, err := l.pc.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-l.done:
				return
			default:
			}
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return
		}
		pkt := buf[:n]
		key := raddr.String()
		l.mu.Lock()
		c := l.sessions[key]
		l.mu.Unlock()
		if c != nil {
			if h, _, herr := decodeHeader(pkt, true); herr == nil && h.Type == ptConnect {
				if c.handleConnectRetry(pkt) {
					continue
				}
				// Not this session's handshake: treat as a fresh re-dial
				// from the same source address.
				l.handleConnect(pkt, raddr, c)
				continue
			}
			c.handlePacket(pkt)
			continue
		}
		l.handleConnect(pkt, raddr, nil)
	}
}

// handleConnect validates a connect packet from an unknown (or
// re-dialing) source and, when it passes, establishes a session, sends
// the accept and queues the session for Accept.
func (l *Listener) handleConnect(pkt []byte, raddr *net.UDPAddr, replace *Conn) {
	h, body, err := decodeHeader(pkt, true)
	if err != nil || h.Type != ptConnect || len(body) < 8 {
		l.noteBadPacket()
		return
	}
	dialNonce := binary.BigEndian.Uint64(body[:8])
	token := body[8:]
	adv, _ := l.advertise.Load().(string)
	own := l.pc.LocalAddr().String()
	_, key, err := Validate(l.secret, token, own, time.Now())
	if err != nil && adv != "" && adv != own {
		_, key, err = Validate(l.secret, token, adv, time.Now())
	}
	if err != nil {
		l.mu.Lock()
		l.tokensRejected++
		l.mu.Unlock()
		return
	}
	// The packet MAC under the derived key proves the dialer holds the
	// key, not just a captured token.
	if _, _, err := openPacket(key, pkt); err != nil {
		l.noteBadPacket()
		return
	}

	var sidBytes [8]byte
	if _, err := rand.Read(sidBytes[:]); err != nil {
		return
	}
	sid := binary.BigEndian.Uint64(sidBytes[:])
	peer := *raddr
	c := newConn(l.cfg, key, sideAccept, func(p []byte) error {
		_, err := l.pc.WriteToUDP(p, &peer)
		return err
	}, l.pc.LocalAddr(), &peer)
	c.sid = sid
	c.established = true
	c.dialNonce = dialNonce
	c.acceptBody = make([]byte, 16)
	binary.BigEndian.PutUint64(c.acceptBody, sid)
	binary.BigEndian.PutUint64(c.acceptBody[8:], dialNonce)
	addrKey := peer.String()
	c.onClose = func() {
		l.mu.Lock()
		if l.sessions[addrKey] == c {
			delete(l.sessions, addrKey)
		}
		l.mu.Unlock()
	}

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	select {
	case l.acceptCh <- c:
	default:
		l.mu.Unlock()
		return // backlog full: drop; the dialer retries
	}
	l.sessions[addrKey] = c
	l.mu.Unlock()

	if replace != nil && replace != c {
		replace.mu.Lock()
		replace.failLocked(ErrSessionDead)
		replace.mu.Unlock()
		replace.teardown()
	}

	c.mu.Lock()
	c.replay.admit(h.Seq)
	c.stats.PacketsReceived++
	c.sendPacketLocked(ptAccept, c.acceptBody)
	c.mu.Unlock()
	c.start()
	c.trace(obs.EvSessionEstablished, sideAccept, 0)
}
