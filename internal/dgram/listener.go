package dgram

import (
	"crypto/rand"
	"encoding/binary"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mobiledist/internal/obs"
)

// maxUsedDials triggers a sweep of expired usedDials entries before a new
// one is recorded. Growth is bounded by the rate of successful dials
// within one token TTL (minting needs the cluster secret), so this is a
// housekeeping threshold, not a hard cap.
const maxUsedDials = 4096

// Listener accepts datagram sessions on one shared UDP socket,
// demultiplexing inbound packets to sessions by source address. It
// implements net.Listener.
type Listener struct {
	cfg    Config
	secret []byte
	pc     *net.UDPConn

	// advertise is the address connect tokens must be bound to (the
	// address dialers were told to dial, e.g. a nemesis proxy in front of
	// this socket). Empty means the socket's own address.
	advertise atomic.Value // string

	mu       sync.Mutex
	sessions map[string]*Conn
	closed   bool

	// usedDials records the (session key, dial nonce) pair of every
	// established session until its token expires. A captured ptConnect
	// replayed within the token TTL still re-validates; without this
	// cache it would displace the live session (a pure-replay
	// session-kill) or, from other spoofed source addresses, mint
	// unlimited zombie sessions. A genuine re-dial mints a fresh random
	// dial nonce, so it never collides with a recorded pair.
	usedDials map[string]time.Time // dialID -> token expiry; under mu

	tokensRejected uint64 // under mu
	badPackets     uint64 // under mu

	acceptCh  chan *Conn
	done      chan struct{}
	closeOnce sync.Once
}

// Listen binds a datagram listener on addr that admits sessions whose
// connect tokens validate under secret.
func Listen(addr string, secret []byte, cfg Config) (*Listener, error) {
	cfg = cfg.withDefaults()
	laddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	pc, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, err
	}
	l := &Listener{
		cfg:       cfg,
		secret:    append([]byte(nil), secret...),
		pc:        pc,
		sessions:  make(map[string]*Conn),
		usedDials: make(map[string]time.Time),
		acceptCh:  make(chan *Conn, cfg.AcceptBacklog),
		done:      make(chan struct{}),
	}
	l.advertise.Store("")
	go l.readLoop()
	return l, nil
}

// SetAdvertise records the public address dialers use to reach this
// listener; connect tokens bound to it are accepted in addition to the
// socket's own address. Needed when a proxy (or NAT) fronts the socket.
func (l *Listener) SetAdvertise(addr string) { l.advertise.Store(addr) }

// Addr implements net.Listener.
func (l *Listener) Addr() net.Addr { return l.pc.LocalAddr() }

// Accept implements net.Listener, yielding established sessions.
func (l *Listener) Accept() (net.Conn, error) {
	select {
	case c := <-l.acceptCh:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

// Close implements net.Listener: sessions are closed (best-effort close
// notifications go out first), then the socket.
func (l *Listener) Close() error {
	l.closeOnce.Do(func() {
		close(l.done)
		l.mu.Lock()
		l.closed = true
		conns := make([]*Conn, 0, len(l.sessions))
		for _, c := range l.sessions {
			conns = append(conns, c)
		}
		l.mu.Unlock()
		for _, c := range conns {
			c.Close()
		}
		l.pc.Close()
	})
	return nil
}

// Stats reports listener-level rejection counters: datagrams dropped
// before any session saw them, and refused connect tokens.
func (l *Listener) Stats() (badPackets, tokensRejected uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.badPackets, l.tokensRejected
}

// Sessions snapshots the live sessions' datagram counters.
func (l *Listener) Sessions() []Stats {
	l.mu.Lock()
	conns := make([]*Conn, 0, len(l.sessions))
	for _, c := range l.sessions {
		conns = append(conns, c)
	}
	l.mu.Unlock()
	out := make([]Stats, 0, len(conns))
	for _, c := range conns {
		out = append(out, c.Stats())
	}
	return out
}

func (l *Listener) noteBadPacket() {
	l.mu.Lock()
	l.badPackets++
	l.mu.Unlock()
}

func (l *Listener) readLoop() {
	buf := make([]byte, maxPacket)
	for {
		n, raddr, err := l.pc.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-l.done:
				return
			default:
			}
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return
		}
		pkt := buf[:n]
		key := raddr.String()
		l.mu.Lock()
		c := l.sessions[key]
		l.mu.Unlock()
		if c != nil {
			if h, _, herr := decodeHeader(pkt, true); herr == nil && h.Type == ptConnect {
				if c.handleConnectRetry(pkt) {
					continue
				}
				// Not this session's handshake: treat as a fresh re-dial
				// from the same source address.
				l.handleConnect(pkt, raddr, c)
				continue
			}
			c.handlePacket(pkt)
			continue
		}
		l.handleConnect(pkt, raddr, nil)
	}
}

// handleConnect validates a connect packet from an unknown (or
// re-dialing) source and, when it passes, establishes a session, sends
// the accept and queues the session for Accept.
func (l *Listener) handleConnect(pkt []byte, raddr *net.UDPAddr, replace *Conn) {
	h, body, err := decodeHeader(pkt, true)
	if err != nil || h.Type != ptConnect || len(body) < 8 {
		l.noteBadPacket()
		return
	}
	dialNonce := binary.BigEndian.Uint64(body[:8])
	token := body[8:]
	now := time.Now()
	adv, _ := l.advertise.Load().(string)
	own := l.pc.LocalAddr().String()
	info, key, err := Validate(l.secret, token, own, now)
	if err != nil && adv != "" && adv != own {
		info, key, err = Validate(l.secret, token, adv, now)
	}
	if err != nil {
		l.mu.Lock()
		l.tokensRejected++
		l.mu.Unlock()
		return
	}
	// The packet MAC under the dial-direction key proves the dialer holds
	// the session key, not just a captured token.
	dialKey, _ := dirKeys(key)
	if _, _, err := openPacket(dialKey, pkt); err != nil {
		l.noteBadPacket()
		return
	}
	// A (key, dial nonce) pair that already opened a session marks this
	// connect as a replay of a captured datagram, not a fresh dial.
	dialID := string(key) + string(body[:8])
	l.mu.Lock()
	if exp, ok := l.usedDials[dialID]; ok && now.Before(exp) {
		l.badPackets++
		l.mu.Unlock()
		return
	}
	l.mu.Unlock()

	var sidBytes [8]byte
	if _, err := rand.Read(sidBytes[:]); err != nil {
		return
	}
	sid := binary.BigEndian.Uint64(sidBytes[:])
	peer := *raddr
	c := newConn(l.cfg, key, sideAccept, func(p []byte) error {
		_, err := l.pc.WriteToUDP(p, &peer)
		return err
	}, l.pc.LocalAddr(), &peer)
	c.sid = sid
	c.established = true
	c.dialNonce = dialNonce
	c.acceptBody = make([]byte, 16)
	binary.BigEndian.PutUint64(c.acceptBody, sid)
	binary.BigEndian.PutUint64(c.acceptBody[8:], dialNonce)
	addrKey := peer.String()
	c.onClose = func() {
		l.mu.Lock()
		if l.sessions[addrKey] == c {
			delete(l.sessions, addrKey)
		}
		l.mu.Unlock()
	}

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	select {
	case l.acceptCh <- c:
	default:
		l.mu.Unlock()
		return // backlog full: drop; the dialer retries (same dial nonce, still unused)
	}
	l.sessions[addrKey] = c
	// Record the pair only once the session is installed, so a dialer
	// whose first attempt hit a full backlog can retry the same connect.
	if len(l.usedDials) >= maxUsedDials {
		for k, exp := range l.usedDials {
			if !now.Before(exp) {
				delete(l.usedDials, k)
			}
		}
	}
	l.usedDials[dialID] = info.Expiry
	l.mu.Unlock()

	if replace != nil && replace != c {
		replace.mu.Lock()
		replace.failLocked(ErrSessionDead)
		replace.mu.Unlock()
		replace.teardown()
	}

	c.mu.Lock()
	c.replay.admit(h.Seq)
	c.stats.PacketsReceived++
	c.sendPacketLocked(ptAccept, c.acceptBody)
	c.mu.Unlock()
	c.start()
	c.trace(obs.EvSessionEstablished, sideAccept, 0)
}
