package dgram

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"os"
	"sync"
	"testing"
	"time"

	"mobiledist/internal/obs"
	"mobiledist/internal/wire"
)

func testSecret() []byte { return []byte("test-cluster-secret") }

// mintFor mints a short-lived token bound to addrs.
func mintFor(t *testing.T, ttl time.Duration, addrs ...string) (token, key []byte) {
	t.Helper()
	token, key, err := Mint(testSecret(), TokenInfo{
		Role:   byte(wire.RoleMSS),
		ID:     7,
		Gen:    1,
		Expiry: time.Now().Add(ttl),
		Addrs:  addrs,
	})
	if err != nil {
		t.Fatalf("Mint: %v", err)
	}
	return token, key
}

// fastCfg keeps retransmit timing snappy for tests.
func fastCfg() Config {
	return Config{RTO: 5 * time.Millisecond, MaxRetries: 20}
}

func TestPacketSealOpen(t *testing.T) {
	key := []byte("0123456789abcdef0123456789abcdef")
	h := header{Type: ptData, Session: 0xDEADBEEF01234567, Seq: 42}
	body := []byte("hello over a datagram")
	pkt := sealPacket(key, h, body)

	got, gotBody, err := openPacket(key, pkt)
	if err != nil {
		t.Fatalf("openPacket: %v", err)
	}
	if got != h || !bytes.Equal(gotBody, body) {
		t.Fatalf("roundtrip mismatch: %+v %q", got, gotBody)
	}
	// Re-encoding the decoded header is byte-identical.
	if again := appendHeader(nil, got); !bytes.Equal(again, pkt[:headerSize]) {
		t.Fatalf("header re-encode differs: %x vs %x", again, pkt[:headerSize])
	}
	// Any flipped bit fails authentication.
	for _, i := range []int{0, 3, 8, 15, headerSize + 2, len(pkt) - 1} {
		bad := append([]byte(nil), pkt...)
		bad[i] ^= 0x40
		if _, _, err := openPacket(key, bad); err == nil {
			t.Fatalf("tampered byte %d accepted", i)
		}
	}
	// A different key fails authentication.
	if _, _, err := openPacket([]byte("another-key"), pkt); !errors.Is(err, errPacketMAC) {
		t.Fatalf("wrong key: got %v, want MAC failure", err)
	}
}

func TestReplayWindow(t *testing.T) {
	var w replayWindow
	for seq := uint64(0); seq < 10; seq++ {
		if !w.admit(seq) {
			t.Fatalf("fresh seq %d rejected", seq)
		}
		if w.admit(seq) {
			t.Fatalf("duplicate seq %d admitted", seq)
		}
	}
	// Out-of-order within the window is fine, once.
	if !w.admit(300) || !w.admit(298) {
		t.Fatal("in-window out-of-order rejected")
	}
	if w.admit(298) {
		t.Fatal("replayed 298 admitted")
	}
	if !w.admit(299) {
		t.Fatal("in-window gap fill rejected")
	}
	// Out-of-window (too old) sequences are rejected without state change.
	before := w
	if w.admit(300 - replayWindowSize) {
		t.Fatal("out-of-window seq admitted")
	}
	if w.admit(2) {
		t.Fatal("ancient seq admitted")
	}
	if w != before {
		t.Fatalf("rejected sequences mutated the window: %+v vs %+v", w, before)
	}
	// A large jump clears history but keeps rejecting the past.
	if !w.admit(300 + 3*replayWindowSize) {
		t.Fatal("far-future seq rejected")
	}
	if w.admit(300) {
		t.Fatal("stale seq admitted after jump")
	}
}

func TestTokenRoundTrip(t *testing.T) {
	info := TokenInfo{
		Role:   byte(wire.RoleMH),
		ID:     -3,
		Gen:    9,
		Expiry: time.Now().Add(time.Hour).Truncate(time.Microsecond),
		Addrs:  []string{"127.0.0.1:4242", "127.0.0.1:4343"},
	}
	token, key, err := Mint(testSecret(), info)
	if err != nil {
		t.Fatalf("Mint: %v", err)
	}
	got, gotKey, err := Validate(testSecret(), token, "127.0.0.1:4343", time.Now())
	if err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got.Role != info.Role || got.ID != info.ID || got.Gen != info.Gen ||
		!got.Expiry.Equal(info.Expiry) || len(got.Addrs) != 2 {
		t.Fatalf("info mismatch: %+v vs %+v", got, info)
	}
	if !bytes.Equal(gotKey, key) {
		t.Fatal("validator derived a different session key than the minter")
	}
	if sk, err := SessionKey(testSecret(), token); err != nil || !bytes.Equal(sk, key) {
		t.Fatalf("SessionKey mismatch: %v", err)
	}

	// Security edges.
	if _, _, err := Validate(testSecret(), token, "10.0.0.1:1", time.Now()); !errors.Is(err, ErrTokenAddr) {
		t.Fatalf("wrong address: got %v, want ErrTokenAddr", err)
	}
	if _, _, err := Validate(testSecret(), token, "127.0.0.1:4242", info.Expiry.Add(time.Second)); !errors.Is(err, ErrTokenExpired) {
		t.Fatalf("expired: got %v, want ErrTokenExpired", err)
	}
	if _, _, err := Validate([]byte("other-secret"), token, "127.0.0.1:4242", time.Now()); !errors.Is(err, ErrTokenMAC) {
		t.Fatalf("wrong secret: got %v, want ErrTokenMAC", err)
	}
	bad := append([]byte(nil), token...)
	bad[2] ^= 1
	if _, _, err := Validate(testSecret(), bad, "127.0.0.1:4242", time.Now()); !errors.Is(err, ErrTokenMAC) {
		t.Fatalf("tampered: got %v, want ErrTokenMAC", err)
	}
}

// startPair establishes a listener and one dialed session against it.
func startPair(t *testing.T, cfg Config) (*Listener, *Conn, *Conn) {
	t.Helper()
	l, err := Listen("127.0.0.1:0", testSecret(), cfg)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	token, key := mintFor(t, time.Minute, l.Addr().String())
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := l.Accept()
		ch <- res{c, err}
	}()
	client, err := Dial(l.Addr().String(), token, key, cfg)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { client.Close() })
	r := <-ch
	if r.err != nil {
		t.Fatalf("Accept: %v", r.err)
	}
	server := r.c.(*Conn)
	return l, client, server
}

func TestSessionEcho(t *testing.T) {
	_, client, server := startPair(t, fastCfg())

	msg := []byte("the paper assumes a datagram medium")
	if _, err := client.Write(msg); err != nil {
		t.Fatalf("client write: %v", err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(server, got); err != nil {
		t.Fatalf("server read: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("server read %q", got)
	}
	if _, err := server.Write(got); err != nil {
		t.Fatalf("server write: %v", err)
	}
	back := make([]byte, len(msg))
	if _, err := io.ReadFull(client, back); err != nil {
		t.Fatalf("client read: %v", err)
	}
	if !bytes.Equal(back, msg) {
		t.Fatalf("client read %q", back)
	}
	if client.SessionID() == 0 || client.SessionID() != server.SessionID() {
		t.Fatalf("session ids: client %d server %d", client.SessionID(), server.SessionID())
	}
	cs, ss := client.Stats(), server.Stats()
	if cs.PacketsSent == 0 || cs.PacketsReceived == 0 || ss.PacketsSent == 0 || ss.PacketsReceived == 0 {
		t.Fatalf("missing packet counters: client %+v server %+v", cs, ss)
	}
}

// TestSessionFragmentation pushes a payload many times the MTU through a
// deliberately tiny datagram budget, so every frame fragments.
func TestSessionFragmentation(t *testing.T) {
	cfg := fastCfg()
	cfg.MTU = 96 // ~51 stream bytes per datagram
	_, client, server := startPair(t, cfg)

	payload := make([]byte, 32*1024)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	go func() {
		client.Write(payload)
	}()
	got := make([]byte, len(payload))
	if _, err := io.ReadFull(server, got); err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("fragmented payload reassembled incorrectly")
	}
}

func TestWireFramesOverSession(t *testing.T) {
	_, client, server := startPair(t, fastCfg())

	w := wire.NewWriter(client)
	r := wire.NewReader(server)
	want := []wire.Frame{
		{Type: wire.THello, Ch: -1, Payload: wire.Hello{Role: wire.RoleMSS, ID: 2, M: 3, N: 6, Gen: 1}.Encode()},
		{Type: wire.TData, Ch: 5, Seq: 9, Hop: 1, Latency: 4, Payload: wire.Envelope{Kind: 2, A: 1, B: 2}.Encode()},
		{Type: wire.THeartbeat, Ch: -1, Seq: 77},
	}
	go func() {
		for _, f := range want {
			w.WriteFrame(f)
		}
	}()
	for i, wf := range want {
		got, err := r.ReadFrame()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Type != wf.Type || got.Ch != wf.Ch || got.Seq != wf.Seq || !bytes.Equal(got.Payload, wf.Payload) {
			t.Fatalf("frame %d mismatch: %+v vs %+v", i, got, wf)
		}
	}
}

// lossyRelay is a deterministic in-test UDP relay: it drops every dropNth
// client->server datagram and duplicates every dupNth one.
type lossyRelay struct {
	pc     *net.UDPConn
	target *net.UDPAddr
	mu     sync.Mutex
	up     *net.UDPConn
	client *net.UDPAddr
	done   chan struct{}
}

func startLossyRelay(t *testing.T, target string, dropNth, dupNth int) *lossyRelay {
	t.Helper()
	taddr, err := net.ResolveUDPAddr("udp", target)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	rl := &lossyRelay{pc: pc, target: taddr, done: make(chan struct{})}
	t.Cleanup(rl.stop)
	go func() {
		buf := make([]byte, maxPacket)
		n := 0
		for {
			sz, from, err := pc.ReadFromUDP(buf)
			if err != nil {
				return
			}
			rl.mu.Lock()
			if rl.up == nil {
				rl.client = from
				up, err := net.DialUDP("udp", nil, taddr)
				if err != nil {
					rl.mu.Unlock()
					return
				}
				rl.up = up
				go func() {
					dbuf := make([]byte, maxPacket)
					for {
						sz, err := up.Read(dbuf)
						if err != nil {
							return
						}
						pc.WriteToUDP(dbuf[:sz], rl.client)
					}
				}()
			}
			up := rl.up
			rl.mu.Unlock()
			n++
			if dropNth > 0 && n%dropNth == 0 {
				continue
			}
			up.Write(buf[:sz])
			if dupNth > 0 && n%dupNth == 0 {
				up.Write(buf[:sz])
			}
		}
	}()
	return rl
}

func (rl *lossyRelay) addr() string { return rl.pc.LocalAddr().String() }

func (rl *lossyRelay) stop() {
	rl.pc.Close()
	rl.mu.Lock()
	if rl.up != nil {
		rl.up.Close()
	}
	rl.mu.Unlock()
}

// TestSessionLossRecovery runs the stream through a relay that drops and
// duplicates datagrams: the stream must still arrive intact, with the
// retransmit and replay-drop counters proving both mechanisms fired.
func TestSessionLossRecovery(t *testing.T) {
	tr := obs.NewTracer(0).WithMetrics(obs.NewMetrics())
	cfg := fastCfg()
	cfg.MTU = 256
	// RTO comfortably above the loopback RTT even under the race
	// detector, so Karn's rule leaves some clean samples.
	cfg.RTO = 30 * time.Millisecond
	cfg.Trace = tr
	l, err := Listen("127.0.0.1:0", testSecret(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	relay := startLossyRelay(t, l.Addr().String(), 5, 3)
	l.SetAdvertise(relay.addr())

	token, key := mintFor(t, time.Minute, relay.addr())
	acceptCh := make(chan net.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			acceptCh <- c
		}
	}()
	client, err := Dial(relay.addr(), token, key, cfg)
	if err != nil {
		t.Fatalf("Dial through relay: %v", err)
	}
	defer client.Close()
	server := (<-acceptCh).(*Conn)

	payload := make([]byte, 24*1024)
	for i := range payload {
		payload[i] = byte(i * 13)
	}
	go client.Write(payload)
	got := make([]byte, len(payload))
	if _, err := io.ReadFull(server, got); err != nil {
		t.Fatalf("read through loss: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("stream corrupted by loss recovery")
	}
	cs, ss := client.Stats(), server.Stats()
	if cs.Retransmits == 0 {
		t.Errorf("no retransmits despite 1-in-5 drop: %+v", cs)
	}
	if ss.ReplayDrops == 0 {
		t.Errorf("no replay drops despite 1-in-3 duplication: %+v", ss)
	}
	snap := tr.MetricsSnapshot()
	if snap.Counts[obs.EvSessionEstablished.String()] == 0 ||
		snap.Counts[obs.EvPacketReplayDropped.String()] == 0 ||
		snap.Counts[obs.EvPacketRetransmit.String()] == 0 {
		t.Errorf("missing obs counters: %v", snap.Counts)
	}
	if snap.DgramRTTUS.Count() == 0 {
		t.Error("no RTT samples recorded")
	}
}

// TestSessionRedialSameToken proves a client can tear a session down and
// re-establish with the same minted token (same generation) while it is
// unexpired — the out-of-band bootstrap flow.
func TestSessionRedialSameToken(t *testing.T) {
	cfg := fastCfg()
	l, err := Listen("127.0.0.1:0", testSecret(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	token, key := mintFor(t, time.Minute, l.Addr().String())

	for round := 0; round < 2; round++ {
		acceptCh := make(chan net.Conn, 1)
		go func() {
			c, err := l.Accept()
			if err == nil {
				acceptCh <- c
			}
		}()
		client, err := Dial(l.Addr().String(), token, key, cfg)
		if err != nil {
			t.Fatalf("round %d dial: %v", round, err)
		}
		server := (<-acceptCh).(*Conn)
		msg := []byte("round trip")
		if _, err := client.Write(msg); err != nil {
			t.Fatalf("round %d write: %v", round, err)
		}
		got := make([]byte, len(msg))
		if _, err := io.ReadFull(server, got); err != nil {
			t.Fatalf("round %d read: %v", round, err)
		}
		client.Close()
		server.Close()
	}
}

// TestDialRefused covers the listener-side security edges end to end:
// expired tokens and tokens bound to another server's address never
// establish a session.
func TestDialRefused(t *testing.T) {
	cfg := fastCfg()
	cfg.MaxRetries = 3
	l, err := Listen("127.0.0.1:0", testSecret(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	expired, expiredKey := mintFor(t, -time.Second, l.Addr().String())
	if _, err := Dial(l.Addr().String(), expired, expiredKey, cfg); err == nil {
		t.Fatal("dial with expired token succeeded")
	}
	other, otherKey := mintFor(t, time.Minute, "127.0.0.1:1")
	if _, err := Dial(l.Addr().String(), other, otherKey, cfg); err == nil {
		t.Fatal("dial with token bound to another address succeeded")
	}
	if _, rejected := l.Stats(); rejected < 2 {
		t.Fatalf("tokensRejected = %d, want >= 2", rejected)
	}
	if len(l.Sessions()) != 0 {
		t.Fatal("refused dials left sessions behind")
	}
}

// TestReflectedPacketRejected proves direction-key separation: a host's
// own sealed datagrams bounced back at it by an on-path attacker fail
// authentication, and so can never enter the replay window, corrupt the
// receive stream, or falsely advance the ack state.
func TestReflectedPacketRejected(t *testing.T) {
	_, client, server := startPair(t, fastCfg())

	msg := []byte("reflect me")
	if _, err := client.Write(msg); err != nil {
		t.Fatalf("write: %v", err)
	}
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(server, buf); err != nil {
		t.Fatalf("read: %v", err)
	}

	for _, victim := range []*Conn{client, server} {
		victim.mu.Lock()
		// A data packet and an ack the victim itself might have sent,
		// with sequences ahead of its own counter (fresh in any window).
		data := make([]byte, dataOverhead+4)
		binary.BigEndian.PutUint64(data, victim.nextOff)
		ack := make([]byte, 9)
		binary.BigEndian.PutUint64(ack, victim.recvBase)
		pkts := [][]byte{
			sealPacket(victim.sealKey, header{Type: ptData, Session: victim.sid, Seq: victim.nextSeq + 50}, data),
			sealPacket(victim.sealKey, header{Type: ptAck, Session: victim.sid, Seq: victim.nextSeq + 51}, ack),
		}
		replayBefore := victim.replay
		cumBefore, baseBefore := victim.cumAcked, victim.recvBase
		victim.mu.Unlock()

		before := victim.Stats()
		for _, pkt := range pkts {
			victim.handlePacket(pkt)
		}
		after := victim.Stats()
		if after.BadPackets != before.BadPackets+2 {
			t.Fatalf("reflected packets not rejected: bad %d -> %d", before.BadPackets, after.BadPackets)
		}
		if after.PacketsReceived != before.PacketsReceived || after.ReplayDrops != before.ReplayDrops {
			t.Fatalf("reflected packets counted as received: %+v vs %+v", before, after)
		}
		victim.mu.Lock()
		mutated := victim.replay != replayBefore || victim.cumAcked != cumBefore || victim.recvBase != baseBefore
		victim.mu.Unlock()
		if mutated {
			t.Fatal("reflected packets mutated session state")
		}
	}
}

// TestConnectReplayDropped proves a captured ptConnect datagram replayed
// within its token TTL neither mints a zombie session from a spoofed
// source address nor displaces the live session it was captured from.
func TestConnectReplayDropped(t *testing.T) {
	cfg := fastCfg()
	l, err := Listen("127.0.0.1:0", testSecret(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	token, key := mintFor(t, time.Minute, l.Addr().String())

	acceptCh := make(chan net.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			acceptCh <- c
		}
	}()
	client, err := Dial(l.Addr().String(), token, key, cfg)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer client.Close()
	server := (<-acceptCh).(*Conn)

	// Reconstruct the connect datagram the client sent — dial nonce plus
	// token, sealed under the dial-direction key — exactly the bytes an
	// on-path attacker captures off the wire.
	client.mu.Lock()
	dialNonce := client.dialNonce
	client.mu.Unlock()
	body := make([]byte, 8+len(token))
	binary.BigEndian.PutUint64(body, dialNonce)
	copy(body[8:], token)
	dialKey, _ := dirKeys(key)
	captured := sealPacket(dialKey, header{Type: ptConnect, Session: 0, Seq: 0}, body)

	badBefore, _ := l.Stats()
	// Replay from a spoofed, unrelated source address: no session minted.
	spoofed := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 1}
	l.handleConnect(captured, spoofed, nil)
	if n := len(l.Sessions()); n != 1 {
		t.Fatalf("replayed connect minted a session: %d live", n)
	}
	// Replay from the client's own (spoofable) source address: the live
	// session must not be displaced.
	l.handleConnect(captured, server.RemoteAddr().(*net.UDPAddr), server)
	if badAfter, _ := l.Stats(); badAfter != badBefore+2 {
		t.Fatalf("replayed connects not counted: %d -> %d", badBefore, badAfter)
	}
	msg := []byte("still alive")
	if _, err := client.Write(msg); err != nil {
		t.Fatalf("write after replay: %v", err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(server, got); err != nil {
		t.Fatalf("read after replay: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("stream corrupted after replay: %q", got)
	}
}

// TestMergeAckRanges covers the bridging case the single-pass merge got
// wrong: a later range joining two earlier ones must collapse all three.
func TestMergeAckRanges(t *testing.T) {
	got := mergeRanges([][2]uint64{{30, 40}, {10, 20}, {20, 30}, {50, 60}}, maxAckRanges)
	want := [][2]uint64{{10, 40}, {50, 60}}
	if len(got) != len(want) {
		t.Fatalf("mergeRanges = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mergeRanges = %v, want %v", got, want)
		}
	}
	// Truncation keeps the lowest ranges, and output stays sorted and
	// non-overlapping.
	got = mergeRanges([][2]uint64{{50, 60}, {10, 20}, {30, 40}}, 2)
	if len(got) != 2 || got[0] != [2]uint64{10, 20} || got[1] != [2]uint64{30, 40} {
		t.Fatalf("truncated mergeRanges = %v", got)
	}
}

func TestReadDeadline(t *testing.T) {
	_, client, _ := startPair(t, fastCfg())
	client.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
	buf := make([]byte, 1)
	if _, err := client.Read(buf); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("read past deadline: got %v, want ErrDeadlineExceeded", err)
	}
}
