package dgram

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"net"
	"time"

	"mobiledist/internal/obs"
)

// Dial establishes a datagram session to addr, proving possession of the
// session key derived from token (see Mint). The connect is retransmitted
// with capped backoff until the server's accept arrives or MaxRetries is
// exhausted.
func Dial(addr string, token, key []byte, cfg Config) (*Conn, error) {
	cfg = cfg.withDefaults()
	raddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	sock, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return nil, err
	}
	c := newConn(cfg, key, sideDial, func(pkt []byte) error {
		_, err := sock.Write(pkt)
		return err
	}, sock.LocalAddr(), raddr)
	c.sock = sock

	var nonce [8]byte
	if _, err := rand.Read(nonce[:]); err != nil {
		sock.Close()
		return nil, err
	}
	c.dialNonce = binary.BigEndian.Uint64(nonce[:])
	body := make([]byte, 8+len(token))
	binary.BigEndian.PutUint64(body, c.dialNonce)
	copy(body[8:], token)

	go c.readLoop()
	for attempt := 0; ; attempt++ {
		c.mu.Lock()
		if c.established {
			c.mu.Unlock()
			break
		}
		if attempt >= cfg.MaxRetries {
			c.failLocked(fmt.Errorf("dgram: connect to %s: no accept after %d attempts", addr, attempt))
			c.mu.Unlock()
			c.teardown()
			return nil, fmt.Errorf("dgram: connect to %s: no accept after %d attempts", addr, attempt)
		}
		c.sendPacketLocked(ptConnect, body)
		c.mu.Unlock()
		select {
		case <-c.accepted:
		case <-time.After(c.rto(attempt)):
		}
	}
	c.start()
	c.trace(obs.EvSessionEstablished, sideDial, 0)
	return c, nil
}
