package dgram

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// Packet layout — fixed-width header, type-specific body, truncated MAC:
//
//	 0  magic 'M' 'D'
//	 2  version (1)
//	 3  packet type
//	 4  session id, big-endian uint64 (0 until ptAccept assigns one)
//	12  packet sequence, big-endian uint64 (per direction, strictly
//	    monotonic, never reused — retransmits get fresh sequences)
//	20  body...
//	len-16  HMAC-SHA256 tag over bytes [0, len-16), truncated to 16 bytes
//
// Every packet type is authenticated under a direction-specific key
// derived from the token's session key (dirKeys): each side seals under
// its own direction key and opens under the peer's, so an on-path
// attacker reflecting a host's own datagrams back at it fails
// authentication outright — a reflected packet can never reach the
// replay window, the stream state, or the ack handling. ptConnect is
// sealed under the dial-direction key (proving the dialer holds the
// session key, not just a captured token); ptAccept and everything the
// server sends travel under the accept-direction key.
const (
	packetVersion = 1
	headerSize    = 20
	tagSize       = 16

	ptConnect = 1 // body: connect token
	ptAccept  = 2 // body: assigned session id (8) + echoed connect seq (8)
	ptData    = 3 // body: stream offset (8) + stream bytes
	ptAck     = 4 // body: cumulative offset (8) + n (1) + n×(start,end) (16 each)
	ptClose   = 5 // body: empty

	dataOverhead = 8       // stream offset prefix inside a ptData body
	maxAckRanges = 8       // selective ranges carried per ack
	maxPacket    = 64 * 1024
)

var packetMagic = [2]byte{'M', 'D'}

// header is the decoded fixed-width prefix of one packet.
type header struct {
	Type    byte
	Session uint64
	Seq     uint64
}

var (
	errPacketShort   = errors.New("dgram: packet too short")
	errPacketMagic   = errors.New("dgram: bad packet magic")
	errPacketVersion = errors.New("dgram: unsupported packet version")
	errPacketType    = errors.New("dgram: unknown packet type")
	errPacketMAC     = errors.New("dgram: packet authentication failed")
)

// appendHeader appends the fixed-width header for h to dst.
func appendHeader(dst []byte, h header) []byte {
	dst = append(dst, packetMagic[0], packetMagic[1], packetVersion, h.Type)
	var be [16]byte
	binary.BigEndian.PutUint64(be[0:8], h.Session)
	binary.BigEndian.PutUint64(be[8:16], h.Seq)
	return append(dst, be[:]...)
}

// decodeHeader parses the fixed-width prefix of pkt without touching the
// MAC; body is the remainder of pkt before the tag when withTag is true.
func decodeHeader(pkt []byte, withTag bool) (header, []byte, error) {
	min := headerSize
	if withTag {
		min += tagSize
	}
	if len(pkt) < min || len(pkt) > maxPacket {
		return header{}, nil, errPacketShort
	}
	if pkt[0] != packetMagic[0] || pkt[1] != packetMagic[1] {
		return header{}, nil, errPacketMagic
	}
	if pkt[2] != packetVersion {
		return header{}, nil, fmt.Errorf("%w: %d", errPacketVersion, pkt[2])
	}
	h := header{
		Type:    pkt[3],
		Session: binary.BigEndian.Uint64(pkt[4:12]),
		Seq:     binary.BigEndian.Uint64(pkt[12:20]),
	}
	if h.Type < ptConnect || h.Type > ptClose {
		return header{}, nil, fmt.Errorf("%w: %d", errPacketType, h.Type)
	}
	body := pkt[headerSize:]
	if withTag {
		body = body[:len(body)-tagSize]
	}
	return h, body, nil
}

var (
	dirLabelDial   = []byte("mobiledist-dgram-dir-dial\x00")
	dirLabelAccept = []byte("mobiledist-dgram-dir-accept\x00")
)

// dirKeys derives the two per-direction sealing keys from the token's
// session key. Both directions sharing one sealing key would let an
// attacker reflect a host's own datagrams back at it (they authenticate,
// and their sequences are fresh in the victim's inbound replay window);
// with split keys a reflected packet fails the MAC.
func dirKeys(key []byte) (dial, accept []byte) {
	d := hmac.New(sha256.New, key)
	d.Write(dirLabelDial)
	a := hmac.New(sha256.New, key)
	a.Write(dirLabelAccept)
	return d.Sum(nil), a.Sum(nil)
}

// sealPacket builds one authenticated datagram: header + body + tag.
func sealPacket(key []byte, h header, body []byte) []byte {
	pkt := appendHeader(make([]byte, 0, headerSize+len(body)+tagSize), h)
	pkt = append(pkt, body...)
	mac := hmac.New(sha256.New, key)
	mac.Write(pkt)
	return append(pkt, mac.Sum(nil)[:tagSize]...)
}

// openPacket verifies pkt's tag under key and returns its header and body.
func openPacket(key, pkt []byte) (header, []byte, error) {
	h, body, err := decodeHeader(pkt, true)
	if err != nil {
		return header{}, nil, err
	}
	mac := hmac.New(sha256.New, key)
	mac.Write(pkt[:len(pkt)-tagSize])
	want := mac.Sum(nil)[:tagSize]
	if !hmac.Equal(want, pkt[len(pkt)-tagSize:]) {
		return header{}, nil, errPacketMAC
	}
	return h, body, nil
}
