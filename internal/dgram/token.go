package dgram

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

// Connect tokens authenticate session establishment without a per-client
// key exchange: any holder of the cluster secret can mint one, and every
// server holding the same secret can validate it.
//
//	token   = payload || HMAC-SHA256(secret, payload)  (full 32-byte tag)
//	payload = version (1) | role (1) | id varint | gen uvarint |
//	          expiry unix-µs uvarint | nonce (16) |
//	          addr count uvarint | count × (len uvarint | addr bytes)
//
// The session key is NOT stored in the token — it is derived as
// HMAC-SHA256(secret, "key" || payload), so a token observed on the wire
// (it travels in every ptConnect) does not leak the key. Mint returns the
// derived key to the minter; the dialer proves possession by sealing its
// connect packet with it.
//
// Addrs binds the token to the server addresses it may be used against
// (udpx connect-token shape): a listener refuses tokens not minted for its
// own advertised address, so a token leaked from one cell cannot open
// sessions elsewhere.
const (
	tokenVersion   = 1
	tokenNonceSize = 16
	tokenMACSize   = sha256.Size
	maxTokenSize   = 1024
	maxTokenAddrs  = 64

	// KeySize is the length of a derived session key. Out-of-band
	// credential blobs are token || key, with the key as the final
	// KeySize bytes.
	KeySize = sha256.Size
)

var keyDerivationPrefix = []byte("mobiledist-dgram-key\x00")

// TokenInfo is the authenticated content of a connect token.
type TokenInfo struct {
	Role   byte      // wire role the dialer claims (informational; the hello frame re-states it)
	ID     int64     // dialer identity under that role
	Gen    uint64    // token generation; re-dials with the same token share it
	Expiry time.Time // refuse validation at or after this instant
	Addrs  []string  // server addresses the token may be presented to
}

var (
	// ErrTokenFormat covers truncated or malformed token bytes.
	ErrTokenFormat = errors.New("dgram: malformed connect token")
	// ErrTokenMAC means the token was not minted under this secret.
	ErrTokenMAC = errors.New("dgram: connect token authentication failed")
	// ErrTokenExpired means the token's expiry has passed.
	ErrTokenExpired = errors.New("dgram: connect token expired")
	// ErrTokenAddr means the token is not bound to this server's address.
	ErrTokenAddr = errors.New("dgram: connect token bound to another address")
)

func appendTokenPayload(dst []byte, info TokenInfo, nonce [tokenNonceSize]byte) []byte {
	dst = append(dst, tokenVersion, info.Role)
	dst = binary.AppendVarint(dst, info.ID)
	dst = binary.AppendUvarint(dst, info.Gen)
	dst = binary.AppendUvarint(dst, uint64(info.Expiry.UnixMicro()))
	dst = append(dst, nonce[:]...)
	dst = binary.AppendUvarint(dst, uint64(len(info.Addrs)))
	for _, a := range info.Addrs {
		dst = binary.AppendUvarint(dst, uint64(len(a)))
		dst = append(dst, a...)
	}
	return dst
}

// decodeTokenPayload parses a token payload (the bytes before the MAC).
func decodeTokenPayload(b []byte) (TokenInfo, [tokenNonceSize]byte, error) {
	var info TokenInfo
	var nonce [tokenNonceSize]byte
	if len(b) < 2 || b[0] != tokenVersion {
		return info, nonce, ErrTokenFormat
	}
	info.Role = b[1]
	rest := b[2:]
	id, n := binary.Varint(rest)
	if n <= 0 {
		return info, nonce, ErrTokenFormat
	}
	info.ID = id
	rest = rest[n:]
	gen, n := binary.Uvarint(rest)
	if n <= 0 {
		return info, nonce, ErrTokenFormat
	}
	info.Gen = gen
	rest = rest[n:]
	exp, n := binary.Uvarint(rest)
	if n <= 0 || exp > uint64(1)<<62 {
		return info, nonce, ErrTokenFormat
	}
	info.Expiry = time.UnixMicro(int64(exp))
	rest = rest[n:]
	if len(rest) < tokenNonceSize {
		return info, nonce, ErrTokenFormat
	}
	copy(nonce[:], rest[:tokenNonceSize])
	rest = rest[tokenNonceSize:]
	count, n := binary.Uvarint(rest)
	if n <= 0 || count > maxTokenAddrs {
		return info, nonce, ErrTokenFormat
	}
	rest = rest[n:]
	info.Addrs = make([]string, 0, count)
	for i := uint64(0); i < count; i++ {
		alen, n := binary.Uvarint(rest)
		if n <= 0 || alen > uint64(len(rest)-n) {
			return info, nonce, ErrTokenFormat
		}
		rest = rest[n:]
		info.Addrs = append(info.Addrs, string(rest[:alen]))
		rest = rest[alen:]
	}
	if len(rest) != 0 {
		return info, nonce, fmt.Errorf("%w: trailing bytes", ErrTokenFormat)
	}
	return info, nonce, nil
}

func deriveKey(secret, payload []byte) []byte {
	mac := hmac.New(sha256.New, secret)
	mac.Write(keyDerivationPrefix)
	mac.Write(payload)
	return mac.Sum(nil)
}

func tokenMAC(secret, payload []byte) []byte {
	mac := hmac.New(sha256.New, secret)
	mac.Write(payload)
	return mac.Sum(nil)
}

// Mint creates a connect token for info under the cluster secret and
// returns it with the derived session key. The nonce makes every minted
// token (and so every derived key) unique even for identical infos.
func Mint(secret []byte, info TokenInfo) (token, key []byte, err error) {
	var nonce [tokenNonceSize]byte
	if _, err := rand.Read(nonce[:]); err != nil {
		return nil, nil, err
	}
	return mintWithNonce(secret, info, nonce)
}

func mintWithNonce(secret []byte, info TokenInfo, nonce [tokenNonceSize]byte) (token, key []byte, err error) {
	payload := appendTokenPayload(nil, info, nonce)
	if len(payload)+tokenMACSize > maxTokenSize {
		return nil, nil, fmt.Errorf("dgram: token too large (%d addrs)", len(info.Addrs))
	}
	token = append(payload, tokenMAC(secret, payload)...)
	return token, deriveKey(secret, payload), nil
}

// Validate checks token under secret against the server address addr at
// time now, returning the authenticated info and the derived session key.
func Validate(secret, token []byte, addr string, now time.Time) (TokenInfo, []byte, error) {
	if len(token) < tokenMACSize+2 || len(token) > maxTokenSize {
		return TokenInfo{}, nil, ErrTokenFormat
	}
	payload, tag := token[:len(token)-tokenMACSize], token[len(token)-tokenMACSize:]
	if !hmac.Equal(tokenMAC(secret, payload), tag) {
		return TokenInfo{}, nil, ErrTokenMAC
	}
	info, _, err := decodeTokenPayload(payload)
	if err != nil {
		return TokenInfo{}, nil, err
	}
	if !now.Before(info.Expiry) {
		return TokenInfo{}, nil, ErrTokenExpired
	}
	bound := false
	for _, a := range info.Addrs {
		if a == addr {
			bound = true
			break
		}
	}
	if !bound {
		return TokenInfo{}, nil, fmt.Errorf("%w: %s", ErrTokenAddr, addr)
	}
	return info, deriveKey(secret, payload), nil
}

// SessionKey re-derives the session key for a previously minted token.
// It trusts the token's MAC has already been (or will be) validated.
func SessionKey(secret, token []byte) ([]byte, error) {
	if len(token) < tokenMACSize+2 {
		return nil, ErrTokenFormat
	}
	return deriveKey(secret, token[:len(token)-tokenMACSize]), nil
}
