package dgram

import (
	"bytes"
	"testing"
	"time"
)

// FuzzPacketHeader feeds hostile bytes to the packet decoders: they must
// never panic, and anything that decodes must survive a
// decode∘encode∘decode fixpoint (the re-encoding is canonical).
func FuzzPacketHeader(f *testing.F) {
	key := []byte("fuzz-session-key")
	f.Add(sealPacket(key, header{Type: ptData, Session: 7, Seq: 42}, []byte("payload")))
	f.Add(sealPacket(key, header{Type: ptConnect, Session: 0, Seq: 0}, nil))
	f.Add(appendHeader(nil, header{Type: ptAck, Session: 1 << 60, Seq: 1 << 40}))
	f.Add([]byte{'M', 'D', packetVersion, ptClose})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		// The MAC-checked path must not panic on anything.
		if h, body, err := openPacket(key, data); err == nil {
			again := sealPacket(key, h, body)
			if !bytes.Equal(again, data) {
				t.Fatalf("sealed packet not a fixpoint: %x vs %x", again, data)
			}
		}
		// The bare header decoder: re-encoding what decoded must be
		// byte-identical (the header is fixed-width, hence canonical).
		h, body, err := decodeHeader(data, false)
		if err != nil {
			return
		}
		enc := append(appendHeader(nil, h), body...)
		if !bytes.Equal(enc, data) {
			t.Fatalf("header re-encode differs: %x vs %x", enc, data)
		}
		h2, body2, err := decodeHeader(enc, false)
		if err != nil || h2 != h || !bytes.Equal(body2, body) {
			t.Fatalf("decode∘encode∘decode not a fixpoint: %v %+v", err, h2)
		}
	})
}

// FuzzConnectToken feeds hostile bytes to the token validator and payload
// decoder: no panics, and decoded payloads re-encode canonically.
func FuzzConnectToken(f *testing.F) {
	secret := []byte("fuzz-secret")
	now := time.Now()
	good, _, _ := Mint(secret, TokenInfo{
		Role: 1, ID: 3, Gen: 2, Expiry: now.Add(time.Hour),
		Addrs: []string{"127.0.0.1:9", "[::1]:10"},
	})
	f.Add(good)
	f.Add(good[:len(good)-1])
	f.Add([]byte{tokenVersion})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Validation of arbitrary bytes must never panic.
		_, _, _ = Validate(secret, data, "127.0.0.1:9", now)

		info, nonce, err := decodeTokenPayload(data)
		if err != nil {
			return
		}
		enc := appendTokenPayload(nil, info, nonce)
		info2, nonce2, err := decodeTokenPayload(enc)
		if err != nil {
			t.Fatalf("re-encoded payload does not decode: %v", err)
		}
		if nonce2 != nonce || info2.Role != info.Role || info2.ID != info.ID ||
			info2.Gen != info.Gen || !info2.Expiry.Equal(info.Expiry) ||
			len(info2.Addrs) != len(info.Addrs) {
			t.Fatalf("decode∘encode∘decode not a fixpoint: %+v vs %+v", info2, info)
		}
		for i := range info.Addrs {
			if info2.Addrs[i] != info.Addrs[i] {
				t.Fatalf("addr %d changed across re-encode", i)
			}
		}
		// The canonical re-encoding is itself a fixpoint.
		if enc2 := appendTokenPayload(nil, info2, nonce2); !bytes.Equal(enc2, enc) {
			t.Fatalf("canonical encoding unstable: %x vs %x", enc2, enc)
		}
	})
}
