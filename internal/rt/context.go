package rt

import (
	"mobiledist/internal/core"
	"mobiledist/internal/cost"
	"mobiledist/internal/sim"
)

// rtContext implements core.Context against the live runtime. All methods
// must run on the executor goroutine — which is where the runtime invokes
// every handler — except during the single-threaded build phase before
// Start.
type rtContext struct {
	s   *System
	alg int
}

var _ core.Context = (*rtContext)(nil)

func (c *rtContext) Now() sim.Time { return c.s.now() }

func (c *rtContext) After(d sim.Time, fn func()) { c.s.afterTicks(d, fn) }

func (c *rtContext) RNG() *sim.RNG { return c.s.rng }

func (c *rtContext) M() int { return c.s.cfg.M }

func (c *rtContext) N() int { return c.s.cfg.N }

func (c *rtContext) Params() cost.Params { return c.s.cfg.Params }

func (c *rtContext) SendFixed(from, to core.MSSID, msg core.Message, cat cost.Category) {
	c.s.sendFixed(c.alg, from, to, msg, cat)
}

func (c *rtContext) BroadcastFixed(from core.MSSID, msg core.Message, cat cost.Category) {
	c.s.broadcastFixed(c.alg, from, msg, cat)
}

func (c *rtContext) SendToMH(from core.MSSID, mh core.MHID, msg core.Message, cat cost.Category) {
	c.s.sendToMH(c.alg, from, mh, msg, cat)
}

func (c *rtContext) SendToLocalMH(from core.MSSID, mh core.MHID, msg core.Message, cat cost.Category) error {
	return c.s.sendToLocalMH(c.alg, from, mh, msg, cat)
}

func (c *rtContext) SendFromMH(mh core.MHID, msg core.Message, cat cost.Category) error {
	return c.s.sendFromMH(c.alg, mh, msg, cat)
}

func (c *rtContext) SendMHToMH(from, to core.MHID, msg core.Message, cat cost.Category) error {
	return c.s.sendMHToMH(c.alg, from, to, msg, cat)
}

func (c *rtContext) SendMHViaMSS(from core.MHID, via core.MSSID, to core.MHID, msg core.Message, cat cost.Category) error {
	return c.s.sendMHViaMSS(c.alg, from, via, to, msg, cat)
}

func (c *rtContext) SendToMHVia(from, via core.MSSID, to core.MHID, msg core.Message, cat cost.Category) {
	c.s.sendToMHVia(c.alg, from, via, to, msg, cat)
}

func (c *rtContext) SendToMSSOfMH(from core.MSSID, mh core.MHID, msg core.Message, cat cost.Category) {
	c.s.sendToMSSOfMH(c.alg, from, mh, msg, cat)
}

func (c *rtContext) IsLocal(mss core.MSSID, mh core.MHID) bool {
	c.s.checkMSS(mss)
	c.s.checkMH(mh)
	return c.s.mss[mss].local[mh]
}

func (c *rtContext) LocalMHs(mss core.MSSID) []core.MHID {
	return c.s.localMHs(mss)
}

func (c *rtContext) IsDisconnectedHere(mss core.MSSID, mh core.MHID) bool {
	c.s.checkMSS(mss)
	c.s.checkMH(mh)
	return c.s.mss[mss].disconnected[mh]
}
