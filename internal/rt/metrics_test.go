package rt

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"testing"

	"mobiledist/internal/core"
	"mobiledist/internal/obs"
)

var eventsTotalRe = regexp.MustCompile(`mobiledist_events_total\{kind="([a-z-]+)"\} (\d+)`)

// scrapeCounters fetches /metrics and parses the per-kind event counters.
func scrapeCounters(t *testing.T, url string) map[string]uint64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read /metrics: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	counts := make(map[string]uint64)
	for _, m := range eventsTotalRe.FindAllStringSubmatch(string(body), -1) {
		v, err := strconv.ParseUint(m[2], 10, 64)
		if err != nil {
			t.Fatalf("bad counter value %q", m[2])
		}
		counts[m[1]] = v
	}
	return counts
}

func TestMetricsEndpointDuringLiveRun(t *testing.T) {
	const m, n = 3, 6
	cfg := DefaultConfig(m, n)
	cfg.Obs = obs.NewTracer(0).WithMetrics(obs.NewMetrics())
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	if sys.Tracer() != cfg.Obs {
		t.Fatal("Tracer() does not expose the configured tracer")
	}
	srv := httptest.NewServer(sys.MetricsHandler())
	defer srv.Close()

	sys.Start()
	defer sys.Stop()

	// Scrape while mobility is in flight: counters must be monotone
	// non-decreasing across scrapes (the tracer locks, scrapes snapshot).
	var scrapes []map[string]uint64
	scrapes = append(scrapes, scrapeCounters(t, srv.URL))
	for i := 0; i < 8; i++ {
		sys.Move(core.MHID(i%n), core.MSSID((i+1)%m))
		if i == 3 {
			scrapes = append(scrapes, scrapeCounters(t, srv.URL))
		}
	}
	sys.Disconnect(core.MHID(0))
	scrapes = append(scrapes, scrapeCounters(t, srv.URL))
	sys.Reconnect(core.MHID(0), core.MSSID(2))
	if !sys.WaitIdle(idleTimeout) {
		t.Fatal("system did not go idle")
	}
	scrapes = append(scrapes, scrapeCounters(t, srv.URL))

	for i := 1; i < len(scrapes); i++ {
		for kind, prev := range scrapes[i-1] {
			if cur := scrapes[i][kind]; cur < prev {
				t.Errorf("counter %q went backwards: scrape %d had %d, scrape %d has %d", kind, i-1, prev, i, cur)
			}
		}
	}

	// After quiescence the scraped counters must agree with Stats.
	stats := sys.Stats()
	final := scrapes[len(scrapes)-1]
	for kind, want := range map[string]int64{
		"disconnect": stats.Disconnects,
		"reconnect":  stats.Reconnects,
		"search":     stats.Searches,
		"leave":      stats.Moves,
	} {
		if got := int64(final[kind]); got != want {
			t.Errorf("final %q counter = %d, want %d (Stats: %+v)", kind, got, want, stats)
		}
	}
	if final["join"] == 0 || final["transmit"] == 0 {
		t.Errorf("expected join and transmit events, got %v", final)
	}

	// /vars serves the expvar-style JSON view of the same registry.
	resp, err := http.Get(srv.URL + "/vars")
	if err != nil {
		t.Fatalf("GET /vars: %v", err)
	}
	defer resp.Body.Close()
	var vars map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatalf("/vars is not valid JSON: %v", err)
	}
	if _, ok := vars["events"]; !ok {
		t.Errorf("/vars missing events map: %v", vars)
	}
}

func TestMetricsHandlerWithoutTracer(t *testing.T) {
	sys, err := NewSystem(DefaultConfig(2, 2))
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	sys.MetricsHandler().ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Errorf("tracerless handler returned %d, want 404", rec.Code)
	}
}
