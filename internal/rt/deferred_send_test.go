package rt

import (
	"testing"

	"mobiledist/internal/core"
	"mobiledist/internal/cost"
)

// mobProbe is a test algorithm exposing the engine's protocol hooks so
// scenarios can inject actions at exact protocol instants (on the executor,
// where direct engine calls are safe).
type mobProbe struct {
	onLeave func(ctx core.Context, at core.MSSID, mh core.MHID)
	onJoin  func(ctx core.Context, at core.MSSID, mh core.MHID, prev core.MSSID, wasDisconnected bool)
	onMSS   func(at core.MSSID, from core.From, msg core.Message)
}

func (p *mobProbe) Name() string { return "mob-probe" }

func (p *mobProbe) HandleMSS(ctx core.Context, at core.MSSID, from core.From, msg core.Message) {
	if p.onMSS != nil {
		p.onMSS(at, from, msg)
	}
}

func (p *mobProbe) OnJoin(ctx core.Context, at core.MSSID, mh core.MHID, prev core.MSSID, wasDisconnected bool) {
	if p.onJoin != nil {
		p.onJoin(ctx, at, mh, prev, wasDisconnected)
	}
}

func (p *mobProbe) OnLeave(ctx core.Context, at core.MSSID, mh core.MHID) {
	if p.onLeave != nil {
		p.onLeave(ctx, at, mh)
	}
}

func (p *mobProbe) OnDisconnect(core.Context, core.MSSID, core.MHID) {}

// TestDeferredSendReplaysAfterJoin pins the replay path: a SendFromMH issued
// while the MH is between cells parks, then replays after the join and is
// delivered at the NEW cell's MSS.
func TestDeferredSendReplaysAfterJoin(t *testing.T) {
	sys, err := NewSystem(DefaultConfig(2, 1))
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	var deliveredAt []core.MSSID
	p := &mobProbe{
		onLeave: func(ctx core.Context, at core.MSSID, mh core.MHID) {
			// The MH is in transit here, so this send must park.
			if err := ctx.SendFromMH(mh, "parked", cost.CatAlgorithm); err != nil {
				t.Errorf("SendFromMH while in transit: %v", err)
			}
		},
		onMSS: func(at core.MSSID, from core.From, msg core.Message) {
			deliveredAt = append(deliveredAt, at)
		},
	}
	sys.Register(p)
	sys.Start()
	defer sys.Stop()

	sys.Move(0, 1)
	if !sys.WaitIdle(idleTimeout) {
		t.Fatal("network did not drain")
	}
	if len(deliveredAt) != 1 || deliveredAt[0] != 1 {
		t.Errorf("delivered at %v, want exactly one delivery at mss1", deliveredAt)
	}
	if got := sys.Stats().FailedDeliveries; got != 0 {
		t.Errorf("FailedDeliveries = %d, want 0", got)
	}
}

// TestDeferredSendDropCountedOnDisconnect pins the drop path: a SendFromMH
// parked during a move is dropped if the MH disconnects the instant it
// rejoins, and the loss is counted in Stats.FailedDeliveries instead of
// being silently swallowed.
func TestDeferredSendDropCountedOnDisconnect(t *testing.T) {
	sys, err := NewSystem(DefaultConfig(2, 1))
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	var delivered int
	p := &mobProbe{
		onLeave: func(ctx core.Context, at core.MSSID, mh core.MHID) {
			if err := ctx.SendFromMH(mh, "parked", cost.CatAlgorithm); err != nil {
				t.Errorf("SendFromMH while in transit: %v", err)
			}
		},
		onMSS: func(core.MSSID, core.From, core.Message) { delivered++ },
	}
	p.onJoin = func(ctx core.Context, at core.MSSID, mh core.MHID, prev core.MSSID, wasDisconnected bool) {
		if wasDisconnected {
			return
		}
		// OnJoin runs before parked waiters replay; disconnecting here (on
		// the executor, so the direct engine call is safe) guarantees the
		// deferred send finds the MH unreachable.
		if err := sys.eng.Disconnect(mh); err != nil {
			t.Errorf("Disconnect: %v", err)
		}
	}
	sys.Register(p)
	sys.Start()
	defer sys.Stop()

	sys.Move(0, 1)
	if !sys.WaitIdle(idleTimeout) {
		t.Fatal("network did not drain")
	}
	if delivered != 0 {
		t.Errorf("delivered = %d, want 0 (send should have been dropped)", delivered)
	}
	if got := sys.Stats().FailedDeliveries; got != 1 {
		t.Errorf("FailedDeliveries = %d, want 1 (dropped deferred send must be counted)", got)
	}
}
