package rt

import (
	"sync"
	"testing"
	"time"

	"mobiledist/internal/core"
	"mobiledist/internal/cost"
	"mobiledist/internal/group"
	"mobiledist/internal/mutex/lamport"
	"mobiledist/internal/mutex/ring"
	"mobiledist/internal/proxy"
)

const idleTimeout = 10 * time.Second

func mhRange(n int) []core.MHID {
	out := make([]core.MHID, n)
	for i := range out {
		out[i] = core.MHID(i)
	}
	return out
}

// safetyMonitor checks mutual exclusion from handler context (executor
// goroutine), with a mutex so tests can read final values safely.
type safetyMonitor struct {
	mu      sync.Mutex
	t       *testing.T
	holders int
	grants  int
}

func (m *safetyMonitor) enter(mh core.MHID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.holders++
	m.grants++
	if m.holders > 1 {
		m.t.Errorf("mutual exclusion violated at mh%d", int(mh))
	}
}

func (m *safetyMonitor) exit(core.MHID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.holders--
}

func (m *safetyMonitor) totals() (grants, holders int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.grants, m.holders
}

func TestLiveL2WithConcurrentMobility(t *testing.T) {
	const (
		m = 4
		n = 12
	)
	sys, err := NewSystem(DefaultConfig(m, n))
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	mon := &safetyMonitor{t: t}
	l2 := lamport.NewL2(sys, lamport.Options{Hold: 3, OnEnter: mon.enter, OnExit: mon.exit})
	sys.Start()
	defer sys.Stop()

	// Drive requests from the main goroutine and moves from another,
	// exercising the executor under the race detector.
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			mh := core.MHID(i)
			sys.Do(func() {
				if err := l2.Request(mh); err != nil {
					t.Errorf("Request: %v", err)
				}
			})
			time.Sleep(200 * time.Microsecond)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			sys.Move(core.MHID(i), core.MSSID((i+1)%m))
			time.Sleep(150 * time.Microsecond)
		}
	}()
	wg.Wait()

	if !sys.WaitIdle(idleTimeout) {
		t.Fatal("network did not drain")
	}
	grants, holders := mon.totals()
	if grants != n {
		t.Errorf("grants = %d, want %d", grants, n)
	}
	if holders != 0 {
		t.Errorf("holders = %d after drain, want 0", holders)
	}
	if got := l2.Grants(); got != int64(n) {
		t.Errorf("l2.Grants = %d, want %d", got, n)
	}
}

func TestLiveR2TokenRing(t *testing.T) {
	const (
		m = 4
		n = 10
	)
	sys, err := NewSystem(DefaultConfig(m, n))
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	mon := &safetyMonitor{t: t}
	r2, err := ring.NewR2(sys, ring.VariantCounter, ring.Options{Hold: 2, OnEnter: mon.enter, OnExit: mon.exit}, 3, nil)
	if err != nil {
		t.Fatalf("NewR2: %v", err)
	}
	sys.Start()
	defer sys.Stop()

	sys.Do(func() {
		for i := 0; i < 5; i++ {
			if err := r2.Request(core.MHID(i)); err != nil {
				t.Errorf("Request: %v", err)
			}
		}
	})
	time.Sleep(2 * time.Millisecond)
	sys.Do(func() {
		if err := r2.Start(); err != nil {
			t.Errorf("Start: %v", err)
		}
	})

	if !sys.WaitIdle(idleTimeout) {
		t.Fatal("network did not drain")
	}
	grants, _ := mon.totals()
	if grants != 5 {
		t.Errorf("grants = %d, want 5", grants)
	}
	sys.Do(func() {
		if got := r2.Traversals(); got != 3 {
			t.Errorf("traversals = %d, want 3", got)
		}
	})
}

func TestLiveLocationViewGroup(t *testing.T) {
	const (
		m = 5
		n = 10
		g = 6
	)
	sys, err := NewSystem(DefaultConfig(m, n))
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	var mu sync.Mutex
	delivered := make(map[core.MHID]int)
	lv, err := group.NewLocationView(sys, mhRange(g), group.LocationViewOptions{
		Options: group.Options{OnDeliver: func(at, from core.MHID, payload any) {
			mu.Lock()
			delivered[at]++
			mu.Unlock()
		}},
		Coordinator:   core.MSSID(m - 1),
		CombineWindow: 10,
	})
	if err != nil {
		t.Fatalf("NewLocationView: %v", err)
	}
	sys.Start()
	defer sys.Stop()

	// Move a member to a fresh cell (a significant move), wait for the
	// view to settle, then send a group message.
	sys.Move(core.MHID(0), core.MSSID(4))
	if !sys.WaitIdle(idleTimeout) {
		t.Fatal("view did not settle")
	}
	sys.Do(func() {
		if err := lv.Send(core.MHID(1), "hello"); err != nil {
			t.Errorf("Send: %v", err)
		}
	})
	if !sys.WaitIdle(idleTimeout) {
		t.Fatal("network did not drain")
	}
	mu.Lock()
	defer mu.Unlock()
	if total := len(delivered); total != g-1 {
		t.Errorf("distinct recipients = %d, want %d (map: %v)", total, g-1, delivered)
	}
	sys.Do(func() {
		if got := lv.Delivered(); got != int64(g-1) {
			t.Errorf("delivered = %d, want %d", got, g-1)
		}
	})
}

func TestLiveProxyStaticMutex(t *testing.T) {
	const (
		m = 3
		n = 6
	)
	sys, err := NewSystem(DefaultConfig(m, n))
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	var mu sync.Mutex
	var holders, grants int
	sm, err := proxy.NewStaticMutex(n, proxy.MutexOptions{
		Hold: 2,
		OnEnter: func(p int) {
			mu.Lock()
			holders++
			grants++
			if holders > 1 {
				t.Errorf("mutual exclusion violated at proc %d", p)
			}
			mu.Unlock()
		},
		OnExit: func(p int) {
			mu.Lock()
			holders--
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatalf("NewStaticMutex: %v", err)
	}
	rt, err := proxy.New(sys, sm, mhRange(n), proxy.Options{Scope: proxy.ScopeHome})
	if err != nil {
		t.Fatalf("proxy.New: %v", err)
	}
	sys.Start()
	defer sys.Stop()

	for i := 0; i < n; i++ {
		mh := core.MHID(i)
		sys.Do(func() {
			if err := rt.Input(mh, proxy.RequestInput{}); err != nil {
				t.Errorf("Input: %v", err)
			}
		})
	}
	if !sys.WaitIdle(idleTimeout) {
		t.Fatal("network did not drain")
	}
	mu.Lock()
	defer mu.Unlock()
	if grants != n {
		t.Errorf("grants = %d, want %d", grants, n)
	}
}

func TestLiveDisconnectReconnect(t *testing.T) {
	sys, err := NewSystem(DefaultConfig(3, 4))
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	mon := &safetyMonitor{t: t}
	l2 := lamport.NewL2(sys, lamport.Options{Hold: 2, OnEnter: mon.enter, OnExit: mon.exit})
	sys.Start()
	defer sys.Stop()

	// mh0 requests then disconnects before the grant can be delivered; L2
	// must abort it and still serve mh1.
	sys.Do(func() {
		if err := l2.Request(core.MHID(0)); err != nil {
			t.Errorf("Request: %v", err)
		}
	})
	sys.Disconnect(core.MHID(0))
	sys.Do(func() {
		if err := l2.Request(core.MHID(1)); err != nil {
			t.Errorf("Request: %v", err)
		}
	})
	if !sys.WaitIdle(idleTimeout) {
		t.Fatal("network did not drain")
	}
	sys.Do(func() {
		if l2.Grants()+l2.FailedGrants() != 2 {
			t.Errorf("grants=%d failed=%d, want total 2", l2.Grants(), l2.FailedGrants())
		}
		if l2.Grants() < 1 {
			t.Errorf("grants = %d, want >= 1 (mh1 must be served)", l2.Grants())
		}
	})

	// Reconnect mh0 elsewhere; it must be able to request again if its
	// first request was aborted.
	sys.Reconnect(core.MHID(0), core.MSSID(2))
	if !sys.WaitIdle(idleTimeout) {
		t.Fatal("reconnect did not settle")
	}
	sys.Do(func() {
		if at, st := sys.Where(core.MHID(0)); st != core.StatusConnected || at != 2 {
			t.Errorf("mh0 at mss%d (%v), want mss2 connected", int(at), st)
		}
	})
}

func TestLiveCostAccountingMatchesSimulatorShape(t *testing.T) {
	// One L2 execution on the live runtime must charge exactly the same
	// message counts as the simulator (latencies differ, counts cannot).
	sys, err := NewSystem(DefaultConfig(5, 12))
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	l2 := lamport.NewL2(sys, lamport.Options{Hold: 2})
	sys.Start()
	defer sys.Stop()
	sys.Do(func() {
		if err := l2.Request(core.MHID(3)); err != nil {
			t.Errorf("Request: %v", err)
		}
	})
	if !sys.WaitIdle(idleTimeout) {
		t.Fatal("network did not drain")
	}
	p := sys.Config().Params
	got := sys.Meter().CategoryCost(cost.CatAlgorithm, p)
	want := cost.AnalyticL2PerExecution(5, p)
	if got != want {
		t.Errorf("live L2 cost = %v, want analytic %v\n%s", got, want, sys.Meter().Report(p))
	}
}

func TestLiveConfigValidation(t *testing.T) {
	bad := DefaultConfig(3, 3)
	bad.Wired = core.Delay{Min: 5, Max: 1}
	if _, err := NewSystem(bad); err == nil {
		t.Error("invalid wired delay accepted")
	}
	if _, err := NewSystem(Config{M: 0, N: 1}); err == nil {
		t.Error("M=0 accepted")
	}
	worse := DefaultConfig(2, 2)
	worse.Params.Search = 0
	if _, err := NewSystem(worse); err == nil {
		t.Error("invalid params accepted")
	}
	placed := DefaultConfig(2, 2)
	placed.Placement = func(core.MHID) core.MSSID { return 9 }
	if _, err := NewSystem(placed); err == nil {
		t.Error("out-of-range placement accepted")
	}
}
