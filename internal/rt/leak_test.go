package rt

import (
	"runtime"
	"testing"
	"time"

	"mobiledist/internal/core"
	"mobiledist/internal/mutex/ring"
)

// TestStopLeaksNoGoroutines audits System.Stop the way the netrt suite
// audits its shutdown: the goroutine count must return to the pre-Start
// baseline. The hard case is stopping mid-flight — channel pipes full,
// a token ring still circulating, mobility churn outstanding — where a
// Transmit blocked on a stopping pipe must take the stop path rather than
// hold an executor goroutine forever.
func TestStopLeaksNoGoroutines(t *testing.T) {
	const m, n = 4, 8
	before := runtime.NumGoroutine()

	// Mid-flight stop: a long-lived token ring plus mobility churn, no
	// WaitIdle — Stop races live traffic.
	sys, err := NewSystem(DefaultConfig(m, n))
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	r2, err := ring.NewR2(sys, ring.VariantCounter, ring.Options{Hold: 1}, 1024, nil)
	if err != nil {
		t.Fatalf("NewR2: %v", err)
	}
	sys.Start()
	sys.Do(func() {
		for i := 0; i < n; i++ {
			if err := r2.Request(core.MHID(i)); err != nil {
				t.Errorf("Request: %v", err)
			}
		}
		if err := r2.Start(); err != nil {
			t.Errorf("Start: %v", err)
		}
	})
	for i := 0; i < m; i++ {
		sys.Move(core.MHID(i), core.MSSID((i+1)%m))
	}
	sys.Stop()
	assertNoGoroutineLeak(t, before)

	// Idle stop: the clean path must also release everything.
	sys, err = NewSystem(DefaultConfig(m, n))
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	sys.Start()
	sys.Move(0, 1)
	if !sys.WaitIdle(idleTimeout) {
		t.Fatal("WaitIdle timed out")
	}
	sys.Stop()
	assertNoGoroutineLeak(t, before)
}

// assertNoGoroutineLeak retries (pipe teardown is asynchronous) until the
// goroutine count returns to the baseline or a deadline passes, then dumps
// all stacks on failure.
func assertNoGoroutineLeak(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var now int
	for {
		now = runtime.NumGoroutine()
		if now <= baseline {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	buf = buf[:runtime.Stack(buf, true)]
	t.Errorf("goroutine leak: %d before, %d after Stop\n%s", baseline, now, buf)
}
