package rt

import (
	"sync"
	"testing"
	"time"

	"mobiledist/internal/core"
	"mobiledist/internal/cost"
	"mobiledist/internal/group"
	"mobiledist/internal/multicast"
	"mobiledist/internal/mutex/lamport"
	"mobiledist/internal/mutex/ring"
)

func TestLiveMulticastExactlyOnceUnderMobility(t *testing.T) {
	const (
		m = 4
		n = 6
		g = 4
	)
	sys, err := NewSystem(DefaultConfig(m, n))
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	var mu sync.Mutex
	got := make(map[core.MHID][]int64)
	mc, err := multicast.New(sys, mhRange(g), multicast.Options{
		Sequencer: core.MSSID(m - 1),
		OnDeliver: func(at core.MHID, seq int64, payload any) {
			mu.Lock()
			got[at] = append(got[at], seq)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatalf("multicast.New: %v", err)
	}
	sys.Start()
	defer sys.Stop()

	const items = 5
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < items; i++ {
			item := i
			sys.Do(func() {
				if err := mc.Publish(core.MHID(0), item); err != nil {
					t.Errorf("Publish: %v", err)
				}
			})
			time.Sleep(400 * time.Microsecond)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			sys.Move(core.MHID(i%g), core.MSSID((i+1)%m))
			time.Sleep(300 * time.Microsecond)
		}
	}()
	wg.Wait()
	if !sys.WaitIdle(idleTimeout) {
		t.Fatal("network did not drain")
	}
	mu.Lock()
	defer mu.Unlock()
	for i := 0; i < g; i++ {
		seqs := got[core.MHID(i)]
		if len(seqs) != items {
			t.Errorf("mh%d received %d items, want %d (%v)", i, len(seqs), items, seqs)
			continue
		}
		for j, s := range seqs {
			if s != int64(j) {
				t.Errorf("mh%d out of order: %v", i, seqs)
				break
			}
		}
	}
}

func TestLiveR1TokenRing(t *testing.T) {
	const (
		m = 3
		n = 6
	)
	sys, err := NewSystem(DefaultConfig(m, n))
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	mon := &safetyMonitor{t: t}
	r1, err := ring.NewR1(sys, mhRange(n), ring.Options{Hold: 2, OnEnter: mon.enter, OnExit: mon.exit}, false, 2)
	if err != nil {
		t.Fatalf("NewR1: %v", err)
	}
	sys.Start()
	defer sys.Stop()

	sys.Do(func() {
		for _, mh := range []core.MHID{1, 4} {
			if err := r1.Request(mh); err != nil {
				t.Errorf("Request: %v", err)
			}
		}
		if err := r1.Start(); err != nil {
			t.Errorf("Start: %v", err)
		}
	})
	if !sys.WaitIdle(idleTimeout) {
		t.Fatal("network did not drain")
	}
	grants, _ := mon.totals()
	if grants != 2 {
		t.Errorf("grants = %d, want 2", grants)
	}
	sys.Do(func() {
		if got := r1.Traversals(); got != 2 {
			t.Errorf("traversals = %d, want 2", got)
		}
	})
}

func TestLivePairFIFO(t *testing.T) {
	// A stream of MH-to-MH messages must arrive in order on the live
	// runtime even while the destination moves.
	const (
		m = 4
		n = 2
	)
	sys, err := NewSystem(DefaultConfig(m, n))
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	var mu sync.Mutex
	var got []int
	l1probe := &fifoProbe{onMsg: func(v int) {
		mu.Lock()
		got = append(got, v)
		mu.Unlock()
	}}
	ctx := sys.Register(l1probe)
	sys.Start()
	defer sys.Stop()

	const msgs = 15
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < msgs; i++ {
			v := i
			sys.Do(func() {
				if err := ctx.SendMHToMH(0, 1, v, cost.CatAlgorithm); err != nil {
					t.Errorf("SendMHToMH: %v", err)
				}
			})
			time.Sleep(100 * time.Microsecond)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			sys.Move(core.MHID(1), core.MSSID((i+1)%m))
			time.Sleep(350 * time.Microsecond)
		}
	}()
	wg.Wait()
	if !sys.WaitIdle(idleTimeout) {
		t.Fatal("network did not drain")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != msgs {
		t.Fatalf("received %d messages, want %d", len(got), msgs)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("pair FIFO violated: %v", got)
		}
	}
}

// fifoProbe receives MH messages carrying ints.
type fifoProbe struct {
	onMsg func(int)
}

func (p *fifoProbe) Name() string { return "fifo-probe" }

func (p *fifoProbe) HandleMH(_ core.Context, at core.MHID, msg core.Message) {
	v, ok := msg.(int)
	if !ok {
		panic("fifoProbe: unexpected message")
	}
	p.onMsg(v)
}

func TestLiveAlwaysInformGroup(t *testing.T) {
	const (
		m = 4
		n = 6
		g = 4
	)
	sys, err := NewSystem(DefaultConfig(m, n))
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	var mu sync.Mutex
	delivered := 0
	ai, err := group.NewAlwaysInform(sys, mhRange(g), group.Options{
		OnDeliver: func(core.MHID, core.MHID, any) {
			mu.Lock()
			delivered++
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatalf("NewAlwaysInform: %v", err)
	}
	sys.Start()
	defer sys.Stop()

	// Move a member (location updates flow), settle, then send.
	sys.Move(core.MHID(2), core.MSSID(3))
	if !sys.WaitIdle(idleTimeout) {
		t.Fatal("updates did not settle")
	}
	sys.Do(func() {
		if err := ai.Send(core.MHID(0), "live"); err != nil {
			t.Errorf("Send: %v", err)
		}
	})
	if !sys.WaitIdle(idleTimeout) {
		t.Fatal("network did not drain")
	}
	mu.Lock()
	defer mu.Unlock()
	if delivered != g-1 {
		t.Errorf("delivered = %d, want %d", delivered, g-1)
	}
	sys.Do(func() {
		dir, err := ai.Directory(core.MHID(0))
		if err != nil {
			t.Errorf("Directory: %v", err)
			return
		}
		if dir[core.MHID(2)] != core.MSSID(3) {
			t.Errorf("directory has mh2 at mss%d, want mss3", int(dir[core.MHID(2)]))
		}
	})
}

func TestLiveL1DirectOnMHs(t *testing.T) {
	const (
		m = 3
		n = 5
	)
	sys, err := NewSystem(DefaultConfig(m, n))
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	mon := &safetyMonitor{t: t}
	l1, err := lamport.NewL1(sys, mhRange(n), lamport.Options{Hold: 2, OnEnter: mon.enter, OnExit: mon.exit})
	if err != nil {
		t.Fatalf("NewL1: %v", err)
	}
	sys.Start()
	defer sys.Stop()

	for i := 0; i < n; i++ {
		mh := core.MHID(i)
		sys.Do(func() {
			if err := l1.Request(mh); err != nil {
				t.Errorf("Request: %v", err)
			}
		})
	}
	if !sys.WaitIdle(idleTimeout) {
		t.Fatal("network did not drain")
	}
	grants, holders := mon.totals()
	if grants != n || holders != 0 {
		t.Errorf("grants = %d holders = %d, want %d/0", grants, holders, n)
	}
}

func TestLiveSearchChargesMatchPessimisticModel(t *testing.T) {
	sys, err := NewSystem(DefaultConfig(4, 8))
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	p := &fifoProbe{onMsg: func(int) {}}
	ctx := sys.Register(p)
	sys.Start()
	defer sys.Stop()
	sys.Do(func() {
		ctx.SendToMH(0, 0, 1, cost.CatAlgorithm) // local, pessimistic search
		ctx.SendToMH(0, 5, 2, cost.CatAlgorithm) // remote
	})
	if !sys.WaitIdle(idleTimeout) {
		t.Fatal("network did not drain")
	}
	if got := sys.Meter().Count(cost.CatAlgorithm, cost.KindSearch); got != 2 {
		t.Errorf("searches = %d, want 2", got)
	}
	if got := sys.Searches(); got != 2 {
		t.Errorf("Searches() = %d, want 2", got)
	}
}
