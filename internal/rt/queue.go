package rt

import "sync"

// taskQueue is an unbounded FIFO work queue feeding the executor
// goroutine. Unboundedness is deliberate: producers are transport
// goroutines that must never block on the executor (a bounded channel
// could deadlock the executor against its own deliveries).
type taskQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []func()
	closed bool
}

func newTaskQueue() *taskQueue {
	q := &taskQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues fn. It reports false if the queue is closed.
func (q *taskQueue) push(fn func()) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	q.items = append(q.items, fn)
	q.cond.Signal()
	return true
}

// pop dequeues the next task, blocking until one is available or the queue
// closes. It reports false when closed and drained.
func (q *taskQueue) pop() (func(), bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return nil, false
	}
	fn := q.items[0]
	q.items = q.items[1:]
	return fn, true
}

// close marks the queue closed and wakes the consumer. Queued tasks are
// still drained.
func (q *taskQueue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

// len reports the number of queued tasks.
func (q *taskQueue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}
