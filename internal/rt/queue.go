package rt

import "sync"

// taskQueue is an unbounded FIFO work queue feeding the executor
// goroutine, and the runtime's single source of truth for quiescence.
// Unboundedness is deliberate: producers are transport goroutines that
// must never block on the executor (a bounded channel could deadlock the
// executor against its own deliveries).
//
// Idle tracking lives here, under the queue mutex, so "idle" is an exact
// predicate evaluated atomically: no task queued, no task running, and no
// asynchronous operation (timer or transmission) in flight. Every async op
// brackets itself with opStart/opDone *before* leaving the executor, so
// there is no instant where pending work is invisible to the predicate.
// WaitIdle waiters park on a channel that closes the moment the predicate
// becomes true — a condition-signaled drain, not a poll.
type taskQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []func()
	closed bool

	// running is true while the executor is inside a task (set by pop,
	// cleared by done).
	running bool
	// inflight counts asynchronous operations bracketed by opStart/opDone.
	inflight int64
	// waiters are WaitIdle channels closed on the next transition to idle.
	idleWaiters []chan struct{}
}

func newTaskQueue() *taskQueue {
	q := &taskQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues fn. It reports false if the queue is closed.
func (q *taskQueue) push(fn func()) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	q.items = append(q.items, fn)
	q.cond.Signal()
	return true
}

// pop dequeues the next task, blocking until one is available or the queue
// closes, and marks the executor busy. The caller must invoke done after
// running the task. It reports false when closed and drained.
func (q *taskQueue) pop() (func(), bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return nil, false
	}
	fn := q.items[0]
	q.items = q.items[1:]
	q.running = true
	return fn, true
}

// done marks the executor idle again after a task returns.
func (q *taskQueue) done() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.running = false
	q.notifyLocked()
}

// opStart registers one asynchronous operation for idle tracking.
func (q *taskQueue) opStart() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.inflight++
}

// opDone resolves one asynchronous operation.
func (q *taskQueue) opDone() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.inflight--
	q.notifyLocked()
}

// idleWait reports idleness: (nil, true) if the network is drained right
// now, else a channel that closes on the next transition to idle.
func (q *taskQueue) idleWait() (<-chan struct{}, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.idleLocked() {
		return nil, true
	}
	ch := make(chan struct{})
	q.idleWaiters = append(q.idleWaiters, ch)
	return ch, false
}

func (q *taskQueue) idleLocked() bool {
	return !q.running && q.inflight == 0 && len(q.items) == 0
}

func (q *taskQueue) notifyLocked() {
	if !q.idleLocked() {
		return
	}
	for _, ch := range q.idleWaiters {
		close(ch)
	}
	q.idleWaiters = nil
}

// close marks the queue closed and wakes the consumer. Queued tasks are
// still drained.
func (q *taskQueue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
	q.notifyLocked()
}
