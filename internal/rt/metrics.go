package rt

import (
	"net/http"

	"mobiledist/internal/obs"
)

// Tracer returns the tracer the system was configured with, or nil.
func (s *System) Tracer() *obs.Tracer { return s.cfg.Obs }

// MetricsHandler returns an http.Handler exposing the system's
// observability state while it runs: Prometheus text exposition at
// /metrics and an expvar-style JSON document at /vars. Scraping is safe
// from any goroutine at any point in the lifecycle — the tracer snapshots
// under its own lock — so a live run can be watched without stopping it.
// A system built without a tracer serves 404s.
func (s *System) MetricsHandler() http.Handler {
	if s.cfg.Obs == nil {
		return http.NotFoundHandler()
	}
	return s.cfg.Obs.Handler()
}
