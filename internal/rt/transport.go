package rt

import (
	"time"

	"mobiledist/internal/engine"
)

// The runtime's transport is purely physical: the engine decides what to
// send, on which flat channel id, with which latency (see
// engine.ChannelCount); this file only moves deliveries. One goroutine per
// active channel reads from a buffered Go channel, sleeps each message's
// latency, and hands it to the executor — strictly in order, which is
// exactly the model's per-channel FIFO guarantee, with no arrival-time
// bookkeeping needed.

// delivery is one message travelling a FIFO channel: sleep latency, then
// interpret rec on the executor. The record is opaque to the transport; it
// is stepped (and freed) by the bound sink on the executor goroutine only.
type delivery struct {
	latency time.Duration
	rec     *engine.DeliveryRec
}

// pipe returns (creating on demand) the goroutine-backed FIFO channel for
// the engine's flat channel id.
func (s *System) pipe(ch int) chan delivery {
	s.pipesMu.Lock()
	defer s.pipesMu.Unlock()
	c, ok := s.pipes[ch]
	if ok {
		return c
	}
	c = make(chan delivery, 256)
	s.pipes[ch] = c
	s.wg.Add(1)
	go s.forward(c)
	return c
}

func (s *System) forward(ch chan delivery) {
	defer s.wg.Done()
	for {
		select {
		case d := <-ch:
			t := time.NewTimer(d.latency)
			select {
			case <-t.C:
				rec := d.rec
				s.exec(func() {
					defer s.opDone()
					s.sink.StepRec(rec)
				})
			case <-s.stopped:
				t.Stop()
				s.opDone()
				return
			}
		case <-s.stopped:
			return
		}
	}
}
