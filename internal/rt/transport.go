package rt

import (
	"fmt"
	"time"

	"mobiledist/internal/core"
	"mobiledist/internal/cost"
)

// Channel kinds for pipe keys.
const (
	pipeWired = iota + 1
	pipeDown
	pipeUp
)

type pipeKey struct {
	kind int
	a, b int
}

// delivery is one message travelling a FIFO channel: sleep latency, then
// run fn on the executor.
type delivery struct {
	latency time.Duration
	fn      func()
}

// pipe returns (creating on demand) the goroutine-backed FIFO channel for
// key. Each pipe processes deliveries strictly in order: it sleeps each
// message's latency before handing it to the executor, which is exactly the
// model's per-channel FIFO guarantee.
func (s *System) pipe(key pipeKey) chan delivery {
	s.pipesMu.Lock()
	defer s.pipesMu.Unlock()
	ch, ok := s.pipes[key]
	if ok {
		return ch
	}
	ch = make(chan delivery, 256)
	s.pipes[key] = ch
	s.wg.Add(1)
	go s.forward(ch)
	return ch
}

func (s *System) forward(ch chan delivery) {
	defer s.wg.Done()
	for {
		select {
		case d := <-ch:
			t := time.NewTimer(d.latency)
			select {
			case <-t.C:
				s.execOp(d.fn)
			case <-s.stopped:
				t.Stop()
				s.opDone()
				return
			}
		case <-s.stopped:
			return
		}
	}
}

// transmit enqueues fn on the pipe after drawing a latency (executor only).
func (s *System) transmit(key pipeKey, delay core.Delay, fn func()) {
	ticks := s.rng.Duration(delay.Min, delay.Max)
	s.opStart()
	s.pipe(key) <- delivery{latency: time.Duration(ticks) * s.cfg.Tick, fn: fn}
}

// routeOpts mirrors core's routing context.
type routeOpts struct {
	alg    int
	origin core.MSSID
	cat    cost.Category
	pair   *pairKey
	seq    uint64
}

type pairKey struct {
	from, to core.MHID
}

// All functions below run on the executor goroutine.

func (s *System) sendFixed(alg int, from, to core.MSSID, msg core.Message, cat cost.Category) {
	s.checkMSS(from)
	s.checkMSS(to)
	s.meter.Charge(cat, cost.KindFixed)
	sender := core.From{MSS: from}
	s.transmit(pipeKey{kind: pipeWired, a: int(from), b: int(to)}, s.cfg.Wired, func() {
		s.dispatchMSS(alg, to, sender, msg)
	})
}

func (s *System) broadcastFixed(alg int, from core.MSSID, msg core.Message, cat cost.Category) {
	for i := 0; i < s.cfg.M; i++ {
		if core.MSSID(i) == from {
			continue
		}
		s.sendFixed(alg, from, core.MSSID(i), msg, cat)
	}
}

func (s *System) wirelessDown(mss core.MSSID, mh core.MHID, msg core.Message, opts routeOpts) {
	s.meter.Charge(opts.cat, cost.KindWireless)
	s.transmit(pipeKey{kind: pipeDown, a: int(mss), b: int(mh)}, s.cfg.Wireless, func() {
		st := &s.mh[mh]
		if st.status == core.StatusConnected && st.at == mss {
			s.meter.WirelessRx(int(mh))
			s.deliverToMH(mh, msg, opts)
			return
		}
		if st.status == core.StatusDisconnected && st.at == mss {
			s.reclassifyWastedWireless(opts.cat)
			s.meter.Charge(cost.CatControl, cost.KindFixed)
			s.transmit(pipeKey{kind: pipeWired, a: int(mss), b: int(opts.origin)}, s.cfg.Wired, func() {
				s.notifyFailure(opts.alg, opts.origin, mh, msg, core.FailDisconnected)
			})
			return
		}
		s.reclassifyWastedWireless(opts.cat)
		s.routeToMH(mss, mh, msg, opts, true)
	})
}

// reclassifyWastedWireless mirrors internal/core: a prefix-discarded
// transmission moves to the stale account.
func (s *System) reclassifyWastedWireless(cat cost.Category) {
	if cat == cost.CatStale {
		return
	}
	s.meter.ChargeN(cat, cost.KindWireless, -1)
	s.meter.Charge(cost.CatStale, cost.KindWireless)
}

func (s *System) chargeSearch(opts routeOpts, stale bool) {
	s.searches.Add(1)
	cat := opts.cat
	if stale {
		cat = cost.CatStale
	}
	s.meter.Charge(cat, cost.KindSearch)
}

func (s *System) routeToMH(via core.MSSID, mh core.MHID, msg core.Message, opts routeOpts, stale bool) {
	st := &s.mh[mh]
	switch st.status {
	case core.StatusInTransit:
		s.waiters[mh] = append(s.waiters[mh], func() {
			s.routeToMH(via, mh, msg, opts, stale)
		})
		return
	case core.StatusDisconnected:
		holder := st.at
		s.chargeSearch(opts, stale)
		s.meter.Charge(cost.CatControl, cost.KindFixed)
		s.transmit(pipeKey{kind: pipeWired, a: int(holder), b: int(opts.origin)}, s.cfg.Wired, func() {
			s.notifyFailure(opts.alg, opts.origin, mh, msg, core.FailDisconnected)
		})
		return
	case core.StatusConnected:
		target := st.at
		if target == via {
			if s.cfg.PessimisticSearch {
				s.chargeSearch(opts, stale)
			}
			s.wirelessDown(via, mh, msg, opts)
			return
		}
		s.chargeSearch(opts, stale)
		s.transmit(pipeKey{kind: pipeWired, a: int(via), b: int(target)}, s.cfg.Wired, func() {
			cur := &s.mh[mh]
			if cur.status == core.StatusConnected && cur.at == target {
				s.wirelessDown(target, mh, msg, opts)
				return
			}
			s.routeToMH(target, mh, msg, opts, true)
		})
		return
	default:
		panic(fmt.Sprintf("rt: mh%d in unknown status %d", int(mh), int(st.status)))
	}
}

// Per-pair FIFO reorder state (executor only).
type pairState struct {
	nextSeq     uint64
	nextDeliver uint64
	buffer      map[uint64]deferredDelivery
}

type deferredDelivery struct {
	alg int
	msg core.Message
}

func (s *System) pairState(key pairKey) *pairState {
	if s.pairs == nil {
		s.pairs = make(map[pairKey]*pairState)
	}
	ps, ok := s.pairs[key]
	if !ok {
		ps = &pairState{buffer: make(map[uint64]deferredDelivery)}
		s.pairs[key] = ps
	}
	return ps
}

func (s *System) deliverToMH(mh core.MHID, msg core.Message, opts routeOpts) {
	if opts.pair == nil {
		s.dispatchMH(opts.alg, mh, msg)
		return
	}
	ps := s.pairState(*opts.pair)
	ps.buffer[opts.seq] = deferredDelivery{alg: opts.alg, msg: msg}
	for {
		d, ok := ps.buffer[ps.nextDeliver]
		if !ok {
			break
		}
		delete(ps.buffer, ps.nextDeliver)
		ps.nextDeliver++
		s.dispatchMH(d.alg, mh, d.msg)
	}
}

func (s *System) sendToLocalMH(alg int, from core.MSSID, mh core.MHID, msg core.Message, cat cost.Category) error {
	s.checkMSS(from)
	s.checkMH(mh)
	if !s.mss[from].local[mh] {
		return fmt.Errorf("rt: mh%d is not local to mss%d", int(mh), int(from))
	}
	s.wirelessDown(from, mh, msg, routeOpts{alg: alg, origin: from, cat: cat})
	return nil
}

func (s *System) sendToMH(alg int, from core.MSSID, mh core.MHID, msg core.Message, cat cost.Category) {
	s.checkMSS(from)
	s.checkMH(mh)
	s.routeToMH(from, mh, msg, routeOpts{alg: alg, origin: from, cat: cat}, false)
}

func (s *System) sendFromMH(alg int, mh core.MHID, msg core.Message, cat cost.Category) error {
	s.checkMH(mh)
	st := &s.mh[mh]
	switch st.status {
	case core.StatusDisconnected:
		return fmt.Errorf("rt: mh%d is disconnected and cannot send", int(mh))
	case core.StatusInTransit:
		s.waiters[mh] = append(s.waiters[mh], func() {
			_ = s.sendFromMH(alg, mh, msg, cat)
		})
		return nil
	case core.StatusConnected:
		at := st.at
		s.meter.Charge(cat, cost.KindWireless)
		s.meter.WirelessTx(int(mh))
		sender := core.From{MH: mh, IsMH: true}
		s.transmit(pipeKey{kind: pipeUp, a: int(mh)}, s.cfg.Wireless, func() {
			s.dispatchMSS(alg, at, sender, msg)
		})
		return nil
	default:
		panic(fmt.Sprintf("rt: mh%d in unknown status %d", int(mh), int(st.status)))
	}
}

func (s *System) sendMHToMH(alg int, from, to core.MHID, msg core.Message, cat cost.Category) error {
	s.checkMH(from)
	s.checkMH(to)
	st := &s.mh[from]
	switch st.status {
	case core.StatusDisconnected:
		return fmt.Errorf("rt: mh%d is disconnected and cannot send", int(from))
	case core.StatusInTransit:
		s.waiters[from] = append(s.waiters[from], func() {
			_ = s.sendMHToMH(alg, from, to, msg, cat)
		})
		return nil
	case core.StatusConnected:
		at := st.at
		key := pairKey{from: from, to: to}
		ps := s.pairState(key)
		seq := ps.nextSeq
		ps.nextSeq++
		s.meter.Charge(cat, cost.KindWireless)
		s.meter.WirelessTx(int(from))
		opts := routeOpts{alg: alg, origin: at, cat: cat, pair: &key, seq: seq}
		s.transmit(pipeKey{kind: pipeUp, a: int(from)}, s.cfg.Wireless, func() {
			s.routeToMH(at, to, msg, opts, false)
		})
		return nil
	default:
		panic(fmt.Sprintf("rt: mh%d in unknown status %d", int(from), int(st.status)))
	}
}

func (s *System) forwardViaMSS(origin, via core.MSSID, to core.MHID, msg core.Message, opts routeOpts) {
	s.meter.Charge(opts.cat, cost.KindFixed)
	s.transmit(pipeKey{kind: pipeWired, a: int(origin), b: int(via)}, s.cfg.Wired, func() {
		cur := &s.mh[to]
		if cur.status == core.StatusConnected && cur.at == via {
			s.wirelessDown(via, to, msg, opts)
			return
		}
		s.routeToMH(via, to, msg, opts, true)
	})
}

func (s *System) sendToMHVia(alg int, from, via core.MSSID, to core.MHID, msg core.Message, cat cost.Category) {
	s.checkMSS(from)
	s.checkMSS(via)
	s.checkMH(to)
	s.forwardViaMSS(from, via, to, msg, routeOpts{alg: alg, origin: from, cat: cat})
}

func (s *System) sendMHViaMSS(alg int, from core.MHID, via core.MSSID, to core.MHID, msg core.Message, cat cost.Category) error {
	s.checkMH(from)
	s.checkMSS(via)
	s.checkMH(to)
	st := &s.mh[from]
	switch st.status {
	case core.StatusDisconnected:
		return fmt.Errorf("rt: mh%d is disconnected and cannot send", int(from))
	case core.StatusInTransit:
		s.waiters[from] = append(s.waiters[from], func() {
			_ = s.sendMHViaMSS(alg, from, via, to, msg, cat)
		})
		return nil
	case core.StatusConnected:
		at := st.at
		s.meter.Charge(cat, cost.KindWireless)
		s.meter.WirelessTx(int(from))
		opts := routeOpts{alg: alg, origin: at, cat: cat}
		s.transmit(pipeKey{kind: pipeUp, a: int(from)}, s.cfg.Wireless, func() {
			s.forwardViaMSS(at, via, to, msg, opts)
		})
		return nil
	default:
		panic(fmt.Sprintf("rt: mh%d in unknown status %d", int(from), int(st.status)))
	}
}

func (s *System) sendToMSSOfMH(alg int, from core.MSSID, mh core.MHID, msg core.Message, cat cost.Category) {
	s.checkMSS(from)
	s.checkMH(mh)
	s.routeToMSSOfMH(from, mh, msg, routeOpts{alg: alg, origin: from, cat: cat}, false)
}

func (s *System) routeToMSSOfMH(via core.MSSID, mh core.MHID, msg core.Message, opts routeOpts, stale bool) {
	st := &s.mh[mh]
	switch st.status {
	case core.StatusInTransit:
		s.waiters[mh] = append(s.waiters[mh], func() {
			s.routeToMSSOfMH(via, mh, msg, opts, stale)
		})
		return
	case core.StatusDisconnected:
		holder := st.at
		s.chargeSearch(opts, stale)
		s.meter.Charge(cost.CatControl, cost.KindFixed)
		s.transmit(pipeKey{kind: pipeWired, a: int(holder), b: int(opts.origin)}, s.cfg.Wired, func() {
			s.notifyFailure(opts.alg, opts.origin, mh, msg, core.FailDisconnected)
		})
		return
	case core.StatusConnected:
		target := st.at
		sender := core.From{MSS: opts.origin}
		if target == via {
			if s.cfg.PessimisticSearch {
				s.chargeSearch(opts, stale)
			}
			s.exec(func() { s.dispatchMSS(opts.alg, target, sender, msg) })
			return
		}
		s.chargeSearch(opts, stale)
		s.transmit(pipeKey{kind: pipeWired, a: int(via), b: int(target)}, s.cfg.Wired, func() {
			cur := &s.mh[mh]
			if cur.status == core.StatusConnected && cur.at == target {
				s.dispatchMSS(opts.alg, target, sender, msg)
				return
			}
			s.routeToMSSOfMH(target, mh, msg, opts, true)
		})
		return
	default:
		panic(fmt.Sprintf("rt: mh%d in unknown status %d", int(mh), int(st.status)))
	}
}
