package rt

import (
	"testing"
	"time"

	"mobiledist/internal/core"
	"mobiledist/internal/cost"
	"mobiledist/internal/group"
	"mobiledist/internal/mutex/ring"
	"mobiledist/internal/proxy"
)

// Conformance tests: the same protocol scenario executed on the
// deterministic simulator and on the live goroutine runtime must charge
// exactly the same message counts — the cost model depends on what is sent,
// never on timing.

func simMeterR2(t *testing.T, m, n, k int) *cost.Meter {
	t.Helper()
	cfg := core.DefaultConfig(m, n)
	sys := core.MustNewSystem(cfg)
	r2, err := ring.NewR2(sys, ring.VariantCounter, ring.Options{Hold: 2}, 2, nil)
	if err != nil {
		t.Fatalf("NewR2: %v", err)
	}
	for i := 0; i < k; i++ {
		if err := r2.Request(core.MHID(i)); err != nil {
			t.Fatalf("Request: %v", err)
		}
	}
	sys.Schedule(200, func() {
		if err := r2.Start(); err != nil {
			t.Errorf("Start: %v", err)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return sys.Meter()
}

func liveMeterR2(t *testing.T, m, n, k int) *cost.Meter {
	t.Helper()
	sys, err := NewSystem(DefaultConfig(m, n))
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	r2, err := ring.NewR2(sys, ring.VariantCounter, ring.Options{Hold: 2}, 2, nil)
	if err != nil {
		t.Fatalf("NewR2: %v", err)
	}
	sys.Start()
	defer sys.Stop()
	sys.Do(func() {
		for i := 0; i < k; i++ {
			if err := r2.Request(core.MHID(i)); err != nil {
				t.Errorf("Request: %v", err)
			}
		}
	})
	time.Sleep(2 * time.Millisecond) // let requests reach their stations
	sys.Do(func() {
		if err := r2.Start(); err != nil {
			t.Errorf("Start: %v", err)
		}
	})
	if !sys.WaitIdle(idleTimeout) {
		t.Fatal("network did not drain")
	}
	return sys.Meter()
}

func assertSameAlgorithmCounts(t *testing.T, sim, live *cost.Meter) {
	t.Helper()
	for _, kind := range cost.Kinds() {
		s := sim.Count(cost.CatAlgorithm, kind)
		l := live.Count(cost.CatAlgorithm, kind)
		if s != l {
			t.Errorf("%v messages: sim %d vs live %d", kind, s, l)
		}
	}
}

func TestConformanceR2Traversal(t *testing.T) {
	const (
		m = 5
		n = 10
		k = 4
	)
	assertSameAlgorithmCounts(t, simMeterR2(t, m, n, k), liveMeterR2(t, m, n, k))
}

func TestConformanceLocationViewSend(t *testing.T) {
	const (
		m = 5
		n = 10
		g = 6
	)
	simRun := func() *cost.Meter {
		cfg := core.DefaultConfig(m, n)
		sys := core.MustNewSystem(cfg)
		lv, err := group.NewLocationView(sys, mhRange(g), group.LocationViewOptions{Coordinator: core.MSSID(m - 1)})
		if err != nil {
			t.Fatalf("NewLocationView: %v", err)
		}
		if err := lv.Send(core.MHID(0), "x"); err != nil {
			t.Fatalf("Send: %v", err)
		}
		if err := sys.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return sys.Meter()
	}
	liveRun := func() *cost.Meter {
		sys, err := NewSystem(DefaultConfig(m, n))
		if err != nil {
			t.Fatalf("NewSystem: %v", err)
		}
		lv, err := group.NewLocationView(sys, mhRange(g), group.LocationViewOptions{Coordinator: core.MSSID(m - 1)})
		if err != nil {
			t.Fatalf("NewLocationView: %v", err)
		}
		sys.Start()
		defer sys.Stop()
		sys.Do(func() {
			if err := lv.Send(core.MHID(0), "x"); err != nil {
				t.Errorf("Send: %v", err)
			}
		})
		if !sys.WaitIdle(idleTimeout) {
			t.Fatal("network did not drain")
		}
		return sys.Meter()
	}
	assertSameAlgorithmCounts(t, simRun(), liveRun())
}

func TestLiveProxyLocalScopeUsesSearchedInterProxyMessages(t *testing.T) {
	// The local-scope proxy routes inter-process messages with
	// SendToMSSOfMH; this exercises that path on the live runtime.
	const (
		m = 3
		n = 4
	)
	sys, err := NewSystem(DefaultConfig(m, n))
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	sm, err := proxy.NewStaticMutex(n, proxy.MutexOptions{Hold: 2})
	if err != nil {
		t.Fatalf("NewStaticMutex: %v", err)
	}
	rt, err := proxy.New(sys, sm, mhRange(n), proxy.Options{Scope: proxy.ScopeLocal})
	if err != nil {
		t.Fatalf("proxy.New: %v", err)
	}
	sys.Start()
	defer sys.Stop()
	sys.Do(func() {
		if err := rt.Input(core.MHID(0), proxy.RequestInput{}); err != nil {
			t.Errorf("Input: %v", err)
		}
	})
	// Move a peer mid-arbitration so the searched routing has to chase.
	sys.Move(core.MHID(2), core.MSSID(1))
	if !sys.WaitIdle(idleTimeout) {
		t.Fatal("network did not drain")
	}
	if sm.Grants() != 1 {
		t.Errorf("grants = %d, want 1", sm.Grants())
	}
	if sys.Searches() == 0 {
		t.Error("local scope performed no searches")
	}
}

func TestLiveBroadcastFixedAndAccessors(t *testing.T) {
	sys, err := NewSystem(DefaultConfig(4, 4))
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	var got int
	p := &bcastProbe{onMSS: func() { got++ }}
	ctx := sys.Register(p)
	if ctx.M() != 4 || ctx.N() != 4 {
		t.Error("M/N accessors wrong")
	}
	if err := ctx.Params().Validate(); err != nil {
		t.Errorf("Params: %v", err)
	}
	if ctx.RNG() == nil {
		t.Error("nil RNG")
	}
	sys.Start()
	defer sys.Stop()
	sys.Do(func() {
		ctx.BroadcastFixed(0, "all", cost.CatControl)
		if !ctx.IsLocal(1, 1) {
			t.Error("IsLocal(1,1) = false")
		}
		if ctx.IsDisconnectedHere(0, 0) {
			t.Error("fresh MH marked disconnected")
		}
		if ctx.Now() < 0 {
			t.Error("negative Now")
		}
	})
	if !sys.WaitIdle(idleTimeout) {
		t.Fatal("network did not drain")
	}
	if got != 3 {
		t.Errorf("broadcast reached %d stations, want 3", got)
	}
}

type bcastProbe struct {
	onMSS func()
}

func (p *bcastProbe) Name() string { return "bcast-probe" }

func (p *bcastProbe) HandleMSS(core.Context, core.MSSID, core.From, core.Message) {
	p.onMSS()
}
