package rt

import (
	"testing"

	"mobiledist/internal/core"
	"mobiledist/internal/cost"
	"mobiledist/internal/proxy"
)

// Runtime-specific behaviour tests. The cross-substrate conformance suite
// (cost parity with the simulator, mutual exclusion, FIFO and prefix
// delivery, mobility-state partitioning) lives in internal/conformance and
// runs this runtime side by side with internal/core.

func TestLiveProxyLocalScopeUsesSearchedInterProxyMessages(t *testing.T) {
	// The local-scope proxy routes inter-process messages with
	// SendToMSSOfMH; this exercises that path on the live runtime.
	const (
		m = 3
		n = 4
	)
	sys, err := NewSystem(DefaultConfig(m, n))
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	sm, err := proxy.NewStaticMutex(n, proxy.MutexOptions{Hold: 2})
	if err != nil {
		t.Fatalf("NewStaticMutex: %v", err)
	}
	rt, err := proxy.New(sys, sm, mhRange(n), proxy.Options{Scope: proxy.ScopeLocal})
	if err != nil {
		t.Fatalf("proxy.New: %v", err)
	}
	sys.Start()
	defer sys.Stop()
	sys.Do(func() {
		if err := rt.Input(core.MHID(0), proxy.RequestInput{}); err != nil {
			t.Errorf("Input: %v", err)
		}
	})
	// Move a peer mid-arbitration so the searched routing has to chase.
	sys.Move(core.MHID(2), core.MSSID(1))
	if !sys.WaitIdle(idleTimeout) {
		t.Fatal("network did not drain")
	}
	if sm.Grants() != 1 {
		t.Errorf("grants = %d, want 1", sm.Grants())
	}
	if sys.Searches() == 0 {
		t.Error("local scope performed no searches")
	}
}

func TestLiveBroadcastFixedAndAccessors(t *testing.T) {
	sys, err := NewSystem(DefaultConfig(4, 4))
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	var got int
	p := &bcastProbe{onMSS: func() { got++ }}
	ctx := sys.Register(p)
	if ctx.M() != 4 || ctx.N() != 4 {
		t.Error("M/N accessors wrong")
	}
	if err := ctx.Params().Validate(); err != nil {
		t.Errorf("Params: %v", err)
	}
	if ctx.RNG() == nil {
		t.Error("nil RNG")
	}
	sys.Start()
	defer sys.Stop()
	sys.Do(func() {
		ctx.BroadcastFixed(0, "all", cost.CatControl)
		if !ctx.IsLocal(1, 1) {
			t.Error("IsLocal(1,1) = false")
		}
		if ctx.IsDisconnectedHere(0, 0) {
			t.Error("fresh MH marked disconnected")
		}
		if ctx.Now() < 0 {
			t.Error("negative Now")
		}
	})
	if !sys.WaitIdle(idleTimeout) {
		t.Fatal("network did not drain")
	}
	if got != 3 {
		t.Errorf("broadcast reached %d stations, want 3", got)
	}
}

type bcastProbe struct {
	onMSS func()
}

func (p *bcastProbe) Name() string { return "bcast-probe" }

func (p *bcastProbe) HandleMSS(core.Context, core.MSSID, core.From, core.Message) {
	p.onMSS()
}
