package rt

import (
	"mobiledist/internal/core"
	"mobiledist/internal/cost"
)

// Mobility operations mirror the simulator's semantics (see
// internal/core/mobility.go); all bookkeeping runs on the executor.
// Move, Disconnect and Reconnect may be called from any goroutine after
// Start; they enqueue themselves.

// Move initiates a cell switch for mh.
func (s *System) Move(mh core.MHID, to core.MSSID) {
	s.checkMH(mh)
	s.checkMSS(to)
	s.Do(func() { s.moveLocked(mh, to) })
}

func (s *System) moveLocked(mh core.MHID, to core.MSSID) {
	st := &s.mh[mh]
	if st.status != core.StatusConnected || st.at == to {
		return
	}
	from := st.at
	s.meter.Charge(cost.CatControl, cost.KindWireless)
	s.meter.WirelessTx(int(mh))
	st.status = core.StatusInTransit
	st.at = from

	s.transmit(pipeKey{kind: pipeUp, a: int(mh)}, s.cfg.Wireless, func() {
		delete(s.mss[from].local, mh)
		s.notifyLeave(from, mh)
		s.afterTicks(s.rng.Duration(s.cfg.Travel.Min, s.cfg.Travel.Max), func() {
			s.completeJoin(mh, to, from, false)
		})
	})
}

func (s *System) completeJoin(mh core.MHID, to, prev core.MSSID, wasDisconnected bool) {
	s.meter.Charge(cost.CatControl, cost.KindWireless)
	s.meter.WirelessTx(int(mh))
	s.transmit(pipeKey{kind: pipeUp, a: int(mh)}, s.cfg.Wireless, func() {
		st := &s.mh[mh]
		s.mss[to].local[mh] = true
		st.status = core.StatusConnected
		st.at = to
		s.notifyJoin(to, mh, prev, wasDisconnected)
		s.fireWaiters(mh)
	})
}

// Disconnect performs a voluntary disconnection of mh.
func (s *System) Disconnect(mh core.MHID) {
	s.checkMH(mh)
	s.Do(func() { s.disconnectLocked(mh) })
}

func (s *System) disconnectLocked(mh core.MHID) {
	st := &s.mh[mh]
	if st.status != core.StatusConnected {
		return
	}
	at := st.at
	s.meter.Charge(cost.CatControl, cost.KindWireless)
	s.meter.WirelessTx(int(mh))
	st.status = core.StatusDisconnected
	s.transmit(pipeKey{kind: pipeUp, a: int(mh)}, s.cfg.Wireless, func() {
		delete(s.mss[at].local, mh)
		s.mss[at].disconnected[mh] = true
		s.notifyDisconnect(at, mh)
	})
}

// Reconnect re-attaches a disconnected mh at the given MSS.
func (s *System) Reconnect(mh core.MHID, at core.MSSID) {
	s.checkMH(mh)
	s.checkMSS(at)
	s.Do(func() { s.reconnectLocked(mh, at) })
}

func (s *System) reconnectLocked(mh core.MHID, at core.MSSID) {
	st := &s.mh[mh]
	if st.status != core.StatusDisconnected {
		return
	}
	prev := st.at
	// Between cells until the handoff completes: parks routed messages and
	// rejects duplicate mobility operations.
	st.status = core.StatusInTransit
	s.meter.Charge(cost.CatControl, cost.KindWireless)
	s.meter.WirelessTx(int(mh))
	s.transmit(pipeKey{kind: pipeUp, a: int(mh)}, s.cfg.Wireless, func() {
		// Handoff request/reply with the previous MSS clears the
		// "disconnected" flag.
		s.meter.Charge(cost.CatControl, cost.KindFixed)
		s.transmit(pipeKey{kind: pipeWired, a: int(at), b: int(prev)}, s.cfg.Wired, func() {
			delete(s.mss[prev].disconnected, mh)
			s.meter.Charge(cost.CatControl, cost.KindFixed)
			s.transmit(pipeKey{kind: pipeWired, a: int(prev), b: int(at)}, s.cfg.Wired, func() {
				cur := &s.mh[mh]
				s.mss[at].local[mh] = true
				cur.status = core.StatusConnected
				cur.at = at
				s.notifyJoin(at, mh, prev, true)
				s.fireWaiters(mh)
			})
		})
	})
}

// Where reports the cell and status of mh (call via Do for a consistent
// snapshot, or after WaitIdle).
func (s *System) Where(mh core.MHID) (core.MSSID, core.MHStatus) {
	s.checkMH(mh)
	st := s.mh[mh]
	return st.at, st.status
}

func (s *System) notifyJoin(at core.MSSID, mh core.MHID, prev core.MSSID, wasDisconnected bool) {
	for i, alg := range s.algs {
		if obs, ok := alg.(core.MobilityObserver); ok {
			obs.OnJoin(s.ctxs[i], at, mh, prev, wasDisconnected)
		}
	}
}

func (s *System) notifyLeave(at core.MSSID, mh core.MHID) {
	for i, alg := range s.algs {
		if obs, ok := alg.(core.MobilityObserver); ok {
			obs.OnLeave(s.ctxs[i], at, mh)
		}
	}
}

func (s *System) notifyDisconnect(at core.MSSID, mh core.MHID) {
	for i, alg := range s.algs {
		if obs, ok := alg.(core.MobilityObserver); ok {
			obs.OnDisconnect(s.ctxs[i], at, mh)
		}
	}
}

func (s *System) localMHs(mss core.MSSID) []core.MHID {
	s.checkMSS(mss)
	ids := make([]core.MHID, 0, len(s.mss[mss].local))
	for id := range s.mss[mss].local {
		ids = append(ids, id)
	}
	sortMHIDs(ids)
	return ids
}

func sortMHIDs(ids []core.MHID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
