package rt

import "mobiledist/internal/core"

// Mobility operations are the engine's (see internal/engine/mobility.go),
// run on the executor. Move, Disconnect and Reconnect may be called from any
// goroutine after Start; they enqueue themselves and — matching this
// runtime's historical fire-and-forget surface — treat operations invalid in
// the MH's current status as no-ops.

// Move initiates a cell switch for mh.
func (s *System) Move(mh core.MHID, to core.MSSID) {
	s.checkMH(mh)
	s.checkMSS(to)
	s.Do(func() { _ = s.eng.Move(mh, to) })
}

// Disconnect performs a voluntary disconnection of mh.
func (s *System) Disconnect(mh core.MHID) {
	s.checkMH(mh)
	s.Do(func() { _ = s.eng.Disconnect(mh) })
}

// Reconnect re-attaches a disconnected mh at the given MSS. The MH supplies
// its previous location (knowsPrev), as the paper's common case.
func (s *System) Reconnect(mh core.MHID, at core.MSSID) {
	s.checkMH(mh)
	s.checkMSS(at)
	s.Do(func() { _ = s.eng.Reconnect(mh, at, true) })
}

// Where reports the cell and status of mh (call via Do for a consistent
// snapshot, or after WaitIdle).
func (s *System) Where(mh core.MHID) (core.MSSID, core.MHStatus) {
	return s.eng.Where(mh)
}

// SetDoze marks mh as dozing (or not); deliveries to a dozing MH still
// succeed but are counted in Stats. Call before Start or from inside Do.
func (s *System) SetDoze(mh core.MHID, dozing bool) { s.eng.SetDoze(mh, dozing) }

// IsDozing reports whether mh is in doze mode (same calling rules as Where).
func (s *System) IsDozing(mh core.MHID) bool { return s.eng.IsDozing(mh) }
