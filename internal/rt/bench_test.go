package rt

import (
	"testing"
	"time"

	"mobiledist/internal/core"
	"mobiledist/internal/cost"
	"mobiledist/internal/sim"
)

// benchAlg is a no-op algorithm so benchmarks measure the runtime, not
// handler work.
type benchAlg struct{}

func (benchAlg) Name() string { return "bench" }
func (benchAlg) HandleMSS(ctx core.Context, at core.MSSID, from core.From, msg core.Message) {
}
func (benchAlg) HandleMH(ctx core.Context, at core.MHID, msg core.Message) {}
func (benchAlg) OnDeliveryFailure(ctx core.Context, at core.MSSID, mh core.MHID, msg core.Message, reason core.FailReason) {
}

// BenchmarkRTRouteMHToMH measures the full MH-to-MH message path on the live
// runtime — wireless uplink, search, wired forward, wireless downlink,
// per-pair FIFO reorder — across pipe goroutines and the executor. It is the
// live counterpart of core's BenchmarkRouteMHToMH, on the same (m, n)
// population with a tick small enough that latency sleeps don't dominate.
func BenchmarkRTRouteMHToMH(b *testing.B) {
	const (
		m     = 8
		n     = 64
		batch = 256
	)
	cfg := DefaultConfig(m, n)
	cfg.Tick = time.Nanosecond
	sys, err := NewSystem(cfg)
	if err != nil {
		b.Fatal(err)
	}
	ctx := sys.Register(benchAlg{})
	rng := sim.NewRNG(7)
	sys.Start()
	defer sys.Stop()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += batch {
		sys.Do(func() {
			for j := 0; j < batch; j++ {
				from := core.MHID(rng.Intn(n))
				to := core.MHID(rng.Intn(n))
				if err := ctx.SendMHToMH(from, to, j, cost.CatAlgorithm); err != nil {
					b.Error(err)
					return
				}
			}
		})
		if !sys.WaitIdle(idleTimeout) {
			b.Fatal("network did not drain")
		}
	}
}

// TestSteadyStateMembershipAllocFree proves the engine-side membership reads
// on the routing hot path — cell membership tests and full LocalMHs scans —
// allocate nothing. Before the engine port, the live runtime kept membership
// in a map and LocalMHs allocated and insertion-sorted a fresh slice per
// call; the engine's sorted-slice state makes both a plain read.
func TestSteadyStateMembershipAllocFree(t *testing.T) {
	sys, err := NewSystem(DefaultConfig(4, 32))
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	// Pre-Start the build phase is single-threaded, so contexts are safe to
	// use directly.
	ctx := sys.Register(benchAlg{})
	allocs := testing.AllocsPerRun(200, func() {
		for mss := 0; mss < 4; mss++ {
			ids := ctx.LocalMHs(core.MSSID(mss))
			for _, id := range ids {
				if !ctx.IsLocal(core.MSSID(mss), id) {
					t.Fatal("member not local")
				}
			}
		}
	})
	if allocs != 0 {
		t.Errorf("membership reads allocated %v times per run, want 0", allocs)
	}
}
