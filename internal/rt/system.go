// Package rt is the live runtime of the two-tier model: it binds the shared
// network engine (internal/engine) — which owns the MSS/MH registries,
// routing with search and chase, the mobility protocol, and cost accounting
// — to real goroutines and channels with wall-clock latencies, the
// operational style the paper's model describes.
//
// Architecture:
//
//   - every FIFO channel of the model (each ordered MSS pair, each
//     MSS→MH downlink, each MH uplink) is a goroutine reading from a Go
//     channel, sleeping the link latency, and handing the message to the
//     executor — preserving per-channel FIFO exactly as the model requires;
//   - a single executor goroutine runs all algorithm handlers, engine
//     bookkeeping, and cost accounting, so algorithm state needs no locks
//     and behaves exactly as under the simulator;
//   - quiescence is tracked by an in-flight operation counter, letting
//     tests wait for the network to drain.
//
// Because internal/core binds the same engine to the deterministic kernel,
// the two substrates cannot drift: every protocol rule lives in exactly one
// place.
//
// Lifecycle: build (NewSystem, Register, algorithm constructors — single
// threaded), Start, then interact via Do, then WaitIdle / Stop.
package rt

import (
	"fmt"
	"sync"
	"time"

	"mobiledist/internal/core"
	"mobiledist/internal/cost"
	"mobiledist/internal/engine"
	"mobiledist/internal/execq"
	"mobiledist/internal/faults"
	"mobiledist/internal/obs"
	"mobiledist/internal/sim"
)

// Config describes a live two-tier network.
type Config struct {
	// M and N size the network.
	M, N int
	// Params are the message cost constants.
	Params cost.Params
	// Seed initialises the latency RNG.
	Seed uint64
	// Tick converts the model's virtual-time units to wall time (timers in
	// algorithm code use sim.Time; one unit sleeps one Tick). The default
	// is 50µs.
	Tick time.Duration
	// Wired and Wireless are latency ranges in ticks.
	Wired, Wireless core.Delay
	// Travel is the between-cells delay range in ticks.
	Travel core.Delay
	// SearchMode selects the search service; the zero value means
	// core.SearchAbstract.
	SearchMode core.SearchMode
	// PessimisticSearch mirrors core.Config.PessimisticSearch.
	PessimisticSearch bool
	// Faults, when non-nil and non-empty, wraps the live substrate in the
	// deterministic fault injector (internal/faults) and implies
	// ReliableWireless. Fault windows are in ticks of virtual time.
	Faults *core.FaultPlan
	// ReliableWireless enables the engine's ARQ sublayer on the wireless
	// channels even without a fault plan.
	ReliableWireless bool
	// ARQTimeout is the sublayer's initial retransmission timeout in ticks
	// (0 derives a default from the wireless latency range).
	ARQTimeout sim.Time
	// WaiterLimit caps the per-MH in-transit waiter queue (see
	// engine.Config.WaiterLimit); 0 means unlimited.
	WaiterLimit int
	// Placement maps each MH to its initial cell (nil: round-robin).
	Placement func(core.MHID) core.MSSID
	// Trace, when non-nil, receives one line per model-level event. It is
	// called on the executor goroutine.
	Trace func(t sim.Time, event, detail string)
	// Obs, when non-nil, records typed observability events and metrics
	// (internal/obs). Recording happens on the executor and pipe
	// goroutines (Tracer locks internally); scrapers — MetricsHandler,
	// expvar — snapshot concurrently from other goroutines.
	Obs *obs.Tracer
}

// DefaultConfig returns a live configuration for m stations and n hosts.
func DefaultConfig(m, n int) Config {
	return Config{
		M:                 m,
		N:                 n,
		Params:            cost.DefaultParams(),
		Seed:              1,
		Tick:              50 * time.Microsecond,
		Wired:             core.Delay{Min: 1, Max: 4},
		Wireless:          core.Delay{Min: 1, Max: 2},
		Travel:            core.Delay{Min: 2, Max: 10},
		SearchMode:        core.SearchAbstract,
		PessimisticSearch: true,
	}
}

// engineConfig projects the runtime configuration onto the shared engine's
// substrate-independent parameters.
func (c Config) engineConfig() engine.Config {
	mode := c.SearchMode
	if mode == 0 {
		mode = core.SearchAbstract
	}
	reliable := c.ReliableWireless
	if c.Faults != nil && !c.Faults.Empty() {
		reliable = true
	}
	return engine.Config{
		M:                 c.M,
		N:                 c.N,
		Params:            c.Params,
		Wired:             c.Wired,
		Wireless:          c.Wireless,
		Travel:            c.Travel,
		SearchMode:        mode,
		PessimisticSearch: c.PessimisticSearch,
		ReliableWireless:  reliable,
		ARQTimeout:        c.ARQTimeout,
		WaiterLimit:       c.WaiterLimit,
		Placement:         c.Placement,
		Trace:             c.Trace,
		Obs:               c.Obs,
	}
}

// System is the live runtime driver: the shared engine bound to the
// goroutine substrate. It implements core.Registrar, and the contexts it
// hands out implement core.Context, so any algorithm in this repository runs
// on it unmodified.
type System struct {
	cfg Config
	eng *engine.Engine
	rng *sim.RNG // executor-only
	inj *faults.Injector

	tasks    *execq.Queue
	stopped  chan struct{}
	execDone chan struct{}
	started  bool

	// sink interprets delivery records; bound by engine.New (or by the
	// fault injector wrapping the engine) via BindRecSink. Records are
	// stepped and freed only on the executor goroutine — the engine's
	// record pool is not thread-safe, which is why stopped paths drop
	// records instead of freeing them (shutdown abandons the pool anyway).
	sink engine.RecSink

	pipesMu sync.Mutex
	pipes   map[int]chan delivery
	wg      sync.WaitGroup

	epoch time.Time
}

var _ core.Registrar = (*System)(nil)

// liveSubstrate adapts the System to the engine's Substrate interface. Every
// method is invoked on the executor goroutine (or during the single-threaded
// build phase), matching the engine's execution-context contract.
type liveSubstrate struct {
	s *System
}

var _ engine.Substrate = (*liveSubstrate)(nil)

func (l *liveSubstrate) Now() sim.Time { return l.s.now() }

func (l *liveSubstrate) Enqueue(fn func()) { l.s.exec(fn) }

func (l *liveSubstrate) After(d sim.Time, fn func()) { l.s.afterTicks(d, fn) }

// DaemonAfter implements engine.DaemonScheduler: a wall timer that runs fn
// on the executor without holding the in-flight op counter open while
// armed, so standing maintenance timers (DTN gossip) cannot wedge
// WaitIdle. A timer firing after Stop is safely ignored by exec.
func (l *liveSubstrate) DaemonAfter(d sim.Time, fn func()) {
	s := l.s
	time.AfterFunc(time.Duration(d)*s.cfg.Tick, func() { s.exec(fn) })
}

func (l *liveSubstrate) BindRecSink(sink engine.RecSink) { l.s.sink = sink }

// TransmitRec hands the delivery record to the channel's pipe goroutine,
// which sleeps the latency and forwards to the executor — FIFO by
// construction. The send races Stop: once the pipe's forward goroutine has
// exited, a full buffer would block the executor forever, so a stopped
// runtime resolves the op and drops the record instead (shutdown discards
// in-flight traffic by design; the record is abandoned, not freed, because
// the pool is executor-only).
func (l *liveSubstrate) TransmitRec(ch int, latency sim.Time, rec *engine.DeliveryRec) {
	s := l.s
	s.opStart()
	select {
	case s.pipe(ch) <- delivery{latency: time.Duration(latency) * s.cfg.Tick, rec: rec}:
	case <-s.stopped:
		s.opDone()
	}
}

// AfterRec schedules a record the way After schedules a closure: a wall
// timer that hands the record to the executor for interpretation.
func (l *liveSubstrate) AfterRec(d sim.Time, rec *engine.DeliveryRec) {
	s := l.s
	s.opStart()
	time.AfterFunc(time.Duration(d)*s.cfg.Tick, func() {
		s.exec(func() {
			defer s.opDone()
			s.sink.StepRec(rec)
		})
	})
}

// EnqueueRec runs the record on the executor without delay.
func (l *liveSubstrate) EnqueueRec(rec *engine.DeliveryRec) {
	s := l.s
	s.exec(func() { s.sink.StepRec(rec) })
}

func (l *liveSubstrate) RNG() *sim.RNG { return l.s.rng }

// NewSystem builds a live system from cfg. A non-empty cfg.Faults plan
// interposes the deterministic fault injector between the engine and the
// goroutine substrate.
func NewSystem(cfg Config) (*System, error) {
	if cfg.Tick <= 0 {
		cfg.Tick = 50 * time.Microsecond
	}
	s := &System{
		cfg:      cfg,
		rng:      sim.NewRNG(cfg.Seed),
		tasks:    execq.New(),
		stopped:  make(chan struct{}),
		execDone: make(chan struct{}),
		pipes:    make(map[int]chan delivery),
	}
	var sub engine.Substrate = &liveSubstrate{s: s}
	if cfg.Faults != nil && !cfg.Faults.Empty() {
		inj, err := faults.New(*cfg.Faults, cfg.M, cfg.N, sub)
		if err != nil {
			return nil, err
		}
		inj.SetTracer(cfg.Obs)
		s.inj = inj
		sub = inj
	}
	// The observer wraps outermost so it records what the engine asked the
	// transport to do, before the fault injector disturbs it.
	cfg.Obs.SetTopology(cfg.M, cfg.N)
	sub = engine.ObserveSubstrate(sub, cfg.Obs)
	eng, err := engine.New(cfg.engineConfig(), sub)
	if err != nil {
		return nil, err
	}
	s.eng = eng
	return s, nil
}

// Register implements core.Registrar. It must be called before Start.
func (s *System) Register(alg core.Algorithm) core.Context {
	if s.started {
		panic("rt: Register after Start")
	}
	return s.eng.Register(alg)
}

// Engine exposes the shared network engine (for conformance tests and
// cross-substrate tooling). Access it only via Do after Start.
func (s *System) Engine() *engine.Engine { return s.eng }

// Injector exposes the fault injector, or nil when the system runs
// fault-free. After Start, access it only via Do.
func (s *System) Injector() *faults.Injector { return s.inj }

// Meter returns the cost meter. Read it only after WaitIdle or Stop.
func (s *System) Meter() *cost.Meter { return s.eng.Meter() }

// Config returns the runtime configuration.
func (s *System) Config() Config { return s.cfg }

// Searches reports searches performed so far. After Start it synchronises
// with the executor, so it must not be called from inside Do or a handler.
func (s *System) Searches() int64 {
	return s.Stats().Searches
}

// Stats returns a copy of the model-level counters. After Start it
// synchronises with the executor, so it must not be called from inside Do or
// a handler (read s.Engine().Stats() there instead).
func (s *System) Stats() engine.Stats {
	if !s.started {
		return s.eng.Stats()
	}
	var st engine.Stats
	s.Do(func() { st = s.eng.Stats() })
	return st
}

// Start launches the executor. Algorithms must already be registered.
func (s *System) Start() {
	if s.started {
		panic("rt: Start called twice")
	}
	s.started = true
	s.epoch = time.Now()
	go func() {
		defer close(s.execDone)
		for {
			fn, ok := s.tasks.Pop()
			if !ok {
				return
			}
			fn()
			s.tasks.Done()
		}
	}()
}

// Do runs fn on the executor and waits for it — the only safe way to call
// algorithm APIs (Request, Send, …) from outside handlers after Start.
func (s *System) Do(fn func()) {
	if !s.started {
		panic("rt: Do before Start")
	}
	done := make(chan struct{})
	if !s.tasks.Push(func() {
		defer close(done)
		fn()
	}) {
		panic("rt: Do after Stop")
	}
	<-done
}

// WaitIdle blocks until the network drains — no task queued, no task
// running, no timer or transmission in flight — or the timeout elapses,
// reporting whether it drained. Idle detection is condition-signaled by
// the task queue's exact quiescence predicate, not a poll: the waiter
// parks on a channel the executor closes on the transition to idle, so
// long fault windows cost no CPU and wake-up is immediate.
func (s *System) WaitIdle(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		ch, idle := s.tasks.IdleWait()
		if idle {
			return true
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return false
		}
		t := time.NewTimer(remain)
		select {
		case <-ch:
			t.Stop()
			// Loop to re-evaluate: the idle instant is genuine (the
			// predicate held under the queue lock), but re-checking is free
			// and guards against new external work between wake and return.
		case <-t.C:
			return false
		}
	}
}

// Stop shuts the runtime down and waits for every goroutine to exit.
func (s *System) Stop() {
	if !s.started {
		return
	}
	close(s.stopped)
	s.tasks.Close()
	<-s.execDone
	s.wg.Wait()
}

// now returns virtual time (wall time since Start in ticks).
func (s *System) now() sim.Time {
	if s.epoch.IsZero() {
		return 0
	}
	return sim.Time(time.Since(s.epoch) / s.cfg.Tick)
}

// exec enqueues fn on the executor (fire and forget).
func (s *System) exec(fn func()) {
	s.tasks.Push(fn)
}

// opStart/opDone bracket an asynchronous operation for idle tracking.
func (s *System) opStart()         { s.tasks.OpStart() }
func (s *System) opDone()          { s.tasks.OpDone() }
func (s *System) execOp(fn func()) { s.exec(func() { defer s.opDone(); fn() }) }
func (s *System) afterTicks(d sim.Time, fn func()) {
	s.opStart()
	time.AfterFunc(time.Duration(d)*s.cfg.Tick, func() {
		s.execOp(fn)
	})
}

func (s *System) checkMSS(id core.MSSID) {
	if int(id) < 0 || int(id) >= s.cfg.M {
		panic(fmt.Sprintf("rt: invalid mss id %d (M=%d)", int(id), s.cfg.M))
	}
}

func (s *System) checkMH(id core.MHID) {
	if int(id) < 0 || int(id) >= s.cfg.N {
		panic(fmt.Sprintf("rt: invalid mh id %d (N=%d)", int(id), s.cfg.N))
	}
}
