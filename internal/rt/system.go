// Package rt is the live runtime of the two-tier model: it hosts the same
// algorithm state machines as the deterministic simulator in internal/core,
// but transports messages over real goroutines and channels with wall-clock
// latencies — the operational style the paper's model describes.
//
// Architecture:
//
//   - every FIFO channel of the model (each ordered MSS pair, each
//     MSS→MH downlink, each MH uplink) is a goroutine reading from a Go
//     channel, sleeping the link latency, and handing the message to the
//     executor — preserving per-channel FIFO exactly as the model requires;
//   - a single executor goroutine runs all algorithm handlers, mobility
//     bookkeeping, and cost accounting, so algorithm state needs no locks
//     and behaves exactly as under the simulator;
//   - quiescence is tracked by an in-flight operation counter, letting
//     tests wait for the network to drain.
//
// Lifecycle: build (NewSystem, Register, algorithm constructors — single
// threaded), Start, then interact via Do, then WaitIdle / Stop.
package rt

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mobiledist/internal/core"
	"mobiledist/internal/cost"
	"mobiledist/internal/sim"
)

// Config describes a live two-tier network.
type Config struct {
	// M and N size the network.
	M, N int
	// Params are the message cost constants.
	Params cost.Params
	// Seed initialises the latency RNG.
	Seed uint64
	// Tick converts the model's virtual-time units to wall time (timers in
	// algorithm code use sim.Time; one unit sleeps one Tick). The default
	// is 50µs.
	Tick time.Duration
	// Wired and Wireless are latency ranges in ticks.
	Wired, Wireless core.Delay
	// Travel is the between-cells delay range in ticks.
	Travel core.Delay
	// PessimisticSearch mirrors core.Config.PessimisticSearch.
	PessimisticSearch bool
	// Placement maps each MH to its initial cell (nil: round-robin).
	Placement func(core.MHID) core.MSSID
}

// DefaultConfig returns a live configuration for m stations and n hosts.
func DefaultConfig(m, n int) Config {
	return Config{
		M:                 m,
		N:                 n,
		Params:            cost.DefaultParams(),
		Seed:              1,
		Tick:              50 * time.Microsecond,
		Wired:             core.Delay{Min: 1, Max: 4},
		Wireless:          core.Delay{Min: 1, Max: 2},
		Travel:            core.Delay{Min: 2, Max: 10},
		PessimisticSearch: true,
	}
}

type mhState struct {
	status core.MHStatus
	at     core.MSSID
}

type mssState struct {
	local        map[core.MHID]bool
	disconnected map[core.MHID]bool
}

// System is the live runtime driver. It implements core.Registrar, and the
// contexts it hands out implement core.Context, so any algorithm in this
// repository runs on it unmodified.
type System struct {
	cfg   Config
	meter *cost.Meter
	rng   *sim.RNG // executor-only

	algs []core.Algorithm
	ctxs []core.Context

	mss []mssState
	mh  []mhState

	waiters map[core.MHID][]func()
	pairs   map[pairKey]*pairState

	tasks    *taskQueue
	stopped  chan struct{}
	execDone chan struct{}
	started  bool

	inflight atomic.Int64
	searches atomic.Int64

	pipesMu sync.Mutex
	pipes   map[pipeKey]chan delivery
	wg      sync.WaitGroup

	epoch time.Time
}

var _ core.Registrar = (*System)(nil)

// NewSystem builds a live system from cfg.
func NewSystem(cfg Config) (*System, error) {
	if cfg.M < 1 || cfg.N < 1 {
		return nil, fmt.Errorf("rt: need M >= 1 and N >= 1, got M=%d N=%d", cfg.M, cfg.N)
	}
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	for name, d := range map[string]core.Delay{"wired": cfg.Wired, "wireless": cfg.Wireless, "travel": cfg.Travel} {
		if d.Min < 0 || d.Max < d.Min {
			return nil, fmt.Errorf("rt: invalid %s delay range [%d,%d]", name, d.Min, d.Max)
		}
	}
	if cfg.Tick <= 0 {
		cfg.Tick = 50 * time.Microsecond
	}
	s := &System{
		cfg:      cfg,
		meter:    cost.NewMeter(),
		rng:      sim.NewRNG(cfg.Seed),
		mss:      make([]mssState, cfg.M),
		mh:       make([]mhState, cfg.N),
		waiters:  make(map[core.MHID][]func()),
		tasks:    newTaskQueue(),
		stopped:  make(chan struct{}),
		execDone: make(chan struct{}),
		pipes:    make(map[pipeKey]chan delivery),
	}
	for i := range s.mss {
		s.mss[i] = mssState{
			local:        make(map[core.MHID]bool),
			disconnected: make(map[core.MHID]bool),
		}
	}
	place := cfg.Placement
	if place == nil {
		place = func(mh core.MHID) core.MSSID { return core.MSSID(int(mh) % cfg.M) }
	}
	for i := range s.mh {
		at := place(core.MHID(i))
		if int(at) < 0 || int(at) >= cfg.M {
			return nil, fmt.Errorf("rt: placement of mh%d at invalid mss%d", i, int(at))
		}
		s.mh[i] = mhState{status: core.StatusConnected, at: at}
		s.mss[at].local[core.MHID(i)] = true
	}
	return s, nil
}

// Register implements core.Registrar. It must be called before Start.
func (s *System) Register(alg core.Algorithm) core.Context {
	if s.started {
		panic("rt: Register after Start")
	}
	if alg == nil {
		panic("rt: register nil algorithm")
	}
	idx := len(s.algs)
	s.algs = append(s.algs, alg)
	ctx := &rtContext{s: s, alg: idx}
	s.ctxs = append(s.ctxs, ctx)
	return ctx
}

// Meter returns the cost meter. Read it only after WaitIdle or Stop.
func (s *System) Meter() *cost.Meter { return s.meter }

// Config returns the runtime configuration.
func (s *System) Config() Config { return s.cfg }

// Searches reports searches performed so far.
func (s *System) Searches() int64 { return s.searches.Load() }

// Start launches the executor. Algorithms must already be registered.
func (s *System) Start() {
	if s.started {
		panic("rt: Start called twice")
	}
	s.started = true
	s.epoch = time.Now()
	go func() {
		defer close(s.execDone)
		for {
			fn, ok := s.tasks.pop()
			if !ok {
				return
			}
			fn()
		}
	}()
}

// Do runs fn on the executor and waits for it — the only safe way to call
// algorithm APIs (Request, Send, …) from outside handlers after Start.
func (s *System) Do(fn func()) {
	if !s.started {
		panic("rt: Do before Start")
	}
	done := make(chan struct{})
	if !s.tasks.push(func() {
		defer close(done)
		fn()
	}) {
		panic("rt: Do after Stop")
	}
	<-done
}

// WaitIdle blocks until no operations are in flight and the task queue has
// stayed empty for a settle window, or the timeout elapses. It reports
// whether the network drained.
func (s *System) WaitIdle(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	settle := 0
	for time.Now().Before(deadline) {
		if s.inflight.Load() == 0 && s.tasks.len() == 0 {
			settle++
			if settle >= 5 {
				return true
			}
		} else {
			settle = 0
		}
		time.Sleep(2 * s.cfg.Tick)
	}
	return false
}

// Stop shuts the runtime down and waits for every goroutine to exit.
func (s *System) Stop() {
	if !s.started {
		return
	}
	close(s.stopped)
	s.tasks.close()
	<-s.execDone
	s.wg.Wait()
}

// Now returns virtual time (wall time since Start in ticks).
func (s *System) now() sim.Time {
	if s.epoch.IsZero() {
		return 0
	}
	return sim.Time(time.Since(s.epoch) / s.cfg.Tick)
}

// exec enqueues fn on the executor (fire and forget).
func (s *System) exec(fn func()) {
	s.tasks.push(fn)
}

// opStart/opDone bracket an asynchronous operation for idle tracking.
func (s *System) opStart()         { s.inflight.Add(1) }
func (s *System) opDone()          { s.inflight.Add(-1) }
func (s *System) execOp(fn func()) { s.exec(func() { defer s.opDone(); fn() }) }
func (s *System) afterTicks(d sim.Time, fn func()) {
	s.opStart()
	timer := time.AfterFunc(time.Duration(d)*s.cfg.Tick, func() {
		s.execOp(fn)
	})
	_ = timer
}

func (s *System) checkMSS(id core.MSSID) {
	if int(id) < 0 || int(id) >= s.cfg.M {
		panic(fmt.Sprintf("rt: invalid mss id %d (M=%d)", int(id), s.cfg.M))
	}
}

func (s *System) checkMH(id core.MHID) {
	if int(id) < 0 || int(id) >= s.cfg.N {
		panic(fmt.Sprintf("rt: invalid mh id %d (N=%d)", int(id), s.cfg.N))
	}
}

func (s *System) dispatchMSS(alg int, at core.MSSID, from core.From, msg core.Message) {
	h, ok := s.algs[alg].(core.MSSHandler)
	if !ok {
		panic(fmt.Sprintf("rt: algorithm %q received MSS message without MSSHandler", s.algs[alg].Name()))
	}
	h.HandleMSS(s.ctxs[alg], at, from, msg)
}

func (s *System) dispatchMH(alg int, at core.MHID, msg core.Message) {
	h, ok := s.algs[alg].(core.MHHandler)
	if !ok {
		panic(fmt.Sprintf("rt: algorithm %q received MH message without MHHandler", s.algs[alg].Name()))
	}
	h.HandleMH(s.ctxs[alg], at, msg)
}

func (s *System) notifyFailure(alg int, at core.MSSID, mh core.MHID, msg core.Message, reason core.FailReason) {
	h, ok := s.algs[alg].(core.DeliveryFailureHandler)
	if !ok {
		return
	}
	h.OnDeliveryFailure(s.ctxs[alg], at, mh, msg, reason)
}

func (s *System) fireWaiters(mh core.MHID) {
	pending := s.waiters[mh]
	if len(pending) == 0 {
		return
	}
	delete(s.waiters, mh)
	for _, fn := range pending {
		s.exec(fn)
	}
}
