package workload

import (
	"reflect"
	"testing"

	"mobiledist/internal/core"
	"mobiledist/internal/sim"
)

func TestAbsenceCrossesCellsAndReturns(t *testing.T) {
	sys := newSys(t, 5, 2, 21)
	ab, err := NewAbsence(sys, AbsenceConfig{
		MH:        0,
		PreMoves:  3,
		MoveEvery: FixedSpan(40),
		Depart:    200,
		Duration:  500,
		Return:    4,
		KnowsPrev: true,
	})
	if err != nil {
		t.Fatalf("NewAbsence: %v", err)
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// mh0 starts at cell 0 and ring-walks three cells before departing.
	if want := []core.MSSID{0, 1, 2, 3}; !reflect.DeepEqual(ab.Visited(), want) {
		t.Errorf("visited = %v, want %v", ab.Visited(), want)
	}
	at, when, ok := ab.Returned()
	if !ok || at != 4 {
		t.Errorf("returned at mss%d ok=%v, want mss4", int(at), ok)
	}
	if when < 700 {
		t.Errorf("returned at t=%d, want >= depart+duration = 700", when)
	}
	if got, status := sys.Where(0); status != core.StatusConnected || got != 4 {
		t.Errorf("mh0 ends at mss%d (%v), want mss4 connected", int(got), status)
	}
}

func TestAbsenceReturnVisitedStaysInHistory(t *testing.T) {
	sys := newSys(t, 6, 1, 33)
	ab, err := NewAbsence(sys, AbsenceConfig{
		MH:            0,
		PreMoves:      2,
		MoveEvery:     FixedSpan(30),
		Depart:        150,
		Duration:      300,
		ReturnVisited: true,
	})
	if err != nil {
		t.Fatalf("NewAbsence: %v", err)
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	at, _, ok := ab.Returned()
	if !ok {
		t.Fatal("host never returned")
	}
	found := false
	for _, v := range ab.Visited() {
		if v == at {
			found = true
		}
	}
	if !found {
		t.Errorf("returned at mss%d, outside visit history %v", int(at), ab.Visited())
	}
}

func TestAbsenceFamilySweepsDurations(t *testing.T) {
	base := AbsenceConfig{MH: 1, PreMoves: 2, MoveEvery: FixedSpan(10), Depart: 100}
	durations := []sim.Time{600, 1200, 2400}
	family := AbsenceFamily(base, durations)
	if len(family) != 3 {
		t.Fatalf("family size = %d, want 3", len(family))
	}
	for i, cfg := range family {
		if cfg.Duration != durations[i] {
			t.Errorf("family[%d].Duration = %d, want %d", i, cfg.Duration, durations[i])
		}
		cfg.Duration = base.Duration
		if !reflect.DeepEqual(cfg, base) {
			t.Errorf("family[%d] varies more than Duration: %+v", i, cfg)
		}
	}
}

func TestAbsenceValidation(t *testing.T) {
	sys := newSys(t, 3, 2, 1)
	if _, err := NewAbsence(sys, AbsenceConfig{MH: 0, Duration: 0}); err == nil {
		t.Error("zero Duration accepted")
	}
	if _, err := NewAbsence(sys, AbsenceConfig{MH: 0, Duration: 10, PreMoves: -1}); err == nil {
		t.Error("negative PreMoves accepted")
	}
	if _, err := NewAbsence(sys, AbsenceConfig{MH: 0, Duration: 10, Start: 50, Depart: 10}); err == nil {
		t.Error("Depart before Start accepted")
	}
}
