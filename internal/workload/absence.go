package workload

// Absence scenarios: the long-disconnection episode family the DTN layer
// (internal/dtn) is built for. One episode walks a host across a few
// cells — building the visit history that spray-and-wait exploits —
// then takes it offline for a configurable duration and brings it back,
// either at a fixed cell or at one of the cells it visited. The
// D-series experiments sweep a family of these episodes over disconnect
// durations to compare routing strategies against the paper's
// park-at-MSS baseline.

import (
	"fmt"

	"mobiledist/internal/core"
	"mobiledist/internal/sim"
)

// AbsenceConfig parameterises one long-disconnection episode.
type AbsenceConfig struct {
	// MH is the host that goes away.
	MH core.MHID
	// PreMoves is how many ring-adjacent cells the host crosses before
	// departing. Each move builds one entry of recent-visit history.
	PreMoves int
	// MoveEvery spaces the pre-moves.
	MoveEvery Span
	// Start delays the first pre-move.
	Start sim.Time
	// Depart is when the host disconnects. It must leave room for the
	// pre-moves to finish; a host still in transit retries shortly after.
	Depart sim.Time
	// Duration is how long the host stays disconnected.
	Duration sim.Time
	// Return is the reconnection cell when ReturnVisited is false.
	Return core.MSSID
	// ReturnVisited reconnects at a seeded-random previously visited
	// cell instead of Return — the regime where visit-history routing
	// should win.
	ReturnVisited bool
	// KnowsPrev is passed through to Reconnect (Section 2 of the paper).
	KnowsPrev bool
}

func (c AbsenceConfig) validate() error {
	if c.PreMoves < 0 {
		return fmt.Errorf("workload: negative PreMoves")
	}
	if err := c.MoveEvery.validate("move-every"); err != nil {
		return err
	}
	if c.Duration <= 0 {
		return fmt.Errorf("workload: absence needs Duration > 0, got %d", c.Duration)
	}
	if c.Depart < c.Start {
		return fmt.Errorf("workload: Depart %d before Start %d", c.Depart, c.Start)
	}
	return nil
}

// AbsenceFamily derives one episode per disconnect duration, holding
// everything else fixed. This is the sweep the D-series tables run.
func AbsenceFamily(base AbsenceConfig, durations []sim.Time) []AbsenceConfig {
	out := make([]AbsenceConfig, len(durations))
	for i, d := range durations {
		cfg := base
		cfg.Duration = d
		out[i] = cfg
	}
	return out
}

// Absence drives a single long-disconnection episode.
type Absence struct {
	sys        *core.System
	cfg        AbsenceConfig
	rng        *sim.RNG
	visited    []core.MSSID
	departed   bool
	returned   bool
	returnedAt core.MSSID
	returnedOn sim.Time
}

// NewAbsence installs an absence episode on sys. Call before Run.
func NewAbsence(sys *core.System, cfg AbsenceConfig) (*Absence, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	w := &Absence{sys: sys, cfg: cfg, rng: sys.Kernel().RNG().Fork()}
	at, status := sys.Where(cfg.MH)
	if status != core.StatusConnected {
		return nil, fmt.Errorf("workload: mh%d not connected at setup", int(cfg.MH))
	}
	w.visited = append(w.visited, at)
	w.scheduleMove(cfg.PreMoves, cfg.Start+cfg.MoveEvery.draw(w.rng))
	w.scheduleDepart(cfg.Depart)
	return w, nil
}

// Visited reports the cells the host has occupied, in order, starting
// with its setup cell.
func (w *Absence) Visited() []core.MSSID { return w.visited }

// Returned reports whether the host has reconnected, and where and when
// it did.
func (w *Absence) Returned() (core.MSSID, sim.Time, bool) {
	return w.returnedAt, w.returnedOn, w.returned
}

func (w *Absence) scheduleMove(remaining int, delay sim.Time) {
	if remaining <= 0 {
		return
	}
	w.sys.Schedule(delay, func() {
		if w.departed {
			return
		}
		at, status := w.sys.Where(w.cfg.MH)
		if status != core.StatusConnected {
			// Still in transit from the previous move; retry without
			// consuming the budget.
			w.scheduleMove(remaining, w.cfg.MoveEvery.draw(w.rng))
			return
		}
		to := core.MSSID((int(at) + 1) % w.sys.Config().M)
		if to != at {
			if err := w.sys.Move(w.cfg.MH, to); err == nil {
				w.visited = append(w.visited, to)
				remaining--
			}
		} else {
			remaining-- // M == 1: nowhere to go, burn the budget
		}
		w.scheduleMove(remaining, w.cfg.MoveEvery.draw(w.rng))
	})
}

func (w *Absence) scheduleDepart(delay sim.Time) {
	w.sys.Schedule(delay, func() {
		if _, status := w.sys.Where(w.cfg.MH); status != core.StatusConnected {
			// A pre-move is still in flight; depart as soon as it lands.
			w.scheduleDepart(1)
			return
		}
		if err := w.sys.Disconnect(w.cfg.MH); err != nil {
			w.scheduleDepart(1)
			return
		}
		w.departed = true
		w.sys.Schedule(w.cfg.Duration, w.doReturn)
	})
}

func (w *Absence) doReturn() {
	at := w.cfg.Return
	if w.cfg.ReturnVisited {
		at = w.visited[w.rng.Intn(len(w.visited))]
	}
	if err := w.sys.Reconnect(w.cfg.MH, at, w.cfg.KnowsPrev); err != nil {
		return
	}
	w.returned = true
	w.returnedAt = at
	w.returnedOn = w.sys.Kernel().Now()
}
