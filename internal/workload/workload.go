// Package workload provides seeded, deterministic traffic and mobility
// generators for the experiment suite: cell-switch processes with tunable
// locality, request generators for the mutual exclusion algorithms, group
// message traffic with a controllable mobility-to-message ratio (the
// paper's MOB/MSG), and disconnect/reconnect churn.
//
// All generators draw from the simulation kernel's RNG (or forks of it), so
// a run is a pure function of the system seed and the workload parameters.
package workload

import (
	"fmt"

	"mobiledist/internal/core"
	"mobiledist/internal/sim"
)

// Span is an inclusive range of virtual-time intervals.
type Span struct {
	Min, Max sim.Time
}

// fixedSpan returns a degenerate range.
func FixedSpan(d sim.Time) Span { return Span{Min: d, Max: d} }

func (s Span) validate(name string) error {
	if s.Min < 0 || s.Max < s.Min {
		return fmt.Errorf("workload: invalid %s span [%d,%d]", name, s.Min, s.Max)
	}
	return nil
}

func (s Span) draw(rng *sim.RNG) sim.Time {
	return rng.Duration(s.Min, s.Max)
}

// allMHs enumerates every MH of the system.
func allMHs(sys *core.System) []core.MHID {
	n := sys.Config().N
	out := make([]core.MHID, n)
	for i := range out {
		out[i] = core.MHID(i)
	}
	return out
}

// MobilityConfig parameterises a mobility process.
type MobilityConfig struct {
	// MHs are the movers; nil means every MH in the system.
	MHs []core.MHID
	// Interval is the time between a MH's consecutive moves.
	Interval Span
	// MovesPerMH bounds each mover's total moves so simulations quiesce.
	MovesPerMH int
	// Locality is the probability that a move targets the ring-adjacent
	// cell (current+1 mod M) instead of a uniformly random other cell.
	// 1.0 yields maximal locality, 0.0 uniform scattering.
	Locality float64
	// Start delays the first move.
	Start sim.Time
}

// Mobility drives random cell switches.
type Mobility struct {
	sys   *core.System
	cfg   MobilityConfig
	rng   *sim.RNG
	moves int64
}

// NewMobility installs a mobility process on sys. Call before Run.
func NewMobility(sys *core.System, cfg MobilityConfig) (*Mobility, error) {
	if err := cfg.Interval.validate("interval"); err != nil {
		return nil, err
	}
	if cfg.Locality < 0 || cfg.Locality > 1 {
		return nil, fmt.Errorf("workload: locality %v outside [0,1]", cfg.Locality)
	}
	if cfg.MovesPerMH < 0 {
		return nil, fmt.Errorf("workload: negative MovesPerMH")
	}
	if cfg.MHs == nil {
		cfg.MHs = allMHs(sys)
	}
	w := &Mobility{sys: sys, cfg: cfg, rng: sys.Kernel().RNG().Fork()}
	for _, mh := range cfg.MHs {
		w.scheduleNext(mh, cfg.MovesPerMH, cfg.Start+w.cfg.Interval.draw(w.rng))
	}
	return w, nil
}

// Moves reports completed moves issued by this process.
func (w *Mobility) Moves() int64 { return w.moves }

func (w *Mobility) scheduleNext(mh core.MHID, remaining int, delay sim.Time) {
	if remaining <= 0 {
		return
	}
	w.sys.Schedule(delay, func() {
		at, status := w.sys.Where(mh)
		if status != core.StatusConnected {
			// Busy moving or disconnected; try again later without
			// consuming the budget.
			w.scheduleNext(mh, remaining, w.cfg.Interval.draw(w.rng))
			return
		}
		to := w.pickTarget(at)
		if to != at {
			if err := w.sys.Move(mh, to); err == nil {
				w.moves++
				remaining--
			}
		}
		w.scheduleNext(mh, remaining, w.cfg.Interval.draw(w.rng))
	})
}

func (w *Mobility) pickTarget(at core.MSSID) core.MSSID {
	m := w.sys.Config().M
	if m == 1 {
		return at
	}
	if w.rng.Float64() < w.cfg.Locality {
		return core.MSSID((int(at) + 1) % m)
	}
	// Uniform over the other cells.
	t := w.rng.Intn(m - 1)
	if t >= int(at) {
		t++
	}
	return core.MSSID(t)
}

// RequestConfig parameterises a request generator.
type RequestConfig struct {
	// MHs are the requesters; nil means every MH.
	MHs []core.MHID
	// Interval is the time between a MH's consecutive requests.
	Interval Span
	// RequestsPerMH bounds each requester's total requests.
	RequestsPerMH int
	// Start delays the first request.
	Start sim.Time
}

// Requests periodically invokes an issue function (such as L2.Request) for
// each configured MH.
type Requests struct {
	sys    *core.System
	cfg    RequestConfig
	rng    *sim.RNG
	issue  func(core.MHID) error
	issued int64
	errs   int64
}

// NewRequests installs a request generator; issue is called on the kernel
// goroutine. Errors from issue (for example "already has an outstanding
// request") are counted and the slot retried later.
func NewRequests(sys *core.System, cfg RequestConfig, issue func(core.MHID) error) (*Requests, error) {
	if issue == nil {
		return nil, fmt.Errorf("workload: nil issue function")
	}
	if err := cfg.Interval.validate("interval"); err != nil {
		return nil, err
	}
	if cfg.RequestsPerMH < 0 {
		return nil, fmt.Errorf("workload: negative RequestsPerMH")
	}
	if cfg.MHs == nil {
		cfg.MHs = allMHs(sys)
	}
	w := &Requests{sys: sys, cfg: cfg, rng: sys.Kernel().RNG().Fork(), issue: issue}
	for _, mh := range cfg.MHs {
		w.scheduleNext(mh, cfg.RequestsPerMH, cfg.Start+w.cfg.Interval.draw(w.rng))
	}
	return w, nil
}

// Issued reports successfully issued requests.
func (w *Requests) Issued() int64 { return w.issued }

// Errors reports issue attempts that returned an error.
func (w *Requests) Errors() int64 { return w.errs }

func (w *Requests) scheduleNext(mh core.MHID, remaining int, delay sim.Time) {
	if remaining <= 0 {
		return
	}
	w.sys.Schedule(delay, func() {
		if _, status := w.sys.Where(mh); status != core.StatusConnected {
			w.scheduleNext(mh, remaining, w.cfg.Interval.draw(w.rng))
			return
		}
		if err := w.issue(mh); err != nil {
			w.errs++
			w.scheduleNext(mh, remaining, w.cfg.Interval.draw(w.rng))
			return
		}
		w.issued++
		w.scheduleNext(mh, remaining-1, w.cfg.Interval.draw(w.rng))
	})
}

// ChurnConfig parameterises disconnect/reconnect cycles.
type ChurnConfig struct {
	// MHs are the churning hosts; nil means every MH.
	MHs []core.MHID
	// UpFor is how long a MH stays connected before disconnecting.
	UpFor Span
	// DownFor is how long it stays disconnected before reconnecting.
	DownFor Span
	// Cycles bounds disconnect/reconnect rounds per MH.
	Cycles int
	// KnowsPrev controls whether the reconnect() supplies the previous MSS
	// (Section 2); false forces the new MSS to query every fixed host.
	KnowsPrev bool
	// Start delays the first disconnection.
	Start sim.Time
}

// Churn drives voluntary disconnections and reconnections.
type Churn struct {
	sys         *core.System
	cfg         ChurnConfig
	rng         *sim.RNG
	disconnects int64
	reconnects  int64
}

// NewChurn installs a churn process on sys.
func NewChurn(sys *core.System, cfg ChurnConfig) (*Churn, error) {
	if err := cfg.UpFor.validate("up-for"); err != nil {
		return nil, err
	}
	if err := cfg.DownFor.validate("down-for"); err != nil {
		return nil, err
	}
	if cfg.Cycles < 0 {
		return nil, fmt.Errorf("workload: negative Cycles")
	}
	if cfg.MHs == nil {
		cfg.MHs = allMHs(sys)
	}
	w := &Churn{sys: sys, cfg: cfg, rng: sys.Kernel().RNG().Fork()}
	for _, mh := range cfg.MHs {
		w.scheduleDown(mh, cfg.Cycles, cfg.Start+w.cfg.UpFor.draw(w.rng))
	}
	return w, nil
}

// Disconnects reports completed disconnections.
func (w *Churn) Disconnects() int64 { return w.disconnects }

// Reconnects reports completed reconnections.
func (w *Churn) Reconnects() int64 { return w.reconnects }

func (w *Churn) scheduleDown(mh core.MHID, remaining int, delay sim.Time) {
	if remaining <= 0 {
		return
	}
	w.sys.Schedule(delay, func() {
		if _, status := w.sys.Where(mh); status != core.StatusConnected {
			w.scheduleDown(mh, remaining, w.cfg.UpFor.draw(w.rng))
			return
		}
		if err := w.sys.Disconnect(mh); err != nil {
			w.scheduleDown(mh, remaining, w.cfg.UpFor.draw(w.rng))
			return
		}
		w.disconnects++
		w.sys.Schedule(w.cfg.DownFor.draw(w.rng), func() {
			at := core.MSSID(w.rng.Intn(w.sys.Config().M))
			if err := w.sys.Reconnect(mh, at, w.cfg.KnowsPrev); err != nil {
				return
			}
			w.reconnects++
			w.scheduleDown(mh, remaining-1, w.cfg.UpFor.draw(w.rng))
		})
	})
}

// TrafficConfig parameterises a group-message traffic generator.
type TrafficConfig struct {
	// Senders issue group messages in round-robin order; must be group
	// members.
	Senders []core.MHID
	// Interval is the time between consecutive group messages.
	Interval Span
	// Messages is the total number of group messages to send.
	Messages int
	// Start delays the first message.
	Start sim.Time
}

// Traffic drives group messages through a send function.
type Traffic struct {
	sys  *core.System
	cfg  TrafficConfig
	rng  *sim.RNG
	send func(core.MHID, any) error
	sent int64
	errs int64
}

// NewTraffic installs a group-traffic process; send is typically a
// group.Comm's Send method.
func NewTraffic(sys *core.System, cfg TrafficConfig, send func(core.MHID, any) error) (*Traffic, error) {
	if send == nil {
		return nil, fmt.Errorf("workload: nil send function")
	}
	if len(cfg.Senders) == 0 {
		return nil, fmt.Errorf("workload: no senders")
	}
	if err := cfg.Interval.validate("interval"); err != nil {
		return nil, err
	}
	if cfg.Messages < 0 {
		return nil, fmt.Errorf("workload: negative Messages")
	}
	w := &Traffic{sys: sys, cfg: cfg, rng: sys.Kernel().RNG().Fork(), send: send}
	w.scheduleNext(0, cfg.Messages, cfg.Start+w.cfg.Interval.draw(w.rng))
	return w, nil
}

// Sent reports group messages successfully issued.
func (w *Traffic) Sent() int64 { return w.sent }

// Errors reports send attempts that failed (such as a disconnected sender).
func (w *Traffic) Errors() int64 { return w.errs }

func (w *Traffic) scheduleNext(turn, remaining int, delay sim.Time) {
	if remaining <= 0 {
		return
	}
	w.sys.Schedule(delay, func() {
		from := w.cfg.Senders[turn%len(w.cfg.Senders)]
		if _, status := w.sys.Where(from); status != core.StatusConnected {
			// Pass the turn to keep traffic flowing.
			w.scheduleNext(turn+1, remaining, w.cfg.Interval.draw(w.rng))
			return
		}
		if err := w.send(from, w.sent); err != nil {
			w.errs++
			w.scheduleNext(turn+1, remaining, w.cfg.Interval.draw(w.rng))
			return
		}
		w.sent++
		w.scheduleNext(turn+1, remaining-1, w.cfg.Interval.draw(w.rng))
	})
}
