package workload

import (
	"reflect"
	"testing"

	"mobiledist/internal/core"
)

// TestScaleScenarioDeterministic pins the generator contract: the same
// config produces a byte-identical scenario, including at N=10^5.
func TestScaleScenarioDeterministic(t *testing.T) {
	cfg := ScaleConfig{N: 100_000, M: 1000, Seed: 42, Kind: ScaleRoute, Ops: 100_000}
	a, err := GenScale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenScale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Ops, b.Ops) {
		t.Fatal("same config produced different op streams")
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("same config produced different fingerprints")
	}
	cfg.Seed = 43
	c, err := GenScale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Fingerprint() == a.Fingerprint() {
		t.Fatal("different seeds produced the same fingerprint")
	}
	for i, op := range a.Ops[:100] {
		if op.Wait < 1 || op.Wait > 16 {
			t.Fatalf("op %d wait %d outside [1,16]", i, op.Wait)
		}
		if int(op.MH) < 0 || int(op.MH) >= cfg.N || int(op.MSS) < 0 || int(op.MSS) >= cfg.M {
			t.Fatalf("op %d operands out of range: %+v", i, op)
		}
	}
}

func TestScaleConfigValidation(t *testing.T) {
	bad := []ScaleConfig{
		{N: 0, M: 10, Kind: ScaleRoute, Ops: 1},
		{N: 10, M: 0, Kind: ScaleRoute, Ops: 1},
		{N: 10, M: 10, Kind: ScaleRoute, Ops: 0},
		{N: 10, M: 10, Kind: ScaleKind(99), Ops: 1},
		{N: 10, M: 10, Kind: ScaleRoute, Ops: 1, Chains: -1},
	}
	for i, cfg := range bad {
		if _, err := GenScale(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

// TestScaleSmoke is the short-mode N=10^4 run of each scale suite kind: the
// scenario must complete on both the single-heap and sharded kernels with
// identical results — the workload-level face of the golden-trace contract.
func TestScaleSmoke(t *testing.T) {
	for _, kind := range []ScaleKind{ScaleRoute, ScaleChurn, ScaleSearchChase} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			sc, err := GenScale(ScaleConfig{N: 10_000, M: 100, Seed: 7, Kind: kind, Ops: 5000, Chains: 2000})
			if err != nil {
				t.Fatal(err)
			}
			results := make([]ScaleResult, 2)
			for i, shards := range []int{1, 64} {
				sys, err := NewScaleSystem(sc, shards)
				if err != nil {
					t.Fatal(err)
				}
				res, err := RunScale(sys, sc)
				if err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				results[i] = res
			}
			if results[0] != results[1] {
				t.Fatalf("single-heap and sharded runs diverged:\n%+v\n%+v", results[0], results[1])
			}
			res := results[0]
			if res.Injected != int64(len(sc.Ops)) {
				t.Errorf("injected %d of %d ops", res.Injected, len(sc.Ops))
			}
			if res.Messages == 0 || res.Steps == 0 || res.Elapsed == 0 {
				t.Errorf("degenerate run: %+v", res)
			}
			if kind != ScaleChurn && res.Delivered == 0 {
				t.Errorf("no deliveries: %+v", res)
			}
		})
	}
}

// TestScaleChurnProgress checks the churn kind actually cycles connectivity.
func TestScaleChurnProgress(t *testing.T) {
	sc, err := GenScale(ScaleConfig{N: 500, M: 10, Seed: 3, Kind: ScaleChurn, Ops: 2000, Chains: 200})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewScaleSystem(sc, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunScale(sys, sc); err != nil {
		t.Fatal(err)
	}
	stats := sys.Stats()
	if stats.Disconnects == 0 || stats.Reconnects == 0 {
		t.Fatalf("churn made no progress: %+v", stats)
	}
	// Every host must end settled, not wedged mid-protocol.
	for mh := 0; mh < sc.Cfg.N; mh++ {
		if _, status := sys.Where(core.MHID(mh)); status == core.StatusInTransit {
			t.Fatalf("mh%d left in transit", mh)
		}
	}
}
