package workload

// Scale scenarios: pre-generated, seeded operation streams for driving the
// simulation at 10^4..10^6 mobile hosts. Unlike the closure-chained
// generators in workload.go (which draw from the kernel RNG as they run), a
// scale scenario is materialised up front as a flat op list — a pure
// function of ScaleConfig — so the same scenario can be replayed against
// different kernel configurations (single-heap vs sharded) and the
// byte-identical determinism contract can be asserted on the generator
// itself.

import (
	"fmt"
	"hash/fnv"

	"mobiledist/internal/core"
	"mobiledist/internal/cost"
	"mobiledist/internal/sim"
)

// ScaleKind selects a scale-suite traffic shape.
type ScaleKind int

const (
	// ScaleRoute is routed MSS→MH delivery across the whole population:
	// every op sends one message from a random station to a random host.
	ScaleRoute ScaleKind = iota + 1
	// ScaleChurn is disconnect/reconnect cycling: every op flips one host's
	// connectivity, exercising the flag plumbing and handoff paths.
	ScaleChurn
	// ScaleSearchChase races mobility against delivery: every op moves a
	// host and immediately routes a message at it, so deliveries park on
	// waiters and chase across cells.
	ScaleSearchChase
)

// String returns the kind name used in benchmark and report labels.
func (k ScaleKind) String() string {
	switch k {
	case ScaleRoute:
		return "route"
	case ScaleChurn:
		return "churn"
	case ScaleSearchChase:
		return "search-chase"
	default:
		return fmt.Sprintf("ScaleKind(%d)", int(k))
	}
}

// ScaleConfig parameterises a pre-generated scale scenario.
type ScaleConfig struct {
	// N and M size the network (hosts, stations).
	N, M int
	// Seed makes the op stream a pure function of this config.
	Seed uint64
	// Kind selects the traffic shape.
	Kind ScaleKind
	// Ops is the total number of operations in the scenario.
	Ops int
	// Chains is the number of concurrent injection chains the runner keeps
	// in flight; it bounds the standing event population. 0 means
	// min(N, Ops).
	Chains int
}

func (c ScaleConfig) validate() error {
	if c.N < 1 || c.M < 1 {
		return fmt.Errorf("workload: scale config needs N >= 1 and M >= 1, got N=%d M=%d", c.N, c.M)
	}
	if c.Ops < 1 {
		return fmt.Errorf("workload: scale config needs Ops >= 1, got %d", c.Ops)
	}
	if c.Chains < 0 {
		return fmt.Errorf("workload: negative Chains")
	}
	switch c.Kind {
	case ScaleRoute, ScaleChurn, ScaleSearchChase:
	default:
		return fmt.Errorf("workload: unknown scale kind %d", int(c.Kind))
	}
	return nil
}

// chains resolves the configured chain count.
func (c ScaleConfig) chains() int {
	if c.Chains > 0 {
		return c.Chains
	}
	n := c.N
	if c.Ops < n {
		n = c.Ops
	}
	return n
}

// ScaleOp is one pre-generated operation. Wait is the delay after the
// owning chain's previous op; MH and MSS are the op's operands (target host
// and station, interpreted per ScaleKind).
type ScaleOp struct {
	Wait sim.Time
	MH   core.MHID
	MSS  core.MSSID
}

// ScaleScenario is a materialised op stream plus the config that produced
// it. Op i belongs to chain i mod Chains; chains replay their ops in order,
// each op firing Wait ticks after the previous one completed injection.
type ScaleScenario struct {
	Cfg ScaleConfig
	Ops []ScaleOp
}

// GenScale materialises the scenario for cfg. The op stream is a pure
// function of cfg — same config, same bytes — which
// TestScaleScenarioDeterministic pins at N=10^5.
func GenScale(cfg ScaleConfig) (*ScaleScenario, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := sim.NewRNG(cfg.Seed)
	ops := make([]ScaleOp, cfg.Ops)
	for i := range ops {
		ops[i] = ScaleOp{
			// Coarse waits collide many chains onto each tick — the
			// FIFO-clamped, batched-arrival regime the sharded kernel is
			// built for.
			Wait: sim.Time(rng.Intn(16) + 1),
			MH:   core.MHID(rng.Intn(cfg.N)),
			MSS:  core.MSSID(rng.Intn(cfg.M)),
		}
	}
	return &ScaleScenario{Cfg: cfg, Ops: ops}, nil
}

// Fingerprint hashes the full op stream (FNV-1a over every field in order).
// Two scenarios with equal fingerprints are byte-identical for the
// purposes of the determinism contract.
func (s *ScaleScenario) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	word := func(v uint64) {
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	word(uint64(s.Cfg.N))
	word(uint64(s.Cfg.M))
	word(s.Cfg.Seed)
	word(uint64(s.Cfg.Kind))
	for i := range s.Ops {
		op := &s.Ops[i]
		word(uint64(op.Wait))
		word(uint64(op.MH))
		word(uint64(op.MSS))
	}
	return h.Sum64()
}

// NewScaleSystem builds a simulation system sized for the scenario with the
// given kernel shard count (0 or 1 for the single-heap kernel).
func NewScaleSystem(sc *ScaleScenario, shards int) (*core.System, error) {
	cfg := core.DefaultConfig(sc.Cfg.M, sc.Cfg.N)
	cfg.Seed = sc.Cfg.Seed
	cfg.Shards = shards
	return core.NewSystem(cfg)
}

// ScaleResult summarises one scenario run.
type ScaleResult struct {
	// Injected is the number of scenario ops that fired.
	Injected int64
	// Delivered counts messages delivered to MH handlers (route and
	// search-chase kinds; 0 for churn).
	Delivered int64
	// Messages is the total message count charged to the cost meter across
	// all categories and channel kinds — the numerator of the simulated
	// msgs/sec benchmark metric.
	Messages int64
	// Steps is the number of kernel events the run processed.
	Steps uint64
	// Elapsed is the final virtual clock.
	Elapsed sim.Time
}

// scaleSink is the algorithm scale scenarios run under: it counts
// deliveries and otherwise does nothing, so the measured cost is the
// engine's, not a protocol's.
type scaleSink struct {
	delivered int64
}

func (s *scaleSink) Name() string { return "scale-sink" }

func (s *scaleSink) HandleMSS(ctx core.Context, at core.MSSID, from core.From, msg core.Message) {
}

func (s *scaleSink) HandleMH(ctx core.Context, at core.MHID, msg core.Message) {
	s.delivered++
}

// RunScale registers a counting sink on sys, injects the scenario through
// Chains concurrent chains, runs the kernel to quiescence, and reports the
// totals. The system must be freshly built (NewScaleSystem) and not yet
// run.
func RunScale(sys *core.System, sc *ScaleScenario) (ScaleResult, error) {
	sink := &scaleSink{}
	ctx := sys.Register(sink)
	var injected int64

	apply := func(op ScaleOp) {
		switch sc.Cfg.Kind {
		case ScaleRoute:
			ctx.SendToMH(op.MSS, op.MH, nil, cost.CatAlgorithm)
		case ScaleChurn:
			switch _, status := sys.Where(op.MH); status {
			case core.StatusConnected:
				_ = sys.Disconnect(op.MH)
			case core.StatusDisconnected:
				_ = sys.Reconnect(op.MH, op.MSS, true)
			}
			// In transit: skip — the host is already mid-protocol.
		case ScaleSearchChase:
			_ = sys.Move(op.MH, op.MSS)
			from := core.MSSID((int(op.MSS) + 1) % sc.Cfg.M)
			ctx.SendToMH(from, op.MH, nil, cost.CatAlgorithm)
		}
		injected++
	}

	chains := sc.Cfg.chains()
	var inject func(idx int)
	inject = func(idx int) {
		apply(sc.Ops[idx])
		if next := idx + chains; next < len(sc.Ops) {
			sys.Schedule(sc.Ops[next].Wait, func() { inject(next) })
		}
	}
	for c := 0; c < chains && c < len(sc.Ops); c++ {
		c := c
		sys.Schedule(sc.Ops[c].Wait, func() { inject(c) })
	}
	if err := sys.Run(); err != nil {
		return ScaleResult{}, err
	}
	m := sys.Meter()
	var msgs int64
	for _, kind := range cost.Kinds() {
		msgs += m.KindTotal(kind)
	}
	return ScaleResult{
		Injected:  injected,
		Delivered: sink.delivered,
		Messages:  msgs,
		Steps:     sys.Kernel().Steps(),
		Elapsed:   sys.Now(),
	}, nil
}
