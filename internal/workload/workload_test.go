package workload

import (
	"testing"

	"mobiledist/internal/core"
	"mobiledist/internal/cost"
)

func newSys(t *testing.T, m, n int, seed uint64) *core.System {
	t.Helper()
	cfg := core.DefaultConfig(m, n)
	cfg.Seed = seed
	sys, err := core.NewSystem(cfg)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	return sys
}

func TestMobilityCompletesBudget(t *testing.T) {
	sys := newSys(t, 5, 10, 7)
	mob, err := NewMobility(sys, MobilityConfig{
		Interval:   Span{Min: 20, Max: 60},
		MovesPerMH: 3,
	})
	if err != nil {
		t.Fatalf("NewMobility: %v", err)
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := mob.Moves(); got != 30 {
		t.Errorf("moves = %d, want 30", got)
	}
	if got := sys.Stats().Moves; got != 30 {
		t.Errorf("system moves = %d, want 30", got)
	}
}

func TestMobilityDeterministic(t *testing.T) {
	run := func() int64 {
		sys := newSys(t, 4, 8, 42)
		if _, err := NewMobility(sys, MobilityConfig{
			Interval:   Span{Min: 5, Max: 50},
			MovesPerMH: 5,
			Locality:   0.5,
		}); err != nil {
			t.Fatalf("NewMobility: %v", err)
		}
		if err := sys.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return sys.Meter().Count(cost.CatControl, cost.KindFixed)
	}
	if a, b := run(), run(); a != b {
		t.Errorf("runs differ: %d vs %d", a, b)
	}
}

func TestMobilityLocalityOne(t *testing.T) {
	sys := newSys(t, 6, 1, 9)
	if _, err := NewMobility(sys, MobilityConfig{
		Interval:   FixedSpan(100),
		MovesPerMH: 4,
		Locality:   1.0,
	}); err != nil {
		t.Fatalf("NewMobility: %v", err)
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// mh0 starts at cell 0 and must walk 0→1→2→3→4 with locality 1.
	at, status := sys.Where(core.MHID(0))
	if status != core.StatusConnected || at != 4 {
		t.Errorf("mh0 at mss%d (%v), want mss4 connected", int(at), status)
	}
}

func TestChurnCycles(t *testing.T) {
	sys := newSys(t, 4, 6, 11)
	ch, err := NewChurn(sys, ChurnConfig{
		MHs:       []core.MHID{1, 3},
		UpFor:     Span{Min: 50, Max: 100},
		DownFor:   Span{Min: 30, Max: 60},
		Cycles:    2,
		KnowsPrev: true,
	})
	if err != nil {
		t.Fatalf("NewChurn: %v", err)
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ch.Disconnects() != 4 || ch.Reconnects() != 4 {
		t.Errorf("churn = %d down / %d up, want 4/4", ch.Disconnects(), ch.Reconnects())
	}
	for _, mh := range []core.MHID{1, 3} {
		if _, status := sys.Where(mh); status != core.StatusConnected {
			t.Errorf("mh%d ends %v, want connected", int(mh), status)
		}
	}
}

func TestChurnWithoutPrevQueriesAllHosts(t *testing.T) {
	sys := newSys(t, 5, 2, 3)
	before := sys.Meter().Snapshot()
	if _, err := NewChurn(sys, ChurnConfig{
		MHs:     []core.MHID{0},
		UpFor:   FixedSpan(10),
		DownFor: FixedSpan(10),
		Cycles:  1,
	}); err != nil {
		t.Fatalf("NewChurn: %v", err)
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	diff := sys.Meter().Diff(before)
	// reconnect without prev: (M-1) queries + 1 reply + 2 handoff = M+2
	// fixed control messages.
	if got := diff.Count(cost.CatControl, cost.KindFixed); got != int64(4+1+2) {
		t.Errorf("control fixed messages = %d, want 7", got)
	}
}

func TestRequestsDrivesIssueFunction(t *testing.T) {
	sys := newSys(t, 3, 5, 13)
	var calls int64
	req, err := NewRequests(sys, RequestConfig{
		Interval:      Span{Min: 10, Max: 20},
		RequestsPerMH: 2,
	}, func(mh core.MHID) error {
		calls++
		return nil
	})
	if err != nil {
		t.Fatalf("NewRequests: %v", err)
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if calls != 10 || req.Issued() != 10 {
		t.Errorf("calls = %d issued = %d, want 10/10", calls, req.Issued())
	}
}

func TestTrafficRoundRobin(t *testing.T) {
	sys := newSys(t, 3, 6, 17)
	var order []core.MHID
	tr, err := NewTraffic(sys, TrafficConfig{
		Senders:  []core.MHID{0, 2, 4},
		Interval: FixedSpan(10),
		Messages: 6,
	}, func(mh core.MHID, payload any) error {
		order = append(order, mh)
		return nil
	})
	if err != nil {
		t.Fatalf("NewTraffic: %v", err)
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if tr.Sent() != 6 {
		t.Fatalf("sent = %d, want 6", tr.Sent())
	}
	want := []core.MHID{0, 2, 4, 0, 2, 4}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	sys := newSys(t, 3, 3, 1)
	if _, err := NewMobility(sys, MobilityConfig{Interval: Span{Min: 5, Max: 1}}); err == nil {
		t.Error("invalid interval accepted")
	}
	if _, err := NewMobility(sys, MobilityConfig{Interval: FixedSpan(1), Locality: 2}); err == nil {
		t.Error("invalid locality accepted")
	}
	if _, err := NewRequests(sys, RequestConfig{Interval: FixedSpan(1)}, nil); err == nil {
		t.Error("nil issue accepted")
	}
	if _, err := NewTraffic(sys, TrafficConfig{Interval: FixedSpan(1)}, func(core.MHID, any) error { return nil }); err == nil {
		t.Error("empty senders accepted")
	}
}
