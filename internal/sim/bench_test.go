package sim

import (
	"fmt"
	"testing"
)

// BenchmarkKernelScheduleRun measures the per-event cost of the kernel hot
// path: schedule a batch of events with pseudo-random delays (including
// re-entrant scheduling from inside handlers, as every protocol in this
// repository does), then drain the queue. Reported per scheduled event.
func BenchmarkKernelScheduleRun(b *testing.B) {
	const batch = 1024
	b.ReportAllocs()
	for i := 0; i < b.N; i += batch {
		k := NewKernel(uint64(i + 1))
		rng := k.RNG()
		fn := func() {}
		for j := 0; j < batch/2; j++ {
			d := Time(rng.Intn(1000))
			k.Schedule(d, func() {
				// One nested event per top-level event: exercises push into a
				// partially drained heap.
				k.Schedule(d%17, fn)
			})
		}
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelHotQueue measures steady-state push/pop on a pre-warmed
// queue, the regime the experiment suite spends most of its time in.
func BenchmarkKernelHotQueue(b *testing.B) {
	k := NewKernel(1)
	rng := k.RNG()
	// Pre-warm with a standing population of events.
	var churn func()
	churn = func() {
		k.Schedule(Time(rng.Intn(64)+1), churn)
	}
	for j := 0; j < 256; j++ {
		churn()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !k.Step() {
			b.Fatal("queue drained unexpectedly")
		}
	}
}

// BenchmarkKernelStanding compares the single-heap and sharded kernels on
// the million-host regime: a large standing event population with keyed
// scheduling and colliding timestamps (FIFO-clamped channels produce long
// same-time runs). Reported per processed event.
func BenchmarkKernelStanding(b *testing.B) {
	for _, pop := range []int{1 << 14, 1 << 17, 1 << 20} {
		for _, shards := range []int{1, 256} {
			name := fmt.Sprintf("pop=%d/shards=%d", pop, shards)
			b.Run(name, func(b *testing.B) {
				k := NewShardedKernel(1, shards)
				rng := NewRNG(7)
				// Each chain reschedules itself on its own key; delays are
				// coarse so many chains collide on each timestamp, as
				// FIFO-clamped channels do.
				var churn func(key int) func()
				churn = func(key int) func() {
					return func() {
						k.ScheduleKeyed(key, Time(rng.Intn(16)+1), churn(key))
					}
				}
				for j := 0; j < pop; j++ {
					k.ScheduleKeyed(j, Time(rng.Intn(16)+1), churn(j))
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if !k.Step() {
						b.Fatal("queue drained unexpectedly")
					}
				}
			})
		}
	}
}
