package sim

import "testing"

// BenchmarkKernelScheduleRun measures the per-event cost of the kernel hot
// path: schedule a batch of events with pseudo-random delays (including
// re-entrant scheduling from inside handlers, as every protocol in this
// repository does), then drain the queue. Reported per scheduled event.
func BenchmarkKernelScheduleRun(b *testing.B) {
	const batch = 1024
	b.ReportAllocs()
	for i := 0; i < b.N; i += batch {
		k := NewKernel(uint64(i + 1))
		rng := k.RNG()
		fn := func() {}
		for j := 0; j < batch/2; j++ {
			d := Time(rng.Intn(1000))
			k.Schedule(d, func() {
				// One nested event per top-level event: exercises push into a
				// partially drained heap.
				k.Schedule(d%17, fn)
			})
		}
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelHotQueue measures steady-state push/pop on a pre-warmed
// queue, the regime the experiment suite spends most of its time in.
func BenchmarkKernelHotQueue(b *testing.B) {
	k := NewKernel(1)
	rng := k.RNG()
	// Pre-warm with a standing population of events.
	var churn func()
	churn = func() {
		k.Schedule(Time(rng.Intn(64)+1), churn)
	}
	for j := 0; j < 256; j++ {
		churn()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !k.Step() {
			b.Fatal("queue drained unexpectedly")
		}
	}
}
