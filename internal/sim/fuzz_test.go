package sim

import "testing"

// FuzzKernelSchedule checks that arbitrary interleavings of scheduling
// (including re-entrant scheduling from inside events) preserve time
// monotonicity and run to quiescence.
func FuzzKernelSchedule(f *testing.F) {
	f.Add(uint64(1), []byte{10, 0, 30, 5})
	f.Add(uint64(7), []byte{255, 255, 1, 1, 1})
	f.Fuzz(func(t *testing.T, seed uint64, delays []byte) {
		k := NewKernel(seed)
		k.SetStepLimit(100_000)
		last := Time(-1)
		var fired int
		for i, d := range delays {
			if i > 100 {
				break
			}
			d := Time(d)
			k.Schedule(d, func() {
				fired++
				if k.Now() < last {
					t.Fatalf("time went backwards: %d after %d", k.Now(), last)
				}
				last = k.Now()
				// Re-entrant scheduling from inside an event.
				if d%3 == 0 {
					k.Schedule(Time(d%7), func() {
						fired++
						if k.Now() < last {
							t.Fatalf("nested time went backwards")
						}
						last = k.Now()
					})
				}
			})
		}
		if err := k.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		if k.Pending() != 0 {
			t.Fatalf("pending events after Run: %d", k.Pending())
		}
	})
}

// FuzzKernelHeapOracle cross-checks the 4-ary heap's pop order against a
// naive sorted-slice oracle. The op stream interleaves pushes (schedule a
// uniquely identified event at a delay drawn from the byte) with pops
// (Step), so the heap is exercised at many shapes and fill levels, and every
// popped event must match the oracle's front exactly — same id, same time.
func FuzzKernelHeapOracle(f *testing.F) {
	f.Add([]byte{10, 0, 30, 3, 5, 7, 3, 3})
	f.Add([]byte{255, 3, 255, 3, 0, 0, 3, 3, 3, 3})
	f.Fuzz(func(t *testing.T, ops []byte) {
		type oracleEvent struct {
			at Time
			id int
		}
		k := NewKernel(1)
		var oracle []oracleEvent // sorted by (at, insertion order)
		var fired []int
		nextID := 0
		if len(ops) > 200 {
			ops = ops[:200]
		}
		for _, op := range ops {
			if op%4 == 3 {
				// Pop: the kernel must fire exactly the oracle's front.
				if len(oracle) == 0 {
					if k.Step() {
						t.Fatal("kernel fired an event the oracle does not have")
					}
					continue
				}
				want := oracle[0]
				oracle = oracle[1:]
				before := len(fired)
				if !k.Step() {
					t.Fatalf("kernel empty but oracle holds %d events", len(oracle)+1)
				}
				if len(fired) != before+1 || fired[len(fired)-1] != want.id {
					t.Fatalf("pop order diverged: got id %v, want %d", fired[before:], want.id)
				}
				if k.Now() != want.at {
					t.Fatalf("pop time diverged: kernel at %d, oracle at %d", k.Now(), want.at)
				}
			} else {
				// Push: schedule at now+delay and insert into the oracle
				// keeping ties in insertion order (the kernel's seq order).
				id := nextID
				nextID++
				at := k.Now() + Time(op)
				k.Schedule(Time(op), func() { fired = append(fired, id) })
				pos := len(oracle)
				for i, ev := range oracle {
					if at < ev.at {
						pos = i
						break
					}
				}
				oracle = append(oracle, oracleEvent{})
				copy(oracle[pos+1:], oracle[pos:])
				oracle[pos] = oracleEvent{at: at, id: id}
			}
		}
		// Drain: the remaining pops must also match.
		for len(oracle) > 0 {
			want := oracle[0]
			oracle = oracle[1:]
			before := len(fired)
			if !k.Step() {
				t.Fatalf("kernel drained with %d oracle events left", len(oracle)+1)
			}
			if fired[len(fired)-1] != want.id || k.Now() != want.at {
				t.Fatalf("drain diverged: got id %d at %d, want id %d at %d",
					fired[before], k.Now(), want.id, want.at)
			}
		}
		if k.Pending() != 0 {
			t.Fatalf("kernel holds %d events the oracle does not", k.Pending())
		}
	})
}

// FuzzRNGDuration checks bounds for arbitrary (seed, min, span) inputs.
func FuzzRNGDuration(f *testing.F) {
	f.Add(uint64(1), int64(0), uint8(10))
	f.Add(uint64(99), int64(1000), uint8(0))
	f.Fuzz(func(t *testing.T, seed uint64, min int64, span uint8) {
		if min < 0 {
			min = -min
		}
		r := NewRNG(seed)
		max := min + int64(span)
		for i := 0; i < 50; i++ {
			v := r.Duration(Time(min), Time(max))
			if v < Time(min) || v > Time(max) {
				t.Fatalf("Duration(%d,%d) = %d", min, max, v)
			}
		}
	})
}
