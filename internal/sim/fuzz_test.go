package sim

import "testing"

// FuzzKernelSchedule checks that arbitrary interleavings of scheduling
// (including re-entrant scheduling from inside events) preserve time
// monotonicity and run to quiescence.
func FuzzKernelSchedule(f *testing.F) {
	f.Add(uint64(1), []byte{10, 0, 30, 5})
	f.Add(uint64(7), []byte{255, 255, 1, 1, 1})
	f.Fuzz(func(t *testing.T, seed uint64, delays []byte) {
		k := NewKernel(seed)
		k.SetStepLimit(100_000)
		last := Time(-1)
		var fired int
		for i, d := range delays {
			if i > 100 {
				break
			}
			d := Time(d)
			k.Schedule(d, func() {
				fired++
				if k.Now() < last {
					t.Fatalf("time went backwards: %d after %d", k.Now(), last)
				}
				last = k.Now()
				// Re-entrant scheduling from inside an event.
				if d%3 == 0 {
					k.Schedule(Time(d%7), func() {
						fired++
						if k.Now() < last {
							t.Fatalf("nested time went backwards")
						}
						last = k.Now()
					})
				}
			})
		}
		if err := k.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		if k.Pending() != 0 {
			t.Fatalf("pending events after Run: %d", k.Pending())
		}
	})
}

// FuzzRNGDuration checks bounds for arbitrary (seed, min, span) inputs.
func FuzzRNGDuration(f *testing.F) {
	f.Add(uint64(1), int64(0), uint8(10))
	f.Add(uint64(99), int64(1000), uint8(0))
	f.Fuzz(func(t *testing.T, seed uint64, min int64, span uint8) {
		if min < 0 {
			min = -min
		}
		r := NewRNG(seed)
		max := min + int64(span)
		for i := 0; i < 50; i++ {
			v := r.Duration(Time(min), Time(max))
			if v < Time(min) || v > Time(max) {
				t.Fatalf("Duration(%d,%d) = %d", min, max, v)
			}
		}
	})
}
