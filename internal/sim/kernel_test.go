package sim

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestKernelRunsEventsInTimeOrder(t *testing.T) {
	k := NewKernel(1)
	var order []Time
	for _, d := range []Time{30, 10, 20, 10, 0} {
		d := d
		k.Schedule(d, func() { order = append(order, d) })
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []Time{0, 10, 10, 20, 30}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestKernelStableTieBreak(t *testing.T) {
	k := NewKernel(1)
	var order []int
	for i := 0; i < 50; i++ {
		i := i
		k.Schedule(5, func() { order = append(order, i) })
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("same-time events reordered: position %d has %d", i, got)
		}
	}
}

func TestKernelClockAdvances(t *testing.T) {
	k := NewKernel(1)
	var at []Time
	k.Schedule(7, func() {
		at = append(at, k.Now())
		k.Schedule(3, func() { at = append(at, k.Now()) })
	})
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(at) != 2 || at[0] != 7 || at[1] != 10 {
		t.Errorf("event times = %v, want [7 10]", at)
	}
	if k.Now() != 10 {
		t.Errorf("final time = %d, want 10", k.Now())
	}
}

func TestKernelNegativeDelayRejected(t *testing.T) {
	k := NewKernel(1)
	if err := k.ScheduleErr(-1, func() {}); !errors.Is(err, ErrNegativeDelay) {
		t.Errorf("ScheduleErr(-1) = %v, want ErrNegativeDelay", err)
	}
	if err := k.ScheduleErr(0, nil); err == nil {
		t.Error("nil function accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("Schedule(-1) did not panic")
		}
	}()
	k.Schedule(-1, func() {})
}

func TestKernelScheduleAtPast(t *testing.T) {
	k := NewKernel(1)
	k.Schedule(10, func() {
		if err := k.ScheduleAt(5, func() {}); !errors.Is(err, ErrNegativeDelay) {
			t.Errorf("ScheduleAt(past) = %v, want ErrNegativeDelay", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestKernelRunUntil(t *testing.T) {
	k := NewKernel(1)
	var fired []Time
	for _, d := range []Time{5, 10, 15, 20} {
		d := d
		k.Schedule(d, func() { fired = append(fired, d) })
	}
	if err := k.RunUntil(12); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if len(fired) != 2 {
		t.Fatalf("fired = %v, want 2 events", fired)
	}
	if k.Now() != 12 {
		t.Errorf("clock = %d, want 12", k.Now())
	}
	if k.Pending() != 2 {
		t.Errorf("pending = %d, want 2", k.Pending())
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(fired) != 4 {
		t.Errorf("fired = %v, want 4 events", fired)
	}
}

func TestKernelStepLimit(t *testing.T) {
	k := NewKernel(1)
	k.SetStepLimit(10)
	var reschedule func()
	reschedule = func() { k.Schedule(1, reschedule) }
	k.Schedule(1, reschedule)
	if err := k.Run(); err == nil {
		t.Error("runaway event loop not detected")
	}
	if k.Steps() != 10 {
		t.Errorf("steps = %d, want 10", k.Steps())
	}
}

func TestKernelDeterminism(t *testing.T) {
	run := func(seed uint64) []Time {
		k := NewKernel(seed)
		var events []Time
		var spawn func(depth int)
		spawn = func(depth int) {
			events = append(events, k.Now())
			if depth == 0 {
				return
			}
			for i := 0; i < 3; i++ {
				d := Time(k.RNG().Intn(100))
				k.Schedule(d, func() { spawn(depth - 1) })
			}
		}
		k.Schedule(0, func() { spawn(4) })
		if err := k.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return events
	}
	a, b := run(99), run(99)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d at %d vs %d", i, a[i], b[i])
		}
	}
	c := run(100)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical schedules (suspicious)")
	}
}

func TestKernelTimeMonotonic(t *testing.T) {
	// Property: regardless of the random delays scheduled, observed event
	// times never decrease.
	check := func(seed uint64, delays []uint8) bool {
		k := NewKernel(seed)
		last := Time(-1)
		ok := true
		for _, d := range delays {
			k.Schedule(Time(d), func() {
				if k.Now() < last {
					ok = false
				}
				last = k.Now()
			})
		}
		if err := k.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRNGDeterministicAndForkIndependent(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	r := NewRNG(7)
	fork := r.Fork()
	x := fork.Uint64()
	y := r.Uint64()
	if x == y {
		t.Error("fork mirrors parent stream")
	}
}

func TestRNGBounds(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		if v := r.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v", v)
		}
		if v := r.Duration(5, 9); v < 5 || v > 9 {
			t.Fatalf("Duration(5,9) = %d", v)
		}
	}
	if v := r.Duration(4, 4); v != 4 {
		t.Errorf("Duration(4,4) = %d", v)
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(11)
	p := r.Perm(20)
	seen := make(map[int]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
	if len(seen) != 20 {
		t.Fatalf("permutation incomplete: %v", p)
	}
}

func TestRNGPanicsOnBadBounds(t *testing.T) {
	r := NewRNG(1)
	for name, fn := range map[string]func(){
		"Intn(0)":        func() { r.Intn(0) },
		"Int63n(-1)":     func() { r.Int63n(-1) },
		"Duration(5, 1)": func() { r.Duration(5, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestRNGDistributionRoughlyUniform(t *testing.T) {
	// Property check rather than a rigorous statistical test: each bucket
	// of Intn(10) over 10k draws should land within a generous band.
	r := NewRNG(123)
	counts := make([]int, 10)
	const draws = 10_000
	for i := 0; i < draws; i++ {
		counts[r.Intn(10)]++
	}
	for b, c := range counts {
		if c < draws/10-300 || c > draws/10+300 {
			t.Errorf("bucket %d has %d draws, expected ~%d", b, c, draws/10)
		}
	}
}
