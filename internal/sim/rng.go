package sim

// RNG is a small, fast, deterministic random number generator
// (splitmix64). It is not safe for concurrent use; in simulation mode all
// access happens on the kernel goroutine, and the live runtime keeps one
// RNG per node.
type RNG struct {
	state uint64
}

// NewRNG returns an RNG seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64-bit value in the sequence.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive bound")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Duration returns a uniform Time in [min, max]. It panics if max < min.
func (r *RNG) Duration(min, max Time) Time {
	if max < min {
		panic("sim: Duration with max < min")
	}
	if max == min {
		return min
	}
	return min + Time(r.Int63n(int64(max-min)+1))
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Fork derives an independent RNG stream from this one, for per-node
// generators that must not perturb each other's sequences.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64() ^ 0xd1b54a32d192ed03)
}
