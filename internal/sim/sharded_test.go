package sim

import (
	"testing"
)

// twin drives a single-heap kernel and a sharded kernel through the same
// call sequence and records each one's fire order.
type twin struct {
	single, sharded *Kernel
	fs, fd          []int
}

func newTwin(seed uint64, shards int) *twin {
	return &twin{single: NewKernel(seed), sharded: NewShardedKernel(seed, shards)}
}

func (w *twin) schedule(key int, delay Time, id int) {
	w.single.ScheduleKeyed(key, delay, func() { w.fs = append(w.fs, id) })
	w.sharded.ScheduleKeyed(key, delay, func() { w.fd = append(w.fd, id) })
}

func (w *twin) compare(t *testing.T) {
	t.Helper()
	if len(w.fs) != len(w.fd) {
		t.Fatalf("fired %d events on single heap, %d sharded", len(w.fs), len(w.fd))
	}
	for i := range w.fs {
		if w.fs[i] != w.fd[i] {
			t.Fatalf("pop order diverged at %d: single fired %d, sharded %d", i, w.fs[i], w.fd[i])
		}
	}
	if w.single.Now() != w.sharded.Now() {
		t.Fatalf("clocks diverged: single %d, sharded %d", w.single.Now(), w.sharded.Now())
	}
	if w.single.Pending() != w.sharded.Pending() {
		t.Fatalf("pending diverged: single %d, sharded %d", w.single.Pending(), w.sharded.Pending())
	}
}

// TestShardedKernelMatchesSingleHeap pins the determinism contract on a
// long mixed workload: keyed schedules across many shards, colliding
// timestamps, zero delays, and re-entrant scheduling from inside events.
func TestShardedKernelMatchesSingleHeap(t *testing.T) {
	for _, shards := range []int{2, 8, 64} {
		w := newTwin(1, shards)
		rng := NewRNG(42)
		// Drive both kernels with identical structure. Nested closures need
		// matching ids on both sides, so generate the plan first.
		type op struct {
			key   int
			delay Time
		}
		var plan []op
		for i := 0; i < 2000; i++ {
			plan = append(plan, op{key: rng.Intn(1 << 20), delay: Time(rng.Intn(50))})
		}
		var build func(k *Kernel, fired *[]int)
		build = func(k *Kernel, fired *[]int) {
			n := 0
			var fn func(o op, depth int) func()
			fn = func(o op, depth int) func() {
				myID := n
				n++
				return func() {
					*fired = append(*fired, myID)
					if depth > 0 {
						k.ScheduleKeyed(o.key*7+depth, Time(depth%3), fn(op{key: o.key + depth, delay: o.delay}, depth-1))
					}
				}
			}
			for _, o := range plan {
				k.ScheduleKeyed(o.key, o.delay, fn(o, int(o.delay)%4))
			}
		}
		build(w.single, &w.fs)
		build(w.sharded, &w.fd)
		// Interleave RunUntil with full Run to cover clock-advance paths.
		if err := w.single.RunUntil(25); err != nil {
			t.Fatal(err)
		}
		if err := w.sharded.RunUntil(25); err != nil {
			t.Fatal(err)
		}
		w.compare(t)
		if err := w.single.Run(); err != nil {
			t.Fatal(err)
		}
		if err := w.sharded.Run(); err != nil {
			t.Fatal(err)
		}
		w.compare(t)
		if w.sharded.Pending() != 0 {
			t.Fatalf("sharded kernel left %d events pending", w.sharded.Pending())
		}
	}
}

// TestShardedKernelBasics covers the small-surface behaviors: shard count
// reporting, negative delays, nil functions, and ScheduleAtKeyed.
func TestShardedKernelBasics(t *testing.T) {
	k := NewShardedKernel(1, 5) // rounds up to 8
	if got := k.Shards(); got != 8 {
		t.Errorf("Shards() = %d, want 8", got)
	}
	if got := NewKernel(1).Shards(); got != 1 {
		t.Errorf("single-heap Shards() = %d, want 1", got)
	}
	if got := NewShardedKernel(1, 1).Shards(); got != 1 {
		t.Errorf("NewShardedKernel(_, 1).Shards() = %d, want 1", got)
	}
	if err := k.ScheduleKeyedErr(3, -1, func() {}); err != ErrNegativeDelay {
		t.Errorf("negative delay error = %v", err)
	}
	if err := k.ScheduleKeyedErr(3, 1, nil); err == nil {
		t.Error("nil fn accepted")
	}
	if err := k.ScheduleAtKeyed(9, 10, func() {}); err != nil {
		t.Errorf("ScheduleAtKeyed: %v", err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if k.Now() != 10 {
		t.Errorf("Now() = %d, want 10", k.Now())
	}
	if err := k.ScheduleAtKeyed(9, 5, func() {}); err != ErrNegativeDelay {
		t.Errorf("past ScheduleAtKeyed error = %v", err)
	}
}

// TestShardedKernelStepLimit checks the runaway backstop fires on the
// sharded path too.
func TestShardedKernelStepLimit(t *testing.T) {
	k := NewShardedKernel(1, 4)
	k.SetStepLimit(10)
	var churn func()
	churn = func() { k.ScheduleKeyed(1, 1, churn) }
	churn()
	if err := k.Run(); err == nil {
		t.Fatal("step limit not enforced")
	}
	if k.Steps() != 10 {
		t.Errorf("steps = %d, want 10", k.Steps())
	}
}

// TestShardedKernelSteadyStateAllocs proves the steady-state scheduling
// path — keyed pushes into warmed shards, run drains, bucket recycling —
// allocates nothing per event.
func TestShardedKernelSteadyStateAllocs(t *testing.T) {
	k := NewShardedKernel(1, 16)
	rng := NewRNG(7)
	// Standing population across shards and colliding timestamps; warm all
	// internal arenas first.
	var churn func(key int) func()
	churn = func(key int) func() {
		return func() {
			k.ScheduleKeyed(key, Time(rng.Intn(16)+1), churn(key))
		}
	}
	for j := 0; j < 512; j++ {
		k.ScheduleKeyed(j, Time(rng.Intn(16)+1), churn(j))
	}
	for i := 0; i < 100_000; i++ {
		if !k.Step() {
			t.Fatal("queue drained unexpectedly")
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		for i := 0; i < 64; i++ {
			if !k.Step() {
				t.Fatal("queue drained unexpectedly")
			}
		}
	})
	// The only allocations on this path are the churn closures themselves
	// (one per rescheduled event, owned by the test driver); the queue's
	// buckets, heaps, map cells, and now-queue must all recycle. Allow the
	// closure+RNG draw and nothing more.
	if avg > 70 {
		t.Fatalf("steady-state Step allocated %.1f objects per 64 events (want only the driver's closures)", avg)
	}
}

// FuzzShardedKernelOracle cross-checks the sharded queue against the
// single-heap kernel (the oracle) on arbitrary keyed op streams: byte
// triples encode (key, delay, action) where action interleaves scheduling
// with explicit Steps, covering clock advances mid-stream.
func FuzzShardedKernelOracle(f *testing.F) {
	f.Add(uint64(1), []byte{1, 10, 0, 2, 0, 1, 3, 30, 0, 0, 0, 2})
	f.Add(uint64(3), []byte{255, 255, 0, 255, 0, 1, 9, 9, 2, 1, 1, 1})
	f.Add(uint64(9), []byte{0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, seed uint64, ops []byte) {
		if len(ops) > 300 {
			ops = ops[:300]
		}
		shards := int(seed%63) + 2
		w := newTwin(seed, shards)
		id := 0
		schedule := func(k *Kernel, fired *[]int, key int, delay Time, myID int, reentrant bool) {
			var fn func()
			if reentrant {
				fn = func() {
					*fired = append(*fired, myID)
					k.ScheduleKeyed(key+1, delay/2, func() { *fired = append(*fired, ^myID) })
				}
			} else {
				fn = func() { *fired = append(*fired, myID) }
			}
			k.ScheduleKeyed(key, delay, fn)
		}
		for i := 0; i+2 < len(ops); i += 3 {
			key, delay, action := int(ops[i]), Time(ops[i+1]), ops[i+2]%4
			switch action {
			case 0, 1: // schedule (action 1: with a re-entrant nested event)
				schedule(w.single, &w.fs, key, delay, id, action == 1)
				schedule(w.sharded, &w.fd, key, delay, id, action == 1)
				id++
			case 2: // step both
				s1 := w.single.Step()
				s2 := w.sharded.Step()
				if s1 != s2 {
					t.Fatalf("Step() diverged: single %v, sharded %v", s1, s2)
				}
			case 3: // bounded run
				if err := w.single.RunUntil(w.single.Now() + Time(ops[i+1])); err != nil {
					t.Fatal(err)
				}
				if err := w.sharded.RunUntil(w.sharded.Now() + Time(ops[i+1])); err != nil {
					t.Fatal(err)
				}
			}
			w.compare(t)
		}
		if err := w.single.Run(); err != nil {
			t.Fatal(err)
		}
		if err := w.sharded.Run(); err != nil {
			t.Fatal(err)
		}
		w.compare(t)
	})
}
