// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel maintains a virtual clock and an event heap. Events scheduled
// for the same instant fire in scheduling order (stable tie-break on a
// monotonically increasing sequence number), so a run is a pure function of
// its inputs and RNG seed. All algorithm state machines in this repository
// execute on a single kernel goroutine; no locking is required in simulation
// mode.
//
// The event queue is a value-typed 4-ary min-heap ordered by (at, seq).
// Events are stored inline in a flat slice — no per-event pointer, no
// interface boxing through container/heap — so scheduling is allocation-free
// in steady state. Because (at, seq) is a total order, the pop sequence is
// identical to any correct priority queue over the same events; replacing
// the previous container/heap binary heap changed no observable schedule.
//
// For million-host simulations, NewShardedKernel replaces the single heap
// with per-shard time-bucket heaps under a small top-level merge (see
// sharded.go). The pop sequence is still exactly the (at, seq) total order,
// so a sharded kernel is byte-identical to a single-heap kernel on seeded
// runs; the single-heap kernel remains the oracle the sharded queue is
// fuzzed against.
package sim

import (
	"errors"
	"fmt"
)

// Time is virtual simulation time in abstract ticks.
type Time int64

// event is a scheduled callback, stored by value in the kernel's heap: an
// invoker plus one opaque argument. Plain func() events use the package's
// static runFn invoker with the closure as the argument; callers on the
// allocation-free path (the engine's pooled delivery records) pass a
// long-lived invoker and a pointer argument, so neither word boxes — func
// values and pointers are stored directly in an interface.
type event struct {
	at  Time
	seq uint64
	do  func(any)
	arg any
}

// runFn is the invoker for plain func() events.
func runFn(a any) { a.(func())() }

// before is the heap order: earliest time first, scheduling order within a
// tick. seq is unique, so this is a total order and the pop sequence is
// fully determined by the scheduled set.
func (e *event) before(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// ErrNegativeDelay is returned by ScheduleErr when asked to schedule an
// event in the past.
var ErrNegativeDelay = errors.New("sim: negative delay")

// Kernel is a deterministic discrete-event scheduler.
//
// The zero value is not usable; construct with NewKernel.
type Kernel struct {
	now    Time
	seq    uint64
	events []event // 4-ary min-heap ordered by (at, seq); unused when sq != nil
	sq     *shardQueue
	rng    *RNG

	// stepLimit bounds the number of events processed by Run as a
	// runaway-protocol backstop; 0 means no limit.
	stepLimit uint64
	steps     uint64
}

// NewKernel returns a kernel whose RNG is seeded with seed.
func NewKernel(seed uint64) *Kernel {
	return &Kernel{rng: NewRNG(seed)}
}

// NewShardedKernel returns a kernel whose pending-event set is partitioned
// into the given number of shards (rounded up to a power of two) selected
// by the key passed to ScheduleKeyed/ScheduleAtKeyed. Scheduling and pop
// order are byte-identical to NewKernel for the same calls; shards only
// change the data structure's constants (see sharded.go). shards <= 1
// returns a plain single-heap kernel.
func NewShardedKernel(seed uint64, shards int) *Kernel {
	k := NewKernel(seed)
	if shards > 1 {
		k.sq = newShardQueue(shards)
	}
	return k
}

// Shards reports the shard count of the pending-event set (1 for a
// single-heap kernel).
func (k *Kernel) Shards() int {
	if k.sq == nil {
		return 1
	}
	return len(k.sq.shards)
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// RNG returns the kernel's deterministic random number generator.
func (k *Kernel) RNG() *RNG { return k.rng }

// SetStepLimit bounds the total number of events Run may process.
// A limit of 0 (the default) means unbounded.
func (k *Kernel) SetStepLimit(n uint64) { k.stepLimit = n }

// Steps reports how many events have been processed so far.
func (k *Kernel) Steps() uint64 { return k.steps }

// push inserts ev, sifting up with a hole instead of pairwise swaps.
func (k *Kernel) push(ev event) {
	h := append(k.events, ev)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !ev.before(&h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = ev
	k.events = h
}

// pop removes and returns the minimum event. The caller must ensure the
// heap is non-empty.
func (k *Kernel) pop() event {
	h := k.events
	min := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = event{} // release the callback reference
	h = h[:n]
	if n > 0 {
		// Sift last down from the root: at each level pick the smallest of
		// up to four children, move it up, descend into its slot.
		i := 0
		for {
			c := i<<2 + 1
			if c >= n {
				break
			}
			end := c + 4
			if end > n {
				end = n
			}
			best := c
			for j := c + 1; j < end; j++ {
				if h[j].before(&h[best]) {
					best = j
				}
			}
			if !h[best].before(&last) {
				break
			}
			h[i] = h[best]
			i = best
		}
		h[i] = last
	}
	k.events = h
	return min
}

// Schedule runs fn after delay ticks of virtual time. A zero delay runs fn
// after all currently executing work, preserving scheduling order.
// Negative delays panic: they indicate a protocol bug, not a runtime
// condition a caller could recover from.
func (k *Kernel) Schedule(delay Time, fn func()) {
	if err := k.ScheduleErr(delay, fn); err != nil {
		panic(fmt.Sprintf("sim: schedule: %v", err))
	}
}

// ScheduleErr is Schedule returning an error instead of panicking.
func (k *Kernel) ScheduleErr(delay Time, fn func()) error {
	return k.ScheduleKeyedErr(0, delay, fn)
}

// ScheduleKeyed is Schedule with a shard key: callers with a natural
// partition (the engine's flat channel ids) spread their events across the
// sharded queue. On a single-heap kernel the key is ignored; the schedule
// is identical either way.
func (k *Kernel) ScheduleKeyed(key int, delay Time, fn func()) {
	if err := k.ScheduleKeyedErr(key, delay, fn); err != nil {
		panic(fmt.Sprintf("sim: schedule: %v", err))
	}
}

// ScheduleKeyedErr is ScheduleKeyed returning an error instead of
// panicking.
func (k *Kernel) ScheduleKeyedErr(key int, delay Time, fn func()) error {
	if fn == nil {
		return errors.New("sim: nil event function")
	}
	return k.ScheduleCallKeyedErr(key, delay, runFn, fn)
}

// ScheduleCall is Schedule in invoker/argument form: do(arg) runs after
// delay ticks. Unlike Schedule, no closure is needed — a caller with a
// long-lived invoker and a pointer argument (the engine's pooled delivery
// records) schedules without allocating.
func (k *Kernel) ScheduleCall(delay Time, do func(any), arg any) {
	if err := k.ScheduleCallKeyedErr(0, delay, do, arg); err != nil {
		panic(fmt.Sprintf("sim: schedule: %v", err))
	}
}

// ScheduleCallAtKeyed is ScheduleCall at an absolute timestamp with a shard
// key; it is the record-path analogue of ScheduleAtKeyed.
func (k *Kernel) ScheduleCallAtKeyed(key int, at Time, do func(any), arg any) error {
	if at < k.now {
		return ErrNegativeDelay
	}
	return k.ScheduleCallKeyedErr(key, at-k.now, do, arg)
}

// ScheduleCallKeyedErr is the funnel every schedule path goes through: it
// assigns the sequence number and routes the event to the now-queue, the
// sharded queue, or the single heap.
func (k *Kernel) ScheduleCallKeyedErr(key int, delay Time, do func(any), arg any) error {
	if delay < 0 {
		return ErrNegativeDelay
	}
	if do == nil {
		return errors.New("sim: nil event function")
	}
	k.seq++
	if q := k.sq; q != nil {
		if delay == 0 {
			// An event for the current instant can never precede anything
			// already queued at it (seq only grows), so it skips the heaps
			// entirely; see the now-queue ordering argument in sharded.go.
			q.pushNow(do, arg)
		} else {
			q.push(key, event{at: k.now + delay, seq: k.seq, do: do, arg: arg})
		}
		return nil
	}
	k.push(event{at: k.now + delay, seq: k.seq, do: do, arg: arg})
	return nil
}

// ScheduleAt runs fn at absolute virtual time at (which must not be in the
// past).
func (k *Kernel) ScheduleAt(at Time, fn func()) error {
	if at < k.now {
		return ErrNegativeDelay
	}
	return k.ScheduleKeyedErr(0, at-k.now, fn)
}

// ScheduleAtKeyed is ScheduleAt with a shard key.
func (k *Kernel) ScheduleAtKeyed(key int, at Time, fn func()) error {
	if at < k.now {
		return ErrNegativeDelay
	}
	return k.ScheduleKeyedErr(key, at-k.now, fn)
}

// Pending reports the number of queued events.
func (k *Kernel) Pending() int {
	if k.sq != nil {
		return k.sq.pending()
	}
	return len(k.events)
}

// nextAt returns the timestamp of the earliest queued event.
func (k *Kernel) nextAt() (Time, bool) {
	if q := k.sq; q != nil {
		if q.nowHead < len(q.nowQ) {
			return k.now, true
		}
		at, _, ok := q.peek()
		return at, ok
	}
	if len(k.events) == 0 {
		return 0, false
	}
	return k.events[0].at, true
}

// Step processes the single earliest event. It reports whether an event was
// processed.
func (k *Kernel) Step() bool {
	if k.sq != nil {
		return k.stepSharded()
	}
	if len(k.events) == 0 {
		return false
	}
	ev := k.pop()
	k.now = ev.at
	k.steps++
	ev.do(ev.arg)
	return true
}

// stepSharded is Step on the sharded queue. Shard-held events at the
// current instant run before the now-queue (they carry smaller seqs — see
// sharded.go); then the now-queue drains FIFO; then the clock advances to
// the next shard-held timestamp.
func (k *Kernel) stepSharded() bool {
	q := k.sq
	at, _, ok := q.peek()
	switch {
	case ok && at == k.now:
		ev := q.pop()
		k.steps++
		ev.do(ev.arg)
	case q.nowHead < len(q.nowQ):
		do, arg := q.popNow()
		k.steps++
		do(arg)
	case ok:
		ev := q.pop()
		k.now = ev.at
		k.steps++
		ev.do(ev.arg)
	default:
		return false
	}
	return true
}

// Run processes events until the queue drains or the step limit is hit.
// It returns an error if the step limit was exhausted with work remaining.
func (k *Kernel) Run() error {
	for k.Step() {
		if k.stepLimit != 0 && k.steps >= k.stepLimit {
			if k.Pending() > 0 {
				return fmt.Errorf("sim: step limit %d reached with %d events pending", k.stepLimit, k.Pending())
			}
			return nil
		}
	}
	return nil
}

// RunUntil processes events with timestamps <= deadline, then advances the
// clock to deadline. Events scheduled beyond the deadline remain queued.
func (k *Kernel) RunUntil(deadline Time) error {
	for {
		at, ok := k.nextAt()
		if !ok || at > deadline {
			break
		}
		k.Step()
		if k.stepLimit != 0 && k.steps >= k.stepLimit {
			return fmt.Errorf("sim: step limit %d reached at t=%d", k.stepLimit, k.now)
		}
	}
	if k.now < deadline {
		k.now = deadline
	}
	return nil
}
