// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel maintains a virtual clock and an event heap. Events scheduled
// for the same instant fire in scheduling order (stable tie-break on a
// monotonically increasing sequence number), so a run is a pure function of
// its inputs and RNG seed. All algorithm state machines in this repository
// execute on a single kernel goroutine; no locking is required in simulation
// mode.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
)

// Time is virtual simulation time in abstract ticks.
type Time int64

// Event is a scheduled callback.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) {
	ev, ok := x.(*event)
	if !ok {
		panic("sim: push of non-event")
	}
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// ErrNegativeDelay is returned by ScheduleErr when asked to schedule an
// event in the past.
var ErrNegativeDelay = errors.New("sim: negative delay")

// Kernel is a deterministic discrete-event scheduler.
//
// The zero value is not usable; construct with NewKernel.
type Kernel struct {
	now    Time
	seq    uint64
	events eventHeap
	rng    *RNG

	// stepLimit bounds the number of events processed by Run as a
	// runaway-protocol backstop; 0 means no limit.
	stepLimit uint64
	steps     uint64
}

// NewKernel returns a kernel whose RNG is seeded with seed.
func NewKernel(seed uint64) *Kernel {
	return &Kernel{rng: NewRNG(seed)}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// RNG returns the kernel's deterministic random number generator.
func (k *Kernel) RNG() *RNG { return k.rng }

// SetStepLimit bounds the total number of events Run may process.
// A limit of 0 (the default) means unbounded.
func (k *Kernel) SetStepLimit(n uint64) { k.stepLimit = n }

// Steps reports how many events have been processed so far.
func (k *Kernel) Steps() uint64 { return k.steps }

// Schedule runs fn after delay ticks of virtual time. A zero delay runs fn
// after all currently executing work, preserving scheduling order.
// Negative delays panic: they indicate a protocol bug, not a runtime
// condition a caller could recover from.
func (k *Kernel) Schedule(delay Time, fn func()) {
	if err := k.ScheduleErr(delay, fn); err != nil {
		panic(fmt.Sprintf("sim: schedule: %v", err))
	}
}

// ScheduleErr is Schedule returning an error instead of panicking.
func (k *Kernel) ScheduleErr(delay Time, fn func()) error {
	if delay < 0 {
		return ErrNegativeDelay
	}
	if fn == nil {
		return errors.New("sim: nil event function")
	}
	k.seq++
	heap.Push(&k.events, &event{at: k.now + delay, seq: k.seq, fn: fn})
	return nil
}

// ScheduleAt runs fn at absolute virtual time at (which must not be in the
// past).
func (k *Kernel) ScheduleAt(at Time, fn func()) error {
	if at < k.now {
		return ErrNegativeDelay
	}
	return k.ScheduleErr(at-k.now, fn)
}

// Pending reports the number of queued events.
func (k *Kernel) Pending() int { return len(k.events) }

// Step processes the single earliest event. It reports whether an event was
// processed.
func (k *Kernel) Step() bool {
	if len(k.events) == 0 {
		return false
	}
	ev, ok := heap.Pop(&k.events).(*event)
	if !ok {
		panic("sim: corrupt event heap")
	}
	k.now = ev.at
	k.steps++
	ev.fn()
	return true
}

// Run processes events until the queue drains or the step limit is hit.
// It returns an error if the step limit was exhausted with work remaining.
func (k *Kernel) Run() error {
	for k.Step() {
		if k.stepLimit != 0 && k.steps >= k.stepLimit {
			if len(k.events) > 0 {
				return fmt.Errorf("sim: step limit %d reached with %d events pending", k.stepLimit, len(k.events))
			}
			return nil
		}
	}
	return nil
}

// RunUntil processes events with timestamps <= deadline, then advances the
// clock to deadline. Events scheduled beyond the deadline remain queued.
func (k *Kernel) RunUntil(deadline Time) error {
	for len(k.events) > 0 && k.events[0].at <= deadline {
		if !k.Step() {
			break
		}
		if k.stepLimit != 0 && k.steps >= k.stepLimit {
			return fmt.Errorf("sim: step limit %d reached at t=%d", k.stepLimit, k.now)
		}
	}
	if k.now < deadline {
		k.now = deadline
	}
	return nil
}
