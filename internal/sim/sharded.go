package sim

// Sharded event scheduling for million-host simulations.
//
// The single 4-ary heap is exact but, at N=10^6 hosts, holds a standing
// population of ~10^6 events: every push and pop walks ~10 levels of a
// multi-megabyte array, and every event at the same instant pays a full
// sift. The sharded queue partitions the pending set by a caller-supplied
// key (the engine passes its flat channel id, so each shard owns a slice of
// the channel/cell space) and exploits two structural facts about
// discrete-event traffic in this repository:
//
//  1. Arrival times collide. FIFO clamping (engine.FIFOClock) pins every
//     message on a busy channel to the channel's high-water mark, and wave
//     workloads inject batches at shared instants. Events at one (shard,
//     time) are therefore stored as a run — one bucket holding the events
//     in scheduling order — and a run drains by bumping a head index, with
//     no re-heapify per event. Only when a bucket empties does its shard's
//     heap pop.
//
//  2. Zero-delay scheduling is common (Substrate.Enqueue, waiter wakeups).
//     An event scheduled for the current instant can never precede anything
//     already queued at that instant (sequence numbers only grow), so it
//     goes to a plain FIFO now-queue and costs an append and a slice read —
//     no heap at all.
//
// Determinism contract: the pop order is exactly the single-heap kernel's
// (at, seq) total order, proven by construction:
//
//   - Within a bucket, events append in seq order (seq is globally
//     monotone), so a run drains in seq order.
//   - Within a shard, the bucket map gives at most one bucket per time, so
//     the shard's 4-ary heap of (time, bucket) pairs needs no tie-break.
//   - Across shards, the top-level merge heap orders shard heads by
//     (at, head seq) — a total order, since seqs are globally unique.
//   - The now-queue only ever holds events scheduled while the clock
//     already stood at their timestamp; any event at the same time still
//     inside the shard heaps was scheduled strictly earlier (a positive
//     delay lands strictly later than now, so a shard-held event at time t
//     was pushed while the clock was before t) and so carries a smaller
//     seq. Draining shards-first at the current instant, then the
//     now-queue in FIFO order, is therefore exactly seq order.
//
// FuzzShardedKernelOracle cross-checks this against the single-heap kernel
// on arbitrary keyed op streams, and TestShardedKernelMatchesSingleHeap
// pins a long mixed workload.

// bucketEvent is one queued callback inside a time bucket. The timestamp
// lives on the bucket, so each event costs 32 bytes (seq, invoker, arg) —
// and nothing else on the record path, where the argument is a pooled
// delivery record rather than a fresh closure.
type bucketEvent struct {
	seq uint64
	do  func(any)
	arg any
}

// bucket is the run of events scheduled for one (shard, time). Buckets are
// pooled per shard: a drained bucket returns to the free list with its
// events slice retained, so steady-state scheduling allocates nothing.
type bucket struct {
	at     Time
	events []bucketEvent
	head   int
}

// bref is a shard-heap entry: the bucket's time plus its arena index,
// inlined so sift comparisons stay inside the heap array.
type bref struct {
	at  Time
	idx int32
}

// timeSlots sizes each shard's direct-mapped time→bucket cache. In-flight
// delays span a narrow window of instants (FIFO clamps, waits, link
// latencies, and travel times up to a few dozen ticks), so 256 slots keyed
// by the low time bits cover the live window nearly collision-free at 4KB
// per shard.
const timeSlots = 256

// timeSlot is one entry of the direct-mapped cache: the cached time and the
// arena index of its live bucket, idx < 0 when the entry is vacated. The
// zero value never matches a real push (events land strictly after time 0).
type timeSlot struct {
	at  Time
	idx int32
}

// shard owns the pending events of one key-partition: a 4-ary min-heap of
// time buckets (unique times, so ordered by time alone), the time→bucket
// index, and a bucket free list.
type shard struct {
	heap    []bref
	buckets []bucket
	free    []int32
	byTime  map[Time]int32
	// slots is a direct-mapped cache in front of byTime: if slots[h(at)]
	// holds (at, idx) with idx >= 0, then byTime[at] == idx. Retiring a
	// bucket vacates its slot, and a colliding insert just overwrites (the
	// displaced time is still in byTime), so a hit is authoritative. Most
	// pushes resolve here — an array probe instead of a map lookup.
	slots [timeSlots]timeSlot
}

// alloc takes a bucket from the free list (or grows the arena) for time at.
func (s *shard) alloc(at Time) int32 {
	var idx int32
	if n := len(s.free); n > 0 {
		idx = s.free[n-1]
		s.free = s.free[:n-1]
		b := &s.buckets[idx]
		b.at, b.head = at, 0
		b.events = b.events[:0]
	} else {
		idx = int32(len(s.buckets))
		s.buckets = append(s.buckets, bucket{at: at})
	}
	return idx
}

// pushHeap inserts br, sifting up with a hole. It reports whether br became
// the new minimum (the caller then fixes the top-level merge).
func (s *shard) pushHeap(br bref) bool {
	h := append(s.heap, br)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if br.at >= h[p].at {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = br
	s.heap = h
	return i == 0
}

// popHeap removes the minimum bref. The caller must ensure non-emptiness.
func (s *shard) popHeap() {
	h := s.heap
	n := len(h) - 1
	last := h[n]
	h = h[:n]
	if n > 0 {
		i := 0
		for {
			c := i<<2 + 1
			if c >= n {
				break
			}
			end := c + 4
			if end > n {
				end = n
			}
			best := c
			for j := c + 1; j < end; j++ {
				if h[j].at < h[best].at {
					best = j
				}
			}
			if h[best].at >= last.at {
				break
			}
			h[i] = h[best]
			i = best
		}
		h[i] = last
	}
	s.heap = h
}

// headKey returns the shard's minimum (at, seq); the shard must be
// non-empty.
func (s *shard) headKey() (Time, uint64) {
	b := &s.buckets[s.heap[0].idx]
	return b.at, b.events[b.head].seq
}

// mergeEnt is a top-level merge-heap entry: one non-empty shard plus a
// cached copy of its head key. Caching (at, seq) inline keeps merge
// comparisons inside the heap array — a few KB that stays in L1 — instead
// of chasing shard→heap→bucket→events pointers on every sift.
type mergeEnt struct {
	at    Time
	seq   uint64
	shard int32
}

// shardQueue is the sharded pending-event set: per-key shards plus the
// top-level merge heap and the current-instant now-queue.
type shardQueue struct {
	mask   int
	shards []shard

	// merge is a binary min-heap of non-empty shards ordered by cached head
	// (at, seq); pos[s] is shard s's position in merge, -1 when s is empty.
	// With at most a few hundred shards the whole structure stays within a
	// few cache lines, so fixing it per pop is far cheaper than sifting a
	// million-event heap.
	merge []mergeEnt
	pos   []int32

	size int // events held by shards (excludes the now-queue)

	nowQ    []bucketEvent
	nowHead int
}

func newShardQueue(shards int) *shardQueue {
	if shards < 1 {
		shards = 1
	}
	// Round up to a power of two so shard selection is a mask.
	n := 1
	for n < shards {
		n <<= 1
	}
	q := &shardQueue{mask: n - 1, shards: make([]shard, n), pos: make([]int32, n)}
	for i := range q.shards {
		q.shards[i].byTime = make(map[Time]int32)
		q.pos[i] = -1
	}
	return q
}

// less orders merge entries i and j by cached head (at, seq).
func (q *shardQueue) less(i, j int) bool {
	a, b := &q.merge[i], &q.merge[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (q *shardQueue) mergeSwap(i, j int) {
	q.merge[i], q.merge[j] = q.merge[j], q.merge[i]
	q.pos[q.merge[i].shard] = int32(i)
	q.pos[q.merge[j].shard] = int32(j)
}

func (q *shardQueue) mergeUp(i int) {
	for i > 0 {
		p := (i - 1) >> 1
		if !q.less(i, p) {
			break
		}
		q.mergeSwap(i, p)
		i = p
	}
}

func (q *shardQueue) mergeDown(i int) {
	n := len(q.merge)
	for {
		c := i<<1 + 1
		if c >= n {
			break
		}
		if c+1 < n && q.less(c+1, c) {
			c++
		}
		if !q.less(c, i) {
			break
		}
		q.mergeSwap(i, c)
		i = c
	}
}

func (q *shardQueue) mergeInsert(s int32, at Time, seq uint64) {
	q.merge = append(q.merge, mergeEnt{at: at, seq: seq, shard: s})
	q.pos[s] = int32(len(q.merge) - 1)
	q.mergeUp(len(q.merge) - 1)
}

func (q *shardQueue) mergeRemoveRoot() {
	s := q.merge[0].shard
	q.pos[s] = -1
	last := len(q.merge) - 1
	q.merge[0] = q.merge[last]
	q.merge = q.merge[:last]
	if last > 0 {
		q.pos[q.merge[0].shard] = 0
		q.mergeDown(0)
	}
}

// push inserts ev into the shard selected by key. at must be strictly after
// the kernel's current instant (the kernel routes at==now to the now-queue).
func (q *shardQueue) push(key int, ev event) {
	si := key & q.mask
	s := &q.shards[si]
	q.size++

	// A live bucket already holds this time: append to the run.
	slot := &s.slots[int(uint64(ev.at)&(timeSlots-1))]
	if slot.at == ev.at && slot.idx >= 0 {
		s.buckets[slot.idx].events = append(s.buckets[slot.idx].events, bucketEvent{seq: ev.seq, do: ev.do, arg: ev.arg})
		return
	}
	if idx, ok := s.byTime[ev.at]; ok {
		s.buckets[idx].events = append(s.buckets[idx].events, bucketEvent{seq: ev.seq, do: ev.do, arg: ev.arg})
		slot.at, slot.idx = ev.at, idx
		return
	}
	idx := s.alloc(ev.at)
	s.buckets[idx].events = append(s.buckets[idx].events, bucketEvent{seq: ev.seq, do: ev.do, arg: ev.arg})
	s.byTime[ev.at] = idx
	slot.at, slot.idx = ev.at, idx
	wasEmpty := len(s.heap) == 0
	newMin := s.pushHeap(bref{at: ev.at, idx: idx})
	switch {
	case wasEmpty:
		q.mergeInsert(int32(si), ev.at, ev.seq)
	case newMin:
		p := int(q.pos[si])
		q.merge[p].at, q.merge[p].seq = ev.at, ev.seq
		q.mergeUp(p)
	}
}

// peek returns the earliest shard-held (at, seq) without removing it.
func (q *shardQueue) peek() (Time, uint64, bool) {
	if len(q.merge) == 0 {
		return 0, 0, false
	}
	return q.merge[0].at, q.merge[0].seq, true
}

// pop removes and returns the earliest shard-held event. The caller must
// ensure the merge heap is non-empty.
func (q *shardQueue) pop() event {
	si := q.merge[0].shard
	s := &q.shards[si]
	idx := s.heap[0].idx
	b := &s.buckets[idx]
	be := b.events[b.head]
	b.events[b.head] = bucketEvent{} // release the callback references
	b.head++
	q.size--

	ev := event{at: b.at, seq: be.seq, do: be.do, arg: be.arg}
	if b.head < len(b.events) {
		// The run continues: only the head seq changed, and it grew, so the
		// shard can only move deeper in the merge heap.
		q.merge[0].seq = b.events[b.head].seq
		q.mergeDown(0)
		return ev
	}
	// Bucket drained: retire it and advance the shard to its next time.
	delete(s.byTime, b.at)
	if slot := &s.slots[int(uint64(b.at)&(timeSlots-1))]; slot.at == b.at {
		slot.idx = -1
	}
	s.free = append(s.free, idx)
	s.popHeap()
	if len(s.heap) == 0 {
		q.mergeRemoveRoot()
	} else {
		q.merge[0].at, q.merge[0].seq = s.headKey()
		q.mergeDown(0)
	}
	return ev
}

// pending counts all queued events, including the current-instant run.
func (q *shardQueue) pending() int {
	return q.size + (len(q.nowQ) - q.nowHead)
}

// pushNow appends an event scheduled for the kernel's current instant.
func (q *shardQueue) pushNow(do func(any), arg any) {
	q.nowQ = append(q.nowQ, bucketEvent{do: do, arg: arg})
}

// popNow removes the front of the now-queue; the caller checks emptiness.
func (q *shardQueue) popNow() (func(any), any) {
	be := q.nowQ[q.nowHead]
	q.nowQ[q.nowHead] = bucketEvent{}
	q.nowHead++
	if q.nowHead == len(q.nowQ) {
		q.nowQ = q.nowQ[:0]
		q.nowHead = 0
	}
	return be.do, be.arg
}
