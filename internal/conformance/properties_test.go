package conformance

import (
	"testing"

	"mobiledist/internal/core"
	"mobiledist/internal/cost"
	"mobiledist/internal/mutex/ring"
)

// probe is a minimal algorithm giving scenarios a Context and delivery
// hooks. Hooks run on the substrate's execution context.
type probe struct {
	onMH func(ctx core.Context, at core.MHID, msg core.Message)
}

func (p *probe) Name() string { return "conformance-probe" }

func (p *probe) HandleMSS(core.Context, core.MSSID, core.From, core.Message) {}

func (p *probe) HandleMH(ctx core.Context, at core.MHID, msg core.Message) {
	if p.onMH != nil {
		p.onMH(ctx, at, msg)
	}
}

// runMutexScenario drives the R2 token mutex with k requesters over two
// traversals and returns per-MH critical-section entry counts plus the
// maximum number of simultaneous holders observed.
func runMutexScenario(t *testing.T, d driver, k int) (entries map[core.MHID]int, maxHolders int) {
	t.Helper()
	entries = make(map[core.MHID]int)
	holders := 0
	opts := ring.Options{
		Hold: 2,
		OnEnter: func(mh core.MHID) {
			holders++
			if holders > maxHolders {
				maxHolders = holders
			}
			entries[mh]++
		},
		OnExit: func(mh core.MHID) { holders-- },
	}
	r2, err := ring.NewR2(d.registrar(), ring.VariantCounter, opts, 2, nil)
	if err != nil {
		t.Fatalf("NewR2: %v", err)
	}
	d.start()
	d.do(func() {
		for i := 0; i < k; i++ {
			if err := r2.Request(core.MHID(i)); err != nil {
				t.Errorf("Request: %v", err)
			}
		}
	})
	d.pause(t) // let the requests reach their stations
	d.do(func() {
		if err := r2.Start(); err != nil {
			t.Errorf("Start: %v", err)
		}
	})
	d.settle(t)
	// Snapshot on the execution context so reads don't race the executor.
	var snapEntries map[core.MHID]int
	var snapMax int
	d.do(func() {
		snapEntries = make(map[core.MHID]int, len(entries))
		for mh, c := range entries {
			snapEntries[mh] = c
		}
		snapMax = maxHolders
	})
	return snapEntries, snapMax
}

// TestConformanceSingleCSHolder: under the R2 token mutex, no two mobile
// hosts are ever inside the critical section at once — on either substrate.
func TestConformanceSingleCSHolder(t *testing.T) {
	forEachSubstrate(t, 5, 10, func(t *testing.T, d driver) {
		_, maxHolders := runMutexScenario(t, d, 4)
		if maxHolders != 1 {
			t.Errorf("max simultaneous CS holders = %d, want 1", maxHolders)
		}
	})
}

// TestConformanceTokenGrantUniqueness: the single circulating token grants
// each pending request exactly once — no request is lost or served twice.
func TestConformanceTokenGrantUniqueness(t *testing.T) {
	const k = 4
	forEachSubstrate(t, 5, 10, func(t *testing.T, d driver) {
		entries, _ := runMutexScenario(t, d, k)
		for i := 0; i < k; i++ {
			if got := entries[core.MHID(i)]; got != 1 {
				t.Errorf("mh%d entered the critical section %d times, want 1", i, got)
			}
		}
		if len(entries) != k {
			t.Errorf("%d distinct MHs entered, want %d", len(entries), k)
		}
	})
}

// TestConformancePerPairFIFO: messages between one ordered MH pair are
// delivered in send order on both substrates.
func TestConformancePerPairFIFO(t *testing.T) {
	const k = 24
	forEachSubstrate(t, 3, 6, func(t *testing.T, d driver) {
		var received []int
		p := &probe{onMH: func(_ core.Context, at core.MHID, msg core.Message) {
			if at == 1 {
				received = append(received, msg.(int))
			}
		}}
		ctx := d.registrar().Register(p)
		d.start()
		d.do(func() {
			for i := 0; i < k; i++ {
				if err := ctx.SendMHToMH(0, 1, i, cost.CatAlgorithm); err != nil {
					t.Errorf("SendMHToMH: %v", err)
				}
			}
		})
		d.settle(t)
		var snap []int
		d.do(func() { snap = append(snap, received...) })
		if len(snap) != k {
			t.Fatalf("received %d messages, want %d", len(snap), k)
		}
		for i, v := range snap {
			if v != i {
				t.Fatalf("received[%d] = %d, want %d (FIFO violated)", i, v, i)
			}
		}
	})
}

// TestConformancePrefixDeliveryAcrossMoves: a stream sent to a MH that moves
// twice mid-stream still arrives complete and in order — the paper's prefix
// semantics: what is delivered is always a prefix of what was sent, and
// after the network settles the prefix is the whole stream.
func TestConformancePrefixDeliveryAcrossMoves(t *testing.T) {
	const batch = 8
	forEachSubstrate(t, 3, 6, func(t *testing.T, d driver) {
		var received []int
		p := &probe{onMH: func(_ core.Context, at core.MHID, msg core.Message) {
			if at == 1 {
				received = append(received, msg.(int))
			}
		}}
		ctx := d.registrar().Register(p)
		d.start()
		send := func(from, to int) {
			d.do(func() {
				for i := from; i < to; i++ {
					if err := ctx.SendMHToMH(0, 1, i, cost.CatAlgorithm); err != nil {
						t.Errorf("SendMHToMH: %v", err)
					}
				}
			})
		}
		send(0, batch)
		d.move(1, 2) // mh1 starts at mss1 (round-robin); race the stream
		send(batch, 2*batch)
		d.pause(t)
		d.move(1, 0)
		send(2*batch, 3*batch)
		d.settle(t)
		var snap []int
		d.do(func() { snap = append(snap, received...) })
		if len(snap) != 3*batch {
			t.Fatalf("received %d messages, want %d (stream lost across moves)", len(snap), 3*batch)
		}
		for i, v := range snap {
			if v != i {
				t.Fatalf("received[%d] = %d, want %d (prefix order violated)", i, v, i)
			}
		}
	})
}

// TestConformanceMobilityStatePartitioning: after churn settles, every MH is
// in exactly one cell's local list XOR exactly one cell's disconnected set —
// never both, never more than one of either.
func TestConformanceMobilityStatePartitioning(t *testing.T) {
	const (
		m = 4
		n = 8
	)
	forEachSubstrate(t, m, n, func(t *testing.T, d driver) {
		ctx := d.registrar().Register(&probe{})
		d.start()
		d.move(0, 3)
		d.disconnect(1)
		d.move(2, 0)
		d.disconnect(3)
		d.pause(t)
		d.reconnect(1, 2) // reconnect in a different cell than it left
		d.move(0, 1)
		d.settle(t)
		d.do(func() {
			for mh := 0; mh < n; mh++ {
				localIn, discIn := 0, 0
				for mss := 0; mss < m; mss++ {
					if ctx.IsLocal(core.MSSID(mss), core.MHID(mh)) {
						localIn++
					}
					if ctx.IsDisconnectedHere(core.MSSID(mss), core.MHID(mh)) {
						discIn++
					}
				}
				if localIn > 1 || discIn > 1 || localIn+discIn != 1 {
					t.Errorf("mh%d: member of %d local lists and %d disconnected sets, want exactly one of exactly one",
						mh, localIn, discIn)
				}
			}
		})
		st := d.stats()
		if st.Moves != 3 || st.Disconnects != 2 || st.Reconnects != 1 {
			t.Errorf("stats = %d moves / %d disconnects / %d reconnects, want 3/2/1",
				st.Moves, st.Disconnects, st.Reconnects)
		}
	})
}
