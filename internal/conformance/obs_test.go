package conformance

import (
	"strings"
	"testing"

	"mobiledist/internal/core"
	"mobiledist/internal/netrt"
	"mobiledist/internal/obs"
	"mobiledist/internal/rt"
)

// TestMobilityTraceAgreesAcrossSubstrates pins the observability seam to
// the model, not the substrate: the same scripted mobility workload must
// produce the identical subsequence of mobility events (leave, join,
// disconnect, reconnect, handoff) on the simulator, the live runtime, and
// the TCP-backed network runtime. Timestamps differ — the sim clock is
// virtual, the live clocks are op counters — so events are compared in
// their timeless canonical form. Settling between steps fixes the order in
// which concurrent traffic lands, which is what makes the full subsequence
// (not just the multiset) comparable.
func TestMobilityTraceAgreesAcrossSubstrates(t *testing.T) {
	const m, n = 3, 5

	script := func(t *testing.T, d driver) {
		d.start()
		steps := []func(){
			func() { d.move(0, 1) },
			func() { d.move(4, 0) },
			func() { d.disconnect(2) },
			func() { d.move(0, 2) },
			func() { d.reconnect(2, 0) }, // every reconnect runs the handoff exchange
			func() { d.disconnect(3) },
			func() { d.reconnect(3, 0) },
			func() { d.move(2, 1) },
		}
		for _, step := range steps {
			step()
			d.settle(t)
		}
	}

	capture := func(t *testing.T, d driver, tracer *obs.Tracer) []string {
		t.Helper()
		script(t, d)
		events := obs.Filter(tracer.Events(), obs.KindFilter(obs.MobilityKinds()...))
		return obs.Lines(events, false)
	}

	simTracer := obs.NewTracer(0)
	simCfg := core.DefaultConfig(m, n)
	simCfg.Obs = simTracer
	simD := &simDriver{sys: core.MustNewSystem(simCfg)}
	simLines := capture(t, simD, simTracer)
	simD.stop()

	liveTracer := obs.NewTracer(0)
	liveCfg := rt.DefaultConfig(m, n)
	liveCfg.Obs = liveTracer
	liveSys, err := rt.NewSystem(liveCfg)
	if err != nil {
		t.Fatalf("rt.NewSystem: %v", err)
	}
	liveD := &liveDriver{sys: liveSys}
	liveLines := capture(t, liveD, liveTracer)
	liveD.stop()

	netTracer := obs.NewTracer(0)
	netCfg := netrt.DefaultConfig(m, n)
	netCfg.Obs = netTracer
	lb, err := netrt.StartLoopback(netCfg)
	if err != nil {
		t.Fatalf("netrt.StartLoopback: %v", err)
	}
	netD := &netDriver{t: t, lb: lb}
	netLines := capture(t, netD, netTracer)
	netD.stop()

	if len(simLines) == 0 {
		t.Fatal("sim trace captured no mobility events")
	}
	if strings.Join(simLines, "\n") != strings.Join(liveLines, "\n") {
		t.Errorf("mobility event sequences diverge:\nsim:\n  %s\nlive:\n  %s",
			strings.Join(simLines, "\n  "), strings.Join(liveLines, "\n  "))
	}
	if strings.Join(simLines, "\n") != strings.Join(netLines, "\n") {
		t.Errorf("mobility event sequences diverge:\nsim:\n  %s\nnet:\n  %s",
			strings.Join(simLines, "\n  "), strings.Join(netLines, "\n  "))
	}

	// The script is explicit about what it did; check the multiset too so a
	// diff failure above comes with an interpretable baseline.
	counts := map[string]int{}
	for _, l := range simLines {
		counts[strings.Fields(l)[0]]++
	}
	if counts["leave"] != 4 || counts["disconnect"] != 2 || counts["reconnect"] != 2 || counts["handoff"] != 2 {
		t.Errorf("unexpected mobility multiset: %v", counts)
	}
}
