// Package conformance is the cross-substrate test suite of the two-tier
// model: every property here is asserted against ALL four network drivers —
// the deterministic simulator (internal/core on the sim kernel), the live
// goroutine runtime (internal/rt), and the network runtime (internal/netrt
// on loopback sockets) over both its substrates: TCP streams and
// authenticated UDP datagram sessions (internal/dgram) — through one driver
// abstraction. Since all of them bind the same internal/engine, these tests
// pin the substrate adapters: scheduling, FIFO transport, and
// execution-context discipline must not change what the protocol does, only
// when wall-clock-wise it happens.
package conformance

import (
	"testing"
	"time"

	"mobiledist/internal/core"
	"mobiledist/internal/cost"
	"mobiledist/internal/engine"
	"mobiledist/internal/faults"
	"mobiledist/internal/netrt"
	"mobiledist/internal/rt"
)

const idleTimeout = 10 * time.Second

// driver abstracts one substrate for scenario scripts. The lifecycle is
// register (build phase) → start → any mix of do/mobility/pause → settle →
// reads → stop.
type driver interface {
	name() string
	// registrar hosts algorithm constructors during the build phase.
	registrar() core.Registrar
	start()
	// do runs fn on the substrate's execution context. Side effects (sends,
	// timers) may still be in flight when it returns.
	do(fn func())
	// pause lets currently in-flight traffic land before the next step.
	pause(t *testing.T)
	// settle drains the network completely.
	settle(t *testing.T)
	move(mh core.MHID, to core.MSSID)
	disconnect(mh core.MHID)
	reconnect(mh core.MHID, at core.MSSID)
	meter() *cost.Meter
	stats() engine.Stats
	// injector returns the fault injector, or nil on a fault-free driver.
	// After start, touch it only inside do.
	injector() *faults.Injector
	stop()
}

// simDriver binds scenarios to the deterministic simulator. Actions inject
// immediately (the kernel is idle between Run calls, so direct engine calls
// are the build-phase/event-context calling convention); settle pumps the
// event loop dry.
type simDriver struct {
	sys *core.System
}

func newSimDriver(m, n int) *simDriver {
	return newSimFaultDriver(m, n, nil)
}

// newSimFaultDriver builds a simulator driver running under plan (nil for
// fault-free).
func newSimFaultDriver(m, n int, plan *core.FaultPlan) *simDriver {
	cfg := core.DefaultConfig(m, n)
	cfg.Faults = plan
	return &simDriver{sys: core.MustNewSystem(cfg)}
}

func (d *simDriver) name() string                          { return "sim" }
func (d *simDriver) registrar() core.Registrar             { return d.sys }
func (d *simDriver) start()                                {}
func (d *simDriver) do(fn func())                          { fn() }
func (d *simDriver) move(mh core.MHID, to core.MSSID)      { _ = d.sys.Move(mh, to) }
func (d *simDriver) disconnect(mh core.MHID)               { _ = d.sys.Disconnect(mh) }
func (d *simDriver) reconnect(mh core.MHID, at core.MSSID) { _ = d.sys.Reconnect(mh, at, true) }
func (d *simDriver) meter() *cost.Meter                    { return d.sys.Meter() }
func (d *simDriver) stats() engine.Stats                   { return d.sys.Stats() }
func (d *simDriver) injector() *faults.Injector            { return d.sys.Injector() }
func (d *simDriver) stop()                                 {}

func (d *simDriver) pause(t *testing.T) {
	t.Helper()
	if err := d.sys.RunUntil(d.sys.Now() + 200); err != nil {
		t.Fatalf("sim pause: %v", err)
	}
}

func (d *simDriver) settle(t *testing.T) {
	t.Helper()
	if err := d.sys.Run(); err != nil {
		t.Fatalf("sim settle: %v", err)
	}
}

// liveDriver binds scenarios to the goroutine runtime.
type liveDriver struct {
	sys *rt.System
}

func newLiveDriver(t *testing.T, m, n int) *liveDriver {
	t.Helper()
	return newLiveFaultDriver(t, m, n, nil)
}

// newLiveFaultDriver builds a live driver running under plan (nil for
// fault-free).
func newLiveFaultDriver(t *testing.T, m, n int, plan *core.FaultPlan) *liveDriver {
	t.Helper()
	cfg := rt.DefaultConfig(m, n)
	cfg.Faults = plan
	sys, err := rt.NewSystem(cfg)
	if err != nil {
		t.Fatalf("rt.NewSystem: %v", err)
	}
	return &liveDriver{sys: sys}
}

func (d *liveDriver) name() string                          { return "live" }
func (d *liveDriver) registrar() core.Registrar             { return d.sys }
func (d *liveDriver) start()                                { d.sys.Start() }
func (d *liveDriver) do(fn func())                          { d.sys.Do(fn) }
func (d *liveDriver) move(mh core.MHID, to core.MSSID)      { d.sys.Move(mh, to) }
func (d *liveDriver) disconnect(mh core.MHID)               { d.sys.Disconnect(mh) }
func (d *liveDriver) reconnect(mh core.MHID, at core.MSSID) { d.sys.Reconnect(mh, at) }
func (d *liveDriver) meter() *cost.Meter                    { return d.sys.Meter() }
func (d *liveDriver) stats() engine.Stats                   { return d.sys.Stats() }
func (d *liveDriver) injector() *faults.Injector            { return d.sys.Injector() }
func (d *liveDriver) stop()                                 { d.sys.Stop() }

func (d *liveDriver) pause(t *testing.T) {
	t.Helper()
	if !d.sys.WaitIdle(idleTimeout) {
		t.Fatal("live pause: network did not drain")
	}
}

func (d *liveDriver) settle(t *testing.T) {
	t.Helper()
	if !d.sys.WaitIdle(idleTimeout) {
		t.Fatal("live settle: network did not drain")
	}
}

// netDriver binds scenarios to the socket-backed network runtime: a full
// loopback cluster (hub + M relay nodes + N MH clients) whose traffic
// crosses real sockets — TCP streams or authenticated UDP datagram
// sessions, per the transport field. Same engine, real links.
type netDriver struct {
	t         *testing.T
	lb        *netrt.Loopback
	transport string
}

func newNetDriver(t *testing.T, m, n int) *netDriver {
	t.Helper()
	return newNetFaultDriver(t, m, n, nil)
}

// newNetFaultDriver builds a loopback-cluster driver running under plan
// (nil for fault-free) on the TCP substrate.
func newNetFaultDriver(t *testing.T, m, n int, plan *core.FaultPlan) *netDriver {
	t.Helper()
	return newNetTransportDriver(t, m, n, plan, netrt.TransportTCP)
}

// newNetTransportDriver builds a loopback-cluster driver on the named
// socket substrate ("tcp" or "udp").
func newNetTransportDriver(t *testing.T, m, n int, plan *core.FaultPlan, transport string) *netDriver {
	t.Helper()
	cfg := netrt.DefaultConfig(m, n)
	cfg.Faults = plan
	cfg.Transport = transport
	lb, err := netrt.StartLoopback(cfg)
	if err != nil {
		t.Fatalf("netrt.StartLoopback(%s): %v", transport, err)
	}
	return &netDriver{t: t, lb: lb, transport: transport}
}

func (d *netDriver) name() string {
	if d.transport == netrt.TransportUDP {
		return "netudp"
	}
	return "net"
}
func (d *netDriver) registrar() core.Registrar { return d.lb.Sys }

func (d *netDriver) start() {
	d.lb.Sys.Start()
	if !d.lb.Sys.WaitReady(idleTimeout) {
		d.t.Fatal("net start: cluster did not become ready")
	}
}

func (d *netDriver) do(fn func())                          { d.lb.Sys.Do(fn) }
func (d *netDriver) move(mh core.MHID, to core.MSSID)      { d.lb.Sys.Move(mh, to) }
func (d *netDriver) disconnect(mh core.MHID)               { d.lb.Sys.Disconnect(mh) }
func (d *netDriver) reconnect(mh core.MHID, at core.MSSID) { d.lb.Sys.Reconnect(mh, at) }
func (d *netDriver) meter() *cost.Meter                    { return d.lb.Sys.Meter() }
func (d *netDriver) stats() engine.Stats                   { return d.lb.Sys.Stats() }
func (d *netDriver) injector() *faults.Injector            { return d.lb.Sys.Injector() }
func (d *netDriver) stop()                                 { d.lb.Stop() }

func (d *netDriver) pause(t *testing.T) {
	t.Helper()
	if !d.lb.Sys.WaitIdle(idleTimeout) {
		t.Fatal("net pause: network did not drain")
	}
}

func (d *netDriver) settle(t *testing.T) {
	t.Helper()
	if !d.lb.Sys.WaitIdle(idleTimeout) {
		t.Fatal("net settle: network did not drain")
	}
}

// forEachSubstrate runs scenario once per substrate as a subtest.
func forEachSubstrate(t *testing.T, m, n int, scenario func(t *testing.T, d driver)) {
	forEachSubstrateFaults(t, m, n, nil, scenario)
}

// forEachSubstrateFaults runs scenario once per substrate under the given
// fault plan (nil for fault-free).
func forEachSubstrateFaults(t *testing.T, m, n int, plan *core.FaultPlan, scenario func(t *testing.T, d driver)) {
	t.Run("sim", func(t *testing.T) {
		d := newSimFaultDriver(m, n, plan)
		defer d.stop()
		scenario(t, d)
	})
	t.Run("live", func(t *testing.T) {
		d := newLiveFaultDriver(t, m, n, plan)
		defer d.stop()
		scenario(t, d)
	})
	t.Run("net", func(t *testing.T) {
		d := newNetFaultDriver(t, m, n, plan)
		defer d.stop()
		scenario(t, d)
	})
	t.Run("netudp", func(t *testing.T) {
		d := newNetTransportDriver(t, m, n, plan, netrt.TransportUDP)
		defer d.stop()
		scenario(t, d)
	})
}

func mhRange(n int) []core.MHID {
	ids := make([]core.MHID, n)
	for i := range ids {
		ids[i] = core.MHID(i)
	}
	return ids
}
