package conformance

// Crash conformance: the network runtime's crash-recovery machinery —
// heartbeat liveness, generation-fenced resync, parked deliveries — driven
// against REAL process-style crashes: relay nodes are killed outright
// (every socket torn down, every goroutine gone) and replaced by fresh
// incarnations, while a seeded socket nemesis (internal/nemesis) keeps the
// surviving links under latency, stall, and reset weather. The invariants
// are the same ones the fault-free and chaos suites pin — per-pair FIFO,
// prefix delivery across moves, single CS holder, exactly one token
// regeneration — because crash recovery must change when things happen,
// never what the protocol does.
//
// These scenarios are net-substrate only: killing a process has no sim or
// live analogue (those substrates have no processes to kill — the model
// level covers them through internal/faults crash plans, see chaos_test.go).
//
// `make chaos-net` runs exactly these tests (the TestCrash prefix) plus the
// nemesis package's determinism suite, under the race detector.

import (
	"sync"
	"testing"
	"time"

	"mobiledist/internal/core"
	"mobiledist/internal/cost"
	"mobiledist/internal/mutex/ring"
	"mobiledist/internal/nemesis"
	"mobiledist/internal/netrt"
	"mobiledist/internal/sim"
	"mobiledist/internal/wire"
)

// crashNet is a loopback cluster with crash-test liveness clocks and an
// optional nemesis proxy fleet interposed between every dialler and
// listener via netrt's WrapAddr seam.
type crashNet struct {
	t  *testing.T
	lb *netrt.Loopback

	mu      sync.Mutex
	proxies []*nemesis.Proxy
}

// startCrashNet launches an m×n loopback cluster with tightened liveness
// timing (dead verdicts in ~150ms instead of the production half-second).
// planFor (nil: no nemesis) maps a dialled endpoint name ("hub", "mss0",
// ...) to a nemesis plan; returning a non-nil plan interposes a proxy on
// that address.
func startCrashNet(t *testing.T, m, n int, plan *core.FaultPlan, planFor func(name string) *nemesis.Plan) *crashNet {
	t.Helper()
	cn := &crashNet{t: t}
	cfg := netrt.DefaultConfig(m, n)
	cfg.Faults = plan
	cfg.HeartbeatEvery = 10 * time.Millisecond
	cfg.SuspectAfter = 2
	cfg.DeadAfter = 150 * time.Millisecond
	if planFor != nil {
		cfg.WrapAddr = func(name, addr string) string {
			p := planFor(name)
			if p == nil {
				return addr
			}
			px, err := nemesis.New(addr, *p)
			if err != nil {
				t.Fatalf("nemesis.New(%s): %v", name, err)
			}
			cn.mu.Lock()
			cn.proxies = append(cn.proxies, px)
			cn.mu.Unlock()
			return px.Addr()
		}
	}
	lb, err := netrt.StartLoopback(cfg)
	if err != nil {
		cn.stopProxies()
		t.Fatalf("netrt.StartLoopback: %v", err)
	}
	cn.lb = lb
	return cn
}

func (cn *crashNet) stopProxies() {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	for _, px := range cn.proxies {
		px.Stop()
	}
}

func (cn *crashNet) stop() {
	cn.lb.Stop()
	cn.stopProxies()
}

// disturbances totals the socket-level disturbances the nemesis injected.
func (cn *crashNet) disturbances() int {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	total := 0
	for _, px := range cn.proxies {
		total += len(px.Disturbances())
	}
	return total
}

// waitState polls the hub's liveness verdict on peer (role, id).
func (cn *crashNet) waitState(role wire.Role, id int, want netrt.PeerState) {
	cn.t.Helper()
	deadline := time.Now().Add(idleTimeout)
	for time.Now().Before(deadline) {
		if cn.lb.Sys.PeerStateOf(role, id) == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	cn.t.Fatalf("peer %v/%d never reached %v (now %v)",
		role, id, want, cn.lb.Sys.PeerStateOf(role, id))
}

func (cn *crashNet) ready() {
	cn.t.Helper()
	if !cn.lb.Sys.WaitReady(idleTimeout) {
		cn.t.Fatal("crash net: cluster did not become ready")
	}
}

func (cn *crashNet) settle() {
	cn.t.Helper()
	if !cn.lb.Sys.WaitIdle(idleTimeout) {
		cn.t.Fatal("crash net: network did not drain")
	}
}

func (cn *crashNet) restartNode(i int) {
	cn.t.Helper()
	if err := cn.lb.RestartNode(i); err != nil {
		cn.t.Fatalf("RestartNode(%d): %v", i, err)
	}
}

// gentleNemesis is socket weather safe for every link class: latency on all
// bytes plus brief stalls everywhere, and connection resets on the hub's
// links only. Resets are confined to the hub because only hub links have a
// resync authority that replays frames lost in a severed connection's send
// buffer; mesh links between live stations retry unwritten frames but
// cannot recover buffered ones (DESIGN.md §11 records the limitation).
func gentleNemesis(seed uint64) func(name string) *nemesis.Plan {
	return func(name string) *nemesis.Plan {
		p := &nemesis.Plan{
			Seed:         seed,
			Quantum:      512,
			LatencyMinUS: 50,
			LatencyMaxUS: 400,
			StallProb:    0.02,
			StallUS:      2000,
		}
		if name == "hub" {
			p.ResetProb = 0.01
		}
		return p
	}
}

// TestCrashFIFOAcrossNodeRestart: an ordered MH→MH stream continues across
// the death and replacement of the receiver's serving station, with the
// nemesis disturbing every link the whole time. Exactly-once, in-order —
// the resync replay must fill the crash hole without duplicating what
// already arrived.
func TestCrashFIFOAcrossNodeRestart(t *testing.T) {
	const batch = 8
	cn := startCrashNet(t, 3, 6, nil, gentleNemesis(0xD15EA5E))
	defer cn.stop()

	var received []int
	p := &probe{onMH: func(_ core.Context, at core.MHID, msg core.Message) {
		if at == 1 {
			received = append(received, msg.(int))
		}
	}}
	ctx := cn.lb.Sys.Register(p)
	cn.lb.Sys.Start()
	cn.ready()

	send := func(from, to int) {
		cn.lb.Sys.Do(func() {
			for i := from; i < to; i++ {
				if err := ctx.SendMHToMH(0, 1, i, cost.CatAlgorithm); err != nil {
					t.Errorf("SendMHToMH: %v", err)
				}
			}
		})
	}
	send(0, batch)
	cn.settle()

	// Round-robin placement puts mh1 in cell 1: kill its serving station.
	cn.lb.KillNode(1)
	cn.waitState(wire.RoleMSS, 1, netrt.PeerDead)
	send(batch, 2*batch) // wedges toward the dead cell until the resync
	cn.restartNode(1)
	cn.waitState(wire.RoleMSS, 1, netrt.PeerAlive)
	send(2*batch, 3*batch)
	cn.settle()

	var snap []int
	cn.lb.Sys.Do(func() { snap = append(snap, received...) })
	if len(snap) != 3*batch {
		t.Fatalf("received %d of %d messages across the crash", len(snap), 3*batch)
	}
	for i, v := range snap {
		if v != i {
			t.Fatalf("received[%d] = %d, want %d (lost or double-applied)", i, v, i)
		}
	}
	if cn.disturbances() == 0 {
		t.Error("nemesis injected no disturbances during the run")
	}
}

// TestCrashPrefixAcrossMovesAndRestart: the prefix-delivery guarantee for a
// roaming receiver holds when the vacated station dies and is replaced
// mid-stream — and the cluster keeps serving traffic that doesn't touch
// the dead station while it is down.
func TestCrashPrefixAcrossMovesAndRestart(t *testing.T) {
	const batch = 8
	cn := startCrashNet(t, 3, 6, nil, gentleNemesis(0xBADCAB))
	defer cn.stop()

	var received []int
	p := &probe{onMH: func(_ core.Context, at core.MHID, msg core.Message) {
		if at == 1 {
			received = append(received, msg.(int))
		}
	}}
	ctx := cn.lb.Sys.Register(p)
	cn.lb.Sys.Start()
	cn.ready()

	send := func(from, to int) {
		cn.lb.Sys.Do(func() {
			for i := from; i < to; i++ {
				if err := ctx.SendMHToMH(0, 1, i, cost.CatAlgorithm); err != nil {
					t.Errorf("SendMHToMH: %v", err)
				}
			}
		})
	}
	send(0, batch)
	cn.lb.Sys.Move(1, 2) // receiver roams out of cell 1
	send(batch, 2*batch)
	cn.settle()

	// The vacated station dies; the stream (now mss0 → mss2 → mh1) keeps
	// flowing around the hole, then the receiver moves home again once a
	// fresh incarnation is up.
	cn.lb.KillNode(1)
	cn.waitState(wire.RoleMSS, 1, netrt.PeerDead)
	send(2*batch, 3*batch)
	cn.restartNode(1)
	cn.waitState(wire.RoleMSS, 1, netrt.PeerAlive)
	cn.lb.Sys.Move(1, 1)
	send(3*batch, 4*batch)
	cn.settle()

	var snap []int
	cn.lb.Sys.Do(func() { snap = append(snap, received...) })
	if len(snap) != 4*batch {
		t.Fatalf("received %d of %d messages (stream lost across moves + crash)", len(snap), 4*batch)
	}
	for i, v := range snap {
		if v != i {
			t.Fatalf("received[%d] = %d, want %d (prefix order violated)", i, v, i)
		}
	}
}

// TestCrashTokenRecoveryUnderNemesis is the full-stack version of
// TestChaosTokenRecovery: the model-level crash plan swallows the ring
// token at MSS 2 while the SAME station's relay process is killed at the
// socket level, with nemesis weather on every link. The R2 recovery
// sublayer must regenerate exactly one token, serve every live requester
// exactly once, and never break mutual exclusion — through real dead
// sockets, parked deliveries, and a generation-fenced restart.
func TestCrashTokenRecoveryUnderNemesis(t *testing.T) {
	const suspicionLag = sim.Time(2000)
	plan := &core.FaultPlan{
		Seed:    11,
		Crashes: []core.Crash{{MSS: 2, At: 1, RestartAt: 2500}},
	}
	cn := startCrashNet(t, 4, 8, plan, gentleNemesis(0x7EA))
	defer cn.stop()

	entries := make(map[core.MHID]int)
	holders, maxHolders := 0, 0
	inj := cn.lb.Sys.Injector()
	opts := ring.Options{
		Hold: 2,
		OnEnter: func(mh core.MHID) {
			holders++
			if holders > maxHolders {
				maxHolders = holders
			}
			entries[mh]++
		},
		OnExit: func(mh core.MHID) { holders-- },
		Recovery: &ring.TokenRecovery{
			ProbeEvery: 300,
			Timeout:    1000,
			Suspect: func(s core.MSSID, now sim.Time) bool {
				since, down := inj.DownSince(s)
				return down && now-since > suspicionLag
			},
		},
	}
	r2, err := ring.NewR2(cn.lb.Sys, ring.VariantCounter, opts, 4, nil)
	if err != nil {
		t.Fatalf("NewR2: %v", err)
	}
	cn.lb.Sys.Start()
	cn.ready()

	// Mirror the model-level crash at the socket level: the station's relay
	// process dies for real before the token ever reaches it.
	cn.lb.KillNode(2)
	cn.lb.Sys.Do(func() {
		inj.OnRestart(func(mss core.MSSID) { r2.NoteRestart(mss) })
		inj.Arm()
		// Requesters sit in live cells only (round-robin: mh0→mss0,
		// mh1→mss1, mh3→mss3), matching the protocol's scope.
		for _, mh := range []core.MHID{0, 1, 3} {
			if err := r2.Request(mh); err != nil {
				t.Errorf("Request: %v", err)
			}
		}
		if err := r2.Start(); err != nil {
			t.Errorf("Start: %v", err)
		}
	})
	cn.waitState(wire.RoleMSS, 2, netrt.PeerDead)
	// A fresh incarnation replaces the process; the model-level injector
	// restarts the station on its own virtual schedule (RestartAt).
	cn.restartNode(2)
	cn.waitState(wire.RoleMSS, 2, netrt.PeerAlive)
	cn.settle()

	var regens, stale, crashDiscards int64
	var snapEntries map[core.MHID]int
	var snapMax int
	cn.lb.Sys.Do(func() {
		regens = r2.Regenerations()
		stale = r2.StaleTokensDropped()
		crashDiscards = inj.Stats().CrashDiscards
		snapEntries = make(map[core.MHID]int, len(entries))
		for mh, c := range entries {
			snapEntries[mh] = c
		}
		snapMax = maxHolders
	})
	if regens != 1 {
		t.Errorf("token regenerations = %d, want exactly 1 (counted, never two)", regens)
	}
	if snapMax > 1 {
		t.Errorf("max simultaneous CS holders = %d under crash recovery, want <= 1", snapMax)
	}
	for _, mh := range []core.MHID{0, 1, 3} {
		if got := snapEntries[mh]; got != 1 {
			t.Errorf("mh%d entered the critical section %d times, want 1", int(mh), got)
		}
	}
	// The original token disappeared one of two ways, depending on which
	// layer's crash won the race: discarded by the model-level injector
	// inside its crash window, or parked at the dead transport and dropped
	// as stale when the resync replayed it after regeneration. Either way
	// there must be evidence of the swallow.
	if stale+crashDiscards == 0 {
		t.Errorf("stale drops = %d, crash discards = %d: nothing ever swallowed the token", stale, crashDiscards)
	}
	if gen := cn.lb.Nodes[2].Gen(); gen < 2 {
		t.Errorf("restarted node generation = %d, want >= 2", gen)
	}
}
