package conformance

// UDP chaos conformance: the datagram substrate (internal/dgram) driven
// through a seeded UDP nemesis (internal/nemesis.UDPProxy) that drops,
// duplicates, reorders and delays whole datagrams on every link the cluster
// dials. The model invariants — per-pair FIFO, prefix delivery across
// moves, single CS holder — must hold anyway: loss is absorbed by dgram's
// selective retransmit, duplicates by its replay window, reordering by its
// stream reassembly, and the /status counters must show that machinery
// actually fired (a chaos test whose faults never bit proves nothing).
//
// `make chaos-udp` runs exactly these tests (the TestUDP prefix) plus the
// dgram and nemesis package suites, under the race detector.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"mobiledist/internal/core"
	"mobiledist/internal/cost"
	"mobiledist/internal/mutex/ring"
	"mobiledist/internal/nemesis"
	"mobiledist/internal/netrt"
)

// udpNet is a loopback cluster on the UDP transport with a nemesis datagram
// proxy fleet interposed on every dialled address via the WrapAddr seam.
type udpNet struct {
	t  *testing.T
	lb *netrt.Loopback

	mu      sync.Mutex
	proxies []*nemesis.UDPProxy
}

// startUDPNet launches an m×n loopback cluster over authenticated datagram
// sessions, fronting every dialled endpoint with a UDP nemesis running
// plan. Liveness clocks are loosened a little: datagram weather plus
// retransmit delays must not trip spurious dead verdicts.
func startUDPNet(t *testing.T, m, n int, plan nemesis.UDPPlan) *udpNet {
	t.Helper()
	un := &udpNet{t: t}
	cfg := netrt.DefaultConfig(m, n)
	cfg.Transport = netrt.TransportUDP
	cfg.HeartbeatEvery = 10 * time.Millisecond
	cfg.SuspectAfter = 3
	cfg.DeadAfter = 500 * time.Millisecond
	cfg.WrapAddr = func(name, addr string) string {
		px, err := nemesis.NewUDP(addr, plan)
		if err != nil {
			t.Fatalf("nemesis.NewUDP(%s): %v", name, err)
		}
		un.mu.Lock()
		un.proxies = append(un.proxies, px)
		un.mu.Unlock()
		return px.Addr()
	}
	lb, err := netrt.StartLoopback(cfg)
	if err != nil {
		un.stopProxies()
		t.Fatalf("netrt.StartLoopback(udp): %v", err)
	}
	un.lb = lb
	return un
}

func (un *udpNet) stopProxies() {
	un.mu.Lock()
	defer un.mu.Unlock()
	for _, px := range un.proxies {
		px.Stop()
	}
}

func (un *udpNet) stop() {
	un.lb.Stop()
	un.stopProxies()
}

// disturbances totals datagram-level disturbances by kind across the fleet.
func (un *udpNet) disturbances() map[string]int {
	un.mu.Lock()
	defer un.mu.Unlock()
	total := make(map[string]int)
	for _, px := range un.proxies {
		for _, d := range px.Disturbances() {
			total[d.Kind]++
		}
	}
	return total
}

func (un *udpNet) ready() {
	un.t.Helper()
	if !un.lb.Sys.WaitReady(idleTimeout) {
		un.t.Fatal("udp net: cluster did not become ready")
	}
}

func (un *udpNet) settle() {
	un.t.Helper()
	if !un.lb.Sys.WaitIdle(idleTimeout) {
		un.t.Fatal("udp net: network did not drain")
	}
}

// statusDoc is the slice of the /status JSON these tests read back.
type statusDoc struct {
	Transport string `json:"transport"`
	Dgram     []struct {
		Retransmits uint64 `json:"retransmits"`
		ReplayDrops uint64 `json:"replay_drops"`
	} `json:"dgram_sessions"`
}

// fetchStatus GETs and decodes /status from a health handler.
func fetchStatus(t *testing.T, h http.Handler) statusDoc {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/status", nil))
	var doc statusDoc
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("decode /status: %v\n%s", err, rec.Body.String())
	}
	return doc
}

// sessionCounters scrapes /status from the hub and every node, summing the
// per-session datagram counters the acceptance criteria name.
func (un *udpNet) sessionCounters(t *testing.T) (retransmits, replayDrops uint64, transport string) {
	t.Helper()
	handlers := []http.Handler{un.lb.Sys.HealthHandler()}
	for _, node := range un.lb.Nodes {
		handlers = append(handlers, node.HealthHandler())
	}
	for i, h := range handlers {
		doc := fetchStatus(t, h)
		if i == 0 {
			transport = doc.Transport
		}
		for _, s := range doc.Dgram {
			retransmits += s.Retransmits
			replayDrops += s.ReplayDrops
		}
	}
	return retransmits, replayDrops, transport
}

// udpWeather is the standard datagram disturbance mix: enough loss to force
// retransmits, enough duplication to exercise the replay window, reordering
// and jitter on top. Kept mild enough that heartbeats survive.
func udpWeather(seed uint64) nemesis.UDPPlan {
	return nemesis.UDPPlan{
		Seed:           seed,
		Drop:           0.05,
		Duplicate:      0.08,
		Reorder:        0.05,
		ReorderDelayUS: 2000,
		DelayMinUS:     50,
		DelayMaxUS:     500,
	}
}

// TestUDPChaosFIFOAcrossMoves: an ordered MH→MH stream across two handoffs
// with datagram weather on every link. Exactly-once, in-order — dgram's
// retransmit and replay machinery must be invisible at the model layer, and
// the /status counters must prove it actually worked for a living.
func TestUDPChaosFIFOAcrossMoves(t *testing.T) {
	const batch = 10
	un := startUDPNet(t, 3, 6, udpWeather(0xD06F00D))
	defer un.stop()

	var received []int
	p := &probe{onMH: func(_ core.Context, at core.MHID, msg core.Message) {
		if at == 1 {
			received = append(received, msg.(int))
		}
	}}
	ctx := un.lb.Sys.Register(p)
	un.lb.Sys.Start()
	un.ready()

	send := func(from, to int) {
		un.lb.Sys.Do(func() {
			for i := from; i < to; i++ {
				if err := ctx.SendMHToMH(0, 1, i, cost.CatAlgorithm); err != nil {
					t.Errorf("SendMHToMH: %v", err)
				}
			}
		})
	}
	send(0, batch)
	un.lb.Sys.Move(1, 2)
	send(batch, 2*batch)
	un.lb.Sys.Move(1, 0)
	send(2*batch, 3*batch)
	un.settle()

	var snap []int
	un.lb.Sys.Do(func() { snap = append(snap, received...) })
	if len(snap) != 3*batch {
		t.Fatalf("received %d of %d messages under datagram weather", len(snap), 3*batch)
	}
	for i, v := range snap {
		if v != i {
			t.Fatalf("received[%d] = %d, want %d (FIFO violated)", i, v, i)
		}
	}

	kinds := un.disturbances()
	if kinds["drop"] == 0 || kinds["duplicate"] == 0 {
		t.Errorf("nemesis fired %v — want both drops and duplicates to have bitten", kinds)
	}
	retransmits, replayDrops, transport := un.sessionCounters(t)
	if transport != netrt.TransportUDP {
		t.Errorf("/status transport = %q, want %q", transport, netrt.TransportUDP)
	}
	if retransmits == 0 {
		t.Error("no session counted a retransmit despite dropped datagrams")
	}
	if replayDrops == 0 {
		t.Error("no session counted a replay drop despite duplicated datagrams")
	}
}

// TestUDPChaosTokenRing: the R2 token mutex with churn (moves, disconnect,
// reconnect) under datagram weather — every request granted exactly once,
// mutual exclusion intact, the network drains.
func TestUDPChaosTokenRing(t *testing.T) {
	const k = 4
	un := startUDPNet(t, 3, 6, udpWeather(0xBEEFCAFE))
	defer un.stop()

	entries := make(map[core.MHID]int)
	holders, maxHolders := 0, 0
	r2, err := ring.NewR2(un.lb.Sys, ring.VariantCounter, ring.Options{
		Hold: 2,
		OnEnter: func(mh core.MHID) {
			holders++
			if holders > maxHolders {
				maxHolders = holders
			}
			entries[mh]++
		},
		OnExit: func(mh core.MHID) { holders-- },
	}, 2, nil)
	if err != nil {
		t.Fatalf("NewR2: %v", err)
	}
	un.lb.Sys.Start()
	un.ready()

	un.lb.Sys.Do(func() {
		for i := 0; i < k; i++ {
			if err := r2.Request(core.MHID(i)); err != nil {
				t.Errorf("Request: %v", err)
			}
		}
	})
	un.settle()
	un.lb.Sys.Move(1, 2)
	un.lb.Sys.Do(func() {
		if err := r2.Start(); err != nil {
			t.Errorf("Start: %v", err)
		}
	})
	un.lb.Sys.Move(4, 0)
	un.lb.Sys.Disconnect(5)
	un.settle()
	un.lb.Sys.Reconnect(5, 1)
	un.settle()

	var snap map[core.MHID]int
	var snapMax int
	un.lb.Sys.Do(func() {
		snap = make(map[core.MHID]int, len(entries))
		for mh, c := range entries {
			snap[mh] = c
		}
		snapMax = maxHolders
	})
	for i := 0; i < k; i++ {
		if snap[core.MHID(i)] != 1 {
			t.Errorf("mh%d entered the CS %d times, want 1", i, snap[core.MHID(i)])
		}
	}
	if snapMax > 1 {
		t.Errorf("max simultaneous CS holders = %d, want <= 1", snapMax)
	}
	if len(un.disturbances()) == 0 {
		t.Error("nemesis injected no datagram disturbances during the run")
	}
}

// TestUDPChaosNodeRestart: a relay crash-restart under datagram weather —
// the dgram sessions of the dead incarnation die with it, fresh sessions
// establish through the same proxies, and the generation-fenced resync
// replays the hole exactly once.
func TestUDPChaosNodeRestart(t *testing.T) {
	const batch = 8
	un := startUDPNet(t, 3, 6, udpWeather(0x0DDBA11))
	defer un.stop()

	var received []int
	p := &probe{onMH: func(_ core.Context, at core.MHID, msg core.Message) {
		if at == 1 {
			received = append(received, msg.(int))
		}
	}}
	ctx := un.lb.Sys.Register(p)
	un.lb.Sys.Start()
	un.ready()

	send := func(from, to int) {
		un.lb.Sys.Do(func() {
			for i := from; i < to; i++ {
				if err := ctx.SendMHToMH(0, 1, i, cost.CatAlgorithm); err != nil {
					t.Errorf("SendMHToMH: %v", err)
				}
			}
		})
	}
	send(0, batch)
	un.settle()
	if err := un.lb.RestartNode(1); err != nil {
		t.Fatalf("RestartNode over udp+nemesis: %v", err)
	}
	un.ready()
	send(batch, 2*batch)
	un.settle()

	var snap []int
	un.lb.Sys.Do(func() { snap = append(snap, received...) })
	if len(snap) != 2*batch {
		t.Fatalf("received %d of %d messages across the restart", len(snap), 2*batch)
	}
	for i, v := range snap {
		if v != i {
			t.Fatalf("received[%d] = %d, want %d", i, v, i)
		}
	}
}
