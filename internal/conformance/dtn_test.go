package conformance

// Store-carry-forward conformance: the custody subsystem (internal/dtn)
// rides the same engine on every substrate, so parked traffic must drain
// exactly once and in per-pair FIFO order regardless of how the bytes
// move underneath — and under chaos weather the replicating strategies
// must beat the paper's park-at-MSS control without ever breaking the
// exactly-once guarantee. `make chaos-dtn` runs the TestChaosDTN tests
// under the race detector.

import (
	"testing"

	"mobiledist/internal/core"
	"mobiledist/internal/cost"
	"mobiledist/internal/dtn"
	"mobiledist/internal/mutex/ring"
	"mobiledist/internal/sim"
)

// newManager attaches a custody manager to the driver's registrar during
// the build phase.
func newManager(t *testing.T, d driver, cfg dtn.Config) *dtn.Manager {
	t.Helper()
	mgr, err := dtn.New(d.registrar(), cfg)
	if err != nil {
		t.Fatalf("dtn.New: %v", err)
	}
	return mgr
}

// TestConformanceDTNReconnectAfterManyMoves: a host crosses three cells,
// disconnects, a stream parks for it, and it reconnects in yet another
// cell — the parked traffic must drain completely and in FIFO order on
// every substrate.
func TestConformanceDTNReconnectAfterManyMoves(t *testing.T) {
	const k = 16
	forEachSubstrate(t, 4, 2, func(t *testing.T, d driver) {
		var received []int
		p := &probe{onMH: func(_ core.Context, at core.MHID, msg core.Message) {
			if at == 1 {
				received = append(received, msg.(int))
			}
		}}
		ctx := d.registrar().Register(p)
		mgr := newManager(t, d, dtn.Config{}) // park-at-MSS, no TTL
		d.start()
		// mh1 starts at mss1 (round-robin); cross three cells, then vanish.
		d.move(1, 2)
		d.pause(t)
		d.move(1, 3)
		d.pause(t)
		d.move(1, 0)
		d.pause(t)
		d.disconnect(1)
		d.pause(t)
		d.do(func() {
			for i := 0; i < k; i++ {
				if err := ctx.SendMHToMH(0, 1, i, cost.CatAlgorithm); err != nil {
					t.Errorf("SendMHToMH: %v", err)
				}
			}
		})
		d.settle(t)
		var parked, early int
		d.do(func() {
			parked = mgr.StoredTotal()
			early = len(received)
		})
		if parked != k {
			t.Fatalf("parked %d bundles while disconnected, want %d", parked, k)
		}
		if early != 0 {
			t.Fatalf("%d messages delivered while disconnected", early)
		}
		d.reconnect(1, 2) // two cells from where it disconnected
		d.settle(t)
		var snap []int
		var st dtn.Stats
		d.do(func() {
			snap = append(snap, received...)
			st = mgr.Stats()
		})
		if len(snap) != k {
			t.Fatalf("received %d messages after reconnect, want %d", len(snap), k)
		}
		for i, v := range snap {
			if v != i {
				t.Fatalf("received[%d] = %d, want %d (FIFO violated across custody)", i, v, i)
			}
		}
		if st.Accepted != k || st.Delivered != k || st.Failed != 0 {
			t.Errorf("custody stats = %+v, want %d accepted and delivered", st, k)
		}
	})
}

// TestChaosDTNExactlyOnceUnderLoss: the epidemic strategy replicates
// parked bundles between stations, the wireless weather drops and
// duplicates frames, and the destination still receives the stream
// exactly once, in order, on every substrate.
func TestChaosDTNExactlyOnceUnderLoss(t *testing.T) {
	const k = 12
	forEachSubstrateFaults(t, 4, 2, lossyPlan(), func(t *testing.T, d driver) {
		var received []int
		p := &probe{onMH: func(_ core.Context, at core.MHID, msg core.Message) {
			if at == 1 {
				received = append(received, msg.(int))
			}
		}}
		ctx := d.registrar().Register(p)
		mgr := newManager(t, d, dtn.Config{Strategy: dtn.Epidemic{Every: 60}})
		d.start()
		d.disconnect(1)
		d.pause(t)
		d.do(func() {
			for i := 0; i < k; i++ {
				if err := ctx.SendMHToMH(0, 1, i, cost.CatAlgorithm); err != nil {
					t.Errorf("SendMHToMH: %v", err)
				}
			}
		})
		// Two bounded pauses let custody land and gossip spread replicas
		// (a full settle would never come: gossip re-arms while parked).
		d.pause(t)
		d.pause(t)
		d.reconnect(1, 3)
		d.settle(t)
		var snap []int
		var st dtn.Stats
		d.do(func() {
			snap = append(snap, received...)
			st = mgr.Stats()
		})
		if len(snap) != k {
			t.Fatalf("received %d messages, want exactly %d (exactly-once violated)", len(snap), k)
		}
		for i, v := range snap {
			if v != i {
				t.Fatalf("received[%d] = %d, want %d (FIFO violated under loss)", i, v, i)
			}
		}
		if st.Delivered != k || st.Failed != 0 {
			t.Errorf("custody stats = %+v, want %d delivered, 0 failed", st, k)
		}
	})
}

// TestChaosDTNDeliveryRatio compares the three strategies under the same
// deterministic fault plan — a crash of the custodian station while the
// destination is away: park-at-MSS loses everything the crash wipes,
// while epidemic and spray-and-wait have replicas elsewhere and deliver
// the full stream. The replication cost (transfers) is what they pay.
func TestChaosDTNDeliveryRatio(t *testing.T) {
	const k = 6
	run := func(strategy dtn.RoutingAlgorithm) (delivered, failed, transfers int64, got int) {
		cfg := core.DefaultConfig(4, 1)
		cfg.Wireless = core.FixedDelay(2)
		cfg.Wired = core.FixedDelay(3)
		cfg.Travel = core.FixedDelay(5)
		cfg.Faults = &core.FaultPlan{
			Crashes: []core.Crash{{MSS: 2, At: 300, RestartAt: 400}},
		}
		sys := core.MustNewSystem(cfg)
		var deliveries []core.Message
		p := &probe{onMH: func(_ core.Context, at core.MHID, msg core.Message) {
			deliveries = append(deliveries, msg)
		}}
		ctx := sys.Register(p)
		mgr, err := dtn.New(sys, dtn.Config{Strategy: strategy})
		if err != nil {
			t.Fatalf("dtn.New: %v", err)
		}
		inj := sys.Injector()
		inj.OnCrash(mgr.NoteCrash)
		inj.OnRestart(mgr.NoteRestart)
		inj.Arm()
		// Build mobility history (spray targets recently visited cells),
		// then vanish in cell 2 — the station the plan later crashes.
		sys.Schedule(10, func() { _ = sys.Move(0, 1) })
		sys.Schedule(40, func() { _ = sys.Move(0, 2) })
		sys.Schedule(70, func() { _ = sys.Disconnect(0) })
		sys.Schedule(110, func() {
			for i := 0; i < k; i++ {
				ctx.SendToMH(0, 0, i, cost.CatAlgorithm)
			}
		})
		// One more message after the custodian restarts: even park can
		// deliver this one, pinning the baseline above zero.
		sys.Schedule(450, func() { ctx.SendToMH(0, 0, "late", cost.CatAlgorithm) })
		sys.Schedule(600, func() {
			if err := sys.Reconnect(0, 3, true); err != nil {
				t.Errorf("Reconnect: %v", err)
			}
		})
		if err := sys.Run(); err != nil {
			t.Fatalf("Run(%s): %v", strategy.Name(), err)
		}
		st := mgr.Stats()
		return st.Delivered, st.Failed, st.Transfers, len(deliveries)
	}

	parkDel, parkFail, _, parkGot := run(dtn.Park{})
	epiDel, epiFail, epiTx, epiGot := run(dtn.Epidemic{Every: 50})
	sprayDel, sprayFail, sprayTx, sprayGot := run(dtn.SprayAndWait{})

	// The crash wipes park's only copies: baseline delivers just the
	// post-restart message.
	if parkDel != 1 || parkGot != 1 || parkFail != int64(k) {
		t.Errorf("park: delivered=%d got=%d failed=%d, want 1/1/%d", parkDel, parkGot, parkFail, k)
	}
	if epiDel != int64(k+1) || epiGot != k+1 || epiFail != 0 {
		t.Errorf("epidemic: delivered=%d got=%d failed=%d, want %d/%d/0", epiDel, epiGot, epiFail, k+1, k+1)
	}
	if sprayDel != int64(k+1) || sprayGot != k+1 || sprayFail != 0 {
		t.Errorf("spray: delivered=%d got=%d failed=%d, want %d/%d/0", sprayDel, sprayGot, sprayFail, k+1, k+1)
	}
	if epiDel <= parkDel || sprayDel <= parkDel {
		t.Errorf("replicating strategies (%d, %d) must beat the park baseline (%d)", epiDel, sprayDel, parkDel)
	}
	if epiTx == 0 || sprayTx == 0 {
		t.Errorf("replication cost: epidemic=%d spray=%d transfers, want > 0", epiTx, sprayTx)
	}
}

// TestChaosDTNTokenRecovery re-runs the token-recovery chaos scenario
// with the custody subsystem enabled: attaching DTN must not perturb the
// recovery protocol — still exactly one regeneration, still exactly-once
// service — because custody only engages for disconnected hosts, and
// this scenario has none.
func TestChaosDTNTokenRecovery(t *testing.T) {
	const (
		m            = 4
		n            = 8
		suspicionLag = sim.Time(2000)
	)
	plan := &core.FaultPlan{
		Seed:    11,
		Crashes: []core.Crash{{MSS: 2, At: 1, RestartAt: 2500}},
	}
	forEachSubstrateFaults(t, m, n, plan, func(t *testing.T, d driver) {
		entries := make(map[core.MHID]int)
		holders, maxHolders := 0, 0
		inj := d.injector()
		if inj == nil {
			t.Fatal("driver has no fault injector")
		}
		mgr := newManager(t, d, dtn.Config{})
		opts := ring.Options{
			Hold: 2,
			OnEnter: func(mh core.MHID) {
				holders++
				if holders > maxHolders {
					maxHolders = holders
				}
				entries[mh]++
			},
			OnExit: func(mh core.MHID) { holders-- },
			Recovery: &ring.TokenRecovery{
				ProbeEvery: 300,
				Timeout:    1000,
				Suspect: func(s core.MSSID, now sim.Time) bool {
					since, down := inj.DownSince(s)
					return down && now-since > suspicionLag
				},
			},
		}
		r2, err := ring.NewR2(d.registrar(), ring.VariantCounter, opts, 4, nil)
		if err != nil {
			t.Fatalf("NewR2: %v", err)
		}
		d.start()
		d.do(func() {
			inj.OnCrash(mgr.NoteCrash)
			inj.OnRestart(func(mss core.MSSID) {
				mgr.NoteRestart(mss)
				r2.NoteRestart(mss)
			})
			inj.Arm()
			for _, mh := range []core.MHID{0, 1, 3} {
				if err := r2.Request(mh); err != nil {
					t.Errorf("Request: %v", err)
				}
			}
			if err := r2.Start(); err != nil {
				t.Errorf("Start: %v", err)
			}
		})
		d.settle(t)
		var regens int64
		var snapEntries map[core.MHID]int
		var snapMax int
		var st dtn.Stats
		d.do(func() {
			regens = r2.Regenerations()
			snapEntries = make(map[core.MHID]int, len(entries))
			for mh, c := range entries {
				snapEntries[mh] = c
			}
			snapMax = maxHolders
			st = mgr.Stats()
		})
		if regens != 1 {
			t.Errorf("token regenerations = %d with DTN enabled, want exactly 1", regens)
		}
		if snapMax > 1 {
			t.Errorf("max simultaneous CS holders = %d, want <= 1", snapMax)
		}
		for _, mh := range []core.MHID{0, 1, 3} {
			if got := snapEntries[mh]; got != 1 {
				t.Errorf("mh%d entered the critical section %d times, want 1", int(mh), got)
			}
		}
		if st.Accepted != 0 {
			t.Errorf("custody stats = %+v, want no custody activity without disconnections", st)
		}
	})
}
