package conformance

// Chaos conformance: the same model invariants the fault-free suite pins —
// single CS holder, grant uniqueness, per-pair FIFO, prefix delivery across
// moves, mobility-state partitioning — re-asserted under deterministic
// fault plans (internal/faults) on BOTH substrates, plus the token-recovery
// scenario: one MSS crash swallows the ring token and the R2 recovery
// sublayer regenerates exactly one replacement ("counted, never two").
//
// `make chaos` runs exactly these tests (they share the TestChaos prefix)
// under the race detector.

import (
	"testing"

	"mobiledist/internal/core"
	"mobiledist/internal/cost"
	"mobiledist/internal/mutex/ring"
	"mobiledist/internal/sim"
)

// lossyPlan is the suite's standard unreliable-wireless weather: drops on
// both channel classes at the acceptance ceiling (30%), duplicates at 10%,
// and a little reordering. The injector's decisions are a pure function of
// (seed, channel, index), so the weather is reproducible.
func lossyPlan() *core.FaultPlan {
	return &core.FaultPlan{
		Seed: 0xC0FFEE,
		Down: core.LinkFaults{Drop: 0.3, Duplicate: 0.1, Reorder: 0.05},
		Up:   core.LinkFaults{Drop: 0.3, Duplicate: 0.1, Reorder: 0.05},
	}
}

// flapPlan darkens cell 2's downlinks and mh1's uplink for a virtual-time
// window; the ARQ sublayer must carry traffic across the outage.
func flapPlan() *core.FaultPlan {
	return &core.FaultPlan{
		Seed:  7,
		Flaps: []core.Flap{{MSS: 2, MHs: []core.MHID{1}, From: 50, Until: 400}},
	}
}

// chaosMutexScenario drives the R2′ token mutex with k requesters under
// whatever plan the driver carries: requests are sent and the network fully
// drained (so ARQ has recovered every lost request), then the token is
// started for two traversals. Returns per-MH entry counts and the maximum
// simultaneous CS holders observed.
func chaosMutexScenario(t *testing.T, d driver, k int) (entries map[core.MHID]int, maxHolders int) {
	t.Helper()
	entries = make(map[core.MHID]int)
	holders := 0
	opts := ring.Options{
		Hold: 2,
		OnEnter: func(mh core.MHID) {
			holders++
			if holders > maxHolders {
				maxHolders = holders
			}
			entries[mh]++
		},
		OnExit: func(mh core.MHID) { holders-- },
	}
	r2, err := ring.NewR2(d.registrar(), ring.VariantCounter, opts, 2, nil)
	if err != nil {
		t.Fatalf("NewR2: %v", err)
	}
	d.start()
	d.do(func() {
		for i := 0; i < k; i++ {
			if err := r2.Request(core.MHID(i)); err != nil {
				t.Errorf("Request: %v", err)
			}
		}
	})
	d.settle(t) // drain fully: every request has survived the weather
	d.do(func() {
		if err := r2.Start(); err != nil {
			t.Errorf("Start: %v", err)
		}
	})
	d.settle(t)
	var snapEntries map[core.MHID]int
	var snapMax int
	d.do(func() {
		snapEntries = make(map[core.MHID]int, len(entries))
		for mh, c := range entries {
			snapEntries[mh] = c
		}
		snapMax = maxHolders
	})
	return snapEntries, snapMax
}

// TestChaosMutexUnderLoss: mutual exclusion and grant uniqueness survive
// 30% wireless drop, 10% duplication, and reordering — the ARQ sublayer
// restores the delivery guarantees the token protocol assumes. The fault
// and recovery counters must actually register the weather.
func TestChaosMutexUnderLoss(t *testing.T) {
	const k = 4
	forEachSubstrateFaults(t, 5, 10, lossyPlan(), func(t *testing.T, d driver) {
		entries, maxHolders := chaosMutexScenario(t, d, k)
		if maxHolders != 1 {
			t.Errorf("max simultaneous CS holders = %d, want 1", maxHolders)
		}
		for i := 0; i < k; i++ {
			if got := entries[core.MHID(i)]; got != 1 {
				t.Errorf("mh%d entered the critical section %d times, want 1", i, got)
			}
		}
		st := d.stats()
		if st.WirelessDrops == 0 {
			t.Error("WirelessDrops = 0 under a 30% drop plan")
		}
		if st.Retransmits == 0 {
			t.Error("Retransmits = 0: ARQ never recovered a loss")
		}
		if st.DuplicatesSuppressed == 0 {
			t.Error("DuplicatesSuppressed = 0 under a 10% duplicate plan")
		}
	})
}

// TestChaosPerPairFIFOUnderLoss: the ordered-pair FIFO guarantee holds
// under drop/duplicate/reorder weather — the receiver sees every message
// exactly once, in order.
func TestChaosPerPairFIFOUnderLoss(t *testing.T) {
	const k = 24
	forEachSubstrateFaults(t, 3, 6, lossyPlan(), func(t *testing.T, d driver) {
		var received []int
		p := &probe{onMH: func(_ core.Context, at core.MHID, msg core.Message) {
			if at == 1 {
				received = append(received, msg.(int))
			}
		}}
		ctx := d.registrar().Register(p)
		d.start()
		d.do(func() {
			for i := 0; i < k; i++ {
				if err := ctx.SendMHToMH(0, 1, i, cost.CatAlgorithm); err != nil {
					t.Errorf("SendMHToMH: %v", err)
				}
			}
		})
		d.settle(t)
		var snap []int
		d.do(func() { snap = append(snap, received...) })
		if len(snap) != k {
			t.Fatalf("received %d messages, want %d (loss leaked through ARQ)", len(snap), k)
		}
		for i, v := range snap {
			if v != i {
				t.Fatalf("received[%d] = %d, want %d (FIFO violated under faults)", i, v, i)
			}
		}
	})
}

// TestChaosPrefixAcrossMovesUnderFlap: a stream to a MH that moves twice
// mid-stream arrives complete and in order even though one destination cell
// (and the receiver's uplink) goes dark for a window mid-run.
func TestChaosPrefixAcrossMovesUnderFlap(t *testing.T) {
	const batch = 8
	forEachSubstrateFaults(t, 3, 6, flapPlan(), func(t *testing.T, d driver) {
		var received []int
		p := &probe{onMH: func(_ core.Context, at core.MHID, msg core.Message) {
			if at == 1 {
				received = append(received, msg.(int))
			}
		}}
		ctx := d.registrar().Register(p)
		d.start()
		send := func(from, to int) {
			d.do(func() {
				for i := from; i < to; i++ {
					if err := ctx.SendMHToMH(0, 1, i, cost.CatAlgorithm); err != nil {
						t.Errorf("SendMHToMH: %v", err)
					}
				}
			})
		}
		send(0, batch)
		d.move(1, 2) // into the cell that is about to flap
		send(batch, 2*batch)
		d.pause(t)
		d.move(1, 0)
		send(2*batch, 3*batch)
		d.settle(t)
		var snap []int
		d.do(func() { snap = append(snap, received...) })
		if len(snap) != 3*batch {
			t.Fatalf("received %d messages, want %d (stream lost across moves + flap)", len(snap), 3*batch)
		}
		for i, v := range snap {
			if v != i {
				t.Fatalf("received[%d] = %d, want %d (prefix order violated under flap)", i, v, i)
			}
		}
	})
}

// TestChaosMobilityPartitioningUnderLoss: the mobility protocol's state
// partition invariant — each MH in exactly one local list XOR one
// disconnected set — holds when the protocol's own wireless legs run under
// loss, and no mobility operation is lost or double-counted.
func TestChaosMobilityPartitioningUnderLoss(t *testing.T) {
	const (
		m = 4
		n = 8
	)
	forEachSubstrateFaults(t, m, n, lossyPlan(), func(t *testing.T, d driver) {
		ctx := d.registrar().Register(&probe{})
		d.start()
		d.move(0, 3)
		d.disconnect(1)
		d.move(2, 0)
		d.disconnect(3)
		d.pause(t)
		d.reconnect(1, 2)
		d.move(0, 1)
		d.settle(t)
		d.do(func() {
			for mh := 0; mh < n; mh++ {
				localIn, discIn := 0, 0
				for mss := 0; mss < m; mss++ {
					if ctx.IsLocal(core.MSSID(mss), core.MHID(mh)) {
						localIn++
					}
					if ctx.IsDisconnectedHere(core.MSSID(mss), core.MHID(mh)) {
						discIn++
					}
				}
				if localIn > 1 || discIn > 1 || localIn+discIn != 1 {
					t.Errorf("mh%d: member of %d local lists and %d disconnected sets, want exactly one of exactly one",
						mh, localIn, discIn)
				}
			}
		})
		st := d.stats()
		if st.Moves != 3 || st.Disconnects != 2 || st.Reconnects != 1 {
			t.Errorf("stats = %d moves / %d disconnects / %d reconnects, want 3/2/1",
				st.Moves, st.Disconnects, st.Reconnects)
		}
	})
}

// TestChaosTokenRecovery: MSS 2 crashes before the token's first visit and
// swallows it mid-ring; the R2 recovery sublayer (probe rounds + timeout +
// generation election) regenerates exactly ONE replacement token, every
// requester in a live cell is eventually served exactly once, and mutual
// exclusion never breaks — on both substrates.
func TestChaosTokenRecovery(t *testing.T) {
	const (
		m = 4
		n = 8
		// suspicionLag is the failure detector's accuracy delay: a crashed
		// station is suspected only this long after its crash instant.
		suspicionLag = sim.Time(2000)
	)
	plan := &core.FaultPlan{
		Seed:    11,
		Crashes: []core.Crash{{MSS: 2, At: 1, RestartAt: 2500}},
	}
	forEachSubstrateFaults(t, m, n, plan, func(t *testing.T, d driver) {
		entries := make(map[core.MHID]int)
		holders, maxHolders := 0, 0
		inj := d.injector()
		if inj == nil {
			t.Fatal("driver has no fault injector")
		}
		opts := ring.Options{
			Hold: 2,
			OnEnter: func(mh core.MHID) {
				holders++
				if holders > maxHolders {
					maxHolders = holders
				}
				entries[mh]++
			},
			OnExit: func(mh core.MHID) { holders-- },
			Recovery: &ring.TokenRecovery{
				ProbeEvery: 300,
				Timeout:    1000,
				// The oracle consults the injector's ground truth, delayed
				// by the suspicion lag — accurate (never suspects a live
				// station) yet realistically late.
				Suspect: func(s core.MSSID, now sim.Time) bool {
					since, down := inj.DownSince(s)
					return down && now-since > suspicionLag
				},
			},
		}
		r2, err := ring.NewR2(d.registrar(), ring.VariantCounter, opts, 4, nil)
		if err != nil {
			t.Fatalf("NewR2: %v", err)
		}
		d.start()
		d.do(func() {
			inj.OnRestart(func(mss core.MSSID) { r2.NoteRestart(mss) })
			inj.Arm()
			// Requesters sit in live cells only (round-robin placement:
			// mh0→mss0, mh1→mss1, mh3→mss3); the crashed cell 2 has no
			// pending work, matching the protocol's scope.
			for _, mh := range []core.MHID{0, 1, 3} {
				if err := r2.Request(mh); err != nil {
					t.Errorf("Request: %v", err)
				}
			}
			if err := r2.Start(); err != nil {
				t.Errorf("Start: %v", err)
			}
		})
		d.settle(t)
		var regens, stale, crashDiscards int64
		var snapEntries map[core.MHID]int
		var snapMax int
		d.do(func() {
			regens = r2.Regenerations()
			stale = r2.StaleTokensDropped()
			crashDiscards = inj.Stats().CrashDiscards
			snapEntries = make(map[core.MHID]int, len(entries))
			for mh, c := range entries {
				snapEntries[mh] = c
			}
			snapMax = maxHolders
		})
		tokenRegens := d.stats().TokenRegenerations
		if regens != 1 {
			t.Errorf("token regenerations = %d, want exactly 1 (counted, never two)", regens)
		}
		if tokenRegens != regens {
			t.Errorf("Stats.TokenRegenerations = %d, want %d", tokenRegens, regens)
		}
		if snapMax > 1 {
			t.Errorf("max simultaneous CS holders = %d under recovery, want <= 1", snapMax)
		}
		for _, mh := range []core.MHID{0, 1, 3} {
			if got := snapEntries[mh]; got != 1 {
				t.Errorf("mh%d entered the critical section %d times, want 1", int(mh), got)
			}
		}
		if stale < 0 {
			t.Errorf("StaleTokensDropped = %d", stale)
		}
		if crashDiscards == 0 {
			t.Error("CrashDiscards = 0: the crash never swallowed anything")
		}
	})
}

// TestChaosDeterministicWeather: on the deterministic substrate the whole
// chaos run — delivery trace and fault counters — is a pure function of
// (plan, seed): two identical systems produce byte-identical traces.
func TestChaosDeterministicWeather(t *testing.T) {
	run := func() (string, interface{}) {
		d := newSimFaultDriver(5, 10, lossyPlan())
		d.injector().RecordTrace(true)
		_, _ = chaosMutexScenario(t, d, 4)
		return d.injector().Trace(), d.injector().Stats()
	}
	trace1, stats1 := run()
	trace2, stats2 := run()
	if trace1 != trace2 {
		t.Fatalf("same plan + seed produced different delivery traces:\n--- run1 ---\n%s--- run2 ---\n%s", trace1, trace2)
	}
	if stats1 != stats2 {
		t.Fatalf("same plan + seed produced different fault stats: %+v vs %+v", stats1, stats2)
	}
	if trace1 == "" {
		t.Fatal("empty delivery trace: the plan injected nothing")
	}
}
