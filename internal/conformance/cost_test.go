package conformance

import (
	"testing"

	"mobiledist/internal/core"
	"mobiledist/internal/cost"
	"mobiledist/internal/group"
	"mobiledist/internal/mutex/ring"
)

// Cost parity: the same protocol scenario executed on the deterministic
// simulator, on the live goroutine runtime, and on the TCP-backed network
// runtime must charge exactly the same algorithm message counts — the cost
// model depends on what is sent, never on timing or transport. (Moved here
// from internal/rt when the conformance suite became cross-substrate.)

func assertSameAlgorithmCounts(t *testing.T, sim, live, net *cost.Meter) {
	t.Helper()
	for _, kind := range cost.Kinds() {
		s := sim.Count(cost.CatAlgorithm, kind)
		l := live.Count(cost.CatAlgorithm, kind)
		n := net.Count(cost.CatAlgorithm, kind)
		if s != l || s != n {
			t.Errorf("%v messages: sim %d vs live %d vs net %d", kind, s, l, n)
		}
	}
}

func meterR2(t *testing.T, d driver, k int) *cost.Meter {
	t.Helper()
	r2, err := ring.NewR2(d.registrar(), ring.VariantCounter, ring.Options{Hold: 2}, 2, nil)
	if err != nil {
		t.Fatalf("NewR2: %v", err)
	}
	d.start()
	d.do(func() {
		for i := 0; i < k; i++ {
			if err := r2.Request(core.MHID(i)); err != nil {
				t.Errorf("Request: %v", err)
			}
		}
	})
	d.pause(t) // let requests reach their stations before the token starts
	d.do(func() {
		if err := r2.Start(); err != nil {
			t.Errorf("Start: %v", err)
		}
	})
	d.settle(t)
	return d.meter()
}

func TestConformanceR2CostParity(t *testing.T) {
	const (
		m = 5
		n = 10
		k = 4
	)
	simD := newSimDriver(m, n)
	defer simD.stop()
	liveD := newLiveDriver(t, m, n)
	defer liveD.stop()
	netD := newNetDriver(t, m, n)
	defer netD.stop()
	assertSameAlgorithmCounts(t, meterR2(t, simD, k), meterR2(t, liveD, k), meterR2(t, netD, k))
}

func meterLocationView(t *testing.T, d driver, m, g int) *cost.Meter {
	t.Helper()
	lv, err := group.NewLocationView(d.registrar(), mhRange(g), group.LocationViewOptions{Coordinator: core.MSSID(m - 1)})
	if err != nil {
		t.Fatalf("NewLocationView: %v", err)
	}
	d.start()
	d.do(func() {
		if err := lv.Send(core.MHID(0), "x"); err != nil {
			t.Errorf("Send: %v", err)
		}
	})
	d.settle(t)
	return d.meter()
}

func TestConformanceLocationViewCostParity(t *testing.T) {
	const (
		m = 5
		n = 10
		g = 6
	)
	simD := newSimDriver(m, n)
	defer simD.stop()
	liveD := newLiveDriver(t, m, n)
	defer liveD.stop()
	netD := newNetDriver(t, m, n)
	defer netD.stop()
	assertSameAlgorithmCounts(t,
		meterLocationView(t, simD, m, g),
		meterLocationView(t, liveD, m, g),
		meterLocationView(t, netD, m, g))
}
