package netrt

import (
	"math/rand"
	"net"
	"sync"
	"time"

	"mobiledist/internal/wire"
)

// Default reconnect backoff bounds for dialling peers; Config/ClusterConfig
// fields override them (see backoffMin/backoffMax on ClusterConfig).
const (
	defaultDialBackoffMin = 5 * time.Millisecond
	defaultDialBackoffMax = 250 * time.Millisecond
)

// jitterBackoff spreads a backoff delay uniformly over [d/2, d), so a fleet
// of restarting processes doesn't thundering-herd the hub on synchronized
// retry schedules. Uses math/rand: reconnect pacing is operational noise,
// not part of any determinism contract.
func jitterBackoff(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)))
}

// peer is one logical neighbour of a cluster process: a persistent outbox
// of frames plus whatever TCP connection currently reaches the neighbour.
// The outbox is the FIFO unit — frames written to one peer arrive in order
// because a single writer goroutine drains the queue onto one connection at
// a time, and a frame is only consumed (popped) after a successful write,
// so a dropped connection retries it on the next one. Peers are either
// dialling (they own reconnection with capped, jittered exponential
// backoff) or accept-managed (the owner hands them each new inbound
// connection).
type peer struct {
	name string
	// onFrame, when non-nil, handles frames read from the current
	// connection. It is called on the connection's reader goroutine.
	onFrame func(f wire.Frame)
	// onChange, when non-nil, is invoked after the connection state flips
	// (installed or dropped). It is always called outside p.mu, so it may
	// take other locks (the hub's liveness table) and call back into
	// connected().
	onChange func()
	// hello, when non-nil, supplies the frame written first on every new
	// dialled connection. It is a closure, not a fixed frame, because the
	// handshake carries the process's current incarnation generation — a
	// reconnect after the hub assigned one must claim it, or every
	// connection flap would look like a fresh incarnation and trigger a
	// needless resync replay.
	hello func() wire.Frame
	// dial, when non-nil, makes this a dialling peer.
	dial func() (net.Conn, error)
	// tap, when non-nil, observes every written frame with its wire bytes.
	tap func(raw []byte, f wire.Frame)
	// backoffMin/backoffMax bound the dialler's reconnect backoff; zero
	// values fall back to the package defaults.
	backoffMin, backoffMax time.Duration

	out  *frameQueue
	stop chan struct{}
	wg   *sync.WaitGroup

	mu     sync.Mutex
	cond   *sync.Cond
	conn   net.Conn
	w      *wire.Writer
	gen    uint64
	closed bool

	closeOnce sync.Once
}

// newPeer builds a peer; start must be called to launch its goroutines.
func newPeer(name string, wg *sync.WaitGroup, onFrame func(wire.Frame)) *peer {
	p := &peer{
		name:    name,
		onFrame: onFrame,
		out:     newFrameQueue(),
		stop:    make(chan struct{}),
		wg:      wg,
	}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// backoff returns the effective reconnect bounds.
func (p *peer) backoff() (min, max time.Duration) {
	min, max = p.backoffMin, p.backoffMax
	if min <= 0 {
		min = defaultDialBackoffMin
	}
	if max <= 0 {
		max = defaultDialBackoffMax
	}
	if max < min {
		max = min
	}
	return min, max
}

// send queues f for delivery, reporting false after close.
func (p *peer) send(f wire.Frame) bool { return p.out.put(f) }

// connected reports whether a live connection is installed.
func (p *peer) connected() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.conn != nil
}

// currentConn returns the installed connection, or nil (for /status
// introspection of transport-level counters).
func (p *peer) currentConn() net.Conn {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.conn
}

// drained reports whether the outbox is empty.
func (p *peer) drained() bool { return p.out.drained() }

// outboxDepth reports the number of queued frames (for /status).
func (p *peer) outboxDepth() int { return p.out.depth() }

// clearOutbox drops every queued frame (dead-peer handling; the resync
// replay re-sends the unconfirmed suffix in order).
func (p *peer) clearOutbox() { p.out.clear() }

// flush waits (condition-signaled) for the outbox to drain, giving up at
// the deadline or while no connection stands to drain it.
func (p *peer) flush(deadline time.Time) bool {
	return p.out.waitDrained(deadline, func() bool { return !p.connected() })
}

// dropCurrent force-closes whatever connection is installed (tests and
// chaos tooling; the peer reconnects or re-attaches as usual).
func (p *peer) dropCurrent() {
	p.mu.Lock()
	gen := p.gen
	p.mu.Unlock()
	p.dropConn(gen)
}

// start launches the writer loop and, for dialling peers, the dialler.
func (p *peer) start() {
	p.wg.Add(1)
	go p.writeLoop()
	if p.dial != nil {
		p.wg.Add(1)
		go p.dialLoop()
	}
}

// writeLoop drains the outbox onto whatever connection is current.
func (p *peer) writeLoop() {
	defer p.wg.Done()
	for {
		f, epoch, ok := p.out.head()
		if !ok {
			return
		}
		w, gen, ok := p.writer()
		if !ok {
			return
		}
		if err := w.WriteFrame(f); err != nil {
			p.dropConn(gen)
			continue // retry the same frame on the next connection
		}
		p.out.pop(epoch)
	}
}

// writer blocks until a connection is installed or the peer closes.
func (p *peer) writer() (*wire.Writer, uint64, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.conn == nil && !p.closed {
		p.cond.Wait()
	}
	if p.closed {
		return nil, 0, false
	}
	return p.w, p.gen, true
}

// dialLoop (re)establishes the connection whenever none is current.
func (p *peer) dialLoop() {
	defer p.wg.Done()
	min, max := p.backoff()
	backoff := min
	for {
		p.mu.Lock()
		for p.conn != nil && !p.closed {
			p.cond.Wait()
		}
		closed := p.closed
		p.mu.Unlock()
		if closed {
			return
		}
		conn, err := p.dial()
		if err != nil {
			select {
			case <-p.stop:
				return
			case <-time.After(jitterBackoff(backoff)):
			}
			backoff *= 2
			if backoff > max {
				backoff = max
			}
			continue
		}
		backoff = min
		w := wire.NewWriter(conn)
		w.Tap = p.tap
		if p.hello != nil {
			if err := w.WriteFrame(p.hello()); err != nil {
				conn.Close()
				continue
			}
		}
		p.install(conn, w, wire.NewReader(conn))
	}
}

// install publishes conn as the current connection and spawns its reader.
// Accept-managed owners call this directly (attach) with the handshake
// reader so buffered bytes are not lost; a previous connection is dropped.
func (p *peer) install(conn net.Conn, w *wire.Writer, r *wire.Reader) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		conn.Close()
		return
	}
	if p.conn != nil {
		p.conn.Close()
	}
	p.gen++
	gen := p.gen
	p.conn, p.w = conn, w
	p.cond.Broadcast()
	p.mu.Unlock()
	p.connChanged()

	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		for {
			f, err := r.ReadFrame()
			if err != nil {
				p.dropConn(gen)
				return
			}
			if p.onFrame != nil {
				p.onFrame(f)
			}
		}
	}()
}

// attach hands an accepted connection (whose handshake frame was already
// read through r) to the peer.
func (p *peer) attach(conn net.Conn, r *wire.Reader) {
	w := wire.NewWriter(conn)
	w.Tap = p.tap
	p.install(conn, w, r)
}

// dropConn tears down the connection of generation gen (stale generations
// are ignored, so a replaced connection's reader cannot kill its successor).
func (p *peer) dropConn(gen uint64) {
	p.mu.Lock()
	if p.gen != gen || p.conn == nil {
		p.mu.Unlock()
		return
	}
	p.conn.Close()
	p.conn, p.w = nil, nil
	p.cond.Broadcast()
	p.mu.Unlock()
	p.connChanged()
}

// connChanged notifies the owner and any outbox drain waiters of a
// connection-state flip. Never called with p.mu held: the owner's callback
// and the queue wake-up both take other locks.
func (p *peer) connChanged() {
	p.out.wake()
	if p.onChange != nil {
		p.onChange()
	}
}

// close shuts the peer down: the writer stops (even with frames queued),
// the dialler stops, and the current connection closes, unblocking its
// reader.
func (p *peer) close() {
	p.closeOnce.Do(func() {
		p.mu.Lock()
		p.closed = true
		if p.conn != nil {
			p.conn.Close()
			p.conn, p.w = nil, nil
		}
		p.cond.Broadcast()
		p.mu.Unlock()
		close(p.stop)
		p.out.close()
		p.connChanged()
	})
}
