package netrt

import (
	"net"
	"sync"
	"time"

	"mobiledist/internal/wire"
)

// Reconnect backoff bounds for dialling peers.
const (
	dialBackoffMin = 5 * time.Millisecond
	dialBackoffMax = 250 * time.Millisecond
)

// peer is one logical neighbour of a cluster process: a persistent outbox
// of frames plus whatever TCP connection currently reaches the neighbour.
// The outbox is the FIFO unit — frames written to one peer arrive in order
// because a single writer goroutine drains the queue onto one connection at
// a time, and a frame is only consumed (popped) after a successful write,
// so a dropped connection retries it on the next one. Peers are either
// dialling (they own reconnection with capped exponential backoff) or
// accept-managed (the owner hands them each new inbound connection).
type peer struct {
	name string
	// onFrame, when non-nil, handles frames read from the current
	// connection. It is called on the connection's reader goroutine.
	onFrame func(f wire.Frame)
	// hello, when non-nil, is written first on every new dialled connection.
	hello *wire.Frame
	// dial, when non-nil, makes this a dialling peer.
	dial func() (net.Conn, error)
	// tap, when non-nil, observes every written frame with its wire bytes.
	tap func(raw []byte, f wire.Frame)

	out  *frameQueue
	stop chan struct{}
	wg   *sync.WaitGroup

	mu     sync.Mutex
	cond   *sync.Cond
	conn   net.Conn
	w      *wire.Writer
	gen    uint64
	closed bool

	closeOnce sync.Once
}

// newPeer builds a peer; start must be called to launch its goroutines.
func newPeer(name string, wg *sync.WaitGroup, onFrame func(wire.Frame)) *peer {
	p := &peer{
		name:    name,
		onFrame: onFrame,
		out:     newFrameQueue(),
		stop:    make(chan struct{}),
		wg:      wg,
	}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// send queues f for delivery, reporting false after close.
func (p *peer) send(f wire.Frame) bool { return p.out.put(f) }

// connected reports whether a live connection is installed.
func (p *peer) connected() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.conn != nil
}

// drained reports whether the outbox is empty.
func (p *peer) drained() bool { return p.out.drained() }

// start launches the writer loop and, for dialling peers, the dialler.
func (p *peer) start() {
	p.wg.Add(1)
	go p.writeLoop()
	if p.dial != nil {
		p.wg.Add(1)
		go p.dialLoop()
	}
}

// writeLoop drains the outbox onto whatever connection is current.
func (p *peer) writeLoop() {
	defer p.wg.Done()
	for {
		f, ok := p.out.head()
		if !ok {
			return
		}
		w, gen, ok := p.writer()
		if !ok {
			return
		}
		if err := w.WriteFrame(f); err != nil {
			p.dropConn(gen)
			continue // retry the same frame on the next connection
		}
		p.out.pop()
	}
}

// writer blocks until a connection is installed or the peer closes.
func (p *peer) writer() (*wire.Writer, uint64, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.conn == nil && !p.closed {
		p.cond.Wait()
	}
	if p.closed {
		return nil, 0, false
	}
	return p.w, p.gen, true
}

// dialLoop (re)establishes the connection whenever none is current.
func (p *peer) dialLoop() {
	defer p.wg.Done()
	backoff := dialBackoffMin
	for {
		p.mu.Lock()
		for p.conn != nil && !p.closed {
			p.cond.Wait()
		}
		closed := p.closed
		p.mu.Unlock()
		if closed {
			return
		}
		conn, err := p.dial()
		if err != nil {
			select {
			case <-p.stop:
				return
			case <-time.After(backoff):
			}
			backoff *= 2
			if backoff > dialBackoffMax {
				backoff = dialBackoffMax
			}
			continue
		}
		backoff = dialBackoffMin
		w := wire.NewWriter(conn)
		w.Tap = p.tap
		if p.hello != nil {
			if err := w.WriteFrame(*p.hello); err != nil {
				conn.Close()
				continue
			}
		}
		p.install(conn, w, wire.NewReader(conn))
	}
}

// install publishes conn as the current connection and spawns its reader.
// Accept-managed owners call this directly (attach) with the handshake
// reader so buffered bytes are not lost; a previous connection is dropped.
func (p *peer) install(conn net.Conn, w *wire.Writer, r *wire.Reader) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		conn.Close()
		return
	}
	if p.conn != nil {
		p.conn.Close()
	}
	p.gen++
	gen := p.gen
	p.conn, p.w = conn, w
	p.cond.Broadcast()
	p.mu.Unlock()

	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		for {
			f, err := r.ReadFrame()
			if err != nil {
				p.dropConn(gen)
				return
			}
			if p.onFrame != nil {
				p.onFrame(f)
			}
		}
	}()
}

// attach hands an accepted connection (whose handshake frame was already
// read through r) to the peer.
func (p *peer) attach(conn net.Conn, r *wire.Reader) {
	w := wire.NewWriter(conn)
	w.Tap = p.tap
	p.install(conn, w, r)
}

// dropConn tears down the connection of generation gen (stale generations
// are ignored, so a replaced connection's reader cannot kill its successor).
func (p *peer) dropConn(gen uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.gen != gen || p.conn == nil {
		return
	}
	p.conn.Close()
	p.conn, p.w = nil, nil
	p.cond.Broadcast()
}

// close shuts the peer down: the writer stops (even with frames queued),
// the dialler stops, and the current connection closes, unblocking its
// reader.
func (p *peer) close() {
	p.closeOnce.Do(func() {
		p.mu.Lock()
		p.closed = true
		if p.conn != nil {
			p.conn.Close()
			p.conn, p.w = nil, nil
		}
		p.cond.Broadcast()
		p.mu.Unlock()
		close(p.stop)
		p.out.close()
	})
}
