// Package netrt is the network runtime of the two-tier model: it binds the
// shared network engine (internal/engine) to real TCP connections, so the
// MSS tier runs as separate relay nodes on a wired mesh and each MH
// reaches its serving station over its own wireless connection — the
// deployment the paper describes, on actual sockets.
//
// Architecture. The engine cannot be sharded across processes — its
// Substrate seam hands the transport opaque delivery records — so the
// runtime splits the model plane from the data plane:
//
//   - the hub (this file) hosts the engine on a single executor goroutine,
//     exactly like internal/rt. Every TransmitRec assigns the channel's
//     next sequence number, parks the delivery record, and ships a TData
//     frame on a physical journey over TCP;
//   - MSS relay nodes (node.go) carry the wired tier: a TData for wired
//     channel (i,j) travels hub → node i, sleeps the link latency in node
//     i's per-channel pipe, crosses the mesh connection to node j, and
//     node j confirms with TDelivered. Downlinks sleep at the serving node
//     and cross that node's wireless connection to the MH client;
//   - MH clients (client.go) carry the uplinks: the frame travels hub →
//     client, sleeps the latency, and crosses the client's current
//     wireless connection into whatever cell serves it — so Cwireless
//     traffic always crosses a real link, and handoffs physically re-dial;
//   - when the hub receives TDelivered (ch, seq) it releases the parked
//     record — but only in per-channel sequence order, holding back any
//     confirmation that arrives early. That release buffer, not TCP alone,
//     is the model's per-channel FIFO guarantee; duplicate confirmations
//     (possible during connection loss, which both ends resolve
//     at-least-once) are suppressed by the same sequence check.
//
// Model-level semantics are therefore identical to internal/rt: a
// transmission, once made, always resolves — a frame radioed into a cell
// the MH already left is confirmed by the node, matching the model, whose
// record interpreter re-checks MH state at delivery time. The fault injector
// (internal/faults) and the observability seam wrap the substrate exactly
// as on the other runtimes, so loss is modelled, never accidental.
//
// Lifecycle: build (NewSystem, Register — single-threaded), Start, interact
// via Do, then WaitIdle / Stop. NewSystem listens immediately, so nodes and
// clients may connect before Start; their traffic queues.
package netrt

import (
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mobiledist/internal/core"
	"mobiledist/internal/cost"
	"mobiledist/internal/engine"
	"mobiledist/internal/execq"
	"mobiledist/internal/faults"
	"mobiledist/internal/obs"
	"mobiledist/internal/sim"
	"mobiledist/internal/wire"
)

// Config describes the hub of a TCP-backed two-tier network. The model
// parameters mirror rt.Config; ListenAddr and MSSAddrs are the cluster
// concerns that only exist here.
type Config struct {
	// M and N size the network.
	M, N int
	// Params are the message cost constants.
	Params cost.Params
	// Seed initialises the latency RNG.
	Seed uint64
	// Tick converts virtual-time units to wall time (default 50µs, as rt).
	Tick time.Duration
	// Wired and Wireless are latency ranges in ticks.
	Wired, Wireless core.Delay
	// Travel is the between-cells delay range in ticks.
	Travel core.Delay
	// SearchMode selects the search service (zero: core.SearchAbstract).
	SearchMode core.SearchMode
	// PessimisticSearch mirrors core.Config.PessimisticSearch.
	PessimisticSearch bool
	// Faults, when non-nil and non-empty, wraps the substrate in the
	// deterministic fault injector and implies ReliableWireless.
	Faults *core.FaultPlan
	// ReliableWireless enables the engine's ARQ sublayer on the wireless
	// channels even without a fault plan.
	ReliableWireless bool
	// ARQTimeout is the ARQ initial retransmission timeout in ticks.
	ARQTimeout sim.Time
	// WaiterLimit caps the per-MH in-transit waiter queue (see
	// engine.Config.WaiterLimit); 0 means unlimited.
	WaiterLimit int
	// Placement maps each MH to its initial cell (nil: round-robin).
	Placement func(core.MHID) core.MSSID
	// Trace, when non-nil, receives one line per model-level event.
	Trace func(t sim.Time, event, detail string)
	// Obs, when non-nil, records typed observability events and metrics.
	Obs *obs.Tracer

	// Transport selects the substrate every cluster connection runs over:
	// TransportTCP (default, also "") or TransportUDP — authenticated
	// datagram sessions via internal/dgram.
	Transport string
	// Secret is the shared cluster secret UDP connect tokens are minted
	// and validated under (empty: the insecure development default).
	// Ignored by the TCP transport.
	Secret string
	// ListenAddr is the hub's listen address ("127.0.0.1:0" default).
	ListenAddr string
	// MSSAddrs are the relay nodes' listen addresses, indexed by MSS id.
	// The hub hands them to MH clients in TRetarget frames, so they must be
	// reachable from the clients. Required (length M).
	MSSAddrs []string
	// FrameTap, when non-nil, observes every frame the hub writes, with its
	// exact wire bytes (called on writer goroutines; the slice is only
	// valid during the call). Test instrumentation for codec round-trip
	// checks.
	FrameTap func(raw []byte, f wire.Frame)
	// WrapAddr, when non-nil, is given every address a cluster process will
	// dial — the hub address handed to nodes and clients ("hub") and each
	// station address ("mss<i>") handed to mesh peers and retargeted
	// clients — and returns the address to dial instead. This is the seam
	// where the socket nemesis (internal/nemesis) interposes its proxies;
	// listeners stay bound to the raw addresses. Only StartLoopback applies
	// it.
	WrapAddr func(name, addr string) string

	// HeartbeatEvery is the hub's liveness ping interval (0: 25ms default;
	// negative: heartbeats disabled — peers are never suspected or declared
	// dead).
	HeartbeatEvery time.Duration
	// SuspectAfter is the number of consecutive unanswered heartbeats
	// before a peer is marked suspect (0: default 3).
	SuspectAfter int
	// DeadAfter is how long a peer may go without answering a heartbeat
	// before it is declared dead — its outbox clears and deliveries to it
	// park until a resync (0: default 500ms).
	DeadAfter time.Duration
	// DialBackoffMin and DialBackoffMax bound every dialling peer's
	// reconnect backoff (zero: 5ms/250ms defaults). They propagate into the
	// ClusterConfig StartLoopback builds, and cmd/mobilenode exposes them
	// via MOBILEDIST_DIAL_BACKOFF_MIN/MAX.
	DialBackoffMin, DialBackoffMax time.Duration
}

// DefaultConfig returns a hub configuration for m stations and n hosts,
// with the same model parameters as rt.DefaultConfig. MSSAddrs must still
// be filled in (StartLoopback does).
func DefaultConfig(m, n int) Config {
	return Config{
		M:                 m,
		N:                 n,
		Params:            cost.DefaultParams(),
		Seed:              1,
		Tick:              50 * time.Microsecond,
		Wired:             core.Delay{Min: 1, Max: 4},
		Wireless:          core.Delay{Min: 1, Max: 2},
		Travel:            core.Delay{Min: 2, Max: 10},
		SearchMode:        core.SearchAbstract,
		PessimisticSearch: true,
		ListenAddr:        "127.0.0.1:0",
	}
}

// engineConfig projects the hub configuration onto the shared engine's
// substrate-independent parameters.
func (c Config) engineConfig() engine.Config {
	mode := c.SearchMode
	if mode == 0 {
		mode = core.SearchAbstract
	}
	reliable := c.ReliableWireless
	if c.Faults != nil && !c.Faults.Empty() {
		reliable = true
	}
	return engine.Config{
		M:                 c.M,
		N:                 c.N,
		Params:            c.Params,
		Wired:             c.Wired,
		Wireless:          c.Wireless,
		Travel:            c.Travel,
		SearchMode:        mode,
		PessimisticSearch: c.PessimisticSearch,
		ReliableWireless:  reliable,
		ARQTimeout:        c.ARQTimeout,
		WaiterLimit:       c.WaiterLimit,
		Placement:         c.Placement,
		Trace:             c.Trace,
		Obs:               c.Obs,
	}
}

// place mirrors the engine's initial placement rule.
func (c Config) place(mh core.MHID) core.MSSID {
	if c.Placement != nil {
		return c.Placement(mh)
	}
	return core.MSSID(int(mh) % c.M)
}

// pendKey identifies one in-flight transmission.
type pendKey struct {
	ch  int32
	seq uint64
}

// pendEntry is one parked in-flight transmission: the delivery record plus
// the drawn latency, kept so a resync replay can rebuild the exact TData
// frame for the unconfirmed suffix.
type pendEntry struct {
	rec     *engine.DeliveryRec
	latency uint32
}

// chanState is the hub's per-channel release buffer: next is the sequence
// number whose confirmation may release, ready holds confirmations that
// arrived early.
type chanState struct {
	next  uint64
	ready map[uint64]struct{}
}

// System is the hub: the shared engine bound to the TCP substrate. It
// implements core.Registrar with the same lifecycle and calling conventions
// as rt.System, so any algorithm in this repository runs on it unmodified.
type System struct {
	cfg    Config
	eng    *engine.Engine
	rng    *sim.RNG // executor-only
	inj    *faults.Injector
	layout engine.ChannelLayout

	tasks    *execq.Queue
	stopped  chan struct{}
	execDone chan struct{}
	started  bool
	stopOnce sync.Once
	epoch    time.Time

	ln       net.Listener
	wg       sync.WaitGroup
	mssPeers []*peer
	mhPeers  []*peer

	// Executor-only transmission state. Parked records are stepped (and
	// freed) by the bound sink on the executor only; the record pool is
	// not thread-safe, so stopped paths drop records rather than free them.
	seqs      []uint64
	chans     []chanState
	pending   map[pendKey]pendEntry
	envelopes [][]byte
	rtGen     uint64
	sink      engine.RecSink

	// deadMSS / deadMH mirror the liveness tracker's dead verdicts onto the
	// executor (set and cleared via executor tasks, read by TransmitRec):
	// transmissions toward a dead peer park in pending without queuing a
	// frame, and the resync replay re-sends them.
	deadMSS []bool
	deadMH  []bool

	// lv is the liveness tracker and cluster-readiness monitor (heartbeat
	// state machine, incarnation generations, attach confirmations).
	lv *liveness

	// parked and inflight are /status counters, written on the executor and
	// read by the health endpoint.
	parked   atomic.Int64 // transmissions parked on a dead peer (lifetime)
	inflight atomic.Int64 // pending delivery records right now
}

var _ core.Registrar = (*System)(nil)

// netSubstrate adapts the System to the engine's Substrate interface. Every
// method runs on the executor (or the single-threaded build phase).
type netSubstrate struct {
	s *System
}

var _ engine.Substrate = (*netSubstrate)(nil)

func (l *netSubstrate) Now() sim.Time { return l.s.now() }

func (l *netSubstrate) Enqueue(fn func()) { l.s.tasks.Push(fn) }

func (l *netSubstrate) After(d sim.Time, fn func()) {
	s := l.s
	s.tasks.OpStart()
	time.AfterFunc(time.Duration(d)*s.cfg.Tick, func() {
		if !s.tasks.Push(func() { defer s.tasks.OpDone(); fn() }) {
			s.tasks.OpDone()
		}
	})
}

// DaemonAfter implements engine.DaemonScheduler: a wall timer that runs fn
// on the executor without holding an op open while armed, so standing
// maintenance timers (DTN gossip) cannot wedge WaitIdle. A push after
// shutdown is silently dropped.
func (l *netSubstrate) DaemonAfter(d sim.Time, fn func()) {
	s := l.s
	time.AfterFunc(time.Duration(d)*s.cfg.Tick, func() { s.tasks.Push(fn) })
}

func (l *netSubstrate) BindRecSink(sink engine.RecSink) { l.s.sink = sink }

// TransmitRec parks the delivery record under the channel's next sequence
// number and ships the TData frame toward the relay that owns the sending
// end of the physical journey. A frame bound for a peer the liveness
// tracker declared dead parks without shipping (graceful degradation: the
// record stays pending, bounded by the algorithms' own in-flight windows,
// and the resync replay ships it when the peer returns).
func (l *netSubstrate) TransmitRec(ch int, latency sim.Time, rec *engine.DeliveryRec) {
	s := l.s
	seq := s.seqs[ch]
	s.seqs[ch]++
	s.pending[pendKey{int32(ch), seq}] = pendEntry{rec: rec, latency: uint32(latency)}
	s.inflight.Add(1)
	s.tasks.OpStart()
	f := wire.Frame{
		Type:    wire.TData,
		Ch:      int32(ch),
		Seq:     seq,
		Latency: uint32(latency),
		Payload: s.envelopes[ch],
	}
	kind, a, b := s.layout.Decode(ch)
	var ok bool
	switch kind {
	case engine.ChannelWired, engine.ChannelDown:
		if s.deadMSS[a] {
			s.parkOnDead()
			return
		}
		ok = s.mssPeers[a].send(f)
	case engine.ChannelUp:
		if s.deadMH[b] {
			s.parkOnDead()
			return
		}
		ok = s.mhPeers[b].send(f)
	}
	if !ok {
		// Shutdown: outboxes are closed; resolve so drains don't hang.
		s.resolve(int32(ch), seq)
	}
}

// parkOnDead accounts one transmission parked on a dead peer (executor).
func (s *System) parkOnDead() {
	s.eng.NoteParkedOnDeadMSS()
	s.parked.Add(1)
}

// AfterRec schedules a record the way After schedules a closure: a wall
// timer that hands the record to the executor for interpretation. A record
// landing after Stop is dropped (not freed — the pool is executor-only).
func (l *netSubstrate) AfterRec(d sim.Time, rec *engine.DeliveryRec) {
	s := l.s
	s.tasks.OpStart()
	time.AfterFunc(time.Duration(d)*s.cfg.Tick, func() {
		if !s.tasks.Push(func() { defer s.tasks.OpDone(); s.sink.StepRec(rec) }) {
			s.tasks.OpDone()
		}
	})
}

// EnqueueRec runs the record on the executor without delay.
func (l *netSubstrate) EnqueueRec(rec *engine.DeliveryRec) {
	l.s.tasks.Push(func() { l.s.sink.StepRec(rec) })
}

func (l *netSubstrate) RNG() *sim.RNG { return l.s.rng }

// NewSystem builds a hub from cfg, binds its listener, and starts accepting
// node and client connections (their traffic queues until Start). A
// non-empty cfg.Faults plan interposes the deterministic fault injector
// between the engine and the socket substrate.
func NewSystem(cfg Config) (*System, error) {
	if cfg.Tick <= 0 {
		cfg.Tick = 50 * time.Microsecond
	}
	if cfg.ListenAddr == "" {
		cfg.ListenAddr = "127.0.0.1:0"
	}
	if len(cfg.MSSAddrs) != cfg.M {
		return nil, fmt.Errorf("netrt: MSSAddrs has %d entries, want M=%d", len(cfg.MSSAddrs), cfg.M)
	}
	channels := engine.ChannelCount(cfg.M, cfg.N)
	s := &System{
		cfg:      cfg,
		rng:      sim.NewRNG(cfg.Seed),
		layout:   engine.ChannelLayout{M: cfg.M, N: cfg.N},
		tasks:    execq.New(),
		stopped:  make(chan struct{}),
		execDone: make(chan struct{}),
		seqs:     make([]uint64, channels),
		chans:    make([]chanState, channels),
		pending:  make(map[pendKey]pendEntry),
		deadMSS:  make([]bool, cfg.M),
		deadMH:   make([]bool, cfg.N),
	}
	s.lv = newLiveness(cfg.M, cfg.N, cfg.SuspectAfter, cfg.DeadAfter, cfg.Obs, s.now)
	s.envelopes = make([][]byte, channels)
	for ch := range s.envelopes {
		kind, a, b := s.layout.Decode(ch)
		s.envelopes[ch] = wire.Envelope{Kind: uint8(kind), A: int32(a), B: int32(b)}.Encode()
	}

	var sub engine.Substrate = &netSubstrate{s: s}
	if cfg.Faults != nil && !cfg.Faults.Empty() {
		inj, err := faults.New(*cfg.Faults, cfg.M, cfg.N, sub)
		if err != nil {
			return nil, err
		}
		inj.SetTracer(cfg.Obs)
		s.inj = inj
		sub = inj
	}
	// The observer wraps outermost so it records what the engine asked the
	// transport to do, before the fault injector disturbs it.
	cfg.Obs.SetTopology(cfg.M, cfg.N)
	sub = engine.ObserveSubstrate(sub, cfg.Obs)
	eng, err := engine.New(cfg.engineConfig(), sub)
	if err != nil {
		return nil, err
	}
	s.eng = eng
	// The relay observer is registered first so clients learn their new
	// cell before any user algorithm reacts to the join.
	s.eng.Register(&mobilityRelay{s: s})

	s.mssPeers = make([]*peer, cfg.M)
	for i := range s.mssPeers {
		p := newPeer(fmt.Sprintf("hub->mss%d", i), &s.wg, func(f wire.Frame) { s.onPeerFrame(wire.RoleMSS, i, f) })
		p.tap = cfg.FrameTap
		p.onChange = func() { s.lv.noteConn(wire.RoleMSS, i, p.connected()) }
		s.mssPeers[i] = p
		p.start()
	}
	s.mhPeers = make([]*peer, cfg.N)
	for h := range s.mhPeers {
		p := newPeer(fmt.Sprintf("hub->mh%d", h), &s.wg, func(f wire.Frame) { s.onPeerFrame(wire.RoleMH, h, f) })
		p.tap = cfg.FrameTap
		p.onChange = func() { s.lv.noteConn(wire.RoleMH, h, p.connected()) }
		s.mhPeers[h] = p
		p.start()
	}
	// Seed every client with its initial cell (the engine placed it there
	// silently during construction; no OnJoin fires for the initial
	// placement).
	for h := 0; h < cfg.N; h++ {
		s.rtGen++
		at := cfg.place(core.MHID(h))
		s.sendRetarget(core.MHID(h), at, -1, s.rtGen)
	}

	tr, err := newTransport(cfg.Transport, cfg.Secret, 0, -1)
	if err != nil {
		return nil, err
	}
	ln, err := tr.listen(cfg.ListenAddr, "")
	if err != nil {
		return nil, err
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	if every := cfg.heartbeatEvery(); every > 0 {
		s.wg.Add(1)
		go s.heartbeatLoop(every)
	}
	return s, nil
}

// heartbeatEvery resolves the configured liveness interval (<= 0 means
// default; negative disables).
func (c Config) heartbeatEvery() time.Duration {
	if c.HeartbeatEvery < 0 {
		return 0
	}
	if c.HeartbeatEvery == 0 {
		return defaultHeartbeatEvery
	}
	return c.HeartbeatEvery
}

// peerFor maps a liveness identity to its peer slot.
func (s *System) peerFor(role wire.Role, id int) *peer {
	if role == wire.RoleMH {
		return s.mhPeers[id]
	}
	return s.mssPeers[id]
}

// heartbeatLoop drives the liveness state machine: ping every connected
// peer each interval, and when the tracker declares a peer dead, clear its
// outbox (the resync replay re-sends the unconfirmed suffix in order) and
// flip the executor's dead flag so new traffic parks instead of queuing.
func (s *System) heartbeatLoop(every time.Duration) {
	defer s.wg.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-s.stopped:
			return
		case <-t.C:
		}
		died := s.lv.tick(func(role wire.Role, id int, seq uint64) {
			s.peerFor(role, id).send(wire.Frame{Type: wire.THeartbeat, Ch: -1, Seq: seq})
		})
		for _, i := range died {
			role, id := s.lv.role(i)
			s.peerFor(role, id).clearOutbox()
			s.tasks.Push(func() {
				if role == wire.RoleMSS {
					s.deadMSS[id] = true
				} else {
					s.deadMH[id] = true
				}
			})
		}
	}
}

// Addr returns the hub's bound listen address, for cluster files.
func (s *System) Addr() string { return s.ln.Addr().String() }

// SetAdvertise records the public address dialers use to reach the hub —
// needed when a proxy (the socket nemesis) or NAT fronts the listener, so
// the UDP transport accepts connect tokens bound to the dialled address.
// A no-op on TCP.
func (s *System) SetAdvertise(addr string) { setAdvertise(s.ln, addr) }

// Transport reports the substrate the hub runs over ("tcp" or "udp").
func (s *System) Transport() string {
	if s.cfg.Transport == "" {
		return TransportTCP
	}
	return s.cfg.Transport
}

// acceptLoop admits node and client connections: the first frame must be a
// THello identifying the dialler, after which the connection is attached to
// its peer slot.
func (s *System) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go s.handshake(conn)
	}
}

func (s *System) handshake(conn net.Conn) {
	defer s.wg.Done()
	r := wire.NewReader(conn)
	f, err := r.ReadFrame()
	if err != nil || f.Type != wire.THello {
		conn.Close()
		return
	}
	h, err := wire.DecodeHello(f.Payload)
	if err != nil || int(h.M) != s.cfg.M || int(h.N) != s.cfg.N {
		conn.Close()
		return
	}
	inRange := (h.Role == wire.RoleMSS && 0 <= h.ID && int(h.ID) < s.cfg.M) ||
		(h.Role == wire.RoleMH && 0 <= h.ID && int(h.ID) < s.cfg.N)
	if !inRange {
		conn.Close()
		return
	}
	gen, resync, ok := s.lv.admit(h.Role, int(h.ID), h.Gen)
	if !ok {
		// Generation fence: a superseded incarnation is still dialling.
		// Refusing the connection keeps its stale frames out of the stream;
		// anything it wrote on an older connection was already cut off when
		// the newer incarnation's attach closed it.
		conn.Close()
		return
	}
	s.peerFor(h.Role, int(h.ID)).attach(conn, r)
	if resync {
		// New incarnation (or a dead peer returning): replay on the
		// executor. The TResync ack is sent there too, after the outbox
		// clears, so it isn't dropped with the stale frames.
		s.tasks.Push(func() { s.resyncPeer(h.Role, int(h.ID), gen) })
	} else {
		s.peerFor(h.Role, int(h.ID)).send(wire.Frame{Type: wire.TResync, Ch: -1, Seq: gen})
	}
}

// onPeerFrame handles frames from nodes and clients (reader goroutines).
func (s *System) onPeerFrame(role wire.Role, id int, f wire.Frame) {
	switch f.Type {
	case wire.TDelivered:
		s.tasks.Push(func() { s.resolve(f.Ch, f.Seq) })
	case wire.TAttached:
		if h := int(f.Ch); 0 <= h && h < s.cfg.N {
			s.lv.noteAttached(h, f.Seq)
		}
	case wire.THeartbeat:
		if f.Hop == 1 && s.lv.pong(role, id, f.Seq) {
			// The peer answered after being declared dead: it kept running
			// through a false suspicion (or a one-way partition healed). Its
			// outbox was cleared, so replay the unconfirmed suffix.
			gen := s.lv.genOf(role, id)
			s.tasks.Push(func() { s.resyncPeer(role, id, gen) })
		}
	}
}

// resolve releases the parked delivery for (ch, seq), in per-channel
// sequence order: early confirmations wait in the ready set, duplicates
// (seq already released) are dropped. Runs on the executor.
func (s *System) resolve(ch int32, seq uint64) {
	st := &s.chans[ch]
	if seq < st.next {
		return // duplicate confirmation
	}
	if seq != st.next {
		if st.ready == nil {
			st.ready = make(map[uint64]struct{})
		}
		st.ready[seq] = struct{}{}
		return
	}
	s.deliver(ch, st.next)
	st.next++
	for {
		if _, ok := st.ready[st.next]; !ok {
			return
		}
		delete(st.ready, st.next)
		s.deliver(ch, st.next)
		st.next++
	}
}

func (s *System) deliver(ch int32, seq uint64) {
	k := pendKey{ch, seq}
	pe, ok := s.pending[k]
	if !ok {
		return
	}
	delete(s.pending, k)
	s.inflight.Add(-1)
	s.sink.StepRec(pe.rec)
	s.tasks.OpDone()
}

// resyncPeer recovers a returning peer on the executor: drop whatever the
// cleared-and-refilled outbox holds (stale interleavings), acknowledge the
// incarnation, re-send current retarget state, then replay the unconfirmed
// per-channel suffix from the pending ledger in (channel, sequence) order.
// Duplicates that survive anywhere downstream are suppressed by the hub's
// release buffer, so replay is always safe — even after a false suspicion.
func (s *System) resyncPeer(role wire.Role, id int, gen uint64) {
	p := s.peerFor(role, id)
	p.clearOutbox()
	p.send(wire.Frame{Type: wire.TResync, Ch: -1, Seq: gen})
	if role == wire.RoleMSS {
		s.deadMSS[id] = false
		// Re-point every MH the dead station was serving: their clients
		// re-dial, covering half-open wireless connections that survived
		// the crash on the client side.
		for h := 0; h < s.cfg.N; h++ {
			if at, st := s.eng.Where(core.MHID(h)); st == core.StatusConnected && int(at) == id {
				s.rtGen++
				s.sendRetarget(core.MHID(h), at, at, s.rtGen)
			}
		}
	} else {
		s.deadMH[id] = false
		// A fresh client process has no target; re-send its current cell.
		at, st := s.eng.Where(core.MHID(id))
		s.rtGen++
		if st == core.StatusConnected {
			s.sendRetarget(core.MHID(id), at, at, s.rtGen)
		} else {
			s.sendRetarget(core.MHID(id), -1, at, s.rtGen)
		}
	}

	// The unconfirmed suffix: every pending transmission that crosses the
	// peer — for a station, wired channels it sends or receives (a frame
	// may have died inside it after crossing the mesh, before confirming)
	// and its downlinks; for a client, its uplinks. Early-confirmed
	// sequences (in the ready set) are excluded: their journey completed.
	keys := make([]pendKey, 0, 16)
	for k := range s.pending {
		kind, a, b := s.layout.Decode(int(k.ch))
		owned := false
		switch kind {
		case engine.ChannelWired:
			owned = role == wire.RoleMSS && (a == id || b == id)
		case engine.ChannelDown:
			owned = role == wire.RoleMSS && a == id
		case engine.ChannelUp:
			owned = role == wire.RoleMH && b == id
		}
		if !owned {
			continue
		}
		if st := &s.chans[k.ch]; st.ready != nil {
			if _, confirmed := st.ready[k.seq]; confirmed {
				continue
			}
		}
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].ch != keys[j].ch {
			return keys[i].ch < keys[j].ch
		}
		return keys[i].seq < keys[j].seq
	})
	for _, k := range keys {
		pe := s.pending[k]
		f := wire.Frame{
			Type:    wire.TData,
			Ch:      k.ch,
			Seq:     k.seq,
			Latency: pe.latency,
			Payload: s.envelopes[k.ch],
		}
		// Route like TransmitRec: the sending station owns the journey, so
		// a frame lost inside a dead *receiving* station replays through
		// its (live) sender.
		kind, a, b := s.layout.Decode(int(k.ch))
		switch kind {
		case engine.ChannelWired, engine.ChannelDown:
			s.mssPeers[a].send(f)
		case engine.ChannelUp:
			s.mhPeers[b].send(f)
		}
	}
	if s.cfg.Trace != nil {
		s.cfg.Trace(s.now(), "resync", fmt.Sprintf("%v%d gen=%d replayed=%d", role, id, gen, len(keys)))
	}
}

// mobilityRelay is the hub's internal mobility observer: it translates the
// engine's join/leave/disconnect notifications into TRetarget frames so
// clients physically re-dial their serving station. Registered before any
// user algorithm; it sends no model messages and charges no costs.
type mobilityRelay struct {
	s *System
}

func (r *mobilityRelay) Name() string { return "netrt/mobility-relay" }

func (r *mobilityRelay) OnJoin(_ core.Context, mss core.MSSID, mh core.MHID, prev core.MSSID, _ bool) {
	r.s.rtGen++
	r.s.sendRetarget(mh, mss, prev, r.s.rtGen)
}

func (r *mobilityRelay) OnLeave(_ core.Context, mss core.MSSID, mh core.MHID) {
	r.s.rtGen++
	r.s.sendRetarget(mh, -1, mss, r.s.rtGen)
}

func (r *mobilityRelay) OnDisconnect(_ core.Context, mss core.MSSID, mh core.MHID) {
	r.s.rtGen++
	r.s.sendRetarget(mh, -1, mss, r.s.rtGen)
}

var _ core.MobilityObserver = (*mobilityRelay)(nil)

// sendRetarget queues a TRetarget for mh: at >= 0 points the client at that
// station's address, at < 0 detaches it.
func (s *System) sendRetarget(mh core.MHID, at core.MSSID, prev core.MSSID, gen uint64) {
	h := wire.Handoff{MH: int32(mh), MSS: int32(at), Prev: int32(prev), Gen: gen}
	if at >= 0 {
		h.Addr = s.cfg.MSSAddrs[at]
	}
	s.mhPeers[mh].send(wire.Frame{Type: wire.TRetarget, Ch: -1, Payload: h.Encode()})
}

// Register implements core.Registrar. It must be called before Start.
func (s *System) Register(alg core.Algorithm) core.Context {
	if s.started {
		panic("netrt: Register after Start")
	}
	return s.eng.Register(alg)
}

// Engine exposes the shared network engine (for conformance tests and
// cross-substrate tooling). Access it only via Do after Start.
func (s *System) Engine() *engine.Engine { return s.eng }

// Injector exposes the fault injector, or nil when the system runs
// fault-free. After Start, access it only via Do.
func (s *System) Injector() *faults.Injector { return s.inj }

// Meter returns the cost meter. Read it only after WaitIdle or Stop.
func (s *System) Meter() *cost.Meter { return s.eng.Meter() }

// Config returns the hub configuration.
func (s *System) Config() Config { return s.cfg }

// Tracer returns the tracer the system was configured with, or nil.
func (s *System) Tracer() *obs.Tracer { return s.cfg.Obs }

// MetricsHandler returns an http.Handler exposing the observability state
// (Prometheus text at /metrics, expvar-style JSON at /vars), or 404s when
// the system was built without a tracer.
func (s *System) MetricsHandler() http.Handler {
	if s.cfg.Obs == nil {
		return http.NotFoundHandler()
	}
	return s.cfg.Obs.Handler()
}

// Stats returns a copy of the model-level counters. After Start it
// synchronises with the executor, so it must not be called from inside Do
// or a handler (read s.Engine().Stats() there instead).
func (s *System) Stats() engine.Stats {
	if !s.started {
		return s.eng.Stats()
	}
	var st engine.Stats
	s.Do(func() { st = s.eng.Stats() })
	return st
}

// Searches reports searches performed so far (same calling rules as Stats).
func (s *System) Searches() int64 { return s.Stats().Searches }

// Start launches the executor. Algorithms must already be registered.
func (s *System) Start() {
	if s.started {
		panic("netrt: Start called twice")
	}
	s.started = true
	s.epoch = time.Now()
	go func() {
		defer close(s.execDone)
		for {
			fn, ok := s.tasks.Pop()
			if !ok {
				return
			}
			fn()
			s.tasks.Done()
		}
	}()
}

// WaitReady blocks until the whole cluster is wired up — every MSS node
// holds a hub connection, every MH client does too and has confirmed its
// initial wireless attach — or the timeout elapses, reporting success.
// Readiness is a liveness convenience (outboxes queue regardless); demos
// and tests use it to avoid measuring connection establishment. The wait is
// condition-signaled: peers wake it on every connection-state flip and
// attach confirmation, so there is no polling interval to tune.
func (s *System) WaitReady(timeout time.Duration) bool {
	return s.lv.waitReady(timeout)
}

// ready reports instantaneous cluster readiness.
func (s *System) ready() bool { return s.lv.ready() }

// Do runs fn on the executor and waits for it — the only safe way to call
// algorithm APIs from outside handlers after Start.
func (s *System) Do(fn func()) {
	if !s.started {
		panic("netrt: Do before Start")
	}
	done := make(chan struct{})
	if !s.tasks.Push(func() {
		defer close(done)
		fn()
	}) {
		panic("netrt: Do after Stop")
	}
	<-done
}

// WaitIdle blocks until the network drains — no task queued or running, no
// timer or transmission in flight — or the timeout elapses, reporting
// whether it drained. The predicate is exact: every transmission holds an
// in-flight op from Transmit until its confirmation releases the delivery.
func (s *System) WaitIdle(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		ch, idle := s.tasks.IdleWait()
		if idle {
			return true
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return false
		}
		t := time.NewTimer(remain)
		select {
		case <-ch:
			t.Stop()
		case <-t.C:
			return false
		}
	}
}

// Stop shuts the hub down: it asks every node and client to exit (TBye),
// gives the outboxes a moment to flush, then tears down the executor, the
// listener and every connection, and waits for all goroutines.
func (s *System) Stop() {
	s.stopOnce.Do(func() {
		for _, p := range s.mssPeers {
			p.send(wire.Frame{Type: wire.TBye, Ch: -1})
		}
		for _, p := range s.mhPeers {
			p.send(wire.Frame{Type: wire.TBye, Ch: -1})
		}
		s.flushPeers(500 * time.Millisecond)
		close(s.stopped)
		s.tasks.Close()
		if s.started {
			<-s.execDone
		}
		s.ln.Close()
		for _, p := range s.mssPeers {
			p.close()
		}
		for _, p := range s.mhPeers {
			p.close()
		}
		s.wg.Wait()
	})
}

// flushPeers waits (bounded) for connected peers' outboxes to drain, so
// goodbye frames actually reach their targets. Each wait is
// condition-signaled: pops, clears, closes, and connection flips all wake
// it, and a disconnected peer is skipped immediately (nothing will drain
// its outbox).
func (s *System) flushPeers(timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	peers := append(append([]*peer(nil), s.mssPeers...), s.mhPeers...)
	for _, p := range peers {
		if p.connected() {
			p.flush(deadline)
		}
	}
}

// now returns virtual time (wall time since Start in ticks).
func (s *System) now() sim.Time {
	if s.epoch.IsZero() {
		return 0
	}
	return sim.Time(time.Since(s.epoch) / s.cfg.Tick)
}

func (s *System) checkMSS(id core.MSSID) {
	if int(id) < 0 || int(id) >= s.cfg.M {
		panic(fmt.Sprintf("netrt: invalid mss id %d (M=%d)", int(id), s.cfg.M))
	}
}

func (s *System) checkMH(id core.MHID) {
	if int(id) < 0 || int(id) >= s.cfg.N {
		panic(fmt.Sprintf("netrt: invalid mh id %d (N=%d)", int(id), s.cfg.N))
	}
}

// Move initiates a cell switch for mh (same surface as rt.System.Move).
func (s *System) Move(mh core.MHID, to core.MSSID) {
	s.checkMH(mh)
	s.checkMSS(to)
	s.Do(func() { _ = s.eng.Move(mh, to) })
}

// Disconnect performs a voluntary disconnection of mh.
func (s *System) Disconnect(mh core.MHID) {
	s.checkMH(mh)
	s.Do(func() { _ = s.eng.Disconnect(mh) })
}

// Reconnect re-attaches a disconnected mh at the given MSS, supplying its
// previous location (the paper's common case).
func (s *System) Reconnect(mh core.MHID, at core.MSSID) {
	s.checkMH(mh)
	s.checkMSS(at)
	s.Do(func() { _ = s.eng.Reconnect(mh, at, true) })
}

// Where reports the cell and status of mh (call via Do for a consistent
// snapshot, or after WaitIdle).
func (s *System) Where(mh core.MHID) (core.MSSID, core.MHStatus) {
	return s.eng.Where(mh)
}
