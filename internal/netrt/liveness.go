package netrt

import (
	"sync"
	"time"

	"mobiledist/internal/obs"
	"mobiledist/internal/sim"
	"mobiledist/internal/wire"
)

// Liveness defaults: the hub pings every connected peer each interval,
// marks it suspect after suspectAfter consecutive unanswered pings, and
// dead once no pong has arrived for deadAfter. Config fields override all
// three.
const (
	defaultHeartbeatEvery = 25 * time.Millisecond
	defaultSuspectAfter   = 3
	defaultDeadAfter      = 500 * time.Millisecond
)

// PeerState is the hub's liveness verdict on one cluster peer.
type PeerState uint8

const (
	// PeerAlive: the peer answers heartbeats (or has not yet been judged —
	// liveness only starts once the peer first connects).
	PeerAlive PeerState = iota
	// PeerSuspect: K consecutive heartbeats went unanswered.
	PeerSuspect
	// PeerDead: no pong within the dead deadline. The hub cleared the
	// peer's outbox; deliveries park until a resync replays the suffix.
	PeerDead
)

// String names the state (the /status JSON vocabulary).
func (s PeerState) String() string {
	switch s {
	case PeerAlive:
		return "alive"
	case PeerSuspect:
		return "suspect"
	case PeerDead:
		return "dead"
	default:
		return "unknown"
	}
}

// PeerHealth is one row of the hub's peer liveness table (PeerHealth API
// and the /status endpoint).
type PeerHealth struct {
	// Role and ID identify the peer (station or mobile host).
	Role wire.Role
	ID   int
	// State is the current liveness verdict.
	State PeerState
	// Connected reports whether a TCP connection currently stands.
	Connected bool
	// Gen is the newest incarnation generation admitted for this id.
	Gen uint64
	// Missed is the current run of consecutive unanswered heartbeats;
	// Misses is the cumulative count over the hub's lifetime.
	Missed int
	Misses int64
	// LastPong is the wall time of the last heartbeat answer (zero before
	// the first connection).
	LastPong time.Time
	// OutboxDepth is the number of frames queued toward the peer.
	OutboxDepth int
}

// lvPeer is the tracker's per-peer record.
type lvPeer struct {
	state     PeerState
	connected bool
	gen       uint64
	needSync  bool
	pingSeq   uint64 // last ping sent
	pongSeq   uint64 // last ping answered
	pingAt    time.Time
	lastPong  time.Time
	missed    int
	misses    int64
}

// liveness is the hub's liveness tracker and cluster-readiness monitor: one
// mutex + condvar over the per-peer state, the MH attach generations, and
// the heartbeat RTT histogram. Reader goroutines, the heartbeat ticker, and
// WaitReady all meet here; the lock order is liveness.mu before any peer's
// mutex (peers call back into the tracker only from outside their own
// locks).
type liveness struct {
	mu   sync.Mutex
	cond *sync.Cond
	m, n int

	suspectK int
	deadFor  time.Duration

	peers    []lvPeer // stations 0..m-1, then mobile hosts 0..n-1
	attached []uint64 // latest handoff generation each MH confirmed

	tracer *obs.Tracer
	now    func() sim.Time
	rtt    obs.Histogram // heartbeat round-trip times, µs
}

func newLiveness(m, n, suspectK int, deadFor time.Duration, tracer *obs.Tracer, now func() sim.Time) *liveness {
	if suspectK <= 0 {
		suspectK = defaultSuspectAfter
	}
	if deadFor <= 0 {
		deadFor = defaultDeadAfter
	}
	lv := &liveness{
		m:        m,
		n:        n,
		suspectK: suspectK,
		deadFor:  deadFor,
		peers:    make([]lvPeer, m+n),
		attached: make([]uint64, n),
		tracer:   tracer,
		now:      now,
	}
	lv.cond = sync.NewCond(&lv.mu)
	return lv
}

func (lv *liveness) idx(role wire.Role, id int) int {
	if role == wire.RoleMH {
		return lv.m + id
	}
	return id
}

func (lv *liveness) role(i int) (wire.Role, int) {
	if i >= lv.m {
		return wire.RoleMH, i - lv.m
	}
	return wire.RoleMSS, i
}

// noteConn records a connection-state flip for the peer (called from the
// peer's onChange hook, outside its lock). The first connection starts the
// liveness clock: before it, the peer is never judged.
func (lv *liveness) noteConn(role wire.Role, id int, connected bool) {
	lv.mu.Lock()
	p := &lv.peers[lv.idx(role, id)]
	p.connected = connected
	if connected && p.lastPong.IsZero() {
		p.lastPong = time.Now()
	}
	if !connected && p.gen != 0 {
		// A dropped connection can swallow frames that were already written
		// into its send buffer (write success ≠ delivery). Flag the peer so
		// the next admission or pong replays the unconfirmed suffix; the
		// release buffer suppresses whatever actually made it across.
		p.needSync = true
	}
	lv.cond.Broadcast()
	lv.mu.Unlock()
}

// noteAttached records an MH client's wireless-attach confirmation.
func (lv *liveness) noteAttached(mh int, gen uint64) {
	lv.mu.Lock()
	if gen > lv.attached[mh] {
		lv.attached[mh] = gen
	}
	lv.cond.Broadcast()
	lv.mu.Unlock()
}

// ready reports cluster readiness: every peer connected, every MH attached.
func (lv *liveness) ready() bool {
	lv.mu.Lock()
	defer lv.mu.Unlock()
	for i := range lv.peers {
		if !lv.peers[i].connected {
			return false
		}
	}
	for _, gen := range lv.attached {
		if gen == 0 {
			return false
		}
	}
	return true
}

// waitReady blocks until ready() or the timeout, reporting success.
func (lv *liveness) waitReady(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	timer := time.AfterFunc(timeout, lv.wake)
	defer timer.Stop()
	lv.mu.Lock()
	defer lv.mu.Unlock()
	for {
		ok := true
		for i := range lv.peers {
			if !lv.peers[i].connected {
				ok = false
				break
			}
		}
		if ok {
			for _, gen := range lv.attached {
				if gen == 0 {
					ok = false
					break
				}
			}
		}
		if ok {
			return true
		}
		if !time.Now().Before(deadline) {
			return false
		}
		lv.cond.Wait()
	}
}

func (lv *liveness) wake() {
	lv.mu.Lock()
	lv.cond.Broadcast()
	lv.mu.Unlock()
}

// tick advances the heartbeat state machine one interval: charges a miss to
// every peer whose previous ping is unanswered, emits suspect/dead
// transitions, and sends the next round of pings via sendPing (only to
// connected peers — a disconnected peer cannot pong, so its misses accrue
// without queuing useless frames). It returns the peers newly declared
// dead; the caller clears their outboxes and parks their traffic.
func (lv *liveness) tick(sendPing func(role wire.Role, id int, seq uint64)) (died []int) {
	now := time.Now()
	lv.mu.Lock()
	defer lv.mu.Unlock()
	for i := range lv.peers {
		p := &lv.peers[i]
		if p.lastPong.IsZero() {
			continue // never connected: not judged yet
		}
		if p.pingSeq > p.pongSeq || !p.connected {
			p.missed++
			p.misses++
		} else {
			p.missed = 0
		}
		role, id := lv.role(i)
		if p.missed >= lv.suspectK && p.state == PeerAlive {
			p.state = PeerSuspect
			lv.tracer.Record(lv.now(), obs.EvPeerSuspect, int32(id), int32(role), int32(p.missed))
		}
		if p.state != PeerDead && now.Sub(p.lastPong) > lv.deadFor {
			p.state = PeerDead
			p.needSync = true
			lv.tracer.Record(lv.now(), obs.EvPeerDead, int32(id), int32(role), int32(p.missed))
			died = append(died, i)
		}
		if p.connected && p.state != PeerDead {
			p.pingSeq++
			p.pingAt = now
			sendPing(role, id, p.pingSeq)
		}
	}
	return died
}

// pong processes a heartbeat answer, reporting whether the peer needs a
// resync (it was declared dead and its outbox suffix must be replayed —
// possibly a false suspicion on a slow machine; replaying is always safe
// because the hub's sequence check suppresses duplicates).
func (lv *liveness) pong(role wire.Role, id int, seq uint64) (resync bool) {
	now := time.Now()
	lv.mu.Lock()
	defer lv.mu.Unlock()
	p := &lv.peers[lv.idx(role, id)]
	if seq <= p.pongSeq {
		return false // stale or duplicate answer
	}
	p.pongSeq = seq
	p.lastPong = now
	p.missed = 0
	if seq == p.pingSeq && !p.pingAt.IsZero() {
		lv.rtt.Observe(now.Sub(p.pingAt).Microseconds())
	}
	if p.state != PeerAlive {
		p.state = PeerAlive
		lv.tracer.Record(lv.now(), obs.EvPeerRecovered, int32(id), int32(role), int32(p.gen))
	}
	resync = p.needSync
	p.needSync = false
	return resync
}

// admit gates a handshake for (role, id) claiming incarnation generation
// claimed (0 = "assign me one"). It returns the accepted generation and
// whether the hub must resync the peer (replay the unconfirmed suffix and
// re-send retargets). ok is false when the claim is stale — an older
// incarnation than the newest admitted — and the connection must be
// fenced off.
func (lv *liveness) admit(role wire.Role, id int, claimed uint64) (gen uint64, resync, ok bool) {
	lv.mu.Lock()
	defer lv.mu.Unlock()
	p := &lv.peers[lv.idx(role, id)]
	switch {
	case claimed == 0:
		gen = p.gen + 1
	case claimed < p.gen:
		return 0, false, false // stale incarnation: fence it
	default:
		gen = claimed
	}
	// A new incarnation of a peer the hub has talked to before lost its
	// in-memory frames; so did a peer flagged dead. Both need the replay.
	resync = (p.gen != 0 && gen > p.gen) || p.needSync
	p.gen = gen
	p.needSync = false
	if resync {
		// The incarnation announced itself: that is as good as a pong.
		p.lastPong = time.Now()
		p.missed = 0
		if p.state != PeerAlive {
			p.state = PeerAlive
			lv.tracer.Record(lv.now(), obs.EvPeerRecovered, int32(id), int32(role), int32(p.gen))
		}
	}
	return gen, resync, true
}

// genOf reports the newest admitted incarnation generation for the peer.
func (lv *liveness) genOf(role wire.Role, id int) uint64 {
	lv.mu.Lock()
	defer lv.mu.Unlock()
	return lv.peers[lv.idx(role, id)].gen
}

// deadCount reports how many peers are currently declared dead.
func (lv *liveness) deadCount() int {
	lv.mu.Lock()
	defer lv.mu.Unlock()
	dead := 0
	for i := range lv.peers {
		if lv.peers[i].state == PeerDead {
			dead++
		}
	}
	return dead
}

// state reports the current verdict for one peer.
func (lv *liveness) state(role wire.Role, id int) PeerState {
	lv.mu.Lock()
	defer lv.mu.Unlock()
	return lv.peers[lv.idx(role, id)].state
}

// snapshot copies the liveness table; depth supplies each peer's outbox
// depth (called with lv.mu held, so it must not take lv.mu itself; frame
// queues carry their own locks).
func (lv *liveness) snapshot(depth func(role wire.Role, id int) int) []PeerHealth {
	lv.mu.Lock()
	defer lv.mu.Unlock()
	out := make([]PeerHealth, len(lv.peers))
	for i := range lv.peers {
		p := &lv.peers[i]
		role, id := lv.role(i)
		out[i] = PeerHealth{
			Role:      role,
			ID:        id,
			State:     p.state,
			Connected: p.connected,
			Gen:       p.gen,
			Missed:    p.missed,
			Misses:    p.misses,
			LastPong:  p.lastPong,
		}
		if depth != nil {
			out[i].OutboxDepth = depth(role, id)
		}
	}
	return out
}

// rttSummary snapshots the heartbeat RTT histogram (count, mean µs, p99 µs).
func (lv *liveness) rttSummary() (count int64, mean float64, p99 int64) {
	lv.mu.Lock()
	defer lv.mu.Unlock()
	return lv.rtt.Count(), lv.rtt.Mean(), lv.rtt.Quantile(0.99)
}
