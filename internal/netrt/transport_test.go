package netrt

import (
	"strings"
	"testing"

	"mobiledist/internal/core"
	"mobiledist/internal/cost"
)

// TestClusterValidateTransport pins the config surface: the two known
// substrate names (and empty) pass, anything else is refused.
func TestClusterValidateTransport(t *testing.T) {
	base := ClusterConfig{Hub: "127.0.0.1:1", MSS: []string{"127.0.0.1:2"}, M: 1, N: 1}
	for _, tr := range []string{"", TransportTCP, TransportUDP} {
		c := base
		c.Transport = tr
		if err := c.Validate(); err != nil {
			t.Errorf("Validate(transport=%q) = %v, want nil", tr, err)
		}
	}
	c := base
	c.Transport = "carrier-pigeon"
	if err := c.Validate(); err == nil || !strings.Contains(err.Error(), "carrier-pigeon") {
		t.Errorf("Validate(unknown transport) = %v, want naming error", err)
	}
}

// TestLoopbackUDPFIFOAcrossMoves is the TCP FIFO test on the datagram
// substrate: an ordered MH→MH stream across two handoffs, every hop an
// authenticated UDP session. Delivery order and completeness must match the
// model exactly — the dgram layer's retransmit and reassembly are invisible
// above the net.Conn seam.
func TestLoopbackUDPFIFOAcrossMoves(t *testing.T) {
	const batch = 8
	cfg := DefaultConfig(3, 6)
	cfg.Transport = TransportUDP
	lb := startLoopback(t, cfg)
	defer lb.Stop()

	if got := lb.Sys.Transport(); got != TransportUDP {
		t.Fatalf("Sys.Transport() = %q, want %q", got, TransportUDP)
	}

	var received []int
	p := &probe{onMH: func(_ core.Context, at core.MHID, msg core.Message) {
		if at == 1 {
			received = append(received, msg.(int))
		}
	}}
	ctx := lb.Sys.Register(p)
	lb.Sys.Start()
	waitReady(t, lb)

	send := func(from, to int) {
		lb.Sys.Do(func() {
			for i := from; i < to; i++ {
				if err := ctx.SendMHToMH(0, 1, i, cost.CatAlgorithm); err != nil {
					t.Errorf("SendMHToMH: %v", err)
				}
			}
		})
	}
	send(0, batch)
	lb.Sys.Move(1, 2)
	send(batch, 2*batch)
	lb.Sys.Move(1, 0)
	send(2*batch, 3*batch)
	settle(t, lb)

	var snap []int
	lb.Sys.Do(func() { snap = append(snap, received...) })
	if len(snap) != 3*batch {
		t.Fatalf("received %d messages, want %d", len(snap), 3*batch)
	}
	for i, v := range snap {
		if v != i {
			t.Fatalf("received[%d] = %d, want %d (FIFO violated)", i, v, i)
		}
	}
}

// TestLoopbackUDPRestartNode crash-restarts a relay over the datagram
// substrate: the UDP socket must rebind, the new incarnation's sessions
// re-establish, and traffic drain — the generation fence and resync replay
// working identically to TCP.
func TestLoopbackUDPRestartNode(t *testing.T) {
	cfg := DefaultConfig(2, 4)
	cfg.Transport = TransportUDP
	lb := startLoopback(t, cfg)
	defer lb.Stop()

	var got int
	p := &probe{onMH: func(_ core.Context, at core.MHID, _ core.Message) {
		if at == 1 {
			got++
		}
	}}
	ctx := lb.Sys.Register(p)
	lb.Sys.Start()
	waitReady(t, lb)

	lb.Sys.Do(func() {
		for i := 0; i < 4; i++ {
			if err := ctx.SendMHToMH(0, 1, i, cost.CatAlgorithm); err != nil {
				t.Errorf("SendMHToMH: %v", err)
			}
		}
	})
	settle(t, lb)

	if err := lb.RestartNode(0); err != nil {
		t.Fatalf("RestartNode over udp: %v", err)
	}
	waitReady(t, lb)
	lb.Sys.Do(func() {
		for i := 4; i < 8; i++ {
			if err := ctx.SendMHToMH(0, 1, i, cost.CatAlgorithm); err != nil {
				t.Errorf("SendMHToMH: %v", err)
			}
		}
	})
	settle(t, lb)

	var snap int
	lb.Sys.Do(func() { snap = got })
	if snap != 8 {
		t.Fatalf("delivered %d messages across the restart, want 8", snap)
	}
}
