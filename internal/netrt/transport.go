package netrt

import (
	"fmt"
	"net"
	"time"

	"mobiledist/internal/dgram"
	"mobiledist/internal/wire"
)

// The transport seam: every socket the runtime opens — the hub's listener,
// the stations' mesh and wireless listeners, and all dialling peers — goes
// through one of these, so the whole cluster runs over plain TCP or over
// authenticated UDP datagram sessions (internal/dgram) by flipping one
// config field. Both yield net.Conn/net.Listener carrying internal/wire
// frames, so nothing above this seam changes.
const (
	// TransportTCP runs every cluster connection over plain TCP streams.
	TransportTCP = "tcp"
	// TransportUDP runs every cluster connection over internal/dgram:
	// HMAC-authenticated UDP sessions with replay windows, fragmentation,
	// and selective retransmit.
	TransportUDP = "udp"
)

// DefaultSecret is the development cluster secret used when no explicit
// secret is configured. It offers no confidentiality against anyone who can
// read this repository; production deployments must set their own.
const DefaultSecret = "mobiledist-insecure-dev-secret"

// dialTokenTTL bounds per-dial minted connect tokens. Reconnects mint
// fresh tokens, so the window only needs to cover one handshake.
const dialTokenTTL = time.Minute

// transport abstracts how cluster processes reach each other. advertise is
// the address dialers were told to dial (a nemesis proxy, a NAT mapping);
// the UDP listener accepts connect tokens bound to it in addition to its
// own socket address. TCP ignores it.
type transport interface {
	name() string
	dial(addr string) (net.Conn, error)
	listen(addr, advertise string) (net.Listener, error)
}

// newTransport builds the substrate named by kind ("" means TCP). role and
// id identify the dialling process in per-dial minted UDP connect tokens;
// listen-only users (the hub) may pass zero values.
func newTransport(kind, secret string, role wire.Role, id int) (transport, error) {
	switch kind {
	case "", TransportTCP:
		return tcpTransport{}, nil
	case TransportUDP:
		return &udpTransport{secret: secretBytes(secret), role: role, id: id}, nil
	default:
		return nil, fmt.Errorf("netrt: unknown transport %q", kind)
	}
}

// secretBytes resolves the configured cluster secret (empty: the insecure
// development default).
func secretBytes(s string) []byte {
	if s == "" {
		s = DefaultSecret
	}
	return []byte(s)
}

// tcpTransport is the default substrate: plain TCP streams.
type tcpTransport struct{}

func (tcpTransport) name() string                     { return TransportTCP }
func (tcpTransport) dial(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
func (tcpTransport) listen(addr, _ string) (net.Listener, error) {
	return net.Listen("tcp", addr)
}

// udpTransport carries cluster connections over internal/dgram sessions.
// Without a static token it mints a fresh connect token per dial, bound to
// the dialled address with a short TTL; with one (out-of-band bootstrap,
// see ClientConfig.Token) every dial presents the same token, which must
// have been minted for every address the process may roam to.
type udpTransport struct {
	secret []byte
	role   wire.Role
	id     int

	// token/key, when set, are the static credential (useStaticBlob).
	token, key []byte

	cfg dgram.Config
}

func (t *udpTransport) name() string { return TransportUDP }

func (t *udpTransport) dial(addr string) (net.Conn, error) {
	token, key := t.token, t.key
	if token == nil {
		var err error
		token, key, err = dgram.Mint(t.secret, dgram.TokenInfo{
			Role:   byte(t.role),
			ID:     int64(t.id),
			Expiry: time.Now().Add(dialTokenTTL),
			Addrs:  []string{addr},
		})
		if err != nil {
			return nil, err
		}
	}
	return dgram.Dial(addr, token, key, t.cfg)
}

func (t *udpTransport) listen(addr, advertise string) (net.Listener, error) {
	l, err := dgram.Listen(addr, t.secret, t.cfg)
	if err != nil {
		return nil, err
	}
	if advertise != "" {
		l.SetAdvertise(advertise)
	}
	return l, nil
}

// useStaticBlob installs an out-of-band credential blob (token || key, as
// printed by mobilenode -mint-token): the final KeySize bytes are the
// derived session key, the rest the connect token.
func (t *udpTransport) useStaticBlob(blob []byte) error {
	if len(blob) <= dgram.KeySize {
		return fmt.Errorf("netrt: token blob too short (%d bytes)", len(blob))
	}
	t.token = append([]byte(nil), blob[:len(blob)-dgram.KeySize]...)
	t.key = append([]byte(nil), blob[len(blob)-dgram.KeySize:]...)
	return nil
}

// setAdvertise forwards the publicly dialled address to a dgram listener
// bound earlier (the loopback launcher learns the wrapped hub address only
// after the socket exists). TCP listeners ignore it.
func setAdvertise(ln net.Listener, addr string) {
	if dl, ok := ln.(*dgram.Listener); ok {
		dl.SetAdvertise(addr)
	}
}
