package netrt

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"mobiledist/internal/core"
	"mobiledist/internal/cost"
	"mobiledist/internal/obs"
	"mobiledist/internal/sim"
	"mobiledist/internal/wire"
)

// fastLiveness tightens the heartbeat clock so crash tests converge in
// tens of milliseconds instead of the production half-second.
func fastLiveness(cfg Config) Config {
	cfg.HeartbeatEvery = 10 * time.Millisecond
	cfg.SuspectAfter = 2
	cfg.DeadAfter = 120 * time.Millisecond
	return cfg
}

// waitPeerState polls the hub's liveness verdict for a peer.
func waitPeerState(t *testing.T, s *System, role wire.Role, id int, want PeerState) {
	t.Helper()
	deadline := time.Now().Add(idleTimeout)
	for time.Now().Before(deadline) {
		if s.PeerStateOf(role, id) == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("peer %v%d never reached state %v (now %v)", role, id, want, s.PeerStateOf(role, id))
}

// TestOutboxReplayAcrossConnDrop is the satellite regression for the peer
// outbox: an ordered stream keeps flowing while the hub-side connections to
// the relay nodes are repeatedly torn down mid-stream. The outbox's
// head/write/pop discipline plus the hub's release-buffer dedup must lose
// nothing and double-apply nothing.
func TestOutboxReplayAcrossConnDrop(t *testing.T) {
	const batches, batch = 6, 8
	lb := startLoopback(t, DefaultConfig(3, 6))
	defer lb.Stop()

	var received []int
	p := &probe{onMH: func(_ core.Context, at core.MHID, msg core.Message) {
		if at == 1 {
			received = append(received, msg.(int))
		}
	}}
	ctx := lb.Sys.Register(p)
	lb.Sys.Start()
	waitReady(t, lb)

	seq := 0
	for b := 0; b < batches; b++ {
		lb.Sys.Do(func() {
			for i := 0; i < batch; i++ {
				if err := ctx.SendMHToMH(0, 1, seq, cost.CatAlgorithm); err != nil {
					t.Errorf("SendMHToMH: %v", err)
				}
				seq++
			}
		})
		// Tear down the hub↔node connection carrying this batch (and a
		// client uplink for good measure); the node re-dials and the outbox
		// retries the unwritten suffix on the new connection.
		lb.Sys.mssPeers[b%3].dropCurrent()
		if b%2 == 0 {
			lb.Sys.mhPeers[0].dropCurrent()
		}
		time.Sleep(5 * time.Millisecond)
	}
	settle(t, lb)

	var snap []int
	lb.Sys.Do(func() { snap = append(snap, received...) })
	if len(snap) != seq {
		t.Fatalf("received %d of %d messages across connection drops", len(snap), seq)
	}
	for i, v := range snap {
		if v != i {
			t.Fatalf("received[%d] = %d, want %d (lost or double-applied)", i, v, i)
		}
	}
}

// TestLivenessAdmitFencing unit-tests the incarnation ledger: assignment,
// reconnects of the same generation, stale-claim fencing, and the
// needs-resync verdicts.
func TestLivenessAdmitFencing(t *testing.T) {
	lv := newLiveness(2, 2, 3, time.Second, nil, func() sim.Time { return 0 })

	// First hello, no claim: assigned gen 1, no replay (outbox is intact).
	gen, resync, ok := lv.admit(wire.RoleMSS, 0, 0)
	if !ok || gen != 1 || resync {
		t.Fatalf("first admit = (%d, %v, %v), want (1, false, true)", gen, resync, ok)
	}
	// Reconnect claiming the admitted gen: same incarnation, no replay.
	gen, resync, ok = lv.admit(wire.RoleMSS, 0, 1)
	if !ok || gen != 1 || resync {
		t.Fatalf("reconnect admit = (%d, %v, %v), want (1, false, true)", gen, resync, ok)
	}
	// A fresh incarnation (claim 0 again): gen bumps, replay required.
	gen, resync, ok = lv.admit(wire.RoleMSS, 0, 0)
	if !ok || gen != 2 || !resync {
		t.Fatalf("restart admit = (%d, %v, %v), want (2, true, true)", gen, resync, ok)
	}
	// The stale incarnation still dialling: fenced off.
	if _, _, ok := lv.admit(wire.RoleMSS, 0, 1); ok {
		t.Fatal("stale generation 1 admitted after generation 2")
	}
	// A peer flagged dead needs a resync even on a same-gen reconnect.
	lv.mu.Lock()
	lv.peers[lv.idx(wire.RoleMH, 1)].gen = 5
	lv.peers[lv.idx(wire.RoleMH, 1)].needSync = true
	lv.mu.Unlock()
	gen, resync, ok = lv.admit(wire.RoleMH, 1, 5)
	if !ok || gen != 5 || !resync {
		t.Fatalf("dead-peer admit = (%d, %v, %v), want (5, true, true)", gen, resync, ok)
	}
}

// TestNodeCrashRestartResync is the tentpole scenario: the station serving
// the receiver is crash-stopped mid-conversation. The hub must declare it
// dead (events observed), park traffic addressed from it
// (Stats.ParkedOnDeadMSS), and — once a fresh incarnation binds the same
// address — resync it so the full stream completes in order.
func TestNodeCrashRestartResync(t *testing.T) {
	const batch = 8
	cfg := fastLiveness(DefaultConfig(3, 6))
	cfg.Obs = obs.NewTracer(0)
	lb := startLoopback(t, cfg)
	defer lb.Stop()

	var received []int
	p := &probe{onMH: func(_ core.Context, at core.MHID, msg core.Message) {
		if at == 1 {
			received = append(received, msg.(int))
		}
	}}
	ctx := lb.Sys.Register(p)
	lb.Sys.Start()
	waitReady(t, lb)

	send := func(from, to int) {
		lb.Sys.Do(func() {
			for i := from; i < to; i++ {
				if err := ctx.SendMHToMH(0, 1, i, cost.CatAlgorithm); err != nil {
					t.Errorf("SendMHToMH: %v", err)
				}
			}
		})
	}
	send(0, batch) // baseline traffic through a healthy cluster
	settle(t, lb)

	// Crash the receiver's serving station (round-robin: mh1 → mss1).
	lb.KillNode(1)
	waitPeerState(t, lb.Sys, wire.RoleMSS, 1, PeerDead)

	// Traffic sent *while the station is dead*: MH→MH toward the dead cell
	// wedges mid-journey, and a wired send originating at the dead station
	// parks immediately (the ParkedOnDeadMSS path).
	send(batch, 2*batch)
	// The executor's dead flag is flipped by a task the heartbeat loop
	// pushes, so keep poking wired sends from the dead station until one
	// parks (each extra send is replayed and delivered after the restart —
	// the probe ignores MSS arrivals).
	waitParked := time.Now().Add(idleTimeout)
	for lb.Sys.ParkedOnDead() == 0 && time.Now().Before(waitParked) {
		lb.Sys.Do(func() {
			ctx.SendFixed(1, 0, "from-the-grave", cost.CatAlgorithm)
		})
		time.Sleep(5 * time.Millisecond)
	}
	if lb.Sys.ParkedOnDead() == 0 {
		t.Fatal("no transmission parked on the dead station")
	}

	// Restart: a fresh incarnation on the same address. The hub admits it
	// at a new generation, replays the unconfirmed suffix, and retargets
	// the resident clients.
	if err := lb.RestartNode(1); err != nil {
		t.Fatalf("RestartNode: %v", err)
	}
	waitPeerState(t, lb.Sys, wire.RoleMSS, 1, PeerAlive)
	send(2*batch, 3*batch) // post-recovery traffic
	settle(t, lb)

	var snap []int
	lb.Sys.Do(func() { snap = append(snap, received...) })
	if len(snap) != 3*batch {
		t.Fatalf("received %d of %d messages across the crash", len(snap), 3*batch)
	}
	for i, v := range snap {
		if v != i {
			t.Fatalf("received[%d] = %d, want %d (order broken by resync)", i, v, i)
		}
	}

	// The new incarnation carries a bumped generation, and the liveness
	// events tell the story: suspect and/or dead, then recovered.
	if gen := lb.Nodes[1].Gen(); gen < 2 {
		t.Errorf("restarted node generation = %d, want >= 2", gen)
	}
	var sawDead, sawRecovered bool
	for _, ev := range cfg.Obs.Events() {
		switch ev.Kind {
		case obs.EvPeerDead:
			if ev.A == 1 && ev.B == int32(wire.RoleMSS) {
				sawDead = true
			}
		case obs.EvPeerRecovered:
			if ev.A == 1 && ev.B == int32(wire.RoleMSS) {
				sawRecovered = true
			}
		}
	}
	if !sawDead || !sawRecovered {
		t.Errorf("liveness events: dead=%v recovered=%v, want both", sawDead, sawRecovered)
	}
	if st := lb.Sys.Stats(); st.ParkedOnDeadMSS == 0 {
		t.Error("engine Stats.ParkedOnDeadMSS = 0, want > 0")
	}
}

// TestHealthEndpoints drives /health and /status on all three roles across
// a node death: the hub reports ok → degraded (dead peer visible in the
// table) → ok, and node/client endpoints answer with their role documents.
func TestHealthEndpoints(t *testing.T) {
	cfg := fastLiveness(DefaultConfig(2, 4))
	lb := startLoopback(t, cfg)
	defer lb.Stop()
	lb.Sys.Register(&probe{})
	lb.Sys.Start()
	waitReady(t, lb)

	hub := httptest.NewServer(lb.Sys.HealthHandler())
	defer hub.Close()
	node := httptest.NewServer(lb.Nodes[0].HealthHandler())
	defer node.Close()
	client := httptest.NewServer(lb.Clients[0].HealthHandler())
	defer client.Close()

	getJSON := func(url string, into any) {
		t.Helper()
		resp, err := hub.Client().Get(url)
		if err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", url, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("GET %s: decode: %v", url, err)
		}
	}

	var h struct {
		Status    string `json:"status"`
		Role      string `json:"role"`
		DeadPeers int    `json:"dead_peers"`
	}
	getJSON(hub.URL+"/health", &h)
	if h.Status != "ok" || h.Role != "hub" {
		t.Fatalf("healthy hub /health = %+v", h)
	}
	getJSON(node.URL+"/health", &h)
	if h.Status != "ok" || h.Role != "mss" {
		t.Fatalf("node /health = %+v", h)
	}
	getJSON(client.URL+"/health", &h)
	if h.Status != "ok" || h.Role != "mh" {
		t.Fatalf("client /health = %+v", h)
	}

	// During death: hub degrades and the status table names the dead peer.
	lb.KillNode(1)
	waitPeerState(t, lb.Sys, wire.RoleMSS, 1, PeerDead)
	getJSON(hub.URL+"/health", &h)
	if h.Status != "degraded" || h.DeadPeers != 1 {
		t.Fatalf("hub /health during death = %+v, want degraded/1", h)
	}
	var st struct {
		Role      string `json:"role"`
		M         int    `json:"m"`
		N         int    `json:"n"`
		DeadPeers int    `json:"dead_peers"`
		Peers     []struct {
			Role  string `json:"role"`
			ID    int    `json:"id"`
			State string `json:"state"`
		} `json:"peers"`
	}
	getJSON(hub.URL+"/status", &st)
	if st.Role != "hub" || st.M != 2 || st.N != 4 || st.DeadPeers != 1 {
		t.Fatalf("hub /status during death = %+v", st)
	}
	foundDead := false
	for _, p := range st.Peers {
		if p.Role == "mss" && p.ID == 1 {
			if p.State != "dead" {
				t.Fatalf("peer mss1 state = %q, want dead", p.State)
			}
			foundDead = true
		}
	}
	if !foundDead {
		t.Fatal("dead peer mss1 missing from /status table")
	}

	// After restart: back to ok, peer alive again.
	if err := lb.RestartNode(1); err != nil {
		t.Fatalf("RestartNode: %v", err)
	}
	waitPeerState(t, lb.Sys, wire.RoleMSS, 1, PeerAlive)
	getJSON(hub.URL+"/health", &h)
	if h.Status != "ok" {
		t.Fatalf("hub /health after restart = %+v, want ok", h)
	}

	var ns struct {
		Role string `json:"role"`
		ID   int    `json:"id"`
	}
	getJSON(node.URL+"/status", &ns)
	if ns.Role != "mss" || ns.ID != 0 {
		t.Fatalf("node /status = %+v", ns)
	}
	var cs struct {
		Role     string `json:"role"`
		ID       int    `json:"id"`
		Attached bool   `json:"attached"`
	}
	getJSON(client.URL+"/status", &cs)
	if cs.Role != "mh" || cs.ID != 0 || !cs.Attached {
		t.Fatalf("client /status = %+v, want attached mh0", cs)
	}
}

// TestClientCrashRestart: an MH client process dies and a fresh incarnation
// replaces it; the hub resyncs the client's unconfirmed uplinks and
// re-sends its current cell, so traffic from and to that MH completes.
func TestClientCrashRestart(t *testing.T) {
	const batch = 6
	cfg := fastLiveness(DefaultConfig(2, 4))
	lb := startLoopback(t, cfg)
	defer lb.Stop()

	var received []int
	p := &probe{onMH: func(_ core.Context, at core.MHID, msg core.Message) {
		if at == 1 {
			received = append(received, msg.(int))
		}
	}}
	ctx := lb.Sys.Register(p)
	lb.Sys.Start()
	waitReady(t, lb)

	send := func(from, to int) {
		lb.Sys.Do(func() {
			for i := from; i < to; i++ {
				if err := ctx.SendMHToMH(0, 1, i, cost.CatAlgorithm); err != nil {
					t.Errorf("SendMHToMH: %v", err)
				}
			}
		})
	}
	send(0, batch)
	settle(t, lb)

	lb.Clients[1].Stop()
	waitPeerState(t, lb.Sys, wire.RoleMH, 1, PeerDead)
	// Traffic toward the dead client's cell still resolves: the serving
	// node radios into the cell and confirms (model semantics — the engine
	// re-checks MH state at delivery time). The point here is the uplink
	// resync + retarget path when the fresh incarnation arrives.
	send(batch, 2*batch)
	if err := lb.RestartClient(1); err != nil {
		t.Fatalf("RestartClient: %v", err)
	}
	waitPeerState(t, lb.Sys, wire.RoleMH, 1, PeerAlive)
	settle(t, lb)

	var snap []int
	lb.Sys.Do(func() { snap = append(snap, received...) })
	if len(snap) != 2*batch {
		t.Fatalf("received %d of %d messages across the client crash", len(snap), 2*batch)
	}
	for i, v := range snap {
		if v != i {
			t.Fatalf("received[%d] = %d, want %d", i, v, i)
		}
	}
}
