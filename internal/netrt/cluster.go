package netrt

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"time"
)

// ClusterConfig is the shared topology every cluster process reads: who
// the hub is, where each station listens, and the model scale. It is the
// on-disk contract for cmd/mobilenode (-cluster file) and the in-memory
// one for the loopback launcher.
type ClusterConfig struct {
	// Hub is the hub's TCP address.
	Hub string `json:"hub"`
	// MSS lists each station's TCP address, indexed by MSS id.
	MSS []string `json:"mss"`
	// M and N size the network (M == len(MSS)).
	M int `json:"m"`
	// N is the number of mobile hosts.
	N int `json:"n"`
	// TickUS is the virtual-time tick in microseconds (0: the 50µs
	// default). Relays use it to sleep link latencies.
	TickUS int64 `json:"tick_us,omitempty"`
}

// tick returns the wall duration of one virtual tick.
func (c ClusterConfig) tick() time.Duration {
	if c.TickUS <= 0 {
		return 50 * time.Microsecond
	}
	return time.Duration(c.TickUS) * time.Microsecond
}

// Validate checks internal consistency.
func (c ClusterConfig) Validate() error {
	if c.Hub == "" {
		return fmt.Errorf("netrt: cluster has no hub address")
	}
	if c.M < 1 || c.N < 1 {
		return fmt.Errorf("netrt: cluster M=%d N=%d out of range", c.M, c.N)
	}
	if len(c.MSS) != c.M {
		return fmt.Errorf("netrt: cluster lists %d MSS addresses, want M=%d", len(c.MSS), c.M)
	}
	for i, a := range c.MSS {
		if a == "" {
			return fmt.Errorf("netrt: cluster MSS %d has no address", i)
		}
	}
	return nil
}

// Save writes the cluster file.
func (c ClusterConfig) Save(path string) error {
	if err := c.Validate(); err != nil {
		return err
	}
	b, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// LoadCluster reads and validates a cluster file.
func LoadCluster(path string) (ClusterConfig, error) {
	var c ClusterConfig
	b, err := os.ReadFile(path)
	if err != nil {
		return c, err
	}
	if err := json.Unmarshal(b, &c); err != nil {
		return c, fmt.Errorf("netrt: parse %s: %w", path, err)
	}
	return c, c.Validate()
}

// Loopback is a whole cluster — hub, M relay nodes, N clients — running
// in one process over 127.0.0.1 sockets. Traffic still crosses real TCP
// connections; only process isolation is collapsed. It is the harness the
// conformance suite, the soak test, and the cmd/mobilenode demo drive.
type Loopback struct {
	// Sys is the hub; Register algorithms on it, then Sys.Start().
	Sys *System
	// Nodes are the MSS relays, indexed by station id.
	Nodes []*Node
	// Clients are the MH clients, indexed by mobile host id.
	Clients []*Client
	// Cluster is the topology the pieces were wired with.
	Cluster ClusterConfig
}

// StartLoopback launches a full cluster on loopback sockets from cfg
// (ListenAddr and MSSAddrs are assigned automatically). The hub is
// returned unstarted so algorithms can be registered; nodes and clients
// are already connecting, so Sys.WaitReady succeeds shortly after
// Sys.Start.
func StartLoopback(cfg Config) (*Loopback, error) {
	// Bind every station's listener first so the address exchange (hub →
	// client retargets) has real ports before anything dials.
	listeners := make([]net.Listener, cfg.M)
	addrs := make([]string, cfg.M)
	fail := func(err error) (*Loopback, error) {
		for _, ln := range listeners {
			if ln != nil {
				ln.Close()
			}
		}
		return nil, err
	}
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return fail(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}

	cfg.ListenAddr = "127.0.0.1:0"
	cfg.MSSAddrs = addrs
	sys, err := NewSystem(cfg)
	if err != nil {
		return fail(err)
	}
	lb := &Loopback{Sys: sys}
	lb.Cluster = ClusterConfig{
		Hub:    sys.Addr(),
		MSS:    addrs,
		M:      cfg.M,
		N:      cfg.N,
		TickUS: int64(cfg.Tick / time.Microsecond),
	}

	lb.Nodes = make([]*Node, cfg.M)
	for i := range lb.Nodes {
		n, err := StartNode(NodeConfig{
			ID:       i,
			Cluster:  lb.Cluster,
			Listener: listeners[i],
			FrameTap: cfg.FrameTap,
		})
		if err != nil {
			lb.Stop()
			return nil, err
		}
		lb.Nodes[i] = n
	}
	lb.Clients = make([]*Client, cfg.N)
	for h := range lb.Clients {
		c, err := StartClient(ClientConfig{
			ID:       h,
			Cluster:  lb.Cluster,
			FrameTap: cfg.FrameTap,
		})
		if err != nil {
			lb.Stop()
			return nil, err
		}
		lb.Clients[h] = c
	}
	return lb, nil
}

// Stop tears the whole cluster down: hub first (so the engine stops
// producing traffic), then every node and client.
func (lb *Loopback) Stop() {
	if lb.Sys != nil {
		lb.Sys.Stop()
	}
	for _, n := range lb.Nodes {
		if n != nil {
			n.Stop()
		}
	}
	for _, c := range lb.Clients {
		if c != nil {
			c.Stop()
		}
	}
}
