package netrt

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"time"

	"mobiledist/internal/wire"
)

// ClusterConfig is the shared topology every cluster process reads: who
// the hub is, where each station listens, and the model scale. It is the
// on-disk contract for cmd/mobilenode (-cluster file) and the in-memory
// one for the loopback launcher.
type ClusterConfig struct {
	// Hub is the hub's TCP address.
	Hub string `json:"hub"`
	// MSS lists each station's TCP address, indexed by MSS id.
	MSS []string `json:"mss"`
	// M and N size the network (M == len(MSS)).
	M int `json:"m"`
	// N is the number of mobile hosts.
	N int `json:"n"`
	// TickUS is the virtual-time tick in microseconds (0: the 50µs
	// default). Relays use it to sleep link latencies.
	TickUS int64 `json:"tick_us,omitempty"`
	// HeartbeatMS is the liveness ping interval in milliseconds (0: the
	// 25ms default; negative: heartbeats disabled). Relay nodes use the
	// same cadence toward their attached clients.
	HeartbeatMS int64 `json:"heartbeat_ms,omitempty"`
	// DialBackoffMinMS / DialBackoffMaxMS bound every dialler's jittered
	// exponential reconnect backoff, in milliseconds (0: the package
	// defaults, 5ms and 250ms).
	DialBackoffMinMS int64 `json:"dial_backoff_min_ms,omitempty"`
	DialBackoffMaxMS int64 `json:"dial_backoff_max_ms,omitempty"`
	// Transport selects the substrate every cluster connection runs over:
	// "tcp" (default, also empty) or "udp" (authenticated datagram
	// sessions via internal/dgram).
	Transport string `json:"transport,omitempty"`
	// Secret is the shared cluster secret UDP connect tokens are minted
	// and validated under (empty: the insecure development default).
	Secret string `json:"secret,omitempty"`
}

// transport builds the dial/listen substrate for a cluster process. role
// and id identify the dialler in per-dial minted UDP connect tokens.
func (c ClusterConfig) transport(role wire.Role, id int) (transport, error) {
	return newTransport(c.Transport, c.Secret, role, id)
}

// heartbeat returns the liveness ping interval (0 disables heartbeats).
func (c ClusterConfig) heartbeat() time.Duration {
	if c.HeartbeatMS < 0 {
		return 0
	}
	if c.HeartbeatMS == 0 {
		return defaultHeartbeatEvery
	}
	return time.Duration(c.HeartbeatMS) * time.Millisecond
}

// backoffBounds returns the dialler reconnect backoff bounds.
func (c ClusterConfig) backoffBounds() (min, max time.Duration) {
	min = time.Duration(c.DialBackoffMinMS) * time.Millisecond
	max = time.Duration(c.DialBackoffMaxMS) * time.Millisecond
	if min <= 0 {
		min = defaultDialBackoffMin
	}
	if max <= 0 {
		max = defaultDialBackoffMax
	}
	if max < min {
		max = min
	}
	return min, max
}

// heartbeatMS converts a Config heartbeat interval to the ClusterConfig
// field encoding (0 keeps the default, negative disables).
func heartbeatMS(d time.Duration) int64 {
	if d < 0 {
		return -1
	}
	if d == 0 {
		return 0
	}
	ms := int64(d / time.Millisecond)
	if ms < 1 {
		ms = 1
	}
	return ms
}

// tick returns the wall duration of one virtual tick.
func (c ClusterConfig) tick() time.Duration {
	if c.TickUS <= 0 {
		return 50 * time.Microsecond
	}
	return time.Duration(c.TickUS) * time.Microsecond
}

// Validate checks internal consistency.
func (c ClusterConfig) Validate() error {
	if c.Hub == "" {
		return fmt.Errorf("netrt: cluster has no hub address")
	}
	if c.M < 1 || c.N < 1 {
		return fmt.Errorf("netrt: cluster M=%d N=%d out of range", c.M, c.N)
	}
	if len(c.MSS) != c.M {
		return fmt.Errorf("netrt: cluster lists %d MSS addresses, want M=%d", len(c.MSS), c.M)
	}
	for i, a := range c.MSS {
		if a == "" {
			return fmt.Errorf("netrt: cluster MSS %d has no address", i)
		}
	}
	switch c.Transport {
	case "", TransportTCP, TransportUDP:
	default:
		return fmt.Errorf("netrt: unknown transport %q", c.Transport)
	}
	return nil
}

// Save writes the cluster file.
func (c ClusterConfig) Save(path string) error {
	if err := c.Validate(); err != nil {
		return err
	}
	b, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// LoadCluster reads and validates a cluster file.
func LoadCluster(path string) (ClusterConfig, error) {
	var c ClusterConfig
	b, err := os.ReadFile(path)
	if err != nil {
		return c, err
	}
	if err := json.Unmarshal(b, &c); err != nil {
		return c, fmt.Errorf("netrt: parse %s: %w", path, err)
	}
	return c, c.Validate()
}

// Loopback is a whole cluster — hub, M relay nodes, N clients — running
// in one process over 127.0.0.1 sockets. Traffic still crosses real TCP
// connections; only process isolation is collapsed. It is the harness the
// conformance suite, the soak test, and the cmd/mobilenode demo drive.
type Loopback struct {
	// Sys is the hub; Register algorithms on it, then Sys.Start().
	Sys *System
	// Nodes are the MSS relays, indexed by station id. A killed node's slot
	// holds the stopped *Node until RestartNode replaces it.
	Nodes []*Node
	// Clients are the MH clients, indexed by mobile host id.
	Clients []*Client
	// Cluster is the topology the pieces were wired with. Its addresses are
	// the *dialled* ones — when Config.WrapAddr interposed a nemesis proxy,
	// these are proxy addresses, while rawMSS keeps the bind addresses.
	Cluster ClusterConfig

	cfg    Config
	rawMSS []string // bind addresses, pre-WrapAddr (RestartNode rebinds them)
}

// StartLoopback launches a full cluster on loopback sockets from cfg
// (ListenAddr and MSSAddrs are assigned automatically). The hub is
// returned unstarted so algorithms can be registered; nodes and clients
// are already connecting, so Sys.WaitReady succeeds shortly after
// Sys.Start.
func StartLoopback(cfg Config) (*Loopback, error) {
	// Bind every station's listener first so the address exchange (hub →
	// client retargets) has real ports before anything dials.
	listeners := make([]net.Listener, cfg.M)
	addrs := make([]string, cfg.M)
	fail := func(err error) (*Loopback, error) {
		for _, ln := range listeners {
			if ln != nil {
				ln.Close()
			}
		}
		return nil, err
	}
	bindTr, err := newTransport(cfg.Transport, cfg.Secret, 0, -1)
	if err != nil {
		return fail(err)
	}
	for i := range listeners {
		ln, err := bindTr.listen("127.0.0.1:0", "")
		if err != nil {
			return fail(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}

	// The nemesis seam: every address a process will *dial* may be routed
	// through a proxy, while listeners stay bound to the raw sockets.
	wrap := cfg.WrapAddr
	if wrap == nil {
		wrap = func(name, addr string) string { return addr }
	}
	dialAddrs := make([]string, cfg.M)
	for i, a := range addrs {
		dialAddrs[i] = wrap(fmt.Sprintf("mss%d", i), a)
	}

	cfg.ListenAddr = "127.0.0.1:0"
	cfg.MSSAddrs = dialAddrs
	sys, err := NewSystem(cfg)
	if err != nil {
		return fail(err)
	}
	lb := &Loopback{Sys: sys, cfg: cfg, rawMSS: addrs}
	lb.Cluster = ClusterConfig{
		Hub:              wrap("hub", sys.Addr()),
		MSS:              dialAddrs,
		M:                cfg.M,
		N:                cfg.N,
		TickUS:           int64(cfg.Tick / time.Microsecond),
		HeartbeatMS:      heartbeatMS(cfg.HeartbeatEvery),
		DialBackoffMinMS: int64(cfg.DialBackoffMin / time.Millisecond),
		DialBackoffMaxMS: int64(cfg.DialBackoffMax / time.Millisecond),
		Transport:        cfg.Transport,
		Secret:           cfg.Secret,
	}
	// The hub bound before the wrapped (possibly proxied) address existed;
	// tell its listener what dialers will present tokens bound to.
	sys.SetAdvertise(lb.Cluster.Hub)

	lb.Nodes = make([]*Node, cfg.M)
	for i := range lb.Nodes {
		n, err := StartNode(NodeConfig{
			ID:       i,
			Cluster:  lb.Cluster,
			Listener: listeners[i],
			FrameTap: cfg.FrameTap,
		})
		if err != nil {
			lb.Stop()
			return nil, err
		}
		lb.Nodes[i] = n
	}
	lb.Clients = make([]*Client, cfg.N)
	for h := range lb.Clients {
		c, err := StartClient(ClientConfig{
			ID:       h,
			Cluster:  lb.Cluster,
			FrameTap: cfg.FrameTap,
		})
		if err != nil {
			lb.Stop()
			return nil, err
		}
		lb.Clients[h] = c
	}
	return lb, nil
}

// KillNode crash-stops relay node i: every socket it holds closes and its
// goroutines exit, exactly as if the process died. The hub's heartbeat
// tracker notices, declares the station dead, and parks its traffic until
// RestartNode brings a new incarnation up.
func (lb *Loopback) KillNode(i int) {
	if n := lb.Nodes[i]; n != nil {
		n.Stop()
	}
}

// RestartNode starts a fresh incarnation of relay node i on the same bind
// address. The new node's hello claims generation 0 ("assign me one"), so
// the hub fences it in as gen+1 and replays the station's unconfirmed
// suffix. Rebinding retries briefly: the dead incarnation's socket may
// still be releasing.
func (lb *Loopback) RestartNode(i int) error {
	lb.KillNode(i)
	tr, err := lb.Cluster.transport(wire.RoleMSS, i)
	if err != nil {
		return err
	}
	var ln net.Listener
	for attempt := 0; attempt < 50; attempt++ {
		ln, err = tr.listen(lb.rawMSS[i], lb.Cluster.MSS[i])
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		return fmt.Errorf("netrt: rebind mss%d at %s: %w", i, lb.rawMSS[i], err)
	}
	n, err := StartNode(NodeConfig{
		ID:       i,
		Cluster:  lb.Cluster,
		Listener: ln,
		FrameTap: lb.cfg.FrameTap,
	})
	if err != nil {
		ln.Close()
		return err
	}
	lb.Nodes[i] = n
	return nil
}

// RestartClient crash-stops MH client h and starts a fresh incarnation.
func (lb *Loopback) RestartClient(h int) error {
	if c := lb.Clients[h]; c != nil {
		c.Stop()
	}
	c, err := StartClient(ClientConfig{
		ID:       h,
		Cluster:  lb.Cluster,
		FrameTap: lb.cfg.FrameTap,
	})
	if err != nil {
		return err
	}
	lb.Clients[h] = c
	return nil
}

// Stop tears the whole cluster down: hub first (so the engine stops
// producing traffic), then every node and client.
func (lb *Loopback) Stop() {
	if lb.Sys != nil {
		lb.Sys.Stop()
	}
	for _, n := range lb.Nodes {
		if n != nil {
			n.Stop()
		}
	}
	for _, c := range lb.Clients {
		if c != nil {
			c.Stop()
		}
	}
}
