package netrt

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mobiledist/internal/wire"
)

// ClientConfig describes one MH client process.
type ClientConfig struct {
	// ID is the mobile host this client embodies, in [0, N).
	ID int
	// Cluster is the shared cluster topology.
	Cluster ClusterConfig
	// FrameTap observes every frame the client writes (see Config.FrameTap).
	FrameTap func(raw []byte, f wire.Frame)
	// Gen is the incarnation generation claimed in the hub handshake
	// (0: "assign me one"; see NodeConfig.Gen).
	Gen uint64
	// Token, when non-nil and the cluster transport is UDP, is an
	// out-of-band credential blob (token || key, as printed by mobilenode
	// -mint-token) presented on every dial instead of minting fresh
	// tokens from Cluster.Secret. It must have been minted for every
	// address the client may roam to (hub and all stations).
	Token []byte
}

// Client is a mobile host on the wireless tier. It holds one connection to
// the hub (control + uplink hop 0) and at most one wireless connection to
// its current serving MSS node. TRetarget frames from the hub's mobility
// relay move the wireless connection between stations — dialling the new
// cell with backoff, attaching with TAttach, and reporting TAttached — so
// every leave/join handoff is a physical re-dial. Uplink frames sleep
// their latency here, then cross the wireless link; downlink frames
// arriving on it are echoed back so the serving node can confirm them.
//
// At-least-once: the client keeps the set of uplink frames written but not
// yet echoed by the node. If the wireless connection drops (a handoff, or
// plain loss of carrier), the set is flushed as delivered straight to the
// hub — the transmission left the antenna; the model's deliver closure
// decides what arrival means — and the hub's sequence check suppresses the
// duplicate if the node confirmed it too.
type Client struct {
	cfg  ClientConfig
	tick time.Duration
	tr   transport

	gen     atomic.Uint64 // generation the hub admitted (TResync ack)
	saidBye atomic.Bool   // orderly hub shutdown seen

	hub *peer
	upq *frameQueue

	wg       sync.WaitGroup
	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}

	mu      sync.Mutex
	cond    *sync.Cond
	target  wire.Handoff // latest retarget (Addr == "" means detached)
	wconn   net.Conn
	wmu     sync.Mutex // serializes writes on the wireless connection
	ww      *wire.Writer
	wgen    uint64
	pending map[pendKey]struct{} // written-but-unechoed uplink frames
	closed  bool
}

// StartClient launches a client for cluster mobile host id.
func StartClient(cfg ClientConfig) (*Client, error) {
	if err := cfg.Cluster.Validate(); err != nil {
		return nil, err
	}
	if cfg.ID < 0 || cfg.ID >= cfg.Cluster.N {
		return nil, fmt.Errorf("netrt: client id %d out of range (N=%d)", cfg.ID, cfg.Cluster.N)
	}
	c := &Client{
		cfg:     cfg,
		tick:    cfg.Cluster.tick(),
		upq:     newFrameQueue(),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		pending: make(map[pendKey]struct{}),
	}
	c.cond = sync.NewCond(&c.mu)
	c.gen.Store(cfg.Gen)
	tr, err := cfg.Cluster.transport(wire.RoleMH, cfg.ID)
	if err != nil {
		return nil, err
	}
	if len(cfg.Token) > 0 {
		if ut, ok := tr.(*udpTransport); ok {
			if err := ut.useStaticBlob(cfg.Token); err != nil {
				return nil, err
			}
		}
	}
	c.tr = tr

	c.hub = newPeer(fmt.Sprintf("mh%d->hub", cfg.ID), &c.wg, c.onHubFrame)
	c.hub.hello = func() wire.Frame {
		return wire.Frame{Type: wire.THello, Ch: -1, Payload: wire.Hello{
			Role: wire.RoleMH, ID: int32(cfg.ID),
			M: int32(cfg.Cluster.M), N: int32(cfg.Cluster.N),
			Gen: c.gen.Load(),
		}.Encode()}
	}
	c.hub.tap = cfg.FrameTap
	c.hub.backoffMin, c.hub.backoffMax = cfg.Cluster.backoffBounds()
	c.hub.dial = func() (net.Conn, error) { return c.tr.dial(cfg.Cluster.Hub) }
	c.hub.start()

	c.wg.Add(1)
	go c.uplinkLoop()
	c.wg.Add(1)
	go c.wirelessLoop()
	return c, nil
}

// Wait blocks until the client has shut down (Stop or a TBye from the hub).
func (c *Client) Wait() { <-c.done }

// SaidBye reports whether the hub sent an orderly TBye (see Node.SaidBye).
func (c *Client) SaidBye() bool { return c.saidBye.Load() }

// Gen reports the incarnation generation the hub admitted for this client.
func (c *Client) Gen() uint64 { return c.gen.Load() }

// onHubFrame handles frames from the hub connection (reader goroutine).
func (c *Client) onHubFrame(f wire.Frame) {
	switch f.Type {
	case wire.TData:
		c.upq.put(f)
	case wire.TRetarget:
		h, err := wire.DecodeHandoff(f.Payload)
		if err == nil {
			c.retarget(h)
		}
	case wire.THeartbeat:
		if f.Hop == 0 { // hub ping: answer in kind
			c.hub.send(wire.Frame{Type: wire.THeartbeat, Ch: -1, Seq: f.Seq, Hop: 1})
		}
	case wire.TResync:
		c.gen.Store(f.Seq)
	case wire.TBye:
		c.saidBye.Store(true)
		go c.Stop() // not inline: Stop waits for this very reader
	}
}

// retarget adopts a newer handoff: the old wireless connection (if any)
// drops — flushing its at-least-once set — and the dialler goes after the
// new cell. Stale generations (raced by a newer retarget) are ignored.
func (c *Client) retarget(h wire.Handoff) {
	c.mu.Lock()
	if h.Gen <= c.target.Gen {
		c.mu.Unlock()
		return
	}
	c.target = h
	conn := c.wconn
	c.mu.Unlock()
	if conn != nil {
		conn.Close() // wirelessLoop's reader observes EOF and cleans up
	}
	c.cond.Broadcast()
}

// uplinkLoop drains the MH's single uplink pipe: sleep each frame's
// latency, then transmit it over the current wireless connection — or, if
// the MH is detached (between cells or disconnected), resolve it straight
// to the hub, exactly as the model's always-delivering transport does.
func (c *Client) uplinkLoop() {
	defer c.wg.Done()
	for {
		f, epoch, ok := c.upq.head()
		if !ok {
			return
		}
		c.upq.pop(epoch)
		t := time.NewTimer(time.Duration(f.Latency) * c.tick)
		select {
		case <-t.C:
		case <-c.stop:
			t.Stop()
			return
		}
		f.Hop = 1
		c.transmitUp(f)
	}
}

// transmitUp sends one uplink frame over the wireless link, blocking while
// a serving cell exists but its connection is still being established.
func (c *Client) transmitUp(f wire.Frame) {
	k := pendKey{f.Ch, f.Seq}
	for {
		c.mu.Lock()
		for !c.closed && c.target.Addr != "" && c.wconn == nil {
			c.cond.Wait()
		}
		if c.closed {
			c.mu.Unlock()
			return
		}
		if c.target.Addr == "" {
			c.mu.Unlock()
			c.hub.send(wire.Frame{Type: wire.TDelivered, Ch: f.Ch, Seq: f.Seq})
			return
		}
		w, gen := c.ww, c.wgen
		c.pending[k] = struct{}{}
		c.mu.Unlock()

		c.wmu.Lock()
		err := w.WriteFrame(f)
		c.wmu.Unlock()
		if err == nil {
			return
		}
		c.mu.Lock()
		delete(c.pending, k) // not written: retry, don't double-resolve
		c.mu.Unlock()
		c.dropWireless(gen)
	}
}

// wirelessLoop keeps the wireless connection matched to the current
// target: dial (with backoff) whenever a cell is assigned and no
// connection stands, attach, notify the hub, and read the link.
func (c *Client) wirelessLoop() {
	defer c.wg.Done()
	bmin, bmax := c.cfg.Cluster.backoffBounds()
	backoff := bmin
	for {
		c.mu.Lock()
		for !c.closed && (c.target.Addr == "" || c.wconn != nil) {
			c.cond.Wait()
		}
		if c.closed {
			c.mu.Unlock()
			return
		}
		target := c.target
		c.mu.Unlock()

		conn, err := c.tr.dial(target.Addr)
		if err != nil {
			select {
			case <-c.stop:
				return
			case <-time.After(jitterBackoff(backoff)):
			}
			backoff *= 2
			if backoff > bmax {
				backoff = bmax
			}
			continue
		}
		backoff = bmin
		w := wire.NewWriter(conn)
		w.Tap = c.cfg.FrameTap
		if err := w.WriteFrame(wire.Frame{Type: wire.TAttach, Ch: int32(c.cfg.ID)}); err != nil {
			conn.Close()
			continue
		}

		c.mu.Lock()
		if c.closed || c.target.Gen != target.Gen {
			c.mu.Unlock()
			conn.Close() // a retarget raced the dial; chase the new cell
			continue
		}
		c.wgen++
		gen := c.wgen
		c.wconn, c.ww = conn, w
		c.cond.Broadcast()
		c.mu.Unlock()

		c.hub.send(wire.Frame{Type: wire.TAttached, Ch: int32(c.cfg.ID), Seq: target.Gen})
		c.wg.Add(1)
		go c.wirelessReader(conn, gen)
	}
}

// wirelessReader serves one wireless connection: downlink TData is echoed
// back (the node confirms it to the hub), TDelivered echoes prune the
// uplink at-least-once set. On any error the connection is torn down and
// unechoed uplinks are flushed to the hub.
func (c *Client) wirelessReader(conn net.Conn, gen uint64) {
	defer c.wg.Done()
	r := wire.NewReader(conn)
	w := func() *wire.Writer { // the writer paired with this conn
		c.mu.Lock()
		defer c.mu.Unlock()
		if c.wgen == gen {
			return c.ww
		}
		return nil
	}
	for {
		f, err := r.ReadFrame()
		if err != nil {
			break
		}
		switch f.Type {
		case wire.TData:
			if ww := w(); ww != nil {
				c.wmu.Lock()
				_ = ww.WriteFrame(wire.Frame{Type: wire.TDelivered, Ch: f.Ch, Seq: f.Seq})
				c.wmu.Unlock()
			}
		case wire.TDelivered:
			c.mu.Lock()
			delete(c.pending, pendKey{f.Ch, f.Seq})
			c.mu.Unlock()
		case wire.THeartbeat:
			if f.Hop == 0 { // serving node's ping: answer on the same link
				if ww := w(); ww != nil {
					c.wmu.Lock()
					_ = ww.WriteFrame(wire.Frame{Type: wire.THeartbeat, Ch: -1, Seq: f.Seq, Hop: 1})
					c.wmu.Unlock()
				}
			}
		}
	}
	c.dropWireless(gen)
}

// dropWireless tears down the wireless connection of generation gen and
// flushes its written-but-unechoed uplink frames as delivered: they left
// the antenna, and the hub suppresses duplicates if the node confirmed
// them too.
func (c *Client) dropWireless(gen uint64) {
	c.mu.Lock()
	if c.wgen != gen || c.wconn == nil {
		c.mu.Unlock()
		return
	}
	c.wconn.Close()
	c.wconn, c.ww = nil, nil
	flush := make([]pendKey, 0, len(c.pending))
	for k := range c.pending {
		flush = append(flush, k)
	}
	c.pending = make(map[pendKey]struct{})
	c.cond.Broadcast()
	c.mu.Unlock()
	for _, k := range flush {
		c.hub.send(wire.Frame{Type: wire.TDelivered, Ch: k.ch, Seq: k.seq})
	}
}

// Stop shuts the client down and waits for every goroutine to exit.
func (c *Client) Stop() {
	c.stopOnce.Do(func() {
		c.mu.Lock()
		c.closed = true
		if c.wconn != nil {
			c.wconn.Close()
			c.wconn, c.ww = nil, nil
		}
		c.cond.Broadcast()
		c.mu.Unlock()
		close(c.stop)
		c.upq.close()
		c.hub.close()
		c.wg.Wait()
		close(c.done)
	})
}
