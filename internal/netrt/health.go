package netrt

import (
	"encoding/json"
	"net"
	"net/http"
	"time"

	"mobiledist/internal/dgram"
	"mobiledist/internal/wire"
)

// This file is the runtime's operational surface: /health (cheap liveness
// probe) and /status (the full JSON picture — role, incarnation generation,
// peer liveness table, outbox depths) on hub, node, and client. The shape
// follows the udpx gateway idiom the ROADMAP points at: every cluster
// process answers the same two endpoints, so fleet tooling needs one
// scraper. cmd/mobilenode serves these via -health addr.

// peerStatusJSON is one row of the hub's /status peer table.
type peerStatusJSON struct {
	Role      string `json:"role"`
	ID        int    `json:"id"`
	State     string `json:"state"`
	Connected bool   `json:"connected"`
	Gen       uint64 `json:"gen"`
	Missed    int    `json:"missed"`
	Misses    int64  `json:"misses"`
	// LastPongMS is milliseconds since the peer last answered a heartbeat
	// (-1 before its first connection).
	LastPongMS int64 `json:"last_pong_ms"`
	Outbox     int   `json:"outbox"`
}

// hubStatusJSON is the hub's /status document.
type hubStatusJSON struct {
	Role           string             `json:"role"`
	Transport      string             `json:"transport"`
	M              int                `json:"m"`
	N              int                `json:"n"`
	DeadPeers      int                `json:"dead_peers"`
	ParkedOnDead   int64              `json:"parked_on_dead"`
	PendingRecords int64              `json:"pending_records"`
	HeartbeatRTT   rttJSON            `json:"heartbeat_rtt"`
	Peers          []peerStatusJSON   `json:"peers"`
	Dgram          []dgramSessionJSON `json:"dgram_sessions,omitempty"`
}

// dgramSessionJSON is one UDP session's datagram counters (/status, UDP
// transport only): the replay and retransmit numbers the issue's acceptance
// criteria ask operators to watch.
type dgramSessionJSON struct {
	SessionID   uint64 `json:"session_id"`
	Sent        uint64 `json:"packets_sent"`
	Received    uint64 `json:"packets_received"`
	Retransmits uint64 `json:"retransmits"`
	ReplayDrops uint64 `json:"replay_drops"`
	BadPackets  uint64 `json:"bad_packets"`
}

// dgramSessionRows converts dgram session stats to /status rows.
func dgramSessionRows(stats []dgram.Stats) []dgramSessionJSON {
	if len(stats) == 0 {
		return nil
	}
	rows := make([]dgramSessionJSON, 0, len(stats))
	for _, st := range stats {
		rows = append(rows, dgramSessionJSON{
			SessionID:   st.SessionID,
			Sent:        st.PacketsSent,
			Received:    st.PacketsReceived,
			Retransmits: st.Retransmits,
			ReplayDrops: st.ReplayDrops,
			BadPackets:  st.BadPackets,
		})
	}
	return rows
}

// listenerSessions reports the dgram sessions behind a listener, or nil on
// the TCP transport.
func listenerSessions(ln net.Listener) []dgramSessionJSON {
	if dl, ok := ln.(*dgram.Listener); ok {
		return dgramSessionRows(dl.Sessions())
	}
	return nil
}

// connSessions reports the dgram counters of individual connections (the
// client side holds conns, not listeners), skipping TCP conns and nils.
func connSessions(conns ...net.Conn) []dgramSessionJSON {
	var stats []dgram.Stats
	for _, c := range conns {
		if dc, ok := c.(*dgram.Conn); ok && dc != nil {
			stats = append(stats, dc.Stats())
		}
	}
	return dgramSessionRows(stats)
}

// transportName resolves the configured substrate name for /status.
func transportName(kind string) string {
	if kind == "" {
		return TransportTCP
	}
	return kind
}

type rttJSON struct {
	Count  int64   `json:"count"`
	MeanUS float64 `json:"mean_us"`
	P99US  int64   `json:"p99_us"`
}

// healthJSON is the /health document every role answers.
type healthJSON struct {
	Status    string `json:"status"`
	Role      string `json:"role"`
	DeadPeers int    `json:"dead_peers,omitempty"`
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// PeerHealth snapshots the hub's liveness table: one row per cluster peer
// (stations first, then mobile hosts), with outbox depths. Safe to call
// from any goroutine at any point in the lifecycle.
func (s *System) PeerHealth() []PeerHealth {
	return s.lv.snapshot(func(role wire.Role, id int) int {
		return s.peerFor(role, id).outboxDepth()
	})
}

// PeerStateOf reports the liveness verdict for one peer.
func (s *System) PeerStateOf(role wire.Role, id int) PeerState {
	return s.lv.state(role, id)
}

// ParkedOnDead reports how many transmissions have parked on dead peers so
// far (the /status counterpart of engine Stats.ParkedOnDeadMSS, readable
// without the executor).
func (s *System) ParkedOnDead() int64 { return s.parked.Load() }

// HealthHandler returns the hub's operational endpoints: /health answers
// "ok" while no peer is dead ("degraded" otherwise, still HTTP 200 — a dead
// relay degrades the hub, it does not kill it), and /status serves the full
// liveness table. Mount it wherever the deployment terminates HTTP
// (cmd/mobilenode -health).
func (s *System) HealthHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/health", func(w http.ResponseWriter, r *http.Request) {
		h := healthJSON{Status: "ok", Role: "hub", DeadPeers: s.lv.deadCount()}
		if h.DeadPeers > 0 {
			h.Status = "degraded"
		}
		writeJSON(w, h)
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		table := s.PeerHealth()
		doc := hubStatusJSON{
			Role:           "hub",
			Transport:      s.Transport(),
			M:              s.cfg.M,
			N:              s.cfg.N,
			ParkedOnDead:   s.parked.Load(),
			PendingRecords: s.inflight.Load(),
			Peers:          make([]peerStatusJSON, 0, len(table)),
			Dgram:          listenerSessions(s.ln),
		}
		doc.HeartbeatRTT.Count, doc.HeartbeatRTT.MeanUS, doc.HeartbeatRTT.P99US = s.lv.rttSummary()
		for _, p := range table {
			row := peerStatusJSON{
				Role:       p.Role.String(),
				ID:         p.ID,
				State:      p.State.String(),
				Connected:  p.Connected,
				Gen:        p.Gen,
				Missed:     p.Missed,
				Misses:     p.Misses,
				LastPongMS: -1,
				Outbox:     p.OutboxDepth,
			}
			if !p.LastPong.IsZero() {
				row.LastPongMS = time.Since(p.LastPong).Milliseconds()
			}
			if p.State == PeerDead {
				doc.DeadPeers++
			}
			doc.Peers = append(doc.Peers, row)
		}
		writeJSON(w, doc)
	})
	return mux
}

// nodeStatusJSON is a relay node's /status document.
type nodeStatusJSON struct {
	Role         string             `json:"role"`
	Transport    string             `json:"transport"`
	ID           int                `json:"id"`
	Gen          uint64             `json:"gen"`
	HubConnected bool               `json:"hub_connected"`
	Clients      int                `json:"clients"`
	HubOutbox    int                `json:"hub_outbox"`
	PipeDepth    int                `json:"pipe_depth"`
	Dgram        []dgramSessionJSON `json:"dgram_sessions,omitempty"`
}

// HealthHandler returns the relay node's operational endpoints (/health,
// /status): generation, hub connectivity, attached clients, queue depths.
func (n *Node) HealthHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/health", func(w http.ResponseWriter, r *http.Request) {
		h := healthJSON{Status: "ok", Role: "mss"}
		if !n.hub.connected() {
			h.Status = "degraded"
		}
		writeJSON(w, h)
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		doc := nodeStatusJSON{
			Role:         "mss",
			Transport:    transportName(n.cfg.Cluster.Transport),
			ID:           n.cfg.ID,
			Gen:          n.gen.Load(),
			HubConnected: n.hub.connected(),
			HubOutbox:    n.hub.outboxDepth(),
			Dgram:        listenerSessions(n.ln),
		}
		n.linkMu.Lock()
		doc.Clients = len(n.links)
		n.linkMu.Unlock()
		n.pipeMu.Lock()
		for _, q := range n.pipes {
			doc.PipeDepth += q.depth()
		}
		n.pipeMu.Unlock()
		writeJSON(w, doc)
	})
	return mux
}

// clientStatusJSON is an MH client's /status document.
type clientStatusJSON struct {
	Role           string             `json:"role"`
	Transport      string             `json:"transport"`
	ID             int                `json:"id"`
	Gen            uint64             `json:"gen"`
	HubConnected   bool               `json:"hub_connected"`
	Attached       bool               `json:"attached"`
	TargetMSS      int32              `json:"target_mss"`
	PendingUplinks int                `json:"pending_uplinks"`
	Dgram          []dgramSessionJSON `json:"dgram_sessions,omitempty"`
}

// HealthHandler returns the MH client's operational endpoints.
func (c *Client) HealthHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/health", func(w http.ResponseWriter, r *http.Request) {
		h := healthJSON{Status: "ok", Role: "mh"}
		if !c.hub.connected() {
			h.Status = "degraded"
		}
		writeJSON(w, h)
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		doc := clientStatusJSON{
			Role:         "mh",
			Transport:    transportName(c.cfg.Cluster.Transport),
			ID:           c.cfg.ID,
			Gen:          c.gen.Load(),
			HubConnected: c.hub.connected(),
		}
		c.mu.Lock()
		doc.Attached = c.wconn != nil
		doc.TargetMSS = c.target.MSS
		doc.PendingUplinks = len(c.pending)
		wconn := c.wconn
		c.mu.Unlock()
		doc.Dgram = connSessions(c.hub.currentConn(), wconn)
		writeJSON(w, doc)
	})
	return mux
}
