package netrt

import (
	"flag"
	"runtime"
	"testing"
	"time"

	"mobiledist/internal/core"
	"mobiledist/internal/cost"
	"mobiledist/internal/mutex/ring"
	"mobiledist/internal/wire"
)

// -soak stretches TestLoopbackSoak past its quick default; `make soak` runs
// it for 15s under the race detector. -transport picks the socket substrate
// (`make soak TRANSPORT=udp` soaks the datagram sessions).
var (
	soakFor       = flag.Duration("soak", 0, "run the loopback soak test for this long (0: quick pass)")
	soakTransport = flag.String("transport", TransportTCP, "soak transport: tcp or udp")
)

// TestLoopbackSoak drives a loopback cluster with everything at once, for a
// bounded wall-clock window: an ordered MH→MH stream whose receiver keeps
// switching cells, disconnect/reconnect churn on bystanders, R2 token-ring
// CS traffic, the deterministic fault injector dropping, duplicating and
// reordering wireless transmissions the whole time — and, once mid-run, a
// relay node crash-stopped and replaced by a fresh incarnation. The
// assertions are the ones that matter for a network runtime: the system
// never deadlocks (every settle drains), the stream arrives complete and in
// order (no FIFO violation leaked through real TCP + loss + ARQ + crash
// resync), the token was actually granted, and shutdown is clean to the
// goroutine.
func TestLoopbackSoak(t *testing.T) {
	dur := *soakFor
	if dur <= 0 {
		dur = 2 * time.Second
		if testing.Short() {
			dur = 750 * time.Millisecond
		}
	}
	before := runtime.NumGoroutine()

	cfg := fastLiveness(DefaultConfig(3, 6))
	cfg.Seed = 42
	cfg.Transport = *soakTransport
	cfg.Faults = &core.FaultPlan{
		Seed: 0x50AC,
		Down: core.LinkFaults{Drop: 0.2, Duplicate: 0.1, Reorder: 0.05},
		Up:   core.LinkFaults{Drop: 0.2, Duplicate: 0.1, Reorder: 0.05},
	}
	lb := startLoopback(t, cfg)

	var received []int
	p := &probe{onMH: func(_ core.Context, at core.MHID, msg core.Message) {
		if at == 1 {
			received = append(received, msg.(int))
		}
	}}
	ctx := lb.Sys.Register(p)

	grants := 0
	r2, err := ring.NewR2(lb.Sys, ring.VariantCounter, ring.Options{
		Hold:    1,
		OnEnter: func(core.MHID) { grants++ },
	}, 64, nil)
	if err != nil {
		t.Fatalf("NewR2: %v", err)
	}

	lb.Sys.Start()
	waitReady(t, lb)

	deadline := time.Now().Add(dur)
	seq, round := 0, 0
	started, crashed := false, false
	for time.Now().Before(deadline) {
		// The ordered stream: mh0 (pinned to its cell) → mh1 (roaming).
		lb.Sys.Do(func() {
			for i := 0; i < 4; i++ {
				if err := ctx.SendMHToMH(0, 1, seq, cost.CatAlgorithm); err != nil {
					t.Errorf("SendMHToMH: %v", err)
				}
				seq++
			}
		})
		// Churn: the receiver and a second connected host roam; mh4 flaps
		// its registration entirely.
		lb.Sys.Move(1, core.MSSID((round+1)%3))
		lb.Sys.Move(2, core.MSSID((round+2)%3))
		switch round % 4 {
		case 0:
			lb.Sys.Disconnect(4)
		case 2:
			lb.Sys.Reconnect(4, core.MSSID(round%3))
		}
		// CS traffic: requests from connected hosts; token injected once.
		lb.Sys.Do(func() {
			for _, mh := range []core.MHID{0, 2, 3} {
				if err := r2.Request(mh); err != nil {
					t.Errorf("Request: %v", err)
				}
			}
		})
		if !started {
			lb.Sys.Do(func() {
				if err := r2.Start(); err != nil {
					t.Errorf("Start: %v", err)
				}
			})
			started = true
		}
		round++
		// Once mid-run: a station dies for real — sockets torn down, hub
		// declares it dead, traffic toward it parks — and a fresh incarnation
		// takes over via the generation-fenced resync. The cycle is
		// synchronous, so no settle lands while the station is down.
		if !crashed && round == 5 {
			lb.KillNode(2)
			waitPeerState(t, lb.Sys, wire.RoleMSS, 2, PeerDead)
			if err := lb.RestartNode(2); err != nil {
				t.Fatalf("RestartNode: %v", err)
			}
			waitPeerState(t, lb.Sys, wire.RoleMSS, 2, PeerAlive)
			crashed = true
		}
		// Periodic full drains bound the retransmission backlog (20% loss
		// outpaces ARQ if traffic is injected non-stop) and re-assert the
		// no-deadlock property throughout the run, not just at the end.
		if round%8 == 0 {
			settle(t, lb)
		}
		time.Sleep(5 * time.Millisecond)
	}

	settle(t, lb) // no deadlock: the network must drain completely

	var snap []int
	var snapGrants int
	lb.Sys.Do(func() {
		snap = append(snap, received...)
		snapGrants = grants
	})
	if len(snap) != seq {
		t.Fatalf("received %d of %d stream messages (lost under churn + faults)", len(snap), seq)
	}
	for i, v := range snap {
		if v != i {
			t.Fatalf("received[%d] = %d, want %d (FIFO violated)", i, v, i)
		}
	}
	if snapGrants == 0 {
		t.Error("the token ring granted no critical sections during the soak")
	}
	if crashed {
		if gen := lb.Nodes[2].Gen(); gen < 2 {
			t.Errorf("restarted soak node generation = %d, want >= 2", gen)
		}
	}
	st := lb.Sys.Stats()
	if st.WirelessDrops == 0 || st.Retransmits == 0 {
		t.Errorf("fault injector idle during soak: drops=%d retransmits=%d",
			st.WirelessDrops, st.Retransmits)
	}
	t.Logf("soak: %v, %d rounds, %d stream msgs, %d grants, %d drops, %d retransmits, %d dups suppressed",
		dur, round, seq, snapGrants, st.WirelessDrops, st.Retransmits, st.DuplicatesSuppressed)

	lb.Stop()
	assertNoGoroutineLeak(t, before)
}
