package netrt

import (
	"sync"
	"time"

	"mobiledist/internal/wire"
)

// frameQueue is an unbounded FIFO of frames with blocking consumers. It
// backs both peer outboxes (frames awaiting a healthy connection) and relay
// latency pipes (frames sleeping their link latency). Unboundedness matters
// for the same reason as in internal/execq: producers include the hub
// executor and socket readers, neither of which may ever block on a slow
// consumer, or the runtime can deadlock against its own deliveries.
//
// The queue carries an epoch so owners can clear it out from under a
// consumer safely: head returns the epoch it observed and pop only removes
// the head if the epoch still matches. A writer that read a frame, wrote it
// to a connection, and then lost a clear race simply pops nothing — the
// frame it wrote was re-sent by whoever cleared (resync replay), and the
// receiving side suppresses the duplicate.
type frameQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []wire.Frame
	epoch  uint64
	closed bool
}

func newFrameQueue() *frameQueue {
	q := &frameQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// put appends f. It reports false if the queue is closed.
func (q *frameQueue) put(f wire.Frame) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	q.items = append(q.items, f)
	q.cond.Signal()
	return true
}

// head blocks until a frame is available (returning it without removing it)
// or the queue closes. Leaving the frame at the head until the consumer
// calls pop gives writers ack semantics: a frame is only consumed once it
// has actually been written to a connection, so a dropped conn retries it.
// The returned epoch must be passed to pop.
func (q *frameQueue) head() (wire.Frame, uint64, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return wire.Frame{}, 0, false
	}
	return q.items[0], q.epoch, true
}

// pop removes the head frame (after a successful write) — unless the queue
// was cleared since the matching head call, in which case the write is a
// harmless duplicate and nothing is removed.
func (q *frameQueue) pop(epoch uint64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.epoch != epoch || len(q.items) == 0 {
		return
	}
	q.items = q.items[1:]
	if len(q.items) == 0 {
		q.cond.Broadcast() // wake drain waiters
	}
}

// clear drops every queued frame and bumps the epoch, invalidating any
// in-flight head/pop pair. Used when a peer is declared dead: its suffix is
// re-sent by the resync replay, so retaining stale frames would only
// interleave duplicates ahead of the replayed order.
func (q *frameQueue) clear() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.items = nil
	q.epoch++
	q.cond.Broadcast()
}

// depth reports the number of queued frames (for /status).
func (q *frameQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// drained reports whether the queue is currently empty.
func (q *frameQueue) drained() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items) == 0
}

// waitDrained blocks until the queue empties, abort() reports true, the
// queue closes, or the deadline passes, reporting whether it drained. The
// abort predicate is re-evaluated on every wake-up; callers whose predicate
// depends on external state (a peer's connection) must arrange for wake to
// be called when that state changes.
func (q *frameQueue) waitDrained(deadline time.Time, abort func() bool) bool {
	timer := time.AfterFunc(time.Until(deadline), q.wake)
	defer timer.Stop()
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) > 0 && !q.closed {
		if abort != nil && abort() {
			return false
		}
		if !time.Now().Before(deadline) {
			return false
		}
		q.cond.Wait()
	}
	return len(q.items) == 0
}

// wake broadcasts to all waiters (drain waiters re-check their predicate).
func (q *frameQueue) wake() {
	q.mu.Lock()
	q.cond.Broadcast()
	q.mu.Unlock()
}

// close wakes all consumers; queued frames are still served until empty.
func (q *frameQueue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}
