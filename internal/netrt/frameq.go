package netrt

import (
	"sync"

	"mobiledist/internal/wire"
)

// frameQueue is an unbounded FIFO of frames with blocking consumers. It
// backs both peer outboxes (frames awaiting a healthy connection) and relay
// latency pipes (frames sleeping their link latency). Unboundedness matters
// for the same reason as in internal/execq: producers include the hub
// executor and socket readers, neither of which may ever block on a slow
// consumer, or the runtime can deadlock against its own deliveries.
type frameQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []wire.Frame
	closed bool
}

func newFrameQueue() *frameQueue {
	q := &frameQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// put appends f. It reports false if the queue is closed.
func (q *frameQueue) put(f wire.Frame) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	q.items = append(q.items, f)
	q.cond.Signal()
	return true
}

// head blocks until a frame is available (returning it without removing it)
// or the queue closes. Leaving the frame at the head until the consumer
// calls pop gives writers ack semantics: a frame is only consumed once it
// has actually been written to a connection, so a dropped conn retries it.
func (q *frameQueue) head() (wire.Frame, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return wire.Frame{}, false
	}
	return q.items[0], true
}

// pop removes the head frame (after a successful write).
func (q *frameQueue) pop() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) > 0 {
		q.items = q.items[1:]
	}
}

// drained reports whether the queue is currently empty.
func (q *frameQueue) drained() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items) == 0
}

// close wakes all consumers; queued frames are still served until empty.
func (q *frameQueue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}
