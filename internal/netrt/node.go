package netrt

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mobiledist/internal/engine"
	"mobiledist/internal/wire"
)

// NodeConfig describes one MSS relay node.
type NodeConfig struct {
	// ID is the station this node carries, in [0, M).
	ID int
	// Cluster is the shared cluster topology.
	Cluster ClusterConfig
	// Listener, when non-nil, is the pre-bound listen socket (the loopback
	// launcher binds all sockets before addresses are exchanged). Nil means
	// listen on Cluster.MSS[ID].
	Listener net.Listener
	// FrameTap observes every frame the node writes (see Config.FrameTap).
	FrameTap func(raw []byte, f wire.Frame)
	// Gen is the incarnation generation claimed in the hub handshake
	// (0: "assign me one" — the hub fences the node in at its last admitted
	// generation plus one, which is what a crash-restarted process wants).
	Gen uint64
}

// clientMissK is how many consecutive unanswered node→client heartbeats
// sever a wireless link: the node closes it, flushing the at-least-once set,
// and the client re-dials when it comes back.
const clientMissK = 4

// Node is an MSS relay: it owns the physical sending end of its station's
// wired channels and downlinks. TData frames arrive from the hub (hop 0),
// sleep their link latency in a per-channel pipe — one goroutine per
// channel, preserving FIFO exactly like internal/rt's transport — and then
// cross the last physical link: the mesh connection to the destination
// station, or the wireless connection to the attached MH client. The node
// confirms wired arrivals from its mesh neighbours and owns the
// at-least-once confirmation of its downlinks: a frame radioed to a client
// that detached (or whose connection dropped before the client echoed it)
// is confirmed by the node itself, which matches the model — the engine's
// deliver closures re-check MH state at delivery time.
type Node struct {
	cfg    NodeConfig
	tick   time.Duration
	beat   time.Duration // node→client heartbeat interval (0: disabled)
	layout engine.ChannelLayout

	ln   net.Listener
	hub  *peer
	mesh []*peer // dialling peers to every other station (self nil)

	gen     atomic.Uint64 // generation the hub admitted (TResync ack)
	saidBye atomic.Bool   // orderly hub shutdown seen (supervisors stop restarting)

	wg       sync.WaitGroup
	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}

	pipeMu sync.Mutex
	pipes  map[int32]*frameQueue

	linkMu sync.Mutex
	links  map[int32]*clientLink
}

// clientLink is one attached MH's wireless connection, with the set of
// forwarded downlink frames the client has not yet echoed. The node flushes
// that set as delivered when the link drops: the radio transmission into
// the cell happened whether or not anyone was listening.
type clientLink struct {
	conn net.Conn
	wmu  sync.Mutex
	w    *wire.Writer

	pmu     sync.Mutex
	pending map[pendKey]struct{}
	flushed bool

	// Node→client heartbeat state (guarded by pmu): the link is severed
	// after clientMissK consecutive unanswered pings.
	beatSeq uint64 // last ping sent
	beatAck uint64 // last ping echoed
	missed  int
}

// take removes k from the pending set, reporting whether it was present
// (and therefore still owed a confirmation).
func (l *clientLink) take(k pendKey) bool {
	l.pmu.Lock()
	defer l.pmu.Unlock()
	if _, ok := l.pending[k]; !ok {
		return false
	}
	delete(l.pending, k)
	return true
}

// StartNode launches a relay node for cluster station id.
func StartNode(cfg NodeConfig) (*Node, error) {
	if err := cfg.Cluster.Validate(); err != nil {
		return nil, err
	}
	if cfg.ID < 0 || cfg.ID >= cfg.Cluster.M {
		return nil, fmt.Errorf("netrt: node id %d out of range (M=%d)", cfg.ID, cfg.Cluster.M)
	}
	n := &Node{
		cfg:    cfg,
		tick:   cfg.Cluster.tick(),
		beat:   cfg.Cluster.heartbeat(),
		layout: engine.ChannelLayout{M: cfg.Cluster.M, N: cfg.Cluster.N},
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
		pipes:  make(map[int32]*frameQueue),
		links:  make(map[int32]*clientLink),
	}
	n.gen.Store(cfg.Gen)
	tr, err := cfg.Cluster.transport(wire.RoleMSS, cfg.ID)
	if err != nil {
		return nil, err
	}
	ln := cfg.Listener
	if ln == nil {
		ln, err = tr.listen(cfg.Cluster.MSS[cfg.ID], cfg.Cluster.MSS[cfg.ID])
		if err != nil {
			return nil, err
		}
	} else {
		// Pre-bound by the loopback launcher, before the dialled (possibly
		// nemesis-wrapped) address existed: tell the UDP listener what
		// address inbound connect tokens are bound to.
		setAdvertise(ln, cfg.Cluster.MSS[cfg.ID])
	}
	n.ln = ln

	// The hello claims the node's current generation: cfg.Gen on the first
	// connection, whatever TResync assigned on re-dials (see peer.hello).
	hello := func() wire.Frame {
		return wire.Frame{Type: wire.THello, Ch: -1, Payload: wire.Hello{
			Role: wire.RoleMSS, ID: int32(cfg.ID),
			M: int32(cfg.Cluster.M), N: int32(cfg.Cluster.N),
			Gen: n.gen.Load(),
		}.Encode()}
	}
	bmin, bmax := cfg.Cluster.backoffBounds()

	n.hub = newPeer(fmt.Sprintf("mss%d->hub", cfg.ID), &n.wg, n.onHubFrame)
	n.hub.hello = hello
	n.hub.tap = cfg.FrameTap
	n.hub.backoffMin, n.hub.backoffMax = bmin, bmax
	n.hub.dial = func() (net.Conn, error) { return tr.dial(cfg.Cluster.Hub) }
	n.hub.start()

	n.mesh = make([]*peer, cfg.Cluster.M)
	for j := range n.mesh {
		if j == cfg.ID {
			continue
		}
		addr := cfg.Cluster.MSS[j]
		p := newPeer(fmt.Sprintf("mss%d->mss%d", cfg.ID, j), &n.wg, nil)
		p.hello = hello
		p.tap = cfg.FrameTap
		p.backoffMin, p.backoffMax = bmin, bmax
		p.dial = func() (net.Conn, error) { return tr.dial(addr) }
		n.mesh[j] = p
		p.start()
	}

	n.wg.Add(1)
	go n.acceptLoop()
	if n.beat > 0 {
		n.wg.Add(1)
		go n.heartbeatClients()
	}
	return n, nil
}

// SaidBye reports whether the hub sent an orderly TBye — the signal a
// supervisor (cmd/mobilenode -supervise) uses to stop restarting the node.
func (n *Node) SaidBye() bool { return n.saidBye.Load() }

// Gen reports the incarnation generation the hub admitted for this node.
func (n *Node) Gen() uint64 { return n.gen.Load() }

// Addr returns the node's bound listen address.
func (n *Node) Addr() string { return n.ln.Addr().String() }

// Wait blocks until the node has shut down (Stop or a TBye from the hub).
func (n *Node) Wait() { <-n.done }

// onHubFrame handles frames from the hub connection (reader goroutine).
func (n *Node) onHubFrame(f wire.Frame) {
	switch f.Type {
	case wire.TData:
		n.pipe(f.Ch).put(f)
	case wire.THeartbeat:
		if f.Hop == 0 { // hub ping: answer in kind
			n.hub.send(wire.Frame{Type: wire.THeartbeat, Ch: -1, Seq: f.Seq, Hop: 1})
		}
	case wire.TResync:
		// The hub admitted (or reassigned) our incarnation generation. Any
		// replayed frames follow as ordinary TData through the pipes.
		n.gen.Store(f.Seq)
	case wire.TBye:
		n.saidBye.Store(true)
		go n.Stop() // not inline: Stop waits for this very reader
	}
}

// heartbeatClients pings every attached wireless client each interval and
// severs links that stop answering: the serving cell's radio contact is
// gone, so the pending downlinks flush (delivered-into-the-cell) and the
// client re-attaches when it can hear the station again.
func (n *Node) heartbeatClients() {
	defer n.wg.Done()
	ticker := time.NewTicker(n.beat)
	defer ticker.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-ticker.C:
		}
		n.linkMu.Lock()
		links := make([]*clientLink, 0, len(n.links))
		for _, l := range n.links {
			links = append(links, l)
		}
		n.linkMu.Unlock()
		for _, l := range links {
			l.pmu.Lock()
			if l.beatSeq > l.beatAck {
				l.missed++
			} else {
				l.missed = 0
			}
			dead := l.missed >= clientMissK
			l.beatSeq++
			seq := l.beatSeq
			l.pmu.Unlock()
			if dead {
				l.conn.Close() // its reader flushes the pending set
				continue
			}
			l.wmu.Lock()
			_ = l.w.WriteFrame(wire.Frame{Type: wire.THeartbeat, Ch: -1, Seq: seq})
			l.wmu.Unlock()
		}
	}
}

// pipe returns (creating on demand) the latency pipe for channel ch.
func (n *Node) pipe(ch int32) *frameQueue {
	n.pipeMu.Lock()
	defer n.pipeMu.Unlock()
	q, ok := n.pipes[ch]
	if ok {
		return q
	}
	q = newFrameQueue()
	n.pipes[ch] = q
	n.wg.Add(1)
	go n.forward(q)
	return q
}

// forward drains one channel pipe: sleep each frame's latency, then relay
// it onto its last physical link — strictly in order, the model's
// per-channel FIFO.
func (n *Node) forward(q *frameQueue) {
	defer n.wg.Done()
	for {
		f, epoch, ok := q.head()
		if !ok {
			return
		}
		q.pop(epoch)
		t := time.NewTimer(time.Duration(f.Latency) * n.tick)
		select {
		case <-t.C:
		case <-n.stop:
			t.Stop()
			return
		}
		f.Hop = 1
		kind, _, b := n.layout.Decode(int(f.Ch))
		switch kind {
		case engine.ChannelWired:
			if b == n.cfg.ID {
				// Self-loop wired channel: the message never leaves the
				// station.
				n.confirm(f.Ch, f.Seq)
			} else {
				n.mesh[b].send(f)
			}
		case engine.ChannelDown:
			n.forwardDown(int32(b), f)
		}
	}
}

// forwardDown radios a downlink frame to the attached client, or confirms
// it immediately when no one is listening in the cell.
func (n *Node) forwardDown(mh int32, f wire.Frame) {
	n.linkMu.Lock()
	link := n.links[mh]
	n.linkMu.Unlock()
	if link == nil {
		n.confirm(f.Ch, f.Seq)
		return
	}
	k := pendKey{f.Ch, f.Seq}
	link.pmu.Lock()
	if link.flushed {
		link.pmu.Unlock()
		n.confirm(f.Ch, f.Seq)
		return
	}
	link.pending[k] = struct{}{}
	link.pmu.Unlock()

	link.wmu.Lock()
	err := link.w.WriteFrame(f)
	link.wmu.Unlock()
	if err != nil && link.take(k) {
		n.confirm(f.Ch, f.Seq)
	}
}

// confirm reports (ch, seq) delivered to the hub.
func (n *Node) confirm(ch int32, seq uint64) {
	n.hub.send(wire.Frame{Type: wire.TDelivered, Ch: ch, Seq: seq})
}

// acceptLoop admits mesh connections from other stations and wireless
// connections from MH clients, telling them apart by the handshake frame.
func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return
		}
		n.wg.Add(1)
		go n.handshake(conn)
	}
}

func (n *Node) handshake(conn net.Conn) {
	defer n.wg.Done()
	r := wire.NewReader(conn)
	f, err := r.ReadFrame()
	if err != nil {
		conn.Close()
		return
	}
	switch f.Type {
	case wire.THello:
		// Inbound mesh connection: a peer station relays wired frames here.
		n.wg.Add(1)
		go n.meshReader(conn, r)
	case wire.TAttach:
		n.attachClient(conn, r, f.Ch)
	default:
		conn.Close()
	}
}

// meshReader confirms wired frames arriving from a peer station.
func (n *Node) meshReader(conn net.Conn, r *wire.Reader) {
	defer n.wg.Done()
	defer conn.Close()
	n.closeOnStop(conn)
	for {
		f, err := r.ReadFrame()
		if err != nil {
			return
		}
		if f.Type == wire.TData && f.Hop == 1 {
			n.confirm(f.Ch, f.Seq)
		}
	}
}

// closeOnStop ties a raw accepted connection's lifetime to the node's.
func (n *Node) closeOnStop(conn net.Conn) {
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		<-n.stop
		conn.Close()
	}()
}

// attachClient registers a wireless connection from MH mh and serves it:
// uplink TData is confirmed to the hub and echoed back to the client (which
// prunes its own at-least-once set); TDelivered echoes prune and confirm
// forwarded downlinks. When the link drops, every un-echoed downlink is
// confirmed as delivered-into-the-cell.
func (n *Node) attachClient(conn net.Conn, r *wire.Reader, mh int32) {
	if mh < 0 || int(mh) >= n.cfg.Cluster.N {
		conn.Close()
		return
	}
	w := wire.NewWriter(conn)
	w.Tap = n.cfg.FrameTap
	link := &clientLink{conn: conn, w: w, pending: make(map[pendKey]struct{})}
	n.linkMu.Lock()
	old := n.links[mh]
	n.links[mh] = link
	n.linkMu.Unlock()
	if old != nil {
		old.conn.Close() // its reader flushes the old pending set
	}
	n.closeOnStop(conn)
	n.wg.Add(1)
	go n.clientReader(link, r, mh)
}

func (n *Node) clientReader(link *clientLink, r *wire.Reader, mh int32) {
	defer n.wg.Done()
	for {
		f, err := r.ReadFrame()
		if err != nil {
			break
		}
		switch f.Type {
		case wire.TData:
			// Uplink arrival: confirm to the hub, echo to the client.
			n.confirm(f.Ch, f.Seq)
			link.wmu.Lock()
			_ = link.w.WriteFrame(wire.Frame{Type: wire.TDelivered, Ch: f.Ch, Seq: f.Seq})
			link.wmu.Unlock()
		case wire.TDelivered:
			// Downlink echo: the client saw the frame.
			if link.take(pendKey{f.Ch, f.Seq}) {
				n.confirm(f.Ch, f.Seq)
			}
		case wire.THeartbeat:
			if f.Hop == 1 { // heartbeat answer: the client is still listening
				link.pmu.Lock()
				if f.Seq > link.beatAck {
					link.beatAck = f.Seq
					link.missed = 0
				}
				link.pmu.Unlock()
			}
		}
	}
	link.conn.Close()
	n.linkMu.Lock()
	if n.links[mh] == link {
		delete(n.links, mh)
	}
	n.linkMu.Unlock()
	// Flush: every forwarded-but-unechoed downlink was still transmitted
	// into the cell; the model decides what a delivery to a departed MH
	// means.
	link.pmu.Lock()
	link.flushed = true
	keys := make([]pendKey, 0, len(link.pending))
	for k := range link.pending {
		keys = append(keys, k)
	}
	link.pending = nil
	link.pmu.Unlock()
	for _, k := range keys {
		n.confirm(k.ch, k.seq)
	}
}

// Stop shuts the node down and waits for every goroutine to exit.
func (n *Node) Stop() {
	n.stopOnce.Do(func() {
		close(n.stop)
		n.ln.Close()
		n.pipeMu.Lock()
		for _, q := range n.pipes {
			q.close()
		}
		n.pipeMu.Unlock()
		n.hub.close()
		for _, p := range n.mesh {
			if p != nil {
				p.close()
			}
		}
		n.linkMu.Lock()
		for _, l := range n.links {
			l.conn.Close()
		}
		n.linkMu.Unlock()
		n.wg.Wait()
		close(n.done)
	})
}
