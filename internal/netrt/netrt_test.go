package netrt

import (
	"bytes"
	"runtime"
	"sync"
	"testing"
	"time"

	"mobiledist/internal/core"
	"mobiledist/internal/cost"
	"mobiledist/internal/mutex/ring"
	"mobiledist/internal/wire"
)

const idleTimeout = 20 * time.Second

// probe is a minimal algorithm giving tests a Context and delivery hooks.
type probe struct {
	onMH func(ctx core.Context, at core.MHID, msg core.Message)
}

func (p *probe) Name() string { return "netrt-probe" }

func (p *probe) HandleMSS(core.Context, core.MSSID, core.From, core.Message) {}

func (p *probe) HandleMH(ctx core.Context, at core.MHID, msg core.Message) {
	if p.onMH != nil {
		p.onMH(ctx, at, msg)
	}
}

func startLoopback(t *testing.T, cfg Config) *Loopback {
	t.Helper()
	lb, err := StartLoopback(cfg)
	if err != nil {
		t.Fatalf("StartLoopback: %v", err)
	}
	return lb
}

func waitReady(t *testing.T, lb *Loopback) {
	t.Helper()
	if !lb.Sys.WaitReady(idleTimeout) {
		t.Fatal("cluster did not become ready")
	}
}

func settle(t *testing.T, lb *Loopback) {
	t.Helper()
	if !lb.Sys.WaitIdle(idleTimeout) {
		t.Fatal("network did not drain")
	}
}

// TestLoopbackFIFOAndPrefixAcrossMoves sends an ordered MH→MH stream while
// the destination switches cells twice: everything must arrive, in order,
// having crossed real TCP links.
func TestLoopbackFIFOAndPrefixAcrossMoves(t *testing.T) {
	const batch = 8
	lb := startLoopback(t, DefaultConfig(3, 6))
	defer lb.Stop()

	var received []int
	p := &probe{onMH: func(_ core.Context, at core.MHID, msg core.Message) {
		if at == 1 {
			received = append(received, msg.(int))
		}
	}}
	ctx := lb.Sys.Register(p)
	lb.Sys.Start()
	waitReady(t, lb)

	send := func(from, to int) {
		lb.Sys.Do(func() {
			for i := from; i < to; i++ {
				if err := ctx.SendMHToMH(0, 1, i, cost.CatAlgorithm); err != nil {
					t.Errorf("SendMHToMH: %v", err)
				}
			}
		})
	}
	send(0, batch)
	lb.Sys.Move(1, 2)
	send(batch, 2*batch)
	lb.Sys.Move(1, 0)
	send(2*batch, 3*batch)
	settle(t, lb)

	var snap []int
	lb.Sys.Do(func() { snap = append(snap, received...) })
	if len(snap) != 3*batch {
		t.Fatalf("received %d messages, want %d", len(snap), 3*batch)
	}
	for i, v := range snap {
		if v != i {
			t.Fatalf("received[%d] = %d, want %d (FIFO violated)", i, v, i)
		}
	}
}

// TestLoopbackTokenRingWithChurn runs the R2 token mutex while hosts move,
// disconnect and reconnect: every request is granted exactly once and the
// system drains.
func TestLoopbackTokenRingWithChurn(t *testing.T) {
	const k = 4
	lb := startLoopback(t, DefaultConfig(3, 6))
	defer lb.Stop()

	entries := make(map[core.MHID]int)
	r2, err := ring.NewR2(lb.Sys, ring.VariantCounter, ring.Options{
		Hold:    2,
		OnEnter: func(mh core.MHID) { entries[mh]++ },
	}, 2, nil)
	if err != nil {
		t.Fatalf("NewR2: %v", err)
	}
	lb.Sys.Start()
	waitReady(t, lb)

	lb.Sys.Do(func() {
		for i := 0; i < k; i++ {
			if err := r2.Request(core.MHID(i)); err != nil {
				t.Errorf("Request: %v", err)
			}
		}
	})
	settle(t, lb)
	lb.Sys.Move(1, 2)
	lb.Sys.Do(func() {
		if err := r2.Start(); err != nil {
			t.Errorf("Start: %v", err)
		}
	})
	lb.Sys.Move(4, 0)
	lb.Sys.Disconnect(5)
	settle(t, lb)
	lb.Sys.Reconnect(5, 1)
	settle(t, lb)

	var snap map[core.MHID]int
	lb.Sys.Do(func() {
		snap = make(map[core.MHID]int, len(entries))
		for mh, c := range entries {
			snap[mh] = c
		}
	})
	for i := 0; i < k; i++ {
		if snap[core.MHID(i)] != 1 {
			t.Errorf("mh%d entered the CS %d times, want 1", i, snap[core.MHID(i)])
		}
	}
	st := lb.Sys.Stats()
	if st.Moves != 2 || st.Disconnects != 1 || st.Reconnects != 1 {
		t.Errorf("stats = %d moves / %d disconnects / %d reconnects, want 2/1/1",
			st.Moves, st.Disconnects, st.Reconnects)
	}
}

// TestLoopbackWireBytesRoundTrip pins the acceptance criterion that a
// seeded loopback run's wire traffic round-trips byte-identically:
// every frame any process writes is decoded and re-encoded, and the bytes
// must match.
func TestLoopbackWireBytesRoundTrip(t *testing.T) {
	var mu sync.Mutex
	var frames int
	cfg := DefaultConfig(2, 4)
	cfg.Seed = 7
	cfg.FrameTap = func(raw []byte, f wire.Frame) {
		dec, n, err := wire.DecodeFrame(raw)
		if err != nil {
			t.Errorf("tap: undecodable frame bytes: %v", err)
			return
		}
		if n != len(raw) {
			t.Errorf("tap: frame decoded %d of %d bytes", n, len(raw))
		}
		re, err := wire.AppendFrame(nil, dec)
		if err != nil {
			t.Errorf("tap: re-encode: %v", err)
			return
		}
		if !bytes.Equal(raw, re) {
			t.Errorf("tap: re-encode differs for %v frame:\n raw=%x\n  re=%x", f.Type, raw, re)
		}
		mu.Lock()
		frames++
		mu.Unlock()
	}
	lb := startLoopback(t, cfg)
	defer lb.Stop()

	var got int
	p := &probe{onMH: func(_ core.Context, at core.MHID, _ core.Message) { got++ }}
	ctx := lb.Sys.Register(p)
	lb.Sys.Start()
	waitReady(t, lb)
	lb.Sys.Do(func() {
		for i := 0; i < 10; i++ {
			if err := ctx.SendMHToMH(0, 1, i, cost.CatAlgorithm); err != nil {
				t.Errorf("SendMHToMH: %v", err)
			}
		}
	})
	lb.Sys.Move(1, 0)
	settle(t, lb)

	mu.Lock()
	n := frames
	mu.Unlock()
	if n == 0 {
		t.Fatal("frame tap observed no traffic")
	}
}

// TestLoopbackShutdownLeaksNoGoroutines is the goleak-style counter check:
// after a full run and Stop, the goroutine count must return to (about)
// where it started.
func TestLoopbackShutdownLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()

	lb := startLoopback(t, DefaultConfig(3, 5))
	ctx := lb.Sys.Register(&probe{})
	lb.Sys.Start()
	waitReady(t, lb)
	lb.Sys.Do(func() {
		for i := 0; i < 5; i++ {
			if err := ctx.SendMHToMH(0, 1, i, cost.CatAlgorithm); err != nil {
				t.Errorf("SendMHToMH: %v", err)
			}
		}
	})
	lb.Sys.Move(2, 0)
	settle(t, lb)
	lb.Stop()

	assertNoGoroutineLeak(t, before)
}

// assertNoGoroutineLeak retries (runtime shutdown of conns is async) until
// the goroutine count returns to the baseline or a deadline passes.
func assertNoGoroutineLeak(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var now int
	for {
		now = runtime.NumGoroutine()
		if now <= baseline {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	buf = buf[:runtime.Stack(buf, true)]
	t.Errorf("goroutine leak: %d before, %d after shutdown\n%s", baseline, now, buf)
}
