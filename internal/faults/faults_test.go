package faults

import (
	"fmt"
	"testing"

	"mobiledist/internal/engine"
	"mobiledist/internal/sim"
)

// stubSubstrate records what the injector lets through: a synchronous fake
// with manual time, so each test controls the clock and observes exactly
// which copies of a transmission survive. A record handed to the transport
// is immediately surfaced back through the bound sink — which, because the
// injector interposes its gate via BindRecSink, exercises the same
// delivery-time path (crash-at-receiver) as the real substrates.
type stubSubstrate struct {
	now       sim.Time
	rng       *sim.RNG
	sink      engine.RecSink
	transmits []string // "ch@latency" for in-order copies
	afters    []string // "@delay" for out-of-order (AfterRec) copies
}

func newStub() *stubSubstrate { return &stubSubstrate{rng: sim.NewRNG(99)} }

func (s *stubSubstrate) Now() sim.Time                   { return s.now }
func (s *stubSubstrate) Enqueue(fn func())               { fn() }
func (s *stubSubstrate) After(d sim.Time, fn func())     { fn() }
func (s *stubSubstrate) BindRecSink(sink engine.RecSink) { s.sink = sink }
func (s *stubSubstrate) TransmitRec(ch int, latency sim.Time, rec *engine.DeliveryRec) {
	s.transmits = append(s.transmits, fmt.Sprintf("ch%d@%d", ch, latency))
	s.sink.StepRec(rec)
}
func (s *stubSubstrate) AfterRec(d sim.Time, rec *engine.DeliveryRec) {
	s.afters = append(s.afters, fmt.Sprintf("@%d", d))
	s.sink.StepRec(rec)
}
func (s *stubSubstrate) EnqueueRec(rec *engine.DeliveryRec) { s.sink.StepRec(rec) }
func (s *stubSubstrate) RNG() *sim.RNG                      { return s.rng }

// fakeSink plays the engine's end of the record protocol: it counts records
// that survive to delivery and records returned to the pool.
type fakeSink struct {
	delivered int
	freed     int
}

func (f *fakeSink) StepRec(rec *engine.DeliveryRec) { f.delivered++ }
func (f *fakeSink) FreeRec(rec *engine.DeliveryRec) { f.freed++ }
func (f *fakeSink) CloneRec(rec *engine.DeliveryRec) *engine.DeliveryRec {
	c := *rec
	return &c
}

// mustNew builds an injector over a fresh stub for a 2×4 network, bound to
// a fake engine sink exactly as engine.New would bind itself.
func mustNew(t *testing.T, plan Plan) (*Injector, *stubSubstrate, *fakeSink) {
	t.Helper()
	stub := newStub()
	inj, err := New(plan, 2, 4, stub)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	sink := &fakeSink{}
	inj.BindRecSink(sink)
	return inj, stub, sink
}

// xmit pushes one fresh record through the injector.
func xmit(inj *Injector, ch int, latency sim.Time) {
	inj.TransmitRec(ch, latency, &engine.DeliveryRec{})
}

// layout2x4 mirrors the channel numbering for M=2, N=4.
func downCh(mss, mh int) int { return 2*2 + mss*4 + mh }
func upCh(mh int) int        { return 2*2 + 2*4 + mh }

func TestPlanValidate(t *testing.T) {
	bad := []Plan{
		{Down: LinkFaults{Drop: -0.1}},
		{Up: LinkFaults{Duplicate: 1.5}},
		{Flaps: []Flap{{MSS: 9}}},
		{Flaps: []Flap{{MSS: 0, From: 10, Until: 5}}},
		{Crashes: []Crash{{MSS: 5, At: 1}}},
		{Crashes: []Crash{{MSS: 0, At: 10, RestartAt: 3}}},
	}
	for i, p := range bad {
		if err := p.Validate(2, 4); err == nil {
			t.Errorf("plan %d validated despite being invalid: %+v", i, p)
		}
	}
	if err := (Plan{Down: LinkFaults{Drop: 0.3}}).Validate(2, 4); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
	if !(Plan{}).Empty() {
		t.Error("zero plan is not Empty")
	}
	if (Plan{Up: LinkFaults{Reorder: 0.1}}).Empty() {
		t.Error("reordering plan claims Empty")
	}
}

func TestDropGatesWirelessOnly(t *testing.T) {
	inj, stub, sink := mustNew(t, Plan{Down: LinkFaults{Drop: 1}, Up: LinkFaults{Drop: 1}})
	xmit(inj, downCh(0, 0), 3)
	xmit(inj, upCh(1), 3)
	xmit(inj, 0, 3) // wired 0→0 stays lossless
	if sink.delivered != 1 {
		t.Errorf("delivered %d, want 1 (only the wired copy)", sink.delivered)
	}
	if sink.freed != 2 {
		t.Errorf("freed %d records, want 2 (dropped copies return to the pool)", sink.freed)
	}
	if got := inj.Stats().WirelessDrops; got != 2 {
		t.Errorf("WirelessDrops = %d, want 2", got)
	}
	if len(stub.transmits) != 1 {
		t.Errorf("inner saw %d transmits, want 1", len(stub.transmits))
	}
}

func TestDuplicateInjectsTwoCopies(t *testing.T) {
	inj, stub, sink := mustNew(t, Plan{Down: LinkFaults{Duplicate: 1}})
	xmit(inj, downCh(0, 0), 3)
	if sink.delivered != 2 {
		t.Errorf("delivered %d copies, want 2", sink.delivered)
	}
	if got := inj.Stats().WirelessDuplicates; got != 1 {
		t.Errorf("WirelessDuplicates = %d, want 1", got)
	}
	if len(stub.transmits) != 2 {
		t.Errorf("inner saw %d transmits, want 2 in-order copies", len(stub.transmits))
	}
}

func TestReorderBypassesFIFO(t *testing.T) {
	inj, stub, sink := mustNew(t, Plan{Up: LinkFaults{Reorder: 1, ReorderDelay: engine.Delay{Min: 2, Max: 2}}})
	xmit(inj, upCh(0), 3)
	if sink.delivered != 1 {
		t.Errorf("delivered %d, want 1", sink.delivered)
	}
	if len(stub.transmits) != 0 || len(stub.afters) != 1 {
		t.Errorf("inner saw %d transmits / %d afters, want the copy routed around the FIFO clamp", len(stub.transmits), len(stub.afters))
	}
	if stub.afters[0] != "@5" { // latency 3 + extra 2
		t.Errorf("straggler released after %s, want @5", stub.afters[0])
	}
	if got := inj.Stats().WirelessReorders; got != 1 {
		t.Errorf("WirelessReorders = %d, want 1", got)
	}
}

func TestCrashDiscardsWiredBothDirections(t *testing.T) {
	inj, stub, sink := mustNew(t, Plan{Crashes: []Crash{{MSS: 1, At: 10, RestartAt: 100}}})
	stub.now = 50 // inside the crash window

	xmit(inj, 1*2+0, 3)        // wired 1→0: source crashed
	xmit(inj, 0*2+1, 3)        // wired 0→1: receiver crashed (delivery-time gate)
	xmit(inj, downCh(1, 0), 3) // crashed station's radio is dark

	if sink.delivered != 0 {
		t.Errorf("delivered %d, want 0 while mss1 is down", sink.delivered)
	}
	if sink.freed != 3 {
		t.Errorf("freed %d records, want 3 (every discarded copy returns to the pool)", sink.freed)
	}
	st := inj.Stats()
	if st.CrashDiscards != 2 {
		t.Errorf("CrashDiscards = %d, want 2 (tx + rx)", st.CrashDiscards)
	}
	if st.WirelessDrops != 1 {
		t.Errorf("WirelessDrops = %d, want 1 (dark downlink)", st.WirelessDrops)
	}

	stub.now = 100 // restarted
	xmit(inj, 1*2+0, 3)
	xmit(inj, downCh(1, 0), 3)
	if sink.delivered != 2 {
		t.Errorf("delivered %d after restart, want 2", sink.delivered)
	}
}

func TestFlapDarkensCellAndListedUplinks(t *testing.T) {
	inj, stub, sink := mustNew(t, Plan{Flaps: []Flap{{MSS: 0, MHs: []engine.MHID{2}, From: 10, Until: 20}}})

	check := func(now sim.Time, wantDelivered int, step string) {
		t.Helper()
		base := sink.delivered
		stub.now = now
		xmit(inj, downCh(0, 0), 1) // flapped cell's downlink
		xmit(inj, downCh(1, 0), 1) // other cell unaffected
		xmit(inj, upCh(2), 1)      // listed uplink
		xmit(inj, upCh(3), 1)      // unlisted uplink unaffected
		if got := sink.delivered - base; got != wantDelivered {
			t.Errorf("%s: delivered %d, want %d", step, got, wantDelivered)
		}
	}
	check(5, 4, "before flap")
	check(15, 2, "during flap")
	check(25, 4, "after flap")
}

func TestDownSinceOracle(t *testing.T) {
	inj, stub, _ := mustNew(t, Plan{Crashes: []Crash{{MSS: 1, At: 10, RestartAt: 100}}})
	if _, down := inj.DownSince(1); down {
		t.Error("mss1 reported down before its crash")
	}
	stub.now = 50
	since, down := inj.DownSince(1)
	if !down || since != 10 {
		t.Errorf("DownSince(1) = (%d, %v) at t=50, want (10, true)", since, down)
	}
	stub.now = 100
	if _, down := inj.DownSince(1); down {
		t.Error("mss1 reported down after restart")
	}
	if _, down := inj.DownSince(0); down {
		t.Error("mss0 reported down despite never crashing")
	}
}

func TestArmFiresCrashAndRestartHooks(t *testing.T) {
	inj, _, _ := mustNew(t, Plan{Crashes: []Crash{{MSS: 1, At: 10, RestartAt: 100}}})
	var events []string
	inj.OnCrash(func(mss engine.MSSID) { events = append(events, fmt.Sprintf("crash mss%d", int(mss))) })
	inj.OnRestart(func(mss engine.MSSID) { events = append(events, fmt.Sprintf("restart mss%d", int(mss))) })
	inj.Arm() // the stub runs After callbacks synchronously
	if len(events) != 2 || events[0] != "crash mss1" || events[1] != "restart mss1" {
		t.Errorf("hook events = %v, want [crash mss1, restart mss1]", events)
	}
}

// driveTraffic pushes a fixed per-channel traffic pattern through an
// injector and returns (trace, stats) — the determinism witness.
func driveTraffic(t *testing.T, plan Plan, n int) (string, engine.FaultStats) {
	t.Helper()
	inj, _, _ := mustNew(t, plan)
	inj.RecordTrace(true)
	for i := 0; i < n; i++ {
		xmit(inj, downCh(i%2, i%4), sim.Time(1+i%3))
		xmit(inj, upCh(i%4), sim.Time(1+i%2))
		xmit(inj, (i%2)*2+(i+1)%2, 5)
	}
	return inj.Trace(), inj.Stats()
}

func TestSamePlanSameSeedSameTrace(t *testing.T) {
	plan := Plan{
		Seed: 42,
		Down: LinkFaults{Drop: 0.3, Duplicate: 0.1, Reorder: 0.05},
		Up:   LinkFaults{Drop: 0.2, Duplicate: 0.05},
	}
	t1, s1 := driveTraffic(t, plan, 200)
	t2, s2 := driveTraffic(t, plan, 200)
	if t1 != t2 {
		t.Fatal("same plan + seed produced different traces")
	}
	if s1 != s2 {
		t.Fatalf("same plan + seed produced different stats: %+v vs %+v", s1, s2)
	}
	plan.Seed = 43
	t3, _ := driveTraffic(t, plan, 200)
	if t1 == t3 {
		t.Fatal("different seeds produced identical traces — the seed is inert")
	}
}

// FuzzPlanDeterminism fuzzes fault probabilities, seed, and traffic volume:
// for any plan, driving the same traffic twice must yield byte-identical
// traces and identical counters. This is the load-bearing property of the
// whole chaos suite — it is what makes failures reproducible.
func FuzzPlanDeterminism(f *testing.F) {
	f.Add(uint64(1), 0.3, 0.1, 0.05, 50)
	f.Add(uint64(0xC0FFEE), 1.0, 1.0, 1.0, 10)
	f.Add(uint64(7), 0.0, 0.0, 0.0, 5)
	f.Fuzz(func(t *testing.T, seed uint64, drop, dup, reorder float64, n int) {
		clamp := func(p float64) float64 {
			if !(p >= 0) { // also catches NaN
				return 0
			}
			if p > 1 {
				return 1
			}
			return p
		}
		if n < 0 {
			n = -n
		}
		n = n%300 + 1
		plan := Plan{
			Seed: seed,
			Down: LinkFaults{Drop: clamp(drop), Duplicate: clamp(dup), Reorder: clamp(reorder)},
			Up:   LinkFaults{Drop: clamp(dup), Duplicate: clamp(reorder), Reorder: clamp(drop)},
		}
		t1, s1 := driveTraffic(t, plan, n)
		t2, s2 := driveTraffic(t, plan, n)
		if t1 != t2 {
			t.Fatalf("trace diverged for plan %+v n=%d", plan, n)
		}
		if s1 != s2 {
			t.Fatalf("stats diverged for plan %+v n=%d: %+v vs %+v", plan, n, s1, s2)
		}
	})
}
