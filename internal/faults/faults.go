// Package faults is a deterministic, seeded fault injector for the
// two-tier network model. It wraps any engine.Substrate and disturbs the
// delivery records flowing through TransmitRec according to a declarative
// Plan:
//
//   - per-channel-class wireless loss: drop, duplicate, and
//     reorder-within-latency probabilities, separately for downlinks and
//     uplinks (wired MSS-to-MSS channels stay lossless, per the paper's
//     model — stations share a reliable fixed network);
//   - link flaps: a cell's downlinks (and selected uplinks) go dark for a
//     virtual-time window;
//   - MSS crash/restart: between At and RestartAt a station neither sends
//     nor receives — its in-flight wired transmissions are discarded on
//     arrival, its outbound traffic at the source, and its radio is dark.
//     On restart an optional hook lets protocol layers replay their rejoin
//     path (the ring's NoteRestart, for example).
//
// Determinism: every fault decision is a pure function of (Plan.Seed,
// channel id, per-channel transmission index) — each channel owns a
// private RNG stream and every wireless transmission consumes exactly
// four draws whether or not any fault fires. Substrate timing therefore
// cannot perturb the decisions: the same Plan and seed yield the same
// per-channel delivery trace on the simulation kernel and on the live
// runtime, as long as the protocol offers the same per-channel traffic.
// Crash and flap windows are expressed in virtual time, so they are
// exactly reproducible on the simulator and reproducible up to scheduling
// jitter on the live runtime.
//
// Wireless fault plans require the engine's reliable-wireless sublayer
// (engine.Config.ReliableWireless): without ARQ a dropped frame is simply
// gone and the model's FIFO/prefix guarantees are void. The substrate
// adapters (internal/core, internal/rt) enable ARQ automatically when
// handed a non-empty plan. Note the sublayer retransmits forever: a plan
// that permanently darkens a link carrying traffic will never quiesce, so
// flap windows and crash restarts should be finite.
//
// The injector deliberately knows nothing of the engine beyond the
// Substrate seam: channels are classified with engine.ChannelLayout, and
// loss is reported back through engine.FaultStats. A drift-guard test in
// internal/engine enforces that boundary.
package faults

import (
	"fmt"
	"strings"

	"mobiledist/internal/engine"
	"mobiledist/internal/obs"
	"mobiledist/internal/sim"
)

// LinkFaults are the per-transmission fault probabilities of one wireless
// channel class.
type LinkFaults struct {
	// Drop is the probability a frame is destroyed in flight.
	Drop float64
	// Duplicate is the probability a second copy of the frame is injected.
	Duplicate float64
	// Reorder is the probability a copy is released outside the channel's
	// FIFO order, after an extra ReorderDelay. When the transmission is
	// also duplicated, the duplicate is the straggler; otherwise the frame
	// itself arrives late and may be overtaken.
	Reorder float64
	// ReorderDelay is the extra latency range of reordered copies. The
	// zero value means {1, 8} ticks.
	ReorderDelay engine.Delay
}

func (l LinkFaults) active() bool { return l.Drop > 0 || l.Duplicate > 0 || l.Reorder > 0 }

func (l LinkFaults) validate(name string) error {
	for _, p := range []struct {
		v float64
		n string
	}{{l.Drop, "drop"}, {l.Duplicate, "duplicate"}, {l.Reorder, "reorder"}} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("faults: %s %s probability %v outside [0,1]", name, p.n, p.v)
		}
	}
	return l.ReorderDelay.Validate(name + " reorder")
}

// Flap darkens the wireless links of one cell for a virtual-time window
// [From, Until): every downlink of MSS, plus the uplinks of the listed
// MHs (uplink darkness is per-MH because an uplink has no fixed cell).
type Flap struct {
	MSS         engine.MSSID
	MHs         []engine.MHID
	From, Until sim.Time
}

// Crash takes one MSS down at At; RestartAt brings it back (0 = never).
// While down the station's wired traffic is discarded in both directions
// and its downlinks are dark. The model's stations are stateful, so a
// consumer that replays per-station protocol state should register an
// OnRestart hook.
type Crash struct {
	MSS       engine.MSSID
	At        sim.Time
	RestartAt sim.Time
}

// Plan is a declarative fault schedule. The zero value injects nothing.
type Plan struct {
	// Seed drives every probabilistic decision; independent of the
	// substrate's latency RNG seed.
	Seed uint64
	// Down and Up are the wireless fault rates per channel class.
	Down, Up LinkFaults
	// Flaps are timed link outages.
	Flaps []Flap
	// Crashes are station failures.
	Crashes []Crash
}

// Empty reports whether the plan injects nothing at all.
func (p Plan) Empty() bool {
	return !p.Down.active() && !p.Up.active() && len(p.Flaps) == 0 && len(p.Crashes) == 0
}

// Validate checks the plan against an (m, n) network.
func (p Plan) Validate(m, n int) error {
	if err := p.Down.validate("down"); err != nil {
		return err
	}
	if err := p.Up.validate("up"); err != nil {
		return err
	}
	for _, f := range p.Flaps {
		if int(f.MSS) < 0 || int(f.MSS) >= m {
			return fmt.Errorf("faults: flap of invalid mss%d (M=%d)", int(f.MSS), m)
		}
		for _, mh := range f.MHs {
			if int(mh) < 0 || int(mh) >= n {
				return fmt.Errorf("faults: flap of invalid mh%d uplink (N=%d)", int(mh), n)
			}
		}
		if f.From < 0 || f.Until < f.From {
			return fmt.Errorf("faults: flap window [%d,%d) invalid", f.From, f.Until)
		}
	}
	for _, c := range p.Crashes {
		if int(c.MSS) < 0 || int(c.MSS) >= m {
			return fmt.Errorf("faults: crash of invalid mss%d (M=%d)", int(c.MSS), m)
		}
		if c.At < 0 || (c.RestartAt != 0 && c.RestartAt <= c.At) {
			return fmt.Errorf("faults: crash window [%d,%d) invalid", c.At, c.RestartAt)
		}
	}
	return nil
}

// chanState is the per-channel decision stream: a transmission counter and
// a private RNG derived from (plan seed, channel id).
type chanState struct {
	n   int
	rng *sim.RNG
}

// Injector implements engine.Substrate by wrapping an inner substrate and
// disturbing wireless TransmitRecs per the plan. Construct it around the
// raw substrate, hand it to engine.New, and (for plans with crashes) call
// Arm on the execution context before traffic flows.
//
// Record lifecycle: a destroyed transmission (drop, dark link, crashed
// station) returns its record to the engine's pool via RecSink.FreeRec —
// the injector frees what it discards. Duplicates are pooled copies from
// RecSink.CloneRec. For crash-at-receiver discards the injector interposes
// itself as the inner substrate's sink (see BindRecSink): every record
// surfacing from the transport passes its gate, which discards wired
// records landing at a station that crashed while they were in flight.
type Injector struct {
	inner  engine.Substrate
	plan   Plan
	layout engine.ChannelLayout
	chans  []chanState
	stats  engine.FaultStats

	// sink is the engine's record sink; the injector's own RecSink
	// implementation gates deliveries in front of it.
	sink engine.RecSink

	onCrash, onRestart func(engine.MSSID)

	// tracer, when non-nil, receives one typed event per fault decision
	// that disturbs traffic (EvDrop, EvDuplicate, EvReorder,
	// EvCrashDiscard). Undisturbed relays are not evented — the Transmit
	// seam above the injector already records those.
	tracer *obs.Tracer

	recording bool
	events    [][]string
}

var (
	_ engine.Substrate     = (*Injector)(nil)
	_ engine.FaultReporter = (*Injector)(nil)
	_ engine.RecSink       = (*Injector)(nil)
)

// New wraps inner for an (m, n) network under the given plan.
func New(plan Plan, m, n int, inner engine.Substrate) (*Injector, error) {
	if err := plan.Validate(m, n); err != nil {
		return nil, err
	}
	if inner == nil {
		return nil, fmt.Errorf("faults: nil inner substrate")
	}
	layout := engine.ChannelLayout{M: m, N: n}
	return &Injector{
		inner:  inner,
		plan:   plan,
		layout: layout,
		chans:  make([]chanState, layout.Count()),
	}, nil
}

// Now implements engine.Substrate.
func (i *Injector) Now() sim.Time { return i.inner.Now() }

// Enqueue implements engine.Substrate.
func (i *Injector) Enqueue(fn func()) { i.inner.Enqueue(fn) }

// After implements engine.Substrate.
func (i *Injector) After(d sim.Time, fn func()) { i.inner.After(d, fn) }

// DaemonAfter implements engine.DaemonScheduler, forwarding daemon timers
// to the inner substrate's scheduler when it has one (falling back to
// After). Daemon timers are maintenance ticks, not traffic: the injector
// never disturbs them.
func (i *Injector) DaemonAfter(d sim.Time, fn func()) {
	if ds, ok := i.inner.(engine.DaemonScheduler); ok {
		ds.DaemonAfter(d, fn)
		return
	}
	i.inner.After(d, fn)
}

// BindRecSink implements engine.Substrate: remember the engine's sink and
// interpose the injector's own gate as the transport's sink, so records can
// be discarded at delivery time (crash-at-receiver).
func (i *Injector) BindRecSink(sink engine.RecSink) {
	i.sink = sink
	i.inner.BindRecSink(i)
}

// StepRec implements engine.RecSink: the delivery-time gate. A wired record
// landing at a station that crashed while it was in flight is discarded
// (the message travelled, but lands in a dead station) and its record freed;
// everything else steps through to the engine.
func (i *Injector) StepRec(rec *engine.DeliveryRec) {
	if ch := rec.Chan(); ch >= 0 {
		if kind, _, b := i.layout.Decode(ch); kind == engine.ChannelWired {
			if i.crashedAt(engine.MSSID(b), i.inner.Now()) {
				idx := int(rec.Tag())
				i.stats.CrashDiscards++
				i.amend(ch, idx, "crash-rx")
				i.event(obs.EvCrashDiscard, ch, idx)
				i.sink.FreeRec(rec)
				return
			}
		}
	}
	i.sink.StepRec(rec)
}

// FreeRec implements engine.RecSink, forwarding to the engine's pool.
func (i *Injector) FreeRec(rec *engine.DeliveryRec) { i.sink.FreeRec(rec) }

// CloneRec implements engine.RecSink, forwarding to the engine's pool.
func (i *Injector) CloneRec(rec *engine.DeliveryRec) *engine.DeliveryRec {
	return i.sink.CloneRec(rec)
}

// AfterRec implements engine.Substrate.
func (i *Injector) AfterRec(d sim.Time, rec *engine.DeliveryRec) { i.inner.AfterRec(d, rec) }

// EnqueueRec implements engine.Substrate.
func (i *Injector) EnqueueRec(rec *engine.DeliveryRec) { i.inner.EnqueueRec(rec) }

// RNG implements engine.Substrate.
func (i *Injector) RNG() *sim.RNG { return i.inner.RNG() }

// FaultStats implements engine.FaultReporter.
func (i *Injector) FaultStats() engine.FaultStats { return i.stats }

// Stats returns the injection counters (alias of FaultStats for callers
// that hold the concrete type).
func (i *Injector) Stats() engine.FaultStats { return i.stats }

// SetTracer routes the injector's fault decisions into the observability
// stream. Set before traffic flows; a nil tracer (the default) is a no-op.
func (i *Injector) SetTracer(t *obs.Tracer) { i.tracer = t }

// event records one fault decision; kind-specific operands are the channel
// id and the per-channel transmission index.
func (i *Injector) event(kind obs.EventKind, ch, idx int) {
	if i.tracer == nil {
		return
	}
	i.tracer.Record(i.inner.Now(), kind, int32(ch), int32(idx), 0)
}

// OnCrash registers a hook run (on the execution context) when a planned
// crash fires. Set before Arm.
func (i *Injector) OnCrash(fn func(engine.MSSID)) { i.onCrash = fn }

// OnRestart registers a hook run (on the execution context) when a crashed
// station restarts — the place to replay protocol rejoin paths. Set before
// Arm.
func (i *Injector) OnRestart(fn func(engine.MSSID)) { i.onRestart = fn }

// Arm schedules the plan's crash and restart hooks. Call it once, on the
// execution context (before Run on the simulator; inside Do on the live
// runtime). Crash gating of traffic works without Arm — this only drives
// the notification hooks.
func (i *Injector) Arm() {
	for _, c := range i.plan.Crashes {
		c := c
		if i.onCrash != nil {
			i.at(c.At, func() { i.onCrash(c.MSS) })
		}
		if c.RestartAt > 0 && i.onRestart != nil {
			i.at(c.RestartAt, func() { i.onRestart(c.MSS) })
		}
	}
}

func (i *Injector) at(t sim.Time, fn func()) {
	d := t - i.inner.Now()
	if d < 0 {
		d = 0
	}
	i.inner.After(d, fn)
}

// DownSince reports whether mss is crashed at the current virtual time,
// and since when. Callable only on the execution context; useful as a
// failure-detector oracle with a suspicion delay.
func (i *Injector) DownSince(mss engine.MSSID) (sim.Time, bool) {
	now := i.inner.Now()
	for _, c := range i.plan.Crashes {
		if c.MSS == mss && c.At <= now && (c.RestartAt == 0 || now < c.RestartAt) {
			return c.At, true
		}
	}
	return 0, false
}

func (i *Injector) crashedAt(mss engine.MSSID, t sim.Time) bool {
	for _, c := range i.plan.Crashes {
		if c.MSS == mss && c.At <= t && (c.RestartAt == 0 || t < c.RestartAt) {
			return true
		}
	}
	return false
}

func (i *Injector) flappedDown(mss engine.MSSID, t sim.Time) bool {
	for _, f := range i.plan.Flaps {
		if f.MSS == mss && f.From <= t && t < f.Until {
			return true
		}
	}
	return false
}

func (i *Injector) flappedUp(mh engine.MHID, t sim.Time) bool {
	for _, f := range i.plan.Flaps {
		if f.From <= t && t < f.Until {
			for _, id := range f.MHs {
				if id == mh {
					return true
				}
			}
		}
	}
	return false
}

// channelRNG lazily builds the channel's private decision stream. The
// golden-ratio multiply spreads adjacent channel ids across the splitmix
// seed space.
func (i *Injector) channelRNG(ch int) *sim.RNG {
	st := &i.chans[ch]
	if st.rng == nil {
		st.rng = sim.NewRNG(i.plan.Seed ^ (uint64(ch+1) * 0x9E3779B97F4A7C15))
	}
	return st.rng
}

// TransmitRec implements engine.Substrate: classify the channel, consume
// the channel's fixed fault-decision draws, and deliver zero, one, or two
// record copies through the inner substrate. Destroyed records return to
// the pool via FreeRec; duplicates are pooled clones.
func (i *Injector) TransmitRec(ch int, latency sim.Time, rec *engine.DeliveryRec) {
	now := i.inner.Now()
	kind, a, b := i.layout.Decode(ch)
	st := &i.chans[ch]
	idx := st.n
	st.n++
	// Stamp the channel (for the delivery-time gate) and the transmission
	// index (so a crash-rx discard can amend this entry of the trace).
	rec.SetChan(ch)
	rec.SetTag(int32(idx))

	if kind == engine.ChannelWired {
		from := engine.MSSID(a)
		if i.crashedAt(from, now) {
			i.stats.CrashDiscards++
			i.record(ch, idx, "crash-tx")
			i.event(obs.EvCrashDiscard, ch, idx)
			i.sink.FreeRec(rec)
			return
		}
		// The crash-at-receiver check happens in StepRec's gate when the
		// record surfaces from the transport.
		i.record(ch, idx, "relay")
		i.inner.TransmitRec(ch, latency, rec)
		return
	}

	var lf LinkFaults
	dark := false
	switch kind {
	case engine.ChannelDown:
		lf = i.plan.Down
		mss := engine.MSSID(a)
		dark = i.crashedAt(mss, now) || i.flappedDown(mss, now)
	case engine.ChannelUp:
		lf = i.plan.Up
		dark = i.flappedUp(engine.MHID(b), now)
	}

	// Exactly four draws per wireless transmission, fault or not, so the
	// decision stream is a pure function of (seed, channel, index).
	rng := i.channelRNG(ch)
	pDrop := rng.Float64()
	pDup := rng.Float64()
	pReorder := rng.Float64()
	extra := reorderExtra(lf.ReorderDelay, rng)

	if dark {
		i.stats.WirelessDrops++
		i.record(ch, idx, "dark")
		i.event(obs.EvDrop, ch, idx)
		i.sink.FreeRec(rec)
		return
	}
	if pDrop < lf.Drop {
		i.stats.WirelessDrops++
		i.record(ch, idx, "drop")
		i.event(obs.EvDrop, ch, idx)
		i.sink.FreeRec(rec)
		return
	}
	dup := pDup < lf.Duplicate
	reorder := pReorder < lf.Reorder
	switch {
	case dup && reorder:
		// Primary copy in order; the duplicate straggles in outside the
		// FIFO clamp (AfterRec bypasses the channel's ordering). Clone
		// before the primary is handed over: once scheduled, the record
		// belongs to the transport.
		i.stats.WirelessDuplicates++
		i.stats.WirelessReorders++
		cl := i.sink.CloneRec(rec)
		i.inner.TransmitRec(ch, latency, rec)
		i.inner.AfterRec(latency+extra, cl)
		i.record(ch, idx, "dup+reorder")
		i.event(obs.EvDuplicate, ch, idx)
		i.event(obs.EvReorder, ch, idx)
	case dup:
		i.stats.WirelessDuplicates++
		cl := i.sink.CloneRec(rec)
		i.inner.TransmitRec(ch, latency, rec)
		i.inner.TransmitRec(ch, latency, cl)
		i.record(ch, idx, "dup")
		i.event(obs.EvDuplicate, ch, idx)
	case reorder:
		i.stats.WirelessReorders++
		i.inner.AfterRec(latency+extra, rec)
		i.record(ch, idx, "reorder")
		i.event(obs.EvReorder, ch, idx)
	default:
		i.inner.TransmitRec(ch, latency, rec)
		i.record(ch, idx, "deliver")
	}
}

func reorderExtra(d engine.Delay, rng *sim.RNG) sim.Time {
	if d.Max == 0 {
		d = engine.Delay{Min: 1, Max: 8}
	}
	return rng.Duration(d.Min, d.Max)
}

// RecordTrace switches per-transmission trace recording on or off. Enable
// it before traffic flows; the trace is the determinism witness the fuzz
// and conformance tests compare across runs and substrates.
func (i *Injector) RecordTrace(on bool) {
	i.recording = on
	if on && i.events == nil {
		i.events = make([][]string, i.layout.Count())
	}
}

func (i *Injector) record(ch, idx int, action string) {
	if !i.recording {
		return
	}
	for len(i.events[ch]) <= idx {
		i.events[ch] = append(i.events[ch], "")
	}
	i.events[ch][idx] = action
}

func (i *Injector) amend(ch, idx int, action string) {
	if !i.recording {
		return
	}
	if idx < len(i.events[ch]) {
		i.events[ch][idx] = action
	}
}

// Trace renders the recorded per-channel decision log in canonical order
// (ascending channel id, then transmission index). Because each channel's
// decisions depend only on (seed, channel, index), the rendering is
// comparable across runs and across substrates.
func (i *Injector) Trace() string {
	var b strings.Builder
	for ch, evs := range i.events {
		for idx, action := range evs {
			fmt.Fprintf(&b, "ch%d#%d %s\n", ch, idx, action)
		}
	}
	return b.String()
}
