package cost

// Closed-form cost expressions from the paper, used by tests and by
// EXPERIMENTS.md to compare measured message counts against the published
// analysis. Variable names follow the paper: N mobile hosts, M support
// stations, K requests granted in one ring traversal, G group size,
// LV the location-view size, MOB total member moves, MSG group messages,
// f the significant fraction of moves.

// AnalyticL1PerExecution is the total cost of one execution of algorithm L1
// (Lamport's mutual exclusion run directly on the N MHs):
//
//	3 × (N−1) × (2·Cwireless + Csearch)
func AnalyticL1PerExecution(n int, p Params) float64 {
	return 3 * float64(n-1) * (2*p.Wireless + p.Search)
}

// AnalyticL1WirelessPerExecution is the number of wireless transmissions and
// receptions one L1 execution causes across all MHs: 6 × (N−1).
func AnalyticL1WirelessPerExecution(n int) int64 {
	return 6 * int64(n-1)
}

// AnalyticL2PerExecution is the total cost of one execution of algorithm L2
// (Lamport's algorithm run by the MSSs on behalf of a MH):
//
//	(3·Cwireless + Cfixed + Csearch) + 3 × (M−1) × Cfixed
//
// The first term is init (wireless) + grant (search+wireless) +
// release-resource (wireless+fixed); the second is the request/reply/release
// exchange among the M MSSs.
func AnalyticL2PerExecution(m int, p Params) float64 {
	return 3*p.Wireless + p.Fixed + p.Search + 3*float64(m-1)*p.Fixed
}

// AnalyticL2WirelessPerExecution is the number of wireless messages one L2
// execution requires: exactly 3 (init, grant, release-resource).
func AnalyticL2WirelessPerExecution() int64 { return 3 }

// AnalyticR1PerTraversal is the cost for the token to traverse the ring of N
// MHs once in algorithm R1: N × (2·Cwireless + Csearch). It is independent
// of the number of requests granted.
func AnalyticR1PerTraversal(n int, p Params) float64 {
	return float64(n) * (2*p.Wireless + p.Search)
}

// AnalyticR2PerTraversal is the cost of one ring traversal in algorithm R2
// (and R2′) granting K requests:
//
//	K × (3·Cwireless + Cfixed + Csearch) + M × Cfixed
func AnalyticR2PerTraversal(m, k int, p Params) float64 {
	return float64(k)*(3*p.Wireless+p.Fixed+p.Search) + float64(m)*p.Fixed
}

// AnalyticR2PerRequest is the cost of granting a single request in R2:
// request (wireless) + token out (search+wireless) + token back
// (wireless+fixed) = 3·Cwireless + Cfixed + Csearch.
func AnalyticR2PerRequest(p Params) float64 {
	return 3*p.Wireless + p.Fixed + p.Search
}

// AnalyticPureSearchGroupMsg is the cost of one group message under the pure
// search strategy: (|G|−1) × (2·Cwireless + Csearch).
func AnalyticPureSearchGroupMsg(g int, p Params) float64 {
	return float64(g-1) * (2*p.Wireless + p.Search)
}

// AnalyticAlwaysInformGroupMsg is the cost of one group message (or one
// location update — they cost the same) under the always-inform strategy:
// (|G|−1) × (2·Cwireless + Cfixed).
func AnalyticAlwaysInformGroupMsg(g int, p Params) float64 {
	return float64(g-1) * (2*p.Wireless + p.Fixed)
}

// AnalyticAlwaysInformEffective is the effective per-group-message cost of
// always-inform with mobility ratio mobPerMsg = MOB/MSG:
//
//	(1 + MOB/MSG) × (|G|−1) × (2·Cwireless + Cfixed)
func AnalyticAlwaysInformEffective(g int, mobPerMsg float64, p Params) float64 {
	return (1 + mobPerMsg) * AnalyticAlwaysInformGroupMsg(g, p)
}

// AnalyticLocationViewGroupMsg is the cost of one group message under the
// location-view strategy with current view size lv:
// (|LV|−1) × Cfixed + |G| × Cwireless (sender uplink plus one downlink per
// recipient).
func AnalyticLocationViewGroupMsg(g, lv int, p Params) float64 {
	return float64(lv-1)*p.Fixed + float64(g)*p.Wireless
}

// AnalyticLocationViewUpdateBound is the paper's bound on the cost of one
// LV(G) update: (|LV| + 3) × Cfixed.
func AnalyticLocationViewUpdateBound(lv int, p Params) float64 {
	return float64(lv+3) * p.Fixed
}

// AnalyticLocationViewEffectiveBound is the paper's bound on the effective
// per-group-message cost of the location-view strategy:
//
//	(f·MOB/MSG + 1) × |LV|max × Cfixed + 3·f·(MOB/MSG) × Cfixed + |G| × Cwireless
//
// where f is the significant fraction of moves and lvMax the largest view.
func AnalyticLocationViewEffectiveBound(g, lvMax int, f, mobPerMsg float64, p Params) float64 {
	return (f*mobPerMsg+1)*float64(lvMax)*p.Fixed + 3*f*mobPerMsg*p.Fixed + float64(g)*p.Wireless
}

// RingCrossoverK returns the smallest K at which one R2 traversal granting K
// requests costs at least one R1 traversal — the point past which R1's
// flat-but-large traversal cost amortises better. Returns -1 when R2 is
// cheaper for every K in [0, maxK].
func RingCrossoverK(n, m, maxK int, p Params) int {
	r1 := AnalyticR1PerTraversal(n, p)
	for k := 0; k <= maxK; k++ {
		if AnalyticR2PerTraversal(m, k, p) >= r1 {
			return k
		}
	}
	return -1
}
