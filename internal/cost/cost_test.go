package cost

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestParamsValidate(t *testing.T) {
	tests := []struct {
		name    string
		give    Params
		wantErr bool
	}{
		{name: "default ok", give: DefaultParams()},
		{name: "zero fixed", give: Params{Fixed: 0, Wireless: 1, Search: 1}, wantErr: true},
		{name: "negative wireless", give: Params{Fixed: 1, Wireless: -1, Search: 1}, wantErr: true},
		{name: "search below fixed", give: Params{Fixed: 2, Wireless: 1, Search: 1}, wantErr: true},
		{name: "search equals fixed", give: Params{Fixed: 2, Wireless: 1, Search: 2}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.give.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestParamsOf(t *testing.T) {
	p := Params{Fixed: 1, Wireless: 10, Search: 5}
	if p.Of(KindFixed) != 1 || p.Of(KindWireless) != 10 || p.Of(KindSearch) != 5 {
		t.Error("Of returned wrong unit costs")
	}
	defer func() {
		if recover() == nil {
			t.Error("Of(unknown) did not panic")
		}
	}()
	p.Of(Kind(99))
}

func TestMeterChargesAndTotals(t *testing.T) {
	p := Params{Fixed: 1, Wireless: 10, Search: 5}
	m := NewMeter()
	m.Charge(CatAlgorithm, KindFixed)
	m.ChargeN(CatAlgorithm, KindWireless, 3)
	m.Charge(CatControl, KindSearch)
	m.ChargeN(CatLocation, KindFixed, 0) // no-op

	if got := m.Count(CatAlgorithm, KindWireless); got != 3 {
		t.Errorf("Count = %d, want 3", got)
	}
	if got := m.KindTotal(KindFixed); got != 1 {
		t.Errorf("KindTotal(fixed) = %d, want 1", got)
	}
	if got := m.CategoryCost(CatAlgorithm, p); got != 31 {
		t.Errorf("CategoryCost = %v, want 31", got)
	}
	if got := m.TotalCost(p); got != 36 {
		t.Errorf("TotalCost = %v, want 36", got)
	}
}

func TestMeterEnergy(t *testing.T) {
	m := NewMeter()
	m.WirelessTx(1)
	m.WirelessTx(1)
	m.WirelessRx(1)
	m.WirelessRx(2)
	tx, rx := m.Energy(1)
	if tx != 2 || rx != 1 {
		t.Errorf("Energy(1) = %d/%d, want 2/1", tx, rx)
	}
	ttx, trx := m.TotalEnergy()
	if ttx != 2 || trx != 2 {
		t.Errorf("TotalEnergy = %d/%d, want 2/2", ttx, trx)
	}
	mh, total := m.MaxEnergy()
	if mh != 1 || total != 3 {
		t.Errorf("MaxEnergy = mh%d/%d, want mh1/3", mh, total)
	}
}

func TestMeterMaxEnergyEmpty(t *testing.T) {
	m := NewMeter()
	if mh, total := m.MaxEnergy(); mh != -1 || total != 0 {
		t.Errorf("MaxEnergy on empty meter = %d/%d, want -1/0", mh, total)
	}
}

func TestMeterSnapshotAndDiff(t *testing.T) {
	p := DefaultParams()
	m := NewMeter()
	m.Charge(CatAlgorithm, KindFixed)
	m.WirelessTx(0)
	snap := m.Snapshot()
	m.Charge(CatAlgorithm, KindFixed)
	m.Charge(CatStale, KindSearch)
	m.WirelessTx(0)
	m.WirelessRx(3)

	d := m.Diff(snap)
	if got := d.Count(CatAlgorithm, KindFixed); got != 1 {
		t.Errorf("diff fixed = %d, want 1", got)
	}
	if got := d.Count(CatStale, KindSearch); got != 1 {
		t.Errorf("diff stale search = %d, want 1", got)
	}
	tx, rx := d.TotalEnergy()
	if tx != 1 || rx != 1 {
		t.Errorf("diff energy = %d/%d, want 1/1", tx, rx)
	}
	// The snapshot itself must be unaffected by later charges.
	if got := snap.TotalCost(p); got != p.Fixed {
		t.Errorf("snapshot cost = %v, want %v", got, p.Fixed)
	}
}

func TestMeterReset(t *testing.T) {
	m := NewMeter()
	m.Charge(CatAlgorithm, KindWireless)
	m.WirelessTx(5)
	m.Reset()
	if m.TotalCost(DefaultParams()) != 0 {
		t.Error("cost after reset != 0")
	}
	if tx, rx := m.TotalEnergy(); tx != 0 || rx != 0 {
		t.Error("energy after reset != 0")
	}
}

func TestMeterReportMentionsCategories(t *testing.T) {
	m := NewMeter()
	m.Charge(CatAlgorithm, KindFixed)
	m.Charge(CatStale, KindSearch)
	rep := m.Report(DefaultParams())
	for _, want := range []string{"algorithm", "stale", "total cost"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	if strings.Contains(rep, "location") {
		t.Errorf("report mentions empty category:\n%s", rep)
	}
}

func TestMeterTotalsAreSumOfCategories(t *testing.T) {
	// Property: TotalCost equals the sum of CategoryCost over all
	// categories, for arbitrary charge sequences.
	p := Params{Fixed: 1, Wireless: 10, Search: 5}
	check := func(charges []uint8) bool {
		m := NewMeter()
		for _, c := range charges {
			cat := Categories()[int(c)%len(Categories())]
			kind := Kinds()[int(c/16)%len(Kinds())]
			m.Charge(cat, kind)
		}
		var sum float64
		for _, cat := range Categories() {
			sum += m.CategoryCost(cat, p)
		}
		return math.Abs(sum-m.TotalCost(p)) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMeterDiffInvertsCharges(t *testing.T) {
	// Property: (m after extra charges).Diff(snapshot) counts exactly the
	// extra charges.
	p := Params{Fixed: 1, Wireless: 2, Search: 3}
	check := func(before, extra []uint8) bool {
		m := NewMeter()
		apply := func(cs []uint8) float64 {
			var total float64
			for _, c := range cs {
				cat := Categories()[int(c)%len(Categories())]
				kind := Kinds()[int(c/16)%len(Kinds())]
				m.Charge(cat, kind)
				total += p.Of(kind)
			}
			return total
		}
		apply(before)
		snap := m.Snapshot()
		extraCost := apply(extra)
		return math.Abs(m.Diff(snap).TotalCost(p)-extraCost) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestStringers(t *testing.T) {
	if KindFixed.String() != "fixed" || KindWireless.String() != "wireless" || KindSearch.String() != "search" {
		t.Error("Kind.String wrong")
	}
	if CatAlgorithm.String() != "algorithm" || CatStale.String() != "stale" {
		t.Error("Category.String wrong")
	}
	if !strings.Contains(Kind(42).String(), "42") || !strings.Contains(Category(42).String(), "42") {
		t.Error("unknown enum String missing value")
	}
}
