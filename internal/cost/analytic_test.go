package cost

import (
	"testing"
	"testing/quick"
)

func testParams() Params { return Params{Fixed: 1, Wireless: 10, Search: 5} }

func TestAnalyticL1Formula(t *testing.T) {
	p := testParams()
	// 3 × (N−1) × (2Cw + Cs) with N=5: 3*4*25 = 300.
	if got := AnalyticL1PerExecution(5, p); got != 300 {
		t.Errorf("L1(5) = %v, want 300", got)
	}
	if got := AnalyticL1WirelessPerExecution(5); got != 24 {
		t.Errorf("L1 wireless(5) = %v, want 24", got)
	}
}

func TestAnalyticL2Formula(t *testing.T) {
	p := testParams()
	// 3Cw + Cf + Cs + 3(M−1)Cf with M=4: 30+1+5+9 = 45.
	if got := AnalyticL2PerExecution(4, p); got != 45 {
		t.Errorf("L2(4) = %v, want 45", got)
	}
	if got := AnalyticL2WirelessPerExecution(); got != 3 {
		t.Errorf("L2 wireless = %v, want 3", got)
	}
}

func TestAnalyticRingFormulas(t *testing.T) {
	p := testParams()
	// R1: N(2Cw+Cs) with N=6: 6*25 = 150.
	if got := AnalyticR1PerTraversal(6, p); got != 150 {
		t.Errorf("R1(6) = %v, want 150", got)
	}
	// R2: K(3Cw+Cf+Cs) + M*Cf with M=4, K=2: 2*36 + 4 = 76.
	if got := AnalyticR2PerTraversal(4, 2, p); got != 76 {
		t.Errorf("R2(4,2) = %v, want 76", got)
	}
	if got := AnalyticR2PerRequest(p); got != 36 {
		t.Errorf("R2 per request = %v, want 36", got)
	}
}

func TestAnalyticGroupFormulas(t *testing.T) {
	p := testParams()
	// Pure search: (|G|−1)(2Cw+Cs) with G=5: 4*25 = 100.
	if got := AnalyticPureSearchGroupMsg(5, p); got != 100 {
		t.Errorf("pure search(5) = %v, want 100", got)
	}
	// Always inform: (|G|−1)(2Cw+Cf) = 4*21 = 84.
	if got := AnalyticAlwaysInformGroupMsg(5, p); got != 84 {
		t.Errorf("always inform(5) = %v, want 84", got)
	}
	// Effective with MOB/MSG=2: 3×84 = 252.
	if got := AnalyticAlwaysInformEffective(5, 2, p); got != 252 {
		t.Errorf("always inform effective = %v, want 252", got)
	}
	// Location view message: (|LV|−1)Cf + |G|Cw with LV=3, G=5: 2 + 50.
	if got := AnalyticLocationViewGroupMsg(5, 3, p); got != 52 {
		t.Errorf("location view msg = %v, want 52", got)
	}
	// Update bound: (|LV|+3)Cf = 6.
	if got := AnalyticLocationViewUpdateBound(3, p); got != 6 {
		t.Errorf("update bound = %v, want 6", got)
	}
}

func TestRingCrossoverMatchesFormulas(t *testing.T) {
	p := testParams()
	n, m := 30, 6
	k := RingCrossoverK(n, m, n, p)
	if k < 0 {
		t.Fatal("no crossover found")
	}
	if AnalyticR2PerTraversal(m, k, p) < AnalyticR1PerTraversal(n, p) {
		t.Errorf("R2 at crossover K=%d still cheaper than R1", k)
	}
	if k > 0 && AnalyticR2PerTraversal(m, k-1, p) >= AnalyticR1PerTraversal(n, p) {
		t.Errorf("crossover K=%d is not minimal", k)
	}
}

func TestRingCrossoverNone(t *testing.T) {
	// A large R1 ring against a tiny R2 ring with few requests: R2 stays
	// cheaper for every K in range, so there is no crossover.
	p := Params{Fixed: 1, Wireless: 1, Search: 1}
	if k := RingCrossoverK(100, 2, 5, p); k != -1 {
		t.Errorf("crossover = %d, want -1", k)
	}
}

func TestAnalyticMonotonicity(t *testing.T) {
	// Properties the paper's argument relies on: L1 grows with N, L2 is
	// constant in N; R1 is constant in K, R2 grows with K; the
	// location-view effective bound is monotone in f.
	p := testParams()
	check := func(nRaw uint8) bool {
		n := int(nRaw%60) + 2
		if AnalyticL1PerExecution(n+1, p) <= AnalyticL1PerExecution(n, p) {
			return false
		}
		if AnalyticR2PerTraversal(5, n+1, p) <= AnalyticR2PerTraversal(5, n, p) {
			return false
		}
		lo := AnalyticLocationViewEffectiveBound(10, 4, 0.2, float64(n), p)
		hi := AnalyticLocationViewEffectiveBound(10, 4, 0.8, float64(n), p)
		return lo < hi
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLocationViewBoundDominatesMessage(t *testing.T) {
	// The effective bound with f=0 must equal the plain per-message cost
	// with the maximal view.
	p := testParams()
	got := AnalyticLocationViewEffectiveBound(8, 3, 0, 5, p)
	want := AnalyticLocationViewGroupMsg(8, 3, p) + p.Fixed // (1)·|LV|max·Cf + |G|Cw vs (|LV|−1)Cf + |G|Cw
	if got != want {
		t.Errorf("bound(f=0) = %v, want %v", got, want)
	}
}
