// Package cost implements the paper's message cost model (Section 2) and
// the closed-form analytic cost expressions from Sections 3 and 4.
//
// Every transmission in the two-tier network is charged to one of three
// channel kinds — fixed (MSS↔MSS), wireless (MH↔local MSS), or search
// (locating a MH and forwarding to its current MSS) — and one accounting
// category that distinguishes algorithm traffic from model-level control
// plumbing, mirroring how the paper counts only algorithm messages.
package cost

import (
	"fmt"
	"strings"
)

// Kind identifies the channel a charge was incurred on.
type Kind int

// Channel kinds.
const (
	KindFixed Kind = iota + 1
	KindWireless
	KindSearch
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindFixed:
		return "fixed"
	case KindWireless:
		return "wireless"
	case KindSearch:
		return "search"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Category classifies why a charge was incurred.
type Category int

// Accounting categories.
const (
	// CatAlgorithm is traffic belonging to the distributed algorithm under
	// study — what the paper's cost expressions count.
	CatAlgorithm Category = iota + 1
	// CatControl is model-level mobility plumbing: leave/join/handoff,
	// disconnect bookkeeping. The paper's system model performs this traffic
	// but excludes it from algorithm cost expressions.
	CatControl
	// CatLocation is group-location maintenance traffic (Section 4):
	// location updates in always-inform, LV(G) maintenance in location view.
	CatLocation
	// CatStale is re-forwarding after a destination moved while a message
	// was in flight — the case the paper's footnote 2 disregards. Keeping it
	// separate lets measured numbers align with the analytic ones while
	// still reporting how large the disregarded term is.
	CatStale
)

// String returns the category name.
func (c Category) String() string {
	switch c {
	case CatAlgorithm:
		return "algorithm"
	case CatControl:
		return "control"
	case CatLocation:
		return "location"
	case CatStale:
		return "stale"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// Categories lists all accounting categories in display order.
func Categories() []Category {
	return []Category{CatAlgorithm, CatControl, CatLocation, CatStale}
}

// Kinds lists all channel kinds in display order.
func Kinds() []Kind {
	return []Kind{KindFixed, KindWireless, KindSearch}
}

// Params holds the per-message cost constants of the paper's model.
// The paper requires Csearch >= Cfixed.
type Params struct {
	Fixed    float64 // Cfixed: point-to-point message between two MSSs
	Wireless float64 // Cwireless: MH <-> local MSS over the wireless channel
	Search   float64 // Csearch: locate a MH and forward to its current MSS
}

// DefaultParams returns the cost constants used throughout the experiment
// suite: wireless an order of magnitude costlier than fixed (the paper's
// bandwidth observation) and search several fixed hops.
func DefaultParams() Params {
	return Params{Fixed: 1, Wireless: 10, Search: 5}
}

// Validate reports whether the parameters satisfy the model's constraints.
func (p Params) Validate() error {
	if p.Fixed <= 0 || p.Wireless <= 0 || p.Search <= 0 {
		return fmt.Errorf("cost: non-positive parameter: %+v", p)
	}
	if p.Search < p.Fixed {
		return fmt.Errorf("cost: Csearch (%v) must be >= Cfixed (%v)", p.Search, p.Fixed)
	}
	return nil
}

// Of returns the unit cost of one message on the given kind of channel.
func (p Params) Of(k Kind) float64 {
	switch k {
	case KindFixed:
		return p.Fixed
	case KindWireless:
		return p.Wireless
	case KindSearch:
		return p.Search
	default:
		panic(fmt.Sprintf("cost: unknown kind %d", int(k)))
	}
}

// Meter accumulates message counts by (category, kind) plus per-MH energy
// counters. Counters are flat arrays indexed by the small dense Category and
// Kind enums, and per-MH counters are slices indexed by MH id, so charging a
// message on the simulation hot path is an array increment — no hashing, no
// allocation, regardless of host count. The zero value is ready to use;
// NewMeter is retained for callers that prefer a constructor.
type Meter struct {
	counts [CatStale + 1][KindSearch + 1]int64

	// Per-MH wireless activity: transmissions and receptions both consume
	// battery power (Section 1). Indexed by the non-negative int id supplied
	// by the caller (the core package uses MH ids); grown on demand.
	txByMH []int64
	rxByMH []int64
}

// NewMeter returns an empty meter.
func NewMeter() *Meter { return &Meter{} }

// NewMeterSized returns an empty meter with per-MH energy counters
// pre-sized for ids 0..mhs-1, so large systems never grow them mid-run.
func NewMeterSized(mhs int) *Meter {
	return &Meter{txByMH: make([]int64, mhs), rxByMH: make([]int64, mhs)}
}

// grow extends s so index mh is addressable; the caller has checked
// mh >= len(s). Capacity doubles so id-ordered growth stays amortized O(1).
func grow(s []int64, mh int) []int64 {
	if mh < cap(s) {
		return s[:mh+1] // make zeroed the backing array up to cap
	}
	ns := make([]int64, mh+1, max(mh+1, 2*cap(s)))
	copy(ns, s)
	return ns
}

// Charge records one message of the given category and kind.
func (m *Meter) Charge(cat Category, kind Kind) {
	m.counts[cat][kind]++
}

// ChargeN records n messages at once.
func (m *Meter) ChargeN(cat Category, kind Kind, n int64) {
	m.counts[cat][kind] += n
}

// WirelessTx records that MH mh transmitted one wireless message.
func (m *Meter) WirelessTx(mh int) {
	if mh >= len(m.txByMH) {
		m.txByMH = grow(m.txByMH, mh)
	}
	m.txByMH[mh]++
}

// WirelessRx records that MH mh received one wireless message.
func (m *Meter) WirelessRx(mh int) {
	if mh >= len(m.rxByMH) {
		m.rxByMH = grow(m.rxByMH, mh)
	}
	m.rxByMH[mh]++
}

// Count returns the number of messages recorded for (cat, kind).
func (m *Meter) Count(cat Category, kind Kind) int64 {
	if cat < 0 || int(cat) >= len(m.counts) || kind < 0 || int(kind) >= len(m.counts[0]) {
		return 0
	}
	return m.counts[cat][kind]
}

// KindTotal returns the number of messages of the given kind across all
// categories.
func (m *Meter) KindTotal(kind Kind) int64 {
	var total int64
	for _, cat := range Categories() {
		total += m.counts[cat][kind]
	}
	return total
}

// CategoryCost returns the total cost of one category under params p.
func (m *Meter) CategoryCost(cat Category, p Params) float64 {
	var total float64
	for _, kind := range Kinds() {
		if n := m.counts[cat][kind]; n != 0 {
			total += float64(n) * p.Of(kind)
		}
	}
	return total
}

// TotalCost returns the cost across all categories under params p.
func (m *Meter) TotalCost(p Params) float64 {
	var total float64
	for _, cat := range Categories() {
		total += m.CategoryCost(cat, p)
	}
	return total
}

// Energy returns the wireless activity (transmissions, receptions) of MH mh.
func (m *Meter) Energy(mh int) (tx, rx int64) {
	if mh >= 0 && mh < len(m.txByMH) {
		tx = m.txByMH[mh]
	}
	if mh >= 0 && mh < len(m.rxByMH) {
		rx = m.rxByMH[mh]
	}
	return tx, rx
}

// TotalEnergy returns the summed wireless transmissions and receptions over
// all MHs — the paper's battery-consumption proxy.
func (m *Meter) TotalEnergy() (tx, rx int64) {
	for _, n := range m.txByMH {
		tx += n
	}
	for _, n := range m.rxByMH {
		rx += n
	}
	return tx, rx
}

// MaxEnergy returns the largest per-MH wireless activity (tx+rx) and the id
// of the MH that incurred it; ties go to the smallest id. It returns
// (-1, 0) when no activity was recorded.
func (m *Meter) MaxEnergy() (mh int, total int64) {
	mh = -1
	n := max(len(m.txByMH), len(m.rxByMH))
	for id := 0; id < n; id++ {
		tx, rx := m.Energy(id)
		if sum := tx + rx; sum != 0 && sum > total {
			mh, total = id, sum
		}
	}
	return mh, total
}

// Reset clears all counters but keeps the per-MH capacity.
func (m *Meter) Reset() {
	m.counts = [CatStale + 1][KindSearch + 1]int64{}
	for i := range m.txByMH {
		m.txByMH[i] = 0
	}
	for i := range m.rxByMH {
		m.rxByMH[i] = 0
	}
}

// Snapshot returns a copy of the meter, so callers can diff before/after.
func (m *Meter) Snapshot() *Meter {
	s := NewMeter()
	s.counts = m.counts
	s.txByMH = append([]int64(nil), m.txByMH...)
	s.rxByMH = append([]int64(nil), m.rxByMH...)
	return s
}

// Diff returns a new meter holding m minus old, counter by counter.
func (m *Meter) Diff(old *Meter) *Meter {
	d := NewMeter()
	for _, cat := range Categories() {
		for _, kind := range Kinds() {
			d.counts[cat][kind] = m.counts[cat][kind] - old.counts[cat][kind]
		}
	}
	n := max(len(m.txByMH), len(m.rxByMH))
	for id := 0; id < n; id++ {
		tx, rx := m.Energy(id)
		otx, orx := old.Energy(id)
		if delta := tx - otx; delta != 0 {
			if id >= len(d.txByMH) {
				d.txByMH = grow(d.txByMH, id)
			}
			d.txByMH[id] = delta
		}
		if delta := rx - orx; delta != 0 {
			if id >= len(d.rxByMH) {
				d.rxByMH = grow(d.rxByMH, id)
			}
			d.rxByMH[id] = delta
		}
	}
	return d
}

// Report renders a human-readable summary under params p.
func (m *Meter) Report(p Params) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %10s %10s %10s %12s\n", "category", "fixed", "wireless", "search", "cost")
	for _, cat := range Categories() {
		byKind := &m.counts[cat]
		if byKind[KindFixed] == 0 && byKind[KindWireless] == 0 && byKind[KindSearch] == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-10s %10d %10d %10d %12.1f\n",
			cat, byKind[KindFixed], byKind[KindWireless], byKind[KindSearch], m.CategoryCost(cat, p))
	}
	tx, rx := m.TotalEnergy()
	fmt.Fprintf(&b, "total cost %.1f; wireless energy: %d tx + %d rx\n", m.TotalCost(p), tx, rx)
	return b.String()
}
