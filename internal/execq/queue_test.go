package execq

import (
	"sync"
	"testing"
	"time"
)

func TestQueueCloseDrains(t *testing.T) {
	q := New()
	var ran int
	q.Push(func() { ran++ })
	q.Push(func() { ran++ })
	q.Close()
	if q.Push(func() {}) {
		t.Error("Push after Close succeeded")
	}
	for {
		fn, ok := q.Pop()
		if !ok {
			break
		}
		fn()
	}
	if ran != 2 {
		t.Errorf("ran = %d, want 2 (queued tasks drain after close)", ran)
	}
}

func TestQueueIdlePredicate(t *testing.T) {
	q := New()
	if _, idle := q.IdleWait(); !idle {
		t.Fatal("fresh queue not idle")
	}

	// A pending op keeps the queue busy until resolved.
	q.OpStart()
	ch, idle := q.IdleWait()
	if idle {
		t.Fatal("queue idle with an op in flight")
	}
	select {
	case <-ch:
		t.Fatal("idle channel closed early")
	default:
	}
	q.OpDone()
	select {
	case <-ch:
	case <-time.After(time.Second):
		t.Fatal("idle channel did not close after OpDone")
	}

	// A queued task keeps the queue busy until popped AND done.
	q.Push(func() {})
	if _, idle := q.IdleWait(); idle {
		t.Fatal("queue idle with a task queued")
	}
	fn, ok := q.Pop()
	if !ok {
		t.Fatal("Pop failed")
	}
	fn()
	if _, idle := q.IdleWait(); idle {
		t.Fatal("queue idle while task running (Done not called)")
	}
	q.Done()
	if _, idle := q.IdleWait(); !idle {
		t.Fatal("queue not idle after Done")
	}
}

func TestQueueConcurrentProducers(t *testing.T) {
	q := New()
	const producers, per = 8, 100
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				q.Push(func() {})
			}
		}()
	}
	done := make(chan int)
	go func() {
		n := 0
		for {
			fn, ok := q.Pop()
			if !ok {
				break
			}
			fn()
			q.Done()
			n++
		}
		done <- n
	}()
	wg.Wait()
	q.Close()
	if n := <-done; n != producers*per {
		t.Errorf("consumed %d tasks, want %d", n, producers*per)
	}
}
