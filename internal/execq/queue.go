// Package execq provides the unbounded executor work queue shared by the
// live substrate bindings of the network engine (internal/rt on in-process
// goroutines, internal/netrt on TCP sockets). Both runtimes funnel all
// engine and algorithm work through a single executor goroutine; this queue
// feeds that goroutine and is the runtime's single source of truth for
// quiescence.
//
// Unboundedness is deliberate: producers are transport goroutines that must
// never block on the executor (a bounded channel could deadlock the executor
// against its own deliveries).
//
// Idle tracking lives here, under the queue mutex, so "idle" is an exact
// predicate evaluated atomically: no task queued, no task running, and no
// asynchronous operation (timer or transmission) in flight. Every async op
// brackets itself with OpStart/OpDone *before* leaving the executor, so
// there is no instant where pending work is invisible to the predicate.
// IdleWait waiters park on a channel that closes the moment the predicate
// becomes true — a condition-signaled drain, not a poll.
package execq

import "sync"

// Queue is an unbounded FIFO work queue with exact idle tracking. The zero
// value is not usable; construct with New.
type Queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []func()
	closed bool

	// running is true while the executor is inside a task (set by Pop,
	// cleared by Done).
	running bool
	// inflight counts asynchronous operations bracketed by OpStart/OpDone.
	inflight int64
	// idleWaiters are IdleWait channels closed on the next transition to
	// idle.
	idleWaiters []chan struct{}
}

// New returns an empty open queue.
func New() *Queue {
	q := &Queue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push enqueues fn. It reports false if the queue is closed.
func (q *Queue) Push(fn func()) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	q.items = append(q.items, fn)
	q.cond.Signal()
	return true
}

// Pop dequeues the next task, blocking until one is available or the queue
// closes, and marks the executor busy. The caller must invoke Done after
// running the task. It reports false when closed and drained.
func (q *Queue) Pop() (func(), bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return nil, false
	}
	fn := q.items[0]
	q.items = q.items[1:]
	q.running = true
	return fn, true
}

// Done marks the executor idle again after a task returns.
func (q *Queue) Done() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.running = false
	q.notifyLocked()
}

// OpStart registers one asynchronous operation for idle tracking.
func (q *Queue) OpStart() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.inflight++
}

// OpDone resolves one asynchronous operation.
func (q *Queue) OpDone() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.inflight--
	q.notifyLocked()
}

// IdleWait reports idleness: (nil, true) if the network is drained right
// now, else a channel that closes on the next transition to idle.
func (q *Queue) IdleWait() (<-chan struct{}, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.idleLocked() {
		return nil, true
	}
	ch := make(chan struct{})
	q.idleWaiters = append(q.idleWaiters, ch)
	return ch, false
}

func (q *Queue) idleLocked() bool {
	return !q.running && q.inflight == 0 && len(q.items) == 0
}

func (q *Queue) notifyLocked() {
	if !q.idleLocked() {
		return
	}
	for _, ch := range q.idleWaiters {
		close(ch)
	}
	q.idleWaiters = nil
}

// Close marks the queue closed and wakes the consumer. Queued tasks are
// still drained.
func (q *Queue) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
	q.notifyLocked()
}
