package dtn

import (
	"mobiledist/internal/engine"
	"mobiledist/internal/sim"
)

// Host is the service surface the Manager offers routing strategies —
// deliberately the DTN7 shape: the strategy decides where replicas go,
// the host executes the movement, accounting, and delivery mechanics.
type Host interface {
	// M returns the number of stations.
	M() int
	// Now returns the current virtual time.
	Now() sim.Time
	// HasReplica reports whether station at holds a replica of id.
	HasReplica(at engine.MSSID, id BundleID) bool
	// StoredAt returns the bundle IDs resident at the station, in
	// ascending order.
	StoredAt(at engine.MSSID) []BundleID
	// RecentCells returns the cells mh recently joined, most recent
	// first (bounded by Config.HistoryDepth). Empty for a host that has
	// not moved since the run started.
	RecentCells(mh engine.MHID) []engine.MSSID
	// SendSummary ships from's summary vector to peer over the wired
	// network; the peer answers with a want-list and from replicates
	// every still-present bundle the peer asked for (anti-entropy).
	SendSummary(from, peer engine.MSSID)
	// DeliverAll moves every stored replica destined for mh, from every
	// station, toward station at (where mh just appeared); the first
	// replica of each bundle to arrive is redelivered, the rest are
	// discarded as duplicates.
	DeliverAll(at engine.MSSID, mh engine.MHID)
}

// RoutingAlgorithm decides how bundles replicate between stations while
// their destination is away. The five callbacks mirror DTN7's routing
// interface; all run on the engine's execution context.
type RoutingAlgorithm interface {
	// Name identifies the strategy in tables and traces.
	Name() string
	// NotifyIncoming observes a bundle entering at's store (fresh
	// custody or an arriving replica), before SenderForBundle is
	// consulted.
	NotifyIncoming(h Host, at engine.MSSID, b *Bundle)
	// SenderForBundle is consulted when b enters at's store: it returns
	// the peer stations that should receive replicas now, and whether
	// at should drop its own replica after sending (custody transfer
	// rather than copy). Token accounting is the manager's job.
	SenderForBundle(h Host, at engine.MSSID, b *Bundle) (peers []engine.MSSID, drop bool)
	// ReportPeerAppeared fires when mh joins a cell at station at
	// (reconnection or an ordinary move while bundles are parked).
	ReportPeerAppeared(h Host, at engine.MSSID, mh engine.MHID)
	// ReportPeerDisappeared fires when mh disconnects at station at.
	ReportPeerDisappeared(h Host, at engine.MSSID, mh engine.MHID)
	// ReportFailure observes a replica leaving custody without
	// delivering: "expired", "evicted", "quota", or "crash".
	ReportFailure(h Host, at engine.MSSID, b *Bundle, reason string)
}

// Ticker is an optional strategy capability: periodic maintenance (the
// epidemic anti-entropy exchange). The manager arms the timer as a
// daemon — it does not hold the substrate's idle accounting open — and
// only while any store is non-empty or replicas are in flight, so an
// idle network runs no timers at all.
type Ticker interface {
	// TickEvery is the gossip period in ticks.
	TickEvery() sim.Time
	// Tick runs one maintenance round.
	Tick(h Host)
}

// Park is the paper-faithful control strategy: custody stays at the
// station where the host disconnected, and moves only when the host
// reappears. No replication, no gossip — a crash of the custodian loses
// everything it parked.
type Park struct{}

// Name identifies the strategy.
func (Park) Name() string { return "park" }

// NotifyIncoming is a no-op: Park never acts on arrivals.
func (Park) NotifyIncoming(Host, engine.MSSID, *Bundle) {}

// SenderForBundle never replicates.
func (Park) SenderForBundle(Host, engine.MSSID, *Bundle) ([]engine.MSSID, bool) {
	return nil, false
}

// ReportPeerAppeared drains everything parked for the host toward its
// new station.
func (Park) ReportPeerAppeared(h Host, at engine.MSSID, mh engine.MHID) {
	h.DeliverAll(at, mh)
}

// ReportPeerDisappeared is a no-op.
func (Park) ReportPeerDisappeared(Host, engine.MSSID, engine.MHID) {}

// ReportFailure is a no-op.
func (Park) ReportFailure(Host, engine.MSSID, *Bundle, string) {}

// Epidemic floods bundles between neighbouring stations by periodic
// anti-entropy: each gossip tick, every station holding bundles sends
// its summary vector to its ring neighbours; a neighbour answers with
// the IDs it lacks and the holder replicates them. Replicas survive
// single-station crashes once a round of gossip has run, at the price of
// up to M replicas per bundle.
type Epidemic struct {
	// Every is the gossip period in ticks (default 100).
	Every sim.Time
}

// Name identifies the strategy.
func (Epidemic) Name() string { return "epidemic" }

// TickEvery implements Ticker.
func (e Epidemic) TickEvery() sim.Time {
	if e.Every <= 0 {
		return 100
	}
	return e.Every
}

// Tick runs one anti-entropy round: every station holding bundles
// exchanges summaries with its ring neighbours.
func (e Epidemic) Tick(h Host) {
	m := h.M()
	if m < 2 {
		return
	}
	for mss := 0; mss < m; mss++ {
		at := engine.MSSID(mss)
		if len(h.StoredAt(at)) == 0 {
			continue
		}
		h.SendSummary(at, engine.MSSID((mss+1)%m))
		if m > 2 {
			h.SendSummary(at, engine.MSSID((mss+m-1)%m))
		}
	}
}

// NotifyIncoming is a no-op: epidemic spreads on the tick, not on
// arrival.
func (Epidemic) NotifyIncoming(Host, engine.MSSID, *Bundle) {}

// SenderForBundle never replicates eagerly; gossip does the spreading.
func (Epidemic) SenderForBundle(Host, engine.MSSID, *Bundle) ([]engine.MSSID, bool) {
	return nil, false
}

// ReportPeerAppeared drains every replica toward the host's new station.
func (Epidemic) ReportPeerAppeared(h Host, at engine.MSSID, mh engine.MHID) {
	h.DeliverAll(at, mh)
}

// ReportPeerDisappeared is a no-op.
func (Epidemic) ReportPeerDisappeared(Host, engine.MSSID, engine.MHID) {}

// ReportFailure is a no-op.
func (Epidemic) ReportFailure(Host, engine.MSSID, *Bundle, string) {}

// SprayAndWait is binary spray-and-wait aimed at mobility history: a
// bundle starts with L tokens; a station holding a replica with more
// than one token forwards half the tokens to the cell its destination
// visited most recently that lacks a replica (mobile hosts tend to
// revisit cells, so recently-visited is the best reachability prior the
// fixed tier has). Replicas down to one token wait for the host to
// reappear. Replication cost is bounded by L per bundle regardless of M.
type SprayAndWait struct{}

// Name identifies the strategy.
func (SprayAndWait) Name() string { return "spray" }

// NotifyIncoming is a no-op; spraying happens via SenderForBundle.
func (SprayAndWait) NotifyIncoming(Host, engine.MSSID, *Bundle) {}

// SenderForBundle sprays half the replica's tokens toward the
// destination's most recently visited cell without a replica.
func (SprayAndWait) SenderForBundle(h Host, at engine.MSSID, b *Bundle) ([]engine.MSSID, bool) {
	if b.Tokens <= 1 {
		return nil, false
	}
	for _, cell := range h.RecentCells(b.MH) {
		if cell != at && !h.HasReplica(cell, b.ID) {
			return []engine.MSSID{cell}, false
		}
	}
	return nil, false
}

// ReportPeerAppeared drains every replica toward the host's new station.
func (SprayAndWait) ReportPeerAppeared(h Host, at engine.MSSID, mh engine.MHID) {
	h.DeliverAll(at, mh)
}

// ReportPeerDisappeared is a no-op.
func (SprayAndWait) ReportPeerDisappeared(Host, engine.MSSID, engine.MHID) {}

// ReportFailure is a no-op.
func (SprayAndWait) ReportFailure(Host, engine.MSSID, *Bundle, string) {}
