// Package dtn adds store-carry-forward (delay-tolerant) routing to the
// fixed tier of the two-tier network. The paper's base protocol treats a
// disconnected mobile host as unreachable: any message routed to it is
// bounced back to the sender as a delivery failure (Section 2). This
// package replaces that bounce with custody — the MSS serving the cell
// where the host disconnected stores the message in a bounded replica
// store and a pluggable routing strategy decides how replicas move
// between stations while the host is away. When the host reconnects
// anywhere, the first replica to reach its new station is redelivered
// through the normal engine routing path (search + wireless downlink);
// every other replica is discarded as a duplicate.
//
// The seam with the engine is the CustodyHook offered at the three points
// where the base protocol would otherwise fail or drop a delivery:
// routing to a disconnected host, a wireless downlink arriving after the
// host disconnected in place, and waiter-queue overflow for a host stuck
// in transit. Accepting custody costs exactly what the failure
// notification it replaces would have cost (one fixed control message
// charge happens before the offer either way), so a run with the Park
// strategy and no reconnections is cost-identical to the base protocol.
//
// Exactly-once delivery holds globally: bundle IDs are allocated once per
// custody acceptance, and a global retired set (the manager models the
// fixed tier's shared view, like the engine's location registry) retires
// an ID at its primary delivery, so late replicas can never deliver
// twice. Per-pair FIFO survives because redelivery re-enters the engine
// with the bundle's original routing options — the pair sequence buffer
// reorders out-of-order arrivals, and every terminally-lost bundle
// (expiry, eviction, crash wipe, and replicas discarded on the wire
// toward a crashed receiver — NoteCrash reaps the in-flight ledger)
// releases its sequence slot so later traffic of the pair is not wedged
// behind the hole.
package dtn

import (
	"mobiledist/internal/engine"
	"mobiledist/internal/sim"
)

// BundleID names one custody acceptance. IDs are allocated monotonically
// by the manager, so ascending ID order is custody-acceptance order —
// which, per ordered sender pair, is original send order.
type BundleID uint64

// Bundle is one message under custody. Replicas of the same bundle share
// the ID, message, and routing options; Tokens is per-replica state
// (binary spray-and-wait splits it on each replication).
type Bundle struct {
	// ID identifies the bundle across all replicas.
	ID BundleID
	// MH is the destination mobile host.
	MH engine.MHID
	// Msg is the original payload.
	Msg engine.Message
	// Ref carries the engine routing options the payload was travelling
	// with when custody was taken; redelivery and failure release use it.
	Ref engine.CustodyRef
	// Created is the custody-acceptance time.
	Created sim.Time
	// Expiry is the absolute time-to-live deadline; 0 means never.
	Expiry sim.Time
	// Tokens is the spray-and-wait token budget of this replica. A
	// replica with one token is in the "wait" phase and only delivers
	// directly.
	Tokens int
}

// expired reports whether the bundle's TTL has passed at now.
func (b *Bundle) expired(now sim.Time) bool {
	return b.Expiry != 0 && now >= b.Expiry
}

// Config parameterises a Manager.
type Config struct {
	// Strategy is the routing algorithm replicating bundles between
	// stations. Nil defaults to Park (custody only, no replication —
	// the paper-faithful control).
	Strategy RoutingAlgorithm
	// TTL is the per-bundle time-to-live in ticks from custody
	// acceptance; 0 means bundles never expire. Expiry is checked
	// lazily (at arrivals, gossip ticks, and reconnections) — there are
	// no per-bundle timers.
	TTL sim.Time
	// StoreCap bounds the bundles held per station; 0 means unlimited.
	// An arrival at a full store evicts the least-recently-useful
	// resident bundle to make room.
	StoreCap int
	// MHQuota bounds the bundles one station holds per destination MH;
	// 0 means unlimited. Arrivals over quota are refused.
	MHQuota int
	// SprayCopies is the initial token budget L handed to each new
	// bundle (only binary spray-and-wait consumes it). 0 defaults to 4.
	SprayCopies int
	// HistoryDepth is how many recently-visited cells are remembered
	// per MH for spray targeting. 0 defaults to 4.
	HistoryDepth int
}

func (c Config) withDefaults() Config {
	if c.Strategy == nil {
		c.Strategy = Park{}
	}
	if c.SprayCopies <= 0 {
		c.SprayCopies = 4
	}
	if c.HistoryDepth <= 0 {
		c.HistoryDepth = 4
	}
	return c
}

// Stats counts custody activity across all stations. Read it after the
// run settles (or between settled phases); it is maintained on the
// engine's execution context.
type Stats struct {
	// Accepted counts custody acceptances (new bundle IDs).
	Accepted int64
	// Delivered counts primary deliveries (bundles handed back to the
	// engine for redelivery after their MH reappeared).
	Delivered int64
	// Duplicates counts replica arrivals discarded because the bundle
	// was already delivered, already failed, or already resident.
	Duplicates int64
	// Transfers counts replicas shipped between stations (both
	// strategy replication and custody moves toward a reconnected MH).
	Transfers int64
	// SummariesSent counts anti-entropy summary vectors sent.
	SummariesSent int64
	// Expired counts replicas dropped because their TTL passed.
	Expired int64
	// EvictedLRU counts replicas evicted from a full store to admit an
	// arrival.
	EvictedLRU int64
	// DroppedQuota counts arrivals refused by the per-MH quota.
	DroppedQuota int64
	// Lost counts replicas wiped by a station crash or lost to a
	// crashed receiver.
	Lost int64
	// Failed counts bundles whose last replica was lost before
	// delivery (the terminal outcome; each adds one engine-visible
	// delivery failure or abandonment).
	Failed int64
}
