package dtn

import (
	"fmt"
	"sort"

	"mobiledist/internal/cost"
	"mobiledist/internal/engine"
	"mobiledist/internal/sim"
)

// Wire messages. These travel MSS-to-MSS over the engine's wired channel
// (SendFixed, charged to cost.CatControl like the mobility plumbing they
// extend); payloads stay by-value so the netrt substrates relay them
// hub-side like any other algorithm message.
type (
	// bundleMsg carries one replica to a peer station.
	bundleMsg struct{ b Bundle }
	// summaryMsg is an anti-entropy summary vector (EncodeSummary).
	summaryMsg struct{ data []byte }
	// wantMsg answers a summary with the IDs the receiver lacks.
	wantMsg struct{ data []byte }
)

// Manager is the custody subsystem: one bounded Store per station, a
// routing strategy deciding replication, and the engine seam
// (CustodyHook in, RedeliverCustody/FailCustody out). It registers as an
// ordinary algorithm, so the same Manager runs unchanged on the
// simulator, the live runtime, and both network runtimes.
//
// Like the engine's location registry, the Manager is the fixed tier's
// shared view: state is global and mutated only on the engine's
// execution context, while every replica movement is a real wired
// message with real latency and charges.
type Manager struct {
	ctx      engine.Context
	eng      *engine.Engine
	cfg      Config
	strategy RoutingAlgorithm
	ticker   Ticker // non-nil iff strategy wants periodic maintenance

	stores []*Store
	// retired holds IDs that reached a terminal state (delivered or
	// failed); late replicas of a retired bundle are duplicates.
	retired map[BundleID]struct{}
	// copies counts replicas created per live bundle (for the
	// replication-cost histogram at delivery time).
	copies map[BundleID]int
	// inflight tracks replicas currently on the wire per live bundle,
	// keyed by destination so NoteCrash can reap the copies the fault
	// injector discards at a crashed receiver; inFlightTotal is the sum,
	// kept so the gossip tick re-arms while transfers are still
	// travelling even if every store drained.
	inflight      map[BundleID]*flight
	inFlightTotal int
	nextID        BundleID

	connected []bool           // per MH: false between disconnect() and reconnect join
	visits    [][]engine.MSSID // per MH: recently joined cells, most recent first
	down      []bool           // per MSS: true between NoteCrash and NoteRestart

	tickArmed bool
	stats     Stats
}

// flight is one bundle's on-the-wire accounting: a representative copy
// (for loss reporting if every wired replica dies) and the number of
// copies travelling toward each destination station.
type flight struct {
	b     Bundle
	dests map[engine.MSSID]int
	total int
}

// Manager capabilities, checked at compile time.
var (
	_ engine.Algorithm        = (*Manager)(nil)
	_ engine.MSSHandler       = (*Manager)(nil)
	_ engine.MobilityObserver = (*Manager)(nil)
	_ engine.CustodyHook      = (*Manager)(nil)
	_ Host                    = (*Manager)(nil)
)

// New registers a custody manager on the network behind reg and binds it
// to the engine's custody seam. reg must expose its engine (the core,
// rt, and netrt Systems all do; so does a bare *engine.Engine).
func New(reg engine.Registrar, cfg Config) (*Manager, error) {
	cfg = cfg.withDefaults()
	var eng *engine.Engine
	switch r := reg.(type) {
	case *engine.Engine:
		eng = r
	case interface{ Engine() *engine.Engine }:
		eng = r.Engine()
	default:
		return nil, fmt.Errorf("dtn: registrar %T does not expose its engine", reg)
	}
	m := &Manager{
		cfg:      cfg,
		strategy: cfg.Strategy,
		retired:  make(map[BundleID]struct{}),
		copies:   make(map[BundleID]int),
		inflight: make(map[BundleID]*flight),
		nextID:   1,
	}
	m.ticker, _ = cfg.Strategy.(Ticker)
	m.ctx = reg.Register(m)
	m.stores = make([]*Store, m.ctx.M())
	for i := range m.stores {
		m.stores[i] = NewStore(cfg.StoreCap, cfg.MHQuota)
	}
	// Hosts start connected; OnDisconnect/OnJoin track them from there.
	m.connected = make([]bool, m.ctx.N())
	for i := range m.connected {
		m.connected[i] = true
	}
	m.visits = make([][]engine.MSSID, m.ctx.N())
	// Seed the visit history with the initial placement: OnJoin only
	// fires for later moves, but "where a host started" is as good a
	// spray target as any visited cell.
	for i := range m.stores {
		for _, mh := range m.ctx.LocalMHs(engine.MSSID(i)) {
			m.visits[mh] = []engine.MSSID{engine.MSSID(i)}
		}
	}
	m.down = make([]bool, m.ctx.M())
	m.eng = eng
	eng.BindCustody(m)
	return m, nil
}

// Name identifies the manager (and its strategy) in reports.
func (m *Manager) Name() string { return "dtn-" + m.strategy.Name() }

// Stats returns a copy of the custody counters. Read it between settled
// phases; the counters are maintained on the engine's execution context.
func (m *Manager) Stats() Stats { return m.stats }

// StoredTotal reports the replicas currently resident across all
// stations (diagnostics and tests).
func (m *Manager) StoredTotal() int {
	n := 0
	for _, s := range m.stores {
		n += s.Len()
	}
	return n
}

// ---- CustodyHook (the engine seam, inbound) ----

// OfferCustody implements engine.CustodyHook: the engine offers a
// payload it would otherwise bounce as a delivery failure. Refusing
// (station down, destination over quota) lets the engine proceed with
// the base protocol's failure notification, so refusal is always safe.
func (m *Manager) OfferCustody(holder engine.MSSID, mh engine.MHID, msg engine.Message, ref engine.CustodyRef) bool {
	if m.down[holder] {
		return false
	}
	now := m.ctx.Now()
	b := &Bundle{
		ID:      m.nextID,
		MH:      mh,
		Msg:     msg,
		Ref:     ref,
		Created: now,
		Tokens:  m.cfg.SprayCopies,
	}
	if m.cfg.TTL > 0 {
		b.Expiry = now + m.cfg.TTL
	}
	evicted, ok := m.stores[holder].Put(b)
	if !ok {
		m.stats.DroppedQuota++
		return false
	}
	m.nextID++
	m.stats.Accepted++
	m.copies[b.ID] = 1
	m.ctx.NoteBundleCustody(uint64(b.ID), holder, mh)
	if evicted != nil {
		m.evict(holder, evicted)
	}
	m.onStored(holder, b)
	m.maybeArmTick()
	return true
}

// ---- MSSHandler (wire arrivals) ----

// HandleMSS processes DTN wire messages at station at.
func (m *Manager) HandleMSS(ctx engine.Context, at engine.MSSID, from engine.From, msg engine.Message) {
	switch v := msg.(type) {
	case bundleMsg:
		b := v.b
		tracked := m.inflightDec(b.ID, at)
		if m.down[at] {
			// The fault injector discards deliveries to a crashed
			// station before they reach us; guard the race anyway. A
			// copy NoteCrash already reaped was loss-accounted there,
			// so only still-tracked copies are lost here.
			if tracked {
				m.lose(at, &b)
			}
		} else {
			m.acceptBundle(at, &b)
		}
	case summaryMsg:
		if !m.down[at] && !from.IsMH {
			m.handleSummary(at, from.MSS, v.data)
		}
	case wantMsg:
		if !m.down[at] && !from.IsMH {
			m.handleWant(at, from.MSS, v.data)
		}
	}
	m.maybeArmTick()
}

// acceptBundle is the single admission point for every replica reaching
// a station: fresh transfers, gossip replicas, and same-cell custody
// moves all pass through it, so the dedup, expiry, and delivery rules
// hold uniformly.
func (m *Manager) acceptBundle(at engine.MSSID, b *Bundle) {
	if _, dead := m.retired[b.ID]; dead {
		m.stats.Duplicates++
		return
	}
	if m.stores[at].Has(b.ID) {
		// Duplicate before expiry: an expired replica arriving where an
		// (equally expired) copy is already resident is one duplicate,
		// not an extra expiry — the resident copy's sweep is the single
		// place this bundle's expiry is counted and traced.
		m.stats.Duplicates++
		return
	}
	if b.expired(m.ctx.Now()) {
		m.expire(at, b)
		return
	}
	if m.connected[b.MH] {
		m.deliver(at, b)
		return
	}
	evicted, ok := m.stores[at].Put(b)
	if !ok {
		m.stats.DroppedQuota++
		m.ctx.NoteBundleDropped(uint64(b.ID), at, b.MH)
		m.strategy.ReportFailure(m, at, b, "quota")
		m.terminal(at, b, true)
		return
	}
	m.ctx.NoteBundleCustody(uint64(b.ID), at, b.MH)
	if evicted != nil {
		m.evict(at, evicted)
	}
	m.onStored(at, b)
}

// onStored runs the strategy hooks for a replica that just entered at's
// store and executes any replication it requests. Token accounting is
// binary: a replica with more than one token hands half to each peer.
func (m *Manager) onStored(at engine.MSSID, b *Bundle) {
	m.strategy.NotifyIncoming(m, at, b)
	peers, drop := m.strategy.SenderForBundle(m, at, b)
	for _, p := range peers {
		if p == at || int(p) < 0 || int(p) >= len(m.stores) || m.down[p] {
			continue
		}
		tokens := 1
		if b.Tokens > 1 {
			give := b.Tokens / 2
			b.Tokens -= give
			tokens = give
		}
		m.replicate(at, p, b, tokens)
	}
	if drop && m.stores[at].Has(b.ID) &&
		(m.inflight[b.ID] != nil || m.residentElsewhere(at, b.ID)) {
		// Custody transfer: the strategy moved the bundle on and wants
		// the local replica gone. Only honour it while another copy
		// exists, so a buggy strategy cannot silently lose a bundle.
		m.stores[at].Remove(b.ID)
	}
}

// deliver retires the bundle and hands it back to the engine, which
// routes it to the (re)connected host with a stale-location search plus
// the ordinary wireless downlink.
func (m *Manager) deliver(at engine.MSSID, b *Bundle) {
	m.retired[b.ID] = struct{}{}
	m.stats.Delivered++
	m.ctx.NoteBundleDelivered(uint64(b.ID), at, m.copies[b.ID])
	delete(m.copies, b.ID)
	m.eng.RedeliverCustody(at, b.MH, b.Msg, b.Ref)
}

// ---- replica movement ----

// replicate copies b from one station to another, giving the new
// replica the stated token budget. Replication toward a down station is
// a silent no-op (its store is gone and the wire to it is dead), so no
// copy is created or charged.
func (m *Manager) replicate(from, to engine.MSSID, b *Bundle, tokens int) {
	if m.down[to] {
		return
	}
	cp := *b
	cp.Tokens = tokens
	m.copies[b.ID]++
	m.inflightInc(&cp, to)
	m.stats.Transfers++
	m.ctx.NoteBundleTransfer(uint64(b.ID), from, to)
	m.ctx.SendFixed(from, to, bundleMsg{b: cp}, cost.CatControl)
}

// transfer moves b (already removed from from's store) toward to
// without creating a new replica — the custody move of DeliverAll.
func (m *Manager) transfer(from, to engine.MSSID, b *Bundle) {
	m.inflightInc(b, to)
	m.stats.Transfers++
	m.ctx.NoteBundleTransfer(uint64(b.ID), from, to)
	m.ctx.SendFixed(from, to, bundleMsg{b: *b}, cost.CatControl)
}

func (m *Manager) inflightInc(b *Bundle, to engine.MSSID) {
	f := m.inflight[b.ID]
	if f == nil {
		f = &flight{b: *b, dests: make(map[engine.MSSID]int)}
		m.inflight[b.ID] = f
	}
	f.dests[to]++
	f.total++
	m.inFlightTotal++
}

// inflightDec retires one on-the-wire copy that just surfaced at
// station at. It reports false when no copy toward at is tracked — the
// copy was presumed discarded and reaped by NoteCrash but survived
// (e.g. it arrived after the station restarted) — so the caller must
// not loss-account it a second time.
func (m *Manager) inflightDec(id BundleID, at engine.MSSID) bool {
	f := m.inflight[id]
	if f == nil || f.dests[at] == 0 {
		return false
	}
	f.dests[at]--
	if f.dests[at] == 0 {
		delete(f.dests, at)
	}
	f.total--
	if f.total == 0 {
		delete(m.inflight, id)
	}
	m.inFlightTotal--
	return true
}

// ---- anti-entropy ----

func (m *Manager) handleSummary(at, peer engine.MSSID, data []byte) {
	ids, err := DecodeSummary(data)
	if err != nil {
		return
	}
	want := make([]BundleID, 0, len(ids))
	for _, id := range ids {
		if _, dead := m.retired[id]; dead {
			continue
		}
		if m.stores[at].Has(id) {
			continue
		}
		want = append(want, id)
	}
	if len(want) == 0 {
		return
	}
	m.ctx.SendFixed(at, peer, wantMsg{data: EncodeSummary(want)}, cost.CatControl)
}

func (m *Manager) handleWant(at, peer engine.MSSID, data []byte) {
	ids, err := DecodeSummary(data)
	if err != nil {
		return
	}
	now := m.ctx.Now()
	for _, id := range ids {
		b := m.stores[at].Get(id)
		if b == nil {
			continue
		}
		if b.expired(now) {
			m.stores[at].Remove(id)
			m.expire(at, b)
			continue
		}
		// A peer asking for the bundle proves it useful: refresh its
		// eviction rank.
		m.stores[at].Touch(id)
		m.replicate(at, peer, b, 1)
	}
}

// ---- replica loss paths ----

// expire drops a replica whose TTL passed.
func (m *Manager) expire(at engine.MSSID, b *Bundle) {
	m.stats.Expired++
	m.ctx.NoteBundleExpired(uint64(b.ID), at, b.MH)
	m.strategy.ReportFailure(m, at, b, "expired")
	m.terminal(at, b, !m.down[at])
}

// evict drops a replica pushed out of a full store.
func (m *Manager) evict(at engine.MSSID, b *Bundle) {
	m.stats.EvictedLRU++
	m.ctx.NoteBundleDropped(uint64(b.ID), at, b.MH)
	m.strategy.ReportFailure(m, at, b, "evicted")
	m.terminal(at, b, true)
}

// lose drops a replica wiped by (or delivered into) a crash.
func (m *Manager) lose(at engine.MSSID, b *Bundle) {
	m.stats.Lost++
	m.ctx.NoteBundleDropped(uint64(b.ID), at, b.MH)
	m.strategy.ReportFailure(m, at, b, "crash")
	m.terminal(at, b, false)
}

// terminal checks whether the bundle just lost its last copy; if so it
// retires the ID and releases the engine-side obligations: a failure
// notification to the origin when a live station can send one, a silent
// abandonment (still freeing the pair-FIFO slot) when only a crashed
// station could.
func (m *Manager) terminal(at engine.MSSID, b *Bundle, canNotify bool) {
	if _, dead := m.retired[b.ID]; dead {
		return
	}
	if m.inflight[b.ID] != nil {
		return
	}
	for _, s := range m.stores {
		if s.Has(b.ID) {
			return
		}
	}
	m.retired[b.ID] = struct{}{}
	delete(m.copies, b.ID)
	m.stats.Failed++
	if canNotify {
		m.eng.FailCustody(at, b.MH, b.Msg, b.Ref)
	} else {
		m.eng.AbandonCustody(b.Ref)
	}
}

func (m *Manager) residentElsewhere(at engine.MSSID, id BundleID) bool {
	for i, s := range m.stores {
		if engine.MSSID(i) != at && s.Has(id) {
			return true
		}
	}
	return false
}

// sweepExpired lazily drops every expired replica at the station.
func (m *Manager) sweepExpired(at engine.MSSID) {
	now := m.ctx.Now()
	for _, b := range m.stores[at].All() {
		if b.expired(now) {
			m.stores[at].Remove(b.ID)
			m.expire(at, b)
		}
	}
}

// ---- MobilityObserver ----

// OnJoin marks the host reachable, records the visit for spray
// targeting, and lets the strategy drain parked traffic toward it.
func (m *Manager) OnJoin(ctx engine.Context, mss engine.MSSID, mh engine.MHID, prev engine.MSSID, wasDisconnected bool) {
	m.connected[mh] = true
	m.noteVisit(mh, mss)
	m.strategy.ReportPeerAppeared(m, mss, mh)
	m.maybeArmTick()
}

// OnLeave is a no-op: an in-transit host is still deliverable (the
// engine queues for it), so custody state does not change.
func (m *Manager) OnLeave(ctx engine.Context, mss engine.MSSID, mh engine.MHID) {}

// OnDisconnect marks the host unreachable so arriving replicas park
// instead of delivering.
func (m *Manager) OnDisconnect(ctx engine.Context, mss engine.MSSID, mh engine.MHID) {
	m.connected[mh] = false
	m.strategy.ReportPeerDisappeared(m, mss, mh)
}

func (m *Manager) noteVisit(mh engine.MHID, mss engine.MSSID) {
	v := m.visits[mh]
	out := make([]engine.MSSID, 0, len(v)+1)
	out = append(out, mss)
	for _, c := range v {
		if c != mss && len(out) < m.cfg.HistoryDepth {
			out = append(out, c)
		}
	}
	m.visits[mh] = out
}

// ---- crash seam ----

// NoteCrash wipes the station's volatile store and refuses custody
// there until NoteRestart. Wire it to faults.Injector.OnCrash (or the
// netrt supervisor's crash callback); it runs on the execution context.
func (m *Manager) NoteCrash(mss engine.MSSID) {
	if int(mss) < 0 || int(mss) >= len(m.down) {
		return
	}
	m.down[mss] = true
	for _, b := range m.stores[mss].All() {
		m.stores[mss].Remove(b.ID)
		m.lose(mss, b)
	}
	m.reapInflight(mss)
}

// reapInflight loss-accounts every replica currently on the wire toward
// the crashed station. The fault injector's delivery gate discards
// those records before HandleMSS ever sees them, so without this reap
// the bundle's in-flight count would never drain and its terminal
// obligations (failure notification or abandonment, pair-seq slot
// release) would never fire — wedging all later ordered traffic of the
// pair. A reaped copy that survives anyway (it lands after the station
// restarts) is ignored by inflightDec and deduped by acceptBundle's
// retired check, so the conservative reap can never double-deliver.
func (m *Manager) reapInflight(mss engine.MSSID) {
	// Reap in ascending bundle-ID order: map iteration order must not
	// leak into the event trace (seeded runs are byte-identical).
	var ids []BundleID
	for id, f := range m.inflight {
		if f.dests[mss] > 0 {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		f := m.inflight[id]
		n := f.dests[mss]
		delete(f.dests, mss)
		f.total -= n
		if f.total == 0 {
			delete(m.inflight, id)
		}
		m.inFlightTotal -= n
		b := f.b
		for ; n > 0; n-- {
			m.lose(mss, &b)
		}
	}
}

// NoteRestart reopens the station for custody (its store restarts
// empty, like every volatile structure on a restarted station).
func (m *Manager) NoteRestart(mss engine.MSSID) {
	if int(mss) < 0 || int(mss) >= len(m.down) {
		return
	}
	m.down[mss] = false
}

// ---- Host (the strategy service surface) ----

// M reports the number of stations.
func (m *Manager) M() int { return m.ctx.M() }

// Now reports the current virtual time.
func (m *Manager) Now() sim.Time { return m.ctx.Now() }

// HasReplica reports whether the station holds a replica of id.
func (m *Manager) HasReplica(at engine.MSSID, id BundleID) bool {
	return m.stores[at].Has(id)
}

// StoredAt returns the station's resident bundle IDs in ascending order.
func (m *Manager) StoredAt(at engine.MSSID) []BundleID {
	return m.stores[at].IDs()
}

// RecentCells returns the cells mh recently joined, most recent first.
func (m *Manager) RecentCells(mh engine.MHID) []engine.MSSID {
	return m.visits[mh]
}

// SendSummary ships the station's summary vector to a peer.
func (m *Manager) SendSummary(from, peer engine.MSSID) {
	if from == peer || m.down[from] {
		return
	}
	m.sweepExpired(from)
	ids := m.stores[from].IDs()
	if len(ids) == 0 {
		return
	}
	m.stats.SummariesSent++
	m.ctx.SendFixed(from, peer, summaryMsg{data: EncodeSummary(ids)}, cost.CatControl)
}

// DeliverAll moves every stored replica destined for mh toward station
// at. Stations are visited in ascending order and bundles in ascending
// ID order; arrival order may still differ, and the engine's pair
// sequence buffer restores per-pair FIFO at final delivery.
func (m *Manager) DeliverAll(at engine.MSSID, mh engine.MHID) {
	for i := range m.stores {
		src := engine.MSSID(i)
		if m.down[src] {
			continue
		}
		for _, b := range m.stores[src].ForMH(mh) {
			m.stores[src].Remove(b.ID)
			if b.expired(m.ctx.Now()) {
				m.expire(src, b)
				continue
			}
			if src == at {
				// Already at the host's station: no wire hop, the
				// redelivery downlink is the only remaining cost.
				m.acceptBundle(at, b)
			} else {
				m.transfer(src, at, b)
			}
		}
	}
}

// ---- gossip timer ----

// maybeArmTick arms the strategy's maintenance timer while there is
// anything to maintain. The timer is a daemon: it never holds the
// substrate's idle accounting open, so a settling run with drained
// stores quiesces even mid-period.
func (m *Manager) maybeArmTick() {
	if m.ticker == nil || m.tickArmed {
		return
	}
	if m.inFlightTotal == 0 && m.StoredTotal() == 0 {
		return
	}
	m.tickArmed = true
	m.ctx.AfterDaemon(m.ticker.TickEvery(), m.tick)
}

func (m *Manager) tick() {
	m.tickArmed = false
	for i := range m.stores {
		if !m.down[i] {
			m.sweepExpired(engine.MSSID(i))
		}
	}
	m.ticker.Tick(m)
	m.maybeArmTick()
}
