package dtn

import (
	"encoding/binary"
	"fmt"
)

// Summary-vector codec: the anti-entropy payload exchanged by the
// epidemic strategy. A summary is the sorted set of bundle IDs a store
// holds, encoded as a varint count followed by varint deltas between
// consecutive IDs (first delta is from zero). Sorted-set + delta keeps
// the common dense-ID case near one byte per bundle, and gives the codec
// a canonical form: decode∘encode is the identity on valid encodings,
// which FuzzSummaryVector checks as a fixpoint.

// EncodeSummary encodes the bundle-ID set. ids must be sorted ascending
// and duplicate-free (Store.IDs returns exactly that); Encode panics on
// out-of-order input rather than silently producing an undecodable
// vector.
func EncodeSummary(ids []BundleID) []byte {
	buf := make([]byte, 0, 1+len(ids))
	buf = binary.AppendUvarint(buf, uint64(len(ids)))
	prev := uint64(0)
	for i, id := range ids {
		v := uint64(id)
		if i > 0 && v <= prev {
			panic(fmt.Sprintf("dtn: EncodeSummary ids not strictly ascending at %d", i))
		}
		buf = binary.AppendUvarint(buf, v-prev)
		prev = v
	}
	return buf
}

// DecodeSummary decodes a summary vector, returning the IDs in ascending
// order. It rejects truncated input, trailing garbage, duplicate IDs,
// and deltas that would overflow.
func DecodeSummary(data []byte) ([]BundleID, error) {
	n, k := binary.Uvarint(data)
	if k <= 0 {
		return nil, fmt.Errorf("dtn: summary count: bad varint")
	}
	data = data[k:]
	if n > uint64(len(data)) {
		// Each delta takes at least one byte; a count beyond the
		// remaining length is corrupt (and guards the allocation below).
		return nil, fmt.Errorf("dtn: summary count %d exceeds payload", n)
	}
	ids := make([]BundleID, 0, n)
	prev := uint64(0)
	for i := uint64(0); i < n; i++ {
		d, k := binary.Uvarint(data)
		if k <= 0 {
			return nil, fmt.Errorf("dtn: summary delta %d: bad varint", i)
		}
		data = data[k:]
		if i > 0 && d == 0 {
			return nil, fmt.Errorf("dtn: summary delta %d: duplicate id", i)
		}
		v := prev + d
		if v < prev {
			return nil, fmt.Errorf("dtn: summary delta %d: overflow", i)
		}
		ids = append(ids, BundleID(v))
		prev = v
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("dtn: summary has %d trailing bytes", len(data))
	}
	return ids, nil
}
