package dtn

import (
	"reflect"
	"testing"

	"mobiledist/internal/core"
	"mobiledist/internal/cost"
	"mobiledist/internal/engine"
	"mobiledist/internal/obs"
)

// probe records deliveries and failure notifications for the test
// traffic riding over the custody layer.
type probe struct {
	got   []engine.Message
	fails []engine.Message
}

func (p *probe) Name() string { return "probe" }
func (p *probe) HandleMH(ctx engine.Context, at engine.MHID, msg engine.Message) {
	p.got = append(p.got, msg)
}
func (p *probe) OnDeliveryFailure(ctx engine.Context, at engine.MSSID, mh engine.MHID, msg engine.Message, reason engine.FailReason) {
	p.fails = append(p.fails, msg)
}

// fixedSys builds a deterministic simulator system with a probe and a
// custody manager attached.
func fixedSys(t *testing.T, cfg core.Config, dcfg Config) (*core.System, *probe, engine.Context, *Manager) {
	t.Helper()
	cfg.Wireless = core.FixedDelay(2)
	cfg.Wired = core.FixedDelay(3)
	cfg.Travel = core.FixedDelay(5)
	sys := core.MustNewSystem(cfg)
	p := &probe{}
	ctx := sys.Register(p)
	mgr, err := New(sys, dcfg)
	if err != nil {
		t.Fatalf("dtn.New: %v", err)
	}
	return sys, p, ctx, mgr
}

// TestParkDeliversAfterReconnect is the core custody scenario: messages
// routed to a disconnected host park at its last station and drain, in
// order, when it reconnects in a different cell.
func TestParkDeliversAfterReconnect(t *testing.T) {
	sys, p, ctx, mgr := fixedSys(t, core.DefaultConfig(3, 1), Config{})
	if err := sys.Disconnect(0); err != nil {
		t.Fatalf("Disconnect: %v", err)
	}
	sys.Schedule(10, func() {
		ctx.SendToMH(1, 0, "a", cost.CatAlgorithm)
		ctx.SendToMH(1, 0, "b", cost.CatAlgorithm)
		ctx.SendToMH(1, 0, "c", cost.CatAlgorithm)
	})
	sys.Schedule(50, func() {
		if err := sys.Reconnect(0, 2, true); err != nil {
			t.Fatalf("Reconnect: %v", err)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if want := []engine.Message{"a", "b", "c"}; !reflect.DeepEqual(p.got, want) {
		t.Fatalf("deliveries = %v, want %v", p.got, want)
	}
	if len(p.fails) != 0 {
		t.Fatalf("failures = %v, want none", p.fails)
	}
	st := mgr.Stats()
	if st.Accepted != 3 || st.Delivered != 3 || st.Failed != 0 {
		t.Fatalf("stats = %+v, want 3 accepted, 3 delivered", st)
	}
	if mgr.StoredTotal() != 0 {
		t.Fatalf("StoredTotal = %d after drain, want 0", mgr.StoredTotal())
	}
}

// TestParkTTLExpiryNotifiesSender pins the terminal path: a parked
// bundle whose TTL passes before the host returns is dropped and the
// origin gets the base protocol's delivery-failure notification.
func TestParkTTLExpiryNotifiesSender(t *testing.T) {
	sys, p, ctx, mgr := fixedSys(t, core.DefaultConfig(2, 1), Config{TTL: 50})
	if err := sys.Disconnect(0); err != nil {
		t.Fatalf("Disconnect: %v", err)
	}
	sys.Schedule(10, func() { ctx.SendToMH(1, 0, "late", cost.CatAlgorithm) })
	sys.Schedule(300, func() {
		if err := sys.Reconnect(0, 1, true); err != nil {
			t.Fatalf("Reconnect: %v", err)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(p.got) != 0 {
		t.Fatalf("deliveries = %v, want none (TTL expired)", p.got)
	}
	if want := []engine.Message{"late"}; !reflect.DeepEqual(p.fails, want) {
		t.Fatalf("failures = %v, want %v", p.fails, want)
	}
	st := mgr.Stats()
	if st.Expired != 1 || st.Failed != 1 || st.Delivered != 0 {
		t.Fatalf("stats = %+v, want 1 expired, 1 failed", st)
	}
}

// TestQuotaRefusalFallsBackToFailure: when the per-MH quota is full the
// custody offer is refused and the engine's ordinary failure
// notification reaches the sender immediately.
func TestQuotaRefusalFallsBackToFailure(t *testing.T) {
	sys, p, ctx, mgr := fixedSys(t, core.DefaultConfig(2, 1), Config{MHQuota: 1})
	if err := sys.Disconnect(0); err != nil {
		t.Fatalf("Disconnect: %v", err)
	}
	sys.Schedule(10, func() {
		ctx.SendToMH(1, 0, "first", cost.CatAlgorithm)
		ctx.SendToMH(1, 0, "second", cost.CatAlgorithm)
	})
	sys.Schedule(100, func() {
		if err := sys.Reconnect(0, 1, true); err != nil {
			t.Fatalf("Reconnect: %v", err)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if want := []engine.Message{"first"}; !reflect.DeepEqual(p.got, want) {
		t.Fatalf("deliveries = %v, want %v", p.got, want)
	}
	if want := []engine.Message{"second"}; !reflect.DeepEqual(p.fails, want) {
		t.Fatalf("failures = %v, want %v", p.fails, want)
	}
	st := mgr.Stats()
	if st.Accepted != 1 || st.DroppedQuota != 1 {
		t.Fatalf("stats = %+v, want 1 accepted, 1 quota drop", st)
	}
}

// TestEpidemicSurvivesCustodianCrash: gossip replicates parked bundles
// to neighbouring stations, so wiping the original custodian loses no
// traffic — the replicas deliver at reconnection. The same scenario
// under Park would lose everything.
func TestEpidemicSurvivesCustodianCrash(t *testing.T) {
	cfg := core.DefaultConfig(4, 1)
	cfg.Faults = &core.FaultPlan{Crashes: []core.Crash{{MSS: 0, At: 300, RestartAt: 400}}}
	sys, p, ctx, mgr := fixedSys(t, cfg, Config{Strategy: Epidemic{Every: 50}})
	inj := sys.Injector()
	inj.OnCrash(mgr.NoteCrash)
	inj.OnRestart(mgr.NoteRestart)
	inj.Arm()
	if err := sys.Disconnect(0); err != nil {
		t.Fatalf("Disconnect: %v", err)
	}
	sys.Schedule(30, func() {
		ctx.SendToMH(2, 0, "x", cost.CatAlgorithm)
		ctx.SendToMH(2, 0, "y", cost.CatAlgorithm)
	})
	sys.Schedule(500, func() {
		if err := sys.Reconnect(0, 2, true); err != nil {
			t.Fatalf("Reconnect: %v", err)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(p.got) != 2 {
		t.Fatalf("deliveries = %v, want both messages despite the custodian crash", p.got)
	}
	if len(p.fails) != 0 {
		t.Fatalf("failures = %v, want none", p.fails)
	}
	st := mgr.Stats()
	if st.Delivered != 2 || st.Failed != 0 {
		t.Fatalf("stats = %+v, want 2 delivered, 0 failed", st)
	}
	if st.Lost == 0 {
		t.Fatalf("stats = %+v, want crash-wiped replicas counted in Lost", st)
	}
	if st.SummariesSent == 0 || st.Transfers == 0 {
		t.Fatalf("stats = %+v, want anti-entropy activity", st)
	}
}

// TestSprayReplicatesAlongVisitHistory: binary spray-and-wait places
// replicas in the destination's recently visited cells, halving the
// token budget at each hop, and the replication cost surfaces in the
// bundle-copies histogram.
func TestSprayReplicatesAlongVisitHistory(t *testing.T) {
	tr := obs.NewTracer(0).WithMetrics(obs.NewMetrics())
	cfg := core.DefaultConfig(4, 1)
	cfg.Obs = tr
	sys, p, ctx, mgr := fixedSys(t, cfg, Config{Strategy: SprayAndWait{}, SprayCopies: 4})
	sys.Schedule(10, func() { _ = sys.Move(0, 1) })
	sys.Schedule(40, func() { _ = sys.Move(0, 2) })
	sys.Schedule(70, func() { _ = sys.Disconnect(0) })
	sys.Schedule(100, func() { ctx.SendToMH(3, 0, "sprayed", cost.CatAlgorithm) })
	sys.Schedule(300, func() {
		if err := sys.Reconnect(0, 3, true); err != nil {
			t.Fatalf("Reconnect: %v", err)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if want := []engine.Message{"sprayed"}; !reflect.DeepEqual(p.got, want) {
		t.Fatalf("deliveries = %v, want %v", p.got, want)
	}
	st := mgr.Stats()
	// Custody at cell 2, sprayed to cell 1 (2 tokens), then on to cell 0
	// (1 token): three replicas total, two of which dedupe at delivery.
	if st.Accepted != 1 || st.Delivered != 1 {
		t.Fatalf("stats = %+v, want 1 accepted, 1 delivered", st)
	}
	if st.Duplicates != 2 {
		t.Fatalf("stats = %+v, want 2 duplicate replicas discarded", st)
	}
	ms := tr.MetricsSnapshot()
	if ms.BundleCopies.Count() != 1 || ms.BundleCopies.Max() != 3 {
		t.Fatalf("bundle-copies histogram n=%d max=%d, want n=1 max=3",
			ms.BundleCopies.Count(), ms.BundleCopies.Max())
	}
	if ms.BundleCustodyTicks.Count() != 1 {
		t.Fatalf("bundle-custody-ticks n=%d, want 1", ms.BundleCustodyTicks.Count())
	}
}

// TestCrashReapsInflightTransfer pins the in-flight reap: a custody
// transfer travelling toward a station that crashes mid-flight is
// discarded by the fault injector before HandleMSS ever runs, so the
// manager must loss-account it at NoteCrash. Without the reap the
// bundle's in-flight count never drains, its terminal obligations never
// fire, and the (MH1,MH0) pair wedges — the post-restart send "m2"
// would never deliver.
func TestCrashReapsInflightTransfer(t *testing.T) {
	cfg := core.DefaultConfig(2, 2)
	// Reconnect at 300: uplink 300→302, handoff req 302→305, reply
	// 305→308, join at 308 fires DeliverAll — the custody transfer is
	// on the wire 308→311. Crashing the receiver at 310 catches it.
	cfg.Faults = &core.FaultPlan{Crashes: []core.Crash{{MSS: 1, At: 310, RestartAt: 400}}}
	sys, p, ctx, mgr := fixedSys(t, cfg, Config{})
	inj := sys.Injector()
	inj.OnCrash(mgr.NoteCrash)
	inj.OnRestart(mgr.NoteRestart)
	inj.Arm()
	if err := sys.Disconnect(0); err != nil {
		t.Fatalf("Disconnect: %v", err)
	}
	sys.Schedule(10, func() {
		if err := ctx.SendMHToMH(1, 0, "m1", cost.CatAlgorithm); err != nil {
			t.Errorf("SendMHToMH m1: %v", err)
		}
	})
	sys.Schedule(300, func() {
		if err := sys.Reconnect(0, 1, true); err != nil {
			t.Errorf("Reconnect: %v", err)
		}
	})
	sys.Schedule(500, func() {
		if err := ctx.SendMHToMH(1, 0, "m2", cost.CatAlgorithm); err != nil {
			t.Errorf("SendMHToMH m2: %v", err)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// m1's only copy died on the wire into the crash; m2 must still
	// deliver — the reap released m1's pair sequence slot.
	if want := []engine.Message{"m2"}; !reflect.DeepEqual(p.got, want) {
		t.Fatalf("deliveries = %v, want %v (pair slot released by the reap)", p.got, want)
	}
	st := mgr.Stats()
	if st.Accepted != 1 || st.Delivered != 0 || st.Lost != 1 || st.Failed != 1 {
		t.Fatalf("stats = %+v, want 1 accepted, 1 lost in flight, 1 failed", st)
	}
	if mgr.StoredTotal() != 0 || mgr.inFlightTotal != 0 {
		t.Fatalf("stored=%d inflight=%d after reap, want 0/0",
			mgr.StoredTotal(), mgr.inFlightTotal)
	}
	if got := sys.Stats().FailedDeliveries; got != 1 {
		t.Fatalf("FailedDeliveries = %d, want 1 (m1 abandoned)", got)
	}
}

// TestFailCustodyTombstonesWithOriginDown pins send-time pair-slot
// release: a parked bundle expires while its origin station is crashed,
// so the failure notification is discarded in flight. The pair sequence
// slot must be freed at send time regardless, or every later ordered
// message of the pair wedges behind the hole.
func TestFailCustodyTombstonesWithOriginDown(t *testing.T) {
	cfg := core.DefaultConfig(2, 2)
	cfg.Faults = &core.FaultPlan{Crashes: []core.Crash{{MSS: 1, At: 100, RestartAt: 200}}}
	sys, p, ctx, mgr := fixedSys(t, cfg, Config{TTL: 50})
	inj := sys.Injector()
	inj.OnCrash(mgr.NoteCrash)
	inj.OnRestart(mgr.NoteRestart)
	inj.Arm()
	if err := sys.Disconnect(0); err != nil {
		t.Fatalf("Disconnect: %v", err)
	}
	// Custody at mss0 with origin mss1; the TTL passes at ~62.
	sys.Schedule(10, func() {
		if err := ctx.SendMHToMH(1, 0, "m1", cost.CatAlgorithm); err != nil {
			t.Errorf("SendMHToMH m1: %v", err)
		}
	})
	// Reconnecting at 150 drains the store, finds m1 expired, and sends
	// the failure notification into the origin's crash window.
	sys.Schedule(150, func() {
		if err := sys.Reconnect(0, 0, true); err != nil {
			t.Errorf("Reconnect: %v", err)
		}
	})
	sys.Schedule(300, func() {
		if err := ctx.SendMHToMH(1, 0, "m2", cost.CatAlgorithm); err != nil {
			t.Errorf("SendMHToMH m2: %v", err)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if want := []engine.Message{"m2"}; !reflect.DeepEqual(p.got, want) {
		t.Fatalf("deliveries = %v, want %v (slot tombstoned at send time)", p.got, want)
	}
	st := mgr.Stats()
	if st.Expired != 1 || st.Failed != 1 {
		t.Fatalf("stats = %+v, want 1 expired, 1 failed", st)
	}
	// The notification itself died with the origin down: no failure
	// callback fired, and that must not matter for pair progress.
	if len(p.fails) != 0 {
		t.Fatalf("failures = %v, want none (notification discarded)", p.fails)
	}
}

// TestExpiredDuplicateCountsAsDuplicate pins acceptBundle's admission
// order: an expired replica arriving where an (equally expired) copy is
// already resident is one duplicate, not an extra expiry — the resident
// copy's sweep is the single place that bundle's expiry is accounted.
func TestExpiredDuplicateCountsAsDuplicate(t *testing.T) {
	sys, _, ctx, mgr := fixedSys(t, core.DefaultConfig(2, 1), Config{TTL: 100})
	if err := sys.Disconnect(0); err != nil {
		t.Fatalf("Disconnect: %v", err)
	}
	sys.Schedule(10, func() { ctx.SendToMH(1, 0, "parked", cost.CatAlgorithm) })
	var cp Bundle
	sys.Schedule(50, func() {
		ids := mgr.StoredAt(0)
		if len(ids) != 1 {
			t.Errorf("StoredAt(0) = %v, want 1 parked bundle", ids)
			return
		}
		cp = *mgr.stores[0].Get(ids[0])
	})
	// Well past the TTL, a late replica of the same bundle arrives at
	// the station still holding it.
	sys.Schedule(200, func() { mgr.acceptBundle(0, &cp) })
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	st := mgr.Stats()
	if st.Duplicates != 1 {
		t.Fatalf("Duplicates = %d, want 1 (resident copy wins)", st.Duplicates)
	}
	if st.Expired != 0 {
		t.Fatalf("Expired = %d, want 0 (no sweep ran; the arrival must not count it)", st.Expired)
	}
	if !mgr.stores[0].Has(cp.ID) {
		t.Fatalf("resident replica vanished; the duplicate arrival must leave it in place")
	}
}

// TestWaiterOverflowHandsCustody: with a bounded waiter queue and the
// custody layer attached, routed messages beyond the in-transit queue
// limit become bundles instead of drops, and everything still delivers
// after the join.
func TestWaiterOverflowHandsCustody(t *testing.T) {
	cfg := core.DefaultConfig(2, 1)
	cfg.WaiterLimit = 1
	cfg.Wireless = core.FixedDelay(2)
	cfg.Wired = core.FixedDelay(3)
	// A long transit keeps mh0 between cells while the sends arrive.
	cfg.Travel = core.FixedDelay(100)
	sys := core.MustNewSystem(cfg)
	p := &probe{}
	ctx := sys.Register(p)
	mgr, err := New(sys, Config{})
	if err != nil {
		t.Fatalf("dtn.New: %v", err)
	}
	sys.Schedule(5, func() { _ = sys.Move(0, 1) })
	sys.Schedule(20, func() {
		ctx.SendToMH(0, 0, "q1", cost.CatAlgorithm)
		ctx.SendToMH(0, 0, "q2", cost.CatAlgorithm)
		ctx.SendToMH(0, 0, "q3", cost.CatAlgorithm)
	})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(p.got) != 3 {
		t.Fatalf("deliveries = %v, want all 3 (overflow takes custody)", p.got)
	}
	if got := sys.Stats().WaiterDrops; got != 0 {
		t.Fatalf("WaiterDrops = %d, want 0 with custody attached", got)
	}
	if st := mgr.Stats(); st.Accepted != 2 || st.Delivered != 2 {
		t.Fatalf("stats = %+v, want 2 overflow bundles accepted and delivered", st)
	}
}
