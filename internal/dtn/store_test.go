package dtn

import (
	"reflect"
	"testing"

	"mobiledist/internal/engine"
)

func mkBundle(id BundleID, mh engine.MHID) *Bundle {
	return &Bundle{ID: id, MH: mh, Msg: "m", Tokens: 1}
}

func TestStoreQuotaRefuses(t *testing.T) {
	s := NewStore(0, 2)
	for i := BundleID(1); i <= 2; i++ {
		if _, ok := s.Put(mkBundle(i, 0)); !ok {
			t.Fatalf("Put %d refused under quota", i)
		}
	}
	if _, ok := s.Put(mkBundle(3, 0)); ok {
		t.Fatal("Put over per-MH quota accepted")
	}
	// A different destination still has room.
	if _, ok := s.Put(mkBundle(4, 1)); !ok {
		t.Fatal("Put for another MH refused")
	}
	// Removing one frees the quota slot.
	if s.Remove(1) == nil {
		t.Fatal("Remove(1) returned nil")
	}
	if _, ok := s.Put(mkBundle(5, 0)); !ok {
		t.Fatal("Put after Remove refused")
	}
}

func TestStoreCapEvictsLRU(t *testing.T) {
	s := NewStore(2, 0)
	s.Put(mkBundle(1, 0))
	s.Put(mkBundle(2, 0))
	// Touching 1 makes 2 the eviction candidate.
	s.Touch(1)
	ev, ok := s.Put(mkBundle(3, 0))
	if !ok || ev == nil || ev.ID != 2 {
		t.Fatalf("Put at cap: evicted %v ok=%v, want bundle 2", ev, ok)
	}
	if got := s.IDs(); !reflect.DeepEqual(got, []BundleID{1, 3}) {
		t.Fatalf("IDs = %v, want [1 3]", got)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
}

func TestStoreForMHSortedByID(t *testing.T) {
	s := NewStore(0, 0)
	s.Put(mkBundle(5, 0))
	s.Put(mkBundle(2, 1))
	s.Put(mkBundle(9, 0))
	s.Put(mkBundle(1, 0))
	got := s.ForMH(0)
	ids := make([]BundleID, len(got))
	for i, b := range got {
		ids[i] = b.ID
	}
	if !reflect.DeepEqual(ids, []BundleID{1, 5, 9}) {
		t.Fatalf("ForMH ids = %v, want [1 5 9]", ids)
	}
}
