package dtn

import (
	"bytes"
	"reflect"
	"testing"
)

func TestSummaryRoundTrip(t *testing.T) {
	cases := [][]BundleID{
		nil,
		{0},
		{1},
		{1, 2, 3},
		{7, 300, 301, 1 << 40},
	}
	for _, ids := range cases {
		enc := EncodeSummary(ids)
		got, err := DecodeSummary(enc)
		if err != nil {
			t.Fatalf("DecodeSummary(%v): %v", ids, err)
		}
		if len(got) == 0 && len(ids) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, ids) {
			t.Fatalf("round trip %v -> %v", ids, got)
		}
	}
}

func TestSummaryRejectsCorruptInput(t *testing.T) {
	cases := map[string][]byte{
		"empty":          {},
		"truncated":      {3, 1, 2},
		"count-too-big":  {200},
		"trailing":       append(EncodeSummary([]BundleID{1, 2}), 0),
		"duplicate":      {2, 5, 0},
		"overflow-delta": {2, 1, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 1},
	}
	for name, data := range cases {
		if ids, err := DecodeSummary(data); err == nil {
			t.Errorf("%s: decoded %v, want error", name, ids)
		}
	}
}

func TestEncodeSummaryPanicsOnUnsortedInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("EncodeSummary accepted out-of-order ids")
		}
	}()
	EncodeSummary([]BundleID{3, 2})
}

// FuzzSummaryVector checks the codec fixpoint: any input that decodes
// re-encodes to a canonical form that decodes to the same set and
// re-encodes to the same bytes.
func FuzzSummaryVector(f *testing.F) {
	f.Add([]byte{0})
	f.Add(EncodeSummary([]BundleID{0}))
	f.Add(EncodeSummary([]BundleID{1, 5, 9}))
	f.Add(EncodeSummary([]BundleID{7, 300, 301, 1 << 40}))
	f.Fuzz(func(t *testing.T, data []byte) {
		ids, err := DecodeSummary(data)
		if err != nil {
			return
		}
		enc := EncodeSummary(ids)
		ids2, err := DecodeSummary(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(ids2, ids) && !(len(ids) == 0 && len(ids2) == 0) {
			t.Fatalf("decode(encode(ids)) = %v, want %v", ids2, ids)
		}
		if enc2 := EncodeSummary(ids2); !bytes.Equal(enc2, enc) {
			t.Fatalf("encoding is not a fixpoint: % x vs % x", enc2, enc)
		}
	})
}
