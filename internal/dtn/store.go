package dtn

import (
	"sort"

	"mobiledist/internal/engine"
)

// Store is one station's bounded replica store. It is a plain in-memory
// structure accessed on the engine's execution context; the Manager owns
// one per MSS and serialises access.
//
// Admission policy: an arrival over the destination's per-MH quota is
// refused outright (the quota protects other hosts' space from one busy
// destination); an arrival at a full store evicts the least-recently-
// useful resident to make room (usefulness is refreshed when a peer asks
// for the bundle during anti-entropy, so bundles nobody wants age out
// first).
type Store struct {
	cap   int // 0 = unlimited
	quota int // per-MH, 0 = unlimited

	byID map[BundleID]*storeEntry
	// order is the LRU list, least recently useful first.
	head, tail *storeEntry
	perMH      map[engine.MHID]int
}

type storeEntry struct {
	b          *Bundle
	prev, next *storeEntry
}

// NewStore returns an empty store with the given capacity and per-MH
// quota (0 = unlimited for either).
func NewStore(cap, quota int) *Store {
	return &Store{
		cap:   cap,
		quota: quota,
		byID:  make(map[BundleID]*storeEntry),
		perMH: make(map[engine.MHID]int),
	}
}

// Len reports the number of resident bundles.
func (s *Store) Len() int { return len(s.byID) }

// Has reports whether the bundle is resident.
func (s *Store) Has(id BundleID) bool {
	_, ok := s.byID[id]
	return ok
}

// Get returns the resident replica, or nil.
func (s *Store) Get(id BundleID) *Bundle {
	if e, ok := s.byID[id]; ok {
		return e.b
	}
	return nil
}

// Put admits b. It returns the replica evicted to make room (nil when
// none) and whether b was admitted; refusal means the per-MH quota was
// exhausted. The caller must not Put an ID that is already resident.
func (s *Store) Put(b *Bundle) (evicted *Bundle, ok bool) {
	if s.quota > 0 && s.perMH[b.MH] >= s.quota {
		return nil, false
	}
	if s.cap > 0 && len(s.byID) >= s.cap {
		evicted = s.removeEntry(s.head)
	}
	e := &storeEntry{b: b}
	s.byID[b.ID] = e
	s.pushBack(e)
	s.perMH[b.MH]++
	return evicted, true
}

// Remove deletes the replica and returns it, or nil if absent.
func (s *Store) Remove(id BundleID) *Bundle {
	e, ok := s.byID[id]
	if !ok {
		return nil
	}
	return s.removeEntry(e)
}

// Touch marks the replica recently useful, moving it to the safe end of
// the eviction order.
func (s *Store) Touch(id BundleID) {
	e, ok := s.byID[id]
	if !ok {
		return
	}
	s.unlink(e)
	s.pushBack(e)
}

// IDs returns the resident bundle IDs in ascending order.
func (s *Store) IDs() []BundleID {
	ids := make([]BundleID, 0, len(s.byID))
	for id := range s.byID {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// ForMH returns the resident bundles destined for mh in ascending ID
// order (custody-acceptance order, hence per-pair send order).
func (s *Store) ForMH(mh engine.MHID) []*Bundle {
	var out []*Bundle
	for _, e := range s.byID {
		if e.b.MH == mh {
			out = append(out, e.b)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// All returns every resident bundle in ascending ID order.
func (s *Store) All() []*Bundle {
	out := make([]*Bundle, 0, len(s.byID))
	for _, e := range s.byID {
		out = append(out, e.b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func (s *Store) removeEntry(e *storeEntry) *Bundle {
	s.unlink(e)
	delete(s.byID, e.b.ID)
	if n := s.perMH[e.b.MH] - 1; n > 0 {
		s.perMH[e.b.MH] = n
	} else {
		delete(s.perMH, e.b.MH)
	}
	return e.b
}

func (s *Store) pushBack(e *storeEntry) {
	e.prev, e.next = s.tail, nil
	if s.tail != nil {
		s.tail.next = e
	} else {
		s.head = e
	}
	s.tail = e
}

func (s *Store) unlink(e *storeEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}
