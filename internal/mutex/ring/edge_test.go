package ring

import (
	"testing"
	"testing/quick"

	"mobiledist/internal/core"
	"mobiledist/internal/cost"
	"mobiledist/internal/sim"
	"mobiledist/internal/workload"
)

func TestR2SingleMSSRing(t *testing.T) {
	// M = 1: the token "circulates" by self-transfer; requests are still
	// granted once per traversal under the counter variant.
	sys := newTestSystem(t, 1, 3)
	mon := &monitor{t: t}
	r2, err := NewR2(sys, VariantCounter, mon.options(2), 3, nil)
	if err != nil {
		t.Fatalf("NewR2: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := r2.Request(core.MHID(i)); err != nil {
			t.Fatalf("Request: %v", err)
		}
	}
	sys.Schedule(50, func() {
		if err := r2.Start(); err != nil {
			t.Errorf("Start: %v", err)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := r2.Grants(); got != 3 {
		t.Errorf("grants = %d, want 3", got)
	}
}

func TestR1SingleMemberRing(t *testing.T) {
	sys := newTestSystem(t, 2, 2)
	mon := &monitor{t: t}
	r1, err := NewR1(sys, []core.MHID{0}, mon.options(1), false, 2)
	if err != nil {
		t.Fatalf("NewR1: %v", err)
	}
	if err := r1.Request(core.MHID(0)); err != nil {
		t.Fatalf("Request: %v", err)
	}
	if err := r1.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if r1.Traversals() != 2 || r1.Grants() != 1 {
		t.Errorf("traversals = %d grants = %d, want 2/1", r1.Traversals(), r1.Grants())
	}
}

func TestR2RequestArrivingWhileTokenHeldWaitsOneTraversal(t *testing.T) {
	// The paper moves requests to the grant queue only on token arrival: a
	// request reaching the token-holding MSS after that instant waits for
	// the next traversal.
	sys := newTestSystem(t, 3, 6)
	mon := &monitor{t: t}
	var r2 *R2
	var grantedAtTraversal []int64
	opts := mon.options(2_000) // long hold keeps the token at mss0
	base := opts.OnEnter
	opts.OnEnter = func(mh core.MHID) {
		base(mh)
		grantedAtTraversal = append(grantedAtTraversal, r2.Traversals())
	}
	var err error
	r2, err = NewR2(sys, VariantPlain, opts, 2, nil)
	if err != nil {
		t.Fatalf("NewR2: %v", err)
	}
	// mh0 requests before the token starts; mh3 (same cell) requests while
	// the token is busy serving mh0.
	if err := r2.Request(core.MHID(0)); err != nil {
		t.Fatalf("Request: %v", err)
	}
	sys.Schedule(100, func() {
		if err := r2.Start(); err != nil {
			t.Errorf("Start: %v", err)
		}
	})
	sys.Schedule(500, func() { // token is at mss0, mh0 inside the CS
		if err := r2.Request(core.MHID(3)); err != nil {
			t.Errorf("Request: %v", err)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := r2.Grants(); got != 2 {
		t.Fatalf("grants = %d, want 2", got)
	}
	if len(grantedAtTraversal) != 2 || grantedAtTraversal[1] != grantedAtTraversal[0]+1 {
		t.Errorf("grants landed in traversals %v, want consecutive traversals", grantedAtTraversal)
	}
}

func TestR2GrantQueueServedInRequestOrder(t *testing.T) {
	sys := newTestSystem(t, 3, 9)
	var order []core.MHID
	opts := Options{Hold: 2, OnEnter: func(mh core.MHID) { order = append(order, mh) }}
	r2, err := NewR2(sys, VariantPlain, opts, 1, nil)
	if err != nil {
		t.Fatalf("NewR2: %v", err)
	}
	// mh0, mh3, mh6 all live in cell 0; request in a fixed order with gaps.
	for i, mh := range []core.MHID{6, 0, 3} {
		mh := mh
		sys.Schedule(sim.Time(i*20), func() {
			if err := r2.Request(mh); err != nil {
				t.Errorf("Request: %v", err)
			}
		})
	}
	sys.Schedule(200, func() {
		if err := r2.Start(); err != nil {
			t.Errorf("Start: %v", err)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []core.MHID{6, 0, 3}
	if len(order) != len(want) {
		t.Fatalf("grant order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("grant order = %v, want %v", order, want)
		}
	}
}

func TestR2MultiTraversalCost(t *testing.T) {
	// Two traversals with no requests must cost exactly 2·M·Cfixed.
	const m = 5
	cfg := core.DefaultConfig(m, 5)
	sys := core.MustNewSystem(cfg)
	r2, err := NewR2(sys, VariantPlain, Options{Hold: 1}, 2, nil)
	if err != nil {
		t.Fatalf("NewR2: %v", err)
	}
	if err := r2.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	got := sys.Meter().CategoryCost(cost.CatAlgorithm, cfg.Params)
	want := 2 * float64(m) * cfg.Params.Fixed
	if got != want {
		t.Errorf("two idle traversals cost %v, want %v", got, want)
	}
}

func TestR2ListHonestMHNotOverRestricted(t *testing.T) {
	// Under R2'' an honest, stationary requester is still served once per
	// traversal across traversals.
	sys := newTestSystem(t, 3, 3)
	mon := &monitor{t: t}
	var r2 *R2
	opts := mon.options(2)
	base := opts.OnExit
	opts.OnExit = func(mh core.MHID) {
		base(mh)
		sys.Schedule(1, func() { _ = r2.Request(mh) })
	}
	var err error
	r2, err = NewR2(sys, VariantList, opts, 4, nil)
	if err != nil {
		t.Fatalf("NewR2: %v", err)
	}
	if err := r2.Request(core.MHID(0)); err != nil {
		t.Fatalf("Request: %v", err)
	}
	sys.Schedule(50, func() {
		if err := r2.Start(); err != nil {
			t.Errorf("Start: %v", err)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// One grant per traversal is available; with request latency it may
	// occasionally miss a traversal, but it must make steady progress.
	if got := r2.Grants(); got < 3 {
		t.Errorf("grants = %d over 4 traversals, want >= 3", got)
	}
}

// TestPropertyR2TokenSafetyUnderChaos: random requests and moves never
// produce two simultaneous critical-section holders, and the token always
// completes its traversals.
func TestPropertyR2TokenSafetyUnderChaos(t *testing.T) {
	check := func(seed uint64, variantRaw, moveRaw uint8) bool {
		const (
			m = 4
			n = 8
		)
		variants := []Variant{VariantPlain, VariantCounter, VariantList}
		variant := variants[int(variantRaw)%len(variants)]
		cfg := core.DefaultConfig(m, n)
		cfg.Seed = seed
		sys, err := core.NewSystem(cfg)
		if err != nil {
			return false
		}
		holders, peak := 0, 0
		opts := Options{
			Hold: 3,
			OnEnter: func(core.MHID) {
				holders++
				if holders > peak {
					peak = holders
				}
			},
			OnExit: func(core.MHID) { holders-- },
		}
		r2, err := NewR2(sys, variant, opts, 3, nil)
		if err != nil {
			return false
		}
		if _, err := workload.NewRequests(sys, workload.RequestConfig{
			Interval:      workload.Span{Min: 20, Max: 150},
			RequestsPerMH: 1,
		}, r2.Request); err != nil {
			return false
		}
		if _, err := workload.NewMobility(sys, workload.MobilityConfig{
			Interval:   workload.Span{Min: 40, Max: 250},
			MovesPerMH: int(moveRaw % 3),
		}); err != nil {
			return false
		}
		sys.Schedule(400, func() { _ = r2.Start() })
		if err := sys.Run(); err != nil {
			return false
		}
		return peak <= 1 && holders == 0 && r2.Traversals() == 3
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
