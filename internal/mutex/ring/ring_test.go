package ring

import (
	"testing"

	"mobiledist/internal/core"
	"mobiledist/internal/cost"
	"mobiledist/internal/sim"
)

type monitor struct {
	t       *testing.T
	holders int
	entries []core.MHID
}

func (m *monitor) options(hold sim.Time) Options {
	return Options{
		Hold: hold,
		OnEnter: func(mh core.MHID) {
			m.holders++
			m.entries = append(m.entries, mh)
			if m.holders > 1 {
				m.t.Errorf("mutual exclusion violated: %d holders when mh%d entered", m.holders, int(mh))
			}
		},
		OnExit: func(mh core.MHID) { m.holders-- },
	}
}

func newTestSystem(t *testing.T, m, n int) *core.System {
	t.Helper()
	sys, err := core.NewSystem(core.DefaultConfig(m, n))
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	return sys
}

func allMHs(n int) []core.MHID {
	ids := make([]core.MHID, n)
	for i := range ids {
		ids[i] = core.MHID(i)
	}
	return ids
}

func TestR1TraversalCostMatchesAnalytic(t *testing.T) {
	const (
		m = 4
		n = 7
	)
	sys := newTestSystem(t, m, n)
	mon := &monitor{t: t}
	r1, err := NewR1(sys, allMHs(n), mon.options(3), false, 1)
	if err != nil {
		t.Fatalf("NewR1: %v", err)
	}
	if err := r1.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := r1.Traversals(); got != 1 {
		t.Fatalf("traversals = %d, want 1", got)
	}
	p := sys.Config().Params
	got := sys.Meter().CategoryCost(cost.CatAlgorithm, p)
	want := cost.AnalyticR1PerTraversal(n, p)
	if got != want {
		t.Errorf("R1 traversal cost = %v, want analytic %v\n%s", got, want, sys.Meter().Report(p))
	}
}

func TestR1CostIndependentOfRequests(t *testing.T) {
	const (
		m = 3
		n = 6
	)
	costFor := func(requests int) float64 {
		sys := newTestSystem(t, m, n)
		mon := &monitor{t: t}
		r1, err := NewR1(sys, allMHs(n), mon.options(2), false, 1)
		if err != nil {
			t.Fatalf("NewR1: %v", err)
		}
		for i := 0; i < requests; i++ {
			if err := r1.Request(core.MHID(i)); err != nil {
				t.Fatalf("Request: %v", err)
			}
		}
		if err := r1.Start(); err != nil {
			t.Fatalf("Start: %v", err)
		}
		if err := sys.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		if got := r1.Grants(); got != int64(requests) {
			t.Fatalf("grants = %d, want %d", got, requests)
		}
		return sys.Meter().CategoryCost(cost.CatAlgorithm, sys.Config().Params)
	}
	if c0, c4 := costFor(0), costFor(4); c0 != c4 {
		t.Errorf("R1 traversal cost varies with requests: %v vs %v", c0, c4)
	}
}

func TestR2TraversalCostMatchesAnalytic(t *testing.T) {
	const (
		m = 5
		n = 11
		k = 4
	)
	sys := newTestSystem(t, m, n)
	mon := &monitor{t: t}
	r2, err := NewR2(sys, VariantPlain, mon.options(3), 1, nil)
	if err != nil {
		t.Fatalf("NewR2: %v", err)
	}
	for i := 0; i < k; i++ {
		if err := r2.Request(core.MHID(i)); err != nil {
			t.Fatalf("Request: %v", err)
		}
	}
	// Let the requests reach their MSSs before the token starts.
	sys.Schedule(100, func() {
		if err := r2.Start(); err != nil {
			t.Errorf("Start: %v", err)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := r2.Grants(); got != k {
		t.Fatalf("grants = %d, want %d", got, k)
	}
	p := sys.Config().Params
	got := sys.Meter().CategoryCost(cost.CatAlgorithm, p)
	want := cost.AnalyticR2PerTraversal(m, k, p)
	if got != want {
		t.Errorf("R2 traversal cost = %v, want analytic %v\n%s", got, want, sys.Meter().Report(p))
	}
}

func TestR2CounterLimitsAccessesPerTraversal(t *testing.T) {
	const (
		m = 4
		n = 4
	)
	// mh0 chases the token: after each access it re-requests immediately.
	// Under R2 it can be granted several times per traversal; under R2' at
	// most once.
	run := func(variant Variant) []int64 {
		sys := newTestSystem(t, m, n)
		mon := &monitor{t: t}
		opts := mon.options(2)
		var r2 *R2
		base := opts.OnExit
		opts.OnExit = func(mh core.MHID) {
			base(mh)
			// Move to the ring successor of the current cell and request
			// again, racing the token.
			at, status := sys.Where(mh)
			if status != core.StatusConnected {
				return
			}
			next := core.MSSID((int(at) + 1) % m)
			if err := sys.Move(mh, next); err != nil {
				t.Errorf("Move: %v", err)
			}
			sys.Schedule(1, func() {
				if err := r2.Request(mh); err != nil {
					t.Errorf("re-Request: %v", err)
				}
			})
		}
		var err error
		r2, err = NewR2(sys, variant, opts, 6, nil)
		if err != nil {
			t.Fatalf("NewR2: %v", err)
		}
		if err := r2.Request(core.MHID(0)); err != nil {
			t.Fatalf("Request: %v", err)
		}
		sys.Schedule(50, func() {
			if err := r2.Start(); err != nil {
				t.Errorf("Start: %v", err)
			}
		})
		if err := sys.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return r2.GrantsPerTraversal()
	}

	plain := run(VariantPlain)
	counter := run(VariantCounter)
	var plainMax, counterMax int64
	for _, g := range plain {
		if g > plainMax {
			plainMax = g
		}
	}
	for _, g := range counter {
		if g > counterMax {
			counterMax = g
		}
	}
	if counterMax > 1 {
		t.Errorf("R2' granted %d accesses to one MH in a traversal, want <= 1 (per-traversal: %v)", counterMax, counter)
	}
	if plainMax <= 1 {
		t.Logf("note: R2 did not exhibit multi-access in this trace (per-traversal: %v)", plain)
	}
}

func TestR2ListBlocksMaliciousMH(t *testing.T) {
	const (
		m = 4
		n = 4
	)
	run := func(variant Variant) []int64 {
		sys := newTestSystem(t, m, n)
		mon := &monitor{t: t}
		opts := mon.options(2)
		var r2 *R2
		base := opts.OnExit
		opts.OnExit = func(mh core.MHID) {
			base(mh)
			at, status := sys.Where(mh)
			if status != core.StatusConnected {
				return
			}
			next := core.MSSID((int(at) + 1) % m)
			if err := sys.Move(mh, next); err != nil {
				t.Errorf("Move: %v", err)
			}
			sys.Schedule(1, func() {
				if err := r2.Request(mh); err != nil {
					t.Errorf("re-Request: %v", err)
				}
			})
		}
		lie := func(mh core.MHID) bool { return mh == 0 }
		var err error
		r2, err = NewR2(sys, variant, opts, 6, lie)
		if err != nil {
			t.Fatalf("NewR2: %v", err)
		}
		if err := r2.Request(core.MHID(0)); err != nil {
			t.Fatalf("Request: %v", err)
		}
		sys.Schedule(50, func() {
			if err := r2.Start(); err != nil {
				t.Errorf("Start: %v", err)
			}
		})
		if err := sys.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return r2.GrantsPerTraversal()
	}

	counter := run(VariantCounter)
	list := run(VariantList)
	var counterMax, listMax int64
	for _, g := range counter {
		if g > counterMax {
			counterMax = g
		}
	}
	for _, g := range list {
		if g > listMax {
			listMax = g
		}
	}
	if listMax > 1 {
		t.Errorf("R2'' granted a lying MH %d accesses in one traversal, want <= 1 (%v)", listMax, list)
	}
	if counterMax <= 1 {
		t.Logf("note: lying MH did not exceed one access under R2' in this trace (%v)", counter)
	}
}

func TestR2DisconnectedRequesterIsSkipped(t *testing.T) {
	sys := newTestSystem(t, 3, 6)
	mon := &monitor{t: t}
	r2, err := NewR2(sys, VariantPlain, mon.options(2), 1, nil)
	if err != nil {
		t.Fatalf("NewR2: %v", err)
	}
	// mh0 and mh3 (both in cell 0) request; mh0 disconnects before the
	// token starts. mh3 must still be granted.
	if err := r2.Request(core.MHID(0)); err != nil {
		t.Fatalf("Request: %v", err)
	}
	if err := r2.Request(core.MHID(3)); err != nil {
		t.Fatalf("Request: %v", err)
	}
	sys.Schedule(20, func() {
		if err := sys.Disconnect(core.MHID(0)); err != nil {
			t.Errorf("Disconnect: %v", err)
		}
	})
	sys.Schedule(100, func() {
		if err := r2.Start(); err != nil {
			t.Errorf("Start: %v", err)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := r2.Grants(); got != 1 {
		t.Errorf("grants = %d, want 1", got)
	}
	if len(mon.entries) != 1 || mon.entries[0] != 3 {
		t.Errorf("entries = %v, want [3]", mon.entries)
	}
	if got := r2.Traversals(); got != 1 {
		t.Errorf("traversals = %d, want 1 (ring must not stall)", got)
	}
}

func TestR1StallsOnDisconnectWithoutRepair(t *testing.T) {
	sys := newTestSystem(t, 3, 5)
	mon := &monitor{t: t}
	r1, err := NewR1(sys, allMHs(5), mon.options(2), false, 3)
	if err != nil {
		t.Fatalf("NewR1: %v", err)
	}
	if err := sys.Disconnect(core.MHID(2)); err != nil {
		t.Fatalf("Disconnect: %v", err)
	}
	sys.Schedule(50, func() {
		if err := r1.Start(); err != nil {
			t.Errorf("Start: %v", err)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !r1.Stalled() {
		t.Error("ring did not stall on disconnected member")
	}
	if got := r1.Traversals(); got != 0 {
		t.Errorf("traversals = %d, want 0", got)
	}
}

func TestR1RepairSkipsDisconnectedMember(t *testing.T) {
	sys := newTestSystem(t, 3, 5)
	mon := &monitor{t: t}
	r1, err := NewR1(sys, allMHs(5), mon.options(2), true, 2)
	if err != nil {
		t.Fatalf("NewR1: %v", err)
	}
	if err := sys.Disconnect(core.MHID(2)); err != nil {
		t.Fatalf("Disconnect: %v", err)
	}
	if err := r1.Request(core.MHID(4)); err != nil {
		t.Fatalf("Request: %v", err)
	}
	sys.Schedule(50, func() {
		if err := r1.Start(); err != nil {
			t.Errorf("Start: %v", err)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if r1.Stalled() {
		t.Error("ring stalled despite repair")
	}
	if got := r1.Traversals(); got != 2 {
		t.Errorf("traversals = %d, want 2", got)
	}
	if got := r1.Grants(); got != 1 {
		t.Errorf("grants = %d, want 1", got)
	}
}

func TestR1InterruptsDozingMHs(t *testing.T) {
	sys := newTestSystem(t, 3, 6)
	mon := &monitor{t: t}
	r1, err := NewR1(sys, allMHs(6), mon.options(1), false, 1)
	if err != nil {
		t.Fatalf("NewR1: %v", err)
	}
	for i := 1; i < 6; i++ {
		sys.SetDoze(core.MHID(i), true)
	}
	if err := r1.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Every dozing MH is interrupted by the token even with no requests.
	if got := sys.Stats().DozeInterruptions; got != 5 {
		t.Errorf("doze interruptions = %d, want 5", got)
	}
}

func TestR2DoesNotInterruptDozingNonRequesters(t *testing.T) {
	sys := newTestSystem(t, 3, 6)
	mon := &monitor{t: t}
	r2, err := NewR2(sys, VariantCounter, mon.options(1), 1, nil)
	if err != nil {
		t.Fatalf("NewR2: %v", err)
	}
	for i := 1; i < 6; i++ {
		sys.SetDoze(core.MHID(i), true)
	}
	// Only mh2 (dozing) requested; only it may be interrupted.
	if err := r2.Request(core.MHID(2)); err != nil {
		t.Fatalf("Request: %v", err)
	}
	sys.Schedule(50, func() {
		if err := r2.Start(); err != nil {
			t.Errorf("Start: %v", err)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	stats := sys.Stats()
	if stats.DozeInterruptions != 1 || stats.DozeInterruptionsByMH[core.MHID(2)] != 1 {
		t.Errorf("doze interruptions = %d (by mh2: %d), want exactly 1 at mh2",
			stats.DozeInterruptions, stats.DozeInterruptionsByMH[core.MHID(2)])
	}
}

func TestR2MovingRequesterIsFoundBySearch(t *testing.T) {
	sys := newTestSystem(t, 4, 8)
	mon := &monitor{t: t}
	r2, err := NewR2(sys, VariantCounter, mon.options(2), 1, nil)
	if err != nil {
		t.Fatalf("NewR2: %v", err)
	}
	if err := r2.Request(core.MHID(0)); err != nil {
		t.Fatalf("Request: %v", err)
	}
	// Move the requester far from its request's MSS before the token runs.
	sys.Schedule(10, func() {
		if err := sys.Move(core.MHID(0), core.MSSID(3)); err != nil {
			t.Errorf("Move: %v", err)
		}
	})
	sys.Schedule(200, func() {
		if err := r2.Start(); err != nil {
			t.Errorf("Start: %v", err)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := r2.Grants(); got != 1 {
		t.Errorf("grants = %d, want 1", got)
	}
}

func TestR2TokenReturnAfterReconnect(t *testing.T) {
	sys := newTestSystem(t, 3, 4)
	mon := &monitor{t: t}
	opts := mon.options(30)
	base := opts.OnEnter
	opts.OnEnter = func(mh core.MHID) {
		base(mh)
		// Disconnect while holding the token; reconnect later.
		sys.Schedule(5, func() {
			if err := sys.Disconnect(mh); err != nil {
				t.Errorf("Disconnect: %v", err)
			}
		})
		sys.Schedule(300, func() {
			if err := sys.Reconnect(mh, core.MSSID(1), true); err != nil {
				t.Errorf("Reconnect: %v", err)
			}
		})
	}
	r2, err := NewR2(sys, VariantPlain, opts, 1, nil)
	if err != nil {
		t.Fatalf("NewR2: %v", err)
	}
	if err := r2.Request(core.MHID(0)); err != nil {
		t.Fatalf("Request: %v", err)
	}
	sys.Schedule(50, func() {
		if err := r2.Start(); err != nil {
			t.Errorf("Start: %v", err)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := r2.Grants(); got != 1 {
		t.Errorf("grants = %d, want 1", got)
	}
	if got := r2.Traversals(); got != 1 {
		t.Errorf("traversals = %d, want 1 (token must come back)", got)
	}
}
