package ring

import (
	"fmt"

	"mobiledist/internal/core"
	"mobiledist/internal/cost"
	"mobiledist/internal/sim"
)

// Variant selects among the paper's R2 family.
type Variant int

// R2 variants.
const (
	// VariantPlain is R2: every pending request moves to the grant queue on
	// token arrival; a fast-moving MH may be served up to M times in one
	// traversal (at most N×M grants per traversal system-wide).
	VariantPlain Variant = iota + 1
	// VariantCounter is R2′: the token carries token-val, incremented per
	// completed traversal; a request is granted only if the requester's
	// reported access-count is below token-val, bounding each MH to one
	// access per traversal — if it is honest.
	VariantCounter
	// VariantList is R2″: the token carries a list of (MSS, MH) pairs;
	// arriving at MSS M it discards pairs tagged M, and a request from h is
	// granted only if h appears in no pair. Robust against a malicious MH
	// under-reporting its access count.
	VariantList
)

// String returns the variant name as used in the paper.
func (v Variant) String() string {
	switch v {
	case VariantPlain:
		return "R2"
	case VariantCounter:
		return "R2'"
	case VariantList:
		return "R2''"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

type tokenPair struct {
	MSS core.MSSID
	MH  core.MHID
}

// r2Token circulates among the MSSs.
type r2Token struct {
	Val  int64
	List []tokenPair
	// Gen is the recovery generation (see r2recovery.go). Tokens below a
	// station's generation floor are stale and dropped. Always 0 when
	// Options.Recovery is nil.
	Gen int64
}

// Protocol messages of the R2 family.
type (
	// r2Request is a MH's wireless request to its local MSS, carrying its
	// reported access count (VariantCounter only consults it).
	r2Request struct {
		AccessCount int64
	}

	// r2Grant hands the token to a MH. Owner awaits its return.
	r2Grant struct {
		Owner core.MSSID
		Val   int64
	}

	// r2ReturnUp is the MH returning the token to its current local MSS,
	// to be relayed to Owner.
	r2ReturnUp struct {
		Owner core.MSSID
		MH    core.MHID
	}

	// r2ReturnRelay carries the returned token to the owning MSS over the
	// fixed network.
	r2ReturnRelay struct {
		MH core.MHID
	}
)

type r2Req struct {
	MH          core.MHID
	AccessCount int64
}

type r2MSSState struct {
	requestQ []r2Req
	grantQ   []r2Req
	holding  bool
	token    r2Token
	// servicing is the MH currently holding the token out of this MSS.
	servicing   core.MHID
	isServicing bool

	// Recovery state (r2recovery.go). gen is the station's generation floor
	// — the only field NoteRestart preserves (stable storage). lastSeen and
	// lastVal record the station's freshest token sighting for probe rounds.
	gen      int64
	lastSeen sim.Time
	lastVal  int64
}

type r2MHState struct {
	accessCount int64
	// owesReturn remembers a token return that could not be sent because
	// the MH disconnected while in the critical section; it is sent upon
	// reconnection.
	owesReturn *r2ReturnUp
}

// R2 is the paper's restructured token-ring mutual exclusion: the ring is
// formed by the M support stations, and mobile hosts interact only with
// their local MSS (plus one searched token delivery per grant).
type R2 struct {
	ctx     core.Context
	opts    Options
	variant Variant
	mss     []r2MSSState
	mhs     []r2MHState

	// lie, when non-nil, makes the selected MHs report access count 0 on
	// every request — the paper's "malicious" MH for motivating R2″.
	lie func(core.MHID) bool

	grants       int64
	traversals   int64
	perTraversal []int64 // grants in each completed traversal
	inTraversal  int64
	maxRounds    int64
	started      bool
	parked       bool

	// Recovery counters and the monitor's current probe-round state
	// (r2recovery.go). Round state is scalar, not per-station: only one
	// monitor exists at a time and a fresh round supersedes a stale one via
	// the nonce.
	regens      int64
	staleTokens int64
	monNonce    int64
	monPending  int
	monSawToken bool
	monMaxSeen  sim.Time
	monMaxGen   int64
	monMaxVal   int64
}

var (
	_ core.Algorithm              = (*R2)(nil)
	_ core.MSSHandler             = (*R2)(nil)
	_ core.MHHandler              = (*R2)(nil)
	_ core.DeliveryFailureHandler = (*R2)(nil)
	_ core.MobilityObserver       = (*R2)(nil)
)

// NewR2 registers an R2-family instance. The ring is MSS 0 → 1 → … → M−1 →
// 0. maxTraversals parks the token after that many completed traversals so
// simulations quiesce; 0 circulates forever. lie selects malicious MHs (nil
// for none).
func NewR2(reg core.Registrar, variant Variant, opts Options, maxTraversals int64, lie func(core.MHID) bool) (*R2, error) {
	switch variant {
	case VariantPlain, VariantCounter, VariantList:
	default:
		return nil, fmt.Errorf("ring: unknown R2 variant %d", int(variant))
	}
	a := &R2{opts: opts, variant: variant, maxRounds: maxTraversals, lie: lie}
	a.ctx = reg.Register(a)
	a.mss = make([]r2MSSState, a.ctx.M())
	a.mhs = make([]r2MHState, a.ctx.N())
	return a, nil
}

// Name implements core.Algorithm.
func (a *R2) Name() string { return "mutex/" + a.variant.String() }

// Variant reports which member of the R2 family this instance runs.
func (a *R2) Variant() Variant { return a.variant }

// Grants reports critical-section entries granted.
func (a *R2) Grants() int64 { return a.grants }

// Traversals reports completed ring traversals.
func (a *R2) Traversals() int64 { return a.traversals }

// GrantsPerTraversal returns the grant count of each completed traversal.
func (a *R2) GrantsPerTraversal() []int64 {
	return append([]int64(nil), a.perTraversal...)
}

// Parked reports whether the token has stopped after maxTraversals.
func (a *R2) Parked() bool { return a.parked }

// Start injects the token at MSS 0. It must be called exactly once.
func (a *R2) Start() error {
	if a.started {
		return fmt.Errorf("ring: %s already started", a.variant)
	}
	a.started = true
	a.armProbes()
	a.tokenArrives(0, r2Token{})
	return nil
}

// Request sends a token request from mh to its current local MSS. Requests
// are queued there and served on the token's next arrival. A MH may have
// requests pending at several MSSs as it moves — the interplay the paper
// uses to motivate R2′.
func (a *R2) Request(mh core.MHID) error {
	reported := a.mhs[mh].accessCount
	if a.lie != nil && a.lie(mh) {
		reported = 0
	}
	if err := a.ctx.SendFromMH(mh, r2Request{AccessCount: reported}, cost.CatAlgorithm); err != nil {
		return fmt.Errorf("ring: %s request: %w", a.variant, err)
	}
	a.ctx.NoteCSRequest(mh)
	return nil
}

// HandleMSS implements core.MSSHandler.
func (a *R2) HandleMSS(ctx core.Context, at core.MSSID, from core.From, msg core.Message) {
	st := &a.mss[at]
	switch m := msg.(type) {
	case r2Request:
		if !from.IsMH {
			panic("ring: r2Request must come from a MH")
		}
		st.requestQ = append(st.requestQ, r2Req{MH: from.MH, AccessCount: m.AccessCount})
	case r2Token:
		a.tokenArrives(at, m)
	case r2ReturnUp:
		if !from.IsMH {
			panic("ring: r2ReturnUp must come from a MH")
		}
		// Relay the token back to the owning MSS over the fixed network;
		// charged unconditionally (Cwireless + Cfixed in the paper).
		ctx.SendFixed(at, m.Owner, r2ReturnRelay{MH: m.MH}, cost.CatAlgorithm)
	case r2Probe:
		ctx.SendFixed(at, m.Origin, r2ProbeReply{
			Nonce:    m.Nonce,
			HasToken: st.holding || st.isServicing,
			LastSeen: st.lastSeen,
			Gen:      st.gen,
			Val:      st.lastVal,
		}, cost.CatControl)
	case r2ProbeReply:
		a.probeReply(at, m)
	case r2NewGen:
		if m.Gen > st.gen {
			st.gen = m.Gen
		}
	case r2ReturnRelay:
		if !st.isServicing || st.servicing != m.MH {
			if a.opts.Recovery != nil {
				// The station crashed and restarted while this grant was
				// out: its servicing state is gone, and the returning token
				// belongs to a superseded generation. Drop it; if it was
				// somehow the live token, the probe timeout regenerates it.
				a.staleTokens++
				return
			}
			panic(fmt.Sprintf("ring: mss%d got token return from mh%d while not servicing it", int(at), int(m.MH)))
		}
		st.isServicing = false
		if a.variant == VariantList {
			st.token.List = append(st.token.List, tokenPair{MSS: at, MH: m.MH})
		}
		a.serviceNext(at)
	default:
		panic(fmt.Sprintf("ring: %s MSS received unexpected message %T", a.variant, msg))
	}
}

// HandleMH implements core.MHHandler: the MH holds the token for the
// critical section, records the traversal counter, and returns it.
func (a *R2) HandleMH(ctx core.Context, at core.MHID, msg core.Message) {
	m, ok := msg.(r2Grant)
	if !ok {
		panic(fmt.Sprintf("ring: %s MH received unexpected message %T", a.variant, msg))
	}
	a.grants++
	a.inTraversal++
	a.mhs[at].accessCount = m.Val
	ctx.NoteCSEnter(at)
	if a.opts.OnEnter != nil {
		a.opts.OnEnter(at)
	}
	ctx.After(a.opts.Hold, func() {
		ctx.NoteCSExit(at)
		if a.opts.OnExit != nil {
			a.opts.OnExit(at)
		}
		up := r2ReturnUp{Owner: m.Owner, MH: at}
		if err := ctx.SendFromMH(at, up, cost.CatAlgorithm); err != nil {
			// Disconnected while holding the token: it must reconnect to
			// return it; the ring waits (Section 3.1.2 keeps this case out
			// of scope — we model the honest-eventual-return behaviour).
			a.mhs[at].owesReturn = &up
		}
	})
}

// OnDeliveryFailure implements core.DeliveryFailureHandler: a granted MH
// turned out to be disconnected, so the local MSS of the cell where it
// disconnected "returns the token back to the sending MSS" — modelled as
// the failure notification — and service continues.
func (a *R2) OnDeliveryFailure(ctx core.Context, at core.MSSID, mh core.MHID, msg core.Message, _ core.FailReason) {
	if _, ok := msg.(r2Grant); !ok {
		return
	}
	st := &a.mss[at]
	if !st.isServicing || st.servicing != mh {
		if a.opts.Recovery != nil {
			// Servicing state was wiped by a crash/restart; the failed grant
			// belongs to a superseded token. Nothing left to resume.
			return
		}
		panic(fmt.Sprintf("ring: mss%d got grant failure for mh%d while not servicing it", int(at), int(mh)))
	}
	st.isServicing = false
	a.serviceNext(at)
}

// OnJoin implements core.MobilityObserver: a reconnecting MH that owes a
// token return sends it from its new cell.
func (a *R2) OnJoin(ctx core.Context, mss core.MSSID, mh core.MHID, prev core.MSSID, wasDisconnected bool) {
	if !wasDisconnected {
		return
	}
	st := &a.mhs[mh]
	if st.owesReturn == nil {
		return
	}
	up := *st.owesReturn
	st.owesReturn = nil
	if err := ctx.SendFromMH(mh, up, cost.CatAlgorithm); err != nil {
		st.owesReturn = &up
	}
}

// OnLeave implements core.MobilityObserver.
func (a *R2) OnLeave(core.Context, core.MSSID, core.MHID) {}

// OnDisconnect implements core.MobilityObserver.
func (a *R2) OnDisconnect(core.Context, core.MSSID, core.MHID) {}

// tokenArrives processes a token arrival at MSS at.
func (a *R2) tokenArrives(at core.MSSID, tok r2Token) {
	st := &a.mss[at]
	if tok.Gen < st.gen {
		// A token from before the last regeneration resurfaced (e.g. it was
		// in flight into a station that crashed and later restarted). The
		// generation floor retires it.
		a.staleTokens++
		return
	}
	a.checkSingleToken(at, tok)
	st.gen = tok.Gen
	st.lastSeen = a.ctx.Now()
	if at == 0 {
		// Arriving back at the ring origin completes a traversal.
		tok.Val++
		if tok.Val > 1 {
			a.traversals++
			a.perTraversal = append(a.perTraversal, a.inTraversal)
			a.inTraversal = 0
			if a.maxRounds > 0 && a.traversals >= a.maxRounds {
				a.parked = true
				return
			}
		}
	}
	st.holding = true
	st.token = tok
	st.lastVal = tok.Val
	if a.variant == VariantList {
		// Discard this MSS's pairs: h's next request here is serviceable
		// only after the token has visited every other MSS.
		kept := st.token.List[:0]
		for _, p := range st.token.List {
			if p.MSS != at {
				kept = append(kept, p)
			}
		}
		st.token.List = kept
	}

	// Move eligible pending requests to the grant queue.
	remaining := st.requestQ[:0]
	for _, r := range st.requestQ {
		if a.eligible(at, r) {
			st.grantQ = append(st.grantQ, r)
		} else {
			remaining = append(remaining, r)
		}
	}
	st.requestQ = remaining
	a.serviceNext(at)
}

// eligible applies the variant's admission rule.
func (a *R2) eligible(at core.MSSID, r r2Req) bool {
	st := &a.mss[at]
	switch a.variant {
	case VariantPlain:
		return true
	case VariantCounter:
		return r.AccessCount < st.token.Val
	case VariantList:
		for _, p := range st.token.List {
			if p.MH == r.MH {
				return false
			}
		}
		return true
	default:
		panic(fmt.Sprintf("ring: unknown variant %d", int(a.variant)))
	}
}

// serviceNext grants the next queued request or passes the token onward.
func (a *R2) serviceNext(at core.MSSID) {
	st := &a.mss[at]
	if !st.holding {
		panic(fmt.Sprintf("ring: mss%d servicing without token", int(at)))
	}
	if len(st.grantQ) > 0 {
		next := st.grantQ[0]
		st.grantQ = st.grantQ[1:]
		st.servicing = next.MH
		st.isServicing = true
		// Token out to the MH, which may have moved: search + wireless. The
		// from operand is -1: the passer is a station, not a ring member.
		a.ctx.NoteTokenPass(core.MHID(-1), next.MH)
		a.ctx.SendToMH(at, next.MH, r2Grant{Owner: at, Val: st.token.Val}, cost.CatAlgorithm)
		return
	}
	// Grant queue drained: transfer the token to the ring successor —
	// skipping stations the failure detector currently suspects, so the
	// token is not knowingly handed into a dead cell.
	st.holding = false
	tok := st.token
	st.token = r2Token{}
	a.ctx.SendFixed(at, a.nextLive(at), tok, cost.CatAlgorithm)
}
