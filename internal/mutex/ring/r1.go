// Package ring implements token-based distributed mutual exclusion on a
// unidirectional logical ring after Le Lann [12], in the variants the paper
// analyses (Section 3.1.2):
//
//   - R1 arranges the N mobile hosts themselves in the ring. Every token
//     hop is a MH-to-MH message (2·Cwireless + Csearch), the traversal cost
//     is independent of how many requests it satisfies, every MH is
//     interrupted by the token whether it wants it or not, and a single
//     disconnected MH stalls the ring.
//   - R2 arranges the M support stations in the ring. Each MSS queues
//     requests from local MHs; on token arrival pending requests move to a
//     grant queue and are serviced one by one (token out to the MH with a
//     search, token back through its current MSS).
//   - R2′ adds the token-val counter so each MH accesses the token at most
//     once per traversal.
//   - R2″ replaces the MH-reported counter with a token-carried list of
//     (MSS, MH) pairs, defeating a "malicious" MH that under-reports its
//     access count.
package ring

import (
	"fmt"

	"mobiledist/internal/core"
	"mobiledist/internal/cost"
	"mobiledist/internal/sim"
)

// Options configure critical-section behaviour for both R1 and R2.
type Options struct {
	// Hold is how long a MH keeps the token inside the critical section.
	Hold sim.Time
	// OnEnter fires when mh enters the critical section.
	OnEnter func(mh core.MHID)
	// OnExit fires when mh leaves the critical section.
	OnExit func(mh core.MHID)
	// Recovery, when non-nil, enables token-loss detection and regeneration
	// for the R2 family (see TokenRecovery). R1 ignores it: the paper's
	// remedy for R1 is ring repair, not token election.
	Recovery *TokenRecovery
}

// r1Token is the circulating token of algorithm R1.
type r1Token struct {
	Traversals int64
}

// R1 is Le Lann's algorithm run directly on the mobile hosts.
type R1 struct {
	ctx   core.Context
	opts  Options
	ring  []core.MHID
	index map[core.MHID]int

	// RepairSkip, when set at construction, reroutes the token around a
	// disconnected MH instead of stalling the ring (the "re-establish the
	// logical ring" remedy the paper mentions R1 needs).
	repairSkip bool

	pending    []bool
	traversals int64
	grants     int64
	hops       int64
	stalled    bool
	started    bool
	maxRounds  int64
}

var (
	_ core.Algorithm              = (*R1)(nil)
	_ core.MHHandler              = (*R1)(nil)
	_ core.DeliveryFailureHandler = (*R1)(nil)
)

// NewR1 registers an R1 instance whose ring visits the given MHs in order.
// maxTraversals bounds token circulation (the token parks after that many
// full traversals) so simulations quiesce; 0 means circulate forever.
func NewR1(reg core.Registrar, ringOrder []core.MHID, opts Options, repairSkip bool, maxTraversals int64) (*R1, error) {
	if len(ringOrder) == 0 {
		return nil, fmt.Errorf("ring: R1 needs at least one participant")
	}
	a := &R1{
		opts:       opts,
		ring:       append([]core.MHID(nil), ringOrder...),
		index:      make(map[core.MHID]int, len(ringOrder)),
		repairSkip: repairSkip,
		pending:    make([]bool, len(ringOrder)),
		maxRounds:  maxTraversals,
	}
	for i, mh := range a.ring {
		if _, dup := a.index[mh]; dup {
			return nil, fmt.Errorf("ring: duplicate participant mh%d", int(mh))
		}
		a.index[mh] = i
	}
	a.ctx = reg.Register(a)
	return a, nil
}

// Name implements core.Algorithm.
func (a *R1) Name() string { return "mutex/R1" }

// Traversals reports completed ring traversals.
func (a *R1) Traversals() int64 { return a.traversals }

// Grants reports critical-section entries granted.
func (a *R1) Grants() int64 { return a.grants }

// Hops reports token transmissions between ring members.
func (a *R1) Hops() int64 { return a.hops }

// Stalled reports whether the token was lost to a disconnected MH without
// repair.
func (a *R1) Stalled() bool { return a.stalled }

// Start injects the token at the first ring member. It must be called
// exactly once.
func (a *R1) Start() error {
	if a.started {
		return fmt.Errorf("ring: R1 already started")
	}
	a.started = true
	// The initial holder receives the token by fiat, without a transmission.
	a.receive(0, r1Token{}, true)
	return nil
}

// Request records that mh wants the critical section on the token's next
// visit.
func (a *R1) Request(mh core.MHID) error {
	slot, ok := a.index[mh]
	if !ok {
		return fmt.Errorf("ring: mh%d is not an R1 participant", int(mh))
	}
	a.pending[slot] = true
	a.ctx.NoteCSRequest(mh)
	return nil
}

// HandleMH implements core.MHHandler.
func (a *R1) HandleMH(_ core.Context, at core.MHID, msg core.Message) {
	tok, ok := msg.(r1Token)
	if !ok {
		panic(fmt.Sprintf("ring: R1 received unexpected message %T", msg))
	}
	slot, ok := a.index[at]
	if !ok {
		panic(fmt.Sprintf("ring: R1 token delivered to non-participant mh%d", int(at)))
	}
	a.receive(slot, tok, false)
}

// OnDeliveryFailure implements core.DeliveryFailureHandler: with repair
// enabled, the token skips the disconnected member; otherwise the ring is
// stalled, the paper's vulnerability.
func (a *R1) OnDeliveryFailure(ctx core.Context, at core.MSSID, mh core.MHID, msg core.Message, _ core.FailReason) {
	tok, ok := msg.(r1Token)
	if !ok {
		return
	}
	if !a.repairSkip {
		a.stalled = true
		return
	}
	slot, ok := a.index[mh]
	if !ok {
		return
	}
	next := (slot + 1) % len(a.ring)
	a.hops++
	ctx.SendToMH(at, a.ring[next], tok, cost.CatAlgorithm)
}

// receive processes a token arrival at the ring member in slot. injected
// marks the initial placement, which does not complete a traversal.
func (a *R1) receive(slot int, tok r1Token, injected bool) {
	if slot == 0 && !injected {
		tok.Traversals++
		a.traversals = tok.Traversals
		if a.maxRounds > 0 && tok.Traversals >= a.maxRounds {
			return // park the token; the simulation can quiesce
		}
	}
	mh := a.ring[slot]
	if a.pending[slot] {
		a.pending[slot] = false
		a.grants++
		a.ctx.NoteCSEnter(mh)
		if a.opts.OnEnter != nil {
			a.opts.OnEnter(mh)
		}
		a.ctx.After(a.opts.Hold, func() {
			a.ctx.NoteCSExit(mh)
			if a.opts.OnExit != nil {
				a.opts.OnExit(mh)
			}
			a.forward(slot, tok)
		})
		return
	}
	a.forward(slot, tok)
}

func (a *R1) forward(slot int, tok r1Token) {
	next := (slot + 1) % len(a.ring)
	a.hops++
	a.ctx.NoteTokenPass(a.ring[slot], a.ring[next])
	if err := a.ctx.SendMHToMH(a.ring[slot], a.ring[next], tok, cost.CatAlgorithm); err != nil {
		// The holder itself disconnected with the token: the ring stalls.
		a.stalled = true
	}
}
