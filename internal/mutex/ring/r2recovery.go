package ring

// Token-loss detection and regeneration for the R2 family.
//
// The paper notes that token-based schemes must cope with token loss; on the
// two-tier model the interesting loss mode is an MSS crash swallowing the
// token (held, or in flight on a wired hop into the crashed station). This
// file adds a recovery sublayer that runs entirely on the fixed network:
//
//   - Every token carries a generation number Gen. Each MSS remembers the
//     highest generation it has observed; a token arriving with a lower
//     generation is stale (it survived a crash the ring has already recovered
//     from) and is dropped, counted in StaleTokensDropped. Generations live
//     in the station's stable storage: NoteRestart wipes volatile state but
//     keeps gen, so a restarted station can never resurrect a superseded
//     token.
//
//   - Every station runs a probe timer, but only the monitor — the
//     lowest-numbered station the failure detector does not currently
//     suspect — acts on it. Each round the monitor asks every non-suspected
//     station whether it holds the token and when it last saw it
//     (r2Probe/r2ProbeReply). If a complete round reports no live holder and
//     the newest sighting is older than Timeout, the token is declared lost.
//
//   - Regeneration: the monitor increments the generation past the highest
//     any live station has observed, announces it to the live stations
//     (r2NewGen, so all of them raise their stale-token floor before the old
//     token could possibly reappear via a restarted station), counts the
//     event through Context.NoteTokenRegeneration, and injects the
//     replacement token at itself with the highest token-val any live
//     station observed — so R2′/R2″ admission state keeps advancing
//     monotonically and no MH gets a replayed traversal.
//
// Exactly-one-token argument: only the monitor of a round regenerates, a
// round concludes only when every non-suspected station has replied, and the
// failure detector is assumed accurate-after-lag (an injector-backed oracle
// in the conformance suite): a station it suspects is really down. Hence at
// most one regeneration per loss; if the detector were wrong and the old
// token still circulated, the generation floor retires whichever token is
// older, and tokenArrives panics if two stations ever hold live tokens of
// the same or newer generation ("counted, never two").
//
// Scope: the protocol recovers the token, not grants in flight. A station
// that crashes mid-grant (its MH holding the token out) is outside the
// conformance scenarios; the paper keeps the analogous case out of scope for
// R2 as well (Section 3.1.2).

import (
	"fmt"

	"mobiledist/internal/core"
	"mobiledist/internal/cost"
	"mobiledist/internal/sim"
)

// TokenRecovery configures token-loss detection for the R2 family (set it as
// Options.Recovery). All times are in ticks of virtual time.
type TokenRecovery struct {
	// ProbeEvery is the period of each station's probe timer. The monitor
	// starts a probe round on every tick; other stations keep the timer
	// armed so monitorship can fail over if the current monitor crashes.
	ProbeEvery sim.Time
	// Timeout declares the token lost when no live station holds it and the
	// newest sighting any live station reports is older than this. It must
	// comfortably exceed a full ring traversal including grant service, or
	// a slow-but-alive token will be duplicated.
	Timeout sim.Time
	// Suspect is the failure-detector oracle: whether station s is suspected
	// crashed at time t. The conformance suite backs it with the fault
	// injector's DownSince plus a suspicion lag. It must be accurate — a
	// suspected station is really down — for the single-token guarantee.
	// Nil means nothing is ever suspected (and nothing is ever regenerated:
	// without crashes the token cannot be lost).
	Suspect func(s core.MSSID, t sim.Time) bool
}

// Recovery protocol messages (fixed network only, cost.CatControl: recovery
// is model-level plumbing, not the algorithm traffic the paper prices).
type (
	// r2Probe asks a station for its view of the token.
	r2Probe struct {
		Origin core.MSSID
		Nonce  int64
	}

	// r2ProbeReply answers a probe.
	r2ProbeReply struct {
		Nonce    int64
		HasToken bool
		LastSeen sim.Time
		Gen      int64
		Val      int64
	}

	// r2NewGen announces a regenerated token's generation so every live
	// station raises its stale-token floor.
	r2NewGen struct {
		Gen int64
	}
)

// Regenerations reports how many replacement tokens recovery has injected.
func (a *R2) Regenerations() int64 { return a.regens }

// StaleTokensDropped reports tokens retired by the generation floor.
func (a *R2) StaleTokensDropped() int64 { return a.staleTokens }

// NoteRestart informs the algorithm that mss has crashed and restarted: its
// volatile state (queued requests, grant queue, any held token) is gone. The
// generation floor survives — it models the one value the protocol commits
// to stable storage, and is what makes a pre-crash token arriving at the
// restarted station droppable rather than a second live token.
func (a *R2) NoteRestart(mss core.MSSID) {
	gen := a.mss[mss].gen
	a.mss[mss] = r2MSSState{gen: gen}
}

// suspected consults the failure-detector oracle.
func (a *R2) suspected(s core.MSSID, t sim.Time) bool {
	return a.opts.Recovery != nil && a.opts.Recovery.Suspect != nil && a.opts.Recovery.Suspect(s, t)
}

// armProbes starts every station's probe timer (called once from Start).
func (a *R2) armProbes() {
	if a.opts.Recovery == nil {
		return
	}
	for s := 0; s < a.ctx.M(); s++ {
		a.armProbe(core.MSSID(s))
	}
}

func (a *R2) armProbe(s core.MSSID) {
	a.ctx.After(a.opts.Recovery.ProbeEvery, func() { a.probeTick(s) })
}

// probeTick fires a station's probe timer. Timers stop rearming once the
// token parks so simulations quiesce.
func (a *R2) probeTick(s core.MSSID) {
	if a.parked {
		return
	}
	a.armProbe(s)
	now := a.ctx.Now()
	if a.suspected(s, now) || !a.isMonitor(s, now) {
		return
	}
	a.beginRound(s)
}

// isMonitor reports whether s is the lowest-numbered non-suspected station.
func (a *R2) isMonitor(s core.MSSID, now sim.Time) bool {
	for o := 0; o < int(s); o++ {
		if !a.suspected(core.MSSID(o), now) {
			return false
		}
	}
	return true
}

// beginRound starts a probe round at monitor s, seeding the round state with
// the monitor's own view and probing every other non-suspected station.
func (a *R2) beginRound(s core.MSSID) {
	now := a.ctx.Now()
	st := &a.mss[s]
	a.monNonce++
	a.monPending = 0
	a.monSawToken = st.holding || st.isServicing
	a.monMaxSeen = st.lastSeen
	a.monMaxGen = st.gen
	a.monMaxVal = st.lastVal
	for o := 0; o < a.ctx.M(); o++ {
		if o == int(s) || a.suspected(core.MSSID(o), now) {
			continue
		}
		a.monPending++
		a.ctx.SendFixed(s, core.MSSID(o), r2Probe{Origin: s, Nonce: a.monNonce}, cost.CatControl)
	}
	if a.monPending == 0 {
		a.concludeRound(s)
	}
}

// probeReply folds one reply into the monitor's round; the round concludes
// when every probed station has answered. Replies from abandoned rounds (or
// arriving after a fresh round reset the nonce) are ignored.
func (a *R2) probeReply(at core.MSSID, m r2ProbeReply) {
	if m.Nonce != a.monNonce || a.monPending == 0 {
		return
	}
	a.monPending--
	if m.HasToken {
		a.monSawToken = true
	}
	if m.LastSeen > a.monMaxSeen {
		a.monMaxSeen = m.LastSeen
	}
	if m.Gen > a.monMaxGen {
		a.monMaxGen = m.Gen
	}
	if m.Val > a.monMaxVal {
		a.monMaxVal = m.Val
	}
	if a.monPending == 0 {
		a.concludeRound(at)
	}
}

// concludeRound decides, on a complete view of the live stations, whether
// the token is lost, and regenerates it if so.
func (a *R2) concludeRound(at core.MSSID) {
	if a.parked || a.monSawToken {
		return
	}
	now := a.ctx.Now()
	if now-a.monMaxSeen <= a.opts.Recovery.Timeout {
		return
	}
	gen := a.monMaxGen + 1
	a.regens++
	a.ctx.NoteTokenRegeneration()
	for o := 0; o < a.ctx.M(); o++ {
		if o == int(at) || a.suspected(core.MSSID(o), now) {
			continue
		}
		a.ctx.SendFixed(at, core.MSSID(o), r2NewGen{Gen: gen}, cost.CatControl)
	}
	// Inject the replacement at the monitor by fiat (it elects itself; no
	// transmission). Val resumes from the highest any live station saw, so
	// R2′ admission never replays a traversal.
	a.tokenArrives(at, r2Token{Gen: gen, Val: a.monMaxVal})
}

// checkSingleToken panics if a live token arrives while another station
// holds one of the same or newer generation — the "counted, never two"
// invariant the recovery design must preserve.
func (a *R2) checkSingleToken(at core.MSSID, tok r2Token) {
	for s := range a.mss {
		if core.MSSID(s) == at {
			continue
		}
		if a.mss[s].holding && a.mss[s].token.Gen >= tok.Gen {
			panic(fmt.Sprintf("ring: two live tokens: gen %d arriving at mss%d while mss%d holds gen %d",
				tok.Gen, int(at), s, a.mss[s].token.Gen))
		}
	}
}

// nextLive returns the ring successor of at, skipping currently-suspected
// stations so the token is not handed straight into a known-dead cell.
func (a *R2) nextLive(at core.MSSID) core.MSSID {
	m := a.ctx.M()
	next := core.MSSID((int(at) + 1) % m)
	if a.opts.Recovery == nil {
		return next
	}
	now := a.ctx.Now()
	for hops := 1; hops < m && a.suspected(next, now); hops++ {
		next = core.MSSID((int(next) + 1) % m)
	}
	return next
}
