// Package lamport implements distributed mutual exclusion after Lamport
// [11] in the two variants the paper analyses (Section 3.1.1):
//
//   - L1 runs the classical algorithm directly on the N mobile hosts. Every
//     protocol message is MH-to-MH (incurring 2·Cwireless + Csearch), every
//     MH maintains a request queue, and FIFO channels between every MH pair
//     are required.
//   - L2 shifts the algorithm to the M support stations: an MH sends
//     init() to its local MSS, which competes on its behalf; the grant is
//     routed to the (possibly moved) MH with one search, and the release is
//     relayed through the MH's current MSS.
//
// Both variants share one participant state machine (engine): a Lamport
// clock, a timestamp-ordered request queue, and the last timestamp seen
// from every peer. A participant may enter the critical section for the
// request at the head of its queue once it has received a message
// timestamped later than that request from every other participant.
package lamport
