package lamport

import (
	"testing"
	"testing/quick"

	"mobiledist/internal/core"
	"mobiledist/internal/cost"
	"mobiledist/internal/sim"
	"mobiledist/internal/workload"
)

func TestL2GrantsFollowInitArrivalOrder(t *testing.T) {
	// With requests arriving at distinct MSSs far apart in time, grants
	// must follow arrival (timestamp) order.
	sys := newTestSystem(t, 4, 8)
	var order []core.MHID
	l2 := NewL2(sys, Options{
		Hold:    5,
		OnEnter: func(mh core.MHID) { order = append(order, mh) },
	})
	// mh3 (at mss3) first, mh0 (at mss0) second, mh5 (at mss1) third.
	reqs := []core.MHID{3, 0, 5}
	for i, mh := range reqs {
		mh := mh
		sys.Schedule(sim.Time(i*5_000), func() {
			if err := l2.Request(mh); err != nil {
				t.Errorf("Request: %v", err)
			}
		})
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(order) != len(reqs) {
		t.Fatalf("grants = %v", order)
	}
	for i := range reqs {
		if order[i] != reqs[i] {
			t.Fatalf("grant order %v, want %v", order, reqs)
		}
	}
}

func TestL2SingleMSS(t *testing.T) {
	// M = 1: Lamport degenerates to a local queue; everything still works.
	sys := newTestSystem(t, 1, 4)
	mon := &monitor{t: t}
	l2 := NewL2(sys, mon.options(3))
	for i := 0; i < 4; i++ {
		mh := core.MHID(i)
		sys.Schedule(sim.Time(i), func() {
			if err := l2.Request(mh); err != nil {
				t.Errorf("Request: %v", err)
			}
		})
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := l2.Grants(); got != 4 {
		t.Errorf("grants = %d, want 4", got)
	}
}

func TestL1SingleParticipant(t *testing.T) {
	sys := newTestSystem(t, 2, 3)
	mon := &monitor{t: t}
	l1, err := NewL1(sys, []core.MHID{1}, mon.options(2))
	if err != nil {
		t.Fatalf("NewL1: %v", err)
	}
	if err := l1.Request(core.MHID(1)); err != nil {
		t.Fatalf("Request: %v", err)
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := l1.Grants(); got != 1 {
		t.Errorf("grants = %d, want 1", got)
	}
}

func TestL1EnergyConcentratesAtInitiator(t *testing.T) {
	// The paper: the initiator's energy is proportional to 3(N−1), each
	// other MH's to 3 (receive request and release, send reply).
	const n = 6
	sys := newTestSystem(t, 3, n)
	mon := &monitor{t: t}
	l1, err := NewL1(sys, allMHs(n), mon.options(3))
	if err != nil {
		t.Fatalf("NewL1: %v", err)
	}
	if err := l1.Request(core.MHID(2)); err != nil {
		t.Fatalf("Request: %v", err)
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	tx, rx := sys.Meter().Energy(2)
	if tx+rx != 3*(n-1) {
		t.Errorf("initiator energy = %d, want %d", tx+rx, 3*(n-1))
	}
	for i := 0; i < n; i++ {
		if i == 2 {
			continue
		}
		tx, rx := sys.Meter().Energy(i)
		if tx+rx != 3 {
			t.Errorf("mh%d energy = %d, want 3", i, tx+rx)
		}
	}
}

func TestL2CostUnaffectedByNonRequesterChurn(t *testing.T) {
	// Disconnection of MHs without pending requests must not change L2's
	// algorithm cost at all (the paper's key disconnection claim).
	run := func(churn bool) float64 {
		cfg := core.DefaultConfig(5, 10)
		cfg.Seed = 9
		sys := core.MustNewSystem(cfg)
		l2 := NewL2(sys, Options{Hold: 5})
		if err := l2.Request(core.MHID(0)); err != nil {
			t.Fatalf("Request: %v", err)
		}
		if churn {
			for _, mh := range []core.MHID{6, 7, 8} {
				if err := sys.Disconnect(mh); err != nil {
					t.Fatalf("Disconnect: %v", err)
				}
			}
		}
		if err := sys.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return sys.Meter().CategoryCost(cost.CatAlgorithm, cfg.Params)
	}
	if quiet, noisy := run(false), run(true); quiet != noisy {
		t.Errorf("algorithm cost changed with bystander churn: %v vs %v", quiet, noisy)
	}
}

// TestPropertyL2GrantBalance: across random workloads, grants + aborted
// grants equals requests issued, and the request guard never wedges (every
// requester can request again after completion).
func TestPropertyL2GrantBalance(t *testing.T) {
	check := func(seed uint64, moveRaw uint8) bool {
		const (
			m = 4
			n = 8
		)
		cfg := core.DefaultConfig(m, n)
		cfg.Seed = seed
		sys, err := core.NewSystem(cfg)
		if err != nil {
			return false
		}
		l2 := NewL2(sys, Options{Hold: 4})
		req, err := workload.NewRequests(sys, workload.RequestConfig{
			Interval:      workload.Span{Min: 30, Max: 200},
			RequestsPerMH: 2,
		}, l2.Request)
		if err != nil {
			return false
		}
		if _, err := workload.NewMobility(sys, workload.MobilityConfig{
			Interval:   workload.Span{Min: 50, Max: 300},
			MovesPerMH: int(moveRaw % 3),
		}); err != nil {
			return false
		}
		if err := sys.Run(); err != nil {
			return false
		}
		return l2.Grants()+l2.FailedGrants() == req.Issued()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestL1GrantsFollowTimestampOrder(t *testing.T) {
	// Requests issued one at a time (each after the previous is visible
	// network-wide would be too strong; instead assert total grants and
	// that the first requester wins when it requests far earlier).
	sys := newTestSystem(t, 3, 5)
	var order []core.MHID
	opts := Options{Hold: 3, OnEnter: func(mh core.MHID) { order = append(order, mh) }}
	l1, err := NewL1(sys, allMHs(5), opts)
	if err != nil {
		t.Fatalf("NewL1: %v", err)
	}
	if err := l1.Request(core.MHID(4)); err != nil {
		t.Fatalf("Request: %v", err)
	}
	sys.Schedule(10_000, func() {
		if err := l1.Request(core.MHID(1)); err != nil {
			t.Errorf("Request: %v", err)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(order) != 2 || order[0] != 4 || order[1] != 1 {
		t.Errorf("grant order = %v, want [4 1]", order)
	}
}
