package lamport

import (
	"fmt"

	"mobiledist/internal/core"
	"mobiledist/internal/cost"
	"mobiledist/internal/logical"
)

// Protocol messages of algorithm L2. Only MSS-to-MSS messages carry Lamport
// timestamps; messages between a MH and a MSS are not timestamped
// (Section 3.1.1).
type (
	// initMsg is sent by a MH to its local MSS to initiate a request.
	initMsg struct{}

	// grantMsg tells the MH it may enter the critical section. Home is the
	// MSS that competed on its behalf and ReqTS the request's timestamp,
	// echoed back in the release path.
	grantMsg struct {
		Home  core.MSSID
		ReqTS logical.Timestamp
	}

	// releaseResourceMsg is sent by the MH to its *current* local MSS after
	// leaving the critical section; that MSS relays it to Home.
	releaseResourceMsg struct {
		Home  core.MSSID
		ReqTS logical.Timestamp
	}

	// relayReleaseMsg carries a relayed release-resource to the home MSS.
	relayReleaseMsg struct {
		MH    core.MHID
		ReqTS logical.Timestamp
	}
)

type l2MHState struct {
	requested bool
	// owesRelease holds the pending release-resource of a MH that
	// disconnected inside the critical section; L2 requires it to reconnect
	// to send it (Section 3.1.1).
	owesRelease *releaseResourceMsg
}

// L2 is the paper's restructured Lamport algorithm: the M support stations
// maintain the request queues and exchange timestamped request/reply/release
// messages on behalf of the mobile hosts.
type L2 struct {
	ctx     core.Context
	opts    Options
	engines []*logical.MutexEngine
	mhs     []l2MHState

	grants       int64
	failedGrants int64
}

var (
	_ core.Algorithm              = (*L2)(nil)
	_ core.MSSHandler             = (*L2)(nil)
	_ core.MHHandler              = (*L2)(nil)
	_ core.DeliveryFailureHandler = (*L2)(nil)
	_ core.MobilityObserver       = (*L2)(nil)
)

// NewL2 registers an L2 instance. All M MSSs participate; any MH may
// request the critical section.
func NewL2(reg core.Registrar, opts Options) *L2 {
	a := &L2{opts: opts}
	a.ctx = reg.Register(a)
	m := a.ctx.M()
	a.engines = make([]*logical.MutexEngine, m)
	a.mhs = make([]l2MHState, a.ctx.N())
	for i := 0; i < m; i++ {
		slot := i
		a.engines[i] = logical.NewMutexEngine(slot, m,
			func(to int, msg logical.MutexMsg) {
				a.ctx.SendFixed(core.MSSID(slot), core.MSSID(to), msg, cost.CatAlgorithm)
			},
			func(tag int64, ts logical.Timestamp) { a.granted(core.MSSID(slot), core.MHID(tag), ts) },
		)
	}
	return a
}

// Name implements core.Algorithm.
func (a *L2) Name() string { return "mutex/L2" }

// Grants reports how many critical-section entries have been granted.
func (a *L2) Grants() int64 { return a.grants }

// FailedGrants reports grants abandoned because the requester disconnected.
func (a *L2) FailedGrants() int64 { return a.failedGrants }

// Request initiates a mutual exclusion request for mh: the MH sends init()
// to its local MSS. At most one request per MH may be outstanding.
func (a *L2) Request(mh core.MHID) error {
	st := &a.mhs[mh]
	if st.requested {
		return fmt.Errorf("lamport: mh%d already has an outstanding request", int(mh))
	}
	if err := a.ctx.SendFromMH(mh, initMsg{}, cost.CatAlgorithm); err != nil {
		return fmt.Errorf("lamport: L2 request: %w", err)
	}
	st.requested = true
	a.ctx.NoteCSRequest(mh)
	return nil
}

// HandleMSS implements core.MSSHandler.
func (a *L2) HandleMSS(ctx core.Context, at core.MSSID, from core.From, msg core.Message) {
	switch m := msg.(type) {
	case initMsg:
		if !from.IsMH {
			panic("lamport: init() must come from a MH")
		}
		a.engines[at].Request(int64(from.MH))
	case releaseResourceMsg:
		if !from.IsMH {
			panic("lamport: release-resource must come from a MH")
		}
		// Relay to the home MSS over the fixed network; the paper charges
		// Cwireless + Cfixed unconditionally for this leg.
		ctx.SendFixed(at, m.Home, relayReleaseMsg{MH: from.MH, ReqTS: m.ReqTS}, cost.CatAlgorithm)
	case relayReleaseMsg:
		if err := a.engines[at].Release(m.ReqTS); err != nil {
			panic(fmt.Sprintf("lamport: L2 release: %v", err))
		}
	case logical.MutexMsg:
		a.engines[at].Handle(m)
	default:
		panic(fmt.Sprintf("lamport: L2 MSS received unexpected message %T", msg))
	}
}

// HandleMH implements core.MHHandler.
func (a *L2) HandleMH(ctx core.Context, at core.MHID, msg core.Message) {
	m, ok := msg.(grantMsg)
	if !ok {
		panic(fmt.Sprintf("lamport: L2 MH received unexpected message %T", msg))
	}
	a.grants++
	ctx.NoteCSEnter(at)
	if a.opts.OnEnter != nil {
		a.opts.OnEnter(at)
	}
	ctx.After(a.opts.Hold, func() {
		ctx.NoteCSExit(at)
		if a.opts.OnExit != nil {
			a.opts.OnExit(at)
		}
		// The request is no longer outstanding from the MH's point of view;
		// a new Request may be issued while the release propagates.
		a.mhs[at].requested = false
		rel := releaseResourceMsg{Home: m.Home, ReqTS: m.ReqTS}
		if err := ctx.SendFromMH(at, rel, cost.CatAlgorithm); err != nil {
			// Disconnected inside the critical section: L2 requires the MH
			// to reconnect to send release-resource; remember the debt.
			a.mhs[at].owesRelease = &rel
		}
	})
}

// OnDeliveryFailure implements core.DeliveryFailureHandler: the grant could
// not be delivered because the MH disconnected, so its request is withdrawn
// and a release is sent to every other MSS (Section 3.1.1).
func (a *L2) OnDeliveryFailure(ctx core.Context, at core.MSSID, mh core.MHID, msg core.Message, reason core.FailReason) {
	m, ok := msg.(grantMsg)
	if !ok {
		return
	}
	a.failedGrants++
	a.mhs[mh].requested = false
	if err := a.engines[at].Release(m.ReqTS); err != nil {
		panic(fmt.Sprintf("lamport: L2 failure release: %v", err))
	}
}

// OnJoin implements core.MobilityObserver: a reconnecting MH that owes a
// release-resource sends it from its new cell.
func (a *L2) OnJoin(ctx core.Context, mss core.MSSID, mh core.MHID, prev core.MSSID, wasDisconnected bool) {
	if !wasDisconnected {
		return
	}
	st := &a.mhs[mh]
	if st.owesRelease == nil {
		return
	}
	rel := *st.owesRelease
	st.owesRelease = nil
	if err := ctx.SendFromMH(mh, rel, cost.CatAlgorithm); err != nil {
		st.owesRelease = &rel
	}
}

// OnLeave implements core.MobilityObserver.
func (a *L2) OnLeave(core.Context, core.MSSID, core.MHID) {}

// OnDisconnect implements core.MobilityObserver.
func (a *L2) OnDisconnect(core.Context, core.MSSID, core.MHID) {}

func (a *L2) granted(home core.MSSID, mh core.MHID, ts logical.Timestamp) {
	// Deliver the grant to the MH, which may have changed cells; the send
	// incurs a search (Csearch + Cwireless).
	a.ctx.SendToMH(home, mh, grantMsg{Home: home, ReqTS: ts}, cost.CatAlgorithm)
}
