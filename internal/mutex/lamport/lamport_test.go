package lamport

import (
	"testing"

	"mobiledist/internal/core"
	"mobiledist/internal/cost"
	"mobiledist/internal/sim"
)

// monitor tracks critical-section occupancy to verify mutual exclusion.
type monitor struct {
	t       *testing.T
	holders int
	maxHeld int
	entries []core.MHID
}

func (m *monitor) options(hold sim.Time) Options {
	return Options{
		Hold: hold,
		OnEnter: func(mh core.MHID) {
			m.holders++
			m.entries = append(m.entries, mh)
			if m.holders > m.maxHeld {
				m.maxHeld = m.holders
			}
			if m.holders > 1 {
				m.t.Errorf("mutual exclusion violated: %d holders when mh%d entered", m.holders, int(mh))
			}
		},
		OnExit: func(mh core.MHID) { m.holders-- },
	}
}

func newTestSystem(t *testing.T, m, n int) *core.System {
	t.Helper()
	sys, err := core.NewSystem(core.DefaultConfig(m, n))
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	return sys
}

func allMHs(n int) []core.MHID {
	ids := make([]core.MHID, n)
	for i := range ids {
		ids[i] = core.MHID(i)
	}
	return ids
}

func TestL2SingleRequestCostMatchesAnalytic(t *testing.T) {
	const (
		m = 5
		n = 12
	)
	sys := newTestSystem(t, m, n)
	mon := &monitor{t: t}
	l2 := NewL2(sys, mon.options(10))

	if err := l2.Request(core.MHID(3)); err != nil {
		t.Fatalf("Request: %v", err)
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}

	if got := l2.Grants(); got != 1 {
		t.Fatalf("grants = %d, want 1", got)
	}
	p := sys.Config().Params
	got := sys.Meter().CategoryCost(cost.CatAlgorithm, p)
	want := cost.AnalyticL2PerExecution(m, p)
	if got != want {
		t.Errorf("L2 algorithm cost = %v, want analytic %v\n%s", got, want, sys.Meter().Report(p))
	}
	if wl := sys.Meter().Count(cost.CatAlgorithm, cost.KindWireless); wl != cost.AnalyticL2WirelessPerExecution() {
		t.Errorf("L2 wireless messages = %d, want %d", wl, cost.AnalyticL2WirelessPerExecution())
	}
}

func TestL1SingleRequestCostMatchesAnalytic(t *testing.T) {
	const (
		m = 4
		n = 9
	)
	sys := newTestSystem(t, m, n)
	mon := &monitor{t: t}
	l1, err := NewL1(sys, allMHs(n), mon.options(10))
	if err != nil {
		t.Fatalf("NewL1: %v", err)
	}

	if err := l1.Request(core.MHID(0)); err != nil {
		t.Fatalf("Request: %v", err)
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}

	if got := l1.Grants(); got != 1 {
		t.Fatalf("grants = %d, want 1", got)
	}
	p := sys.Config().Params
	got := sys.Meter().CategoryCost(cost.CatAlgorithm, p)
	want := cost.AnalyticL1PerExecution(n, p)
	if got != want {
		t.Errorf("L1 algorithm cost = %v, want analytic %v\n%s", got, want, sys.Meter().Report(p))
	}
	tx, rx := sys.Meter().TotalEnergy()
	if tx+rx != cost.AnalyticL1WirelessPerExecution(n) {
		t.Errorf("L1 wireless energy = %d, want %d", tx+rx, cost.AnalyticL1WirelessPerExecution(n))
	}
}

func TestL2ConcurrentRequestsSafetyAndLiveness(t *testing.T) {
	const (
		m = 4
		n = 20
	)
	sys := newTestSystem(t, m, n)
	mon := &monitor{t: t}
	l2 := NewL2(sys, mon.options(7))

	for i := 0; i < n; i++ {
		mh := core.MHID(i)
		sys.Schedule(sim.Time(i%5), func() {
			if err := l2.Request(mh); err != nil {
				t.Errorf("Request(mh%d): %v", int(mh), err)
			}
		})
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := l2.Grants(); got != n {
		t.Errorf("grants = %d, want %d", got, n)
	}
	if len(mon.entries) != n {
		t.Errorf("entries = %d, want %d", len(mon.entries), n)
	}
	if mon.holders != 0 {
		t.Errorf("holders = %d after quiescence, want 0", mon.holders)
	}
}

func TestL1ConcurrentRequestsSafetyAndLiveness(t *testing.T) {
	const (
		m = 3
		n = 8
	)
	sys := newTestSystem(t, m, n)
	mon := &monitor{t: t}
	l1, err := NewL1(sys, allMHs(n), mon.options(5))
	if err != nil {
		t.Fatalf("NewL1: %v", err)
	}

	for i := 0; i < n; i++ {
		mh := core.MHID(i)
		sys.Schedule(sim.Time(i%3), func() {
			if err := l1.Request(mh); err != nil {
				t.Errorf("Request(mh%d): %v", int(mh), err)
			}
		})
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := l1.Grants(); got != n {
		t.Errorf("grants = %d, want %d", got, n)
	}
}

func TestL2RequesterMovesBeforeGrant(t *testing.T) {
	sys := newTestSystem(t, 5, 10)
	mon := &monitor{t: t}
	l2 := NewL2(sys, mon.options(5))

	if err := l2.Request(core.MHID(0)); err != nil {
		t.Fatalf("Request: %v", err)
	}
	// Move the requester across two cells while the request is in flight.
	sys.Schedule(1, func() {
		if err := sys.Move(core.MHID(0), core.MSSID(3)); err != nil {
			t.Errorf("Move: %v", err)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := l2.Grants(); got != 1 {
		t.Errorf("grants = %d, want 1", got)
	}
	if at, status := sys.Where(core.MHID(0)); at != 3 || status != core.StatusConnected {
		t.Errorf("mh0 at mss%d status %v, want mss3 connected", int(at), status)
	}
}

func TestL2DisconnectBeforeGrantReleasesRequest(t *testing.T) {
	sys := newTestSystem(t, 4, 6)
	mon := &monitor{t: t}
	l2 := NewL2(sys, mon.options(5))

	// mh0 requests then immediately disconnects; mh1 requests later and must
	// still be granted.
	if err := l2.Request(core.MHID(0)); err != nil {
		t.Fatalf("Request: %v", err)
	}
	sys.Schedule(1, func() {
		if err := sys.Disconnect(core.MHID(0)); err != nil {
			t.Errorf("Disconnect: %v", err)
		}
	})
	sys.Schedule(2, func() {
		if err := l2.Request(core.MHID(1)); err != nil {
			t.Errorf("Request(mh1): %v", err)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := l2.FailedGrants(); got != 1 {
		t.Errorf("failed grants = %d, want 1", got)
	}
	if got := l2.Grants(); got != 1 {
		t.Errorf("grants = %d, want 1 (mh1)", got)
	}
	if len(mon.entries) != 1 || mon.entries[0] != 1 {
		t.Errorf("entries = %v, want [1]", mon.entries)
	}
}

func TestL2DisconnectInsideCSReleasesAfterReconnect(t *testing.T) {
	sys := newTestSystem(t, 4, 6)
	mon := &monitor{t: t}
	opts := mon.options(50)
	var entered sim.Time
	prevEnter := opts.OnEnter
	opts.OnEnter = func(mh core.MHID) {
		prevEnter(mh)
		entered = sys.Now()
		_ = entered
		if mh == 0 {
			// Disconnect while holding the critical section.
			sys.Schedule(10, func() {
				if err := sys.Disconnect(core.MHID(0)); err != nil {
					t.Errorf("Disconnect: %v", err)
				}
			})
			// Reconnect (at a different cell, knowing the previous MSS)
			// well after the hold expires.
			sys.Schedule(200, func() {
				if err := sys.Reconnect(core.MHID(0), core.MSSID(2), true); err != nil {
					t.Errorf("Reconnect: %v", err)
				}
			})
		}
	}
	l2 := NewL2(sys, opts)

	if err := l2.Request(core.MHID(0)); err != nil {
		t.Fatalf("Request: %v", err)
	}
	// A second requester must eventually be granted once mh0 reconnects and
	// its release-resource reaches the home MSS.
	sys.Schedule(5, func() {
		if err := l2.Request(core.MHID(1)); err != nil {
			t.Errorf("Request(mh1): %v", err)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := l2.Grants(); got != 2 {
		t.Errorf("grants = %d, want 2", got)
	}
}

func TestL1BlocksWhenParticipantDisconnects(t *testing.T) {
	sys := newTestSystem(t, 3, 5)
	mon := &monitor{t: t}
	l1, err := NewL1(sys, allMHs(5), mon.options(5))
	if err != nil {
		t.Fatalf("NewL1: %v", err)
	}

	// mh4 disconnects; a later request by mh0 can never complete because
	// mh4 will never reply (the paper: L1 does not provide for
	// disconnection).
	if err := sys.Disconnect(core.MHID(4)); err != nil {
		t.Fatalf("Disconnect: %v", err)
	}
	sys.Schedule(10, func() {
		if err := l1.Request(core.MHID(0)); err != nil {
			t.Errorf("Request: %v", err)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := l1.Grants(); got != 0 {
		t.Errorf("grants = %d, want 0 (stalled)", got)
	}
}

func TestL1RequestWhileMovingIsDeferred(t *testing.T) {
	sys := newTestSystem(t, 3, 4)
	mon := &monitor{t: t}
	l1, err := NewL1(sys, allMHs(4), mon.options(5))
	if err != nil {
		t.Fatalf("NewL1: %v", err)
	}
	if err := sys.Move(core.MHID(0), core.MSSID(2)); err != nil {
		t.Fatalf("Move: %v", err)
	}
	// Request issued while mh0 is in transit: protocol messages defer until
	// it joins the new cell, then the request completes.
	sys.Schedule(1, func() {
		if err := l1.Request(core.MHID(0)); err != nil {
			t.Errorf("Request: %v", err)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := l1.Grants(); got != 1 {
		t.Errorf("grants = %d, want 1", got)
	}
}

func TestL2RepeatedRequestsFromSameMH(t *testing.T) {
	sys := newTestSystem(t, 3, 3)
	mon := &monitor{t: t}
	opts := mon.options(5)
	var l2 *L2
	var rounds int
	base := opts.OnExit
	opts.OnExit = func(mh core.MHID) {
		base(mh)
		if rounds < 4 {
			rounds++
			sys.Schedule(1, func() {
				if err := l2.Request(mh); err != nil {
					t.Errorf("re-Request: %v", err)
				}
			})
		}
	}
	l2 = NewL2(sys, opts)

	if err := l2.Request(core.MHID(2)); err != nil {
		t.Fatalf("Request: %v", err)
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := l2.Grants(); got != 5 {
		t.Errorf("grants = %d, want 5", got)
	}
}

func TestL2DuplicateRequestRejected(t *testing.T) {
	sys := newTestSystem(t, 3, 3)
	l2 := NewL2(sys, Options{Hold: 1000})
	if err := l2.Request(core.MHID(0)); err != nil {
		t.Fatalf("Request: %v", err)
	}
	if err := l2.Request(core.MHID(0)); err == nil {
		t.Error("duplicate Request succeeded, want error")
	}
}

func TestL1NonParticipantRejected(t *testing.T) {
	sys := newTestSystem(t, 3, 6)
	l1, err := NewL1(sys, allMHs(3), Options{Hold: 1})
	if err != nil {
		t.Fatalf("NewL1: %v", err)
	}
	if err := l1.Request(core.MHID(5)); err == nil {
		t.Error("Request by non-participant succeeded, want error")
	}
}
