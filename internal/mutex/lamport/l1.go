package lamport

import (
	"fmt"

	"mobiledist/internal/core"
	"mobiledist/internal/cost"
	"mobiledist/internal/logical"
	"mobiledist/internal/sim"
)

// Options configure the critical-section behaviour shared by L1 and L2.
type Options struct {
	// Hold is how long a granted MH occupies the critical section before
	// the algorithm releases on its behalf.
	Hold sim.Time
	// OnEnter fires when mh enters the critical section.
	OnEnter func(mh core.MHID)
	// OnExit fires when mh leaves the critical section (the release has
	// been initiated; propagation is asynchronous).
	OnExit func(mh core.MHID)
}

// L1 executes Lamport's mutual exclusion directly on the mobile hosts.
// Every MH participates in every execution: each maintains a clock and a
// request queue, and all protocol traffic is MH-to-MH.
type L1 struct {
	ctx          core.Context
	opts         Options
	participants []core.MHID
	index        map[core.MHID]int
	engines      []*logical.MutexEngine
	pending      []*logical.Timestamp // outstanding own request per slot
	grants       int64
}

var (
	_ core.Algorithm = (*L1)(nil)
	_ core.MHHandler = (*L1)(nil)
)

// NewL1 registers an L1 instance over the given participant MHs (all N MHs
// in the paper's analysis).
func NewL1(reg core.Registrar, participants []core.MHID, opts Options) (*L1, error) {
	if len(participants) == 0 {
		return nil, fmt.Errorf("lamport: L1 needs at least one participant")
	}
	a := &L1{
		opts:         opts,
		participants: append([]core.MHID(nil), participants...),
		index:        make(map[core.MHID]int, len(participants)),
		engines:      make([]*logical.MutexEngine, len(participants)),
		pending:      make([]*logical.Timestamp, len(participants)),
	}
	for i, mh := range a.participants {
		if _, dup := a.index[mh]; dup {
			return nil, fmt.Errorf("lamport: duplicate participant mh%d", int(mh))
		}
		a.index[mh] = i
	}
	a.ctx = reg.Register(a)
	for i := range a.participants {
		slot := i
		a.engines[i] = logical.NewMutexEngine(slot, len(a.participants),
			func(to int, m logical.MutexMsg) { a.sendPeer(slot, to, m) },
			func(tag int64, ts logical.Timestamp) { a.granted(slot, ts) },
		)
	}
	return a, nil
}

// Name implements core.Algorithm.
func (a *L1) Name() string { return "mutex/L1" }

// Grants reports how many critical-section entries have been granted.
func (a *L1) Grants() int64 { return a.grants }

// Request issues a mutual exclusion request on behalf of mh. At most one
// request per MH may be outstanding.
func (a *L1) Request(mh core.MHID) error {
	slot, ok := a.index[mh]
	if !ok {
		return fmt.Errorf("lamport: mh%d is not an L1 participant", int(mh))
	}
	if a.pending[slot] != nil {
		return fmt.Errorf("lamport: mh%d already has an outstanding request", int(mh))
	}
	ts := a.engines[slot].Request(0)
	a.pending[slot] = &ts
	a.ctx.NoteCSRequest(mh)
	return nil
}

// HandleMH implements core.MHHandler.
func (a *L1) HandleMH(_ core.Context, at core.MHID, msg core.Message) {
	slot, ok := a.index[at]
	if !ok {
		panic(fmt.Sprintf("lamport: L1 message delivered to non-participant mh%d", int(at)))
	}
	m, ok := msg.(logical.MutexMsg)
	if !ok {
		panic(fmt.Sprintf("lamport: L1 received unexpected message %T", msg))
	}
	a.engines[slot].Handle(m)
}

func (a *L1) sendPeer(from, to int, m logical.MutexMsg) {
	src := a.participants[from]
	dst := a.participants[to]
	if err := a.ctx.SendMHToMH(src, dst, m, cost.CatAlgorithm); err != nil {
		// A disconnected sender cannot participate; the paper notes L1 does
		// not provide for disconnection, so the message is simply lost and
		// the algorithm stalls — exactly the failure mode experiment E3
		// measures.
		return
	}
}

func (a *L1) granted(slot int, ts logical.Timestamp) {
	mh := a.participants[slot]
	a.grants++
	a.ctx.NoteCSEnter(mh)
	if a.opts.OnEnter != nil {
		a.opts.OnEnter(mh)
	}
	a.ctx.After(a.opts.Hold, func() {
		a.ctx.NoteCSExit(mh)
		if a.opts.OnExit != nil {
			a.opts.OnExit(mh)
		}
		a.pending[slot] = nil
		if err := a.engines[slot].Release(ts); err != nil {
			panic(fmt.Sprintf("lamport: L1 release: %v", err))
		}
	})
}
