package experiments

import (
	"mobiledist/internal/core"
	"mobiledist/internal/mutex/ring"
	"mobiledist/internal/sim"
)

// F1Unreliability surfaces the fault-injection and recovery counters the
// chaos subsystem adds to the model: wireless drops, ARQ retransmissions,
// suppressed duplicates, and token regenerations. It runs the R2′ token
// mutex (M=4, N=8, four traversals) under the process-wide default fault
// plan — the one cmd/mobilexp's -drop/-dup/-reorder/-flap/-crash flags
// install via SetDefaultFaultPlan — with token recovery armed whenever the
// plan contains crashes. With no plan installed it documents the fault-free
// baseline: every counter zero, protocol outcome identical to the seed
// tables.
func F1Unreliability(seed uint64) Table {
	const (
		m = 4
		n = 8
		// Failure-detector suspicion lag (ticks): a crashed station is
		// suspected this long after the crash instant.
		suspicionLag = sim.Time(2000)
	)
	t := Table{
		ID:      "F1",
		Title:   "Unreliable wireless: fault injection and recovery counters (M=4, N=8, R2' mutex)",
		Columns: []string{"counter", "value"},
	}

	cfg := core.DefaultConfig(m, n)
	cfg.Seed = seed
	plan := cfg.Faults
	sys := core.MustNewSystem(cfg)
	inj := sys.Injector()

	crashedCell := make(map[core.MSSID]bool)
	opts := ring.Options{Hold: 2}
	if plan != nil {
		for _, c := range plan.Crashes {
			crashedCell[c.MSS] = true
		}
	}
	if len(crashedCell) > 0 {
		opts.Recovery = &ring.TokenRecovery{
			ProbeEvery: 300,
			Timeout:    1000,
			Suspect: func(s core.MSSID, now sim.Time) bool {
				since, down := inj.DownSince(s)
				return down && now-since > suspicionLag
			},
		}
	}
	r2, err := ring.NewR2(sys, ring.VariantCounter, opts, 4, nil)
	if err != nil {
		panic(err)
	}
	if inj != nil {
		inj.OnRestart(func(mss core.MSSID) { r2.NoteRestart(mss) })
		inj.Arm()
	}
	// Requesters sit in cells that never crash (round-robin placement:
	// mh i lives in cell i mod m); work in a crashed cell is outside the
	// recovery protocol's scope.
	requesters := 0
	for i := 0; i < n; i++ {
		if crashedCell[core.MSSID(i%m)] {
			continue
		}
		if err := r2.Request(core.MHID(i)); err != nil {
			panic(err)
		}
		requesters++
	}
	if err := r2.Start(); err != nil {
		panic(err)
	}
	if err := sys.Run(); err != nil {
		panic(err)
	}

	st := sys.Stats()
	t.AddRow("wireless drops (injected loss, dark links)", st.WirelessDrops)
	t.AddRow("ARQ retransmits", st.Retransmits)
	t.AddRow("ARQ duplicates suppressed", st.DuplicatesSuppressed)
	t.AddRow("token regenerations", st.TokenRegenerations)
	t.AddRow("stale tokens dropped", r2.StaleTokensDropped())
	t.AddRow("CS requesters", requesters)
	t.AddRow("CS grants", r2.Grants())
	t.AddRow("ring traversals", r2.Traversals())
	if plan == nil {
		t.AddNote("no fault plan installed: fault-free baseline (use -drop/-dup/-reorder/-flap/-crash)")
	} else {
		t.AddNote("fault plan: seed=%d down{drop=%.2f dup=%.2f reorder=%.2f} up{drop=%.2f dup=%.2f reorder=%.2f} flaps=%d crashes=%d",
			plan.Seed, plan.Down.Drop, plan.Down.Duplicate, plan.Down.Reorder,
			plan.Up.Drop, plan.Up.Duplicate, plan.Up.Reorder, len(plan.Flaps), len(plan.Crashes))
	}
	if len(crashedCell) > 0 {
		t.AddNote("token recovery armed: probe every 300 ticks, loss timeout 1000, suspicion lag %d", int64(suspicionLag))
	}
	return t
}
