package experiments

import "testing"

func TestA3LazyInformShape(t *testing.T) {
	tab := A3LazyInform(1)
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tab.Rows))
	}
	var prevInform float64 = 1e18
	for i := range tab.Rows {
		inform := cell(t, tab, i, "inform cost")
		if inform >= prevInform {
			t.Errorf("row %d: inform cost did not shrink with lazier reporting", i)
		}
		prevInform = inform
	}
	// Some intermediate k must beat the fully-informed proxy in total
	// coupling cost — the point of the extension.
	eager := cell(t, tab, 0, "total coupling")
	improved := false
	for i := 1; i < len(tab.Rows); i++ {
		if cell(t, tab, i, "total coupling") < eager {
			improved = true
		}
	}
	if !improved {
		t.Error("no lazy-inform period beat the fully-informed proxy")
	}
}

func TestA4MulticastShape(t *testing.T) {
	tab := A4MulticastHandoff(1)
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tab.Rows))
	}
	var prevHandoff float64 = -1
	for i := range tab.Rows {
		if tab.Rows[i][col2idx(tab, "exactly once")] != "yes" {
			t.Errorf("row %d: exactly-once guarantee broken", i)
		}
		if got := cell(t, tab, i, "deliveries"); got != 60 {
			t.Errorf("row %d: deliveries = %v, want 60", i, got)
		}
		h := cell(t, tab, i, "handoff cost")
		if h < prevHandoff {
			t.Errorf("row %d: handoff cost decreased with mobility", i)
		}
		prevHandoff = h
	}
	if cell(t, tab, 0, "handoffs") != 0 {
		t.Error("handoffs with no mobility should be 0")
	}
	if cell(t, tab, 3, "handoffs") == 0 {
		t.Error("no handoffs despite heavy mobility")
	}
}

func TestVerifySweepHoldsAcrossSeeds(t *testing.T) {
	tab := Verify(3)
	if len(tab.Rows) != len(IDs()) {
		t.Fatalf("rows = %d, want %d", len(tab.Rows), len(IDs()))
	}
	var totalCompared float64
	for i, row := range tab.Rows {
		if row[col2idx(tab, "holds")] != "yes" {
			t.Errorf("experiment %s: paper/measured mismatch across seeds", tab.Rows[i][0])
		}
		totalCompared += cell(t, tab, i, "cells compared")
	}
	if totalCompared == 0 {
		t.Error("verification compared no cells")
	}
}

func TestVerifyColumnParsing(t *testing.T) {
	if b, k := splitColumn("L1 paper"); b != "L1" || k != "paper" {
		t.Errorf("splitColumn = %q/%q", b, k)
	}
	if b, k := splitColumn("LV bound"); b != "LV" || k != "bound" {
		t.Errorf("splitColumn = %q/%q", b, k)
	}
	if _, k := splitColumn("winner"); k != "" {
		t.Errorf("splitColumn(winner) kind = %q", k)
	}
	if v, err := parseNumeric("3.9x"); err != nil || v != 3.9 {
		t.Errorf("parseNumeric(3.9x) = %v, %v", v, err)
	}
	if _, err := parseNumeric("M = 6"); err == nil {
		t.Error("parseNumeric accepted non-numeric cell")
	}
}
