package experiments

import (
	"mobiledist/internal/core"
	"mobiledist/internal/cost"
	"mobiledist/internal/dtn"
	"mobiledist/internal/sim"
	"mobiledist/internal/workload"
)

// dtnProbe counts deliveries to the absent host.
type dtnProbe struct {
	delivered int64
}

func (p *dtnProbe) Name() string { return "dtn-probe" }
func (p *dtnProbe) HandleMH(_ core.Context, at core.MHID, _ core.Message) {
	if at == 0 {
		p.delivered++
	}
}

// D1StoreCarryForward sweeps the long-disconnection episode family
// (internal/workload Absence) over three disconnect durations and runs
// each episode under the three custody routing strategies: the paper's
// park-at-MSS behaviour as the control, epidemic anti-entropy gossip,
// and binary spray-and-wait over the host's visit history.
//
// The host crosses two cells (0→1→2), disconnects in cell 2, and a
// station streams messages at it every 40 ticks for the whole absence.
// The fault plan crashes cell 2 — the custodian — mid-absence (twice for
// the longest episodes), wiping whatever parks there, and bundles carry
// a TTL of 1500 ticks, so the longest absence also expires early
// traffic. Park therefore loses every pre-crash message; the replicating
// strategies hold copies in other cells and deliver strictly more before
// TTL expiry, at a measurable replication cost (transfers, summaries).
func D1StoreCarryForward(seed uint64) Table {
	const (
		m         = 4
		n         = 4
		depart    = sim.Time(200)
		ttl       = sim.Time(1500)
		sendEvery = sim.Time(40)
	)
	durations := []sim.Time{600, 1200, 2400}

	t := Table{
		ID:      "D1",
		Title:   "Store-carry-forward: delivery ratio vs disconnect duration, per routing strategy (M=4, N=4, TTL=1500)",
		Columns: []string{"disconnect", "strategy", "sent", "delivered", "ratio", "expired", "lost", "transfers", "summaries"},
	}

	run := func(duration sim.Time, strategy dtn.RoutingAlgorithm) {
		cfg := core.DefaultConfig(m, n)
		cfg.Seed = seed
		// Private fault plan: this table's weather must not depend on the
		// process-wide plan the -drop/-crash flags install.
		cfg.Faults = &core.FaultPlan{Crashes: []core.Crash{
			{MSS: 2, At: 500, RestartAt: 550},
			{MSS: 2, At: 1800, RestartAt: 1900},
		}}
		sys := core.MustNewSystem(cfg)
		p := &dtnProbe{}
		ctx := sys.Register(p)
		mgr, err := dtn.New(sys, dtn.Config{Strategy: strategy, TTL: ttl})
		if err != nil {
			panic(err)
		}
		inj := sys.Injector()
		inj.OnCrash(mgr.NoteCrash)
		inj.OnRestart(mgr.NoteRestart)
		inj.Arm()
		if _, err := workload.NewAbsence(sys, workload.AbsenceConfig{
			MH:        0,
			PreMoves:  2,
			MoveEvery: workload.FixedSpan(60),
			Depart:    depart,
			Duration:  duration,
			Return:    3,
			KnowsPrev: true,
		}); err != nil {
			panic(err)
		}
		var sent int64
		for at, seq := depart+20, 0; at < depart+duration; at, seq = at+sendEvery, seq+1 {
			payload := seq
			sys.Schedule(at, func() {
				ctx.SendToMH(3, 0, payload, cost.CatAlgorithm)
				sent++
			})
		}
		if err := sys.Run(); err != nil {
			panic(err)
		}
		st := mgr.Stats()
		t.AddRow(int64(duration), strategy.Name(), sent, p.delivered,
			float64(p.delivered)/float64(sent),
			st.Expired, st.Lost, st.Transfers, st.SummariesSent)
	}

	for _, d := range durations {
		run(d, dtn.Park{})
		run(d, dtn.Epidemic{Every: 100})
		run(d, dtn.SprayAndWait{})
	}
	t.AddNote("host walks 0→1→2, disconnects in cell 2 at t=%d; cell 2 crashes at t=500 (and t=1800 for the longest episode), wiping parked custody", int64(depart))
	t.AddNote("park is the paper's disconnect protocol (one custodian); epidemic gossips summary vectors every 100 ticks; spray-and-wait splits copies toward recently visited cells")
	t.AddNote("TTL=1500 ticks: in the 2400-tick episode even replicated copies of early traffic expire before the host returns")
	t.AddNote("expired/lost count per-replica events, so replicating strategies can exceed the sent count; transfers+summaries are the replication cost")
	return t
}
