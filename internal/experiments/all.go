package experiments

import (
	"sync"
	"sync/atomic"
)

// tableFuncs lists every experiment in DESIGN.md index order. Each entry
// builds its own System from the seed alone, so the tables are fully
// independent and safe to generate concurrently.
func tableFuncs() []func(uint64) Table {
	return []func(uint64) Table{
		E1LamportCostVsN,
		E2LamportEnergy,
		E3LamportDisconnect,
		E4RingCostVsK,
		E5RingFairness,
		E6TokenList,
		E7RingDisconnect,
		E8GroupCostVsMobility,
		E9GroupLocality,
		E10GroupWireless,
		E11ProxyTraffic,
		A1SearchModes,
		A2Crossover,
		A3LazyInform,
		A4MulticastHandoff,
		D1StoreCarryForward,
	}
}

// All runs every experiment in the suite, in DESIGN.md index order. It is
// the sequential golden reference: AllParallel must produce byte-identical
// tables for any worker count.
func All(seed uint64) []Table {
	return AllParallel(seed, 1)
}

// AllParallel regenerates the full suite using up to workers goroutines.
//
// Determinism contract: every table is a pure function of its (experiment,
// seed) pair — each experiment constructs private Systems with private
// kernels and RNGs, shares no state with its siblings, and writes only its
// own result slot. Worker scheduling therefore cannot influence any table's
// content, and the result slice is always in DESIGN.md index order, so
// AllParallel(seed, w) == All(seed) for every w ≥ 1.
func AllParallel(seed uint64, workers int) []Table {
	fns := tableFuncs()
	out := make([]Table, len(fns))
	if workers > len(fns) {
		workers = len(fns)
	}
	if workers <= 1 {
		for i, fn := range fns {
			out[i] = fn(seed)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(fns) {
					return
				}
				out[i] = fns[i](seed)
			}
		}()
	}
	wg.Wait()
	return out
}

// ByID returns the experiment with the given id, or false.
func ByID(id string, seed uint64) (Table, bool) {
	funcs := map[string]func(uint64) Table{
		"E1":  E1LamportCostVsN,
		"E2":  E2LamportEnergy,
		"E3":  E3LamportDisconnect,
		"E4":  E4RingCostVsK,
		"E5":  E5RingFairness,
		"E6":  E6TokenList,
		"E7":  E7RingDisconnect,
		"E8":  E8GroupCostVsMobility,
		"E9":  E9GroupLocality,
		"E10": E10GroupWireless,
		"E11": E11ProxyTraffic,
		"A1":  A1SearchModes,
		"A2":  A2Crossover,
		"A3":  A3LazyInform,
		"A4":  A4MulticastHandoff,
		"D1":  D1StoreCarryForward,
		// F1 is addressable but not part of the default suite: its content
		// depends on the process-wide default fault plan, and the fault-free
		// tables must stay byte-identical with or without it compiled in.
		"F1": F1Unreliability,
	}
	fn, ok := funcs[id]
	if !ok {
		return Table{}, false
	}
	return fn(seed), true
}

// IDs lists the experiment ids in index order.
func IDs() []string {
	return []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "A1", "A2", "A3", "A4", "D1"}
}
