package experiments

// All runs every experiment in the suite, in DESIGN.md index order.
func All(seed uint64) []Table {
	return []Table{
		E1LamportCostVsN(seed),
		E2LamportEnergy(seed),
		E3LamportDisconnect(seed),
		E4RingCostVsK(seed),
		E5RingFairness(seed),
		E6TokenList(seed),
		E7RingDisconnect(seed),
		E8GroupCostVsMobility(seed),
		E9GroupLocality(seed),
		E10GroupWireless(seed),
		E11ProxyTraffic(seed),
		A1SearchModes(seed),
		A2Crossover(seed),
		A3LazyInform(seed),
		A4MulticastHandoff(seed),
	}
}

// ByID returns the experiment with the given id, or false.
func ByID(id string, seed uint64) (Table, bool) {
	funcs := map[string]func(uint64) Table{
		"E1":  E1LamportCostVsN,
		"E2":  E2LamportEnergy,
		"E3":  E3LamportDisconnect,
		"E4":  E4RingCostVsK,
		"E5":  E5RingFairness,
		"E6":  E6TokenList,
		"E7":  E7RingDisconnect,
		"E8":  E8GroupCostVsMobility,
		"E9":  E9GroupLocality,
		"E10": E10GroupWireless,
		"E11": E11ProxyTraffic,
		"A1":  A1SearchModes,
		"A2":  A2Crossover,
		"A3":  A3LazyInform,
		"A4":  A4MulticastHandoff,
	}
	fn, ok := funcs[id]
	if !ok {
		return Table{}, false
	}
	return fn(seed), true
}

// IDs lists the experiment ids in index order.
func IDs() []string {
	return []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "A1", "A2", "A3", "A4"}
}
