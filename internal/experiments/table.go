// Package experiments regenerates every comparison in the paper's
// evaluation (Sections 3–5) from executed protocol runs, pairing each
// measured value with the paper's closed-form expression. The experiment
// ids (E1–E11, A1–A2) are indexed in DESIGN.md; cmd/mobilexp renders them
// and EXPERIMENTS.md records the outcomes.
package experiments

import (
	"fmt"
	"strconv"
	"strings"
)

// Table is one experiment's result: a caption, aligned columns, and notes
// interpreting the shape the paper predicts.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row, formatting each value.
func (t *Table) AddRow(vals ...any) {
	if len(vals) != len(t.Columns) {
		panic(fmt.Sprintf("experiments: row with %d values for %d columns in %s", len(vals), len(t.Columns), t.ID))
	}
	row := make([]string, len(vals))
	for i, v := range vals {
		row[i] = formatCell(v)
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends an interpretation note.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

func formatCell(v any) string {
	switch x := v.(type) {
	case string:
		return x
	case float64:
		if x == float64(int64(x)) && x < 1e12 && x > -1e12 {
			return strconv.FormatInt(int64(x), 10)
		}
		return strconv.FormatFloat(x, 'f', 2, 64)
	case int:
		return strconv.Itoa(x)
	case int64:
		return strconv.FormatInt(x, 10)
	case bool:
		if x {
			return "yes"
		}
		return "no"
	default:
		return fmt.Sprint(v)
	}
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	rule := make([]string, len(t.Columns))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	writeRow(rule)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavoured markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	return b.String()
}
