package experiments

import (
	"fmt"

	"mobiledist/internal/core"
	"mobiledist/internal/cost"
	"mobiledist/internal/group"
	"mobiledist/internal/sim"
	"mobiledist/internal/workload"
)

// groupStrategy names the three §4 strategies.
type groupStrategy int

const (
	stratPureSearch groupStrategy = iota + 1
	stratAlwaysInform
	stratLocationView
)

func (s groupStrategy) String() string {
	switch s {
	case stratPureSearch:
		return "pure search"
	case stratAlwaysInform:
		return "always inform"
	case stratLocationView:
		return "location view"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// groupTrialResult carries the measurements of one strategy under one
// workload.
type groupTrialResult struct {
	effectiveCost float64 // (algorithm + location cost) per group message
	algCost       float64
	locCost       float64
	staleCost     float64
	fixedPerMsg   float64
	wirelessPer   float64
	searchesPer   float64
	delivered     int64
	moves         int64
	msgs          int64
	lvMax         int
	lvUpdates     int64
	f             float64 // significant fraction of moves
}

// groupTrial runs one strategy under a workload of msgs group messages and
// movesPerMember moves per member.
func groupTrial(seed uint64, m, n, g int, strat groupStrategy, msgs, movesPerMember int, locality float64, window sim.Time) groupTrialResult {
	cfg := core.DefaultConfig(m, n)
	cfg.Seed = seed
	sys := core.MustNewSystem(cfg)

	members := mhRange(g)
	var comm group.Comm
	var lv *group.LocationView
	switch strat {
	case stratPureSearch:
		ps, err := group.NewPureSearch(sys, members, group.Options{})
		if err != nil {
			panic(err)
		}
		comm = ps
	case stratAlwaysInform:
		ai, err := group.NewAlwaysInform(sys, members, group.Options{})
		if err != nil {
			panic(err)
		}
		comm = ai
	case stratLocationView:
		var err error
		lv, err = group.NewLocationView(sys, members, group.LocationViewOptions{
			Coordinator:   core.MSSID(m - 1),
			CombineWindow: 200,
		})
		if err != nil {
			panic(err)
		}
		comm = lv
	}

	var mob *workload.Mobility
	if movesPerMember > 0 {
		var err error
		mob, err = workload.NewMobility(sys, workload.MobilityConfig{
			MHs:        members,
			Interval:   workload.Span{Min: window / sim.Time(movesPerMember+1) / 2, Max: window / sim.Time(movesPerMember+1)},
			MovesPerMH: movesPerMember,
			Locality:   locality,
			Start:      100,
		})
		if err != nil {
			panic(err)
		}
	}
	tr, err := workload.NewTraffic(sys, workload.TrafficConfig{
		Senders:  members,
		Interval: workload.FixedSpan(window / sim.Time(msgs+1)),
		Messages: msgs,
		Start:    200,
	}, func(mh core.MHID, payload any) error { return comm.Send(mh, payload) })
	if err != nil {
		panic(err)
	}
	if err := sys.Run(); err != nil {
		panic(err)
	}

	p := cfg.Params
	res := groupTrialResult{
		algCost:     sys.Meter().CategoryCost(cost.CatAlgorithm, p),
		locCost:     sys.Meter().CategoryCost(cost.CatLocation, p),
		staleCost:   sys.Meter().CategoryCost(cost.CatStale, p),
		delivered:   comm.Delivered(),
		msgs:        tr.Sent(),
		fixedPerMsg: float64(sys.Meter().Count(cost.CatAlgorithm, cost.KindFixed)) / float64(tr.Sent()),
		wirelessPer: float64(sys.Meter().Count(cost.CatAlgorithm, cost.KindWireless)) / float64(tr.Sent()),
		searchesPer: float64(sys.Meter().Count(cost.CatAlgorithm, cost.KindSearch)) / float64(tr.Sent()),
	}
	if mob != nil {
		res.moves = mob.Moves()
	}
	res.effectiveCost = (res.algCost + res.locCost) / float64(res.msgs)
	if lv != nil {
		res.lvMax = lv.MaxViewSize()
		res.lvUpdates = lv.Updates()
		if res.moves > 0 {
			res.f = float64(lv.Updates()) / float64(res.moves)
		}
	}
	return res
}

// E8GroupCostVsMobility reproduces the §4 effective-cost comparison: pure
// search is flat in mobility, always-inform grows with MOB/MSG, and
// location view grows only with the significant fraction f of MOB/MSG.
func E8GroupCostVsMobility(seed uint64) Table {
	const (
		m      = 10
		n      = 20
		g      = 10
		msgs   = 20
		window = 200_000
	)
	t := Table{
		ID:    "E8",
		Title: "Effective cost per group message vs mobility-to-message ratio (M=10, |G|=10, 20 msgs)",
		Columns: []string{
			"MOB/MSG", "pure search", "AI paper", "AI measured", "LV bound", "LV measured", "LV f",
		},
	}
	p := cost.DefaultParams()
	for _, ratio := range []float64{0, 0.5, 1, 2, 5} {
		movesPerMember := int(ratio * msgs / g)
		ps := groupTrial(seed, m, n, g, stratPureSearch, msgs, movesPerMember, 0.3, window)
		ai := groupTrial(seed, m, n, g, stratAlwaysInform, msgs, movesPerMember, 0.3, window)
		lv := groupTrial(seed, m, n, g, stratLocationView, msgs, movesPerMember, 0.3, window)
		mobPerMsg := float64(ai.moves) / float64(ai.msgs)
		lvBound := cost.AnalyticLocationViewEffectiveBound(g, lv.lvMax, lv.f, float64(lv.moves)/float64(lv.msgs), p)
		t.AddRow(
			fmt.Sprintf("%.2f", mobPerMsg),
			ps.effectiveCost,
			cost.AnalyticAlwaysInformEffective(g, mobPerMsg, p),
			ai.effectiveCost,
			lvBound,
			lv.effectiveCost,
			fmt.Sprintf("%.2f", lv.f),
		)
	}
	t.AddNote("pure search: MSG x (|G|-1)(2Cw+Cs), independent of MOB; always inform adds a same-priced update per move; location view pays only for significant moves")
	return t
}

// E9GroupLocality reproduces the §4.3 locality argument: the static-tier
// traffic of a location-view group message tracks |LV(G)|, not |G|.
func E9GroupLocality(seed uint64) Table {
	const (
		m    = 10
		n    = 20
		g    = 10
		msgs = 10
	)
	t := Table{
		ID:    "E9",
		Title: "Fixed-network messages per group message vs member concentration (M=10, |G|=10)",
		Columns: []string{
			"cells (|LV|)", "LV fixed/msg", "AI fixed/msg", "PS searches/msg", "LV cost", "AI cost", "PS cost",
		},
	}
	for _, cells := range []int{1, 2, 5, 10} {
		c := cells
		place := func(mh core.MHID) core.MSSID {
			if int(mh) < g {
				return core.MSSID(int(mh) % c)
			}
			return core.MSSID(int(mh) % m)
		}
		run := func(strat groupStrategy) groupTrialResult {
			cfg := core.DefaultConfig(m, n)
			cfg.Seed = seed
			cfg.Placement = place
			sys := core.MustNewSystem(cfg)
			members := mhRange(g)
			var comm group.Comm
			switch strat {
			case stratPureSearch:
				ps, err := group.NewPureSearch(sys, members, group.Options{})
				if err != nil {
					panic(err)
				}
				comm = ps
			case stratAlwaysInform:
				ai, err := group.NewAlwaysInform(sys, members, group.Options{})
				if err != nil {
					panic(err)
				}
				comm = ai
			case stratLocationView:
				lv, err := group.NewLocationView(sys, members, group.LocationViewOptions{Coordinator: core.MSSID(m - 1)})
				if err != nil {
					panic(err)
				}
				comm = lv
			}
			for i := 0; i < msgs; i++ {
				from := core.MHID(i % g)
				sys.Schedule(sim.Time(i)*5_000, func() {
					if err := comm.Send(from, i); err != nil {
						panic(err)
					}
				})
			}
			if err := sys.Run(); err != nil {
				panic(err)
			}
			p := cfg.Params
			return groupTrialResult{
				effectiveCost: sys.Meter().CategoryCost(cost.CatAlgorithm, p) / float64(msgs),
				fixedPerMsg:   float64(sys.Meter().Count(cost.CatAlgorithm, cost.KindFixed)) / float64(msgs),
				searchesPer:   float64(sys.Meter().Count(cost.CatAlgorithm, cost.KindSearch)) / float64(msgs),
			}
		}
		lv := run(stratLocationView)
		ai := run(stratAlwaysInform)
		ps := run(stratPureSearch)
		t.AddRow(
			cells,
			lv.fixedPerMsg,
			ai.fixedPerMsg,
			ps.searchesPer,
			lv.effectiveCost,
			ai.effectiveCost,
			ps.effectiveCost,
		)
	}
	t.AddNote("location view sends |LV|-1 fixed messages per group message; search/inform strategies send one per member (|G|-1) regardless of concentration")
	return t
}

// E10GroupWireless reproduces the §4.3 battery comparison: a location-view
// group message touches the wireless link |G| times; the per-member
// strategies touch it 2(|G|−1) times.
func E10GroupWireless(seed uint64) Table {
	const (
		m    = 8
		n    = 16
		g    = 8
		msgs = 10
	)
	t := Table{
		ID:      "E10",
		Title:   "Wireless messages (battery) per group message by strategy (M=8, |G|=8)",
		Columns: []string{"strategy", "paper", "measured", "sender tx per msg"},
	}
	for _, strat := range []groupStrategy{stratPureSearch, stratAlwaysInform, stratLocationView} {
		res := groupTrial(seed, m, n, g, strat, msgs, 0, 0, 100_000)
		paper := int64(2 * (g - 1))
		txPerMsg := float64(g - 1)
		if strat == stratLocationView {
			paper = g
			txPerMsg = 1
		}
		t.AddRow(strat.String(), paper, res.wirelessPer, txPerMsg)
	}
	t.AddNote("location view: one uplink plus |G|-1 downlinks; the others transmit a separate copy per member over the sender's wireless link")
	return t
}
