package experiments

import (
	"fmt"

	"mobiledist/internal/core"
	"mobiledist/internal/cost"
	"mobiledist/internal/mutex/ring"
)

// E4RingCostVsK reproduces the §3.1.2 traversal-cost comparison: R1's
// traversal cost is independent of the number K of requests granted, while
// R2 pays per grant plus a fixed M·Cfixed circulation cost.
func E4RingCostVsK(seed uint64) Table {
	const (
		m = 6
		n = 30
	)
	t := Table{
		ID:      "E4",
		Title:   "R1 vs R2: cost of one ring traversal granting K requests (M=6, N=30)",
		Columns: []string{"K", "R1 paper", "R1 measured", "R2 paper", "R2 measured", "winner"},
	}
	p := cost.DefaultParams()
	crossover := cost.RingCrossoverK(n, m, n, p)
	for _, k := range []int{0, 2, 5, 10, 20, 30} {
		r1 := ringTrialR1(seed, m, n, k)
		r2 := ringTrialR2(seed, m, n, k)
		winner := "R2"
		if r1 < r2 {
			winner = "R1"
		}
		t.AddRow(
			k,
			cost.AnalyticR1PerTraversal(n, p),
			r1,
			cost.AnalyticR2PerTraversal(m, k, p),
			r2,
			winner,
		)
	}
	if crossover >= 0 {
		t.AddNote("analytic crossover at K=%d: beyond it R1's flat traversal amortises better", crossover)
	} else {
		t.AddNote("R2 is cheaper for every feasible K in this configuration")
	}
	t.AddNote("paper: R1 = N(2Cw+Cs) independent of K; R2 = K(3Cw+Cf+Cs) + M*Cf")
	return t
}

func ringTrialR1(seed uint64, m, n, k int) float64 {
	cfg := core.DefaultConfig(m, n)
	cfg.Seed = seed
	sys := core.MustNewSystem(cfg)
	r1, err := ring.NewR1(sys, mhRange(n), ring.Options{Hold: 3}, false, 1)
	if err != nil {
		panic(err)
	}
	for i := 0; i < k; i++ {
		if err := r1.Request(core.MHID(i)); err != nil {
			panic(err)
		}
	}
	if err := r1.Start(); err != nil {
		panic(err)
	}
	if err := sys.Run(); err != nil {
		panic(err)
	}
	if got := r1.Grants(); got != int64(k) {
		panic(fmt.Sprintf("experiments: R1 granted %d, want %d", got, k))
	}
	return sys.Meter().CategoryCost(cost.CatAlgorithm, cfg.Params)
}

func ringTrialR2(seed uint64, m, n, k int) float64 {
	cfg := core.DefaultConfig(m, n)
	cfg.Seed = seed
	sys := core.MustNewSystem(cfg)
	r2, err := ring.NewR2(sys, ring.VariantPlain, ring.Options{Hold: 3}, 1, nil)
	if err != nil {
		panic(err)
	}
	for i := 0; i < k; i++ {
		if err := r2.Request(core.MHID(i)); err != nil {
			panic(err)
		}
	}
	// Let requests reach their MSSs before the token starts.
	sys.Schedule(500, func() {
		if err := r2.Start(); err != nil {
			panic(err)
		}
	})
	if err := sys.Run(); err != nil {
		panic(err)
	}
	if got := r2.Grants(); got != int64(k) {
		panic(fmt.Sprintf("experiments: R2 granted %d, want %d", got, k))
	}
	return sys.Meter().CategoryCost(cost.CatAlgorithm, cfg.Params)
}

// chasingTrial runs an R2-family variant against a token-chasing MH that
// re-requests from the token's next cell after every access. It returns the
// total grants to the chaser and the maximum grants it obtained within a
// single traversal.
func chasingTrial(seed uint64, m int, variant ring.Variant, lie bool, traversals int64) (total, maxPerTraversal int64) {
	const n = 4
	cfg := core.DefaultConfig(m, n)
	cfg.Seed = seed
	sys := core.MustNewSystem(cfg)

	perTraversal := make(map[int64]int64)
	var r2 *ring.R2
	opts := ring.Options{Hold: 2}
	opts.OnEnter = func(mh core.MHID) {
		if mh != 0 {
			return
		}
		perTraversal[r2.Traversals()]++
	}
	opts.OnExit = func(mh core.MHID) {
		if mh != 0 {
			return
		}
		at, status := sys.Where(mh)
		if status != core.StatusConnected {
			return
		}
		next := core.MSSID((int(at) + 1) % m)
		if err := sys.Move(mh, next); err == nil {
			sys.Schedule(1, func() { _ = r2.Request(mh) })
		}
	}
	var lieFn func(core.MHID) bool
	if lie {
		lieFn = func(mh core.MHID) bool { return mh == 0 }
	}
	var err error
	r2, err = ring.NewR2(sys, variant, opts, traversals, lieFn)
	if err != nil {
		panic(err)
	}
	if err := r2.Request(core.MHID(0)); err != nil {
		panic(err)
	}
	sys.Schedule(100, func() {
		if err := r2.Start(); err != nil {
			panic(err)
		}
	})
	if err := sys.Run(); err != nil {
		panic(err)
	}
	for _, g := range perTraversal {
		total += g
		if g > maxPerTraversal {
			maxPerTraversal = g
		}
	}
	return total, maxPerTraversal
}

// E5RingFairness reproduces the §3.1.2 interplay between host mobility and
// token movement: under R2 a MH that follows the token can be served many
// times in one traversal (up to N×M system-wide); R2′'s token-val bounds it
// to one access per traversal.
func E5RingFairness(seed uint64) Table {
	const (
		m      = 6
		rounds = 8
	)
	t := Table{
		ID:      "E5",
		Title:   "R2 vs R2': accesses obtained by a token-chasing MH (M=6, 8 traversals)",
		Columns: []string{"variant", "chaser grants", "max in one traversal", "paper bound per traversal"},
	}
	for _, v := range []ring.Variant{ring.VariantPlain, ring.VariantCounter} {
		total, maxPer := chasingTrial(seed, m, v, false, rounds)
		bound := "M = 6"
		if v == ring.VariantCounter {
			bound = "1"
		}
		t.AddRow(v.String(), total, maxPer, bound)
	}
	t.AddNote("R2 trades fairness for throughput; R2' ensures at most one access per MH per traversal")
	return t
}

// E6TokenList reproduces the §3.1.2 "variations" argument: a malicious MH
// that reports access-count 0 defeats R2′ but not R2″'s token-list.
func E6TokenList(seed uint64) Table {
	const (
		m      = 6
		rounds = 8
	)
	t := Table{
		ID:      "E6",
		Title:   "R2' vs R2'': accesses obtained by a malicious (under-reporting) chaser (M=6, 8 traversals)",
		Columns: []string{"variant", "liar grants", "max in one traversal", "robust"},
	}
	for _, v := range []ring.Variant{ring.VariantCounter, ring.VariantList} {
		total, maxPer := chasingTrial(seed, m, v, true, rounds)
		t.AddRow(v.String(), total, maxPer, maxPer <= 1)
	}
	t.AddNote("the token-list grants a MH again only after the token has revisited the granting MSS")
	return t
}

// E7RingDisconnect reproduces the §3.1.2 doze/disconnection comparison: R1
// interrupts every MH (dozing or not) and stalls on a disconnected member;
// R2 interrupts only prior requesters and skips disconnected ones.
func E7RingDisconnect(seed uint64) Table {
	const (
		m = 5
		n = 20
	)
	t := Table{
		ID:      "E7",
		Title:   "R1 vs R2: doze interruptions and disconnection tolerance (M=5, N=20, 1 requester, 1 disconnected)",
		Columns: []string{"algorithm", "doze interruptions", "stalled", "grants"},
	}

	// R1: all MHs doze, mh3 requests, mh10 disconnects.
	{
		cfg := core.DefaultConfig(m, n)
		cfg.Seed = seed
		sys := core.MustNewSystem(cfg)
		r1, err := ring.NewR1(sys, mhRange(n), ring.Options{Hold: 3}, false, 2)
		if err != nil {
			panic(err)
		}
		for i := 0; i < n; i++ {
			sys.SetDoze(core.MHID(i), true)
		}
		if err := sys.Disconnect(core.MHID(10)); err != nil {
			panic(err)
		}
		if err := r1.Request(core.MHID(3)); err != nil {
			panic(err)
		}
		sys.Schedule(100, func() {
			if err := r1.Start(); err != nil {
				panic(err)
			}
		})
		if err := sys.Run(); err != nil {
			panic(err)
		}
		t.AddRow("R1", sys.Stats().DozeInterruptions, r1.Stalled(), r1.Grants())
	}

	// R2': same scenario; the disconnected MH also had a pending request so
	// the token must skip it.
	{
		cfg := core.DefaultConfig(m, n)
		cfg.Seed = seed
		sys := core.MustNewSystem(cfg)
		r2, err := ring.NewR2(sys, ring.VariantCounter, ring.Options{Hold: 3}, 2, nil)
		if err != nil {
			panic(err)
		}
		for i := 0; i < n; i++ {
			sys.SetDoze(core.MHID(i), true)
		}
		if err := r2.Request(core.MHID(3)); err != nil {
			panic(err)
		}
		if err := r2.Request(core.MHID(10)); err != nil {
			panic(err)
		}
		sys.Schedule(50, func() {
			if err := sys.Disconnect(core.MHID(10)); err != nil {
				panic(err)
			}
		})
		sys.Schedule(200, func() {
			if err := r2.Start(); err != nil {
				panic(err)
			}
		})
		if err := sys.Run(); err != nil {
			panic(err)
		}
		t.AddRow("R2'", sys.Stats().DozeInterruptions, false, r2.Grants())
	}
	t.AddNote("R1 wakes every dozing MH once per traversal; R2 touches only MHs with prior requests and returns the token past disconnected requesters")
	return t
}
