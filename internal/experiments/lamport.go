package experiments

import (
	"fmt"

	"mobiledist/internal/core"
	"mobiledist/internal/cost"
	"mobiledist/internal/mutex/lamport"
	"mobiledist/internal/sim"
)

// lamportExecCost runs reps sequential executions of the given mutual
// exclusion variant and returns the measured algorithm cost and wireless
// message count per execution.
func lamportExecCost(seed uint64, m, n, reps int, useL1 bool) (perExec float64, wirelessPerExec float64, energyPerExec float64) {
	cfg := core.DefaultConfig(m, n)
	cfg.Seed = seed
	sys := core.MustNewSystem(cfg)

	issue := func(mh core.MHID) error { return nil }
	if useL1 {
		l1, err := lamport.NewL1(sys, mhRange(n), lamport.Options{Hold: 5})
		if err != nil {
			panic(err)
		}
		issue = l1.Request
	} else {
		l2 := lamport.NewL2(sys, lamport.Options{Hold: 5})
		issue = l2.Request
	}

	// Sequential executions from distinct requesters, spaced far enough
	// apart that each completes before the next begins.
	for i := 0; i < reps; i++ {
		mh := core.MHID(i % n)
		sys.Schedule(sim.Time(i)*10_000, func() {
			if err := issue(mh); err != nil {
				panic(fmt.Sprintf("experiments: request: %v", err))
			}
		})
	}
	if err := sys.Run(); err != nil {
		panic(fmt.Sprintf("experiments: run: %v", err))
	}
	p := cfg.Params
	total := sys.Meter().CategoryCost(cost.CatAlgorithm, p)
	wireless := sys.Meter().Count(cost.CatAlgorithm, cost.KindWireless)
	tx, rx := sys.Meter().TotalEnergy()
	return total / float64(reps), float64(wireless) / float64(reps), float64(tx+rx) / float64(reps)
}

func mhRange(n int) []core.MHID {
	out := make([]core.MHID, n)
	for i := range out {
		out[i] = core.MHID(i)
	}
	return out
}

// E1LamportCostVsN reproduces the §3.1.1 comparison: L1's per-execution
// cost grows linearly in N while L2's is constant in N.
func E1LamportCostVsN(seed uint64) Table {
	const (
		m    = 8
		reps = 4
	)
	t := Table{
		ID:      "E1",
		Title:   "L1 vs L2: total cost per mutual-exclusion execution vs N (M=8)",
		Columns: []string{"N", "L1 paper", "L1 measured", "L2 paper", "L2 measured", "L2 advantage"},
	}
	p := cost.DefaultParams()
	for _, n := range []int{4, 8, 16, 32, 64} {
		l1, _, _ := lamportExecCost(seed, m, n, reps, true)
		l2, _, _ := lamportExecCost(seed, m, n, reps, false)
		t.AddRow(
			n,
			cost.AnalyticL1PerExecution(n, p),
			l1,
			cost.AnalyticL2PerExecution(m, p),
			l2,
			fmt.Sprintf("%.1fx", l1/l2),
		)
	}
	t.AddNote("paper: L1 = 3(N-1)(2Cw+Cs) grows with N; L2 = 3Cw+Cf+Cs+3(M-1)Cf is constant in N")
	return t
}

// E2LamportEnergy reproduces the §3.1.1 battery argument: L1 costs 6(N−1)
// wireless messages per execution across the MHs, L2 exactly 3.
func E2LamportEnergy(seed uint64) Table {
	const (
		m    = 8
		reps = 4
	)
	t := Table{
		ID:      "E2",
		Title:   "L1 vs L2: wireless messages (battery) per execution vs N (M=8)",
		Columns: []string{"N", "L1 paper", "L1 measured", "L2 paper", "L2 measured"},
	}
	for _, n := range []int{4, 8, 16, 32, 64} {
		_, _, e1 := lamportExecCost(seed, m, n, reps, true)
		_, _, e2 := lamportExecCost(seed, m, n, reps, false)
		t.AddRow(
			n,
			cost.AnalyticL1WirelessPerExecution(n),
			e1,
			cost.AnalyticL2WirelessPerExecution(),
			e2,
		)
	}
	t.AddNote("energy counts wireless transmissions plus receptions at MHs; L2's 3 messages touch a MH endpoint 3 times (init tx, grant rx, release tx) plus nothing else")
	return t
}

// E3LamportDisconnect reproduces the §3.1.1 disconnection argument: L1
// provides no progress once any participant disconnects, while L2 is
// unaffected unless the requester itself is gone.
func E3LamportDisconnect(seed uint64) Table {
	const (
		m        = 6
		n        = 20
		deadline = 2_000_000
	)
	t := Table{
		ID:      "E3",
		Title:   "L1 vs L2: grants completed with a fraction of MHs disconnected (M=6, N=20)",
		Columns: []string{"disconnected", "requests", "L1 grants", "L2 grants", "L2 aborted"},
	}
	for _, frac := range []float64{0, 0.1, 0.25, 0.5} {
		down := int(frac * n)
		l1Grants := runDisconnectTrial(seed, m, n, down, deadline, true, nil)
		var aborted int64
		l2Grants := runDisconnectTrial(seed, m, n, down, deadline, false, &aborted)
		t.AddRow(
			fmt.Sprintf("%d/%d", down, n),
			n-down,
			l1Grants,
			l2Grants,
			aborted,
		)
	}
	t.AddNote("every connected MH issues one request; disconnected MHs never reply in L1, stalling all executions")
	return t
}

func runDisconnectTrial(seed uint64, m, n, down int, deadline sim.Time, useL1 bool, aborted *int64) int64 {
	cfg := core.DefaultConfig(m, n)
	cfg.Seed = seed
	sys := core.MustNewSystem(cfg)

	var grants func() int64
	var issue func(core.MHID) error
	var l2 *lamport.L2
	if useL1 {
		l1, err := lamport.NewL1(sys, mhRange(n), lamport.Options{Hold: 5})
		if err != nil {
			panic(err)
		}
		grants = l1.Grants
		issue = l1.Request
	} else {
		l2 = lamport.NewL2(sys, lamport.Options{Hold: 5})
		grants = l2.Grants
		issue = l2.Request
	}

	// The last `down` MHs disconnect before any requests are issued.
	for i := n - down; i < n; i++ {
		if err := sys.Disconnect(core.MHID(i)); err != nil {
			panic(err)
		}
	}
	for i := 0; i < n-down; i++ {
		mh := core.MHID(i)
		sys.Schedule(sim.Time(100+i*37), func() {
			// Requests from connected MHs only.
			if _, st := sys.Where(mh); st != core.StatusConnected {
				return
			}
			_ = issue(mh)
		})
	}
	if err := sys.RunUntil(deadline); err != nil {
		panic(err)
	}
	if aborted != nil && l2 != nil {
		*aborted = l2.FailedGrants()
	}
	return grants()
}
