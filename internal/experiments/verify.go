package experiments

import (
	"fmt"
	"strconv"
	"strings"
)

// Verify runs every experiment across `seeds` different seeds and checks,
// generically, that each "<x> measured" column equals its "<x> paper"
// column in every row — i.e. the paper's closed forms hold not just for the
// published seed but for any workload randomisation. Columns representing
// bounds ("LV bound" vs "LV measured") are checked as inequalities.
//
// It returns a summary table: one row per experiment with the number of
// paper/measured cells compared and any mismatches found.
func Verify(seeds int) Table {
	if seeds < 1 {
		seeds = 1
	}
	out := Table{
		ID:      "V0",
		Title:   fmt.Sprintf("Verification sweep: paper vs measured across %d seeds", seeds),
		Columns: []string{"experiment", "cells compared", "mismatches", "holds"},
	}
	for _, id := range IDs() {
		var compared, mismatches int
		for s := 1; s <= seeds; s++ {
			tab, ok := ByID(id, uint64(s))
			if !ok {
				continue
			}
			c, m := checkTable(tab)
			compared += c
			mismatches += m
		}
		out.AddRow(id, compared, mismatches, mismatches == 0)
	}
	out.AddNote("\"paper\" columns are the ICDCS'94 closed forms; \"measured\" are live protocol message counts; bound columns are checked as inequalities")
	return out
}

// checkTable compares paper/measured column pairs in one table. It returns
// how many cells were compared and how many mismatched.
func checkTable(tab Table) (compared, mismatches int) {
	type pair struct {
		paper, measured int
		bound           bool
	}
	var pairs []pair
	for i, col := range tab.Columns {
		base, kind := splitColumn(col)
		if kind != "paper" && kind != "bound" {
			continue
		}
		for j, other := range tab.Columns {
			b2, k2 := splitColumn(other)
			if b2 == base && k2 == "measured" {
				pairs = append(pairs, pair{paper: i, measured: j, bound: kind == "bound"})
			}
		}
	}
	for _, row := range tab.Rows {
		for _, p := range pairs {
			paper, err1 := parseNumeric(row[p.paper])
			measured, err2 := parseNumeric(row[p.measured])
			if err1 != nil || err2 != nil {
				continue // non-numeric cell (e.g. "M = 6"); skip
			}
			compared++
			if p.bound {
				if measured > paper {
					mismatches++
				}
			} else if paper != measured {
				mismatches++
			}
		}
	}
	return compared, mismatches
}

// splitColumn separates "L1 measured" into ("L1", "measured"). Columns
// without a recognised suffix return kind "".
func splitColumn(col string) (base, kind string) {
	for _, k := range []string{"paper", "measured", "bound"} {
		if strings.HasSuffix(col, " "+k) {
			return strings.TrimSuffix(col, " "+k), k
		}
	}
	return col, ""
}

func parseNumeric(cell string) (float64, error) {
	return strconv.ParseFloat(strings.TrimSuffix(strings.TrimSpace(cell), "x"), 64)
}
