package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// cell parses a numeric table cell.
func cell(t *testing.T, tab Table, row int, col string) float64 {
	t.Helper()
	idx := -1
	for i, c := range tab.Columns {
		if c == col {
			idx = i
			break
		}
	}
	if idx < 0 {
		t.Fatalf("%s has no column %q (have %v)", tab.ID, col, tab.Columns)
	}
	v, err := strconv.ParseFloat(strings.TrimSuffix(tab.Rows[row][col2idx(tab, col)], "x"), 64)
	if err != nil {
		t.Fatalf("%s row %d col %s: %v", tab.ID, row, col, err)
	}
	_ = idx
	return v
}

func col2idx(tab Table, col string) int {
	for i, c := range tab.Columns {
		if c == col {
			return i
		}
	}
	return -1
}

func TestE1MeasuredMatchesPaperAndShape(t *testing.T) {
	tab := E1LamportCostVsN(1)
	if len(tab.Rows) < 3 {
		t.Fatalf("too few rows: %d", len(tab.Rows))
	}
	var prevL1 float64
	for i := range tab.Rows {
		l1p := cell(t, tab, i, "L1 paper")
		l1m := cell(t, tab, i, "L1 measured")
		l2p := cell(t, tab, i, "L2 paper")
		l2m := cell(t, tab, i, "L2 measured")
		if l1p != l1m {
			t.Errorf("row %d: L1 measured %v != paper %v", i, l1m, l1p)
		}
		if l2p != l2m {
			t.Errorf("row %d: L2 measured %v != paper %v", i, l2m, l2p)
		}
		if l1m <= prevL1 {
			t.Errorf("row %d: L1 cost not growing with N", i)
		}
		prevL1 = l1m
		if i > 0 && l2m != cell(t, tab, 0, "L2 measured") {
			t.Errorf("row %d: L2 cost varies with N", i)
		}
		if l2m >= l1m {
			t.Errorf("row %d: L2 (%v) not cheaper than L1 (%v)", i, l2m, l1m)
		}
	}
}

func TestE2EnergyShape(t *testing.T) {
	tab := E2LamportEnergy(1)
	for i := range tab.Rows {
		if got, want := cell(t, tab, i, "L1 measured"), cell(t, tab, i, "L1 paper"); got != want {
			t.Errorf("row %d: L1 energy %v != %v", i, got, want)
		}
		if got := cell(t, tab, i, "L2 measured"); got != 3 {
			t.Errorf("row %d: L2 energy %v != 3", i, got)
		}
	}
}

func TestE3DisconnectShape(t *testing.T) {
	tab := E3LamportDisconnect(1)
	// Row 0: no disconnects — both algorithms serve everything.
	if l1 := cell(t, tab, 0, "L1 grants"); l1 != cell(t, tab, 0, "requests") {
		t.Errorf("baseline L1 grants %v != requests", l1)
	}
	for i := 1; i < len(tab.Rows); i++ {
		if l1 := cell(t, tab, i, "L1 grants"); l1 != 0 {
			t.Errorf("row %d: L1 grants = %v, want 0 (stalled)", i, l1)
		}
		if l2, req := cell(t, tab, i, "L2 grants"), cell(t, tab, i, "requests"); l2 != req {
			t.Errorf("row %d: L2 grants %v != requests %v", i, l2, req)
		}
	}
}

func TestE4RingShape(t *testing.T) {
	tab := E4RingCostVsK(1)
	r1 := cell(t, tab, 0, "R1 measured")
	for i := range tab.Rows {
		if got := cell(t, tab, i, "R1 measured"); got != r1 {
			t.Errorf("row %d: R1 cost varies with K (%v vs %v)", i, got, r1)
		}
		if got, want := cell(t, tab, i, "R2 measured"), cell(t, tab, i, "R2 paper"); got != want {
			t.Errorf("row %d: R2 measured %v != paper %v", i, got, want)
		}
		if got, want := cell(t, tab, i, "R1 measured"), cell(t, tab, i, "R1 paper"); got != want {
			t.Errorf("row %d: R1 measured %v != paper %v", i, got, want)
		}
	}
	// R2 must win for small K and lose past the crossover.
	if cell(t, tab, 0, "R2 measured") >= r1 {
		t.Error("R2 not cheaper at K=0")
	}
	last := len(tab.Rows) - 1
	if cell(t, tab, last, "R2 measured") <= r1 {
		t.Error("R1 not cheaper at the largest K (crossover missing)")
	}
}

func TestE5FairnessShape(t *testing.T) {
	tab := E5RingFairness(1)
	if got := cell(t, tab, 0, "max in one traversal"); got <= 1 {
		t.Errorf("R2 chaser max per traversal = %v, want > 1", got)
	}
	if got := cell(t, tab, 1, "max in one traversal"); got > 1 {
		t.Errorf("R2' chaser max per traversal = %v, want <= 1", got)
	}
}

func TestE6MaliciousShape(t *testing.T) {
	tab := E6TokenList(1)
	if got := cell(t, tab, 0, "max in one traversal"); got <= 1 {
		t.Errorf("R2' liar max per traversal = %v, want > 1 (counter defeated)", got)
	}
	if got := cell(t, tab, 1, "max in one traversal"); got > 1 {
		t.Errorf("R2'' liar max per traversal = %v, want <= 1", got)
	}
}

func TestE7DozeShape(t *testing.T) {
	tab := E7RingDisconnect(1)
	r1Doze := cell(t, tab, 0, "doze interruptions")
	r2Doze := cell(t, tab, 1, "doze interruptions")
	if r1Doze <= r2Doze {
		t.Errorf("R1 doze interruptions (%v) not greater than R2's (%v)", r1Doze, r2Doze)
	}
	if tab.Rows[0][col2idx(tab, "stalled")] != "yes" {
		t.Error("R1 did not stall")
	}
	if tab.Rows[1][col2idx(tab, "stalled")] != "no" {
		t.Error("R2 stalled")
	}
	if got := cell(t, tab, 1, "grants"); got != 1 {
		t.Errorf("R2 grants = %v, want 1", got)
	}
}

func TestE8GroupMobilityShape(t *testing.T) {
	tab := E8GroupCostVsMobility(1)
	ps0 := cell(t, tab, 0, "pure search")
	var prevAI float64
	for i := range tab.Rows {
		if got := cell(t, tab, i, "pure search"); got != ps0 {
			t.Errorf("row %d: pure-search cost varies with mobility (%v vs %v)", i, got, ps0)
		}
		ai := cell(t, tab, i, "AI measured")
		if ai < prevAI {
			t.Errorf("row %d: always-inform cost decreased with mobility", i)
		}
		prevAI = ai
		lv := cell(t, tab, i, "LV measured")
		bound := cell(t, tab, i, "LV bound")
		if lv > bound {
			t.Errorf("row %d: LV measured %v exceeds paper bound %v", i, lv, bound)
		}
		if lv >= ps0 {
			t.Errorf("row %d: LV (%v) not cheaper than pure search (%v)", i, lv, ps0)
		}
	}
	// At the highest mobility, always-inform must be the most expensive.
	last := len(tab.Rows) - 1
	if cell(t, tab, last, "AI measured") <= ps0 {
		t.Error("always-inform did not overtake pure search at high mobility")
	}
}

func TestE9LocalityShape(t *testing.T) {
	tab := E9GroupLocality(1)
	for i := range tab.Rows {
		cells := cell(t, tab, i, "cells (|LV|)")
		if got := cell(t, tab, i, "LV fixed/msg"); got != cells-1 {
			t.Errorf("row %d: LV fixed/msg = %v, want |LV|-1 = %v", i, got, cells-1)
		}
		if got := cell(t, tab, i, "AI fixed/msg"); got != 9 {
			t.Errorf("row %d: AI fixed/msg = %v, want |G|-1 = 9", i, got)
		}
	}
}

func TestE10WirelessShape(t *testing.T) {
	tab := E10GroupWireless(1)
	for i := range tab.Rows {
		if got, want := cell(t, tab, i, "measured"), cell(t, tab, i, "paper"); got != want {
			t.Errorf("row %d: wireless %v != paper %v", i, got, want)
		}
	}
}

func TestE11ProxyShape(t *testing.T) {
	tab := E11ProxyTraffic(1)
	var prevInform float64 = -1
	for i := range tab.Rows {
		inform := cell(t, tab, i, "home inform")
		if inform < prevInform {
			t.Errorf("row %d: home inform traffic decreased with mobility", i)
		}
		prevInform = inform
		// Home-scope algorithm cost is mobility independent: identical in
		// every row.
		if got := cell(t, tab, i, "home alg"); i > 0 && got != cell(t, tab, 1, "home alg") {
			t.Errorf("row %d: home algorithm cost varies with mobility (%v)", i, got)
		}
	}
	if got := cell(t, tab, 0, "home inform"); got != 0 {
		t.Errorf("inform traffic with no moves = %v, want 0", got)
	}
}

func TestA1SearchModeShape(t *testing.T) {
	tab := A1SearchModes(1)
	var prevBroadcast float64
	for i := range tab.Rows {
		b := cell(t, tab, i, "broadcast cost")
		if b <= prevBroadcast {
			t.Errorf("row %d: broadcast cost not growing with M", i)
		}
		prevBroadcast = b
	}
	// Abstract cost grows only through the 3(M-1)Cf term, broadcast adds
	// the search fan-out: broadcast-abstract gap must widen.
	gapFirst := cell(t, tab, 0, "broadcast cost") - cell(t, tab, 0, "abstract cost")
	gapLast := cell(t, tab, len(tab.Rows)-1, "broadcast cost") - cell(t, tab, len(tab.Rows)-1, "abstract cost")
	if gapLast <= gapFirst {
		t.Errorf("broadcast-abstract gap did not widen: %v vs %v", gapFirst, gapLast)
	}
}

func TestA2CrossoverShape(t *testing.T) {
	tab := A2Crossover(1)
	var prev float64 = 1e18
	for i := range tab.Rows {
		n := cell(t, tab, i, "crossover N")
		if n > prev {
			t.Errorf("row %d: crossover N grew as wireless got dearer", i)
		}
		prev = n
		if tab.Rows[i][col2idx(tab, "measured agrees")] != "yes" {
			t.Errorf("row %d: measured disagrees with analytic crossover", i)
		}
	}
}

func TestAllAndByID(t *testing.T) {
	tables := All(2)
	if len(tables) != len(IDs()) {
		t.Fatalf("All returned %d tables, want %d", len(tables), len(IDs()))
	}
	for i, id := range IDs() {
		if tables[i].ID != id {
			t.Errorf("table %d has id %s, want %s", i, tables[i].ID, id)
		}
		tab, ok := ByID(id, 2)
		if !ok {
			t.Errorf("ByID(%s) not found", id)
			continue
		}
		if tab.ID != id || len(tab.Rows) == 0 {
			t.Errorf("ByID(%s) returned %s with %d rows", id, tab.ID, len(tab.Rows))
		}
	}
	if _, ok := ByID("E99", 2); ok {
		t.Error("ByID accepted unknown id")
	}
}

func TestTableFormatting(t *testing.T) {
	tab := Table{
		ID:      "T0",
		Title:   "demo",
		Columns: []string{"a", "b"},
	}
	tab.AddRow(1, "x")
	tab.AddRow(2.5, true)
	tab.AddNote("a note with %d", 42)
	text := tab.Format()
	for _, want := range []string{"T0", "demo", "2.50", "yes", "note: a note with 42"} {
		if !strings.Contains(text, want) {
			t.Errorf("Format missing %q:\n%s", want, text)
		}
	}
	md := tab.Markdown()
	for _, want := range []string{"### T0", "| a | b |", "| 1 | x |", "*a note with 42*"} {
		if !strings.Contains(md, want) {
			t.Errorf("Markdown missing %q:\n%s", want, md)
		}
	}
}

func TestTableAddRowArityPanics(t *testing.T) {
	tab := Table{ID: "T", Columns: []string{"a", "b"}}
	defer func() {
		if recover() == nil {
			t.Error("AddRow with wrong arity did not panic")
		}
	}()
	tab.AddRow(1)
}

func TestExperimentDeterminism(t *testing.T) {
	a := E8GroupCostVsMobility(7)
	b := E8GroupCostVsMobility(7)
	if a.Format() != b.Format() {
		t.Error("E8 not deterministic for a fixed seed")
	}
}
