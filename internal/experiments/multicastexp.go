package experiments

import (
	"fmt"

	"mobiledist/internal/core"
	"mobiledist/internal/cost"
	"mobiledist/internal/multicast"
	"mobiledist/internal/sim"
	"mobiledist/internal/workload"
)

// A4MulticastHandoff measures the exactly-once multicast substrate (the
// paper's reference [1], built on the Section-2 handoff): as member mobility
// grows, the watermark-handoff traffic grows with it while the delivery
// guarantee — every member sees every item exactly once, in order — holds at
// every mobility level.
func A4MulticastHandoff(seed uint64) Table {
	const (
		m     = 8
		n     = 12
		g     = 6
		items = 10
	)
	t := Table{
		ID:    "A4",
		Title: "Extension: exactly-once multicast under mobility (M=8, |G|=6, 10 items)",
		Columns: []string{
			"moves/member", "deliveries", "exactly once", "handoffs", "handoff cost", "cost/item",
		},
	}
	for _, moves := range []int{0, 2, 5, 10} {
		res := multicastTrial(seed, m, n, g, items, moves)
		t.AddRow(moves, res.deliveries, res.exact, res.handoffs, res.handoffCost, res.perItem)
	}
	t.AddNote("delivery stays exactly-once at every mobility level; only the handoff (location) cost grows with moves")
	return t
}

type multicastTrialResult struct {
	deliveries  int64
	exact       bool
	handoffs    int64
	handoffCost float64
	perItem     float64
}

func multicastTrial(seed uint64, m, n, g, items, movesPerMember int) multicastTrialResult {
	cfg := core.DefaultConfig(m, n)
	cfg.Seed = seed
	sys := core.MustNewSystem(cfg)

	got := make(map[core.MHID][]int64, g)
	mc, err := multicast.New(sys, mhRange(g), multicast.Options{
		Sequencer: core.MSSID(m - 1),
		OnDeliver: func(at core.MHID, seq int64, _ any) {
			got[at] = append(got[at], seq)
		},
	})
	if err != nil {
		panic(err)
	}
	for i := 0; i < items; i++ {
		item := i
		sys.Schedule(sim.Time(300+i*500), func() {
			if err := mc.Publish(core.MHID(0), item); err != nil {
				panic(fmt.Sprintf("experiments: publish: %v", err))
			}
		})
	}
	if movesPerMember > 0 {
		if _, err := workload.NewMobility(sys, workload.MobilityConfig{
			MHs:        mhRange(g),
			Interval:   workload.Span{Min: 150, Max: 600},
			MovesPerMH: movesPerMember,
			Locality:   0.4,
			Start:      50,
		}); err != nil {
			panic(err)
		}
	}
	if err := sys.Run(); err != nil {
		panic(err)
	}

	exact := true
	for i := 0; i < g; i++ {
		seqs := got[core.MHID(i)]
		if len(seqs) != items {
			exact = false
			break
		}
		for j, s := range seqs {
			if s != int64(j) {
				exact = false
				break
			}
		}
	}
	p := cfg.Params
	return multicastTrialResult{
		deliveries:  mc.Delivered(),
		exact:       exact,
		handoffs:    mc.Handoffs(),
		handoffCost: sys.Meter().CategoryCost(cost.CatLocation, p),
		perItem:     sys.Meter().CategoryCost(cost.CatAlgorithm, p) / float64(items),
	}
}
