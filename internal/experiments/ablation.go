package experiments

import (
	"fmt"

	"mobiledist/internal/core"
	"mobiledist/internal/cost"
	"mobiledist/internal/mutex/lamport"
)

// A1SearchModes compares the abstract fixed-Csearch charge against a
// concrete broadcast search that queries every other MSS — the paper's
// worst case "contact each of the other M−1 MSSs" (Section 2).
func A1SearchModes(seed uint64) Table {
	t := Table{
		ID:      "A1",
		Title:   "Ablation: abstract Csearch vs broadcast search, one L2 execution",
		Columns: []string{"M", "abstract cost", "broadcast cost", "broadcast search msgs", "Csearch charged"},
	}
	for _, m := range []int{4, 8, 16, 32} {
		abstract := searchModeTrial(seed, m, core.SearchAbstract)
		broadcast := searchModeTrial(seed, m, core.SearchBroadcast)
		// One search occurs per execution (the grant delivery); under
		// broadcast it becomes (M-1) queries + reply + forward fixed
		// messages.
		t.AddRow(m, abstract, broadcast, m+1, cost.DefaultParams().Search)
	}
	t.AddNote("the abstract mode is paper-faithful; broadcast shows where Csearch <= (M-1)Cf + O(1) comes from and why Csearch grows with M in the worst case")
	return t
}

func searchModeTrial(seed uint64, m int, mode core.SearchMode) float64 {
	cfg := core.DefaultConfig(m, 2*m)
	cfg.Seed = seed
	cfg.SearchMode = mode
	sys := core.MustNewSystem(cfg)
	l2 := lamport.NewL2(sys, lamport.Options{Hold: 5})
	if err := l2.Request(core.MHID(0)); err != nil {
		panic(err)
	}
	// Move the requester away from its home MSS while the request is being
	// arbitrated, so delivering the grant genuinely requires a search.
	sys.Schedule(1, func() {
		if err := sys.Move(core.MHID(0), core.MSSID(m-1)); err != nil {
			panic(err)
		}
	})
	if err := sys.Run(); err != nil {
		panic(err)
	}
	if l2.Grants() != 1 {
		panic("experiments: A1 trial did not grant")
	}
	return sys.Meter().CategoryCost(cost.CatAlgorithm, cfg.Params)
}

// A2Crossover maps where restructuring pays off: for cheap wireless links
// and small N, running Lamport directly on the MHs (L1) can undercut L2's
// fixed 3(M−1)Cf exchange; the crossover N shrinks as wireless gets more
// expensive.
func A2Crossover(seed uint64) Table {
	const (
		m      = 16
		maxN   = 64
		search = 2.0
		fixed  = 1.0
	)
	t := Table{
		ID:      "A2",
		Title:   "Ablation: smallest N at which L2 beats L1 as the wireless/fixed cost ratio varies (M=16, Cs=2Cf)",
		Columns: []string{"Cw/Cf", "crossover N", "L1 cost there", "L2 cost there", "measured agrees"},
	}
	for _, w := range []float64{0.2, 1, 5, 10} {
		p := cost.Params{Fixed: fixed, Wireless: w * fixed, Search: search * fixed}
		crossover := -1
		for n := 2; n <= maxN; n++ {
			if cost.AnalyticL2PerExecution(m, p) < cost.AnalyticL1PerExecution(n, p) {
				crossover = n
				break
			}
		}
		if crossover < 0 {
			t.AddRow(fmt.Sprintf("%.1f", w), "none <= 64", "-", "-", "-")
			continue
		}
		l1 := measuredLamportCost(seed, m, crossover, p, true)
		l2 := measuredLamportCost(seed, m, crossover, p, false)
		agrees := l2 < l1
		t.AddRow(
			fmt.Sprintf("%.1f", w),
			crossover,
			cost.AnalyticL1PerExecution(crossover, p),
			cost.AnalyticL2PerExecution(m, p),
			agrees,
		)
	}
	t.AddNote("with N >> M (the paper's regime) and wireless an order of magnitude dearer than wired, L2 wins from tiny N; the crossover only matters for unrealistically cheap wireless")
	return t
}

func measuredLamportCost(seed uint64, m, n int, p cost.Params, useL1 bool) float64 {
	cfg := core.DefaultConfig(m, n)
	cfg.Seed = seed
	cfg.Params = p
	sys := core.MustNewSystem(cfg)
	var issue func(core.MHID) error
	if useL1 {
		l1, err := lamport.NewL1(sys, mhRange(n), lamport.Options{Hold: 5})
		if err != nil {
			panic(err)
		}
		issue = l1.Request
	} else {
		l2 := lamport.NewL2(sys, lamport.Options{Hold: 5})
		issue = l2.Request
	}
	if err := issue(core.MHID(0)); err != nil {
		panic(err)
	}
	if err := sys.Run(); err != nil {
		panic(err)
	}
	return sys.Meter().CategoryCost(cost.CatAlgorithm, p)
}
