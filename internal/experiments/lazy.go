package experiments

import (
	"mobiledist/internal/core"
	"mobiledist/internal/cost"
	"mobiledist/internal/proxy"
	"mobiledist/internal/sim"
	"mobiledist/internal/workload"
)

// A3LazyInform explores the paper's closing observation in Section 5: a
// home proxy informed of every move is "infeasible from a practical
// standpoint" for fast movers. Lazy informing reports only every k-th move,
// trading inform traffic for stale-location searches when the proxy
// delivers an output. The sweep shows the trade-off and where laziness
// pays.
func A3LazyInform(seed uint64) Table {
	const (
		m       = 8
		n       = 8
		movesEa = 8
	)
	t := Table{
		ID:    "A3",
		Title: "Ablation: lazy home-proxy informing (report every k-th move; M=8, 8 participants, 8 moves each)",
		Columns: []string{
			"inform every", "inform msgs", "inform cost", "stale searches", "stale cost", "total coupling",
		},
	}
	for _, k := range []int{1, 2, 4, 8} {
		informCost, staleCost, reports, staleSearches := lazyTrial(seed, m, n, movesEa, k)
		t.AddRow(k, reports, informCost, staleSearches, staleCost, informCost+staleCost)
	}
	t.AddNote("k=1 is the paper's fully-informed home proxy; larger k cuts inform traffic linearly but outputs to stale locations fall back to searches")
	return t
}

func lazyTrial(seed uint64, m, n, movesEa, informEvery int) (informCost, staleCost float64, reports, staleSearches int64) {
	cfg := core.DefaultConfig(m, n)
	cfg.Seed = seed
	sys := core.MustNewSystem(cfg)

	sm, err := proxy.NewStaticMutex(n, proxy.MutexOptions{Hold: 5})
	if err != nil {
		panic(err)
	}
	rt, err := proxy.New(sys, sm, mhRange(n), proxy.Options{
		Scope:       proxy.ScopeHome,
		InformEvery: informEvery,
	})
	if err != nil {
		panic(err)
	}
	if _, err := workload.NewMobility(sys, workload.MobilityConfig{
		Interval:   workload.Span{Min: 200, Max: 700},
		MovesPerMH: movesEa,
		Locality:   0.3,
		Start:      50,
	}); err != nil {
		panic(err)
	}
	// Requests arrive throughout the mobile phase so outputs hit both
	// fresh and stale location records.
	for i := 0; i < n; i++ {
		mh := core.MHID(i)
		sys.Schedule(sim.Time(300+i*600), func() {
			if _, st := sys.Where(mh); st != core.StatusConnected {
				return
			}
			_ = rt.Input(mh, proxy.RequestInput{})
		})
	}
	if err := sys.Run(); err != nil {
		panic(err)
	}
	p := cfg.Params
	return sys.Meter().CategoryCost(cost.CatLocation, p),
		sys.Meter().CategoryCost(cost.CatStale, p),
		rt.MoveReports(),
		sys.Meter().Count(cost.CatStale, cost.KindSearch)
}
