package experiments

import (
	"reflect"
	"testing"
)

// TestD1ReplicationBeatsPark pins the acceptance shape of the D-series
// table: at every disconnect duration the replicating strategies deliver
// a strictly higher fraction than the park-at-MSS control before TTL
// expiry, and report a non-zero replication cost.
func TestD1ReplicationBeatsPark(t *testing.T) {
	tab := D1StoreCarryForward(1)
	if len(tab.Rows)%3 != 0 || len(tab.Rows) < 9 {
		t.Fatalf("D1 has %d rows, want 3 strategies x >= 3 durations", len(tab.Rows))
	}
	for g := 0; g < len(tab.Rows); g += 3 {
		duration := tab.Rows[g][col2idx(tab, "disconnect")]
		park := cell(t, tab, g, "ratio")
		epidemic := cell(t, tab, g+1, "ratio")
		spray := cell(t, tab, g+2, "ratio")
		if tab.Rows[g][col2idx(tab, "strategy")] != "park" {
			t.Fatalf("group %s: first row is %q, want park", duration, tab.Rows[g][1])
		}
		if epidemic <= park || spray <= park {
			t.Errorf("duration %s: ratios park=%.2f epidemic=%.2f spray=%.2f, want both replicators strictly above park",
				duration, park, epidemic, spray)
		}
		if cell(t, tab, g+1, "transfers") <= cell(t, tab, g, "transfers") {
			t.Errorf("duration %s: epidemic transfers not above park's final-mile transfers", duration)
		}
		if cell(t, tab, g+1, "summaries") == 0 {
			t.Errorf("duration %s: epidemic reports no summary traffic", duration)
		}
	}
}

// TestD1Deterministic pins byte-identical regeneration for a fixed seed.
func TestD1Deterministic(t *testing.T) {
	a, b := D1StoreCarryForward(7), D1StoreCarryForward(7)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different tables:\n%s\n%s", a.Format(), b.Format())
	}
	c := D1StoreCarryForward(8)
	if reflect.DeepEqual(a.Rows, c.Rows) {
		// Different seeds may legitimately coincide, but the schedule is
		// randomised enough that identical tables mean the seed is ignored.
		t.Log("seeds 7 and 8 produced identical rows; check seed plumbing")
	}
}
