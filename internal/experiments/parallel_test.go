package experiments

import (
	"reflect"
	"runtime"
	"testing"
)

// TestAllParallelMatchesSequential is the determinism regression for the
// parallel driver: for any worker count the tables must be byte-identical
// to the sequential golden reference, in the same order.
func TestAllParallelMatchesSequential(t *testing.T) {
	for _, seed := range []uint64{1, 12345} {
		seq := All(seed)
		par := AllParallel(seed, 8)
		if len(seq) != len(par) {
			t.Fatalf("seed %d: %d sequential tables vs %d parallel", seed, len(seq), len(par))
		}
		for i := range seq {
			if !reflect.DeepEqual(seq[i], par[i]) {
				t.Errorf("seed %d: table %d (%s) differs between sequential and parallel runs:\n--- sequential ---\n%s\n--- parallel ---\n%s",
					seed, i, seq[i].ID, seq[i].Format(), par[i].Format())
			}
		}
		// The rendered forms must match too: formatting is part of the
		// artefact EXPERIMENTS.md embeds.
		for i := range seq {
			if seq[i].Markdown() != par[i].Markdown() {
				t.Errorf("seed %d: table %s markdown differs", seed, seq[i].ID)
			}
		}
	}
}

// TestAllParallelDegenerateWorkerCounts checks the clamping edges: zero,
// negative, and oversized worker counts all produce the reference suite.
func TestAllParallelDegenerateWorkerCounts(t *testing.T) {
	ref := All(7)
	for _, w := range []int{0, -3, 1, len(tableFuncs()) + 10} {
		got := AllParallel(7, w)
		if !reflect.DeepEqual(ref, got) {
			t.Errorf("AllParallel(7, %d) diverged from All(7)", w)
		}
	}
}

func BenchmarkAllSequential(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if got := AllParallel(uint64(i+1), 1); len(got) == 0 {
			b.Fatal("no tables")
		}
	}
}

func BenchmarkAllParallel(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if got := AllParallel(uint64(i+1), runtime.NumCPU()); len(got) == 0 {
			b.Fatal("no tables")
		}
	}
}
