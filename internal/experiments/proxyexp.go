package experiments

import (
	"fmt"

	"mobiledist/internal/core"
	"mobiledist/internal/cost"
	"mobiledist/internal/proxy"
	"mobiledist/internal/sim"
	"mobiledist/internal/workload"
)

// proxyTrial runs the static mutex under the proxy framework with the given
// scope, issuing one request per participant and movesPerMH moves.
func proxyTrial(seed uint64, m, n, movesPerMH int, scope proxy.ScopeKind) (algCost, locCost float64, reports, handoffs, grants int64) {
	cfg := core.DefaultConfig(m, n)
	cfg.Seed = seed
	sys := core.MustNewSystem(cfg)

	var holders int
	sm, err := proxy.NewStaticMutex(n, proxy.MutexOptions{
		Hold: 5,
		OnEnter: func(p int) {
			holders++
			if holders > 1 {
				panic("experiments: proxy mutex safety violated")
			}
		},
		OnExit: func(p int) { holders-- },
	})
	if err != nil {
		panic(err)
	}
	rt, err := proxy.New(sys, sm, mhRange(n), proxy.Options{Scope: scope})
	if err != nil {
		panic(err)
	}
	for i := 0; i < n; i++ {
		mh := core.MHID(i)
		var issue func()
		issue = func() {
			if _, st := sys.Where(mh); st != core.StatusConnected {
				// Mid-move at the request instant: retry shortly.
				sys.Schedule(50, issue)
				return
			}
			if err := rt.Input(mh, proxy.RequestInput{}); err != nil {
				panic(err)
			}
		}
		sys.Schedule(sim.Time(100+i*200), issue)
	}
	if movesPerMH > 0 {
		if _, err := workload.NewMobility(sys, workload.MobilityConfig{
			Interval:   workload.Span{Min: 300, Max: 900},
			MovesPerMH: movesPerMH,
			Locality:   0.5,
			Start:      50,
		}); err != nil {
			panic(err)
		}
	}
	if err := sys.Run(); err != nil {
		panic(err)
	}
	p := cfg.Params
	return sys.Meter().CategoryCost(cost.CatAlgorithm, p),
		sys.Meter().CategoryCost(cost.CatLocation, p),
		rt.MoveReports(), rt.Handoffs(), sm.Grants()
}

// E11ProxyTraffic reproduces the §5 trade-off: a fixed (home) proxy totally
// separates mobility from the algorithm but must be informed of every move;
// a local proxy avoids inform traffic at the price of handoffs and searched
// inter-proxy messages.
func E11ProxyTraffic(seed uint64) Table {
	const (
		m = 6
		n = 6
	)
	t := Table{
		ID:    "E11",
		Title: "Proxy framework: home vs local scope hosting a static Lamport mutex (M=6, 6 participants, 1 request each)",
		Columns: []string{
			"moves/MH", "home alg", "home inform", "home total", "local alg", "local handoff", "local total", "cheaper",
		},
	}
	for _, moves := range []int{0, 2, 5, 10} {
		hAlg, hLoc, hReports, _, hGrants := proxyTrial(seed, m, n, moves, proxy.ScopeHome)
		lAlg, lLoc, _, lHandoffs, lGrants := proxyTrial(seed, m, n, moves, proxy.ScopeLocal)
		if hGrants != int64(n) || lGrants != int64(n) {
			panic(fmt.Sprintf("experiments: proxy grants home=%d local=%d, want %d", hGrants, lGrants, n))
		}
		hTotal := hAlg + hLoc
		lTotal := lAlg + lLoc
		cheaper := "home"
		if lTotal < hTotal {
			cheaper = "local"
		}
		t.AddRow(moves, hAlg, hLoc, hTotal, lAlg, lLoc, lTotal, cheaper)
		_ = hReports
		_ = lHandoffs
	}
	t.AddNote("home scope: algorithm cost is mobility-independent (total separation); inform traffic grows with every move")
	t.AddNote("local scope: no inform traffic, but inter-proxy messages must locate their peer (search) and each move hands proxy state over")
	return t
}
