// Package multicast implements exactly-once, totally-ordered multicast to
// mobile recipients — the problem of the paper's reference [1] (Acharya &
// Badrinath, ICDCS 1993), which the Section-2 model's handoff procedure
// exists to support ("a MSS may maintain algorithm-specific data structures
// on behalf of a local MH ... transferred to the new MSS").
//
// Protocol:
//
//   - a fixed sequencer MSS assigns sequence numbers; sources relay
//     messages to it over the wired network;
//   - the sequencer floods each message to every MSS (FIFO wired channels
//     give every MSS the same totally-ordered log);
//   - each MSS *owns* a delivery watermark for the members currently in
//     its cell and delivers log entries past the watermark over the
//     wireless link, in order;
//   - when a member switches cells, the new MSS requests the watermark
//     from the previous one (the handoff); ownership moves with it, so no
//     entry is ever delivered twice, and the backlog accumulated while the
//     member was between cells is delivered on arrival;
//   - a delivery that fails because the member disconnected rolls the
//     watermark back, so the entry is redelivered after reconnection;
//   - the member itself keeps a tiny in-order filter (expected sequence
//     number plus a reorder buffer): entries that arrive early — a chased
//     copy racing a direct downlink after a handoff — wait their turn, and
//     entries redelivered after a rollback are dropped as duplicates.
//
// The station-side watermark machinery guarantees at-least-once delivery
// under arbitrary mobility; the member-side filter turns that into
// exactly-once, in sequence order, end to end.
//
// One retry loop in the protocol is bounded rather than eternal: a
// watermark rollback chasing a member that keeps disconnecting is retried
// at most maxRollbackTries times before the group gives up on that chase
// and counts it in LostRollbacks. The bound loses nothing silently — the
// abandoned member's watermark is simply not rolled back, so the entry is
// redelivered through the ordinary failure path when the member next
// reconnects and a delivery is attempted; the counter exists so tests and
// operators can see how often the pathological chase was cut short.
package multicast

import (
	"fmt"

	"mobiledist/internal/core"
	"mobiledist/internal/cost"
)

// maxRollbackTries bounds how often a bounced watermark rollback is
// re-sent after a member re-disconnects mid-chase. Past the bound the
// rollback is abandoned and counted in LostRollbacks (see the package
// comment for why this is safe).
const maxRollbackTries = 5

// rollbackRetryDelay is how long a bounced rollback waits before chasing
// the member again.
const rollbackRetryDelay = 500

// Options configure a multicast group.
type Options struct {
	// Sequencer is the MSS that orders messages.
	Sequencer core.MSSID
	// OnDeliver fires for every delivery to a member.
	OnDeliver func(at core.MHID, seq int64, payload any)
}

// Protocol messages.
type (
	// mcPublish carries a new message from a source MH to its local MSS.
	mcPublish struct {
		Payload any
	}

	// mcToSequencer relays a message to the sequencer.
	mcToSequencer struct {
		Payload any
	}

	// mcFlood carries a sequenced entry to every MSS.
	mcFlood struct {
		Seq     int64
		Payload any
	}

	// mcDeliver is the wireless delivery of one entry to a member.
	mcDeliver struct {
		Seq     int64
		Payload any
	}

	// mcStateReq asks the previous MSS for a member's watermark. Epoch is
	// the member's join counter at request time, used to prune requests
	// superseded by the member returning to the owner's cell.
	mcStateReq struct {
		MH     core.MHID
		NewMSS core.MSSID
		Epoch  int64
	}

	// mcStateRep transfers watermark ownership to the new MSS.
	mcStateRep struct {
		MH   core.MHID
		Next int64
	}
)

type mcMSSState struct {
	log []any
	// next is the delivery watermark of each member this MSS currently
	// owns; absence means ownership lies elsewhere.
	next map[core.MHID]int64
	// pendingReq parks a successor's watermark request that arrived before
	// this MSS obtained ownership itself (rapid multi-hop moves form a
	// request chain that resolves as ownership travels down it).
	pendingReq map[core.MHID]mcStateReq
	// pendingRollback parks a rollback that arrived before ownership did.
	pendingRollback map[core.MHID]int64
}

// Multicast is one exactly-once multicast group.
type Multicast struct {
	ctx      core.Context
	opts     Options
	members  []core.MHID
	isMember map[core.MHID]bool

	mss []mcMSSState
	// lastJoinMSS/lastJoinEpoch record each member's most recent join, the
	// oracle that keeps watermark ownership travelling along the member's
	// actual trajectory (handlers run serialized, so this simulation-global
	// view is safe on both runtimes).
	lastJoinMSS   map[core.MHID]core.MSSID
	lastJoinEpoch map[core.MHID]int64
	// Per-member receive filter: the next sequence number to hand to the
	// application and a buffer of early arrivals.
	expected map[core.MHID]int64
	early    map[core.MHID]map[int64]any

	seqNext           int64
	published         int64
	delivered         int64
	handoffs          int64
	rollbacks         int64
	lostRollbacks     int64
	duplicatesDropped int64
}

var (
	_ core.Algorithm              = (*Multicast)(nil)
	_ core.MSSHandler             = (*Multicast)(nil)
	_ core.MHHandler              = (*Multicast)(nil)
	_ core.MobilityObserver       = (*Multicast)(nil)
	_ core.DeliveryFailureHandler = (*Multicast)(nil)
)

// New registers a multicast group over the given members. Watermark
// ownership starts at each member's current cell.
func New(reg core.Registrar, members []core.MHID, opts Options) (*Multicast, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("multicast: empty membership")
	}
	g := &Multicast{
		opts:          opts,
		members:       append([]core.MHID(nil), members...),
		isMember:      make(map[core.MHID]bool, len(members)),
		lastJoinMSS:   make(map[core.MHID]core.MSSID, len(members)),
		lastJoinEpoch: make(map[core.MHID]int64, len(members)),
		expected:      make(map[core.MHID]int64, len(members)),
		early:         make(map[core.MHID]map[int64]any, len(members)),
	}
	for _, mh := range g.members {
		if g.isMember[mh] {
			return nil, fmt.Errorf("multicast: duplicate member mh%d", int(mh))
		}
		g.isMember[mh] = true
	}
	g.ctx = reg.Register(g)
	if int(opts.Sequencer) < 0 || int(opts.Sequencer) >= g.ctx.M() {
		return nil, fmt.Errorf("multicast: invalid sequencer mss%d", int(opts.Sequencer))
	}
	g.mss = make([]mcMSSState, g.ctx.M())
	for i := range g.mss {
		g.mss[i].next = make(map[core.MHID]int64)
		g.mss[i].pendingReq = make(map[core.MHID]mcStateReq)
		g.mss[i].pendingRollback = make(map[core.MHID]int64)
	}
	for m := 0; m < g.ctx.M(); m++ {
		for _, mh := range g.ctx.LocalMHs(core.MSSID(m)) {
			if g.isMember[mh] {
				g.mss[m].next[mh] = 0
			}
		}
	}
	return g, nil
}

// Name implements core.Algorithm.
func (g *Multicast) Name() string { return "multicast/exactly-once" }

// Published reports messages accepted for sequencing.
func (g *Multicast) Published() int64 { return g.published }

// Delivered reports member deliveries completed.
func (g *Multicast) Delivered() int64 { return g.delivered }

// Handoffs reports watermark transfers between MSSs.
func (g *Multicast) Handoffs() int64 { return g.handoffs }

// Rollbacks reports watermark rollbacks after failed deliveries.
func (g *Multicast) Rollbacks() int64 { return g.rollbacks }

// Publish submits payload from the given member (any member may publish).
func (g *Multicast) Publish(from core.MHID, payload any) error {
	if !g.isMember[from] {
		return fmt.Errorf("multicast: mh%d is not a member", int(from))
	}
	if err := g.ctx.SendFromMH(from, mcPublish{Payload: payload}, cost.CatAlgorithm); err != nil {
		return fmt.Errorf("multicast: publish: %w", err)
	}
	return nil
}

// HandleMSS implements core.MSSHandler.
func (g *Multicast) HandleMSS(ctx core.Context, at core.MSSID, from core.From, msg core.Message) {
	switch m := msg.(type) {
	case mcPublish:
		if !from.IsMH {
			panic("multicast: publish must come from a MH")
		}
		ctx.SendFixed(at, g.opts.Sequencer, mcToSequencer{Payload: m.Payload}, cost.CatAlgorithm)
	case mcToSequencer:
		if at != g.opts.Sequencer {
			panic(fmt.Sprintf("multicast: sequencing request at mss%d, sequencer is mss%d", int(at), int(g.opts.Sequencer)))
		}
		seq := g.seqNext
		g.seqNext++
		g.published++
		flood := mcFlood{Seq: seq, Payload: m.Payload}
		for i := 0; i < ctx.M(); i++ {
			if core.MSSID(i) == at {
				g.appendAndDrain(ctx, at, flood)
				continue
			}
			ctx.SendFixed(at, core.MSSID(i), flood, cost.CatAlgorithm)
		}
	case mcFlood:
		g.appendAndDrain(ctx, at, m)
	case mcStateReq:
		st := &g.mss[at]
		next, owned := st.next[m.MH]
		if !owned {
			// Not (yet) the owner: this MSS has itself requested the
			// watermark from its predecessor. Park the successor's request;
			// it is served the moment ownership arrives.
			if cur, parked := st.pendingReq[m.MH]; !parked || m.Epoch > cur.Epoch {
				st.pendingReq[m.MH] = m
			}
			return
		}
		if g.lastJoinMSS[m.MH] == at && g.lastJoinEpoch[m.MH] > m.Epoch {
			// The member has since returned to this cell; the request is
			// superseded and ownership stays put.
			return
		}
		delete(st.next, m.MH)
		g.handoffs++
		ctx.SendFixed(at, m.NewMSS, mcStateRep{MH: m.MH, Next: next}, cost.CatLocation)
	case mcStateRep:
		st := &g.mss[at]
		if req, parked := st.pendingReq[m.MH]; parked {
			delete(st.pendingReq, m.MH)
			if !(g.lastJoinMSS[m.MH] == at && g.lastJoinEpoch[m.MH] > req.Epoch) {
				// Ownership passes straight through to the next cell in the
				// member's trajectory.
				g.handoffs++
				ctx.SendFixed(at, req.NewMSS, mcStateRep{MH: m.MH, Next: m.Next}, cost.CatLocation)
				return
			}
			// The parked request was superseded by the member returning
			// here; adopt ownership instead.
		}
		next := m.Next
		if rb, parked := st.pendingRollback[m.MH]; parked {
			delete(st.pendingRollback, m.MH)
			if rb < next {
				g.rollbacks++
				next = rb
			}
		}
		st.next[m.MH] = next
		g.drainMember(ctx, at, m.MH)
	case mcStateRollback:
		st := &g.mss[at]
		next, owned := st.next[m.MH]
		if !owned {
			if cur, parked := st.pendingRollback[m.MH]; !parked || m.Seq < cur {
				st.pendingRollback[m.MH] = m.Seq
			}
			return
		}
		if m.Seq < next {
			g.rollbacks++
			st.next[m.MH] = m.Seq
			g.drainMember(ctx, at, m.MH)
		}
	default:
		panic(fmt.Sprintf("multicast: MSS received unexpected message %T", msg))
	}
}

// HandleMH implements core.MHHandler: the member-side in-order filter.
// Duplicates (redeliveries after a rollback) are dropped; early arrivals (a
// chased copy overtaken by a direct downlink after a handoff) are buffered
// until their turn.
func (g *Multicast) HandleMH(_ core.Context, at core.MHID, msg core.Message) {
	m, ok := msg.(mcDeliver)
	if !ok {
		panic(fmt.Sprintf("multicast: MH received unexpected message %T", msg))
	}
	exp := g.expected[at]
	switch {
	case m.Seq < exp:
		g.duplicatesDropped++
		return
	case m.Seq > exp:
		buf := g.early[at]
		if buf == nil {
			buf = make(map[int64]any)
			g.early[at] = buf
		}
		buf[m.Seq] = m.Payload
		return
	}
	g.deliverUp(at, m.Seq, m.Payload)
	exp = m.Seq + 1
	buf := g.early[at]
	for {
		payload, ok := buf[exp]
		if !ok {
			break
		}
		delete(buf, exp)
		g.deliverUp(at, exp, payload)
		exp++
	}
	g.expected[at] = exp
}

// deliverUp hands one in-order entry to the application.
func (g *Multicast) deliverUp(at core.MHID, seq int64, payload any) {
	g.delivered++
	if g.opts.OnDeliver != nil {
		g.opts.OnDeliver(at, seq, payload)
	}
}

// DuplicatesDropped reports redelivered entries the member-side filter
// suppressed.
func (g *Multicast) DuplicatesDropped() int64 { return g.duplicatesDropped }

// OnJoin implements core.MobilityObserver: the new MSS pulls the member's
// watermark from the previous cell (the Section-2 handoff).
func (g *Multicast) OnJoin(ctx core.Context, mss core.MSSID, mh core.MHID, prev core.MSSID, wasDisconnected bool) {
	if !g.isMember[mh] {
		return
	}
	g.lastJoinEpoch[mh]++
	g.lastJoinMSS[mh] = mss
	if _, owned := g.mss[mss].next[mh]; owned {
		// Returning to a cell that still owns the watermark (no
		// intervening handoff): deliver any backlog directly.
		g.drainMember(ctx, mss, mh)
		return
	}
	ctx.SendFixed(mss, prev, mcStateReq{MH: mh, NewMSS: mss, Epoch: g.lastJoinEpoch[mh]}, cost.CatLocation)
}

// OnLeave implements core.MobilityObserver.
func (g *Multicast) OnLeave(core.Context, core.MSSID, core.MHID) {}

// OnDisconnect implements core.MobilityObserver: the cell keeps the
// watermark while the member is disconnected.
func (g *Multicast) OnDisconnect(core.Context, core.MSSID, core.MHID) {}

// OnDeliveryFailure implements core.DeliveryFailureHandler: a delivery
// bounced off a disconnected member, so its watermark rolls back for
// redelivery after reconnection.
func (g *Multicast) OnDeliveryFailure(ctx core.Context, at core.MSSID, mh core.MHID, msg core.Message, _ core.FailReason) {
	if rb, ok := msg.(mcStateRollback); ok {
		// The rollback itself bounced off a re-disconnected member: retry a
		// bounded number of times; if the member stays away, nothing is
		// owed until it reconnects, at which point a fresh failure path
		// repeats this.
		if rb.Tries < maxRollbackTries {
			rb.Tries++
			ctx.After(rollbackRetryDelay, func() {
				ctx.SendToMSSOfMH(at, mh, rb, cost.CatLocation)
			})
		} else {
			g.lostRollbacks++
		}
		return
	}
	m, ok := msg.(mcDeliver)
	if !ok {
		return
	}
	st := &g.mss[at]
	next, owned := st.next[mh]
	if !owned {
		// Ownership moved while the failure travelled back; the watermark
		// it carried already counted this entry. Roll it back wherever the
		// member now is (the owner, or an MSS that will park it until it
		// becomes the owner).
		ctx.SendToMSSOfMH(at, mh, mcStateRollback{MH: mh, Seq: m.Seq}, cost.CatLocation)
		return
	}
	if m.Seq < next {
		g.rollbacks++
		st.next[mh] = m.Seq
		g.drainMember(ctx, at, mh)
	}
}

// mcStateRollback rolls a remote owner's watermark back after a failed
// delivery raced a handoff.
type mcStateRollback struct {
	MH    core.MHID
	Seq   int64
	Tries int
}

// appendAndDrain appends a sequenced entry to the local log and delivers to
// owned, local members.
func (g *Multicast) appendAndDrain(ctx core.Context, at core.MSSID, m mcFlood) {
	st := &g.mss[at]
	if int64(len(st.log)) != m.Seq {
		// FIFO wired channels from the single sequencer make gaps
		// impossible; a mismatch is a protocol bug.
		panic(fmt.Sprintf("multicast: mss%d got seq %d with log length %d", int(at), m.Seq, len(st.log)))
	}
	st.log = append(st.log, m.Payload)
	for _, mh := range g.members {
		if _, owned := st.next[mh]; owned {
			g.drainMember(ctx, at, mh)
		}
	}
}

// drainMember delivers every entry past the member's watermark while it is
// local.
func (g *Multicast) drainMember(ctx core.Context, at core.MSSID, mh core.MHID) {
	st := &g.mss[at]
	next, owned := st.next[mh]
	if !owned {
		return
	}
	for next < int64(len(st.log)) {
		if !ctx.IsLocal(at, mh) {
			break
		}
		entry := mcDeliver{Seq: next, Payload: st.log[next]}
		if err := ctx.SendToLocalMH(at, mh, entry, cost.CatAlgorithm); err != nil {
			break
		}
		next++
	}
	st.next[mh] = next
}

// LostRollbacks reports rollbacks abandoned after repeated failures
// (possible only when a member re-disconnects forever mid-redelivery).
func (g *Multicast) LostRollbacks() int64 { return g.lostRollbacks }
