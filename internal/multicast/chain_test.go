package multicast

import (
	"testing"

	"mobiledist/internal/core"
)

// slowWiredSystem builds a system whose wired links are slow relative to
// travel time, forcing watermark-handoff requests to pile up behind a
// moving member (the request-parking chains).
func slowWiredSystem(t *testing.T, m, n int, seed uint64) *core.System {
	t.Helper()
	cfg := core.DefaultConfig(m, n)
	cfg.Seed = seed
	cfg.Wired = core.Delay{Min: 200, Max: 300}
	cfg.Travel = core.Delay{Min: 5, Max: 10}
	cfg.Wireless = core.Delay{Min: 1, Max: 2}
	sys, err := core.NewSystem(cfg)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	return sys
}

func TestMulticastRapidMultiHopChain(t *testing.T) {
	// mh1 hops A→B→C→D faster than any handoff request can travel the slow
	// wired network: the requests park at each hop and ownership flows down
	// the chain when the replies catch up. Every item must still arrive
	// exactly once, in order.
	const (
		m = 5
		g = 3
	)
	sys := slowWiredSystem(t, m, g, 61)
	rcv := newReceiver()
	mc, err := New(sys, members(g), Options{Sequencer: 4, OnDeliver: rcv.onDeliver})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := mc.Publish(core.MHID(0), "pre"); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	// Rapid hops: each scheduled as soon as the previous completes.
	hops := []core.MSSID{2, 3, 4}
	var hop func(i int)
	hop = func(i int) {
		if i >= len(hops) {
			return
		}
		if _, st := sys.Where(core.MHID(1)); st == core.StatusConnected {
			if err := sys.Move(core.MHID(1), hops[i]); err != nil {
				t.Errorf("Move: %v", err)
			}
			sys.Schedule(20, func() { hop(i + 1) })
			return
		}
		sys.Schedule(5, func() { hop(i) })
	}
	sys.Schedule(50, func() { hop(0) })
	// A second item published mid-chain.
	sys.Schedule(120, func() {
		if err := mc.Publish(core.MHID(2), "mid"); err != nil {
			t.Errorf("Publish: %v", err)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	rcv.verify(t, members(g), 2)
	if mc.Handoffs() == 0 {
		t.Error("expected handoffs along the chain")
	}
}

func TestMulticastChainWithReturnTrip(t *testing.T) {
	// A→B→A→B with slow wired links: exercises the epoch pruning of parked
	// requests (a stale parked request must not steal ownership back).
	const g = 2
	sys := slowWiredSystem(t, 3, g, 67)
	rcv := newReceiver()
	mc, err := New(sys, members(g), Options{Sequencer: 2, OnDeliver: rcv.onDeliver})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := mc.Publish(core.MHID(0), 0); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	// mh1 starts at mss1; bounce 1→0→1→0.
	seqMoves := []core.MSSID{0, 1, 0}
	var hop func(i int)
	hop = func(i int) {
		if i >= len(seqMoves) {
			return
		}
		if _, st := sys.Where(core.MHID(1)); st == core.StatusConnected {
			if err := sys.Move(core.MHID(1), seqMoves[i]); err != nil {
				t.Errorf("Move: %v", err)
			}
			sys.Schedule(25, func() { hop(i + 1) })
			return
		}
		sys.Schedule(5, func() { hop(i) })
	}
	sys.Schedule(40, func() { hop(0) })
	sys.Schedule(3_000, func() {
		if err := mc.Publish(core.MHID(0), 1); err != nil {
			t.Errorf("Publish: %v", err)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	rcv.verify(t, members(g), 2)
}

func TestMulticastAccessors(t *testing.T) {
	sys := newSys(t, 3, 3, 71)
	mc, err := New(sys, members(2), Options{Sequencer: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if mc.Name() == "" {
		t.Error("empty name")
	}
	if mc.Rollbacks() != 0 || mc.LostRollbacks() != 0 {
		t.Error("fresh group has rollbacks")
	}
	if err := mc.Publish(core.MHID(0), "x"); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if mc.Published() != 1 || mc.Delivered() != 2 {
		t.Errorf("published=%d delivered=%d, want 1/2", mc.Published(), mc.Delivered())
	}
}
