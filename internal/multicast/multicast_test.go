package multicast

import (
	"testing"
	"testing/quick"

	"mobiledist/internal/core"
	"mobiledist/internal/sim"
	"mobiledist/internal/workload"
)

func newSys(t *testing.T, m, n int, seed uint64) *core.System {
	t.Helper()
	cfg := core.DefaultConfig(m, n)
	cfg.Seed = seed
	sys, err := core.NewSystem(cfg)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	return sys
}

func members(n int) []core.MHID {
	out := make([]core.MHID, n)
	for i := range out {
		out[i] = core.MHID(i)
	}
	return out
}

// receiver records per-member delivery sequences.
type receiver struct {
	got map[core.MHID][]int64
}

func newReceiver() *receiver { return &receiver{got: make(map[core.MHID][]int64)} }

func (r *receiver) onDeliver(at core.MHID, seq int64, payload any) {
	r.got[at] = append(r.got[at], seq)
}

// verify checks every member received 0..count-1 exactly once, in order.
func (r *receiver) verify(t *testing.T, mhs []core.MHID, count int64) {
	t.Helper()
	for _, mh := range mhs {
		seqs := r.got[mh]
		if int64(len(seqs)) != count {
			t.Errorf("mh%d received %d messages, want %d (%v)", int(mh), len(seqs), count, seqs)
			continue
		}
		for i, s := range seqs {
			if s != int64(i) {
				t.Errorf("mh%d sequence %v out of order at %d", int(mh), seqs, i)
				break
			}
		}
	}
}

func (r *receiver) ok(mhs []core.MHID, count int64) bool {
	for _, mh := range mhs {
		seqs := r.got[mh]
		if int64(len(seqs)) != count {
			return false
		}
		for i, s := range seqs {
			if s != int64(i) {
				return false
			}
		}
	}
	return true
}

func TestMulticastStaticDelivery(t *testing.T) {
	const (
		m = 4
		n = 8
		g = 5
	)
	sys := newSys(t, m, n, 1)
	rcv := newReceiver()
	mc, err := New(sys, members(g), Options{Sequencer: 0, OnDeliver: rcv.onDeliver})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := 0; i < 4; i++ {
		from := core.MHID(i % g)
		sys.Schedule(sim.Time(i*100), func() {
			if err := mc.Publish(from, i); err != nil {
				t.Errorf("Publish: %v", err)
			}
		})
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if mc.Published() != 4 {
		t.Fatalf("published = %d, want 4", mc.Published())
	}
	rcv.verify(t, members(g), 4)
	if mc.Delivered() != 4*g {
		t.Errorf("delivered = %d, want %d", mc.Delivered(), 4*g)
	}
}

func TestMulticastMemberMovesBetweenMessages(t *testing.T) {
	const (
		m = 4
		n = 6
		g = 3
	)
	sys := newSys(t, m, n, 2)
	rcv := newReceiver()
	mc, err := New(sys, members(g), Options{Sequencer: 3, OnDeliver: rcv.onDeliver})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := mc.Publish(core.MHID(0), "a"); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	sys.Schedule(1_000, func() {
		if err := sys.Move(core.MHID(1), core.MSSID(3)); err != nil {
			t.Errorf("Move: %v", err)
		}
	})
	sys.Schedule(2_000, func() {
		if err := mc.Publish(core.MHID(2), "b"); err != nil {
			t.Errorf("Publish: %v", err)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	rcv.verify(t, members(g), 2)
	if mc.Handoffs() != 1 {
		t.Errorf("handoffs = %d, want 1", mc.Handoffs())
	}
}

func TestMulticastBacklogDeliveredAfterMove(t *testing.T) {
	// Messages published while a member is between cells arrive as a
	// backlog when it joins.
	cfg := core.DefaultConfig(4, 4)
	cfg.Seed = 3
	cfg.Travel = core.Delay{Min: 5_000, Max: 5_000} // long transit
	sys, err := core.NewSystem(cfg)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	rcv := newReceiver()
	mc, err := New(sys, members(3), Options{Sequencer: 0, OnDeliver: rcv.onDeliver})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := sys.Move(core.MHID(1), core.MSSID(3)); err != nil {
		t.Fatalf("Move: %v", err)
	}
	for i := 0; i < 3; i++ {
		sys.Schedule(sim.Time(100+i*50), func() {
			if err := mc.Publish(core.MHID(0), i); err != nil {
				t.Errorf("Publish: %v", err)
			}
		})
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	rcv.verify(t, members(3), 3)
}

func TestMulticastReturnTripKeepsOwnership(t *testing.T) {
	// A member that moves away and returns must not lose or duplicate
	// deliveries (the epoch-pruned handoff case).
	sys := newSys(t, 3, 3, 4)
	rcv := newReceiver()
	mc, err := New(sys, members(2), Options{Sequencer: 2, OnDeliver: rcv.onDeliver})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := mc.Publish(core.MHID(0), "before"); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	sys.Schedule(500, func() {
		if err := sys.Move(core.MHID(1), core.MSSID(2)); err != nil {
			t.Errorf("Move: %v", err)
		}
	})
	sys.Schedule(1_000, func() {
		if _, st := sys.Where(core.MHID(1)); st == core.StatusConnected {
			if err := sys.Move(core.MHID(1), core.MSSID(1)); err != nil {
				t.Errorf("Move: %v", err)
			}
		}
	})
	sys.Schedule(5_000, func() {
		if err := mc.Publish(core.MHID(0), "after"); err != nil {
			t.Errorf("Publish: %v", err)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	rcv.verify(t, members(2), 2)
}

func TestMulticastDisconnectedMemberCatchesUp(t *testing.T) {
	sys := newSys(t, 4, 4, 5)
	rcv := newReceiver()
	mc, err := New(sys, members(3), Options{Sequencer: 0, OnDeliver: rcv.onDeliver})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// mh2 disconnects; three messages flow; mh2 reconnects elsewhere and
	// must receive all three, in order.
	if err := sys.Disconnect(core.MHID(2)); err != nil {
		t.Fatalf("Disconnect: %v", err)
	}
	for i := 0; i < 3; i++ {
		sys.Schedule(sim.Time(500+i*200), func() {
			if err := mc.Publish(core.MHID(0), i); err != nil {
				t.Errorf("Publish: %v", err)
			}
		})
	}
	sys.Schedule(5_000, func() {
		if err := sys.Reconnect(core.MHID(2), core.MSSID(3), true); err != nil {
			t.Errorf("Reconnect: %v", err)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	rcv.verify(t, members(3), 3)
}

func TestMulticastDeliveryRacingDisconnect(t *testing.T) {
	// A message already on the wireless link when the member disconnects
	// must be redelivered after reconnection (the watermark rollback).
	cfg := core.DefaultConfig(3, 3)
	cfg.Seed = 6
	cfg.Wireless = core.Delay{Min: 50, Max: 50}
	sys, err := core.NewSystem(cfg)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	rcv := newReceiver()
	mc, err := New(sys, members(2), Options{Sequencer: 2, OnDeliver: rcv.onDeliver})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := mc.Publish(core.MHID(0), "racy"); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	// Disconnect mh1 while the delivery is (most likely) in the air.
	sys.Schedule(60, func() {
		if _, st := sys.Where(core.MHID(1)); st == core.StatusConnected {
			if err := sys.Disconnect(core.MHID(1)); err != nil {
				t.Errorf("Disconnect: %v", err)
			}
		}
	})
	sys.Schedule(2_000, func() {
		if _, st := sys.Where(core.MHID(1)); st == core.StatusDisconnected {
			if err := sys.Reconnect(core.MHID(1), core.MSSID(0), true); err != nil {
				t.Errorf("Reconnect: %v", err)
			}
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	rcv.verify(t, members(2), 1)
}

func TestMulticastRejectsBadConfig(t *testing.T) {
	sys := newSys(t, 3, 3, 7)
	if _, err := New(sys, nil, Options{}); err == nil {
		t.Error("empty membership accepted")
	}
	if _, err := New(sys, []core.MHID{0, 0}, Options{}); err == nil {
		t.Error("duplicate member accepted")
	}
	if _, err := New(sys, members(2), Options{Sequencer: 9}); err == nil {
		t.Error("invalid sequencer accepted")
	}
	mc, err := New(sys, members(2), Options{Sequencer: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := mc.Publish(core.MHID(2), "x"); err == nil {
		t.Error("publish by non-member accepted")
	}
}

// TestPropertyExactlyOnceOrderedUnderChaos is the package's central
// invariant: for arbitrary interleavings of publishes, moves and
// disconnect/reconnect churn, every member receives every message exactly
// once in sequence order after the network drains.
func TestPropertyExactlyOnceOrderedUnderChaos(t *testing.T) {
	check := func(seed uint64, mobilityRaw, msgsRaw uint8) bool {
		const (
			m = 5
			n = 6
			g = 4
		)
		cfg := core.DefaultConfig(m, n)
		cfg.Seed = seed
		sys, err := core.NewSystem(cfg)
		if err != nil {
			return false
		}
		rcv := newReceiver()
		mc, err := New(sys, members(g), Options{Sequencer: core.MSSID(m - 1), OnDeliver: rcv.onDeliver})
		if err != nil {
			return false
		}
		msgs := int(msgsRaw%6) + 2
		for i := 0; i < msgs; i++ {
			from := core.MHID(i % g)
			sys.Schedule(sim.Time(i*400), func() {
				// A disconnected publisher skips its slot; published count
				// is read back below.
				_ = mc.Publish(from, i)
			})
		}
		if _, err := workload.NewMobility(sys, workload.MobilityConfig{
			MHs:        members(g),
			Interval:   workload.Span{Min: 100, Max: 600},
			MovesPerMH: int(mobilityRaw % 4),
			Locality:   0.5,
		}); err != nil {
			return false
		}
		// One member churns.
		if _, err := workload.NewChurn(sys, workload.ChurnConfig{
			MHs:       []core.MHID{3},
			UpFor:     workload.Span{Min: 300, Max: 900},
			DownFor:   workload.Span{Min: 200, Max: 600},
			Cycles:    1,
			KnowsPrev: true,
		}); err != nil {
			return false
		}
		if err := sys.Run(); err != nil {
			return false
		}
		return rcv.ok(members(g), mc.Published()) && mc.LostRollbacks() == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestRollbackRetriesAreBounded: a watermark rollback chasing a member that
// never reconnects is retried exactly maxRollbackTries times, then
// abandoned and counted — the chase must not loop forever.
func TestRollbackRetriesAreBounded(t *testing.T) {
	sys := newSys(t, 2, 2, 1)
	g, err := New(sys, members(2), Options{Sequencer: 0})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := sys.Disconnect(1); err != nil {
		t.Fatalf("Disconnect: %v", err)
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Simulate the trigger: a rollback for mh1 bounced off the member's
	// disconnection (the race normally needs a handoff in flight; injecting
	// the bounced message exercises the identical handler path).
	sys.Schedule(0, func() {
		g.OnDeliveryFailure(g.ctx, 0, 1, mcStateRollback{MH: 1, Seq: 0}, core.FailDisconnected)
	})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := g.LostRollbacks(); got != 1 {
		t.Errorf("LostRollbacks = %d, want 1 (retry bound not enforced)", got)
	}
	// The retries must actually have happened: maxRollbackTries chases,
	// each one bouncing, each costing a search.
	if got := sys.Stats().FailedDeliveries; got < int64(maxRollbackTries) {
		t.Errorf("FailedDeliveries = %d, want >= %d bounced chases", got, maxRollbackTries)
	}
}
