package core

// Registrar is implemented by network drivers (the simulation System here,
// the live runtime in internal/rt) that can host algorithms. Constructors
// of algorithm packages take a Registrar so the same implementations run on
// either substrate.
type Registrar interface {
	// Register attaches alg and returns the Context its handlers receive.
	Register(alg Algorithm) Context
}

var _ Registrar = (*System)(nil)
