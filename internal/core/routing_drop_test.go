package core

import (
	"testing"

	"mobiledist/internal/cost"
)

// TestDeferredSendDroppedOnDisconnect pins the drop semantics of a send
// parked while its MH is between cells: if the MH disconnects after joining
// but before the deferred send replays, the transmission never happens and
// the loss is counted in Stats.FailedDeliveries (previously it was
// swallowed by a dead error check).
func TestDeferredSendDroppedOnDisconnect(t *testing.T) {
	cfg := DefaultConfig(2, 1)
	// Degenerate delays so event times are exact: leave uplink arrives at
	// t=2, travel takes 5 (join initiated at t=7), join uplink arrives at
	// t=9.
	cfg.Wireless = FixedDelay(2)
	cfg.Travel = FixedDelay(5)
	cfg.Wired = FixedDelay(3)
	sys, p, ctx := func() (*System, *probe, Context) {
		sys := MustNewSystem(cfg)
		p := &probe{}
		return sys, p, sys.Register(p)
	}()

	if err := sys.Move(0, 1); err != nil {
		t.Fatalf("Move: %v", err)
	}
	// mh0 is now in transit, so the send parks in the waiter list.
	if err := ctx.SendFromMH(0, "parked", cost.CatAlgorithm); err != nil {
		t.Fatalf("SendFromMH while in transit: %v", err)
	}

	// Arrange a Disconnect that runs at the join instant (t=9), sequenced
	// after the join event (its scheduling happens at t=8, after the join
	// arrival was enqueued at t=7) but before the replayed waiter (which the
	// join schedules at delay 0, so with a later sequence number).
	sys.Schedule(8, func() {
		sys.Schedule(1, func() {
			if err := sys.Disconnect(0); err != nil {
				t.Errorf("Disconnect at join instant: %v", err)
			}
		})
	})

	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := sys.Stats().FailedDeliveries; got != 1 {
		t.Errorf("FailedDeliveries = %d, want 1 (deferred send dropped on disconnect)", got)
	}
	for _, ev := range p.mssGot {
		if ev.Msg == "parked" {
			t.Errorf("parked message was delivered at t=%d despite the disconnect", ev.T)
		}
	}
}

// TestDeferredSendReplaysAfterJoin is the companion happy path: with no
// disconnect racing the join, the parked send replays in the new cell and
// nothing is counted as failed.
func TestDeferredSendReplaysAfterJoin(t *testing.T) {
	cfg := DefaultConfig(2, 1)
	cfg.Wireless = FixedDelay(2)
	cfg.Travel = FixedDelay(5)
	cfg.Wired = FixedDelay(3)
	sys := MustNewSystem(cfg)
	p := &probe{}
	ctx := sys.Register(p)

	if err := sys.Move(0, 1); err != nil {
		t.Fatalf("Move: %v", err)
	}
	if err := ctx.SendFromMH(0, "parked", cost.CatAlgorithm); err != nil {
		t.Fatalf("SendFromMH while in transit: %v", err)
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := sys.Stats().FailedDeliveries; got != 0 {
		t.Errorf("FailedDeliveries = %d, want 0", got)
	}
	found := false
	for _, ev := range p.mssGot {
		if ev.Msg == "parked" {
			found = true
			if ev.At != 1 {
				t.Errorf("parked message delivered at mss%d, want mss1 (the new cell)", int(ev.At))
			}
		}
	}
	if !found {
		t.Error("parked message never delivered after join")
	}
}
