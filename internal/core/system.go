package core

import (
	"fmt"

	"mobiledist/internal/cost"
	"mobiledist/internal/sim"
)

// defaultStepLimit bounds runaway protocols; generous enough for every
// experiment in the suite.
const defaultStepLimit = 50_000_000

type mssState struct {
	local        sortedMHs
	disconnected map[MHID]bool
}

type mhState struct {
	status MHStatus
	// at is the current cell while connected, the cell holding the
	// "disconnected" flag while disconnected, and the previous cell while in
	// transit.
	at     MSSID
	dozing bool
}

type pairKey struct {
	from, to MHID
}

// Stats are model-level counters kept outside the cost meter.
type Stats struct {
	// Searches is the number of searches performed (abstract mode) or
	// broadcast search rounds (broadcast mode).
	Searches int64
	// StaleReroutes counts re-forwards after a destination moved while a
	// message was in flight (the paper's footnote-2 case).
	StaleReroutes int64
	// Moves, Disconnects and Reconnects count completed mobility operations.
	Moves, Disconnects, Reconnects int64
	// DozeInterruptions counts wireless deliveries that interrupted a dozing
	// MH, in total and per MH.
	DozeInterruptions     int64
	DozeInterruptionsByMH map[MHID]int64
	// FailedDeliveries counts routed sends that ended in a disconnected
	// notification to the sender.
	FailedDeliveries int64
}

// System is the deterministic simulation driver of the two-tier model.
// All methods must be called from the kernel goroutine (i.e. from within
// scheduled events, algorithm handlers, or before Run).
type System struct {
	cfg    Config
	kernel *sim.Kernel
	meter  *cost.Meter
	rng    *sim.RNG

	mss []mssState
	mh  []mhState

	algs []Algorithm
	ctxs []Context

	// waiters holds continuations blocked on a MH that is between cells;
	// they fire once it joins a cell.
	waiters map[MHID][]func()

	// FIFO high-water marks for every channel, as flat slices indexed by
	// channel id (from*M+to for wired, mss*N+mh for downlinks, mh for
	// uplinks). Sized once at construction: lookups on the per-message hot
	// path are direct array reads with no hashing or allocation. The zero
	// value means "no prior traffic", matching the old maps' semantics.
	lastWired []sim.Time // M*M
	lastDown  []sim.Time // M*N
	lastUp    []sim.Time // N

	pairSeqNext     map[pairKey]uint64
	pairDeliverNext map[pairKey]uint64
	pairBuffer      map[pairKey]map[uint64]deferredDelivery

	stats Stats
}

type deferredDelivery struct {
	alg int
	msg Message
}

// NewSystem builds a system from cfg, placing every MH in its initial cell.
func NewSystem(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	k := sim.NewKernel(cfg.Seed)
	limit := cfg.StepLimit
	if limit == 0 {
		limit = defaultStepLimit
	}
	k.SetStepLimit(limit)
	s := &System{
		cfg:             cfg,
		kernel:          k,
		meter:           cost.NewMeter(),
		rng:             k.RNG(),
		mss:             make([]mssState, cfg.M),
		mh:              make([]mhState, cfg.N),
		waiters:         make(map[MHID][]func()),
		lastWired:       make([]sim.Time, cfg.M*cfg.M),
		lastDown:        make([]sim.Time, cfg.M*cfg.N),
		lastUp:          make([]sim.Time, cfg.N),
		pairSeqNext:     make(map[pairKey]uint64),
		pairDeliverNext: make(map[pairKey]uint64),
		pairBuffer:      make(map[pairKey]map[uint64]deferredDelivery),
	}
	s.stats.DozeInterruptionsByMH = make(map[MHID]int64)
	for i := range s.mss {
		s.mss[i] = mssState{
			disconnected: make(map[MHID]bool),
		}
	}
	place := cfg.Placement
	if place == nil {
		place = func(mh MHID) MSSID { return MSSID(int(mh) % cfg.M) }
	}
	for i := range s.mh {
		at := place(MHID(i))
		if int(at) < 0 || int(at) >= cfg.M {
			return nil, fmt.Errorf("core: placement of mh%d at invalid mss%d", i, int(at))
		}
		s.mh[i] = mhState{status: StatusConnected, at: at}
		s.mss[at].local.add(MHID(i))
	}
	return s, nil
}

// MustNewSystem is NewSystem panicking on configuration errors; intended for
// tests and examples with literal configs.
func MustNewSystem(cfg Config) *System {
	s, err := NewSystem(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Register attaches an algorithm to the system and returns the Context its
// handlers will receive. Algorithms must be registered before any messages
// are exchanged.
func (s *System) Register(alg Algorithm) Context {
	if alg == nil {
		panic("core: register nil algorithm")
	}
	idx := len(s.algs)
	s.algs = append(s.algs, alg)
	ctx := &simContext{s: s, alg: idx}
	s.ctxs = append(s.ctxs, ctx)
	return ctx
}

// Kernel exposes the underlying event kernel (for workload drivers).
func (s *System) Kernel() *sim.Kernel { return s.kernel }

// Meter exposes the cost meter.
func (s *System) Meter() *cost.Meter { return s.meter }

// Stats returns a copy of the model-level counters.
func (s *System) Stats() Stats {
	cp := s.stats
	cp.DozeInterruptionsByMH = make(map[MHID]int64, len(s.stats.DozeInterruptionsByMH))
	for k, v := range s.stats.DozeInterruptionsByMH {
		cp.DozeInterruptionsByMH[k] = v
	}
	return cp
}

// Config returns the system configuration.
func (s *System) Config() Config { return s.cfg }

// Now returns the current virtual time.
func (s *System) Now() sim.Time { return s.kernel.Now() }

// Schedule runs fn after delay ticks of virtual time.
func (s *System) Schedule(delay sim.Time, fn func()) { s.kernel.Schedule(delay, fn) }

// Run processes events until quiescence.
func (s *System) Run() error { return s.kernel.Run() }

// RunUntil processes events up to (and including) deadline.
func (s *System) RunUntil(deadline sim.Time) error { return s.kernel.RunUntil(deadline) }

// Where reports the cell and connectivity status of mh. While disconnected,
// the returned MSS is the cell holding the "disconnected" flag; while in
// transit it is the previous cell.
func (s *System) Where(mh MHID) (MSSID, MHStatus) {
	s.checkMH(mh)
	st := s.mh[mh]
	return st.at, st.status
}

// SetDoze marks mh as dozing (or not). Deliveries to a dozing MH still
// succeed but are counted as interruptions.
func (s *System) SetDoze(mh MHID, dozing bool) {
	s.checkMH(mh)
	s.mh[mh].dozing = dozing
}

// IsDozing reports whether mh is in doze mode.
func (s *System) IsDozing(mh MHID) bool {
	s.checkMH(mh)
	return s.mh[mh].dozing
}

// trace emits a model-level event to the configured trace sink.
func (s *System) trace(event, format string, args ...any) {
	if s.cfg.Trace == nil {
		return
	}
	s.cfg.Trace(s.kernel.Now(), event, fmt.Sprintf(format, args...))
}

func (s *System) checkMSS(id MSSID) {
	if int(id) < 0 || int(id) >= s.cfg.M {
		panic(fmt.Sprintf("core: invalid mss id %d (M=%d)", int(id), s.cfg.M))
	}
}

func (s *System) checkMH(id MHID) {
	if int(id) < 0 || int(id) >= s.cfg.N {
		panic(fmt.Sprintf("core: invalid mh id %d (N=%d)", int(id), s.cfg.N))
	}
}

func (s *System) delay(d Delay) sim.Time {
	return s.rng.Duration(d.Min, d.Max)
}

// fifoWired returns the FIFO-respecting arrival time on the (from, to)
// wired channel for a message sent now.
func (s *System) fifoWired(from, to MSSID) sim.Time {
	arrival := s.kernel.Now() + s.delay(s.cfg.Wired)
	idx := int(from)*s.cfg.M + int(to)
	if last := s.lastWired[idx]; arrival < last {
		arrival = last
	}
	s.lastWired[idx] = arrival
	return arrival
}

func (s *System) fifoDown(mss MSSID, mh MHID) sim.Time {
	arrival := s.kernel.Now() + s.delay(s.cfg.Wireless)
	idx := int(mss)*s.cfg.N + int(mh)
	if last := s.lastDown[idx]; arrival < last {
		arrival = last
	}
	s.lastDown[idx] = arrival
	return arrival
}

func (s *System) fifoUp(mh MHID) sim.Time {
	arrival := s.kernel.Now() + s.delay(s.cfg.Wireless)
	if last := s.lastUp[mh]; arrival < last {
		arrival = last
	}
	s.lastUp[mh] = arrival
	return arrival
}

func (s *System) dispatchMSS(alg int, at MSSID, from From, msg Message) {
	h, ok := s.algs[alg].(MSSHandler)
	if !ok {
		panic(fmt.Sprintf("core: algorithm %q received MSS message without MSSHandler", s.algs[alg].Name()))
	}
	h.HandleMSS(s.ctxs[alg], at, from, msg)
}

func (s *System) dispatchMH(alg int, at MHID, msg Message) {
	h, ok := s.algs[alg].(MHHandler)
	if !ok {
		panic(fmt.Sprintf("core: algorithm %q received MH message without MHHandler", s.algs[alg].Name()))
	}
	h.HandleMH(s.ctxs[alg], at, msg)
}

func (s *System) notifyJoin(at MSSID, mh MHID, prev MSSID, wasDisconnected bool) {
	for i, alg := range s.algs {
		if obs, ok := alg.(MobilityObserver); ok {
			obs.OnJoin(s.ctxs[i], at, mh, prev, wasDisconnected)
		}
	}
}

func (s *System) notifyLeave(at MSSID, mh MHID) {
	for i, alg := range s.algs {
		if obs, ok := alg.(MobilityObserver); ok {
			obs.OnLeave(s.ctxs[i], at, mh)
		}
	}
}

func (s *System) notifyDisconnect(at MSSID, mh MHID) {
	for i, alg := range s.algs {
		if obs, ok := alg.(MobilityObserver); ok {
			obs.OnDisconnect(s.ctxs[i], at, mh)
		}
	}
}

func (s *System) notifyFailure(alg int, at MSSID, mh MHID, msg Message, reason FailReason) {
	s.stats.FailedDeliveries++
	s.trace("delivery-failure", "mss%d notified: mh%d %v", int(at), int(mh), reason)
	h, ok := s.algs[alg].(DeliveryFailureHandler)
	if !ok {
		// The algorithm chose not to observe failures; the message is
		// silently dropped, matching a sender that ignores the notification.
		return
	}
	h.OnDeliveryFailure(s.ctxs[alg], at, mh, msg, reason)
}

func (s *System) fireWaiters(mh MHID) {
	pending := s.waiters[mh]
	if len(pending) == 0 {
		return
	}
	delete(s.waiters, mh)
	for _, fn := range pending {
		// Re-enter through the kernel so continuations observe a settled
		// network state and deterministic ordering.
		s.kernel.Schedule(0, fn)
	}
}

// localMHs returns the cell's membership in ascending order. The slice is
// the live backing store — callers must not mutate it or hold it across
// events (see Context.LocalMHs).
func (s *System) localMHs(mss MSSID) []MHID {
	s.checkMSS(mss)
	return s.mss[mss].local.ids
}
