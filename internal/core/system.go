package core

import (
	"fmt"

	"mobiledist/internal/cost"
	"mobiledist/internal/engine"
	"mobiledist/internal/faults"
	"mobiledist/internal/sim"
)

// defaultStepLimit bounds runaway protocols; generous enough for every
// experiment in the suite.
const defaultStepLimit = 50_000_000

// simSubstrate binds the engine to the deterministic event kernel. Time is
// the kernel clock, deferred execution is kernel scheduling (stable
// submission-order tie-break at equal instants), per-channel FIFO is a flat
// high-water-mark clamp on arrival times, and randomness is the kernel RNG —
// so the whole run remains a pure function of the seed.
type simSubstrate struct {
	kernel *sim.Kernel
	fifo   *engine.FIFOClock
	// step is the one closure allocated per system: the kernel invoker that
	// hands a scheduled delivery record to the bound sink. Caching it at
	// bind time is what keeps TransmitRec allocation-free.
	step func(any)
}

func (s *simSubstrate) Now() sim.Time { return s.kernel.Now() }

func (s *simSubstrate) Enqueue(fn func()) { s.kernel.Schedule(0, fn) }

func (s *simSubstrate) After(d sim.Time, fn func()) { s.kernel.Schedule(d, fn) }

// DaemonAfter implements engine.DaemonScheduler. On the simulator a daemon
// timer is an ordinary scheduled event: virtual time only advances by
// running events, so there is no idle accounting to keep open.
func (s *simSubstrate) DaemonAfter(d sim.Time, fn func()) { s.kernel.Schedule(d, fn) }

func (s *simSubstrate) BindRecSink(sink engine.RecSink) {
	s.step = func(a any) { sink.StepRec(a.(*engine.DeliveryRec)) }
}

func (s *simSubstrate) TransmitRec(ch int, latency sim.Time, rec *engine.DeliveryRec) {
	arrival := s.fifo.Arrival(ch, s.kernel.Now(), latency)
	// The channel id doubles as the shard key: on a sharded kernel each
	// shard owns a slice of the channel space, and FIFO clamping makes
	// same-channel arrivals collide into cheap same-timestamp runs.
	if err := s.kernel.ScheduleCallAtKeyed(ch, arrival, s.step, rec); err != nil {
		panic(fmt.Sprintf("core: schedule transmit: %v", err))
	}
}

func (s *simSubstrate) AfterRec(d sim.Time, rec *engine.DeliveryRec) {
	if err := s.kernel.ScheduleCallKeyedErr(0, d, s.step, rec); err != nil {
		panic(fmt.Sprintf("core: schedule record: %v", err))
	}
}

func (s *simSubstrate) EnqueueRec(rec *engine.DeliveryRec) {
	if err := s.kernel.ScheduleCallKeyedErr(0, 0, s.step, rec); err != nil {
		panic(fmt.Sprintf("core: schedule record: %v", err))
	}
}

func (s *simSubstrate) RNG() *sim.RNG { return s.kernel.RNG() }

// System is the deterministic simulation driver of the two-tier model: the
// shared engine (internal/engine) bound to the sim kernel substrate. All
// methods must be called from the kernel goroutine (i.e. from within
// scheduled events, algorithm handlers, or before Run).
type System struct {
	cfg    Config
	kernel *sim.Kernel
	eng    *engine.Engine
	inj    *faults.Injector
}

// NewSystem builds a system from cfg, placing every MH in its initial cell.
// A non-empty cfg.Faults plan interposes the deterministic fault injector
// between the engine and the kernel substrate.
func NewSystem(cfg Config) (*System, error) {
	k := sim.NewShardedKernel(cfg.Seed, cfg.Shards)
	limit := cfg.StepLimit
	if limit == 0 {
		limit = defaultStepLimit
	}
	k.SetStepLimit(limit)
	raw := &simSubstrate{kernel: k}
	var sub engine.Substrate = raw
	var inj *faults.Injector
	if cfg.Faults != nil && !cfg.Faults.Empty() {
		var err error
		inj, err = faults.New(*cfg.Faults, cfg.M, cfg.N, raw)
		if err != nil {
			return nil, err
		}
		inj.SetTracer(cfg.Obs)
		sub = inj
	}
	// The observer wraps outermost so it records what the engine asked the
	// transport to do, before the fault injector disturbs it.
	cfg.Obs.SetTopology(cfg.M, cfg.N)
	sub = engine.ObserveSubstrate(sub, cfg.Obs)
	eng, err := engine.New(cfg.engineConfig(), sub)
	if err != nil {
		return nil, err
	}
	raw.fifo = engine.NewFIFOClockLayout(cfg.M, cfg.N)
	return &System{cfg: cfg, kernel: k, eng: eng, inj: inj}, nil
}

// MustNewSystem is NewSystem panicking on configuration errors; intended for
// tests and examples with literal configs.
func MustNewSystem(cfg Config) *System {
	s, err := NewSystem(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Register attaches an algorithm to the system and returns the Context its
// handlers will receive. Algorithms must be registered before any messages
// are exchanged.
func (s *System) Register(alg Algorithm) Context { return s.eng.Register(alg) }

// Engine exposes the shared network engine (for conformance tests and
// cross-substrate tooling).
func (s *System) Engine() *engine.Engine { return s.eng }

// Kernel exposes the underlying event kernel (for workload drivers).
func (s *System) Kernel() *sim.Kernel { return s.kernel }

// Injector exposes the fault injector, or nil when the system runs
// fault-free (no plan, or an empty one).
func (s *System) Injector() *faults.Injector { return s.inj }

// Meter exposes the cost meter.
func (s *System) Meter() *cost.Meter { return s.eng.Meter() }

// Stats returns a copy of the model-level counters.
func (s *System) Stats() Stats { return s.eng.Stats() }

// Config returns the system configuration.
func (s *System) Config() Config { return s.cfg }

// Now returns the current virtual time.
func (s *System) Now() sim.Time { return s.kernel.Now() }

// Schedule runs fn after delay ticks of virtual time.
func (s *System) Schedule(delay sim.Time, fn func()) { s.kernel.Schedule(delay, fn) }

// Run processes events until quiescence.
func (s *System) Run() error { return s.kernel.Run() }

// RunUntil processes events up to (and including) deadline.
func (s *System) RunUntil(deadline sim.Time) error { return s.kernel.RunUntil(deadline) }

// Where reports the cell and connectivity status of mh. While disconnected,
// the returned MSS is the cell holding the "disconnected" flag; while in
// transit it is the previous cell.
func (s *System) Where(mh MHID) (MSSID, MHStatus) { return s.eng.Where(mh) }

// SetDoze marks mh as dozing (or not). Deliveries to a dozing MH still
// succeed but are counted as interruptions.
func (s *System) SetDoze(mh MHID, dozing bool) { s.eng.SetDoze(mh, dozing) }

// IsDozing reports whether mh is in doze mode.
func (s *System) IsDozing(mh MHID) bool { return s.eng.IsDozing(mh) }

// Move initiates a cell switch: mh sends leave(r) to its current MSS,
// travels, then sends join(mh, prev) to the new cell's MSS. While between
// cells the MH neither sends nor receives (Section 2); routed messages park
// until the join completes. Moving to the current cell is a no-op.
func (s *System) Move(mh MHID, to MSSID) error { return s.eng.Move(mh, to) }

// Disconnect performs a voluntary disconnection: mh sends disconnect(r) to
// its local MSS, which removes it from the local list and sets the
// "disconnected" flag for it.
func (s *System) Disconnect(mh MHID) error { return s.eng.Disconnect(mh) }

// Reconnect re-attaches a disconnected MH at the given MSS with a
// reconnect(mh-id, prev mss-id) message. If knowsPrev is false the MH could
// not supply its previous location, and the new MSS queries every other
// fixed host to find it before running the handoff (Section 2).
func (s *System) Reconnect(mh MHID, at MSSID, knowsPrev bool) error {
	return s.eng.Reconnect(mh, at, knowsPrev)
}
