package core

import (
	"testing"

	"mobiledist/internal/cost"
)

// benchAlg is a no-op algorithm so benchmarks measure the network layer,
// not handler work.
type benchAlg struct{}

func (benchAlg) Name() string                                            { return "bench" }
func (benchAlg) HandleMSS(ctx Context, at MSSID, from From, msg Message) {}
func (benchAlg) HandleMH(ctx Context, at MHID, msg Message)              {}
func (benchAlg) OnDeliveryFailure(ctx Context, at MSSID, mh MHID, msg Message, reason FailReason) {
}

// BenchmarkRouteMHToMH measures the full MH-to-MH message path — wireless
// uplink, search, wired forward, wireless downlink, per-pair FIFO reorder —
// per message, on a stationary population.
func BenchmarkRouteMHToMH(b *testing.B) {
	const (
		m     = 8
		n     = 64
		batch = 256
	)
	cfg := DefaultConfig(m, n)
	cfg.StepLimit = 1 << 62
	sys := MustNewSystem(cfg)
	ctx := sys.Register(benchAlg{})
	rng := sys.Kernel().RNG()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += batch {
		for j := 0; j < batch; j++ {
			from := MHID(rng.Intn(n))
			to := MHID(rng.Intn(n))
			if err := ctx.SendMHToMH(from, to, j, cost.CatAlgorithm); err != nil {
				b.Fatal(err)
			}
		}
		if err := sys.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSystemChurn measures the mobility hot path under a high
// move/disconnect/reconnect rate with routed traffic racing the churn, the
// regime that stresses waiter parking, stale reroutes, and the flat FIFO
// state.
func BenchmarkSystemChurn(b *testing.B) {
	const (
		m     = 8
		n     = 64
		batch = 256
	)
	cfg := DefaultConfig(m, n)
	cfg.StepLimit = 1 << 62
	sys := MustNewSystem(cfg)
	ctx := sys.Register(benchAlg{})
	rng := sys.Kernel().RNG()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += batch {
		for j := 0; j < batch; j++ {
			mh := MHID(rng.Intn(n))
			switch _, status := sys.Where(mh); status {
			case StatusConnected:
				if rng.Intn(4) == 0 {
					_ = sys.Disconnect(mh)
				} else {
					_ = sys.Move(mh, MSSID(rng.Intn(m)))
				}
			case StatusDisconnected:
				_ = sys.Reconnect(mh, MSSID(rng.Intn(m)), rng.Intn(2) == 0)
			}
			// Route a message at the churning host from a random station.
			ctx.SendToMH(MSSID(rng.Intn(m)), mh, j, cost.CatAlgorithm)
		}
		if err := sys.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
