package core

import (
	"testing"

	"mobiledist/internal/cost"
)

// These tests are the allocation contract of the delivery-record refactor:
// once a system reaches steady state (pools populated, kernel heaps grown,
// per-pair FIFO state created), moving messages allocates nothing — every
// deferred delivery is a pooled value-state record, not a heap closure.

// routeSystem builds a small fault-free system and warms it up with enough
// traffic that every lazily-created structure on the routed path exists.
func routeSystem(t testing.TB, m, n int) (*System, Context) {
	t.Helper()
	cfg := DefaultConfig(m, n)
	cfg.StepLimit = 1 << 62
	sys := MustNewSystem(cfg)
	ctx := sys.Register(benchAlg{})
	return sys, ctx
}

func TestRoutedMessagePathZeroAllocs(t *testing.T) {
	const m, n = 8, 64
	sys, ctx := routeSystem(t, m, n)
	// A fixed pair set so the lazily-created per-pair FIFO states saturate
	// during warmup; the steady-state claim is about moving messages, not
	// about first contact between a pair.
	round := func() {
		for j := 0; j < 64; j++ {
			from := MHID(j % n)
			to := MHID((j + 1) % n)
			if err := ctx.SendMHToMH(from, to, 7, cost.CatAlgorithm); err != nil {
				t.Fatal(err)
			}
		}
		if err := sys.Run(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ { // steady state: pools, pair maps, kernel heaps
		round()
	}
	if allocs := testing.AllocsPerRun(20, round); allocs != 0 {
		t.Errorf("steady-state routed-message round allocated %.1f objects, want 0", allocs)
	}
	if live := sys.Engine().LiveRecs(); live != 0 {
		t.Errorf("%d delivery records live after quiescence, want 0", live)
	}
}

func TestStaleReroutePathZeroAllocs(t *testing.T) {
	const m, n = 4, 8
	sys, ctx := routeSystem(t, m, n)
	round := func() {
		// Put a wireless downlink in flight to the host's current cell,
		// then move it away before the transmission lands: the arrival
		// finds the host gone, reclassifies the wasted transmission, and
		// takes the stale-reroute branch (which parks on the in-transit
		// host and replays after the join).
		at, _ := sys.Where(0)
		ctx.SendToMH(at, 0, 7, cost.CatAlgorithm)
		if err := sys.Move(0, MSSID((int(at)+1)%m)); err != nil {
			t.Fatal(err)
		}
		ctx.SendToMH(MSSID((int(at)+2)%m), 0, 7, cost.CatAlgorithm)
		if err := sys.Run(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		round()
	}
	before := sys.Stats()
	if allocs := testing.AllocsPerRun(20, round); allocs != 0 {
		t.Errorf("steady-state move-and-route round allocated %.1f objects, want 0", allocs)
	}
	after := sys.Stats()
	if after.Moves <= before.Moves {
		t.Error("rounds performed no moves — the test is not exercising mobility")
	}
	if after.StaleReroutes == 0 {
		t.Error("no stale reroutes over the whole test — the race never fired")
	}
	if live := sys.Engine().LiveRecs(); live != 0 {
		t.Errorf("%d delivery records live after quiescence, want 0", live)
	}
}

func TestARQRetransmitPathZeroAllocs(t *testing.T) {
	const m, n = 4, 8
	cfg := DefaultConfig(m, n)
	cfg.StepLimit = 1 << 62
	cfg.Faults = &FaultPlan{
		Seed: 7,
		Down: LinkFaults{Drop: 0.3, Duplicate: 0.1, Reorder: 0.1},
		Up:   LinkFaults{Drop: 0.3},
	}
	sys := MustNewSystem(cfg)
	ctx := sys.Register(benchAlg{})
	rng := sys.Kernel().RNG()
	round := func() {
		for j := 0; j < 16; j++ {
			if err := ctx.SendMHToMH(MHID(rng.Intn(n)), MHID(rng.Intn(n)), 7, cost.CatAlgorithm); err != nil {
				t.Fatal(err)
			}
		}
		if err := sys.Run(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		round()
	}
	before := sys.Stats()
	if allocs := testing.AllocsPerRun(20, round); allocs != 0 {
		t.Errorf("steady-state lossy-wireless round allocated %.1f objects, want 0", allocs)
	}
	after := sys.Stats()
	if after.Retransmits <= before.Retransmits {
		t.Error("rounds performed no retransmissions — the ARQ path is not exercised")
	}
	if after.WirelessDrops <= before.WirelessDrops {
		t.Error("rounds dropped nothing — the fault plan is not exercised")
	}
	if live := sys.Engine().LiveRecs(); live != 0 {
		t.Errorf("%d delivery records live after quiescence, want 0", live)
	}
}

// TestChaosPlanRecyclesAllRecords is the pool-leak witness: a full chaos
// plan (loss, duplication, reordering, a cell flap, a crash with restart)
// with traffic racing churn must return every delivery record to the free
// list by quiescence — drops and crash discards free, duplicates clone,
// ARQ frees payloads on ack, waiters drain on join.
func TestChaosPlanRecyclesAllRecords(t *testing.T) {
	const m, n = 4, 16
	cfg := DefaultConfig(m, n)
	cfg.StepLimit = 1 << 62
	cfg.Faults = &FaultPlan{
		Seed:    99,
		Down:    LinkFaults{Drop: 0.2, Duplicate: 0.15, Reorder: 0.1},
		Up:      LinkFaults{Drop: 0.2, Duplicate: 0.1, Reorder: 0.05},
		Flaps:   []Flap{{MSS: 1, From: 200, Until: 400}},
		Crashes: []Crash{{MSS: 2, At: 300, RestartAt: 600}},
	}
	sys := MustNewSystem(cfg)
	ctx := sys.Register(benchAlg{})
	rng := sys.Kernel().RNG()
	for i := 0; i < 400; i++ {
		mh := MHID(rng.Intn(n))
		switch _, status := sys.Where(mh); status {
		case StatusConnected:
			if rng.Intn(5) == 0 {
				_ = sys.Disconnect(mh)
			} else {
				_ = sys.Move(mh, MSSID(rng.Intn(m)))
			}
		case StatusDisconnected:
			_ = sys.Reconnect(mh, MSSID(rng.Intn(m)), rng.Intn(2) == 0)
		}
		_ = ctx.SendMHToMH(MHID(rng.Intn(n)), MHID(rng.Intn(n)), i, cost.CatAlgorithm)
		if i%37 == 0 {
			if err := sys.Run(); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Reconnect every disconnected host so parked waiter records drain.
	for mh := 0; mh < n; mh++ {
		if _, status := sys.Where(MHID(mh)); status == StatusDisconnected {
			_ = sys.Reconnect(MHID(mh), MSSID(mh%m), true)
		}
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	st := sys.Stats()
	fs := sys.Injector().Stats()
	if fs.WirelessDrops == 0 || fs.WirelessDuplicates == 0 || st.Retransmits == 0 {
		t.Errorf("chaos plan injected nothing (drops=%d dups=%d retransmits=%d)",
			fs.WirelessDrops, fs.WirelessDuplicates, st.Retransmits)
	}
	if fs.CrashDiscards == 0 {
		t.Logf("note: crash window discarded no wired traffic this seed (discards=%d)", fs.CrashDiscards)
	}
	if live := sys.Engine().LiveRecs(); live != 0 {
		t.Errorf("%d delivery records leaked (not returned to the pool) after quiescence", live)
	}
}
