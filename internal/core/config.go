package core

import (
	"fmt"

	"mobiledist/internal/cost"
	"mobiledist/internal/sim"
)

// Delay is an inclusive range of virtual-time latencies. Each transmission
// draws uniformly from the range; FIFO order per channel is preserved
// regardless of the draw.
type Delay struct {
	Min, Max sim.Time
}

// Fixed returns a degenerate range with a single value.
func FixedDelay(d sim.Time) Delay { return Delay{Min: d, Max: d} }

func (d Delay) validate(name string) error {
	if d.Min < 0 || d.Max < d.Min {
		return fmt.Errorf("core: invalid %s delay range [%d,%d]", name, d.Min, d.Max)
	}
	return nil
}

// Config describes a two-tier network instance.
type Config struct {
	// M is the number of mobile support stations (M >= 1).
	M int
	// N is the number of mobile hosts (N >= 1). The paper assumes N >> M but
	// the model does not require it.
	N int
	// Params are the message cost constants.
	Params cost.Params
	// Seed initialises the deterministic RNG.
	Seed uint64

	// Wired is the MSS-to-MSS latency range.
	Wired Delay
	// Wireless is the MH<->MSS latency range.
	Wireless Delay
	// Travel is how long a MH spends between leaving one cell and joining
	// the next.
	Travel Delay

	// SearchMode selects the search service (abstract Csearch vs broadcast).
	SearchMode SearchMode
	// PessimisticSearch, when true, charges Csearch on every routed delivery
	// to a MH even if it happens to still be local — the paper's "any
	// message destined for a mobile host incurs a fixed search cost"
	// assumption, under which the analytic expressions are exact. When
	// false, search is charged only for genuinely non-local destinations.
	PessimisticSearch bool

	// Placement maps each MH to its initial cell. Nil means round-robin
	// (mh i starts at MSS i mod M).
	Placement func(mh MHID) MSSID

	// StepLimit bounds total simulation events as a runaway-protocol
	// backstop; 0 applies a generous default.
	StepLimit uint64

	// Trace, when non-nil, receives one line per model-level event
	// (mobility protocol steps, searches, delivery failures). Useful for
	// debugging protocol runs; adds no cost charges.
	Trace func(t sim.Time, event, detail string)
}

// DefaultConfig returns a paper-faithful configuration for m stations and
// n mobile hosts.
func DefaultConfig(m, n int) Config {
	return Config{
		M:                 m,
		N:                 n,
		Params:            cost.DefaultParams(),
		Seed:              1,
		Wired:             Delay{Min: 5, Max: 20},
		Wireless:          Delay{Min: 1, Max: 4},
		Travel:            Delay{Min: 10, Max: 50},
		SearchMode:        SearchAbstract,
		PessimisticSearch: true,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.M < 1 {
		return fmt.Errorf("core: M must be >= 1, got %d", c.M)
	}
	if c.N < 1 {
		return fmt.Errorf("core: N must be >= 1, got %d", c.N)
	}
	if err := c.Params.Validate(); err != nil {
		return err
	}
	if err := c.Wired.validate("wired"); err != nil {
		return err
	}
	if err := c.Wireless.validate("wireless"); err != nil {
		return err
	}
	if err := c.Travel.validate("travel"); err != nil {
		return err
	}
	switch c.SearchMode {
	case SearchAbstract, SearchBroadcast:
	default:
		return fmt.Errorf("core: unknown search mode %d", int(c.SearchMode))
	}
	return nil
}
