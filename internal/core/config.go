package core

import (
	"mobiledist/internal/cost"
	"mobiledist/internal/engine"
	"mobiledist/internal/sim"
)

// Config describes a two-tier network instance driven by the deterministic
// simulator. The model parameters mirror engine.Config; Seed and StepLimit
// are kernel-substrate concerns that only exist here.
type Config struct {
	// M is the number of mobile support stations (M >= 1).
	M int
	// N is the number of mobile hosts (N >= 1). The paper assumes N >> M but
	// the model does not require it.
	N int
	// Params are the message cost constants.
	Params cost.Params
	// Seed initialises the deterministic RNG.
	Seed uint64

	// Wired is the MSS-to-MSS latency range.
	Wired Delay
	// Wireless is the MH<->MSS latency range.
	Wireless Delay
	// Travel is how long a MH spends between leaving one cell and joining
	// the next.
	Travel Delay

	// SearchMode selects the search service (abstract Csearch vs broadcast).
	SearchMode SearchMode
	// PessimisticSearch, when true, charges Csearch on every routed delivery
	// to a MH even if it happens to still be local — the paper's "any
	// message destined for a mobile host incurs a fixed search cost"
	// assumption, under which the analytic expressions are exact. When
	// false, search is charged only for genuinely non-local destinations.
	PessimisticSearch bool

	// Placement maps each MH to its initial cell. Nil means round-robin
	// (mh i starts at MSS i mod M).
	Placement func(mh MHID) MSSID

	// StepLimit bounds total simulation events as a runaway-protocol
	// backstop; 0 applies a generous default.
	StepLimit uint64

	// Trace, when non-nil, receives one line per model-level event
	// (mobility protocol steps, searches, delivery failures). Useful for
	// debugging protocol runs; adds no cost charges.
	Trace func(t sim.Time, event, detail string)
}

// DefaultConfig returns a paper-faithful configuration for m stations and
// n mobile hosts.
func DefaultConfig(m, n int) Config {
	return Config{
		M:                 m,
		N:                 n,
		Params:            cost.DefaultParams(),
		Seed:              1,
		Wired:             Delay{Min: 5, Max: 20},
		Wireless:          Delay{Min: 1, Max: 4},
		Travel:            Delay{Min: 10, Max: 50},
		SearchMode:        SearchAbstract,
		PessimisticSearch: true,
	}
}

// engineConfig projects the simulator configuration onto the shared engine's
// substrate-independent parameters.
func (c Config) engineConfig() engine.Config {
	return engine.Config{
		M:                 c.M,
		N:                 c.N,
		Params:            c.Params,
		Wired:             c.Wired,
		Wireless:          c.Wireless,
		Travel:            c.Travel,
		SearchMode:        c.SearchMode,
		PessimisticSearch: c.PessimisticSearch,
		Placement:         c.Placement,
		Trace:             c.Trace,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	return c.engineConfig().Validate()
}
