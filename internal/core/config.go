package core

import (
	"mobiledist/internal/cost"
	"mobiledist/internal/engine"
	"mobiledist/internal/faults"
	"mobiledist/internal/obs"
	"mobiledist/internal/sim"
)

// Fault-injection vocabulary, re-exported so drivers configure plans
// without importing internal/faults directly.
type (
	// FaultPlan is a declarative fault schedule (see internal/faults).
	FaultPlan = faults.Plan
	// LinkFaults are per-transmission wireless fault probabilities.
	LinkFaults = faults.LinkFaults
	// Flap is a timed wireless outage of one cell.
	Flap = faults.Flap
	// Crash is a timed MSS failure (with optional restart).
	Crash = faults.Crash
)

// Config describes a two-tier network instance driven by the deterministic
// simulator. The model parameters mirror engine.Config; Seed and StepLimit
// are kernel-substrate concerns that only exist here.
type Config struct {
	// M is the number of mobile support stations (M >= 1).
	M int
	// N is the number of mobile hosts (N >= 1). The paper assumes N >> M but
	// the model does not require it.
	N int
	// Params are the message cost constants.
	Params cost.Params
	// Seed initialises the deterministic RNG.
	Seed uint64

	// Wired is the MSS-to-MSS latency range.
	Wired Delay
	// Wireless is the MH<->MSS latency range.
	Wireless Delay
	// Travel is how long a MH spends between leaving one cell and joining
	// the next.
	Travel Delay

	// SearchMode selects the search service (abstract Csearch vs broadcast).
	SearchMode SearchMode
	// PessimisticSearch, when true, charges Csearch on every routed delivery
	// to a MH even if it happens to still be local — the paper's "any
	// message destined for a mobile host incurs a fixed search cost"
	// assumption, under which the analytic expressions are exact. When
	// false, search is charged only for genuinely non-local destinations.
	PessimisticSearch bool

	// Placement maps each MH to its initial cell. Nil means round-robin
	// (mh i starts at MSS i mod M).
	Placement func(mh MHID) MSSID

	// Faults, when non-nil and non-empty, wraps the kernel substrate in a
	// deterministic fault injector applying the plan (internal/faults) and
	// implies ReliableWireless so algorithms keep the model's delivery
	// guarantees under loss.
	Faults *FaultPlan

	// ReliableWireless enables the engine's stop-and-wait ARQ sublayer on
	// the wireless channels even without a fault plan (see
	// engine.Config.ReliableWireless). A non-empty Faults plan enables it
	// regardless.
	ReliableWireless bool
	// ARQTimeout is the sublayer's initial retransmission timeout in ticks
	// (0 derives a default from the wireless latency range).
	ARQTimeout sim.Time

	// WaiterLimit caps the per-MH in-transit waiter queue (see
	// engine.Config.WaiterLimit); 0 means unlimited.
	WaiterLimit int

	// StepLimit bounds total simulation events as a runaway-protocol
	// backstop; 0 applies a generous default.
	StepLimit uint64

	// Shards partitions the kernel's pending-event set by channel into the
	// given number of per-shard heaps (sim.NewShardedKernel), rounded up to
	// a power of two. 0 or 1 keeps the single-heap kernel. The schedule is
	// byte-identical either way; sharding only changes the data structure's
	// constants, which matters from roughly 10^5 hosts up.
	Shards int

	// Trace, when non-nil, receives one line per model-level event
	// (mobility protocol steps, searches, delivery failures). Useful for
	// debugging protocol runs; adds no cost charges.
	Trace func(t sim.Time, event, detail string)

	// Obs, when non-nil, records typed observability events and metrics
	// (internal/obs): every Transmit at the substrate seam, the engine's
	// model-level events, fault-injection decisions, and algorithm CS
	// progress. Nil (the default) keeps the hot path untouched.
	Obs *obs.Tracer
}

// defaultFaults is the plan DefaultConfig attaches to every new system;
// nil (the normal state) means fault-free. See SetDefaultFaultPlan.
var defaultFaults *FaultPlan

// SetDefaultFaultPlan makes every DefaultConfig-built system run under the
// given fault plan; nil restores fault-free defaults. It exists so table
// generators (cmd/mobilexp's -drop/-dup/-flap/-crash flags) can regenerate
// the whole experiment suite under one configurable unreliability setting
// without threading a plan through every experiment constructor. Set it
// during process setup, before building systems — not concurrently with
// them.
func SetDefaultFaultPlan(p *FaultPlan) { defaultFaults = p }

// DefaultFaultPlan returns the plan DefaultConfig currently attaches.
func DefaultFaultPlan() *FaultPlan { return defaultFaults }

// defaultObs is the tracer DefaultConfig attaches to every new system; nil
// (the normal state) means tracing off. See SetDefaultTracer.
var defaultObs *obs.Tracer

// SetDefaultTracer makes every DefaultConfig-built system record into the
// given tracer; nil restores tracing-off defaults. Like SetDefaultFaultPlan
// it exists so cmd/mobilexp's -trace flag can capture the whole experiment
// suite without threading a tracer through every experiment constructor.
// Set it during process setup, before building systems. One tracer shared
// by concurrently-running systems is safe (Record locks) but interleaves
// their events; for deterministic traces run systems sequentially.
func SetDefaultTracer(t *obs.Tracer) { defaultObs = t }

// DefaultTracer returns the tracer DefaultConfig currently attaches.
func DefaultTracer() *obs.Tracer { return defaultObs }

// DefaultConfig returns a paper-faithful configuration for m stations and
// n mobile hosts.
func DefaultConfig(m, n int) Config {
	return Config{
		M:                 m,
		N:                 n,
		Params:            cost.DefaultParams(),
		Seed:              1,
		Wired:             Delay{Min: 5, Max: 20},
		Wireless:          Delay{Min: 1, Max: 4},
		Travel:            Delay{Min: 10, Max: 50},
		SearchMode:        SearchAbstract,
		PessimisticSearch: true,
		Faults:            defaultFaults,
		Obs:               defaultObs,
	}
}

// engineConfig projects the simulator configuration onto the shared engine's
// substrate-independent parameters. A non-empty fault plan forces the ARQ
// sublayer on: without it, injected loss would silently void the model's
// FIFO and prefix-delivery guarantees.
func (c Config) engineConfig() engine.Config {
	reliable := c.ReliableWireless
	if c.Faults != nil && !c.Faults.Empty() {
		reliable = true
	}
	return engine.Config{
		M:                 c.M,
		N:                 c.N,
		Params:            c.Params,
		Wired:             c.Wired,
		Wireless:          c.Wireless,
		Travel:            c.Travel,
		SearchMode:        c.SearchMode,
		PessimisticSearch: c.PessimisticSearch,
		ReliableWireless:  reliable,
		ARQTimeout:        c.ARQTimeout,
		WaiterLimit:       c.WaiterLimit,
		Placement:         c.Placement,
		Trace:             c.Trace,
		Obs:               c.Obs,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	return c.engineConfig().Validate()
}
