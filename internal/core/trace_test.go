package core

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"mobiledist/internal/cost"
	"mobiledist/internal/obs"
	"mobiledist/internal/sim"
)

func TestTraceEmitsMobilityAndSearchEvents(t *testing.T) {
	var lines []string
	cfg := DefaultConfig(3, 4)
	cfg.Trace = func(ts sim.Time, event, detail string) {
		lines = append(lines, fmt.Sprintf("%d %s %s", ts, event, detail))
	}
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	p := &probe{}
	ctx := sys.Register(p)

	if err := sys.Move(0, 2); err != nil {
		t.Fatalf("Move: %v", err)
	}
	if err := sys.Disconnect(1); err != nil {
		t.Fatalf("Disconnect: %v", err)
	}
	sys.Schedule(50, func() {
		ctx.SendToMH(0, 1, "x", cost.CatAlgorithm) // fails: disconnected
		ctx.SendToMH(0, 3, "y", cost.CatAlgorithm) // delivered
	})
	sys.Schedule(500, func() {
		if err := sys.Reconnect(1, 0, true); err != nil {
			t.Errorf("Reconnect: %v", err)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}

	joined := strings.Join(lines, "\n")
	for _, want := range []string{"leave", "left", "join", "disconnect", "reconnect", "search", "delivery-failure"} {
		if !strings.Contains(joined, want) {
			t.Errorf("trace missing %q events:\n%s", want, joined)
		}
	}
	// Timestamps must be non-decreasing.
	var last sim.Time = -1
	for _, l := range lines {
		var ts int64
		if _, err := fmt.Sscanf(l, "%d", &ts); err != nil {
			t.Fatalf("bad trace line %q", l)
		}
		if sim.Time(ts) < last {
			t.Fatalf("trace timestamps decreased:\n%s", joined)
		}
		last = sim.Time(ts)
	}
}

// TestShardedSystemGoldenTrace pins the sharded kernel's determinism
// contract at the system level: the same seeded run must produce a
// byte-identical observability trace, cost report, and stats regardless of
// the kernel's shard count. This is the golden-trace regression guarding
// every data-structure change under ScheduleKeyed.
func TestShardedSystemGoldenTrace(t *testing.T) {
	run := func(shards int) (traceBytes []byte, report string, stats Stats) {
		tr := obs.NewTracer(0)
		cfg := DefaultConfig(8, 64)
		cfg.Shards = shards
		cfg.Obs = tr
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatalf("NewSystem(shards=%d): %v", shards, err)
		}
		p := &probe{}
		ctx := sys.Register(p)

		// A mixed workload touching every scheduling path: routed sends
		// (keyed Transmit), moves and disconnects (waiters, zero-delay
		// enqueues), broadcasts, and MH-to-MH traffic.
		rng := sys.Kernel().RNG().Fork()
		for i := 0; i < 40; i++ {
			i := i
			sys.Schedule(sim.Time(1+rng.Intn(200)), func() {
				switch i % 4 {
				case 0:
					ctx.SendToMH(MSSID(i%8), MHID((i*7)%64), i, cost.CatAlgorithm)
				case 1:
					if err := sys.Move(MHID((i*5)%64), MSSID((i+3)%8)); err != nil {
						t.Errorf("Move: %v", err)
					}
				case 2:
					ctx.BroadcastFixed(MSSID(i%8), i, cost.CatControl)
				case 3:
					_ = ctx.SendMHToMH(MHID(i%64), MHID((i*11)%64), i, cost.CatAlgorithm)
				}
			})
		}
		sys.Schedule(30, func() {
			if err := sys.Disconnect(9); err != nil {
				t.Errorf("Disconnect: %v", err)
			}
		})
		sys.Schedule(400, func() {
			if err := sys.Reconnect(9, 3, true); err != nil {
				t.Errorf("Reconnect: %v", err)
			}
		})
		if err := sys.Run(); err != nil {
			t.Fatalf("Run(shards=%d): %v", shards, err)
		}
		b, err := tr.Snapshot().MarshalBinary()
		if err != nil {
			t.Fatalf("MarshalBinary: %v", err)
		}
		return b, sys.Meter().Report(cfg.Params), sys.Stats()
	}

	golden, goldenReport, goldenStats := run(1)
	if len(golden) == 0 {
		t.Fatal("golden trace is empty")
	}
	for _, shards := range []int{8, 64} {
		got, report, stats := run(shards)
		if !bytes.Equal(got, golden) {
			t.Errorf("shards=%d trace differs from single-heap golden trace (%d vs %d bytes)", shards, len(got), len(golden))
		}
		if report != goldenReport {
			t.Errorf("shards=%d cost report differs:\n%s\nwant:\n%s", shards, report, goldenReport)
		}
		if fmt.Sprintf("%+v", stats) != fmt.Sprintf("%+v", goldenStats) {
			t.Errorf("shards=%d stats differ: %+v vs %+v", shards, stats, goldenStats)
		}
	}
}

func TestTraceNilIsSilent(t *testing.T) {
	sys, _, _ := newProbeSystem(t, 3, 3)
	// No trace configured: nothing to assert beyond "does not panic".
	if err := sys.Move(0, 1); err != nil {
		t.Fatalf("Move: %v", err)
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}
