package core

import (
	"fmt"
	"strings"
	"testing"

	"mobiledist/internal/cost"
	"mobiledist/internal/sim"
)

func TestTraceEmitsMobilityAndSearchEvents(t *testing.T) {
	var lines []string
	cfg := DefaultConfig(3, 4)
	cfg.Trace = func(ts sim.Time, event, detail string) {
		lines = append(lines, fmt.Sprintf("%d %s %s", ts, event, detail))
	}
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	p := &probe{}
	ctx := sys.Register(p)

	if err := sys.Move(0, 2); err != nil {
		t.Fatalf("Move: %v", err)
	}
	if err := sys.Disconnect(1); err != nil {
		t.Fatalf("Disconnect: %v", err)
	}
	sys.Schedule(50, func() {
		ctx.SendToMH(0, 1, "x", cost.CatAlgorithm) // fails: disconnected
		ctx.SendToMH(0, 3, "y", cost.CatAlgorithm) // delivered
	})
	sys.Schedule(500, func() {
		if err := sys.Reconnect(1, 0, true); err != nil {
			t.Errorf("Reconnect: %v", err)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}

	joined := strings.Join(lines, "\n")
	for _, want := range []string{"leave", "left", "join", "disconnect", "reconnect", "search", "delivery-failure"} {
		if !strings.Contains(joined, want) {
			t.Errorf("trace missing %q events:\n%s", want, joined)
		}
	}
	// Timestamps must be non-decreasing.
	var last sim.Time = -1
	for _, l := range lines {
		var ts int64
		if _, err := fmt.Sscanf(l, "%d", &ts); err != nil {
			t.Fatalf("bad trace line %q", l)
		}
		if sim.Time(ts) < last {
			t.Fatalf("trace timestamps decreased:\n%s", joined)
		}
		last = sim.Time(ts)
	}
}

func TestTraceNilIsSilent(t *testing.T) {
	sys, _, _ := newProbeSystem(t, 3, 3)
	// No trace configured: nothing to assert beyond "does not panic".
	if err := sys.Move(0, 1); err != nil {
		t.Fatalf("Move: %v", err)
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}
