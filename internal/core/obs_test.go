package core

import (
	"bytes"
	"testing"

	"mobiledist/internal/cost"
	"mobiledist/internal/obs"
)

// runTracedWorkload runs a fixed mobility-plus-messaging workload against a
// fresh seeded system with its own tracer and returns the canonical JSONL
// encoding of the captured trace.
func runTracedWorkload(t *testing.T, seed uint64) []byte {
	t.Helper()
	tracer := obs.NewTracer(0)
	cfg := DefaultConfig(3, 4)
	cfg.Seed = seed
	cfg.Obs = tracer
	sys := MustNewSystem(cfg)
	p := &probe{}
	ctx := sys.Register(p)

	if err := sys.Move(0, 2); err != nil {
		t.Fatalf("Move: %v", err)
	}
	if err := sys.Disconnect(1); err != nil {
		t.Fatalf("Disconnect: %v", err)
	}
	sys.Schedule(50, func() {
		ctx.SendToMH(0, 3, "y", cost.CatAlgorithm)
	})
	sys.Schedule(500, func() {
		if err := sys.Reconnect(1, 0, true); err != nil {
			t.Errorf("Reconnect: %v", err)
		}
	})
	sys.Schedule(600, func() { _ = sys.Move(3, 0) })
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}

	var buf bytes.Buffer
	if err := tracer.Snapshot().WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	return buf.Bytes()
}

func TestObsTraceIsDeterministic(t *testing.T) {
	a := runTracedWorkload(t, 11)
	b := runTracedWorkload(t, 11)
	if len(a) == 0 {
		t.Fatal("trace is empty")
	}
	if !bytes.Equal(a, b) {
		t.Error("two runs with the same seed produced different traces")
	}
	if c := runTracedWorkload(t, 12); bytes.Equal(a, c) {
		t.Error("different seeds produced identical traces (tracer not wired to the run?)")
	}
}

func TestObsEventsMatchStats(t *testing.T) {
	tracer := obs.NewTracer(0).WithMetrics(obs.NewMetrics())
	cfg := DefaultConfig(3, 4)
	cfg.Obs = tracer
	sys := MustNewSystem(cfg)
	sys.Register(&probe{})

	if err := sys.Move(0, 2); err != nil {
		t.Fatalf("Move: %v", err)
	}
	if err := sys.Disconnect(1); err != nil {
		t.Fatalf("Disconnect: %v", err)
	}
	sys.Schedule(100, func() {
		if err := sys.Reconnect(1, 2, true); err != nil {
			t.Errorf("Reconnect: %v", err)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}

	stats := sys.Stats()
	snap := tracer.MetricsSnapshot()
	for _, tc := range []struct {
		kind string
		want int64
	}{
		{"leave", stats.Moves}, // reconnects don't leave: the MH detached at disconnect time
		{"disconnect", stats.Disconnects},
		{"reconnect", stats.Reconnects},
		{"search", stats.Searches},
	} {
		if got := int64(snap.Counts[tc.kind]); got != tc.want {
			t.Errorf("event count %q = %d, want %d (Stats: %+v)", tc.kind, got, tc.want, stats)
		}
	}
	if m, n := tracer.Topology(); m != 3 || n != 4 {
		t.Errorf("tracer topology = (%d, %d), want (3, 4)", m, n)
	}
}

func TestDefaultTracerAttachesToDefaultConfig(t *testing.T) {
	tracer := obs.NewTracer(0)
	SetDefaultTracer(tracer)
	defer SetDefaultTracer(nil)
	if DefaultTracer() != tracer {
		t.Fatal("DefaultTracer did not return the installed tracer")
	}
	cfg := DefaultConfig(2, 2)
	if cfg.Obs != tracer {
		t.Error("DefaultConfig did not pick up the default tracer")
	}
	sys := MustNewSystem(cfg)
	if err := sys.Move(1, 0); err != nil {
		t.Fatalf("Move: %v", err)
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if tracer.Total() == 0 {
		t.Error("system built from DefaultConfig recorded no events")
	}
}
