package core

import (
	"testing"

	"mobiledist/internal/cost"
)

// TestWaiterLimitDropsOverflow pins the bounded waiter queue: with
// WaiterLimit set and no custody hook attached, routed messages beyond
// the in-transit queue cap are discarded, counted in Stats.WaiterDrops,
// and everything under the cap still delivers after the join.
func TestWaiterLimitDropsOverflow(t *testing.T) {
	cfg := DefaultConfig(2, 1)
	cfg.WaiterLimit = 1
	cfg.Wireless = FixedDelay(2)
	cfg.Wired = FixedDelay(3)
	cfg.Travel = FixedDelay(100)
	sys := MustNewSystem(cfg)
	p := &probe{}
	ctx := sys.Register(p)

	sys.Schedule(5, func() {
		if err := sys.Move(0, 1); err != nil {
			t.Errorf("Move: %v", err)
		}
	})
	sys.Schedule(20, func() {
		ctx.SendToMH(0, 0, "kept", cost.CatAlgorithm)
		ctx.SendToMH(0, 0, "dropped-1", cost.CatAlgorithm)
		ctx.SendToMH(0, 0, "dropped-2", cost.CatAlgorithm)
	})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := sys.Stats().WaiterDrops; got != 2 {
		t.Errorf("WaiterDrops = %d, want 2", got)
	}
	if len(p.mhGot) != 1 || p.mhGot[0].Msg != "kept" {
		t.Errorf("deliveries = %v, want only the first queued message", p.mhGot)
	}
}

// TestWaiterLimitUnsetKeepsEverything is the control: the default
// unlimited queue parks any number of messages and delivers them all.
func TestWaiterLimitUnsetKeepsEverything(t *testing.T) {
	cfg := DefaultConfig(2, 1)
	cfg.Wireless = FixedDelay(2)
	cfg.Wired = FixedDelay(3)
	cfg.Travel = FixedDelay(100)
	sys := MustNewSystem(cfg)
	p := &probe{}
	ctx := sys.Register(p)

	sys.Schedule(5, func() {
		if err := sys.Move(0, 1); err != nil {
			t.Errorf("Move: %v", err)
		}
	})
	sys.Schedule(20, func() {
		for i := 0; i < 8; i++ {
			ctx.SendToMH(0, 0, i, cost.CatAlgorithm)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := sys.Stats().WaiterDrops; got != 0 {
		t.Errorf("WaiterDrops = %d, want 0 without a limit", got)
	}
	if len(p.mhGot) != 8 {
		t.Errorf("got %d deliveries, want all 8", len(p.mhGot))
	}
}
