package core

import (
	"testing"
	"testing/quick"

	"mobiledist/internal/cost"
	"mobiledist/internal/sim"
)

// TestPropertyWiredFIFO: for any schedule of sends on one wired channel,
// deliveries arrive in send order.
func TestPropertyWiredFIFO(t *testing.T) {
	check := func(seed uint64, gaps []uint8) bool {
		cfg := DefaultConfig(2, 1)
		cfg.Seed = seed
		sys, err := NewSystem(cfg)
		if err != nil {
			return false
		}
		p := &probe{}
		ctx := sys.Register(p)
		at := sim.Time(0)
		for i, g := range gaps {
			i := i
			at += sim.Time(g % 16)
			sys.Schedule(at, func() {
				ctx.SendFixed(0, 1, i, cost.CatAlgorithm)
			})
		}
		if err := sys.Run(); err != nil {
			return false
		}
		if len(p.mssGot) != len(gaps) {
			return false
		}
		for i, ev := range p.mssGot {
			if ev.Msg != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPropertyMHPairFIFOUnderMobility: MH-to-MH deliveries for one ordered
// pair stay in send order under arbitrary destination move schedules.
func TestPropertyMHPairFIFOUnderMobility(t *testing.T) {
	check := func(seed uint64, moves []uint8) bool {
		const m = 4
		cfg := DefaultConfig(m, 2)
		cfg.Seed = seed
		sys, err := NewSystem(cfg)
		if err != nil {
			return false
		}
		p := &probe{}
		ctx := sys.Register(p)

		const msgs = 12
		for i := 0; i < msgs; i++ {
			i := i
			sys.Schedule(sim.Time(i*7), func() {
				_ = ctx.SendMHToMH(0, 1, i, cost.CatAlgorithm)
			})
		}
		for i, mv := range moves {
			if i >= 6 {
				break
			}
			to := MSSID(mv % m)
			sys.Schedule(sim.Time(i*13), func() {
				if _, st := sys.Where(1); st == StatusConnected {
					_ = sys.Move(1, to)
				}
			})
		}
		if err := sys.Run(); err != nil {
			return false
		}
		if len(p.mhGot) != msgs {
			return false
		}
		for i, ev := range p.mhGot {
			if ev.Msg != i || ev.At != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestPropertyExactlyOnceDelivery: with no disconnections, every routed
// send to a MH is delivered exactly once, regardless of mobility.
func TestPropertyExactlyOnceDelivery(t *testing.T) {
	check := func(seed uint64, plan []uint8) bool {
		const (
			m = 5
			n = 6
		)
		cfg := DefaultConfig(m, n)
		cfg.Seed = seed
		sys, err := NewSystem(cfg)
		if err != nil {
			return false
		}
		p := &probe{}
		ctx := sys.Register(p)

		sent := 0
		for i, op := range plan {
			if i >= 24 {
				break
			}
			i := i
			switch op % 3 {
			case 0, 1:
				dst := MHID(op % n)
				tag := sent
				sent++
				sys.Schedule(sim.Time(i*5), func() {
					ctx.SendToMH(MSSID(int(op)%m), dst, tag, cost.CatAlgorithm)
				})
			case 2:
				mh := MHID(op % n)
				to := MSSID((int(op) / 3) % m)
				sys.Schedule(sim.Time(i*5), func() {
					if _, st := sys.Where(mh); st == StatusConnected {
						_ = sys.Move(mh, to)
					}
				})
			}
		}
		if err := sys.Run(); err != nil {
			return false
		}
		if len(p.mhGot) != sent {
			return false
		}
		seen := make(map[any]bool, sent)
		for _, ev := range p.mhGot {
			if seen[ev.Msg] {
				return false // duplicate delivery
			}
			seen[ev.Msg] = true
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestPropertyLocalListsPartitionConnectedMHs: after any mobility schedule
// drains, every connected MH is in exactly one local list — the list of the
// cell Where reports.
func TestPropertyLocalListsPartitionConnectedMHs(t *testing.T) {
	check := func(seed uint64, plan []uint8) bool {
		const (
			m = 4
			n = 5
		)
		cfg := DefaultConfig(m, n)
		cfg.Seed = seed
		sys, err := NewSystem(cfg)
		if err != nil {
			return false
		}
		p := &probe{}
		ctx := sys.Register(p)
		_ = p

		for i, op := range plan {
			if i >= 30 {
				break
			}
			mh := MHID(op % n)
			switch op % 4 {
			case 0, 1:
				to := MSSID((int(op) / 4) % m)
				sys.Schedule(sim.Time(i*11), func() {
					if _, st := sys.Where(mh); st == StatusConnected {
						_ = sys.Move(mh, to)
					}
				})
			case 2:
				sys.Schedule(sim.Time(i*11), func() {
					if _, st := sys.Where(mh); st == StatusConnected {
						_ = sys.Disconnect(mh)
					}
				})
			case 3:
				at := MSSID((int(op) / 4) % m)
				sys.Schedule(sim.Time(i*11), func() {
					if _, st := sys.Where(mh); st == StatusDisconnected {
						_ = sys.Reconnect(mh, at, op%2 == 0)
					}
				})
			}
		}
		if err := sys.Run(); err != nil {
			return false
		}
		// Check the partition invariant.
		count := make(map[MHID]int, n)
		for i := 0; i < m; i++ {
			for _, mh := range ctx.LocalMHs(MSSID(i)) {
				count[mh]++
				if at, st := sys.Where(mh); st != StatusConnected || at != MSSID(i) {
					return false
				}
			}
		}
		for i := 0; i < n; i++ {
			mh := MHID(i)
			_, st := sys.Where(mh)
			switch st {
			case StatusConnected:
				if count[mh] != 1 {
					return false
				}
			case StatusDisconnected:
				if count[mh] != 0 {
					return false
				}
			default:
				return false // must not end in transit after drain
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyEnergyMatchesDeliveredWireless: wireless receptions recorded
// as energy equal the number of MH deliveries, and transmissions equal the
// number of MH-originated sends (including mobility control messages).
func TestPropertyEnergyMatchesDeliveredWireless(t *testing.T) {
	check := func(seed uint64, k uint8) bool {
		const (
			m = 3
			n = 4
		)
		cfg := DefaultConfig(m, n)
		cfg.Seed = seed
		sys, err := NewSystem(cfg)
		if err != nil {
			return false
		}
		p := &probe{}
		ctx := sys.Register(p)
		sends := int(k%20) + 1
		for i := 0; i < sends; i++ {
			dst := MHID(i % n)
			sys.Schedule(sim.Time(i*3), func() {
				ctx.SendToMH(0, dst, "x", cost.CatAlgorithm)
			})
		}
		if err := sys.Run(); err != nil {
			return false
		}
		_, rx := sys.Meter().TotalEnergy()
		return rx == int64(len(p.mhGot)) && len(p.mhGot) == sends
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
