package core

import (
	"fmt"

	"mobiledist/internal/cost"
)

// routeOpts carries routing context through retries.
type routeOpts struct {
	alg    int
	origin MSSID // MSS that initiated the routed send (receives failures)
	cat    cost.Category
	// pair/seq implement the per-(MH,MH)-pair FIFO reorder buffer when the
	// final destination delivery came from SendMHToMH.
	pair *pairKey
	seq  uint64
}

// sendFixed transmits msg on the wired network. Self-sends are allowed and
// charged, matching the paper's unconditional Cfixed terms.
func (s *System) sendFixed(alg int, from, to MSSID, msg Message, cat cost.Category) {
	s.checkMSS(from)
	s.checkMSS(to)
	s.meter.Charge(cat, cost.KindFixed)
	arrival := s.fifoWired(from, to)
	sender := From{MSS: from}
	err := s.kernel.ScheduleAt(arrival, func() {
		s.dispatchMSS(alg, to, sender, msg)
	})
	if err != nil {
		panic(fmt.Sprintf("core: schedule wired delivery: %v", err))
	}
}

// broadcastFixed sends msg from from to every other MSS.
func (s *System) broadcastFixed(alg int, from MSSID, msg Message, cat cost.Category) {
	s.checkMSS(from)
	for i := 0; i < s.cfg.M; i++ {
		if MSSID(i) == from {
			continue
		}
		s.sendFixed(alg, from, MSSID(i), msg, cat)
	}
}

// sendToLocalMH delivers over the local wireless channel only.
func (s *System) sendToLocalMH(alg int, from MSSID, mh MHID, msg Message, cat cost.Category) error {
	s.checkMSS(from)
	s.checkMH(mh)
	if !s.mss[from].local.has(mh) {
		return fmt.Errorf("core: mh%d is not local to mss%d", int(mh), int(from))
	}
	s.wirelessDown(from, mh, msg, routeOpts{alg: alg, origin: from, cat: cat})
	return nil
}

// sendToMH routes msg to mh, searching as needed.
func (s *System) sendToMH(alg int, from MSSID, mh MHID, msg Message, cat cost.Category) {
	s.checkMSS(from)
	s.checkMH(mh)
	s.routeToMH(from, mh, msg, routeOpts{alg: alg, origin: from, cat: cat}, false)
}

// routeToMH implements delivery with search and retry-across-moves. via is
// the MSS currently holding the message. stale marks retries caused by the
// destination moving while the message was in flight; their search charges
// go to cost.CatStale so the primary accounting matches the paper's
// footnote-2 assumption.
func (s *System) routeToMH(via MSSID, mh MHID, msg Message, opts routeOpts, stale bool) {
	st := &s.mh[mh]
	switch st.status {
	case StatusInTransit:
		// The model guarantees the MH eventually joins some cell; park the
		// message until it does, then retry. No charge is incurred for
		// waiting.
		s.waiters[mh] = append(s.waiters[mh], func() {
			s.routeToMH(via, mh, msg, opts, stale)
		})
		return

	case StatusDisconnected:
		// The MSS of the cell where the MH disconnected informs the
		// searcher of its status (Section 2). The search that discovered
		// this is charged; the notification is control traffic.
		holder := st.at
		s.chargeSearch(opts, stale)
		s.meter.Charge(cost.CatControl, cost.KindFixed)
		arrival := s.fifoWired(holder, opts.origin)
		if err := s.kernel.ScheduleAt(arrival, func() {
			s.notifyFailure(opts.alg, opts.origin, mh, msg, FailDisconnected)
		}); err != nil {
			panic(fmt.Sprintf("core: schedule failure notification: %v", err))
		}
		return

	case StatusConnected:
		target := st.at
		if target == via {
			// Local delivery. Under the paper's pessimistic assumption every
			// routed delivery to a MH still incurs the fixed search cost.
			if s.cfg.PessimisticSearch && s.cfg.SearchMode == SearchAbstract {
				s.chargeSearch(opts, stale)
			}
			s.wirelessDown(via, mh, msg, opts)
			return
		}
		s.chargeSearch(opts, stale)
		arrival := s.fifoWired(via, target)
		if err := s.kernel.ScheduleAt(arrival, func() {
			// Re-check on arrival: the MH may have moved on while the
			// message crossed the wired network.
			cur := &s.mh[mh]
			if cur.status == StatusConnected && cur.at == target {
				s.wirelessDown(target, mh, msg, opts)
				return
			}
			s.stats.StaleReroutes++
			s.routeToMH(target, mh, msg, opts, true)
		}); err != nil {
			panic(fmt.Sprintf("core: schedule forward: %v", err))
		}
		return

	default:
		panic(fmt.Sprintf("core: mh%d in unknown status %d", int(mh), int(st.status)))
	}
}

// reclassifyWastedWireless moves one wireless charge from cat to the stale
// account after the prefix rule discarded the transmission.
func (s *System) reclassifyWastedWireless(cat cost.Category) {
	if cat == cost.CatStale {
		return
	}
	s.meter.ChargeN(cat, cost.KindWireless, -1)
	s.meter.Charge(cost.CatStale, cost.KindWireless)
}

// chargeSearch records one search under the configured search mode.
func (s *System) chargeSearch(opts routeOpts, stale bool) {
	s.stats.Searches++
	s.trace("search", "origin mss%d (stale=%v)", int(opts.origin), stale)
	cat := opts.cat
	if stale {
		cat = cost.CatStale
	}
	switch s.cfg.SearchMode {
	case SearchAbstract:
		s.meter.Charge(cat, cost.KindSearch)
	case SearchBroadcast:
		// Query every other MSS, one reply from the hosting MSS, one
		// forward of the payload. Message counts are charged here; the
		// wired legs' latency is already modelled by the forward hop in
		// routeToMH (queries proceed in parallel with it).
		s.meter.ChargeN(cat, cost.KindFixed, int64(s.cfg.M-1))
		s.meter.ChargeN(cat, cost.KindFixed, 2)
	default:
		panic(fmt.Sprintf("core: unknown search mode %d", int(s.cfg.SearchMode)))
	}
}

// wirelessDown transmits msg from mss to mh over the cell's wireless
// channel. Prefix semantics: if the MH left the cell (or disconnected)
// before the transmission completes, the message is not delivered there; it
// is re-routed (or a failure is reported).
func (s *System) wirelessDown(mss MSSID, mh MHID, msg Message, opts routeOpts) {
	s.meter.Charge(opts.cat, cost.KindWireless)
	arrival := s.fifoDown(mss, mh)
	if err := s.kernel.ScheduleAt(arrival, func() {
		st := &s.mh[mh]
		if st.status == StatusConnected && st.at == mss {
			s.meter.WirelessRx(int(mh))
			if st.dozing {
				s.stats.DozeInterruptions++
				s.stats.DozeInterruptionsByMH[mh]++
			}
			s.deliverToMH(mh, msg, opts)
			return
		}
		if st.status == StatusDisconnected && st.at == mss {
			// Disconnected in this very cell before the transmission
			// completed: the transmission was wasted (reclassified as
			// stale) and the local MSS notifies the sender.
			s.reclassifyWastedWireless(opts.cat)
			s.meter.Charge(cost.CatControl, cost.KindFixed)
			a := s.fifoWired(mss, opts.origin)
			if err := s.kernel.ScheduleAt(a, func() {
				s.notifyFailure(opts.alg, opts.origin, mh, msg, FailDisconnected)
			}); err != nil {
				panic(fmt.Sprintf("core: schedule failure notification: %v", err))
			}
			return
		}
		// Left the cell: the wireless message fell outside the received
		// prefix (Section 2). The wasted transmission moves to the stale
		// account (the paper's footnote-2 "second copy" case) and the
		// message is routed onwards from here; the eventual successful
		// delivery stays in the primary category, so primary accounting
		// charges exactly one delivery per message.
		s.reclassifyWastedWireless(opts.cat)
		s.stats.StaleReroutes++
		s.routeToMH(mss, mh, msg, opts, true)
	}); err != nil {
		panic(fmt.Sprintf("core: schedule wireless delivery: %v", err))
	}
}

// deliverToMH hands msg to the destination's handler, applying the
// per-pair reorder buffer for MH-to-MH traffic.
func (s *System) deliverToMH(mh MHID, msg Message, opts routeOpts) {
	if opts.pair == nil {
		s.dispatchMH(opts.alg, mh, msg)
		return
	}
	key := *opts.pair
	buf := s.pairBuffer[key]
	if buf == nil {
		buf = make(map[uint64]deferredDelivery)
		s.pairBuffer[key] = buf
	}
	buf[opts.seq] = deferredDelivery{alg: opts.alg, msg: msg}
	for {
		next := s.pairDeliverNext[key]
		d, ok := buf[next]
		if !ok {
			break
		}
		delete(buf, next)
		s.pairDeliverNext[key] = next + 1
		s.dispatchMH(d.alg, mh, d.msg)
	}
}

// sendFromMH transmits msg from mh to its current local MSS. Sends from a
// MH in transit are deferred until it joins a cell (it "neither sends nor
// receives" between cells).
func (s *System) sendFromMH(alg int, mh MHID, msg Message, cat cost.Category) error {
	s.checkMH(mh)
	st := &s.mh[mh]
	switch st.status {
	case StatusDisconnected:
		return fmt.Errorf("core: mh%d is disconnected and cannot send", int(mh))
	case StatusInTransit:
		s.waiters[mh] = append(s.waiters[mh], func() {
			if err := s.sendFromMH(alg, mh, msg, cat); err != nil {
				// The MH disconnected before the deferred send could run, so
				// the transmission never happened. The loss is counted in
				// FailedDeliveries rather than silently swallowed; no
				// DeliveryFailureHandler fires because there is no origin MSS
				// to notify — the message never left the MH.
				s.stats.FailedDeliveries++
				s.trace("send-dropped", "mh%d disconnected before deferred send", int(mh))
			}
		})
		return nil
	case StatusConnected:
		at := st.at
		s.meter.Charge(cat, cost.KindWireless)
		s.meter.WirelessTx(int(mh))
		arrival := s.fifoUp(mh)
		sender := From{MH: mh, IsMH: true}
		if err := s.kernel.ScheduleAt(arrival, func() {
			// The message was transmitted before any subsequent leave(), so
			// the MSS of the cell it was sent in processes it.
			s.dispatchMSS(alg, at, sender, msg)
		}); err != nil {
			panic(fmt.Sprintf("core: schedule uplink delivery: %v", err))
		}
		return nil
	default:
		panic(fmt.Sprintf("core: mh%d in unknown status %d", int(mh), int(st.status)))
	}
}

// forwardViaMSS routes msg to MH `to` through the MSS a directory names:
// one fixed hop (charged unconditionally) then the wireless downlink. A
// stale directory entry falls back to a search charged to cost.CatStale.
func (s *System) forwardViaMSS(origin, via MSSID, to MHID, msg Message, opts routeOpts) {
	s.meter.Charge(opts.cat, cost.KindFixed)
	fixArrival := s.fifoWired(origin, via)
	if err := s.kernel.ScheduleAt(fixArrival, func() {
		cur := &s.mh[to]
		if cur.status == StatusConnected && cur.at == via {
			s.wirelessDown(via, to, msg, opts)
			return
		}
		// Stale directory entry: the destination moved (or is moving, or
		// disconnected); fall back to a search.
		s.stats.StaleReroutes++
		s.routeToMH(via, to, msg, opts, true)
	}); err != nil {
		panic(fmt.Sprintf("core: schedule directory hop: %v", err))
	}
}

// sendToMHVia implements directory-routed MSS-to-MH messaging (a fixed
// proxy reaching its mobile host, Section 5).
func (s *System) sendToMHVia(alg int, from, via MSSID, to MHID, msg Message, cat cost.Category) {
	s.checkMSS(from)
	s.checkMSS(via)
	s.checkMH(to)
	s.forwardViaMSS(from, via, to, msg, routeOpts{alg: alg, origin: from, cat: cat})
}

// sendMHViaMSS implements directory-routed MH-to-MH messaging: the sender
// believes `to` is located at `via` and routes there directly, with one
// fixed hop charged unconditionally (Section 4.2's 2·Cwireless + Cfixed per
// member). A stale directory entry falls back to a search charged to
// cost.CatStale.
func (s *System) sendMHViaMSS(alg int, from MHID, via MSSID, to MHID, msg Message, cat cost.Category) error {
	s.checkMH(from)
	s.checkMSS(via)
	s.checkMH(to)
	st := &s.mh[from]
	switch st.status {
	case StatusDisconnected:
		return fmt.Errorf("core: mh%d is disconnected and cannot send", int(from))
	case StatusInTransit:
		s.waiters[from] = append(s.waiters[from], func() {
			_ = s.sendMHViaMSS(alg, from, via, to, msg, cat)
		})
		return nil
	case StatusConnected:
		at := st.at
		s.meter.Charge(cat, cost.KindWireless)
		s.meter.WirelessTx(int(from))
		upArrival := s.fifoUp(from)
		opts := routeOpts{alg: alg, origin: at, cat: cat}
		if err := s.kernel.ScheduleAt(upArrival, func() {
			// One fixed hop to the directory's MSS, charged even when the
			// sender's own MSS is the target.
			s.forwardViaMSS(at, via, to, msg, opts)
		}); err != nil {
			panic(fmt.Sprintf("core: schedule uplink delivery: %v", err))
		}
		return nil
	default:
		panic(fmt.Sprintf("core: mh%d in unknown status %d", int(from), int(st.status)))
	}
}

// sendToMSSOfMH locates mh and delivers msg to the MSS currently serving it
// — the operation the paper prices at Csearch. If mh has disconnected the
// sender is notified via DeliveryFailureHandler.
func (s *System) sendToMSSOfMH(alg int, from MSSID, mh MHID, msg Message, cat cost.Category) {
	s.checkMSS(from)
	s.checkMH(mh)
	s.routeToMSSOfMH(from, mh, msg, routeOpts{alg: alg, origin: from, cat: cat}, false)
}

// routeToMSSOfMH is routeToMH with the MSS itself as the final recipient.
func (s *System) routeToMSSOfMH(via MSSID, mh MHID, msg Message, opts routeOpts, stale bool) {
	st := &s.mh[mh]
	switch st.status {
	case StatusInTransit:
		s.waiters[mh] = append(s.waiters[mh], func() {
			s.routeToMSSOfMH(via, mh, msg, opts, stale)
		})
		return

	case StatusDisconnected:
		holder := st.at
		s.chargeSearch(opts, stale)
		s.meter.Charge(cost.CatControl, cost.KindFixed)
		arrival := s.fifoWired(holder, opts.origin)
		if err := s.kernel.ScheduleAt(arrival, func() {
			s.notifyFailure(opts.alg, opts.origin, mh, msg, FailDisconnected)
		}); err != nil {
			panic(fmt.Sprintf("core: schedule failure notification: %v", err))
		}
		return

	case StatusConnected:
		target := st.at
		sender := From{MSS: opts.origin}
		if target == via {
			if s.cfg.PessimisticSearch && s.cfg.SearchMode == SearchAbstract {
				s.chargeSearch(opts, stale)
			}
			s.kernel.Schedule(0, func() {
				s.dispatchMSS(opts.alg, target, sender, msg)
			})
			return
		}
		s.chargeSearch(opts, stale)
		arrival := s.fifoWired(via, target)
		if err := s.kernel.ScheduleAt(arrival, func() {
			cur := &s.mh[mh]
			if cur.status == StatusConnected && cur.at == target {
				s.dispatchMSS(opts.alg, target, sender, msg)
				return
			}
			s.stats.StaleReroutes++
			s.routeToMSSOfMH(target, mh, msg, opts, true)
		}); err != nil {
			panic(fmt.Sprintf("core: schedule forward: %v", err))
		}
		return

	default:
		panic(fmt.Sprintf("core: mh%d in unknown status %d", int(mh), int(st.status)))
	}
}

// sendMHToMH implements MH-to-MH messaging: wireless uplink, routed
// forwarding with search, wireless downlink, with per-ordered-pair FIFO
// delivery.
func (s *System) sendMHToMH(alg int, from, to MHID, msg Message, cat cost.Category) error {
	s.checkMH(from)
	s.checkMH(to)
	st := &s.mh[from]
	switch st.status {
	case StatusDisconnected:
		return fmt.Errorf("core: mh%d is disconnected and cannot send", int(from))
	case StatusInTransit:
		s.waiters[from] = append(s.waiters[from], func() {
			_ = s.sendMHToMH(alg, from, to, msg, cat)
		})
		return nil
	case StatusConnected:
		at := st.at
		key := pairKey{from: from, to: to}
		seq := s.pairSeqNext[key]
		s.pairSeqNext[key] = seq + 1
		s.meter.Charge(cat, cost.KindWireless)
		s.meter.WirelessTx(int(from))
		arrival := s.fifoUp(from)
		opts := routeOpts{alg: alg, origin: at, cat: cat, pair: &key, seq: seq}
		if err := s.kernel.ScheduleAt(arrival, func() {
			s.routeToMH(at, to, msg, opts, false)
		}); err != nil {
			panic(fmt.Sprintf("core: schedule uplink delivery: %v", err))
		}
		return nil
	default:
		panic(fmt.Sprintf("core: mh%d in unknown status %d", int(from), int(st.status)))
	}
}
