package core

import (
	"mobiledist/internal/cost"
	"mobiledist/internal/sim"
)

// simContext is the Context implementation bound to the deterministic
// simulation driver. One instance exists per registered algorithm.
type simContext struct {
	s   *System
	alg int
}

var _ Context = (*simContext)(nil)

func (c *simContext) Now() sim.Time { return c.s.kernel.Now() }

func (c *simContext) After(d sim.Time, fn func()) { c.s.kernel.Schedule(d, fn) }

func (c *simContext) RNG() *sim.RNG { return c.s.rng }

func (c *simContext) M() int { return c.s.cfg.M }

func (c *simContext) N() int { return c.s.cfg.N }

func (c *simContext) Params() cost.Params { return c.s.cfg.Params }

func (c *simContext) SendFixed(from, to MSSID, msg Message, cat cost.Category) {
	c.s.sendFixed(c.alg, from, to, msg, cat)
}

func (c *simContext) BroadcastFixed(from MSSID, msg Message, cat cost.Category) {
	c.s.broadcastFixed(c.alg, from, msg, cat)
}

func (c *simContext) SendToMH(from MSSID, mh MHID, msg Message, cat cost.Category) {
	c.s.sendToMH(c.alg, from, mh, msg, cat)
}

func (c *simContext) SendToLocalMH(from MSSID, mh MHID, msg Message, cat cost.Category) error {
	return c.s.sendToLocalMH(c.alg, from, mh, msg, cat)
}

func (c *simContext) SendFromMH(mh MHID, msg Message, cat cost.Category) error {
	return c.s.sendFromMH(c.alg, mh, msg, cat)
}

func (c *simContext) SendMHToMH(from, to MHID, msg Message, cat cost.Category) error {
	return c.s.sendMHToMH(c.alg, from, to, msg, cat)
}

func (c *simContext) SendMHViaMSS(from MHID, via MSSID, to MHID, msg Message, cat cost.Category) error {
	return c.s.sendMHViaMSS(c.alg, from, via, to, msg, cat)
}

func (c *simContext) SendToMHVia(from, via MSSID, to MHID, msg Message, cat cost.Category) {
	c.s.sendToMHVia(c.alg, from, via, to, msg, cat)
}

func (c *simContext) SendToMSSOfMH(from MSSID, mh MHID, msg Message, cat cost.Category) {
	c.s.sendToMSSOfMH(c.alg, from, mh, msg, cat)
}

func (c *simContext) IsLocal(mss MSSID, mh MHID) bool {
	c.s.checkMSS(mss)
	c.s.checkMH(mh)
	return c.s.mss[mss].local.has(mh)
}

func (c *simContext) LocalMHs(mss MSSID) []MHID {
	return c.s.localMHs(mss)
}

func (c *simContext) IsDisconnectedHere(mss MSSID, mh MHID) bool {
	c.s.checkMSS(mss)
	c.s.checkMH(mh)
	return c.s.mss[mss].disconnected[mh]
}
