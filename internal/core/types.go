// Package core implements the paper's two-tier operational system model
// (Section 2): a wired network of M mobile support stations (MSSs) and N
// mobile hosts (MHs), each attached to at most one cell at a time.
//
// The package provides:
//
//   - reliable FIFO wired channels between MSSs with arbitrary latency;
//   - FIFO wireless channels between an MSS and the MHs local to its cell,
//     with the paper's prefix-delivery semantics across moves;
//   - the leave/join/disconnect/reconnect mobility protocol, including
//     handoff hooks so algorithms can migrate per-MH state between MSSs;
//   - routing to mobile hosts with a pluggable search service and the cost
//     accounting of the paper's model (Cfixed, Cwireless, Csearch);
//   - registration and dispatch for algorithm state machines.
//
// Algorithms are written against the Context interface, so the deterministic
// simulation driver in this package and the goroutine-based live runtime in
// internal/rt can host the same implementations. Per-node algorithm state
// must live in per-node slots (slices indexed by id) so that in the live
// runtime each slot is touched only by its owning node's goroutine.
package core

import (
	"fmt"

	"mobiledist/internal/cost"
	"mobiledist/internal/sim"
)

// MSSID identifies a mobile support station (fixed host), in [0, M).
type MSSID int

// MHID identifies a mobile host, in [0, N).
type MHID int

// Message is an algorithm-defined payload exchanged between nodes.
type Message any

// From identifies the immediate sender of a message delivered to an MSS.
type From struct {
	MSS  MSSID // valid when !IsMH
	MH   MHID  // valid when IsMH
	IsMH bool
}

// String renders the sender address.
func (f From) String() string {
	if f.IsMH {
		return fmt.Sprintf("mh%d", int(f.MH))
	}
	return fmt.Sprintf("mss%d", int(f.MSS))
}

// MHStatus is the connectivity state of a mobile host.
type MHStatus int

// Mobile host connectivity states.
const (
	// StatusConnected means the MH is local to some cell.
	StatusConnected MHStatus = iota + 1
	// StatusInTransit means the MH has left its cell and not yet joined a
	// new one. The paper guarantees it will eventually join some cell.
	StatusInTransit
	// StatusDisconnected means the MH has voluntarily disconnected; its last
	// MSS holds a "disconnected" flag for it.
	StatusDisconnected
)

// String returns the status name.
func (s MHStatus) String() string {
	switch s {
	case StatusConnected:
		return "connected"
	case StatusInTransit:
		return "in-transit"
	case StatusDisconnected:
		return "disconnected"
	default:
		return fmt.Sprintf("MHStatus(%d)", int(s))
	}
}

// FailReason explains why a routed message could not be delivered to a MH.
type FailReason int

// Delivery failure reasons.
const (
	// FailDisconnected means the destination MH has disconnected; the MSS of
	// the cell where it disconnected informed the sender (Section 2).
	FailDisconnected FailReason = iota + 1
)

// String returns the reason name.
func (r FailReason) String() string {
	switch r {
	case FailDisconnected:
		return "disconnected"
	default:
		return fmt.Sprintf("FailReason(%d)", int(r))
	}
}

// SearchMode selects how the network locates a mobile host.
type SearchMode int

// Search modes.
const (
	// SearchAbstract charges the paper's fixed Csearch per search and uses
	// the network's location registry as the oracle. This is the
	// paper-faithful mode used by the experiment suite.
	SearchAbstract SearchMode = iota + 1
	// SearchBroadcast exchanges real messages: the searching MSS queries
	// every other MSS (M-1 fixed messages), the hosting MSS replies (one
	// fixed message), and the payload is forwarded (one fixed message). No
	// Csearch is charged; the cost shows up as fixed-channel traffic. Used
	// by the A1 ablation to exhibit the Csearch <= (M-1)*Cfixed bound.
	SearchBroadcast
)

// Algorithm is a distributed algorithm hosted on the two-tier network. The
// interface carries only identification; message handling and mobility
// hooks are optional capabilities declared by implementing the narrower
// interfaces below.
type Algorithm interface {
	// Name identifies the algorithm in reports and panics.
	Name() string
}

// MSSHandler receives messages addressed to MSS-side algorithm state.
type MSSHandler interface {
	HandleMSS(ctx Context, at MSSID, from From, msg Message)
}

// MHHandler receives messages delivered to a mobile host over its wireless
// link.
type MHHandler interface {
	HandleMH(ctx Context, at MHID, msg Message)
}

// MobilityObserver is notified of mobility protocol events. Callbacks run
// at the MSS processing the event, after the network's own bookkeeping.
type MobilityObserver interface {
	// OnJoin fires when mh completes a join at mss. prev is the MSS of the
	// previous cell (supplied with the join message, Section 2), or -1 for
	// the initial placement. wasDisconnected distinguishes reconnect()
	// from an ordinary cell switch.
	OnJoin(ctx Context, mss MSSID, mh MHID, prev MSSID, wasDisconnected bool)
	// OnLeave fires when mss processes mh's leave() message.
	OnLeave(ctx Context, mss MSSID, mh MHID)
	// OnDisconnect fires when mss processes mh's disconnect() message and
	// has set the "disconnected" flag.
	OnDisconnect(ctx Context, mss MSSID, mh MHID)
}

// DeliveryFailureHandler is notified at the sending MSS when a message
// routed with SendToMH could not be delivered because the destination
// disconnected. The undelivered payload is returned so algorithms such as
// R2 can, for example, reclaim the token.
type DeliveryFailureHandler interface {
	OnDeliveryFailure(ctx Context, at MSSID, mh MHID, msg Message, reason FailReason)
}

// Context is the capability surface algorithms use to interact with the
// network. It is implemented by the simulation driver in this package and
// by the live runtime in internal/rt.
type Context interface {
	// Now returns the current virtual time.
	Now() sim.Time
	// After schedules fn to run on this node's execution context after d.
	After(d sim.Time, fn func())
	// RNG returns a deterministic random source.
	RNG() *sim.RNG

	// M returns the number of mobile support stations.
	M() int
	// N returns the number of mobile hosts.
	N() int
	// Params returns the cost model constants.
	Params() cost.Params

	// SendFixed sends msg from MSS from to MSS to over the wired network
	// (FIFO, arbitrary latency, cost Cfixed). Self-sends are permitted and
	// charged, matching the paper's unconditional cost terms.
	SendFixed(from, to MSSID, msg Message, cat cost.Category)
	// BroadcastFixed sends msg from from to every other MSS ((M-1) fixed
	// messages).
	BroadcastFixed(from MSSID, msg Message, cat cost.Category)
	// SendToMH routes msg from MSS from to mobile host mh, searching for it
	// if necessary and retrying across moves until delivered, or reporting
	// failure via DeliveryFailureHandler if mh has disconnected.
	SendToMH(from MSSID, mh MHID, msg Message, cat cost.Category)
	// SendToLocalMH delivers msg over the local wireless channel only. It
	// returns an error if mh is not currently local to from.
	SendToLocalMH(from MSSID, mh MHID, msg Message, cat cost.Category) error
	// SendFromMH transmits msg from mh to its current local MSS. If mh is
	// between cells the send is deferred until it joins one. It returns an
	// error if mh has disconnected.
	SendFromMH(mh MHID, msg Message, cat cost.Category) error
	// SendMHToMH sends msg from one mobile host to another: wireless uplink,
	// routing with search, wireless downlink. Deliveries for each ordered
	// (from, to) pair are FIFO (the burden algorithm L1 places on the
	// network layer, Section 3.1.1).
	SendMHToMH(from, to MHID, msg Message, cat cost.Category) error
	// SendMHViaMSS sends msg from mobile host from to mobile host to by way
	// of the MSS a location directory names (the always-inform strategy of
	// Section 4.2): wireless uplink, one fixed hop to via (charged even if
	// via is the sender's own MSS), wireless downlink — no search. If the
	// directory entry is stale (to is no longer at via) the message is
	// re-routed with a search charged to cost.CatStale.
	SendMHViaMSS(from MHID, via MSSID, to MHID, msg Message, cat cost.Category) error
	// SendToMHVia delivers msg from MSS from to mobile host to through the
	// MSS a directory names: one fixed hop (charged unconditionally) plus
	// the wireless downlink, no search. A stale directory entry falls back
	// to a search charged to cost.CatStale. This is how a fixed (home)
	// proxy that is kept informed of its MH's location reaches it
	// (Section 5).
	SendToMHVia(from, via MSSID, to MHID, msg Message, cat cost.Category)
	// SendToMSSOfMH locates mh and delivers msg to the MSS currently
	// serving it — the literal operation the paper prices at Csearch
	// ("locate a MH and forward a message to its current local MSS"). If mh
	// has disconnected the sender is notified via DeliveryFailureHandler.
	SendToMSSOfMH(from MSSID, mh MHID, msg Message, cat cost.Category)

	// IsLocal reports whether mh is currently in mss's cell. Only the local
	// MSS legitimately knows this (its list of local MHs).
	IsLocal(mss MSSID, mh MHID) bool
	// LocalMHs returns the MHs currently local to mss, in ascending order.
	// The returned slice may alias the network's live membership store:
	// callers must treat it as read-only and must not retain it across
	// events (mobility invalidates it).
	LocalMHs(mss MSSID) []MHID
	// IsDisconnectedHere reports whether mss holds the "disconnected" flag
	// for mh (i.e. mh disconnected while in mss's cell).
	IsDisconnectedHere(mss MSSID, mh MHID) bool
}
