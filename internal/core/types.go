// Package core binds the shared network engine (internal/engine) to the
// deterministic simulation kernel (internal/sim). The engine owns the
// paper's Section-2 system model — MSS/MH registries and status machine,
// FIFO wired and wireless channels, routing with search and retry, the
// leave/join/disconnect/reconnect mobility protocol with handoff hooks,
// and cost accounting; this package contributes only the substrate: virtual
// time, event scheduling, and flat per-channel FIFO arrival clamping on the
// kernel's event queue.
//
// Algorithms are written against the engine's Context interface (re-exported
// here), so this deterministic driver and the goroutine-based live runtime
// in internal/rt host the same implementations. Per-node algorithm state
// must live in per-node slots (slices indexed by id) so that in the live
// runtime each slot is touched only by its owning node's goroutine.
//
// The model vocabulary (ids, statuses, handler interfaces, Context) is
// defined once in internal/engine and aliased here, so existing importers
// keep using core.MHID, core.Context, and friends unchanged.
package core

import (
	"mobiledist/internal/engine"
	"mobiledist/internal/sim"
)

// Model vocabulary, owned by internal/engine and re-exported for importers.
type (
	// MSSID identifies a mobile support station (fixed host), in [0, M).
	MSSID = engine.MSSID
	// MHID identifies a mobile host, in [0, N).
	MHID = engine.MHID
	// Message is an algorithm-defined payload exchanged between nodes.
	Message = engine.Message
	// From identifies the immediate sender of a message delivered to an MSS.
	From = engine.From
	// MHStatus is the connectivity state of a mobile host.
	MHStatus = engine.MHStatus
	// FailReason explains why a routed message could not be delivered.
	FailReason = engine.FailReason
	// SearchMode selects how the network locates a mobile host.
	SearchMode = engine.SearchMode
	// Delay is an inclusive range of virtual-time latencies.
	Delay = engine.Delay
	// Stats are model-level counters kept outside the cost meter.
	Stats = engine.Stats

	// Algorithm is a distributed algorithm hosted on the two-tier network.
	Algorithm = engine.Algorithm
	// MSSHandler receives messages addressed to MSS-side algorithm state.
	MSSHandler = engine.MSSHandler
	// MHHandler receives messages delivered to a mobile host.
	MHHandler = engine.MHHandler
	// MobilityObserver is notified of mobility protocol events.
	MobilityObserver = engine.MobilityObserver
	// DeliveryFailureHandler is notified of failed routed deliveries.
	DeliveryFailureHandler = engine.DeliveryFailureHandler
	// Context is the capability surface algorithms use to interact with the
	// network. Both substrates hand out the engine's single implementation.
	Context = engine.Context
	// Registrar is implemented by network drivers that can host algorithms.
	Registrar = engine.Registrar
)

// Mobile host connectivity states.
const (
	StatusConnected    = engine.StatusConnected
	StatusInTransit    = engine.StatusInTransit
	StatusDisconnected = engine.StatusDisconnected
)

// Delivery failure reasons.
const (
	FailDisconnected = engine.FailDisconnected
)

// Search modes.
const (
	SearchAbstract  = engine.SearchAbstract
	SearchBroadcast = engine.SearchBroadcast
)

// FixedDelay returns a degenerate range with a single value.
func FixedDelay(d sim.Time) Delay { return engine.FixedDelay(d) }
