package core

import (
	"fmt"

	"mobiledist/internal/cost"
)

// Move initiates a cell switch: mh sends leave(r) to its current MSS,
// travels, then sends join(mh, prev) to the new cell's MSS. While between
// cells the MH neither sends nor receives (Section 2); routed messages park
// until the join completes. Moving to the current cell is a no-op.
func (s *System) Move(mh MHID, to MSSID) error {
	s.checkMH(mh)
	s.checkMSS(to)
	st := &s.mh[mh]
	if st.status != StatusConnected {
		return fmt.Errorf("core: mh%d cannot move while %s", int(mh), st.status)
	}
	from := st.at
	if from == to {
		return nil
	}

	// leave(r): one wireless uplink transmission, control traffic.
	s.meter.Charge(cost.CatControl, cost.KindWireless)
	s.meter.WirelessTx(int(mh))
	st.status = StatusInTransit
	st.at = from // remembered as the previous cell for the join message

	s.trace("leave", "mh%d leaving mss%d for mss%d", int(mh), int(from), int(to))
	leaveArrival := s.fifoUp(mh)
	if err := s.kernel.ScheduleAt(leaveArrival, func() {
		s.mss[from].local.remove(mh)
		s.trace("left", "mss%d processed leave of mh%d", int(from), int(mh))
		s.notifyLeave(from, mh)

		// The MH travels, then announces itself in the new cell. Joining is
		// sequenced after the leave is processed so a MH is never in two
		// local lists at once.
		travel := s.delay(s.cfg.Travel)
		s.kernel.Schedule(travel, func() {
			s.completeJoin(mh, to, from, false)
		})
	}); err != nil {
		panic(fmt.Sprintf("core: schedule leave: %v", err))
	}
	return nil
}

// completeJoin performs the join(mh, prev) exchange in the new cell.
func (s *System) completeJoin(mh MHID, to, prev MSSID, wasDisconnected bool) {
	// join(mh-id, prev): one wireless uplink transmission in the new cell.
	s.meter.Charge(cost.CatControl, cost.KindWireless)
	s.meter.WirelessTx(int(mh))
	arrival := s.fifoUp(mh)
	if err := s.kernel.ScheduleAt(arrival, func() {
		st := &s.mh[mh]
		s.mss[to].local.add(mh)
		st.status = StatusConnected
		st.at = to
		if !wasDisconnected {
			s.stats.Moves++
		}
		s.trace("join", "mh%d joined mss%d (prev mss%d)", int(mh), int(to), int(prev))
		s.notifyJoin(to, mh, prev, wasDisconnected)
		s.fireWaiters(mh)
	}); err != nil {
		panic(fmt.Sprintf("core: schedule join: %v", err))
	}
}

// Disconnect performs a voluntary disconnection: mh sends disconnect(r) to
// its local MSS, which removes it from the local list and sets the
// "disconnected" flag for it.
func (s *System) Disconnect(mh MHID) error {
	s.checkMH(mh)
	st := &s.mh[mh]
	if st.status != StatusConnected {
		return fmt.Errorf("core: mh%d cannot disconnect while %s", int(mh), st.status)
	}
	at := st.at

	s.meter.Charge(cost.CatControl, cost.KindWireless)
	s.meter.WirelessTx(int(mh))
	// The MH is unreachable from the instant it decides to disconnect.
	st.status = StatusDisconnected

	arrival := s.fifoUp(mh)
	if err := s.kernel.ScheduleAt(arrival, func() {
		s.mss[at].local.remove(mh)
		s.mss[at].disconnected[mh] = true
		s.stats.Disconnects++
		s.trace("disconnect", "mh%d disconnected at mss%d", int(mh), int(at))
		s.notifyDisconnect(at, mh)
	}); err != nil {
		panic(fmt.Sprintf("core: schedule disconnect: %v", err))
	}
	return nil
}

// Reconnect re-attaches a disconnected MH at the given MSS with a
// reconnect(mh-id, prev mss-id) message. If knowsPrev is false the MH could
// not supply its previous location, and the new MSS queries every other
// fixed host to find it before running the handoff (Section 2).
func (s *System) Reconnect(mh MHID, at MSSID, knowsPrev bool) error {
	s.checkMH(mh)
	s.checkMSS(at)
	st := &s.mh[mh]
	if st.status != StatusDisconnected {
		return fmt.Errorf("core: mh%d cannot reconnect while %s", int(mh), st.status)
	}
	prev := st.at

	// The MH is reconnecting: from the model's perspective it is between
	// cells until the handoff completes, so routed messages park rather
	// than bounce as disconnected, and duplicate Reconnect/Move/Disconnect
	// calls are rejected.
	st.status = StatusInTransit

	// reconnect(): one wireless uplink transmission in the new cell.
	s.meter.Charge(cost.CatControl, cost.KindWireless)
	s.meter.WirelessTx(int(mh))
	arrival := s.fifoUp(mh)
	if err := s.kernel.ScheduleAt(arrival, func() {
		s.runReconnectHandoff(mh, at, prev, knowsPrev)
	}); err != nil {
		panic(fmt.Sprintf("core: schedule reconnect: %v", err))
	}
	return nil
}

// runReconnectHandoff executes the locate-and-handoff exchange at the new
// MSS: optionally a broadcast query for the previous location, then a
// request/reply with the previous MSS to clear the "disconnected" flag.
func (s *System) runReconnectHandoff(mh MHID, at, prev MSSID, knowsPrev bool) {
	locate := s.kernel.Now()
	if !knowsPrev {
		// Query each other fixed host; only the flag holder replies.
		s.meter.ChargeN(cost.CatControl, cost.KindFixed, int64(s.cfg.M-1))
		s.meter.Charge(cost.CatControl, cost.KindFixed)
		locate += s.delay(s.cfg.Wired) + s.delay(s.cfg.Wired)
	}
	if err := s.kernel.ScheduleAt(locate, func() {
		// Handoff request to the previous MSS.
		s.meter.Charge(cost.CatControl, cost.KindFixed)
		reqArrival := s.fifoWired(at, prev)
		if err := s.kernel.ScheduleAt(reqArrival, func() {
			delete(s.mss[prev].disconnected, mh)
			// Handoff reply back to the new MSS.
			s.meter.Charge(cost.CatControl, cost.KindFixed)
			repArrival := s.fifoWired(prev, at)
			if err := s.kernel.ScheduleAt(repArrival, func() {
				st := &s.mh[mh]
				s.mss[at].local.add(mh)
				st.status = StatusConnected
				st.at = at
				s.stats.Reconnects++
				s.trace("reconnect", "mh%d reconnected at mss%d (was at mss%d)", int(mh), int(at), int(prev))
				s.notifyJoin(at, mh, prev, true)
				s.fireWaiters(mh)
			}); err != nil {
				panic(fmt.Sprintf("core: schedule handoff reply: %v", err))
			}
		}); err != nil {
			panic(fmt.Sprintf("core: schedule handoff request: %v", err))
		}
	}); err != nil {
		panic(fmt.Sprintf("core: schedule locate: %v", err))
	}
}
