package core

import (
	"testing"

	"mobiledist/internal/cost"
	"mobiledist/internal/sim"
)

// probe is a minimal algorithm recording every event it observes, used to
// exercise the network primitives directly.
type probe struct {
	name string

	mssGot   []probeMSSEvent
	mhGot    []probeMHEvent
	failures []probeFailure
	joins    []probeJoin
	leaves   []probeLeave
	discs    []probeLeave

	onMSS func(ctx Context, at MSSID, from From, msg Message)
	onMH  func(ctx Context, at MHID, msg Message)
}

type probeMSSEvent struct {
	At   MSSID
	From From
	Msg  Message
	T    sim.Time
}

type probeMHEvent struct {
	At  MHID
	Msg Message
	T   sim.Time
}

type probeFailure struct {
	At     MSSID
	MH     MHID
	Msg    Message
	Reason FailReason
}

type probeJoin struct {
	MSS     MSSID
	MH      MHID
	Prev    MSSID
	WasDisc bool
}

type probeLeave struct {
	MSS MSSID
	MH  MHID
}

var (
	_ Algorithm              = (*probe)(nil)
	_ MSSHandler             = (*probe)(nil)
	_ MHHandler              = (*probe)(nil)
	_ DeliveryFailureHandler = (*probe)(nil)
	_ MobilityObserver       = (*probe)(nil)
)

func (p *probe) Name() string {
	if p.name != "" {
		return p.name
	}
	return "probe"
}

func (p *probe) HandleMSS(ctx Context, at MSSID, from From, msg Message) {
	p.mssGot = append(p.mssGot, probeMSSEvent{At: at, From: from, Msg: msg, T: ctx.Now()})
	if p.onMSS != nil {
		p.onMSS(ctx, at, from, msg)
	}
}

func (p *probe) HandleMH(ctx Context, at MHID, msg Message) {
	p.mhGot = append(p.mhGot, probeMHEvent{At: at, Msg: msg, T: ctx.Now()})
	if p.onMH != nil {
		p.onMH(ctx, at, msg)
	}
}

func (p *probe) OnDeliveryFailure(ctx Context, at MSSID, mh MHID, msg Message, reason FailReason) {
	p.failures = append(p.failures, probeFailure{At: at, MH: mh, Msg: msg, Reason: reason})
}

func (p *probe) OnJoin(ctx Context, mss MSSID, mh MHID, prev MSSID, wasDisc bool) {
	p.joins = append(p.joins, probeJoin{MSS: mss, MH: mh, Prev: prev, WasDisc: wasDisc})
}

func (p *probe) OnLeave(ctx Context, mss MSSID, mh MHID) {
	p.leaves = append(p.leaves, probeLeave{MSS: mss, MH: mh})
}

func (p *probe) OnDisconnect(ctx Context, mss MSSID, mh MHID) {
	p.discs = append(p.discs, probeLeave{MSS: mss, MH: mh})
}

func newProbeSystem(t *testing.T, m, n int) (*System, *probe, Context) {
	t.Helper()
	sys, err := NewSystem(DefaultConfig(m, n))
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	p := &probe{}
	ctx := sys.Register(p)
	return sys, p, ctx
}

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero M", func(c *Config) { c.M = 0 }},
		{"zero N", func(c *Config) { c.N = 0 }},
		{"bad params", func(c *Config) { c.Params.Search = 0 }},
		{"bad wired", func(c *Config) { c.Wired = Delay{Min: 5, Max: 2} }},
		{"negative wireless", func(c *Config) { c.Wireless = Delay{Min: -1, Max: 2} }},
		{"bad search mode", func(c *Config) { c.SearchMode = SearchMode(9) }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig(3, 5)
			tt.mutate(&cfg)
			if _, err := NewSystem(cfg); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
	cfg := DefaultConfig(3, 5)
	cfg.Placement = func(MHID) MSSID { return 7 }
	if _, err := NewSystem(cfg); err == nil {
		t.Error("out-of-range placement accepted")
	}
}

func TestInitialPlacementRoundRobin(t *testing.T) {
	sys, _, ctx := newProbeSystem(t, 3, 7)
	for i := 0; i < 7; i++ {
		at, status := sys.Where(MHID(i))
		if status != StatusConnected || at != MSSID(i%3) {
			t.Errorf("mh%d at mss%d (%v), want mss%d connected", i, int(at), status, i%3)
		}
		if !ctx.IsLocal(MSSID(i%3), MHID(i)) {
			t.Errorf("IsLocal(mss%d, mh%d) = false", i%3, i)
		}
	}
	got := ctx.LocalMHs(0)
	want := []MHID{0, 3, 6}
	if len(got) != len(want) {
		t.Fatalf("LocalMHs(0) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("LocalMHs(0) = %v, want %v", got, want)
		}
	}
}

func TestSendFixedFIFOPerPair(t *testing.T) {
	sys, p, ctx := newProbeSystem(t, 4, 4)
	for i := 0; i < 20; i++ {
		ctx.SendFixed(0, 1, i, cost.CatAlgorithm)
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(p.mssGot) != 20 {
		t.Fatalf("got %d deliveries, want 20", len(p.mssGot))
	}
	for i, ev := range p.mssGot {
		if ev.Msg != i {
			t.Fatalf("delivery %d carried %v (FIFO violated)", i, ev.Msg)
		}
		if ev.At != 1 || ev.From.IsMH || ev.From.MSS != 0 {
			t.Fatalf("delivery %d at %v from %v", i, ev.At, ev.From)
		}
	}
	if got := sys.Meter().Count(cost.CatAlgorithm, cost.KindFixed); got != 20 {
		t.Errorf("fixed charges = %d, want 20", got)
	}
}

func TestSendFixedSelfSendCharged(t *testing.T) {
	sys, p, ctx := newProbeSystem(t, 2, 2)
	ctx.SendFixed(1, 1, "self", cost.CatAlgorithm)
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(p.mssGot) != 1 || p.mssGot[0].At != 1 {
		t.Fatalf("self-send not delivered: %+v", p.mssGot)
	}
	if got := sys.Meter().Count(cost.CatAlgorithm, cost.KindFixed); got != 1 {
		t.Errorf("self-send charges = %d, want 1", got)
	}
}

func TestBroadcastFixed(t *testing.T) {
	sys, p, ctx := newProbeSystem(t, 5, 2)
	ctx.BroadcastFixed(2, "hi", cost.CatControl)
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(p.mssGot) != 4 {
		t.Fatalf("broadcast reached %d MSSs, want 4", len(p.mssGot))
	}
	seen := make(map[MSSID]bool)
	for _, ev := range p.mssGot {
		if ev.At == 2 {
			t.Error("broadcast delivered to the sender")
		}
		seen[ev.At] = true
	}
	if len(seen) != 4 {
		t.Errorf("broadcast duplicated deliveries: %v", seen)
	}
}

func TestSendFromMHDelivery(t *testing.T) {
	sys, p, ctx := newProbeSystem(t, 3, 6)
	if err := ctx.SendFromMH(4, "up", cost.CatAlgorithm); err != nil {
		t.Fatalf("SendFromMH: %v", err)
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(p.mssGot) != 1 {
		t.Fatalf("got %d deliveries, want 1", len(p.mssGot))
	}
	ev := p.mssGot[0]
	if ev.At != 1 || !ev.From.IsMH || ev.From.MH != 4 {
		t.Errorf("delivered at mss%d from %v, want mss1 from mh4", int(ev.At), ev.From)
	}
	tx, _ := sys.Meter().Energy(4)
	if tx != 1 {
		t.Errorf("mh4 tx energy = %d, want 1", tx)
	}
}

func TestSendFromMHWhileInTransitDeferred(t *testing.T) {
	sys, p, ctx := newProbeSystem(t, 3, 3)
	if err := sys.Move(0, 2); err != nil {
		t.Fatalf("Move: %v", err)
	}
	if err := ctx.SendFromMH(0, "deferred", cost.CatAlgorithm); err != nil {
		t.Fatalf("SendFromMH: %v", err)
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(p.mssGot) != 1 || p.mssGot[0].At != 2 {
		t.Fatalf("deferred send delivered at %+v, want new cell mss2", p.mssGot)
	}
}

func TestSendFromMHDisconnectedFails(t *testing.T) {
	sys, _, ctx := newProbeSystem(t, 3, 3)
	if err := sys.Disconnect(1); err != nil {
		t.Fatalf("Disconnect: %v", err)
	}
	if err := ctx.SendFromMH(1, "x", cost.CatAlgorithm); err == nil {
		t.Error("send from disconnected MH succeeded")
	}
}

func TestSendToMHLocalAndRemote(t *testing.T) {
	sys, p, ctx := newProbeSystem(t, 3, 6)
	ctx.SendToMH(0, 0, "local", cost.CatAlgorithm)  // mh0 is at mss0
	ctx.SendToMH(0, 4, "remote", cost.CatAlgorithm) // mh4 is at mss1
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(p.mhGot) != 2 {
		t.Fatalf("got %d MH deliveries, want 2", len(p.mhGot))
	}
	// Pessimistic default: both deliveries charge a search.
	if got := sys.Meter().Count(cost.CatAlgorithm, cost.KindSearch); got != 2 {
		t.Errorf("searches = %d, want 2 (pessimistic)", got)
	}
	if got := sys.Meter().Count(cost.CatAlgorithm, cost.KindWireless); got != 2 {
		t.Errorf("wireless = %d, want 2", got)
	}
}

func TestSendToMHRealisticSearchOnlyWhenRemote(t *testing.T) {
	cfg := DefaultConfig(3, 6)
	cfg.PessimisticSearch = false
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	p := &probe{}
	ctx := sys.Register(p)
	ctx.SendToMH(0, 0, "local", cost.CatAlgorithm)
	ctx.SendToMH(0, 4, "remote", cost.CatAlgorithm)
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := sys.Meter().Count(cost.CatAlgorithm, cost.KindSearch); got != 1 {
		t.Errorf("searches = %d, want 1 (realistic mode)", got)
	}
}

func TestSendToMHFollowsMoveMidFlight(t *testing.T) {
	sys, p, ctx := newProbeSystem(t, 4, 4)
	// Send to mh1 (at mss1) and immediately move it to mss3: the message
	// must chase it and still arrive.
	ctx.SendToMH(0, 1, "chase", cost.CatAlgorithm)
	if err := sys.Move(1, 3); err != nil {
		t.Fatalf("Move: %v", err)
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(p.mhGot) != 1 || p.mhGot[0].At != 1 {
		t.Fatalf("chased delivery = %+v, want one delivery to mh1", p.mhGot)
	}
	if at, _ := sys.Where(1); at != 3 {
		t.Fatalf("mh1 at mss%d, want 3", int(at))
	}
	if sys.Stats().StaleReroutes == 0 {
		t.Error("expected stale re-routes for mid-flight move")
	}
	if got := sys.Meter().Count(cost.CatStale, cost.KindSearch); got == 0 {
		t.Error("stale search not charged to CatStale")
	}
}

func TestSendToMHDisconnectedNotifiesSender(t *testing.T) {
	sys, p, ctx := newProbeSystem(t, 3, 3)
	if err := sys.Disconnect(2); err != nil {
		t.Fatalf("Disconnect: %v", err)
	}
	sys.Schedule(50, func() {
		ctx.SendToMH(0, 2, "gone", cost.CatAlgorithm)
	})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(p.mhGot) != 0 {
		t.Fatalf("message delivered to disconnected MH: %+v", p.mhGot)
	}
	if len(p.failures) != 1 {
		t.Fatalf("failures = %+v, want 1", p.failures)
	}
	f := p.failures[0]
	if f.At != 0 || f.MH != 2 || f.Reason != FailDisconnected || f.Msg != "gone" {
		t.Errorf("failure = %+v", f)
	}
	if sys.Stats().FailedDeliveries != 1 {
		t.Errorf("failed deliveries = %d, want 1", sys.Stats().FailedDeliveries)
	}
}

func TestSendToMHWaitsForTransit(t *testing.T) {
	sys, p, ctx := newProbeSystem(t, 3, 3)
	if err := sys.Move(0, 1); err != nil {
		t.Fatalf("Move: %v", err)
	}
	// While mh0 is between cells, the message parks and delivers after the
	// join.
	ctx.SendToMH(2, 0, "parked", cost.CatAlgorithm)
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(p.mhGot) != 1 {
		t.Fatalf("parked message deliveries = %d, want 1", len(p.mhGot))
	}
	if at, _ := sys.Where(0); at != 1 {
		t.Fatalf("mh0 at mss%d, want 1", int(at))
	}
}

func TestSendToLocalMHRequiresLocality(t *testing.T) {
	sys, p, ctx := newProbeSystem(t, 3, 6)
	if err := ctx.SendToLocalMH(0, 4, "x", cost.CatAlgorithm); err == nil {
		t.Error("SendToLocalMH to non-local MH succeeded")
	}
	if err := ctx.SendToLocalMH(1, 4, "y", cost.CatAlgorithm); err != nil {
		t.Errorf("SendToLocalMH: %v", err)
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(p.mhGot) != 1 {
		t.Fatalf("deliveries = %d, want 1", len(p.mhGot))
	}
	// Local wireless only: no search charge.
	if got := sys.Meter().Count(cost.CatAlgorithm, cost.KindSearch); got != 0 {
		t.Errorf("searches = %d, want 0", got)
	}
}

func TestSendMHToMHPairFIFOAcrossMoves(t *testing.T) {
	sys, p, ctx := newProbeSystem(t, 4, 4)
	// Stream messages from mh0 to mh1 while mh1 moves twice; deliveries
	// must arrive in send order despite re-routes.
	for i := 0; i < 10; i++ {
		i := i
		sys.Schedule(sim.Time(i*3), func() {
			if err := ctx.SendMHToMH(0, 1, i, cost.CatAlgorithm); err != nil {
				t.Errorf("SendMHToMH: %v", err)
			}
		})
	}
	sys.Schedule(5, func() {
		if err := sys.Move(1, 2); err != nil {
			t.Errorf("Move: %v", err)
		}
	})
	sys.Schedule(80, func() {
		if at, st := sys.Where(1); st == StatusConnected && at == 2 {
			if err := sys.Move(1, 3); err != nil {
				t.Errorf("Move: %v", err)
			}
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(p.mhGot) != 10 {
		t.Fatalf("deliveries = %d, want 10", len(p.mhGot))
	}
	for i, ev := range p.mhGot {
		if ev.Msg != i {
			t.Fatalf("delivery %d carried %v: pair FIFO violated (%+v)", i, ev.Msg, p.mhGot)
		}
	}
}

func TestSendMHViaMSSDirectAndStale(t *testing.T) {
	sys, p, ctx := newProbeSystem(t, 4, 8)
	// Correct directory entry: mh5 is at mss1.
	if err := ctx.SendMHViaMSS(0, 1, 5, "direct", cost.CatAlgorithm); err != nil {
		t.Fatalf("SendMHViaMSS: %v", err)
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(p.mhGot) != 1 {
		t.Fatalf("deliveries = %d, want 1", len(p.mhGot))
	}
	// 2 wireless (up+down) + 1 fixed, no searches.
	if got := sys.Meter().Count(cost.CatAlgorithm, cost.KindSearch); got != 0 {
		t.Errorf("searches = %d, want 0", got)
	}
	if got := sys.Meter().Count(cost.CatAlgorithm, cost.KindFixed); got != 1 {
		t.Errorf("fixed = %d, want 1", got)
	}

	// Stale entry: mh5 has moved to mss3; routing via mss1 must fall back
	// to a stale-charged search.
	if err := sys.Move(5, 3); err != nil {
		t.Fatalf("Move: %v", err)
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := ctx.SendMHViaMSS(0, 1, 5, "stale", cost.CatAlgorithm); err != nil {
		t.Fatalf("SendMHViaMSS: %v", err)
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(p.mhGot) != 2 {
		t.Fatalf("deliveries = %d, want 2", len(p.mhGot))
	}
	if got := sys.Meter().Count(cost.CatStale, cost.KindSearch); got != 1 {
		t.Errorf("stale searches = %d, want 1", got)
	}
}

func TestSendToMHViaFixedProxyPath(t *testing.T) {
	sys, p, ctx := newProbeSystem(t, 4, 8)
	ctx.SendToMHVia(2, 1, 5, "via", cost.CatAlgorithm)
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(p.mhGot) != 1 || p.mhGot[0].Msg != "via" {
		t.Fatalf("deliveries = %+v", p.mhGot)
	}
	if got := sys.Meter().Count(cost.CatAlgorithm, cost.KindFixed); got != 1 {
		t.Errorf("fixed = %d, want 1", got)
	}
	if got := sys.Meter().Count(cost.CatAlgorithm, cost.KindSearch); got != 0 {
		t.Errorf("searches = %d, want 0", got)
	}
}

func TestSendToMSSOfMH(t *testing.T) {
	sys, p, ctx := newProbeSystem(t, 4, 8)
	// mh6 is at mss2; the message must arrive at mss2's handler.
	ctx.SendToMSSOfMH(0, 6, "locate", cost.CatAlgorithm)
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(p.mssGot) != 1 || p.mssGot[0].At != 2 {
		t.Fatalf("deliveries = %+v, want one at mss2", p.mssGot)
	}
	if got := sys.Meter().Count(cost.CatAlgorithm, cost.KindSearch); got != 1 {
		t.Errorf("searches = %d, want 1", got)
	}
	// No wireless: the MH itself is not touched.
	if got := sys.Meter().Count(cost.CatAlgorithm, cost.KindWireless); got != 0 {
		t.Errorf("wireless = %d, want 0", got)
	}
}

func TestSendToMSSOfMHDisconnected(t *testing.T) {
	sys, p, ctx := newProbeSystem(t, 3, 3)
	if err := sys.Disconnect(2); err != nil {
		t.Fatalf("Disconnect: %v", err)
	}
	sys.Schedule(50, func() { ctx.SendToMSSOfMH(0, 2, "x", cost.CatAlgorithm) })
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(p.failures) != 1 {
		t.Fatalf("failures = %+v, want 1", p.failures)
	}
}

func TestMoveSemantics(t *testing.T) {
	sys, p, ctx := newProbeSystem(t, 3, 3)
	if err := sys.Move(0, 2); err != nil {
		t.Fatalf("Move: %v", err)
	}
	// While in transit the MH is in neither local list.
	if _, status := sys.Where(0); status != StatusInTransit {
		t.Fatalf("status = %v, want in-transit", status)
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(p.leaves) != 1 || p.leaves[0] != (probeLeave{MSS: 0, MH: 0}) {
		t.Errorf("leaves = %+v", p.leaves)
	}
	if len(p.joins) != 1 || p.joins[0] != (probeJoin{MSS: 2, MH: 0, Prev: 0}) {
		t.Errorf("joins = %+v", p.joins)
	}
	if ctx.IsLocal(0, 0) || !ctx.IsLocal(2, 0) {
		t.Error("local lists inconsistent after move")
	}
	if got := sys.Stats().Moves; got != 1 {
		t.Errorf("moves = %d, want 1", got)
	}
	// leave + join = 2 wireless control messages.
	if got := sys.Meter().Count(cost.CatControl, cost.KindWireless); got != 2 {
		t.Errorf("control wireless = %d, want 2", got)
	}
}

func TestMoveToSameCellIsNoOp(t *testing.T) {
	sys, p, _ := newProbeSystem(t, 3, 3)
	if err := sys.Move(0, 0); err != nil {
		t.Fatalf("Move: %v", err)
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(p.leaves)+len(p.joins) != 0 {
		t.Error("no-op move produced mobility events")
	}
	if sys.Meter().TotalCost(sys.Config().Params) != 0 {
		t.Error("no-op move charged messages")
	}
}

func TestMoveStateErrors(t *testing.T) {
	sys, _, _ := newProbeSystem(t, 3, 3)
	if err := sys.Move(0, 1); err != nil {
		t.Fatalf("Move: %v", err)
	}
	if err := sys.Move(0, 2); err == nil {
		t.Error("Move while in transit succeeded")
	}
	if err := sys.Disconnect(0); err == nil {
		t.Error("Disconnect while in transit succeeded")
	}
	if err := sys.Reconnect(0, 1, true); err == nil {
		t.Error("Reconnect while in transit succeeded")
	}
}

func TestDisconnectReconnectSemantics(t *testing.T) {
	sys, p, ctx := newProbeSystem(t, 4, 4)
	if err := sys.Disconnect(1); err != nil {
		t.Fatalf("Disconnect: %v", err)
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(p.discs) != 1 || p.discs[0] != (probeLeave{MSS: 1, MH: 1}) {
		t.Errorf("disconnects = %+v", p.discs)
	}
	if !ctx.IsDisconnectedHere(1, 1) {
		t.Error("disconnected flag not set at mss1")
	}
	if ctx.IsLocal(1, 1) {
		t.Error("disconnected MH still in local list")
	}

	if err := sys.Reconnect(1, 3, true); err != nil {
		t.Fatalf("Reconnect: %v", err)
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ctx.IsDisconnectedHere(1, 1) {
		t.Error("disconnected flag not cleared by handoff")
	}
	if !ctx.IsLocal(3, 1) {
		t.Error("reconnected MH not local to new MSS")
	}
	if len(p.joins) != 1 || !p.joins[0].WasDisc || p.joins[0].Prev != 1 {
		t.Errorf("joins = %+v, want reconnect join with prev=mss1", p.joins)
	}
	if got := sys.Stats().Reconnects; got != 1 {
		t.Errorf("reconnects = %d, want 1", got)
	}
}

func TestReconnectWithoutPrevBroadcasts(t *testing.T) {
	withPrev := func(knows bool) int64 {
		sys, _, _ := newProbeSystem(t, 6, 2)
		if err := sys.Disconnect(0); err != nil {
			t.Fatalf("Disconnect: %v", err)
		}
		if err := sys.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		before := sys.Meter().Snapshot()
		if err := sys.Reconnect(0, 3, knows); err != nil {
			t.Fatalf("Reconnect: %v", err)
		}
		if err := sys.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return sys.Meter().Diff(before).Count(cost.CatControl, cost.KindFixed)
	}
	// With prev: handoff request + reply = 2 fixed. Without: +(M-1) queries
	// and one reply = 2 + 6 = 8.
	if got := withPrev(true); got != 2 {
		t.Errorf("fixed control with prev = %d, want 2", got)
	}
	if got := withPrev(false); got != 8 {
		t.Errorf("fixed control without prev = %d, want 8", got)
	}
}

func TestPrefixSemanticsMessageAfterLeaveChases(t *testing.T) {
	// Deliver a wireless message whose transmission completes after the MH
	// left the cell: the prefix property means it is not received there,
	// and the network re-routes it to the new cell.
	cfg := DefaultConfig(3, 3)
	cfg.Wireless = Delay{Min: 50, Max: 50} // slow wireless
	cfg.Travel = FixedDelay(10)
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	p := &probe{}
	ctx := sys.Register(p)

	if err := ctx.SendToLocalMH(0, 0, "slow", cost.CatAlgorithm); err != nil {
		t.Fatalf("SendToLocalMH: %v", err)
	}
	// The MH leaves before the 50-tick transmission completes.
	sys.Schedule(1, func() {
		if err := sys.Move(0, 2); err != nil {
			t.Errorf("Move: %v", err)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(p.mhGot) != 1 {
		t.Fatalf("deliveries = %d, want 1 (re-routed)", len(p.mhGot))
	}
	if sys.Stats().StaleReroutes == 0 {
		t.Error("expected a stale re-route")
	}
	if at, _ := sys.Where(0); at != 2 {
		t.Errorf("mh0 at mss%d, want 2", int(at))
	}
}

func TestDozeInterruptionCounting(t *testing.T) {
	sys, _, ctx := newProbeSystem(t, 3, 3)
	sys.SetDoze(1, true)
	if !sys.IsDozing(1) {
		t.Fatal("IsDozing = false after SetDoze")
	}
	ctx.SendToMH(0, 1, "wake", cost.CatAlgorithm)
	ctx.SendToMH(0, 2, "other", cost.CatAlgorithm)
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	stats := sys.Stats()
	if stats.DozeInterruptions != 1 || stats.DozeInterruptionsByMH[1] != 1 {
		t.Errorf("interruptions = %d (mh1: %d), want 1/1",
			stats.DozeInterruptions, stats.DozeInterruptionsByMH[1])
	}
}

func TestBroadcastSearchModeCharges(t *testing.T) {
	cfg := DefaultConfig(5, 10)
	cfg.SearchMode = SearchBroadcast
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	p := &probe{}
	ctx := sys.Register(p)
	// Remote delivery: mh6 is at mss1, send from mss0.
	ctx.SendToMH(0, 6, "x", cost.CatAlgorithm)
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(p.mhGot) != 1 {
		t.Fatalf("deliveries = %d, want 1", len(p.mhGot))
	}
	// Broadcast search: (M-1) queries + reply + forward = 6 fixed; no
	// Csearch charges anywhere.
	if got := sys.Meter().Count(cost.CatAlgorithm, cost.KindFixed); got != 6 {
		t.Errorf("fixed = %d, want 6", got)
	}
	if got := sys.Meter().KindTotal(cost.KindSearch); got != 0 {
		t.Errorf("search charges = %d, want 0 in broadcast mode", got)
	}
}

func TestSystemDeterminism(t *testing.T) {
	run := func() float64 {
		cfg := DefaultConfig(4, 12)
		cfg.Seed = 1234
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatalf("NewSystem: %v", err)
		}
		p := &probe{}
		ctx := sys.Register(p)
		for i := 0; i < 12; i++ {
			mh := MHID(i)
			sys.Schedule(sim.Time(i), func() {
				ctx.SendToMH(0, mh, int(mh), cost.CatAlgorithm)
			})
			if i%3 == 0 {
				to := MSSID((i + 1) % 4)
				sys.Schedule(sim.Time(i*2), func() {
					_ = sys.Move(mh, to)
				})
			}
		}
		if err := sys.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return sys.Meter().TotalCost(cfg.Params)
	}
	if a, b := run(), run(); a != b {
		t.Errorf("identical runs diverged: %v vs %v", a, b)
	}
}

func TestRegisterMultipleAlgorithmsIsolated(t *testing.T) {
	sys, err := NewSystem(DefaultConfig(3, 3))
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	a := &probe{name: "a"}
	b := &probe{name: "b"}
	ctxA := sys.Register(a)
	ctxB := sys.Register(b)
	ctxA.SendFixed(0, 1, "for-a", cost.CatAlgorithm)
	ctxB.SendFixed(0, 1, "for-b", cost.CatAlgorithm)
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(a.mssGot) != 1 || a.mssGot[0].Msg != "for-a" {
		t.Errorf("algorithm a got %+v", a.mssGot)
	}
	if len(b.mssGot) != 1 || b.mssGot[0].Msg != "for-b" {
		t.Errorf("algorithm b got %+v", b.mssGot)
	}
}

func TestInvalidIDsPanic(t *testing.T) {
	sys, _, ctx := newProbeSystem(t, 2, 2)
	for name, fn := range map[string]func(){
		"bad mss":        func() { ctx.SendFixed(0, 5, "x", cost.CatAlgorithm) },
		"bad mh":         func() { ctx.SendToMH(0, 9, "x", cost.CatAlgorithm) },
		"bad where":      func() { sys.Where(9) },
		"bad doze":       func() { sys.SetDoze(9, true) },
		"bad move to":    func() { _ = sys.Move(0, 9) },
		"bad move mh":    func() { _ = sys.Move(9, 0) },
		"register nil":   func() { sys.Register(nil) },
		"bad local list": func() { ctx.LocalMHs(9) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
