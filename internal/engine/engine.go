// Package engine implements the paper's two-tier operational system model
// (Section 2) once, for every execution substrate: a wired network of M
// mobile support stations (MSSs) and N mobile hosts (MHs), each attached to
// at most one cell at a time.
//
// The engine owns the full model:
//
//   - MSS/MH registries and the connected / in-transit / disconnected
//     status machine, with sorted-slice cell membership;
//   - reliable FIFO wired channels between MSSs and FIFO wireless channels
//     between an MSS and the MHs local to its cell, with the paper's
//     prefix-delivery semantics across moves;
//   - routing to mobile hosts with a pluggable search service, retry across
//     moves (search-and-chase), and in-transit waiter queues;
//   - the leave/join/disconnect/reconnect mobility protocol, including
//     handoff hooks so algorithms can migrate per-MH state between MSSs;
//   - the cost accounting of the paper's model (Cfixed, Cwireless, Csearch)
//     and model-level Stats counters;
//   - registration and dispatch for algorithm state machines.
//
// What the engine does not own is execution: time, deferred callbacks,
// per-channel FIFO transport, and randomness come from a small Substrate
// interface. internal/core binds the engine to the deterministic simulation
// kernel; internal/rt binds it to a goroutine/channel runtime. Because both
// adapters share this single implementation, every protocol fix, race
// repair, and hot-path optimization lands on both substrates by
// construction.
//
// All Engine methods must be called from the substrate's execution context
// (the kernel goroutine, or the rt executor), or during the single-threaded
// build phase before events flow.
package engine

import (
	"fmt"

	"mobiledist/internal/cost"
	"mobiledist/internal/obs"
	"mobiledist/internal/sim"
)

type mssState struct {
	local        sortedMHs
	disconnected map[MHID]bool
}

type mhState struct {
	status MHStatus
	// at is the current cell while connected, the cell holding the
	// "disconnected" flag while disconnected, and the previous cell while in
	// transit.
	at     MSSID
	dozing bool
}

// Stats are model-level counters kept outside the cost meter.
type Stats struct {
	// Searches is the number of searches performed (abstract mode) or
	// broadcast search rounds (broadcast mode).
	Searches int64
	// StaleReroutes counts re-forwards after a destination moved while a
	// message was in flight (the paper's footnote-2 case).
	StaleReroutes int64
	// Moves, Disconnects and Reconnects count completed mobility operations.
	Moves, Disconnects, Reconnects int64
	// DozeInterruptions counts wireless deliveries that interrupted a dozing
	// MH, in total and per MH.
	DozeInterruptions     int64
	DozeInterruptionsByMH map[MHID]int64
	// FailedDeliveries counts routed sends that ended in a disconnected
	// notification to the sender, plus deferred MH sends dropped because the
	// MH disconnected before they could replay.
	FailedDeliveries int64
	// WirelessDrops counts wireless transmissions destroyed in flight by an
	// injecting substrate (random loss, link flaps, a crashed station's
	// radio); folded in from the substrate's FaultStats.
	WirelessDrops int64
	// Retransmits counts ARQ retransmissions after ack timeouts
	// (Config.ReliableWireless).
	Retransmits int64
	// DuplicatesSuppressed counts wireless frames the ARQ receiver
	// discarded as already-accepted duplicates.
	DuplicatesSuppressed int64
	// TokenRegenerations counts recovery elections that regenerated a lost
	// token, reported by algorithms via Context.NoteTokenRegeneration.
	TokenRegenerations int64
	// ParkedOnDeadMSS counts transmissions a substrate parked because their
	// relay station's process was declared dead (netrt liveness): the record
	// stays pending and is replayed when the station resyncs, so the
	// executor degrades to parking instead of wedging. Reported by the
	// substrate via Engine.NoteParkedOnDeadMSS.
	ParkedOnDeadMSS int64
	// WaiterDrops counts delivery records discarded because an in-transit
	// MH's waiter queue was at Config.WaiterLimit and no custody hook took
	// the overflow (see addWaiter). Zero unless a limit is configured.
	WaiterDrops int64
}

// Engine is the substrate-independent driver of the two-tier model. Exactly
// one Engine exists per network instance; internal/core and internal/rt
// wrap it with their substrate bindings and lifecycle APIs.
type Engine struct {
	cfg   Config
	sub   Substrate
	meter *cost.Meter

	mss []mssState
	mh  []mhState

	algs []Algorithm
	ctxs []Context

	// waiters holds delivery records blocked on a MH that is between cells;
	// they fire once it joins a cell. Fired slices are recycled through
	// waiterPool so churn-heavy runs stop allocating once warm.
	waiters    map[MHID][]*DeliveryRec
	waiterPool [][]*DeliveryRec

	// recFree/recLive are the delivery-record pool: an intrusive free list
	// and the checked-out count (see record.go).
	recFree *DeliveryRec
	recLive int

	// pairs is the per-ordered-(MH,MH)-pair FIFO reorder state for
	// SendMHToMH traffic.
	pairs map[pairKey]*pairState

	// arq is the reliable-wireless sublayer; nil unless
	// Config.ReliableWireless (see arq.go).
	arq *arq

	// custody, when bound, is offered messages that would otherwise end in
	// a disconnected-delivery failure or a waiter-queue drop (see
	// custody.go). nil leaves the paper's park-and-notify behavior intact.
	custody CustodyHook

	stats Stats
}

var _ Registrar = (*Engine)(nil)

// New builds an engine from cfg on the given substrate, placing every MH in
// its initial cell.
func New(cfg Config, sub Substrate) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if sub == nil {
		return nil, fmt.Errorf("engine: nil substrate")
	}
	e := &Engine{
		cfg:     cfg,
		sub:     sub,
		meter:   cost.NewMeterSized(cfg.N),
		mss:     make([]mssState, cfg.M),
		mh:      make([]mhState, cfg.N),
		waiters: make(map[MHID][]*DeliveryRec),
		pairs:   make(map[pairKey]*pairState),
	}
	sub.BindRecSink(e)
	e.stats.DozeInterruptionsByMH = make(map[MHID]int64)
	for i := range e.mss {
		e.mss[i] = mssState{
			disconnected: make(map[MHID]bool),
		}
	}
	place := cfg.Placement
	if place == nil {
		place = func(mh MHID) MSSID { return MSSID(int(mh) % cfg.M) }
	}
	// Two passes: count each cell's population first so membership slices
	// are allocated at final size, then fill them. MH ids ascend, so each
	// add is an append — building a million-host system stays O(N log N)
	// with exactly one allocation per cell.
	cells := make([]MSSID, cfg.N)
	counts := make([]int, cfg.M)
	for i := range e.mh {
		at := place(MHID(i))
		if int(at) < 0 || int(at) >= cfg.M {
			return nil, fmt.Errorf("engine: placement of mh%d at invalid mss%d", i, int(at))
		}
		cells[i] = at
		counts[at]++
	}
	for i := range e.mss {
		if counts[i] > 0 {
			e.mss[i].local.ids = make([]MHID, 0, counts[i])
		}
	}
	for i := range e.mh {
		at := cells[i]
		e.mh[i] = mhState{status: StatusConnected, at: at}
		e.mss[at].local.add(MHID(i))
	}
	if cfg.ReliableWireless {
		e.arq = newARQ(e)
	}
	return e, nil
}

// Register attaches an algorithm to the engine and returns the Context its
// handlers will receive. Algorithms must be registered before any messages
// are exchanged.
func (e *Engine) Register(alg Algorithm) Context {
	if alg == nil {
		panic("engine: register nil algorithm")
	}
	idx := len(e.algs)
	e.algs = append(e.algs, alg)
	ctx := &algContext{e: e, alg: idx}
	e.ctxs = append(e.ctxs, ctx)
	return ctx
}

// Meter exposes the cost meter.
func (e *Engine) Meter() *cost.Meter { return e.meter }

// Config returns the engine configuration.
func (e *Engine) Config() Config { return e.cfg }

// Merge folds a substrate's fault accounting into a copy of the model
// counters and returns it. It is the single place engine Stats and
// substrate FaultStats meet: Engine.Stats uses it when the substrate
// reports faults, and experiment drivers can apply it to snapshots.
func (s Stats) Merge(fs FaultStats) Stats {
	s.WirelessDrops = fs.WirelessDrops
	return s
}

// Stats returns a copy of the model-level counters. If the substrate
// injects faults (implements FaultReporter), its loss accounting is folded
// in via Merge, so callers see drops without knowing the injector's type;
// substrates that report no faults leave the counters untouched.
func (e *Engine) Stats() Stats {
	cp := e.stats
	cp.DozeInterruptionsByMH = make(map[MHID]int64, len(e.stats.DozeInterruptionsByMH))
	for k, v := range e.stats.DozeInterruptionsByMH {
		cp.DozeInterruptionsByMH[k] = v
	}
	if fr, ok := e.sub.(FaultReporter); ok {
		cp = cp.Merge(fr.FaultStats())
	}
	return cp
}

// NoteParkedOnDeadMSS records one transmission parked by the substrate
// because its relay station was dead (see Stats.ParkedOnDeadMSS). Must be
// called on the engine's execution context, like every other engine method.
func (e *Engine) NoteParkedOnDeadMSS() { e.stats.ParkedOnDeadMSS++ }

// Where reports the cell and connectivity status of mh. While disconnected,
// the returned MSS is the cell holding the "disconnected" flag; while in
// transit it is the previous cell.
func (e *Engine) Where(mh MHID) (MSSID, MHStatus) {
	e.checkMH(mh)
	st := e.mh[mh]
	return st.at, st.status
}

// SetDoze marks mh as dozing (or not). Deliveries to a dozing MH still
// succeed but are counted as interruptions.
func (e *Engine) SetDoze(mh MHID, dozing bool) {
	e.checkMH(mh)
	e.mh[mh].dozing = dozing
}

// IsDozing reports whether mh is in doze mode.
func (e *Engine) IsDozing(mh MHID) bool {
	e.checkMH(mh)
	return e.mh[mh].dozing
}

// trace emits a model-level event to the configured trace sink.
func (e *Engine) trace(event, format string, args ...any) {
	if e.cfg.Trace == nil {
		return
	}
	e.cfg.Trace(e.sub.Now(), event, fmt.Sprintf(format, args...))
}

// event records one typed observability event. With tracing disabled
// (Config.Obs nil) this is a single branch — no time lookup, no
// allocation — which is what keeps the hot-path benchmarks flat.
func (e *Engine) event(kind obs.EventKind, a, b, c int32) {
	if e.cfg.Obs == nil {
		return
	}
	e.cfg.Obs.Record(e.sub.Now(), kind, a, b, c)
}

// boolOperand encodes a flag into an event operand (1 = true).
func boolOperand(v bool) int32 {
	if v {
		return 1
	}
	return 0
}

func (e *Engine) checkMSS(id MSSID) {
	if int(id) < 0 || int(id) >= e.cfg.M {
		panic(fmt.Sprintf("engine: invalid mss id %d (M=%d)", int(id), e.cfg.M))
	}
}

func (e *Engine) checkMH(id MHID) {
	if int(id) < 0 || int(id) >= e.cfg.N {
		panic(fmt.Sprintf("engine: invalid mh id %d (N=%d)", int(id), e.cfg.N))
	}
}

func (e *Engine) delay(d Delay) sim.Time {
	return e.sub.RNG().Duration(d.Min, d.Max)
}

// transmitWired sends rec over the (from, to) wired channel: draw the link
// latency, then hand the record to the substrate's FIFO transport.
func (e *Engine) transmitWired(from, to MSSID, rec *DeliveryRec) {
	e.sub.TransmitRec(e.chanWired(from, to), e.delay(e.cfg.Wired), rec)
}

// transmitDown sends rec over the (mss, mh) wireless downlink, through the
// ARQ sublayer when the wireless network is unreliable. Every payload op
// re-checks MH presence at delivery time, so retransmitted frames keep the
// prefix semantics unchanged.
func (e *Engine) transmitDown(mss MSSID, mh MHID, rec *DeliveryRec) {
	if e.arq != nil {
		e.arq.send(e.chanDown(mss, mh), e.chanUp(mh), rec)
		return
	}
	e.sub.TransmitRec(e.chanDown(mss, mh), e.delay(e.cfg.Wireless), rec)
}

// transmitUp sends rec over mh's wireless uplink. Under ARQ, acks come back
// on the downlink of the cell the MH occupies at send time.
func (e *Engine) transmitUp(mh MHID, rec *DeliveryRec) {
	if e.arq != nil {
		e.arq.send(e.chanUp(mh), e.chanDown(e.mh[mh].at, mh), rec)
		return
	}
	e.sub.TransmitRec(e.chanUp(mh), e.delay(e.cfg.Wireless), rec)
}

func (e *Engine) dispatchMSS(alg int, at MSSID, from From, msg Message) {
	h, ok := e.algs[alg].(MSSHandler)
	if !ok {
		panic(fmt.Sprintf("engine: algorithm %q received MSS message without MSSHandler", e.algs[alg].Name()))
	}
	h.HandleMSS(e.ctxs[alg], at, from, msg)
}

func (e *Engine) dispatchMH(alg int, at MHID, msg Message) {
	h, ok := e.algs[alg].(MHHandler)
	if !ok {
		panic(fmt.Sprintf("engine: algorithm %q received MH message without MHHandler", e.algs[alg].Name()))
	}
	h.HandleMH(e.ctxs[alg], at, msg)
}

func (e *Engine) notifyJoin(at MSSID, mh MHID, prev MSSID, wasDisconnected bool) {
	for i, alg := range e.algs {
		if obs, ok := alg.(MobilityObserver); ok {
			obs.OnJoin(e.ctxs[i], at, mh, prev, wasDisconnected)
		}
	}
}

func (e *Engine) notifyLeave(at MSSID, mh MHID) {
	for i, alg := range e.algs {
		if obs, ok := alg.(MobilityObserver); ok {
			obs.OnLeave(e.ctxs[i], at, mh)
		}
	}
}

func (e *Engine) notifyDisconnect(at MSSID, mh MHID) {
	for i, alg := range e.algs {
		if obs, ok := alg.(MobilityObserver); ok {
			obs.OnDisconnect(e.ctxs[i], at, mh)
		}
	}
}

func (e *Engine) notifyFailure(alg int, at MSSID, mh MHID, msg Message, reason FailReason) {
	e.stats.FailedDeliveries++
	if e.cfg.Trace != nil {
		e.trace("delivery-failure", "mss%d notified: mh%d %v", int(at), int(mh), reason)
	}
	e.event(obs.EvFailure, int32(mh), int32(at), 0)
	h, ok := e.algs[alg].(DeliveryFailureHandler)
	if !ok {
		// The algorithm chose not to observe failures; the message is
		// silently dropped, matching a sender that ignores the notification.
		return
	}
	h.OnDeliveryFailure(e.ctxs[alg], at, mh, msg, reason)
}

// addWaiter parks rec until mh joins a cell, reusing a pooled slice when
// the MH has no waiters yet. With Config.WaiterLimit set, a full queue
// overflows into the custody hook (when one is bound and accepts) or is
// dropped and counted in Stats.WaiterDrops.
func (e *Engine) addWaiter(mh MHID, rec *DeliveryRec) {
	w, ok := e.waiters[mh]
	if lim := e.cfg.WaiterLimit; lim > 0 && len(w) >= lim {
		e.overflowWaiter(mh, rec)
		return
	}
	if !ok {
		if n := len(e.waiterPool); n > 0 {
			w = e.waiterPool[n-1]
			e.waiterPool = e.waiterPool[:n-1]
		}
	}
	e.waiters[mh] = append(w, rec)
}

// overflowWaiter disposes of a record that found mh's waiter queue full.
// Resumable routed payloads are offered to the custody hook — the offer
// is preceded by one fixed control-message charge, exactly like the two
// routed-failure offer sites, so custody acceptance costs the same at
// every seam. Everything else (and any refusal) is dropped: the pair
// sequence is tombstoned so later ordered traffic is not wedged, and
// the record returns to the pool.
func (e *Engine) overflowWaiter(mh MHID, rec *DeliveryRec) {
	if e.custody != nil && rec.op == opRouteResume {
		e.meter.Charge(cost.CatControl, cost.KindFixed)
		if e.custody.OfferCustody(rec.mss, mh, rec.msg, CustodyRef{opts: rec.opts}) {
			e.FreeRec(rec)
			return
		}
	}
	e.stats.WaiterDrops++
	e.skipPairSeq(rec.opts)
	e.FreeRec(rec)
}

func (e *Engine) fireWaiters(mh MHID) {
	pending := e.waiters[mh]
	if len(pending) == 0 {
		return
	}
	delete(e.waiters, mh)
	for _, rec := range pending {
		// Re-enter through the substrate so continuations observe a settled
		// network state and deterministic ordering.
		e.sub.EnqueueRec(rec)
	}
	for i := range pending {
		pending[i] = nil // release the record references
	}
	e.waiterPool = append(e.waiterPool, pending[:0])
}

// localMHs returns the cell's membership in ascending order. The slice is
// the live backing store — callers must not mutate it or hold it across
// events (see Context.LocalMHs).
func (e *Engine) localMHs(mss MSSID) []MHID {
	e.checkMSS(mss)
	return e.mss[mss].local.ids
}
