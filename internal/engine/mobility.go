package engine

import (
	"fmt"

	"mobiledist/internal/cost"
	"mobiledist/internal/obs"
	"mobiledist/internal/sim"
)

// StatusError reports a mobility operation (move, disconnect, reconnect)
// rejected because the host's connectivity status does not permit it. The
// message is formatted lazily: churn workloads reject such operations by the
// million and almost always only test err != nil, so the constructor must
// not pay for fmt.
type StatusError struct {
	Op     string
	MH     MHID
	Status MHStatus
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("engine: mh%d cannot %s while %s", int(e.MH), e.Op, e.Status)
}

// Move initiates a cell switch: mh sends leave(r) to its current MSS,
// travels, then sends join(mh, prev) to the new cell's MSS. While between
// cells the MH neither sends nor receives (Section 2); routed messages park
// until the join completes. Moving to the current cell is a no-op.
func (e *Engine) Move(mh MHID, to MSSID) error {
	e.checkMH(mh)
	e.checkMSS(to)
	st := &e.mh[mh]
	if st.status != StatusConnected {
		return &StatusError{Op: "move", MH: mh, Status: st.status}
	}
	from := st.at
	if from == to {
		return nil
	}

	// leave(r): one wireless uplink transmission, control traffic.
	e.meter.Charge(cost.CatControl, cost.KindWireless)
	e.meter.WirelessTx(int(mh))
	st.status = StatusInTransit
	st.at = from // remembered as the previous cell for the join message

	if e.cfg.Trace != nil {
		e.trace("leave", "mh%d leaving mss%d for mss%d", int(mh), int(from), int(to))
	}
	rec := e.newRec(opLeave)
	rec.mh = mh
	rec.mss = from
	rec.mss2 = to
	e.transmitUp(mh, rec)
	return nil
}

// leaveArrive runs when leave(r) reaches the old cell's MSS: the opLeave
// interpreter case.
func (e *Engine) leaveArrive(mh MHID, from, to MSSID) {
	e.mss[from].local.remove(mh)
	if e.cfg.Trace != nil {
		e.trace("left", "mss%d processed leave of mh%d", int(from), int(mh))
	}
	e.event(obs.EvLeave, int32(mh), int32(from), 0)
	e.notifyLeave(from, mh)

	// The MH travels, then announces itself in the new cell. Joining is
	// sequenced after the leave is processed so a MH is never in two
	// local lists at once.
	travel := e.delay(e.cfg.Travel)
	rec := e.newRec(opCompleteJoin)
	rec.mh = mh
	rec.mss = to
	rec.mss2 = from
	e.sub.AfterRec(travel, rec)
}

// completeJoin performs the join(mh, prev) exchange in the new cell.
func (e *Engine) completeJoin(mh MHID, to, prev MSSID, wasDisconnected bool) {
	// join(mh-id, prev): one wireless uplink transmission in the new cell.
	e.meter.Charge(cost.CatControl, cost.KindWireless)
	e.meter.WirelessTx(int(mh))
	rec := e.newRec(opJoin)
	rec.mh = mh
	rec.mss = to
	rec.mss2 = prev
	rec.flag = wasDisconnected
	e.transmitUp(mh, rec)
}

// joinArrive runs when join(mh, prev) reaches the new cell's MSS: the
// opJoin interpreter case.
func (e *Engine) joinArrive(mh MHID, to, prev MSSID, wasDisconnected bool) {
	st := &e.mh[mh]
	e.mss[to].local.add(mh)
	st.status = StatusConnected
	st.at = to
	if !wasDisconnected {
		e.stats.Moves++
	}
	if e.cfg.Trace != nil {
		e.trace("join", "mh%d joined mss%d (prev mss%d)", int(mh), int(to), int(prev))
	}
	e.event(obs.EvJoin, int32(mh), int32(to), int32(prev))
	e.notifyJoin(to, mh, prev, wasDisconnected)
	e.fireWaiters(mh)
}

// Disconnect performs a voluntary disconnection: mh sends disconnect(r) to
// its local MSS, which removes it from the local list and sets the
// "disconnected" flag for it.
func (e *Engine) Disconnect(mh MHID) error {
	e.checkMH(mh)
	st := &e.mh[mh]
	if st.status != StatusConnected {
		return &StatusError{Op: "disconnect", MH: mh, Status: st.status}
	}
	at := st.at

	e.meter.Charge(cost.CatControl, cost.KindWireless)
	e.meter.WirelessTx(int(mh))
	// The MH is unreachable from the instant it decides to disconnect.
	st.status = StatusDisconnected

	rec := e.newRec(opDisconnect)
	rec.mh = mh
	rec.mss = at
	e.transmitUp(mh, rec)
	return nil
}

// disconnectArrive runs when disconnect(r) reaches the cell's MSS: the
// opDisconnect interpreter case.
func (e *Engine) disconnectArrive(mh MHID, at MSSID) {
	e.mss[at].local.remove(mh)
	e.mss[at].disconnected[mh] = true
	e.stats.Disconnects++
	if e.cfg.Trace != nil {
		e.trace("disconnect", "mh%d disconnected at mss%d", int(mh), int(at))
	}
	e.event(obs.EvDisconnect, int32(mh), int32(at), 0)
	e.notifyDisconnect(at, mh)
}

// Reconnect re-attaches a disconnected MH at the given MSS with a
// reconnect(mh-id, prev mss-id) message. If knowsPrev is false the MH could
// not supply its previous location, and the new MSS queries every other
// fixed host to find it before running the handoff (Section 2).
func (e *Engine) Reconnect(mh MHID, at MSSID, knowsPrev bool) error {
	e.checkMH(mh)
	e.checkMSS(at)
	st := &e.mh[mh]
	if st.status != StatusDisconnected {
		return &StatusError{Op: "reconnect", MH: mh, Status: st.status}
	}
	prev := st.at

	// The MH is reconnecting: from the model's perspective it is between
	// cells until the handoff completes, so routed messages park rather
	// than bounce as disconnected, and duplicate Reconnect/Move/Disconnect
	// calls are rejected.
	st.status = StatusInTransit

	// reconnect(): one wireless uplink transmission in the new cell.
	e.meter.Charge(cost.CatControl, cost.KindWireless)
	e.meter.WirelessTx(int(mh))
	rec := e.newRec(opReconnect)
	rec.mh = mh
	rec.mss = at
	rec.mss2 = prev
	rec.flag = knowsPrev
	e.transmitUp(mh, rec)
	return nil
}

// reconnectArrive runs when reconnect(mh, prev) reaches the new cell's MSS:
// the opReconnect interpreter case.
func (e *Engine) reconnectArrive(mh MHID, at, prev MSSID, knowsPrev bool) {
	e.event(obs.EvReconnect, int32(mh), int32(at), int32(prev))
	e.runReconnectHandoff(mh, at, prev, knowsPrev)
}

// runReconnectHandoff executes the locate-and-handoff exchange at the new
// MSS: optionally a broadcast query for the previous location, then a
// request/reply with the previous MSS to clear the "disconnected" flag
// (opReconnectLocate → opHandoffReq → opHandoffReply).
func (e *Engine) runReconnectHandoff(mh MHID, at, prev MSSID, knowsPrev bool) {
	var locate sim.Time
	if !knowsPrev {
		// Query each other fixed host; only the flag holder replies.
		e.meter.ChargeN(cost.CatControl, cost.KindFixed, int64(e.cfg.M-1))
		e.meter.Charge(cost.CatControl, cost.KindFixed)
		locate = e.delay(e.cfg.Wired) + e.delay(e.cfg.Wired)
	}
	rec := e.newRec(opReconnectLocate)
	rec.mh = mh
	rec.mss = at
	rec.mss2 = prev
	e.sub.AfterRec(locate, rec)
}

// reconnectLocate sends the handoff request to the previous MSS once the
// (optional) locate query resolved: the opReconnectLocate interpreter case.
func (e *Engine) reconnectLocate(mh MHID, at, prev MSSID) {
	e.meter.Charge(cost.CatControl, cost.KindFixed)
	rec := e.newRec(opHandoffReq)
	rec.mh = mh
	rec.mss = at
	rec.mss2 = prev
	e.transmitWired(at, prev, rec)
}

// handoffReqArrive runs at the previous MSS: clear the "disconnected" flag
// and send the handoff reply back (the opHandoffReq interpreter case).
func (e *Engine) handoffReqArrive(mh MHID, at, prev MSSID) {
	delete(e.mss[prev].disconnected, mh)
	e.meter.Charge(cost.CatControl, cost.KindFixed)
	rec := e.newRec(opHandoffReply)
	rec.mh = mh
	rec.mss = at
	rec.mss2 = prev
	e.transmitWired(prev, at, rec)
}

// handoffReplyArrive finalizes the reconnection at the new MSS: the
// opHandoffReply interpreter case.
func (e *Engine) handoffReplyArrive(mh MHID, at, prev MSSID) {
	st := &e.mh[mh]
	e.mss[at].local.add(mh)
	st.status = StatusConnected
	st.at = at
	e.stats.Reconnects++
	if e.cfg.Trace != nil {
		e.trace("reconnect", "mh%d reconnected at mss%d (was at mss%d)", int(mh), int(at), int(prev))
	}
	e.event(obs.EvHandoff, int32(mh), int32(at), int32(prev))
	e.event(obs.EvJoin, int32(mh), int32(at), int32(prev))
	e.notifyJoin(at, mh, prev, true)
	e.fireWaiters(mh)
}
