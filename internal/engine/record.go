package engine

import "fmt"

// Delivery records: the engine's in-flight work, as data.
//
// Every message crossing the Transmit seam used to be a heap-allocated
// continuation closure (`deliver func()`); at N=10^6 hosts those closures
// were ~60% of all allocated bytes. A DeliveryRec replaces the closure with
// a pooled value-typed record — an op code plus the fields the continuation
// would have captured — interpreted by the engine's runRec switch. Like the
// paper's handoff protocol, which transfers explicit per-MH state between
// MSSs instead of suspended computation, the delivery chain is explicit
// transferable state.
//
// Ownership rules:
//
//   - A record scheduled through TransmitRec / AfterRec / EnqueueRec is
//     owned by the substrate until it hands the record to the bound RecSink.
//   - RecSink.StepRec runs the record's op and then ALWAYS frees it. An op
//     that needs to park further work (the in-transit waiter queues)
//     allocates a fresh record from the pool; records are never re-armed.
//   - A substrate wrapper that destroys a transmission in flight (the fault
//     injector's drop, dark-link and crashed-station paths) must call
//     RecSink.FreeRec instead of silently discarding the record, returning
//     it to the pool unexecuted.
//   - RecSink.CloneRec allocates a pooled copy for wrappers that duplicate
//     a transmission; each copy is stepped and freed independently.
//   - FreeRec never follows rec.inner: an ARQ data frame's payload record
//     is owned by the ARQ sender queue until the frame is acked (see
//     arq.go), so dropping an air copy must not free the payload.
//
// The free list is intrusive (the next field), single-threaded like the
// rest of the engine, and never shrinks; steady-state routing allocates no
// records at all.

// recOp selects the runRec branch a DeliveryRec executes.
type recOp uint8

const (
	opInvalid recOp = iota

	// Routing (routing.go).
	opDispatchMSS   // run the MSS handler: alg=opts.alg, at=mss, from, msg
	opRouteArrive   // routed message reached mss over a wired hop: re-check and deliver or chase
	opRouteResume   // waiter: resume routeToMH(mss, mh, msg, opts, stale)
	opDownArrive    // wireless downlink completed at (mss, mh): prefix-rule delivery
	opNotifyFailure // failure notification reached the origin: mss=origin
	opSendFromMH    // waiter: replay sendFromMH(opts.alg, mh, msg, opts.cat)
	opUpForwardVia  // uplink completed: forwardViaMSS(opts.origin, mss, mh, msg, opts)
	opSendMHViaMSS  // waiter: replay sendMHViaMSS(opts.alg, mh, mss, mh2, msg, opts.cat)
	opRouteMSSArrive
	opRouteMSSResume // waiter: resume routeToMSSOfMH(mss, mh, msg, opts, stale)
	opSendMHToMH     // waiter: replay sendMHToMH(opts.alg, mh, mh2, msg, opts.cat)
	opUpRoute        // uplink completed: routeToMH(mss, mh, msg, opts, false)

	// Mobility (mobility.go).
	opLeave           // leave(r) reached the old cell: mh leaves mss for mss2
	opCompleteJoin    // travel done: join in cell mss (prev mss2, wasDisconnected=flag)
	opJoin            // join(mh, prev) reached the new cell
	opDisconnect      // disconnect(r) reached the cell mss
	opReconnect       // reconnect(mh, prev) reached the new cell (knowsPrev=flag)
	opReconnectLocate // locate done: send the handoff request from mss to mss2
	opHandoffReq      // handoff request reached the previous cell mss2
	opHandoffReply    // handoff reply reached the new cell mss

	// Reliable wireless (arq.go).
	opArqData    // data frame survived channel ch: recvData(ch, ackCh, seq, inner)
	opArqAck     // ack for seq came back: recvAck(ch, seq)
	opArqTimeout // ack timer fired: timeout(ch, gen=seq)
)

// DeliveryRec is one unit of in-flight engine work (see the package comment
// above). The struct is exported so substrates can carry *DeliveryRec, but
// its state is opaque outside the engine except for the channel and tag
// accessors used by transport-level tooling.
type DeliveryRec struct {
	op    recOp
	stale bool
	flag  bool
	mh    MHID
	mh2   MHID
	mss   MSSID
	mss2  MSSID
	from  From
	msg   Message
	opts  routeOpts
	seq   uint64
	ch    int32
	ackCh int32
	onCh  int32 // transmit channel, stamped by the outermost wrapper; -1 off-channel
	tag   int32 // wrapper-private cookie (the fault injector's trace index)
	next  *DeliveryRec
	inner *DeliveryRec // ARQ data frame's payload; owned by the sender queue
}

// Chan returns the flat channel id the record was transmitted on, or -1 for
// records scheduled off-channel (After/Enqueue). Substrate wrappers use it
// to classify a record at delivery time (ChannelLayout.Decode).
func (r *DeliveryRec) Chan() int { return int(r.onCh) }

// SetChan stamps the transmit channel; called by the outermost wrapper's
// TransmitRec (and by off-channel paths with -1).
func (r *DeliveryRec) SetChan(ch int) { r.onCh = int32(ch) }

// Tag returns the wrapper-private cookie set by SetTag.
func (r *DeliveryRec) Tag() int32 { return r.tag }

// SetTag attaches a wrapper-private cookie to the record (the fault
// injector stores its per-channel trace index so a discard at delivery time
// can amend the transmit-time trace entry).
func (r *DeliveryRec) SetTag(v int32) { r.tag = v }

// RecSink executes and recycles delivery records. The engine implements it;
// substrates receive it through Substrate.BindRecSink, and a fault-injecting
// wrapper may interpose its own sink to discard records at delivery time.
type RecSink interface {
	// StepRec runs the record's operation, then frees it.
	StepRec(rec *DeliveryRec)
	// FreeRec returns an unexecuted record to the pool (a transmission
	// destroyed in flight).
	FreeRec(rec *DeliveryRec)
	// CloneRec allocates a pooled copy of rec (a transmission duplicated in
	// flight). Each copy is stepped or freed independently.
	CloneRec(rec *DeliveryRec) *DeliveryRec
}

var _ RecSink = (*Engine)(nil)

// newRec takes a record from the free list (or allocates one) and resets it
// to op with no transmit channel.
func (e *Engine) newRec(op recOp) *DeliveryRec {
	r := e.recFree
	if r == nil {
		r = &DeliveryRec{}
	} else {
		e.recFree = r.next
		r.next = nil
	}
	e.recLive++
	r.op = op
	r.onCh = -1
	return r
}

// FreeRec returns rec to the pool, clearing every field so no message or
// payload reference outlives the record. It never frees rec.inner (owned by
// the ARQ sender queue).
func (e *Engine) FreeRec(rec *DeliveryRec) {
	if rec == nil {
		return
	}
	*rec = DeliveryRec{next: e.recFree}
	e.recFree = rec
	e.recLive--
}

// CloneRec returns a pooled copy of rec.
func (e *Engine) CloneRec(rec *DeliveryRec) *DeliveryRec {
	c := e.newRec(rec.op)
	next := c.next
	*c = *rec
	c.next = next
	return c
}

// LiveRecs reports the number of records currently checked out of the pool:
// in flight in a substrate, queued as waiters, or held by the ARQ sender
// queues. A quiesced fault-free system holds zero; the pool-recycling test
// asserts the same after a chaos plan.
func (e *Engine) LiveRecs() int { return e.recLive }

// StepRec runs rec's operation and frees it.
func (e *Engine) StepRec(rec *DeliveryRec) {
	e.runRec(rec)
	e.FreeRec(rec)
}

// runRec is the delivery interpreter: the bodies of what used to be the
// continuation closures in routing.go, arq.go and mobility.go. Ops that
// continue the chain allocate fresh records; rec itself is never re-armed
// (StepRec frees it on return).
func (e *Engine) runRec(rec *DeliveryRec) {
	switch rec.op {
	case opDispatchMSS:
		e.dispatchMSS(rec.opts.alg, rec.mss, rec.from, rec.msg)

	case opRouteArrive:
		// Re-check on arrival: the MH may have moved on while the message
		// crossed the wired network.
		cur := &e.mh[rec.mh]
		if cur.status == StatusConnected && cur.at == rec.mss {
			e.wirelessDown(rec.mss, rec.mh, rec.msg, rec.opts)
			return
		}
		e.stats.StaleReroutes++
		e.routeToMH(rec.mss, rec.mh, rec.msg, rec.opts, true)

	case opRouteResume:
		e.routeToMH(rec.mss, rec.mh, rec.msg, rec.opts, rec.stale)

	case opDownArrive:
		e.downArrive(rec)

	case opNotifyFailure:
		// The pair sequence slot was already tombstoned at send time
		// (the origin may be crashed and this record discarded in
		// flight); only the origin-side failure callback remains here.
		e.notifyFailure(rec.opts.alg, rec.mss, rec.mh, rec.msg, FailDisconnected)

	case opSendFromMH:
		if err := e.sendFromMH(rec.opts.alg, rec.mh, rec.msg, rec.opts.cat); err != nil {
			// The MH disconnected before the deferred send could run, so
			// the transmission never happened. The loss is counted in
			// FailedDeliveries rather than silently swallowed; no
			// DeliveryFailureHandler fires because there is no origin MSS
			// to notify — the message never left the MH.
			e.stats.FailedDeliveries++
			if e.cfg.Trace != nil {
				e.trace("send-dropped", "mh%d disconnected before deferred send", int(rec.mh))
			}
		}

	case opUpForwardVia:
		// One fixed hop to the directory's MSS, charged even when the
		// sender's own MSS is the target.
		e.forwardViaMSS(rec.opts.origin, rec.mss, rec.mh, rec.msg, rec.opts)

	case opSendMHViaMSS:
		_ = e.sendMHViaMSS(rec.opts.alg, rec.mh, rec.mss, rec.mh2, rec.msg, rec.opts.cat)

	case opRouteMSSArrive:
		cur := &e.mh[rec.mh]
		if cur.status == StatusConnected && cur.at == rec.mss {
			e.dispatchMSS(rec.opts.alg, rec.mss, From{MSS: rec.opts.origin}, rec.msg)
			return
		}
		e.stats.StaleReroutes++
		e.routeToMSSOfMH(rec.mss, rec.mh, rec.msg, rec.opts, true)

	case opRouteMSSResume:
		e.routeToMSSOfMH(rec.mss, rec.mh, rec.msg, rec.opts, rec.stale)

	case opSendMHToMH:
		_ = e.sendMHToMH(rec.opts.alg, rec.mh, rec.mh2, rec.msg, rec.opts.cat)

	case opUpRoute:
		// The message was transmitted before any subsequent leave(), so
		// routing starts from the cell it was sent in.
		e.routeToMH(rec.mss, rec.mh, rec.msg, rec.opts, false)

	case opLeave:
		e.leaveArrive(rec.mh, rec.mss, rec.mss2)
	case opCompleteJoin:
		e.completeJoin(rec.mh, rec.mss, rec.mss2, rec.flag)
	case opJoin:
		e.joinArrive(rec.mh, rec.mss, rec.mss2, rec.flag)
	case opDisconnect:
		e.disconnectArrive(rec.mh, rec.mss)
	case opReconnect:
		e.reconnectArrive(rec.mh, rec.mss, rec.mss2, rec.flag)
	case opReconnectLocate:
		e.reconnectLocate(rec.mh, rec.mss, rec.mss2)
	case opHandoffReq:
		e.handoffReqArrive(rec.mh, rec.mss, rec.mss2)
	case opHandoffReply:
		e.handoffReplyArrive(rec.mh, rec.mss, rec.mss2)

	case opArqData:
		e.arq.recvData(int(rec.ch), int(rec.ackCh), rec.seq, rec.inner)
	case opArqAck:
		e.arq.recvAck(int(rec.ch), rec.seq)
	case opArqTimeout:
		e.arq.timeout(int(rec.ch), rec.seq)

	default:
		panic(fmt.Sprintf("engine: delivery record with invalid op %d", int(rec.op)))
	}
}
