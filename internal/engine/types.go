package engine

import "fmt"

// MSSID identifies a mobile support station (fixed host), in [0, M).
type MSSID int

// MHID identifies a mobile host, in [0, N).
type MHID int

// Message is an algorithm-defined payload exchanged between nodes.
type Message any

// From identifies the immediate sender of a message delivered to an MSS.
type From struct {
	MSS  MSSID // valid when !IsMH
	MH   MHID  // valid when IsMH
	IsMH bool
}

// String renders the sender address.
func (f From) String() string {
	if f.IsMH {
		return fmt.Sprintf("mh%d", int(f.MH))
	}
	return fmt.Sprintf("mss%d", int(f.MSS))
}

// MHStatus is the connectivity state of a mobile host.
type MHStatus int

// Mobile host connectivity states.
const (
	// StatusConnected means the MH is local to some cell.
	StatusConnected MHStatus = iota + 1
	// StatusInTransit means the MH has left its cell and not yet joined a
	// new one. The paper guarantees it will eventually join some cell.
	StatusInTransit
	// StatusDisconnected means the MH has voluntarily disconnected; its last
	// MSS holds a "disconnected" flag for it.
	StatusDisconnected
)

// String returns the status name.
func (s MHStatus) String() string {
	switch s {
	case StatusConnected:
		return "connected"
	case StatusInTransit:
		return "in-transit"
	case StatusDisconnected:
		return "disconnected"
	default:
		return fmt.Sprintf("MHStatus(%d)", int(s))
	}
}

// FailReason explains why a routed message could not be delivered to a MH.
type FailReason int

// Delivery failure reasons.
const (
	// FailDisconnected means the destination MH has disconnected; the MSS of
	// the cell where it disconnected informed the sender (Section 2).
	FailDisconnected FailReason = iota + 1
)

// String returns the reason name.
func (r FailReason) String() string {
	switch r {
	case FailDisconnected:
		return "disconnected"
	default:
		return fmt.Sprintf("FailReason(%d)", int(r))
	}
}

// SearchMode selects how the network locates a mobile host.
type SearchMode int

// Search modes.
const (
	// SearchAbstract charges the paper's fixed Csearch per search and uses
	// the network's location registry as the oracle. This is the
	// paper-faithful mode used by the experiment suite.
	SearchAbstract SearchMode = iota + 1
	// SearchBroadcast exchanges real messages: the searching MSS queries
	// every other MSS (M-1 fixed messages), the hosting MSS replies (one
	// fixed message), and the payload is forwarded (one fixed message). No
	// Csearch is charged; the cost shows up as fixed-channel traffic. Used
	// by the A1 ablation to exhibit the Csearch <= (M-1)*Cfixed bound.
	SearchBroadcast
)

// Algorithm is a distributed algorithm hosted on the two-tier network. The
// interface carries only identification; message handling and mobility
// hooks are optional capabilities declared by implementing the narrower
// interfaces below.
type Algorithm interface {
	// Name identifies the algorithm in reports and panics.
	Name() string
}

// MSSHandler receives messages addressed to MSS-side algorithm state.
type MSSHandler interface {
	HandleMSS(ctx Context, at MSSID, from From, msg Message)
}

// MHHandler receives messages delivered to a mobile host over its wireless
// link.
type MHHandler interface {
	HandleMH(ctx Context, at MHID, msg Message)
}

// MobilityObserver is notified of mobility protocol events. Callbacks run
// at the MSS processing the event, after the network's own bookkeeping.
type MobilityObserver interface {
	// OnJoin fires when mh completes a join at mss. prev is the MSS of the
	// previous cell (supplied with the join message, Section 2), or -1 for
	// the initial placement. wasDisconnected distinguishes reconnect()
	// from an ordinary cell switch.
	OnJoin(ctx Context, mss MSSID, mh MHID, prev MSSID, wasDisconnected bool)
	// OnLeave fires when mss processes mh's leave() message.
	OnLeave(ctx Context, mss MSSID, mh MHID)
	// OnDisconnect fires when mss processes mh's disconnect() message and
	// has set the "disconnected" flag.
	OnDisconnect(ctx Context, mss MSSID, mh MHID)
}

// DeliveryFailureHandler is notified at the sending MSS when a message
// routed with SendToMH could not be delivered because the destination
// disconnected. The undelivered payload is returned so algorithms such as
// R2 can, for example, reclaim the token.
type DeliveryFailureHandler interface {
	OnDeliveryFailure(ctx Context, at MSSID, mh MHID, msg Message, reason FailReason)
}

// Registrar is implemented by network drivers (the simulation System in
// internal/core, the live runtime in internal/rt, and the Engine itself)
// that can host algorithms. Constructors of algorithm packages take a
// Registrar so the same implementations run on either substrate.
type Registrar interface {
	// Register attaches alg and returns the Context its handlers receive.
	Register(alg Algorithm) Context
}
