package engine

import "mobiledist/internal/cost"

// This file is the engine side of the store-carry-forward seam
// (internal/dtn). The engine never stores bundles itself: when a routed
// delivery discovers its destination disconnected (routeToMH, downArrive)
// or an in-transit waiter queue overflows (addWaiter), it offers the
// message to the bound CustodyHook instead of sending the paper's
// disconnected notification. The hook's subsystem later re-enters the
// engine through RedeliverCustody (destination reappeared), FailCustody
// (TTL expired: the origin is notified as if the send had failed), or
// AbandonCustody (the last replica was lost, e.g. a crash wiped the
// holder's volatile store). With no hook bound every path below is dead
// and the engine's behavior is bit-for-bit the paper's.

// CustodyRef is the opaque routing context a custodied message must carry
// so its eventual redelivery (or failure) is indistinguishable from an
// ordinary routed delivery: same algorithm, same cost category, same
// per-pair FIFO slot. It travels by value inside bundles.
type CustodyRef struct {
	opts routeOpts
}

// Origin reports the MSS that initiated the routed send (the station a
// failure notification would go to).
func (r CustodyRef) Origin() MSSID { return r.opts.origin }

// CustodyHook is offered messages the engine would otherwise bounce with a
// disconnected-delivery failure or drop on waiter overflow. Every offer
// site charges one fixed control message before the offer — at the two
// routed-failure sites that is exactly what the replaced notification
// would have cost; at the overflow site it prices the handover the same
// way so custody acceptance is cost-uniform across all three seams.
// Returning true transfers responsibility for the message to the hook and
// the engine forgets it. Returning false restores the paper's behavior.
//
// OfferCustody runs on the engine's execution context, mid-route; it may
// call Context send methods but must not deliver synchronously.
type CustodyHook interface {
	OfferCustody(holder MSSID, mh MHID, msg Message, ref CustodyRef) bool
}

// BindCustody installs the custody hook. Must be called during the
// single-threaded build phase, before events flow.
func (e *Engine) BindCustody(h CustodyHook) { e.custody = h }

// RedeliverCustody re-routes a custodied message from the given MSS after
// its destination reappeared. The retry is charged like a stale re-route
// (cost.CatStale searches), so primary accounting still shows exactly one
// delivery per message; the final wireless leg stays in the original
// category.
func (e *Engine) RedeliverCustody(from MSSID, mh MHID, msg Message, ref CustodyRef) {
	e.checkMSS(from)
	e.checkMH(mh)
	e.routeToMH(from, mh, msg, ref.opts, true)
}

// FailCustody gives up on a custodied message (TTL expiry, store
// eviction): the holder notifies the origin exactly as the paper's
// disconnected path would have. The message's pair sequence slot is
// tombstoned immediately — pair state is global engine state, and the
// notification itself may be discarded if the origin is down — so later
// ordered traffic keeps flowing whether or not the origin ever hears.
func (e *Engine) FailCustody(holder MSSID, mh MHID, msg Message, ref CustodyRef) {
	e.checkMSS(holder)
	e.checkMH(mh)
	e.meter.Charge(cost.CatControl, cost.KindFixed)
	e.skipPairSeq(ref.opts)
	rec := e.newRec(opNotifyFailure)
	rec.mss = ref.opts.origin
	rec.mh = mh
	rec.msg = msg
	rec.opts = ref.opts
	e.transmitWired(holder, ref.opts.origin, rec)
}

// AbandonCustody records the silent loss of a custodied message whose
// every replica is gone (a crash wiped the volatile store): no
// notification can be sent, but the failure is counted and the pair
// sequence slot is tombstoned.
func (e *Engine) AbandonCustody(ref CustodyRef) {
	e.stats.FailedDeliveries++
	e.skipPairSeq(ref.opts)
}
