package engine

import (
	"testing"

	"mobiledist/internal/obs"
	"mobiledist/internal/sim"
)

func TestStatsMergeFoldsFaultStats(t *testing.T) {
	s := Stats{Searches: 5, Moves: 2, WirelessDrops: 99}
	merged := s.Merge(FaultStats{WirelessDrops: 7})
	if merged.WirelessDrops != 7 {
		t.Errorf("WirelessDrops = %d, want 7 (substrate accounting wins)", merged.WirelessDrops)
	}
	if merged.Searches != 5 || merged.Moves != 2 {
		t.Errorf("Merge disturbed model counters: %+v", merged)
	}
	if s.WirelessDrops != 99 {
		t.Error("Merge mutated its receiver")
	}
}

// plainSubstrate is a minimal Substrate that does not report faults — the
// path a live transport or a fault-free simulator takes. Records are
// stepped synchronously through the bound sink.
type plainSubstrate struct {
	now       sim.Time
	sink      RecSink
	transmits int
}

func (p *plainSubstrate) Now() sim.Time               { return p.now }
func (p *plainSubstrate) Enqueue(fn func())           { fn() }
func (p *plainSubstrate) After(d sim.Time, fn func()) { fn() }
func (p *plainSubstrate) BindRecSink(sink RecSink)    { p.sink = sink }
func (p *plainSubstrate) TransmitRec(ch int, latency sim.Time, rec *DeliveryRec) {
	p.transmits++
	if p.sink != nil {
		p.sink.StepRec(rec)
	}
}
func (p *plainSubstrate) AfterRec(d sim.Time, rec *DeliveryRec) {
	if p.sink != nil {
		p.sink.StepRec(rec)
	}
}
func (p *plainSubstrate) EnqueueRec(rec *DeliveryRec) {
	if p.sink != nil {
		p.sink.StepRec(rec)
	}
}
func (p *plainSubstrate) RNG() *sim.RNG { return sim.NewRNG(1) }

func TestObserveSubstrateFaultStats(t *testing.T) {
	tracer := obs.NewTracer(0)

	// Non-reporting inner: the wrapper must report zeroes, not panic.
	sub := ObserveSubstrate(&plainSubstrate{}, tracer)
	fr, ok := sub.(FaultReporter)
	if !ok {
		t.Fatal("observed substrate does not implement FaultReporter")
	}
	if fs := fr.FaultStats(); fs != (FaultStats{}) {
		t.Errorf("fault-free inner reported %+v, want zeroes", fs)
	}

	// Nil tracer: wrapping is the identity, so the tracing-disabled hot
	// path keeps the raw substrate.
	raw := &plainSubstrate{}
	if got := ObserveSubstrate(raw, nil); got != Substrate(raw) {
		t.Error("ObserveSubstrate(raw, nil) did not return raw unchanged")
	}
}

func TestObserveSubstrateRecordsTransmit(t *testing.T) {
	tracer := obs.NewTracer(0)
	raw := &plainSubstrate{now: 42}
	sub := ObserveSubstrate(raw, tracer)
	sub.TransmitRec(3, 10, &DeliveryRec{})
	if raw.transmits != 1 {
		t.Fatal("TransmitRec did not forward to inner")
	}
	evs := tracer.Events()
	if len(evs) != 1 {
		t.Fatalf("recorded %d events, want 1", len(evs))
	}
	want := obs.Event{T: 42, Kind: obs.EvTransmit, A: 3, B: 10}
	if evs[0] != want {
		t.Errorf("event = %+v, want %+v", evs[0], want)
	}
}
